(* The massbft command-line tool: run single experiments, regenerate
   the paper's figures, and inspect transfer plans. *)

open Cmdliner
module Config = Massbft.Config
module W = Massbft_workload.Workload
module Runner = Massbft_harness.Runner
module Clusters = Massbft_harness.Clusters
module Figures = Massbft_harness.Figures
module Trace = Massbft_trace.Trace
module Trace_export = Massbft_trace.Trace_export
module Obs_registry = Massbft_obs.Registry
module Sampler = Massbft_obs.Sampler
module Exposition = Massbft_obs.Exposition
module Saturation = Massbft_obs.Saturation
module Fault_spec = Massbft_faults.Fault_spec
module Chaos = Massbft_faults.Chaos
module Adv_spec = Massbft_adversary.Adv_spec
module Reconfig_spec = Massbft_reconfig.Reconfig_spec
module Evidence = Massbft_adversary.Evidence
module Topology = Massbft_sim.Topology
module Prof = Massbft_prof.Prof
module Prof_export = Massbft_prof.Prof_export
module Bench_check = Massbft_harness.Bench_check
module Bench_report = Massbft_harness.Bench_report

(* Schedule/plan files come from users and CI artifacts: every way they
   can be wrong must end in a one-line diagnostic naming the file and
   the first bad token — not a backtrace — and exit 2 (distinct from a
   run failure's exit 1). *)
let usage_error = 2

let die_parse ~what ~file msg =
  prerr_endline (Printf.sprintf "massbft: %s: bad %s: %s" file what msg);
  exit usage_error

let read_file_or_die ~what file =
  match open_in file with
  | exception Sys_error e ->
      prerr_endline
        (Printf.sprintf "massbft: cannot read %s %s: %s" what file e);
      exit usage_error
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      text

let parse_faults_or_die ~(spec : Topology.spec) file =
  let what = "fault schedule" in
  let text = read_file_or_die ~what file in
  match Fault_spec.of_string text with
  | exception Fault_spec.Parse_error msg -> die_parse ~what ~file msg
  | schedule -> (
      match
        Fault_spec.validate ~group_sizes:spec.Topology.group_sizes schedule
      with
      | Ok () -> schedule
      | Error msg -> die_parse ~what ~file msg)

let parse_adversary_or_die ~(spec : Topology.spec) file =
  let what = "adversary plan" in
  let text = read_file_or_die ~what file in
  match Adv_spec.of_string text with
  | exception Adv_spec.Parse_error msg -> die_parse ~what ~file msg
  | plan -> (
      match Adv_spec.validate ~group_sizes:spec.Topology.group_sizes plan with
      | Ok () -> plan
      | Error msg -> die_parse ~what ~file msg)

let parse_reconfig_or_die ~(spec : Topology.spec) file =
  let what = "reconfiguration plan" in
  let text = read_file_or_die ~what file in
  match Reconfig_spec.of_string text with
  | exception Reconfig_spec.Parse_error msg -> die_parse ~what ~file msg
  | plan -> (
      match
        Reconfig_spec.validate ~group_sizes:spec.Topology.group_sizes plan
      with
      | Ok () -> plan
      | Error msg -> die_parse ~what ~file msg)

let system_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "massbft" -> Ok Config.Massbft
    | "baseline" -> Ok Config.Baseline
    | "geobft" -> Ok Config.Geobft
    | "steward" -> Ok Config.Steward
    | "iss" -> Ok Config.Iss
    | "br" -> Ok Config.Br
    | "ebr" -> Ok Config.Ebr
    | other ->
        (* One line, exit 2 — same contract as a malformed plan file, and
           terser than cmdliner's usage dump for the common typo. *)
        prerr_endline
          (Printf.sprintf
             "massbft: unknown system %S (known: massbft, baseline, geobft, \
              steward, iss, br, ebr)"
             other);
        exit usage_error
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Config.system_name s))

let workload_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "ycsb-a" | "ycsba" -> Ok W.Ycsb_a
    | "ycsb-b" | "ycsbb" -> Ok W.Ycsb_b
    | "smallbank" -> Ok W.Smallbank
    | "tpcc" | "tpc-c" -> Ok W.Tpcc
    | other -> Error (`Msg (Printf.sprintf "unknown workload %S" other))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt (W.kind_name w))

(* ---- shared experiment options (run + trace) ---- *)

let system_arg =
  Arg.(value & opt system_conv Config.Massbft & info [ "system"; "s" ]
         ~doc:"System under test: massbft|baseline|geobft|steward|iss|br|ebr.")

let workload_arg =
  Arg.(value & opt workload_conv W.Ycsb_a & info [ "workload"; "w" ]
         ~doc:"Workload: ycsb-a|ycsb-b|smallbank|tpcc.")

let nodes_arg =
  Arg.(value & opt int 7 & info [ "nodes"; "n" ] ~doc:"Nodes per group.")

let groups_arg =
  Arg.(value & opt int 3 & info [ "groups"; "g" ]
         ~doc:"Number of groups (data centers).")

let worldwide_arg =
  Arg.(value & flag & info [ "worldwide" ]
         ~doc:"Use the worldwide RTT matrix (HK/London/SV) instead of nationwide.")

let warmup_arg =
  Arg.(value & opt float 4.0 & info [ "warmup" ] ~doc:"Warm-up, simulated seconds.")

let scale_arg =
  Arg.(value & opt float 0.1 & info [ "scale" ]
         ~doc:"Workload keyspace scale in (0,1]; 1.0 is the paper's full size.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ]
         ~doc:"OCaml domains pumping the per-group scheduler shards \
               (clamped to the group count). 1 is the sequential merge \
               driver; more run the WAN-lookahead parallel driver, which \
               preserves committed results and invariant verdicts but \
               not event interleaving (so --trace/--metrics need 1).")

let experiment_setup ~system ~workload ~nodes ~groups ~worldwide ~scale ~seed =
  let cfg =
    {
      (Config.default ~system ~workload ()) with
      Config.workload_scale = scale;
      seed = Int64.of_int seed;
    }
  in
  let spec =
    if worldwide then Clusters.worldwide ~nodes_per_group:nodes ()
    else Clusters.nationwide ~nodes_per_group:nodes ~groups ()
  in
  (cfg, spec)

(* ---- run ---- *)

let run_cmd =
  let duration =
    Arg.(value & opt float 12.0 & info [ "duration"; "d" ]
           ~doc:"Measurement window, simulated seconds.")
  in
  let latency_probe =
    Arg.(value & flag & info [ "latency-probe" ]
           ~doc:"Light-load run (small batches) for latency measurement.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Also record a structured trace and write it to $(docv) as \
                 Chrome trace_event JSON (open in Perfetto).")
  in
  let metrics_file =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Also sample resource metrics and write them to $(docv): \
                 Prometheus text exposition by default, the JSON export \
                 for a .json destination, the per-tick CSV for .csv.")
  in
  let faults_file =
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"FILE"
           ~doc:"Inject the fault schedule in $(docv) (one event per line, \
                 see DESIGN.md \"Fault model\"; times are absolute simulated \
                 seconds, so the warm-up window precedes time warmup).")
  in
  let adversary_file =
    Arg.(value & opt (some string) None & info [ "adversary" ] ~docv:"FILE"
           ~doc:"Arm the Byzantine adversary plan in $(docv) (one strategy \
                 per line, see DESIGN.md \"Adversary model\"; absolute \
                 simulated seconds, like --faults).")
  in
  let reconfig_file =
    Arg.(value & opt (some string) None & info [ "reconfig" ] ~docv:"FILE"
           ~doc:"Execute the live-membership reconfiguration plan in $(docv) \
                 (one \"@TIME COMMAND\" per line, see DESIGN.md \
                 \"Reconfiguration\"; absolute simulated seconds, like \
                 --faults). Joining slots and groups are provisioned before \
                 the cluster starts and activated at epoch boundaries after \
                 state transfer. Requires --domains 1.")
  in
  let prof_file =
    Arg.(value & opt (some string) None & info [ "prof" ] ~docv:"FILE"
           ~doc:"Also self-profile the simulator's host-side execution \
                 (execute / barrier-stall / mailbox-merge / coordinator \
                 wall-time phases plus GC deltas per window) and write the \
                 profiler's JSON report to $(docv). Works in every run mode \
                 including --domains > 1; with --trace, the exported trace \
                 additionally carries the host timeline.")
  in
  let action system workload nodes groups worldwide duration warmup scale seed
      domains latency_probe trace_file metrics_file faults_file adversary_file
      reconfig_file prof_file =
    let cfg, spec =
      experiment_setup ~system ~workload ~nodes ~groups ~worldwide ~scale ~seed
    in
    let faults = Option.map (parse_faults_or_die ~spec) faults_file in
    let adversary = Option.map (parse_adversary_or_die ~spec) adversary_file in
    let reconfig = Option.map (parse_reconfig_or_die ~spec) reconfig_file in
    let sink = Option.map (fun _ -> Trace.create ()) trace_file in
    let prof = Option.map (fun _ -> Prof.create ()) prof_file in
    let obs =
      Option.map (fun _ -> Sampler.create (Obs_registry.create ())) metrics_file
    in
    let r =
      if latency_probe then
        Runner.run_latency_probe ~duration ~warmup ?trace:sink ?obs ?prof
          ?faults ?adversary ?reconfig ~domains ~spec ~cfg ()
      else
        Runner.run ~duration ~warmup ?trace:sink ?obs ?prof ?faults ?adversary
          ?reconfig ~domains ~spec ~cfg ()
    in
    Format.printf "%a@." Runner.pp_result r;
    List.iter
      (fun (p, ms) -> Format.printf "  %-20s %8.2f ms@." p ms)
      r.Runner.phases_ms;
    List.iteri
      (fun g t -> Format.printf "  group %d: %.2f ktps@." g t)
      r.Runner.per_group_ktps;
    (match (metrics_file, obs) with
    | Some file, Some s ->
        let text =
          if Filename.check_suffix file ".json" then
            Exposition.json (Sampler.registry s)
          else if Filename.check_suffix file ".csv" then Sampler.csv s
          else Exposition.prometheus (Sampler.registry s)
        in
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        (match r.Runner.binding_resource with
        | Some res -> Format.printf "binding resource: %s@." res
        | None -> ());
        Format.printf "metrics: wrote %s (%d series, %d ticks)@." file
          (List.length (Obs_registry.collect (Sampler.registry s)))
          (Sampler.tick_count s)
    | _ -> ());
    (match (prof_file, prof) with
    | Some file, Some p ->
        Prof_export.write_json ~windows:true p file;
        Format.printf "prof: wrote %s@." file;
        print_string (Prof_export.text (Prof.report p))
    | _ -> ());
    match (trace_file, sink) with
    | Some file, Some tr ->
        let host = Option.map Prof_export.to_trace prof in
        Trace_export.write_chrome_json ?host tr file;
        Format.printf "trace: wrote %s (%d events retained, %d dropped%s)@."
          file (Trace.length tr) (Trace.dropped tr)
          (if host = None then "" else ", host timeline attached")
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment on the simulated geo-cluster.")
    Term.(
      const action $ system_arg $ workload_arg $ nodes_arg $ groups_arg
      $ worldwide_arg $ duration $ warmup_arg $ scale_arg $ seed_arg
      $ domains_arg $ latency_probe $ trace_file $ metrics_file $ faults_file
      $ adversary_file $ reconfig_file $ prof_file)

(* ---- trace ---- *)

let trace_cmd =
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration"; "d" ]
           ~doc:"Measurement window, simulated seconds (short by default: \
                 traces grow with simulated time).")
  in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Where to write the Chrome trace_event JSON.")
  in
  let capacity =
    Arg.(value & opt int 262144 & info [ "capacity" ]
           ~doc:"Ring-buffer capacity in events; beyond it the oldest events \
                 are dropped (and counted).")
  in
  let report =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Also print the per-entry critical-path report.")
  in
  let action system workload nodes groups worldwide duration warmup scale seed
      out capacity report =
    if capacity <= 0 then begin
      prerr_endline "massbft: option '--capacity': must be positive";
      exit 124 (* cmdliner's CLI-error exit status *)
    end;
    (* Fail on an unwritable destination now, not after the run. *)
    (match open_out out with
    | oc -> close_out oc
    | exception Sys_error e ->
        prerr_endline ("massbft: cannot write trace: " ^ e);
        exit 1);
    let cfg, spec =
      experiment_setup ~system ~workload ~nodes ~groups ~worldwide ~scale ~seed
    in
    let tr = Trace.create ~capacity () in
    let r = Runner.run ~duration ~warmup ~trace:tr ~spec ~cfg () in
    Trace_export.write_chrome_json tr out;
    Format.printf "%a@." Runner.pp_result r;
    Format.printf "trace: wrote %s (%d events retained, %d emitted, %d dropped)@."
      out (Trace.length tr) (Trace.emitted tr) (Trace.dropped tr);
    if report then print_string (Trace_export.critical_path_report tr)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one experiment with event tracing on and export a \
          Perfetto-loadable trace plus an optional critical-path report.")
    Term.(
      const action $ system_arg $ workload_arg $ nodes_arg $ groups_arg
      $ worldwide_arg $ duration $ warmup_arg $ scale_arg $ seed_arg $ out
      $ capacity $ report)

(* ---- metrics ---- *)

let metrics_cmd =
  let duration =
    Arg.(value & opt float 6.0 & info [ "duration"; "d" ]
           ~doc:"Measurement window, simulated seconds.")
  in
  let period =
    Arg.(value & opt float 0.1 & info [ "period" ]
           ~doc:"Sampling tick, simulated seconds.")
  in
  let threshold =
    Arg.(value & opt float 0.95 & info [ "threshold" ]
           ~doc:"Busy fraction above which a sampling window counts as \
                 saturated.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Also write the registry to $(docv) (same format selection \
                 as 'run --metrics').")
  in
  let action system workload nodes groups worldwide duration warmup scale seed
      period threshold out =
    if period <= 0.0 then begin
      prerr_endline "massbft: option '--period': must be positive";
      exit 124
    end;
    let cfg, spec =
      experiment_setup ~system ~workload ~nodes ~groups ~worldwide ~scale ~seed
    in
    let s = Sampler.create ~period (Obs_registry.create ()) in
    let r = Runner.run ~duration ~warmup ~obs:s ~spec ~cfg () in
    Format.printf "%a@." Runner.pp_result r;
    List.iteri
      (fun g b ->
        Format.printf "  leader g%d: wan_up busy %.2f  cpu %.2f@." g b
          (List.nth r.Runner.leader_cpu_util g))
      r.Runner.leader_wan_busy;
    print_string (Saturation.report ~threshold s);
    match out with
    | None -> ()
    | Some file ->
        let text =
          if Filename.check_suffix file ".json" then
            Exposition.json (Sampler.registry s)
          else if Filename.check_suffix file ".csv" then Sampler.csv s
          else Exposition.prometheus (Sampler.registry s)
        in
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Format.printf "metrics: wrote %s@." file
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one experiment with resource sampling on and print the \
          saturation report attributing the binding resource.")
    Term.(
      const action $ system_arg $ workload_arg $ nodes_arg $ groups_arg
      $ worldwide_arg $ duration $ warmup_arg $ scale_arg $ seed_arg $ period
      $ threshold $ out)

(* ---- drill ---- *)

let drill_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ]
           ~doc:"Chaos seed: deterministically generates the fault schedule \
                 (same seed, system and cluster shape => byte-identical \
                 schedule and run).")
  in
  let seed_range_conv =
    let parse s =
      let err () =
        Error
          (`Msg (Printf.sprintf "bad seed range %S (expected N or A..B)" s))
      in
      match String.index_opt s '.' with
      | None -> (
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok (1, n)
          | _ -> err ())
      | Some i when i + 1 < String.length s && s.[i + 1] = '.' -> (
          let a = String.sub s 0 i in
          let b = String.sub s (i + 2) (String.length s - i - 2) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when a <= b -> Ok (a, b)
          | _ -> err ())
      | Some _ -> err ()
    in
    Arg.conv (parse, fun fmt (a, b) -> Format.fprintf fmt "%d..%d" a b)
  in
  let seeds =
    Arg.(value & opt (some seed_range_conv) None & info [ "seeds" ]
           ~docv:"RANGE"
           ~doc:"Campaign mode: run a seed range instead of --seed; $(docv) \
                 is either N (meaning 1..N) or A..B inclusive.")
  in
  let strategies_conv =
    let parse s =
      let names =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      if names = [] then Error (`Msg "empty strategy list")
      else
        match
          List.find_opt
            (fun n -> not (List.mem n Adv_spec.kind_names))
            names
        with
        | Some bad ->
            Error
              (`Msg
                 (Printf.sprintf "unknown strategy %S (known: %s)" bad
                    (String.concat ", " Adv_spec.kind_names)))
        | None -> Ok names
    in
    Arg.conv
      (parse, fun fmt l -> Format.pp_print_string fmt (String.concat "," l))
  in
  let adversaries =
    Arg.(value & opt (some strategies_conv) None & info [ "adversary" ]
           ~docv:"STRAT[,STRAT...]"
           ~doc:"Drill Byzantine adversary strategies instead of random \
                 benign faults: each strategy becomes a campaign axis point \
                 whose generated plan (plus any trigger faults) runs per \
                 system and seed. A run passes when it upholds every \
                 invariant, or when each safety violation is pinned on a \
                 provably-equivocating node by a verified \
                 conflicting-signed-message evidence pair.")
  in
  let kinds_conv =
    let parse s =
      let names =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      if names = [] then Error (`Msg "empty reconfiguration kind list")
      else
        match
          List.find_opt
            (fun n -> not (List.mem n Chaos.reconfig_kinds))
            names
        with
        | Some bad ->
            Error
              (`Msg
                 (Printf.sprintf "unknown reconfiguration kind %S (known: %s)"
                    bad
                    (String.concat ", " Chaos.reconfig_kinds)))
        | None -> Ok names
    in
    Arg.conv
      (parse, fun fmt l -> Format.pp_print_string fmt (String.concat "," l))
  in
  let reconfigs =
    Arg.(value & opt (some kinds_conv) None & info [ "reconfig" ]
           ~docv:"KIND[,KIND...]"
           ~doc:"Drill live membership reconfiguration: each kind becomes a \
                 campaign axis point whose generated membership-change \
                 scenario (plus paired chaos — joins race a mid-transfer \
                 crash of the joining hardware) runs per system and seed. \
                 Composes with --adversary to drill Byzantine behaviour \
                 during a membership change. The plan is the scenario's \
                 identity and is never shrunk.")
  in
  let all_systems =
    Arg.(value & flag & info [ "all-systems" ]
           ~doc:"Drill every system, not just --system.")
  in
  let duration =
    Arg.(value & opt float 10.0 & info [ "duration"; "d" ]
           ~doc:"Simulated seconds per run (extended automatically past the \
                 schedule's heal time for the liveness verdict).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Short runs (8 simulated seconds) for CI smoke campaigns.")
  in
  let scale =
    Arg.(value & opt float 0.01 & info [ "scale" ]
           ~doc:"Workload keyspace scale in (0,1] (small by default: drills \
                 test fault handling, not peak throughput).")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ]
           ~doc:"Skip delta-debugging shrink of failing schedules.")
  in
  let artifacts =
    Arg.(value & opt (some string) None & info [ "artifacts" ] ~docv:"DIR"
           ~doc:"Write each failing schedule (and its shrunk form) to \
                 $(docv)/fail-SYSTEM-seedS.faults for CI upload.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a structured trace of the (single-seed) drill and \
                 write Chrome trace_event JSON to $(docv); fault injections \
                 appear as 'fault'-category spans.")
  in
  let action system all_systems nodes groups worldwide scale seed seeds
      adversaries reconfigs duration quick no_shrink artifacts trace_file
      domains =
    let duration = if quick then 8.0 else duration in
    let cfg =
      { (Config.default ~system ()) with Config.workload_scale = scale }
    in
    let spec =
      if worldwide then Clusters.worldwide ~nodes_per_group:nodes ()
      else Clusters.nationwide ~nodes_per_group:nodes ~groups ()
    in
    (* An adversary run is bad only when a violation lacks a verified
       evidence pair: a caught-and-provable equivocation is the
       accountability machinery succeeding, a silent or unprovable one
       is a real bug. Plain fault runs keep the strict criterion. *)
    let bad (r : Chaos.drill_result) =
      Chaos.failed r.Chaos.outcome
      && (r.Chaos.strategy = None
         || not (Chaos.accountable r.Chaos.outcome))
    in
    let artifact_stem (r : Chaos.drill_result) =
      Printf.sprintf "fail-%s%s%s-seed%Ld"
        (String.lowercase_ascii (Config.system_name r.Chaos.system))
        (match r.Chaos.strategy with None -> "" | Some s -> "-" ^ s)
        (match r.Chaos.reconfig_kind with None -> "" | Some k -> "-" ^ k)
        r.Chaos.seed
    in
    let save_artifact (r : Chaos.drill_result) =
      match artifacts with
      | None -> ()
      | Some dir ->
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let file = Filename.concat dir (artifact_stem r ^ ".faults") in
          let oc = open_out file in
          Printf.fprintf oc "# %s\n# %s\n%s"
            (Chaos.repro_line ?adversary:r.Chaos.strategy
               ?reconfig:r.Chaos.reconfig_kind ~domains ~seed:r.Chaos.seed
               ~system:r.Chaos.system ())
            (String.concat "; "
               (List.map Massbft_faults.Invariants.violation_to_string
                  r.Chaos.outcome.Chaos.violations))
            (Fault_spec.to_string r.Chaos.outcome.Chaos.schedule);
          (match r.Chaos.shrunk with
          | Some s ->
              Printf.fprintf oc "# shrunk to %d event(s):\n%s"
                (List.length s)
                (String.concat ""
                   (List.map
                      (fun e -> "#   " ^ Fault_spec.event_to_string e ^ "\n")
                      s))
          | None -> ());
          close_out oc;
          Format.printf "artifact: wrote %s@." file;
          (* The adversary plan reproduces through `run --adversary`,
             so it ships as its own loadable file. *)
          (if r.Chaos.outcome.Chaos.adversary <> [] then begin
             let afile = Filename.concat dir (artifact_stem r ^ ".adversary") in
             let oc = open_out afile in
             Printf.fprintf oc "%s"
               (Adv_spec.to_string r.Chaos.outcome.Chaos.adversary);
             (match r.Chaos.shrunk_adversary with
             | Some p ->
                 Printf.fprintf oc "# shrunk to %d event(s):\n%s"
                   (List.length p)
                   (String.concat ""
                      (List.map
                         (fun e -> "#   " ^ Adv_spec.event_to_string e ^ "\n")
                         p))
             | None -> ());
             close_out oc;
             Format.printf "artifact: wrote %s@." afile
           end);
          (* The membership plan reproduces through `run --reconfig`, so
             it also ships as its own loadable file. *)
          (if r.Chaos.outcome.Chaos.reconfig <> [] then begin
             let rfile = Filename.concat dir (artifact_stem r ^ ".reconfig") in
             let oc = open_out rfile in
             output_string oc
               (Reconfig_spec.to_string r.Chaos.outcome.Chaos.reconfig);
             close_out oc;
             Format.printf "artifact: wrote %s@." rfile
           end);
          match r.Chaos.outcome.Chaos.evidence with
          | [] -> ()
          | pairs ->
              let efile = Filename.concat dir (artifact_stem r ^ ".evidence") in
              let oc = open_out efile in
              List.iter
                (fun p -> output_string oc (Evidence.pair_to_string p))
                pairs;
              close_out oc;
              Format.printf "artifact: wrote %s (%d conflict pairs)@." efile
                (List.length pairs)
    in
    let report (r : Chaos.drill_result) =
      Format.printf "%a@." Chaos.pp_drill r;
      if Chaos.failed r.Chaos.outcome then begin
        List.iter
          (fun v ->
            Format.printf "  violation: %s@."
              (Massbft_faults.Invariants.violation_to_string v))
          r.Chaos.outcome.Chaos.violations;
        (match r.Chaos.outcome.Chaos.evidence with
        | [] -> ()
        | pairs ->
            Format.printf "  evidence: %d verified conflict pair(s)%s@."
              (List.length pairs)
              (if Chaos.accountable r.Chaos.outcome then
                 " — every violation accounted for"
               else ""));
        if r.Chaos.outcome.Chaos.adversary <> [] then begin
          Format.printf "  adversary:@.";
          List.iter
            (fun e -> Format.printf "    %s@." (Adv_spec.event_to_string e))
            r.Chaos.outcome.Chaos.adversary;
          match r.Chaos.shrunk_adversary with
          | Some p ->
              Format.printf "  adversary shrunk to %d event(s):@."
                (List.length p);
              List.iter
                (fun e ->
                  Format.printf "    %s@." (Adv_spec.event_to_string e))
                p
          | None -> ()
        end;
        if r.Chaos.outcome.Chaos.reconfig <> [] then begin
          Format.printf "  reconfiguration:@.";
          List.iter
            (fun e ->
              Format.printf "    %s@." (Reconfig_spec.event_to_string e))
            r.Chaos.outcome.Chaos.reconfig
        end;
        Format.printf "  schedule:@.";
        List.iter
          (fun e -> Format.printf "    %s@." (Fault_spec.event_to_string e))
          r.Chaos.outcome.Chaos.schedule;
        (match r.Chaos.shrunk with
        | Some s ->
            Format.printf "  shrunk to %d event(s):@." (List.length s);
            List.iter
              (fun e -> Format.printf "    %s@." (Fault_spec.event_to_string e))
              s
        | None -> ());
        Format.printf "  repro: %s@."
          (Chaos.repro_line ?adversary:r.Chaos.strategy
             ?reconfig:r.Chaos.reconfig_kind ~domains ~seed:r.Chaos.seed
             ~system:r.Chaos.system ());
        save_artifact r
      end
    in
    let failures =
      match seeds with
      | Some (lo, hi) ->
          let seeds =
            List.init (hi - lo + 1) (fun i -> Int64.of_int (lo + i))
          in
          let systems = if all_systems then Config.all_systems else [ system ] in
          let c =
            Chaos.campaign ~duration ~shrink_failures:(not no_shrink) ~systems
              ~adversaries:(Option.value ~default:[] adversaries)
              ~reconfigs:(Option.value ~default:[] reconfigs)
              ~on_run:report ~domains ~spec ~cfg ~seeds ()
          in
          let hard = List.filter bad c.Chaos.results in
          Format.printf "campaign: %d runs, %d failed%s@." c.Chaos.total
            (List.length hard)
            (let accounted =
               List.length c.Chaos.failures - List.length hard
             in
             if accounted > 0 then
               Printf.sprintf " (+%d accountable, evidence on file)" accounted
             else "");
          List.length hard
      | None ->
          let systems = if all_systems then Config.all_systems else [ system ] in
          let axis =
            match adversaries with
            | None -> [ None ]
            | Some l -> List.map Option.some l
          in
          let rec_axis =
            match reconfigs with
            | None -> [ None ]
            | Some l -> List.map Option.some l
          in
          let sink = Option.map (fun _ -> Trace.create ()) trace_file in
          let results =
            List.concat_map
              (fun system ->
                List.concat_map
                  (fun adversary ->
                    List.map
                      (fun reconfig ->
                        let r =
                          Chaos.drill ~duration
                            ~shrink_failures:(not no_shrink) ?trace:sink
                            ?adversary ?reconfig ~domains ~spec
                            ~cfg:{ cfg with Config.system }
                            ~seed:(Int64.of_int seed) ()
                        in
                        report r;
                        r)
                      rec_axis)
                  axis)
              systems
          in
          (match (trace_file, sink) with
          | Some file, Some tr ->
              Trace_export.write_chrome_json tr file;
              Format.printf "trace: wrote %s (%d events retained, %d dropped)@."
                file (Trace.length tr) (Trace.dropped tr)
          | _ -> ());
          List.length (List.filter bad results)
    in
    if failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "drill"
       ~doc:
         "Chaos drill: generate a seeded random fault schedule (or, with \
          --adversary, a Byzantine strategy plan; with --reconfig, a live \
          membership-change scenario under chaos), inject it, and check \
          safety and liveness invariants; failing schedules and plans are \
          shrunk to minimal reproducers. Exits nonzero on any violation a \
          verified evidence pair cannot account for.")
    Term.(
      const action $ system_arg $ all_systems $ nodes_arg $ groups_arg
      $ worldwide_arg $ scale $ seed $ seeds $ adversaries $ reconfigs
      $ duration $ quick $ no_shrink $ artifacts $ trace_file $ domains_arg)

(* ---- prof ---- *)

let prof_cmd =
  let duration =
    Arg.(value & opt float 6.0 & info [ "duration"; "d" ]
           ~doc:"Measurement window, simulated seconds.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Also write the profiler's JSON report (with the raw \
                 per-window log) to $(docv).")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Also write a Perfetto-loadable trace to $(docv). With \
                 --domains 1 it carries both the simulated timeline and the \
                 host timeline side by side; parallel runs (which reject \
                 the sim trace sink) export the host timeline alone.")
  in
  let action system workload nodes groups worldwide duration warmup scale seed
      domains out trace_file =
    let cfg, spec =
      experiment_setup ~system ~workload ~nodes ~groups ~worldwide ~scale ~seed
    in
    let p = Prof.create () in
    (* The sim-timeline sink only composes with the sequential driver. *)
    let sink =
      match trace_file with
      | Some _ when domains <= 1 -> Some (Trace.create ())
      | _ -> None
    in
    let r = Runner.run ~duration ~warmup ?trace:sink ~prof:p ~domains ~spec ~cfg () in
    Format.printf "%a@.@." Runner.pp_result r;
    print_string (Prof_export.text (Prof.report p));
    (match out with
    | None -> ()
    | Some file ->
        Prof_export.write_json ~windows:true p file;
        Format.printf "prof: wrote %s@." file);
    match trace_file with
    | None -> ()
    | Some file ->
        let host = Prof_export.to_trace p in
        let sim_tr = match sink with Some tr -> tr | None -> Trace.create ~capacity:1 () in
        Trace_export.write_chrome_json ~host sim_tr file;
        Format.printf "trace: wrote %s (%s)@." file
          (if sink = None then "host timeline only"
           else "sim + host timelines")
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:
         "Run one experiment with host-side self-profiling on: account the \
          simulator's own wall-clock into execute / barrier-stall / \
          mailbox-merge / coordinator phases per scheduler window, sample GC \
          deltas, and print the parallel-efficiency report (ranked \
          wall-time attribution, per-domain busy fractions, lookahead \
          utilization).")
    Term.(
      const action $ system_arg $ workload_arg $ nodes_arg $ groups_arg
      $ worldwide_arg $ duration $ warmup_arg $ scale_arg $ seed_arg
      $ domains_arg $ out $ trace_file)

(* ---- bench ---- *)

let bench_cmd =
  let full =
    Arg.(value & flag & info [ "full" ]
           ~doc:"Run the full bechamel quota instead of the quick smoke \
                 pass. The gate compares against committed baselines that \
                 were measured in full mode; quick mode stays within the \
                 default tolerance for every current benchmark and is what \
                 CI uses.")
  in
  let check_file =
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE"
           ~doc:"Compare this run's micro results against the baseline \
                 report $(docv) (a committed BENCH_<date>.json) and exit \
                 non-zero when any benchmark regressed past the tolerance \
                 or disappeared from the suite.")
  in
  let tolerance =
    Arg.(value & opt float 25.0 & info [ "tolerance" ] ~docv:"PCT"
           ~doc:"Per-benchmark tolerance for --check, in percent.")
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write this run's micro results to $(docv) in the \
                 Bench_report schema (micro rows only; the bench executable \
                 writes full baselines).")
  in
  let action full check_file tolerance json_file =
    if tolerance <= 0.0 then begin
      prerr_endline "massbft: option '--tolerance': must be positive";
      exit 124
    end;
    let micros = Massbft_bench.Micros.run_micro ~quick:(not full) () in
    (match json_file with
    | None -> ()
    | Some file ->
        let tm = Unix.localtime (Unix.time ()) in
        let date =
          Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
            (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
        in
        let doc =
          Bench_report.to_json ~date
            ~mode:(if full then "full" else "quick")
            ~micros ~macros:[] ()
        in
        let oc = open_out file in
        output_string oc doc;
        close_out oc;
        Format.printf "wrote %s@." file);
    match check_file with
    | None -> ()
    | Some file ->
        let baseline =
          try Bench_check.load_baseline file
          with Failure msg ->
            prerr_endline ("massbft: bad baseline: " ^ msg);
            exit 1
        in
        let current =
          List.map
            (fun (m : Bench_report.micro) -> (m.m_name, m.ns_per_run))
            micros
        in
        let result =
          Bench_check.compare_micros ~tolerance:(tolerance /. 100.0) ~baseline
            ~current ()
        in
        print_string (Bench_check.render ~baseline result);
        if not (Bench_check.passed result) then exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the micro-benchmark suite; with --check, gate against a \
          committed baseline report and exit non-zero on regressions.")
    Term.(const action $ full $ check_file $ tolerance $ json_file)

(* ---- figures ---- *)

let figures_cmd =
  let ids =
    Arg.(value & pos_all string [] & info []
           ~doc:"Figure ids to run (default: all). See 'massbft list'.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Short windows and reduced sweeps (for smoke runs).")
  in
  let action ids quick =
    let selected =
      match ids with
      | [] -> Figures.all
      | ids ->
          List.filter (fun (id, _, _) -> List.mem id ids) Figures.all
    in
    if selected = [] then prerr_endline "no matching figures (see 'massbft list')"
    else
      List.iter
        (fun (_, _, (f : ?quick:bool -> unit -> Figures.figure)) ->
          Format.printf "%a@." Figures.pp_figure (f ~quick ()))
        selected
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const action $ ids $ quick)

let list_cmd =
  let action () =
    List.iter
      (fun (id, doc, _) -> Format.printf "%-8s %s@." id doc)
      Figures.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the reproducible figures.")
    Term.(const action $ const ())

(* ---- plan ---- *)

let plan_cmd =
  let n1 = Arg.(required & opt (some int) None & info [ "n1" ] ~doc:"Sender group size.") in
  let n2 = Arg.(required & opt (some int) None & info [ "n2" ] ~doc:"Receiver group size.") in
  let action n1 n2 =
    let p = Massbft.Transfer_plan.generate ~n1 ~n2 in
    Format.printf
      "transfer plan %d -> %d: n_total=%d n_data=%d n_parity=%d per-sender=%d \
       per-receiver=%d redundancy=%.3f entry copies@."
      n1 n2 p.Massbft.Transfer_plan.n_total p.Massbft.Transfer_plan.n_data
      p.Massbft.Transfer_plan.n_parity p.Massbft.Transfer_plan.nc_send
      p.Massbft.Transfer_plan.nc_recv
      (Massbft.Transfer_plan.redundancy p);
    for s = 0 to n1 - 1 do
      Format.printf "  sender %2d ships:" s;
      List.iter
        (fun (c, r) -> Format.printf " chunk %d->node %d" c r)
        (Massbft.Transfer_plan.sends_of p ~sender:s);
      Format.printf "@."
    done
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Print the Algorithm 1 transfer plan for a group pair.")
    Term.(const action $ n1 $ n2)

let main =
  Cmd.group
    (Cmd.info "massbft" ~version:"1.0.0"
       ~doc:
         "MassBFT: fast and scalable geo-distributed BFT consensus \
          (reproduction of the ICDE 2025 paper).")
    [ run_cmd; trace_cmd; metrics_cmd; prof_cmd; bench_cmd; drill_cmd;
      figures_cmd; list_cmd; plan_cmd ]

let () = exit (Cmd.eval main)
