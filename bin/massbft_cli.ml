(* The massbft command-line tool: run single experiments, regenerate
   the paper's figures, and inspect transfer plans. *)

open Cmdliner
module Config = Massbft.Config
module W = Massbft_workload.Workload
module Runner = Massbft_harness.Runner
module Clusters = Massbft_harness.Clusters
module Figures = Massbft_harness.Figures

let system_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "massbft" -> Ok Config.Massbft
    | "baseline" -> Ok Config.Baseline
    | "geobft" -> Ok Config.Geobft
    | "steward" -> Ok Config.Steward
    | "iss" -> Ok Config.Iss
    | "br" -> Ok Config.Br
    | "ebr" -> Ok Config.Ebr
    | other -> Error (`Msg (Printf.sprintf "unknown system %S" other))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Config.system_name s))

let workload_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "ycsb-a" | "ycsba" -> Ok W.Ycsb_a
    | "ycsb-b" | "ycsbb" -> Ok W.Ycsb_b
    | "smallbank" -> Ok W.Smallbank
    | "tpcc" | "tpc-c" -> Ok W.Tpcc
    | other -> Error (`Msg (Printf.sprintf "unknown workload %S" other))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt (W.kind_name w))

(* ---- run ---- *)

let run_cmd =
  let system =
    Arg.(value & opt system_conv Config.Massbft & info [ "system"; "s" ]
           ~doc:"System under test: massbft|baseline|geobft|steward|iss|br|ebr.")
  in
  let workload =
    Arg.(value & opt workload_conv W.Ycsb_a & info [ "workload"; "w" ]
           ~doc:"Workload: ycsb-a|ycsb-b|smallbank|tpcc.")
  in
  let nodes =
    Arg.(value & opt int 7 & info [ "nodes"; "n" ] ~doc:"Nodes per group.")
  in
  let groups =
    Arg.(value & opt int 3 & info [ "groups"; "g" ] ~doc:"Number of groups (data centers).")
  in
  let worldwide =
    Arg.(value & flag & info [ "worldwide" ]
           ~doc:"Use the worldwide RTT matrix (HK/London/SV) instead of nationwide.")
  in
  let duration =
    Arg.(value & opt float 12.0 & info [ "duration"; "d" ]
           ~doc:"Measurement window, simulated seconds.")
  in
  let warmup =
    Arg.(value & opt float 4.0 & info [ "warmup" ] ~doc:"Warm-up, simulated seconds.")
  in
  let scale =
    Arg.(value & opt float 0.1 & info [ "scale" ]
           ~doc:"Workload keyspace scale in (0,1]; 1.0 is the paper's full size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let latency_probe =
    Arg.(value & flag & info [ "latency-probe" ]
           ~doc:"Light-load run (small batches) for latency measurement.")
  in
  let action system workload nodes groups worldwide duration warmup scale seed
      latency_probe =
    let cfg =
      {
        (Config.default ~system ~workload ()) with
        Config.workload_scale = scale;
        seed = Int64.of_int seed;
      }
    in
    let spec =
      if worldwide then Clusters.worldwide ~nodes_per_group:nodes ()
      else Clusters.nationwide ~nodes_per_group:nodes ~groups ()
    in
    let r =
      if latency_probe then
        Runner.run_latency_probe ~duration ~warmup ~spec ~cfg ()
      else Runner.run ~duration ~warmup ~spec ~cfg ()
    in
    Format.printf "%a@." Runner.pp_result r;
    List.iter
      (fun (p, ms) -> Format.printf "  %-20s %8.2f ms@." p ms)
      r.Runner.phases_ms;
    List.iteri
      (fun g t -> Format.printf "  group %d: %.2f ktps@." g t)
      r.Runner.per_group_ktps
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment on the simulated geo-cluster.")
    Term.(
      const action $ system $ workload $ nodes $ groups $ worldwide $ duration
      $ warmup $ scale $ seed $ latency_probe)

(* ---- figures ---- *)

let figures_cmd =
  let ids =
    Arg.(value & pos_all string [] & info []
           ~doc:"Figure ids to run (default: all). See 'massbft list'.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Short windows and reduced sweeps (for smoke runs).")
  in
  let action ids quick =
    let selected =
      match ids with
      | [] -> Figures.all
      | ids ->
          List.filter (fun (id, _, _) -> List.mem id ids) Figures.all
    in
    if selected = [] then prerr_endline "no matching figures (see 'massbft list')"
    else
      List.iter
        (fun (_, _, (f : ?quick:bool -> unit -> Figures.figure)) ->
          Format.printf "%a@." Figures.pp_figure (f ~quick ()))
        selected
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const action $ ids $ quick)

let list_cmd =
  let action () =
    List.iter
      (fun (id, doc, _) -> Format.printf "%-8s %s@." id doc)
      Figures.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the reproducible figures.")
    Term.(const action $ const ())

(* ---- plan ---- *)

let plan_cmd =
  let n1 = Arg.(required & opt (some int) None & info [ "n1" ] ~doc:"Sender group size.") in
  let n2 = Arg.(required & opt (some int) None & info [ "n2" ] ~doc:"Receiver group size.") in
  let action n1 n2 =
    let p = Massbft.Transfer_plan.generate ~n1 ~n2 in
    Format.printf
      "transfer plan %d -> %d: n_total=%d n_data=%d n_parity=%d per-sender=%d \
       per-receiver=%d redundancy=%.3f entry copies@."
      n1 n2 p.Massbft.Transfer_plan.n_total p.Massbft.Transfer_plan.n_data
      p.Massbft.Transfer_plan.n_parity p.Massbft.Transfer_plan.nc_send
      p.Massbft.Transfer_plan.nc_recv
      (Massbft.Transfer_plan.redundancy p);
    for s = 0 to n1 - 1 do
      Format.printf "  sender %2d ships:" s;
      List.iter
        (fun (c, r) -> Format.printf " chunk %d->node %d" c r)
        (Massbft.Transfer_plan.sends_of p ~sender:s);
      Format.printf "@."
    done
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Print the Algorithm 1 transfer plan for a group pair.")
    Term.(const action $ n1 $ n2)

let main =
  Cmd.group
    (Cmd.info "massbft" ~version:"1.0.0"
       ~doc:
         "MassBFT: fast and scalable geo-distributed BFT consensus \
          (reproduction of the ICDE 2025 paper).")
    [ run_cmd; figures_cmd; list_cmd; plan_cmd ]

let () = exit (Cmd.eval main)
