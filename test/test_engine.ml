(* Integration tests: full protocol deployments over the simulated
   cluster. These check system-level properties — progress for every
   system, agreement on execution order and ledgers across groups,
   state convergence with independent stores, Byzantine chunk tampering
   tolerance, and group-crash takeover with VTS continuation. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Types = Massbft.Types
module Ledger = Massbft_exec.Ledger
module Stats = Massbft_util.Stats
module Clusters = Massbft_harness.Clusters

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Small, fast cluster: 3 groups x 4 nodes, tiny batches. *)
let small_cfg ?(system = Config.Massbft) () =
  {
    (Config.default ~system ()) with
    Config.max_batch = 40;
    pipeline = 4;
    workload_scale = 0.001;
  }

let small_spec ?group_sizes () =
  Clusters.nationwide ?group_sizes ~nodes_per_group:4 ()

let run_engine ?(until = 6.0) ?(cfg = small_cfg ()) ?(spec = small_spec ())
    ?(before_run = fun _ _ _ -> ()) () =
  let sim = Sim.create () in
  let topo = Topology.create sim spec in
  let eng = Engine.create sim topo cfg in
  Engine.start eng;
  before_run eng sim topo;
  Sim.run sim ~until;
  (eng, sim, topo)

let committed eng =
  Stats.Counter.get (Engine.metrics eng).Metrics.committed_txns

(* ------------------------------------------------------------------ *)
(* Progress for every system                                           *)
(* ------------------------------------------------------------------ *)

let test_all_systems_make_progress () =
  List.iter
    (fun system ->
      let eng, _, _ = run_engine ~cfg:(small_cfg ~system ()) () in
      let n = committed eng in
      check_bool
        (Printf.sprintf "%s commits transactions (%d)" (Config.system_name system) n)
        true (n > 200);
      check_bool
        (Printf.sprintf "%s executed entries" (Config.system_name system))
        true
        (Engine.entries_executed_total eng > 0))
    Config.all_systems

let test_all_groups_propose () =
  (* Multi-master: every group's entries appear in the executed order. *)
  let eng, _, _ = run_engine () in
  let ids = Engine.executed_ids eng ~gid:0 in
  List.iter
    (fun g ->
      check_bool
        (Printf.sprintf "group %d proposed and executed" g)
        true
        (List.exists (fun (e : Types.entry_id) -> e.Types.gid = g) ids))
    [ 0; 1; 2 ]

let test_steward_single_proposer_order () =
  (* Steward executes in the single Raft instance's commit order —
     identical at every leader. *)
  let eng, _, _ = run_engine ~cfg:(small_cfg ~system:Config.Steward ()) () in
  let a = Engine.executed_ids eng ~gid:0 in
  check_bool "some execution" true (List.length a > 5)

(* ------------------------------------------------------------------ *)
(* Agreement                                                           *)
(* ------------------------------------------------------------------ *)

let prefix_agree name a b =
  let common = min (List.length a) (List.length b) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  Alcotest.(check (list (pair int int)))
    name
    (List.map (fun (e : Types.entry_id) -> (e.Types.gid, e.Types.seq)) (take common a))
    (List.map (fun (e : Types.entry_id) -> (e.Types.gid, e.Types.seq)) (take common b))

let test_execution_agreement () =
  List.iter
    (fun system ->
      let eng, _, _ = run_engine ~cfg:(small_cfg ~system ()) () in
      let l0 = Engine.executed_ids eng ~gid:0 in
      let l1 = Engine.executed_ids eng ~gid:1 in
      let l2 = Engine.executed_ids eng ~gid:2 in
      check_bool "nonempty" true (List.length l0 > 5);
      prefix_agree (Config.system_name system ^ " 0~1") l0 l1;
      prefix_agree (Config.system_name system ^ " 0~2") l0 l2)
    [ Config.Massbft; Config.Baseline; Config.Geobft; Config.Steward; Config.Iss ]

let test_ledger_agreement () =
  let eng, _, _ = run_engine () in
  let la = Engine.ledger_of eng ~gid:0 in
  let lb = Engine.ledger_of eng ~gid:1 in
  check_bool "ledgers verify" true (Ledger.verify la && Ledger.verify lb);
  let common = min (Ledger.height la) (Ledger.height lb) in
  check_bool "nonempty ledgers" true (common > 5);
  check_int "hash-linked prefix identical" common (Ledger.equal_prefix la lb)

let test_store_convergence_independent () =
  (* With independent stores, leaders that executed the same number of
     entries hold byte-identical databases. *)
  let cfg = { (small_cfg ()) with Config.independent_stores = true } in
  let eng, _, _ = run_engine ~cfg () in
  let counts =
    List.map (fun g -> List.length (Engine.executed_ids eng ~gid:g)) [ 0; 1; 2 ]
  in
  check_bool "executed something" true (List.for_all (fun c -> c > 5) counts);
  (match counts with
  | [ a; b; c ] when a = b && b = c ->
      let f0 = Engine.leader_store_fingerprint eng ~gid:0 in
      let f1 = Engine.leader_store_fingerprint eng ~gid:1 in
      let f2 = Engine.leader_store_fingerprint eng ~gid:2 in
      Alcotest.(check string) "stores 0~1 converge" f0 f1;
      Alcotest.(check string) "stores 0~2 converge" f0 f2
  | _ ->
      (* Progress differed; agreement on the common prefix was already
         checked above. *)
      ());
  ignore (Engine.store_fingerprint eng)

let test_determinism_across_runs () =
  (* Same seed, same cluster: identical executed order and identical
     committed counts. *)
  let run () =
    let eng, _, _ = run_engine () in
    (Engine.executed_ids eng ~gid:0, committed eng)
  in
  let ids1, n1 = run () in
  let ids2, n2 = run () in
  check_int "same committed count" n1 n2;
  prefix_agree "same executed order" ids1 ids2;
  check_int "same length" (List.length ids1) (List.length ids2)

(* ------------------------------------------------------------------ *)
(* Per-group FIFO and pipeline sanity                                  *)
(* ------------------------------------------------------------------ *)

let test_per_group_fifo_execution () =
  let eng, _, _ = run_engine () in
  let last = Hashtbl.create 4 in
  List.iter
    (fun (e : Types.entry_id) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt last e.Types.gid) in
      check_int
        (Printf.sprintf "group %d in seq order" e.Types.gid)
        (prev + 1) e.Types.seq;
      Hashtbl.replace last e.Types.gid e.Types.seq)
    (Engine.executed_ids eng ~gid:0)

let test_throughput_ranking () =
  (* The headline result in miniature: MassBFT beats Baseline beats
     Steward on the same cluster. Full-size batches so that WAN
     bandwidth (not the batch timer) is the binding resource. *)
  let tput system =
    let cfg = { (small_cfg ~system ()) with Config.max_batch = 500 } in
    let eng, _, _ =
      run_engine ~until:10.0 ~cfg
        ~spec:(Clusters.nationwide ~nodes_per_group:7 ()) ()
    in
    committed eng
  in
  let m = tput Config.Massbft in
  let b = tput Config.Baseline in
  let s = tput Config.Steward in
  check_bool (Printf.sprintf "massbft %d > baseline %d" m b) true (m > b);
  check_bool (Printf.sprintf "baseline %d > steward %d" b s) true (b > s)

let test_wan_traffic_advantage () =
  (* Encoded bijective replication moves fewer WAN bytes per executed
     entry than Baseline's f+1 full copies (Figure 10's phenomenon).
     Needs 7-node groups: at n = 4, f + 1 = 2 copies matches the
     erasure redundancy and the advantage vanishes. *)
  let per_entry system =
    let cfg = { (small_cfg ~system ()) with Config.max_batch = 200 } in
    let eng, _, _ =
      run_engine ~until:8.0 ~cfg ~spec:(Clusters.nationwide ~nodes_per_group:7 ()) ()
    in
    float_of_int (Engine.wan_bytes eng)
    /. float_of_int (max 1 (Engine.entries_executed_total eng))
  in
  let m = per_entry Config.Massbft in
  let b = per_entry Config.Baseline in
  check_bool (Printf.sprintf "massbft %.0f B/entry < baseline %.0f" m b) true (m < b)

(* ------------------------------------------------------------------ *)
(* Fault tolerance                                                     *)
(* ------------------------------------------------------------------ *)

let test_byzantine_chunk_tampering_tolerated () =
  (* One colluding Byzantine node per 4-node group (f = 1) tampers with
     every chunk it sends or forwards; throughput must survive. *)
  let clean_cfg = small_cfg () in
  let byz_cfg =
    { clean_cfg with Config.byzantine_per_group = 1; byzantine_from_s = 0.0 }
  in
  let clean, _, _ = run_engine ~until:8.0 ~cfg:clean_cfg () in
  let byz, _, _ = run_engine ~until:8.0 ~cfg:byz_cfg () in
  let c = committed clean and b = committed byz in
  check_bool (Printf.sprintf "byzantine run commits (%d vs clean %d)" b c) true
    (b > (c * 6 / 10));
  (* Execution order still agrees across groups. *)
  prefix_agree "agreement under tampering"
    (Engine.executed_ids byz ~gid:0)
    (Engine.executed_ids byz ~gid:1)

let test_byzantine_activation_mid_run () =
  (* Tampering that begins mid-run (the Figure 15 scenario) must not
     stop progress after the activation point. *)
  let cfg =
    { (small_cfg ()) with Config.byzantine_per_group = 1; byzantine_from_s = 3.0 }
  in
  let eng, _, _ = run_engine ~until:8.0 ~cfg () in
  let m = Engine.metrics eng in
  let late =
    List.filter (fun (t, r) -> t >= 4.0 && r > 0.0)
      (Stats.Timeseries.rate_series m.Metrics.txn_rate)
  in
  check_bool "throughput continues after tampering starts" true
    (List.length late >= 3)

let test_group_crash_massbft_recovers_via_takeover () =
  (* Crash group 0 mid-run: ordering stalls until another group takes
     over instance 0 and assigns frozen timestamps; then throughput from
     groups 1 and 2 resumes (Figure 15). *)
  let cfg =
    {
      (small_cfg ()) with
      Config.crash_group_at = Some (0, 4.0);
      election_timeout_s = 0.8;
    }
  in
  let eng, _, _ = run_engine ~until:14.0 ~cfg () in
  let m = Engine.metrics eng in
  let series = Stats.Timeseries.rate_series m.Metrics.txn_rate in
  let before = List.filter (fun (t, _) -> t < 4.0) series in
  let after = List.filter (fun (t, r) -> t >= 8.0 && r > 0.0) series in
  check_bool "throughput before crash" true
    (List.exists (fun (_, r) -> r > 0.0) before);
  check_bool
    (Printf.sprintf "throughput resumes after takeover (%d live buckets)"
       (List.length after))
    true
    (List.length after >= 3);
  (* The survivors still agree. *)
  prefix_agree "agreement across survivors"
    (Engine.executed_ids eng ~gid:1)
    (Engine.executed_ids eng ~gid:2)

let test_group_crash_geobft_stalls () =
  (* GeoBFT has no group fault tolerance: a crashed group halts the
     round-based ordering (Table I's "Group failure: No"). *)
  let cfg =
    { (small_cfg ~system:Config.Geobft ()) with Config.crash_group_at = Some (0, 3.0) }
  in
  let eng, _, _ = run_engine ~until:10.0 ~cfg () in
  let m = Engine.metrics eng in
  let late =
    List.filter (fun (t, r) -> t >= 6.0 && r > 1.0)
      (Stats.Timeseries.rate_series m.Metrics.txn_rate)
  in
  check_int "ordering halts for good" 0 (List.length late)

let test_recovery_transfer_back () =
  (* Crash group 0, recover it later: the cluster keeps making progress
     after recovery and group 0 eventually proposes again. *)
  let cfg =
    {
      (small_cfg ()) with
      Config.crash_group_at = Some (0, 3.0);
      election_timeout_s = 0.6;
    }
  in
  let eng, _, _ =
    run_engine ~until:18.0 ~cfg
      ~before_run:(fun eng sim _ ->
        ignore (Sim.at sim 7.0 (fun () -> Engine.recover_group eng 0)))
      ()
  in
  let m = Engine.metrics eng in
  let late =
    List.filter (fun (t, r) -> t >= 12.0 && r > 0.0)
      (Stats.Timeseries.rate_series m.Metrics.txn_rate)
  in
  check_bool "progress after recovery" true (List.length late >= 3)

(* ------------------------------------------------------------------ *)
(* Node-level crashes: PBFT view change and leader migration           *)
(* ------------------------------------------------------------------ *)

let group_committed eng g =
  Massbft.Metrics.group_committed (Engine.metrics eng) g

let test_leader_crash_view_change_resumes () =
  (* Crash group 1's acting leader mid-run. The survivors must drive a
     PBFT view change past the dead leader within a few election
     timeouts, migrate the acting-leader role, and resume committing
     the group's own proposals. *)
  let at_crash = ref 0 in
  let eng, _, topo =
    run_engine ~until:12.0
      ~before_run:(fun eng sim _ ->
        ignore
          (Sim.at sim 2.0 (fun () ->
               at_crash := group_committed eng 1;
               Engine.crash_node eng { Topology.g = 1; n = 0 })))
      ()
  in
  check_bool "committed before the crash" true (!at_crash > 0);
  check_bool
    (Printf.sprintf "group 1 resumed committing (%d -> %d)" !at_crash
       (group_committed eng 1))
    true
    (group_committed eng 1 > !at_crash);
  let leader = Engine.acting_leader eng ~gid:1 in
  check_bool "leadership migrated off the dead node" true
    (leader.Topology.n <> 0);
  check_bool "new leader is alive" true (Topology.alive topo leader);
  (* The other groups never depended on the dead replica. *)
  prefix_agree "agreement with a migrated leader"
    (Engine.executed_ids eng ~gid:0)
    (Engine.executed_ids eng ~gid:2)

let test_leader_crash_then_rejoin () =
  (* The crashed ex-leader recovers: it adopts the group's current view
     (post-recovery state transfer) and serves as a follower — the
     migrated leadership stays where the view change put it. *)
  let eng, _, topo =
    run_engine ~until:14.0
      ~before_run:(fun eng sim _ ->
        ignore
          (Sim.at sim 2.0 (fun () ->
               Engine.crash_node eng { Topology.g = 1; n = 0 }));
        ignore
          (Sim.at sim 7.0 (fun () ->
               Engine.recover_node eng { Topology.g = 1; n = 0 })))
      ()
  in
  check_bool "ex-leader is back up" true
    (Topology.alive topo { Topology.g = 1; n = 0 });
  check_bool "leadership stays migrated" true
    ((Engine.acting_leader eng ~gid:1).Topology.n <> 0);
  check_bool "group keeps committing" true (group_committed eng 1 > 0);
  prefix_agree "agreement after rejoin"
    (Engine.executed_ids eng ~gid:0)
    (Engine.executed_ids eng ~gid:1)

let test_follower_crash_no_migration () =
  (* Losing f non-leader replicas must not disturb leadership: PBFT
     still has its 2f+1 quorum and the acting leader keeps its role. *)
  let eng, _, _ =
    run_engine ~until:8.0
      ~before_run:(fun eng sim _ ->
        ignore
          (Sim.at sim 2.0 (fun () ->
               Engine.crash_node eng { Topology.g = 0; n = 2 })))
      ()
  in
  check_int "leadership undisturbed" 0 (Engine.acting_leader eng ~gid:0).Topology.n;
  check_bool "group 0 commits through the follower crash" true
    (group_committed eng 0 > 200)

let test_leader_crash_every_system () =
  (* Every system's local layer is PBFT, so an acting-leader crash must
     be survivable everywhere — including systems whose *global* layer
     has no fault tolerance (GeoBFT's note collection and Steward's
     single Raft log both follow the proposer-group leader address). *)
  List.iter
    (fun system ->
      let at_crash = ref 0 in
      let eng, _, _ =
        run_engine ~until:12.0 ~cfg:(small_cfg ~system ())
          ~before_run:(fun eng sim _ ->
            ignore
              (Sim.at sim 2.0 (fun () ->
                   at_crash := group_committed eng 1;
                   Engine.crash_node eng { Topology.g = 1; n = 0 })))
          ()
      in
      check_bool
        (Printf.sprintf "%s: group 1 resumes after leader crash (%d -> %d)"
           (Config.system_name system) !at_crash (group_committed eng 1))
        true
        (group_committed eng 1 > !at_crash))
    Config.all_systems

(* ------------------------------------------------------------------ *)
(* Heterogeneous configurations                                        *)
(* ------------------------------------------------------------------ *)

let test_unequal_group_sizes () =
  (* Figure 12's setting: a 4-node group among 7-node groups. Async
     ordering must let the big groups outrun the small one. *)
  let spec = small_spec ~group_sizes:[| 4; 7; 7 |] () in
  let eng, _, _ = run_engine ~until:8.0 ~spec () in
  check_bool "progress with mixed sizes" true (committed eng > 500);
  prefix_agree "agreement with mixed sizes"
    (Engine.executed_ids eng ~gid:0)
    (Engine.executed_ids eng ~gid:2)

let test_bandwidth_degradation () =
  (* Figure 14: degrading some nodes' WAN must reduce but not kill
     throughput. Full batches so that bandwidth binds. *)
  let slow eng_count =
    let cfg = { (small_cfg ()) with Config.max_batch = 500 } in
    let eng, _, _ =
      run_engine ~until:10.0 ~cfg
        ~before_run:(fun _ _ topo ->
          for g = 0 to 2 do
            for n = 0 to eng_count - 1 do
              Topology.set_wan_bandwidth topo { Topology.g; n = 3 - n } 2e6
            done
          done)
        ()
    in
    committed eng
  in
  let fast = slow 0 in
  (* Degrading 2 of 4 nodes costs nothing by design: slow senders ship
     their chunks to slow receivers and the n_data fast chunks suffice
     (the paper's "best case", Figure 14). Degrade 3 of 4 so that slow
     chunks are needed for every rebuild. *)
  let degraded = slow 3 in
  check_bool
    (Printf.sprintf "degraded slower (%d < %d)" degraded fast)
    true (degraded < fast);
  check_bool "degraded still alive" true (degraded > 200)

let test_more_groups () =
  (* Figure 13b's direction: 5 groups still work. *)
  let spec = Clusters.nationwide ~groups:5 ~nodes_per_group:4 () in
  let eng, _, _ = run_engine ~until:6.0 ~spec () in
  check_bool "5-group cluster commits" true (committed eng > 200);
  prefix_agree "5-group agreement"
    (Engine.executed_ids eng ~gid:0)
    (Engine.executed_ids eng ~gid:4)

let test_workloads_all_run () =
  List.iter
    (fun wl ->
      let cfg = { (small_cfg ()) with Config.workload = wl } in
      let eng, _, _ = run_engine ~until:5.0 ~cfg () in
      check_bool
        (Massbft_workload.Workload.kind_name wl ^ " commits")
        true (committed eng > 100))
    Massbft_workload.Workload.all_kinds

(* ------------------------------------------------------------------ *)
(* Crash with in-flight entries: the unwedge path                      *)
(* ------------------------------------------------------------------ *)

let test_crash_with_lost_content_unwedges () =
  (* Regression for the head-of-line wedge: the crashed leader's final
     in-flight entries may have no content anywhere (their chunks never
     finished dissemination). The takeover leader must no-op them after
     fetches fail, or every instance wedges behind them. Byzantine
     colluders are enabled too, matching the paper's Figure 15 setup. *)
  let cfg =
    {
      (small_cfg ()) with
      Config.max_batch = 200;
      byzantine_per_group = 1;
      byzantine_from_s = 1.0;
      crash_group_at = Some (0, 4.0);
      election_timeout_s = 0.8;
    }
  in
  let eng, _, _ = run_engine ~until:16.0 ~cfg () in
  let m = Engine.metrics eng in
  let late =
    List.filter (fun (t, r) -> t >= 12.0 && r > 0.0)
      (Stats.Timeseries.rate_series m.Metrics.txn_rate)
  in
  check_bool
    (Printf.sprintf "survivors resume after unwedge (%d live buckets)"
       (List.length late))
    true
    (List.length late >= 3);
  prefix_agree "agreement preserved through the unwedge"
    (Engine.executed_ids eng ~gid:1)
    (Engine.executed_ids eng ~gid:2)

(* ------------------------------------------------------------------ *)
(* Ablation flags                                                      *)
(* ------------------------------------------------------------------ *)

let test_serial_vts_variant_works () =
  (* Figure 7a's two-phase assignment: same agreement, more latency. *)
  let cfg = { (small_cfg ()) with Config.overlapped_vts = false } in
  let eng, _, _ = run_engine ~cfg () in
  check_bool "serial variant commits" true (committed eng > 200);
  prefix_agree "serial variant agrees"
    (Engine.executed_ids eng ~gid:0)
    (Engine.executed_ids eng ~gid:2)

let test_serial_vts_slower_than_overlapped () =
  let lat overlapped =
    let cfg = { (small_cfg ()) with Config.overlapped_vts = overlapped } in
    let eng, _, _ = run_engine ~until:8.0 ~cfg () in
    Massbft.Metrics.mean_latency_ms (Engine.metrics eng)
  in
  let fast = lat true and slow = lat false in
  check_bool
    (Printf.sprintf "overlapped faster (%.1f < %.1f ms)" fast slow)
    true (fast < slow)

let test_no_reorder_variant_works () =
  let cfg = { (small_cfg ()) with Config.reorder = false } in
  let eng, _, _ = run_engine ~cfg () in
  check_bool "plain Aria commits" true (committed eng > 200)

(* ------------------------------------------------------------------ *)
(* Cross-workload agreement                                            *)
(* ------------------------------------------------------------------ *)

let test_agreement_on_every_workload () =
  List.iter
    (fun wl ->
      let cfg = { (small_cfg ()) with Config.workload = wl } in
      let eng, _, _ = run_engine ~until:5.0 ~cfg () in
      prefix_agree
        (Massbft_workload.Workload.kind_name wl ^ " agreement")
        (Engine.executed_ids eng ~gid:0)
        (Engine.executed_ids eng ~gid:1))
    Massbft_workload.Workload.all_kinds

let test_tpcc_commit_ratio_below_kv () =
  (* Figure 8d's story: TPC-C's Payment hotspots produce more Aria
     conflicts than the key-value workloads. *)
  let ratio wl =
    let cfg = { (small_cfg ()) with Config.workload = wl; Config.workload_scale = 0.01 } in
    let eng, _, _ = run_engine ~until:6.0 ~cfg () in
    Massbft.Metrics.commit_ratio (Engine.metrics eng)
  in
  let tpcc = ratio Massbft_workload.Workload.Tpcc in
  let sb = ratio Massbft_workload.Workload.Smallbank in
  check_bool
    (Printf.sprintf "tpcc ratio %.3f < smallbank %.3f" tpcc sb)
    true (tpcc < sb)

(* ------------------------------------------------------------------ *)
(* ISS epoch gating                                                    *)
(* ------------------------------------------------------------------ *)

let test_iss_respects_epoch_barrier () =
  (* An ISS group never executes an epoch-k entry before every round of
     epoch k-1 has executed: examine the executed sequence. *)
  let cfg = { (small_cfg ~system:Config.Iss ()) with Config.epoch_rounds = 5 } in
  let eng, _, _ = run_engine ~cfg () in
  let ids = Engine.executed_ids eng ~gid:0 in
  check_bool "progress" true (List.length ids > 20);
  (* Round r = seq; epochs are 5 rounds: by the time any entry of epoch
     e appears, all 3*5 entries of epoch e-1 must have appeared. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (e : Types.entry_id) ->
      let epoch = (e.Types.seq - 1) / 5 in
      if epoch > 0 then begin
        for r = (epoch - 1) * 5 + 1 to epoch * 5 do
          for g = 0 to 2 do
            check_bool
              (Printf.sprintf "epoch %d entry needs (%d,%d) first" epoch g r)
              true
              (Hashtbl.mem seen (g, r))
          done
        done
      end;
      Hashtbl.replace seen (e.Types.gid, e.Types.seq) ())
    ids

(* ------------------------------------------------------------------ *)
(* Golden determinism fixtures                                         *)
(* ------------------------------------------------------------------ *)

module Golden = Golden_fixture

(* The files under test/golden/ were recorded against the pre-refactor
   monolithic engine (see golden_record.ml). The staged engine must
   reproduce every fingerprint byte-for-byte: committed counts, WAN/LAN
   bytes, the store fingerprint, and the full executed order of every
   group. *)
let test_golden_fixtures () =
  List.iter
    (fun system ->
      let name = Config.system_name system in
      let recorded =
        Golden.load (Filename.concat "golden" (Golden.file_of_system system))
      in
      let fresh = Golden.capture ~system () in
      check_int (name ^ " committed") recorded.Golden.committed
        fresh.Golden.committed;
      check_int (name ^ " entries executed") recorded.Golden.entries
        fresh.Golden.entries;
      check_int (name ^ " wan bytes") recorded.Golden.wan fresh.Golden.wan;
      check_int (name ^ " lan bytes") recorded.Golden.lan fresh.Golden.lan;
      Alcotest.(check string)
        (name ^ " store fingerprint")
        recorded.Golden.store fresh.Golden.store;
      Array.iteri
        (fun g ids ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s executed order g%d" name g)
            ids
            fresh.Golden.executed.(g))
        recorded.Golden.executed)
    Config.all_systems

let test_golden_roundtrip () =
  (* The fixture format itself: parse (print x) = x. *)
  let g = Golden.capture ~system:Config.Geobft () in
  let g' = Golden.of_string (Golden.to_string g) in
  Alcotest.(check string) "round-trip" (Golden.to_string g) (Golden.to_string g')

(* ------------------------------------------------------------------ *)
(* debug_dump                                                          *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let test_debug_dump system ~instances () =
  (* Dump once mid-run (inside a simulation callback — it must not
     raise with consensus in flight) and once at the end. *)
  let mid_dump = ref "" in
  let eng, _, _ =
    run_engine ~cfg:(small_cfg ~system ())
      ~before_run:(fun eng sim _ ->
        ignore (Sim.at sim 3.0 (fun () -> mid_dump := Engine.debug_dump eng)))
      ()
  in
  let name = Config.system_name system in
  check_bool (name ^ " mid-run dump non-empty") true
    (String.length !mid_dump > 0);
  let final = Engine.debug_dump eng in
  check_bool (name ^ " final dump non-empty") true (String.length final > 0);
  for g = 0 to 2 do
    check_bool
      (Printf.sprintf "%s dump covers leader g%d" name g)
      true
      (contains final (Printf.sprintf "leader g%d" g))
  done;
  for inst = 0 to instances - 1 do
    check_bool
      (Printf.sprintf "%s dump shows instance %d's role" name inst)
      true
      (contains final (Printf.sprintf "inst %d: role=" inst))
  done;
  (* One role line per (leader, instance) pair: every group reports
     every Raft instance's role. *)
  check_int
    (name ^ " role lines cover every group x instance")
    (3 * instances)
    (count_occurrences final "role=");
  if system = Config.Massbft then
    (* The VTS orderer's head vector is part of the dump. *)
    check_bool "massbft dump shows orderer heads" true
      (contains final "head[0]")

let () =
  Alcotest.run "massbft_engine"
    [
      ( "progress",
        [
          Alcotest.test_case "all systems" `Slow test_all_systems_make_progress;
          Alcotest.test_case "all groups propose" `Quick test_all_groups_propose;
          Alcotest.test_case "steward order" `Quick test_steward_single_proposer_order;
          Alcotest.test_case "all workloads" `Slow test_workloads_all_run;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "execution order across groups" `Slow test_execution_agreement;
          Alcotest.test_case "ledger prefix" `Quick test_ledger_agreement;
          Alcotest.test_case "store convergence" `Quick test_store_convergence_independent;
          Alcotest.test_case "run determinism" `Quick test_determinism_across_runs;
          Alcotest.test_case "per-group FIFO" `Quick test_per_group_fifo_execution;
        ] );
      ( "performance",
        [
          Alcotest.test_case "throughput ranking" `Slow test_throughput_ranking;
          Alcotest.test_case "WAN advantage" `Slow test_wan_traffic_advantage;
        ] );
      ( "faults",
        [
          Alcotest.test_case "byzantine tampering" `Slow test_byzantine_chunk_tampering_tolerated;
          Alcotest.test_case "mid-run activation" `Slow test_byzantine_activation_mid_run;
          Alcotest.test_case "group crash takeover" `Slow test_group_crash_massbft_recovers_via_takeover;
          Alcotest.test_case "geobft stalls on crash" `Slow test_group_crash_geobft_stalls;
          Alcotest.test_case "recovery transfer-back" `Slow test_recovery_transfer_back;
          Alcotest.test_case "leader crash view change" `Slow
            test_leader_crash_view_change_resumes;
          Alcotest.test_case "leader crash then rejoin" `Slow
            test_leader_crash_then_rejoin;
          Alcotest.test_case "follower crash no migration" `Slow
            test_follower_crash_no_migration;
          Alcotest.test_case "leader crash every system" `Slow
            test_leader_crash_every_system;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "unwedge after lossy crash" `Slow test_crash_with_lost_content_unwedges;
          Alcotest.test_case "serial VTS variant" `Quick test_serial_vts_variant_works;
          Alcotest.test_case "overlapping saves latency" `Slow test_serial_vts_slower_than_overlapped;
          Alcotest.test_case "no-reorder variant" `Quick test_no_reorder_variant_works;
          Alcotest.test_case "agreement on all workloads" `Slow test_agreement_on_every_workload;
          Alcotest.test_case "tpcc hotspot ratio" `Slow test_tpcc_commit_ratio_below_kv;
          Alcotest.test_case "ISS epoch barrier" `Quick test_iss_respects_epoch_barrier;
        ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "unequal group sizes" `Quick test_unequal_group_sizes;
          Alcotest.test_case "bandwidth degradation" `Slow test_bandwidth_degradation;
          Alcotest.test_case "five groups" `Quick test_more_groups;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fixture round-trip" `Quick test_golden_roundtrip;
          Alcotest.test_case "all systems reproduce recordings" `Slow
            test_golden_fixtures;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "debug dump massbft" `Quick
            (test_debug_dump Config.Massbft ~instances:3);
          Alcotest.test_case "debug dump steward" `Quick
            (test_debug_dump Config.Steward ~instances:1);
        ] );
    ]
