(* Tests for the cryptographic substrate: SHA-256 against NIST/FIPS
   vectors, HMAC against RFC 4231, the simulated-PKI signature scheme,
   and Merkle trees/proofs. *)

open Massbft_crypto
module Hexdump = Massbft_util.Hexdump

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* SHA-256                                                             *)
(* ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  (* FIPS 180-4 / NIST CAVP short-message vectors. *)
  check_str "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  check_str "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  check_str "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_str "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hex
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_million_a () =
  (* The classic 1,000,000 x 'a' vector, fed incrementally to exercise
     buffering across block boundaries. *)
  let ctx = Sha256.init () in
  let chunk = String.make 997 'a' in
  let fed = ref 0 in
  while !fed + 997 <= 1_000_000 do
    Sha256.update ctx chunk;
    fed := !fed + 997
  done;
  Sha256.update ctx (String.make (1_000_000 - !fed) 'a');
  check_str "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Hexdump.encode (Sha256.finalize ctx))

let test_sha256_incremental_equals_oneshot () =
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  Sha256.update ctx (String.sub msg 0 100);
  Sha256.update ctx (String.sub msg 100 50);
  Sha256.update ctx (String.sub msg 150 150);
  check_str "incremental = one-shot" (Sha256.digest msg) (Sha256.finalize ctx)

let test_sha256_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding boundaries are the
     classic implementation traps. *)
  List.iter
    (fun n ->
      let msg = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update ctx (String.make 1 c)) msg;
      check_str
        (Printf.sprintf "len %d byte-at-a-time" n)
        (Sha256.digest msg) (Sha256.finalize ctx))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

let test_sha256_update_bytes_range () =
  let buf = Bytes.of_string "xxabcyy" in
  let ctx = Sha256.init () in
  Sha256.update_bytes ctx buf ~pos:2 ~len:3;
  check_str "sub-range" (Sha256.digest "abc") (Sha256.finalize ctx);
  let ctx2 = Sha256.init () in
  Alcotest.check_raises "out-of-bounds range"
    (Invalid_argument "Sha256.update_bytes: range out of bounds") (fun () ->
      Sha256.update_bytes ctx2 buf ~pos:5 ~len:10)

let prop_sha256_deterministic_and_sized =
  QCheck.Test.make ~name:"sha256 is 32 bytes and deterministic" QCheck.string
    (fun s -> Sha256.digest s = Sha256.digest s && String.length (Sha256.digest s) = 32)

let prop_sha256_incremental =
  QCheck.Test.make ~name:"sha256 split-anywhere equals one-shot"
    QCheck.(pair string small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.update ctx (String.sub s 0 cut);
      Sha256.update ctx (String.sub s cut (String.length s - cut));
      Sha256.finalize ctx = Sha256.digest s)

(* ------------------------------------------------------------------ *)
(* HMAC (RFC 4231)                                                     *)
(* ------------------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  (* Test case 1 *)
  check_str "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hexdump.encode (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  (* Test case 2 *)
  check_str "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hexdump.encode (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  (* Test case 3: 20-byte 0xaa key, 50-byte 0xdd data *)
  check_str "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hexdump.encode
       (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  (* Test case 6: key longer than a block *)
  check_str "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hexdump.encode
       (Hmac.mac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.mac ~key msg in
  check_bool "accepts valid" true (Hmac.verify ~key ~msg ~tag);
  check_bool "rejects wrong msg" false (Hmac.verify ~key ~msg:"other" ~tag);
  check_bool "rejects wrong key" false (Hmac.verify ~key:"nope" ~msg ~tag);
  check_bool "rejects truncated tag" false
    (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

(* ------------------------------------------------------------------ *)
(* Signature                                                           *)
(* ------------------------------------------------------------------ *)

let test_signature_roundtrip () =
  let kr = Signature.create_keyring ~seed:1L in
  Signature.register kr "g0/n0";
  Signature.register kr "g0/n1";
  let s = Signature.sign kr ~id:"g0/n0" "hello" in
  check_bool "own signature verifies" true
    (Signature.verify kr ~id:"g0/n0" ~msg:"hello" s);
  check_bool "wrong message rejected" false
    (Signature.verify kr ~id:"g0/n0" ~msg:"hullo" s);
  check_bool "wrong identity rejected" false
    (Signature.verify kr ~id:"g0/n1" ~msg:"hello" s)

let test_signature_unknown_identity () =
  let kr = Signature.create_keyring ~seed:1L in
  Alcotest.check_raises "sign as unregistered"
    (Invalid_argument "Signature.sign: unknown identity ghost") (fun () ->
      ignore (Signature.sign kr ~id:"ghost" "m"));
  check_bool "verify for unregistered is false" false
    (Signature.verify kr ~id:"ghost" ~msg:"m" (Signature.forge "m"))

let test_signature_forgery_rejected () =
  let kr = Signature.create_keyring ~seed:9L in
  Signature.register kr "g1/n2";
  check_bool "forged tag rejected" false
    (Signature.verify kr ~id:"g1/n2" ~msg:"entry" (Signature.forge "entry"))

let test_signature_deterministic_keyrings () =
  let a = Signature.create_keyring ~seed:5L in
  let b = Signature.create_keyring ~seed:5L in
  Signature.register a "n";
  Signature.register b "n";
  check_bool "same seed, same keys" true
    (Signature.verify b ~id:"n" ~msg:"x" (Signature.sign a ~id:"n" "x"));
  let c = Signature.create_keyring ~seed:6L in
  Signature.register c "n";
  check_bool "different seed, different keys" false
    (Signature.verify c ~id:"n" ~msg:"x" (Signature.sign a ~id:"n" "x"))

(* ------------------------------------------------------------------ *)
(* Merkle                                                              *)
(* ------------------------------------------------------------------ *)

let chunks n = List.init n (fun i -> Printf.sprintf "chunk-%d-payload" i)

let test_merkle_single_leaf () =
  let t = Merkle.build [ "only" ] in
  Alcotest.(check int) "leaf count" 1 (Merkle.leaf_count t);
  check_str "root of single leaf is its leaf hash" (Merkle.leaf_hash "only")
    (Merkle.root t);
  let p = Merkle.prove t 0 in
  check_bool "empty-path proof verifies" true
    (Merkle.verify ~root:(Merkle.root t) ~leaf:"only" p)

let test_merkle_proofs_all_leaves () =
  (* Cover power-of-two and odd leaf counts, including the self-pairing
     edge. *)
  List.iter
    (fun n ->
      let leaves = chunks n in
      let t = Merkle.build leaves in
      let root = Merkle.root t in
      List.iteri
        (fun i leaf ->
          let p = Merkle.prove t i in
          check_bool
            (Printf.sprintf "n=%d leaf %d verifies" n i)
            true
            (Merkle.verify ~root ~leaf p))
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 13; 28 ]

let test_merkle_rejects_tampering () =
  let t = Merkle.build (chunks 8) in
  let root = Merkle.root t in
  let p = Merkle.prove t 3 in
  check_bool "tampered leaf rejected" false
    (Merkle.verify ~root ~leaf:"chunk-3-PAYLOAD" p);
  check_bool "leaf under wrong index rejected" false
    (Merkle.verify ~root ~leaf:"chunk-4-payload" p)

let test_merkle_root_depends_on_order () =
  let a = Merkle.build [ "x"; "y" ] in
  let b = Merkle.build [ "y"; "x" ] in
  check_bool "order matters" false (String.equal (Merkle.root a) (Merkle.root b))

let test_merkle_domain_separation () =
  (* A leaf must not be confusable with an internal node: the tree of
     [h(x); h(y)] is not the tree of [x; y]. *)
  let inner = Merkle.build [ "x"; "y" ] in
  let crafted = Merkle.build [ Merkle.leaf_hash "x"; Merkle.leaf_hash "y" ] in
  check_bool "no second-preimage splice" false
    (String.equal (Merkle.root inner) (Merkle.root crafted))

let test_merkle_proof_size () =
  let t = Merkle.build (chunks 28) in
  let p = Merkle.prove t 0 in
  (* 28 leaves -> 5 levels of siblings. *)
  Alcotest.(check int) "proof size" ((32 * 5) + 4) (Merkle.proof_size p)

let test_merkle_empty () =
  Alcotest.check_raises "empty build"
    (Invalid_argument "Merkle.build: empty leaf list") (fun () ->
      ignore (Merkle.build []))

let test_multiproof_roundtrip () =
  List.iter
    (fun (n, indices) ->
      let leaves = chunks n in
      let t = Merkle.build leaves in
      let mp = Merkle.prove_many t indices in
      let leaf_list = List.map (fun i -> (i, List.nth leaves i)) indices in
      check_bool
        (Printf.sprintf "n=%d |idx|=%d verifies" n (List.length indices))
        true
        (Merkle.verify_many ~root:(Merkle.root t) ~leaf_count:n
           ~leaves:leaf_list mp))
    [
      (1, [ 0 ]);
      (2, [ 0; 1 ]);
      (7, [ 0; 3; 6 ]);
      (8, [ 2 ]);
      (13, [ 0; 1; 2; 3 ]);
      (28, [ 0; 7; 14; 21 ]);
      (28, List.init 28 Fun.id);
    ]

let test_multiproof_smaller_than_separate_proofs () =
  (* The §IV-B plan ships 7 consecutive chunks per sender: the shared
     path makes one multiproof much smaller than 7 proofs. *)
  let t = Merkle.build (chunks 28) in
  let indices = List.init 7 Fun.id in
  let mp = Merkle.prove_many t indices in
  let separate =
    List.fold_left (fun acc i -> acc + Merkle.proof_size (Merkle.prove t i)) 0 indices
  in
  check_bool
    (Printf.sprintf "multiproof %dB < separate %dB"
       (Merkle.multiproof_size mp) separate)
    true
    (Merkle.multiproof_size mp < separate)

let test_multiproof_rejects_tampering () =
  let leaves = chunks 16 in
  let t = Merkle.build leaves in
  let mp = Merkle.prove_many t [ 2; 5; 9 ] in
  let root = Merkle.root t in
  let good = [ (2, List.nth leaves 2); (5, List.nth leaves 5); (9, List.nth leaves 9) ] in
  check_bool "sanity: good verifies" true
    (Merkle.verify_many ~root ~leaf_count:16 ~leaves:good mp);
  let bad = [ (2, List.nth leaves 2); (5, "EVIL"); (9, List.nth leaves 9) ] in
  check_bool "tampered leaf rejected" false
    (Merkle.verify_many ~root ~leaf_count:16 ~leaves:bad mp);
  let wrong_set = [ (2, List.nth leaves 2); (5, List.nth leaves 5) ] in
  check_bool "wrong index set rejected" false
    (Merkle.verify_many ~root ~leaf_count:16 ~leaves:wrong_set mp);
  let truncated = { mp with Merkle.mp_nodes = List.tl mp.Merkle.mp_nodes } in
  check_bool "truncated proof rejected" false
    (Merkle.verify_many ~root ~leaf_count:16 ~leaves:good truncated);
  (* A leaf_count lie that changes pairing along the proven path must be
     caught: index 14 self-pairs in a 15-leaf tree but would need a
     15th sibling in a 16-leaf one. *)
  let leaves15 = chunks 15 in
  let t15 = Merkle.build leaves15 in
  let mp15 = Merkle.prove_many t15 [ 14 ] in
  check_bool "tail index verifies with true count" true
    (Merkle.verify_many ~root:(Merkle.root t15) ~leaf_count:15
       ~leaves:[ (14, List.nth leaves15 14) ] mp15);
  check_bool "structural leaf_count lie rejected" false
    (Merkle.verify_many ~root:(Merkle.root t15) ~leaf_count:16
       ~leaves:[ (14, List.nth leaves15 14) ] mp15)

let test_multiproof_errors () =
  let t = Merkle.build (chunks 4) in
  Alcotest.check_raises "empty"
    (Invalid_argument "Merkle.prove_many: empty index list") (fun () ->
      ignore (Merkle.prove_many t []));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Merkle.prove_many: duplicate indices") (fun () ->
      ignore (Merkle.prove_many t [ 1; 1 ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Merkle.prove_many: index out of range") (fun () ->
      ignore (Merkle.prove_many t [ 4 ]))

let prop_multiproof_roundtrip =
  QCheck.Test.make ~name:"random multiproofs verify" ~count:100
    QCheck.(pair (int_range 1 40) (list_of_size Gen.(int_range 1 8) small_nat))
    (fun (n, raw) ->
      let indices = List.sort_uniq compare (List.map (fun i -> i mod n) raw) in
      let leaves = chunks n in
      let t = Merkle.build leaves in
      let mp = Merkle.prove_many t indices in
      let leaf_list = List.map (fun i -> (i, List.nth leaves i)) indices in
      Merkle.verify_many ~root:(Merkle.root t) ~leaf_count:n ~leaves:leaf_list mp)

let prop_merkle_all_proofs_verify =
  QCheck.Test.make ~name:"every leaf of a random tree proves"
    QCheck.(list_of_size Gen.(int_range 1 40) string)
    (fun leaves ->
      let t = Merkle.build leaves in
      let root = Merkle.root t in
      List.for_all2
        (fun i leaf -> Merkle.verify ~root ~leaf (Merkle.prove t i))
        (List.init (List.length leaves) Fun.id)
        leaves)

let prop_merkle_cross_tree_rejection =
  QCheck.Test.make ~name:"proofs do not transfer across distinct trees"
    QCheck.(pair (list_of_size Gen.(int_range 2 20) printable_string) small_nat)
    (fun (leaves, idx) ->
      let t1 = Merkle.build leaves in
      let t2 = Merkle.build (List.map (fun l -> l ^ "!") leaves) in
      let i = idx mod List.length leaves in
      let leaf = List.nth leaves i in
      (* Either the roots coincide (impossible for distinct leaf sets
         under a collision-resistant hash) or verification fails. *)
      String.equal (Merkle.root t1) (Merkle.root t2)
      || not (Merkle.verify ~root:(Merkle.root t2) ~leaf (Merkle.prove t1 i)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "massbft_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million 'a'" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental_equals_oneshot;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
          Alcotest.test_case "update_bytes range" `Quick test_sha256_update_bytes_range;
          qt prop_sha256_deterministic_and_sized;
          qt prop_sha256_incremental;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "signature",
        [
          Alcotest.test_case "roundtrip" `Quick test_signature_roundtrip;
          Alcotest.test_case "unknown identity" `Quick test_signature_unknown_identity;
          Alcotest.test_case "forgery rejected" `Quick test_signature_forgery_rejected;
          Alcotest.test_case "keyring determinism" `Quick test_signature_deterministic_keyrings;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "all leaves prove" `Quick test_merkle_proofs_all_leaves;
          Alcotest.test_case "tampering rejected" `Quick test_merkle_rejects_tampering;
          Alcotest.test_case "order sensitivity" `Quick test_merkle_root_depends_on_order;
          Alcotest.test_case "domain separation" `Quick test_merkle_domain_separation;
          Alcotest.test_case "proof size" `Quick test_merkle_proof_size;
          Alcotest.test_case "empty rejected" `Quick test_merkle_empty;
          Alcotest.test_case "multiproof roundtrip" `Quick test_multiproof_roundtrip;
          Alcotest.test_case "multiproof compactness" `Quick test_multiproof_smaller_than_separate_proofs;
          Alcotest.test_case "multiproof tampering" `Quick test_multiproof_rejects_tampering;
          Alcotest.test_case "multiproof errors" `Quick test_multiproof_errors;
          qt prop_multiproof_roundtrip;
          qt prop_merkle_all_proofs_verify;
          qt prop_merkle_cross_tree_rejection;
        ] );
    ]
