(* Tests for the bench-regression gate: the JSON reader it is built on
   (round-tripping the repo's own hand-rendered documents), the
   comparison semantics (tolerance band, regressions, missing and new
   benchmarks), and the fixture contract CI relies on — an unchanged
   baseline passes, an injected 20% slowdown fails. *)

module Bench_check = Massbft_harness.Bench_check
module Bench_report = Massbft_harness.Bench_report
module Json = Bench_check.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* JSON reader                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_parse_basics () =
  (match Json.parse {| {"a": 1, "b": [true, false, null], "c": "x\ny"} |} with
  | Json.Obj [ ("a", Json.Num 1.0); ("b", Json.Arr [ Json.Bool true; Json.Bool false; Json.Null ]); ("c", Json.Str "x\ny") ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse");
  (match Json.parse {| -12.5e2 |} with
  | Json.Num v -> Alcotest.(check (float 1e-9)) "sci notation" (-1250.0) v
  | _ -> Alcotest.fail "number");
  (match Json.parse {| "esc \" \\ A" |} with
  | Json.Str s -> Alcotest.(check string) "escapes" "esc \" \\ A" s
  | _ -> Alcotest.fail "string");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed " ^ bad))
    [ "{"; "[1,]"; "{\"a\" 1}"; "1 2"; "\"unterminated"; "tru" ]

let test_json_reads_bench_report () =
  (* Dogfood: the gate must read exactly what Bench_report writes. *)
  let doc =
    Bench_report.to_json ~date:"2026-08-09" ~mode:"quick"
      ~micros:
        [
          { Bench_report.m_name = "a/one"; ns_per_run = 100.0 };
          { Bench_report.m_name = "b/two"; ns_per_run = 2.5e6 };
        ]
      ~macros:[] ()
  in
  let j = Json.parse doc in
  (match Option.bind (Json.member "schema_version" j) Json.to_float with
  | Some v -> check_int "schema" Bench_report.schema_version (int_of_float v)
  | None -> Alcotest.fail "schema_version missing");
  match Option.bind (Json.member "micro" j) Json.to_list with
  | Some [ m1; _ ] -> (
      match Option.bind (Json.member "name" m1) Json.to_string with
      | Some "a/one" -> ()
      | _ -> Alcotest.fail "first micro name")
  | _ -> Alcotest.fail "micro array"

(* ------------------------------------------------------------------ *)
(* Baseline fixtures                                                   *)
(* ------------------------------------------------------------------ *)

let fixture_micros =
  [
    ("massbft sha256/4KiB", 76000.0);
    ("massbft sim/100k-events", 1.14e7);
    ("massbft rs/gf8-encode-13+15-100KB", 2.5e6);
  ]

let write_fixture_baseline ?(scale_first = 1.0) () =
  let micros =
    List.mapi
      (fun i (name, ns) ->
        {
          Bench_report.m_name = name;
          ns_per_run = (if i = 0 then ns *. scale_first else ns);
        })
      fixture_micros
  in
  let doc =
    Bench_report.to_json ~date:"2026-08-09" ~mode:"full" ~micros ~macros:[] ()
  in
  let file = Filename.temp_file "bench_baseline" ".json" in
  let oc = open_out file in
  output_string oc doc;
  close_out oc;
  file

let with_fixture ?scale_first f =
  let file = write_fixture_baseline ?scale_first () in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let test_unchanged_baseline_passes () =
  with_fixture (fun file ->
      let baseline = Bench_check.load_baseline file in
      check_int "micros loaded" (List.length fixture_micros)
        (List.length baseline.Bench_check.b_micros);
      let result =
        Bench_check.compare_micros ~baseline ~current:fixture_micros ()
      in
      check_bool "unchanged passes" true (Bench_check.passed result);
      check_int "no regressions" 0 result.Bench_check.r_regressions;
      check_bool "all ok" true
        (List.for_all
           (fun v -> v.Bench_check.v_status = Bench_check.Ok)
           result.Bench_check.r_verdicts))

(* The CI fixture contract: a synthetic 20% slowdown injected into the
   baseline (i.e. current = 1.2x baseline) must fail the gate at the
   10% tolerance CI drives the fixture check with, and a >25% slowdown
   must fail even at the default +-25%. *)
let test_injected_slowdown_fails () =
  with_fixture (fun file ->
      let baseline = Bench_check.load_baseline file in
      let slowed factor =
        List.map (fun (n, ns) -> (n, ns *. factor)) fixture_micros
      in
      (* 20% slower, 10% tolerance: gate fails. *)
      let r20 =
        Bench_check.compare_micros ~tolerance:0.10 ~baseline
          ~current:(slowed 1.20) ()
      in
      check_bool "20% slowdown fails at 10% tol" false (Bench_check.passed r20);
      check_int "every benchmark flagged" (List.length fixture_micros)
        r20.Bench_check.r_regressions;
      (* 20% slower is within the default +-25% band. *)
      let r20d =
        Bench_check.compare_micros ~baseline ~current:(slowed 1.20) ()
      in
      check_bool "20% within default tol" true (Bench_check.passed r20d);
      (* 30% slower fails even at the default tolerance. *)
      let r30 =
        Bench_check.compare_micros ~baseline ~current:(slowed 1.30) ()
      in
      check_bool "30% slowdown fails at default tol" false
        (Bench_check.passed r30);
      (* Speed-ups never fail, but are reported. *)
      let rfast =
        Bench_check.compare_micros ~baseline ~current:(slowed 0.5) ()
      in
      check_bool "speedup passes" true (Bench_check.passed rfast);
      check_bool "speedup reported" true
        (List.for_all
           (fun v -> v.Bench_check.v_status = Bench_check.Improvement)
           rfast.Bench_check.r_verdicts))

let test_missing_and_new_benchmarks () =
  with_fixture (fun file ->
      let baseline = Bench_check.load_baseline file in
      (* Dropping a benchmark from the suite fails the gate. *)
      let r =
        Bench_check.compare_micros ~baseline
          ~current:(List.tl fixture_micros) ()
      in
      check_bool "missing fails" false (Bench_check.passed r);
      check_int "one missing" 1 r.Bench_check.r_missing;
      (* A benchmark the baseline has never seen is informational. *)
      let r2 =
        Bench_check.compare_micros ~baseline
          ~current:(("massbft new/bench", 1.0) :: fixture_micros)
          ()
      in
      check_bool "new passes" true (Bench_check.passed r2);
      check_bool "new reported last" true
        (match List.rev r2.Bench_check.r_verdicts with
        | v :: _ -> v.Bench_check.v_status = Bench_check.New
        | [] -> false))

let test_render_verdict_table () =
  with_fixture (fun file ->
      let baseline = Bench_check.load_baseline file in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        nn = 0 || go 0
      in
      let slowed =
        List.map (fun (n, ns) -> (n, ns *. 1.5)) fixture_micros
      in
      let r = Bench_check.compare_micros ~baseline ~current:slowed () in
      let text = Bench_check.render ~baseline r in
      check_bool "FAIL line" true (contains text "bench check: FAIL");
      check_bool "REGRESSION rows" true (contains text "REGRESSION");
      let ok = Bench_check.compare_micros ~baseline ~current:fixture_micros () in
      check_bool "PASS line" true
        (contains (Bench_check.render ~baseline ok) "bench check: PASS"))

let test_bad_baselines_rejected () =
  List.iter
    (fun (label, content) ->
      let file = Filename.temp_file "bench_bad" ".json" in
      let oc = open_out file in
      output_string oc content;
      close_out oc;
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          match Bench_check.load_baseline file with
          | exception Failure _ -> ()
          | _ -> Alcotest.fail ("accepted " ^ label)))
    [
      ("malformed json", "{nope");
      ("no schema", "{\"micro\": [{\"name\": \"x\", \"ns_per_run\": 1}]}");
      ("no micros", "{\"schema_version\": 3, \"micro\": []}");
      ("micro not array", "{\"schema_version\": 3, \"micro\": 4}");
    ];
  match Bench_check.load_baseline "/nonexistent/baseline.json" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted missing file"

let test_committed_baseline_loads () =
  (* The newest committed baseline must satisfy the gate's reader —
     CI picks it the same way (`ls BENCH_*.json | sort | tail -1`). *)
  let file =
    Sys.readdir ".."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.rev
    |> function
    | [] -> "../BENCH_none.json"
    | newest :: _ -> "../" ^ newest
  in
  if Sys.file_exists file then begin
    let b = Bench_check.load_baseline file in
    check_bool "has the full micro suite" true
      (List.length b.Bench_check.b_micros >= 21);
    let r =
      Bench_check.compare_micros ~baseline:b ~current:b.Bench_check.b_micros ()
    in
    check_bool "self-comparison passes" true (Bench_check.passed r)
  end

let () =
  Alcotest.run "bench_check"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "reads bench_report output" `Quick
            test_json_reads_bench_report;
        ] );
      ( "gate",
        [
          Alcotest.test_case "unchanged baseline passes" `Quick
            test_unchanged_baseline_passes;
          Alcotest.test_case "injected slowdown fails" `Quick
            test_injected_slowdown_fails;
          Alcotest.test_case "missing and new benchmarks" `Quick
            test_missing_and_new_benchmarks;
          Alcotest.test_case "render verdict table" `Quick
            test_render_verdict_table;
          Alcotest.test_case "bad baselines rejected" `Quick
            test_bad_baselines_rejected;
          Alcotest.test_case "committed baseline loads" `Quick
            test_committed_baseline_loads;
        ] );
    ]
