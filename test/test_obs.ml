(* Tests for massbft_obs: the instrument registry, the exposition
   formats (including a Prometheus text round-trip through a parser
   written here), the in-sim sampler, and the saturation verdicts the
   acceptance criteria pin (Baseline → leader WAN uplink, large-group
   MassBFT → CPU). *)

module Registry = Massbft_obs.Registry
module Exposition = Massbft_obs.Exposition
module Sampler = Massbft_obs.Sampler
module Saturation = Massbft_obs.Saturation
module Sim = Massbft_sim.Sim
module Clusters = Massbft_harness.Clusters
module Runner = Massbft_harness.Runner
module Config = Massbft.Config

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~name:"reqs_total" [ ("group", "0") ] in
  Registry.inc c;
  Registry.inc ~by:5 c;
  check_int "counter value" 6 (Registry.counter_value c);
  check_bool "negative increment rejected" true
    (raises_invalid (fun () -> Registry.inc ~by:(-1) c));
  match Registry.collect reg with
  | [ s ] ->
      check_string "name" "reqs_total" s.Registry.name;
      check_bool "point" true (s.Registry.point = Registry.P_counter 6)
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

let test_gauge_basics () =
  let reg = Registry.create () in
  let g = Registry.gauge reg ~name:"depth" [] in
  Registry.set g 3.5;
  check_float "gauge value" 3.5 (Registry.gauge_value g);
  Registry.set g 1.0;
  check_float "last write wins" 1.0 (Registry.gauge_value g)

let test_polled_instruments () =
  let reg = Registry.create () in
  let n = ref 0 in
  Registry.counter_fn reg ~name:"polled_total" [] (fun () -> !n);
  Registry.gauge_fn reg ~name:"polled_depth" [] (fun () ->
      float_of_int (2 * !n));
  n := 7;
  List.iter
    (fun s ->
      match (s.Registry.name, s.Registry.point) with
      | "polled_total", p -> check_bool "counter polled" true (p = Registry.P_counter 7)
      | "polled_depth", p -> check_bool "gauge polled" true (p = Registry.P_gauge 14.0)
      | n, _ -> Alcotest.failf "unexpected sample %s" n)
    (Registry.collect reg)

let test_histogram_buckets () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~name:"lat" ~buckets:[| 0.1; 1.0 |] [] in
  Registry.observe h 0.05;
  Registry.observe h 0.5;
  Registry.observe h 5.0;
  check_int "count includes overflow" 3 (Registry.histogram_count h);
  check_float "sum" 5.55 (Registry.histogram_sum h);
  match Registry.collect reg with
  | [ { Registry.point = P_histogram { cumulative; sum; count }; _ } ] ->
      check_bool "cumulative le semantics" true
        (cumulative = [ (0.1, 1); (1.0, 2) ]);
      check_float "snapshot sum" 5.55 sum;
      check_int "snapshot count" 3 count
  | _ -> Alcotest.fail "expected one histogram sample"

let test_registration_rules () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~name:"x_total" [ ("a", "1"); ("b", "2") ]);
  (* Same series, labels given in a different order: identity is the
     key-sorted form, so this is a duplicate. *)
  check_bool "duplicate series rejected" true
    (raises_invalid (fun () ->
         ignore (Registry.counter reg ~name:"x_total" [ ("b", "2"); ("a", "1") ])));
  check_bool "kind mismatch rejected" true
    (raises_invalid (fun () ->
         ignore (Registry.gauge reg ~name:"x_total" [ ("a", "9") ])));
  check_bool "bad metric name rejected" true
    (raises_invalid (fun () -> ignore (Registry.counter reg ~name:"9bad" [])));
  check_bool "non-increasing buckets rejected" true
    (raises_invalid (fun () ->
         ignore (Registry.histogram reg ~name:"h" ~buckets:[| 1.0; 1.0 |] [])))

let test_collect_sorted () =
  let reg = Registry.create () in
  ignore (Registry.gauge reg ~name:"zz" []);
  ignore (Registry.counter reg ~name:"aa_total" [ ("g", "1") ]);
  ignore (Registry.counter reg ~name:"aa_total" [ ("g", "0") ]);
  let names =
    List.map
      (fun s -> (s.Registry.name, s.Registry.labels))
      (Registry.collect reg)
  in
  check_bool "sorted by name then labels" true
    (names
    = [ ("aa_total", [ ("g", "0") ]); ("aa_total", [ ("g", "1") ]); ("zz", []) ])

(* ------------------------------------------------------------------ *)
(* Prometheus exposition round-trip                                    *)
(* ------------------------------------------------------------------ *)

(* A small parser for the text exposition format. Escaped newlines in
   label values stay escaped in the text ("\n" as two characters), so
   splitting on physical newlines is safe. *)

let parse_series_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do
    incr i
  done;
  let name = String.sub line 0 !i in
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    while line.[!i] <> '}' do
      let ks = !i in
      while line.[!i] <> '=' do
        incr i
      done;
      let key = String.sub line ks (!i - ks) in
      incr i;
      if line.[!i] <> '"' then failwith "expected opening quote";
      incr i;
      let buf = Buffer.create 16 in
      let rec value () =
        match line.[!i] with
        | '\\' ->
            Buffer.add_char buf
              (match line.[!i + 1] with
              | 'n' -> '\n'
              | c -> c);
            i := !i + 2;
            value ()
        | '"' -> incr i
        | c ->
            Buffer.add_char buf c;
            incr i;
            value ()
      in
      value ();
      labels := (key, Buffer.contents buf) :: !labels;
      if line.[!i] = ',' then incr i
    done;
    incr i
  end;
  while !i < n && line.[!i] = ' ' do
    incr i
  done;
  (name, List.rev !labels, float_of_string (String.sub line !i (n - !i)))

let valid_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let strip_suffix name =
  let drop sfx =
    let ls = String.length sfx and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = sfx then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  match drop "_bucket" with
  | Some b -> b
  | None -> (
      match drop "_sum" with
      | Some b -> b
      | None -> ( match drop "_count" with Some b -> b | None -> name))

let nasty = "a\"b\\c\nd"

let round_trip_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~name:"rt_reqs_total" [ ("who", nasty) ] in
  Registry.inc ~by:41 c;
  let g = Registry.gauge reg ~name:"rt_depth" ~help:"queue \"depth\"" [] in
  Registry.set g 2.25;
  let h = Registry.histogram reg ~name:"rt_lat" ~buckets:[| 0.1; 1.0 |] [] in
  Registry.observe h 0.05;
  Registry.observe h 0.5;
  Registry.observe h 5.0;
  reg

let test_prometheus_round_trip () =
  let text = Exposition.prometheus (round_trip_registry ()) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let types = Hashtbl.create 8 in
  let series = ref [] in
  List.iter
    (fun line ->
      if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ] ->
            check_bool ("TYPE name valid: " ^ name) true (valid_metric_name name);
            check_bool ("TYPE kind valid: " ^ kind) true
              (List.mem kind [ "counter"; "gauge"; "histogram" ]);
            Hashtbl.replace types name kind
        | _ -> Alcotest.failf "malformed TYPE line: %s" line
      end
      else if String.length line > 0 && line.[0] = '#' then
        (* HELP — free text after the name; just require the prefix. *)
        check_bool ("HELP prefix: " ^ line) true
          (String.length line > 7 && String.sub line 0 7 = "# HELP ")
      else begin
        let name, labels, value = parse_series_line line in
        check_bool ("series name valid: " ^ name) true (valid_metric_name name);
        check_bool ("TYPE precedes series: " ^ name) true
          (Hashtbl.mem types (strip_suffix name));
        series := (name, labels, value) :: !series
      end)
    lines;
  let series = List.rev !series in
  let find name = List.filter (fun (n, _, _) -> n = name) series in
  (match find "rt_reqs_total" with
  | [ (_, [ ("who", v) ], x) ] ->
      check_string "nasty label round-trips" nasty v;
      check_float "counter value" 41.0 x
  | _ -> Alcotest.fail "rt_reqs_total series missing");
  (match find "rt_depth" with
  | [ (_, [], x) ] -> check_float "gauge value" 2.25 x
  | _ -> Alcotest.fail "rt_depth series missing");
  let buckets = find "rt_lat_bucket" in
  check_int "3 bucket lines (incl +Inf)" 3 (List.length buckets);
  let le l = List.assoc "le" l in
  let counts = List.map (fun (_, l, v) -> (le l, v)) buckets in
  check_bool "cumulative bucket counts" true
    (counts = [ ("0.1", 1.0); ("1", 2.0); ("+Inf", 3.0) ]);
  (match find "rt_lat_count" with
  | [ (_, _, x) ] -> check_float "_count equals +Inf bucket" 3.0 x
  | _ -> Alcotest.fail "rt_lat_count missing");
  match find "rt_lat_sum" with
  | [ (_, _, x) ] -> check_float "_sum" 5.55 x
  | _ -> Alcotest.fail "rt_lat_sum missing"

let test_prometheus_deterministic () =
  let a = Exposition.prometheus (round_trip_registry ()) in
  let b = Exposition.prometheus (round_trip_registry ()) in
  check_string "byte-stable" a b

let test_json_well_formed () =
  let s = String.trim (Exposition.json (round_trip_registry ())) in
  check_bool "array" true
    (String.length s > 2 && s.[0] = '[' && s.[String.length s - 1] = ']');
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "counter present" true (contains "\"rt_reqs_total\"");
  check_bool "histogram fields" true (contains "\"buckets\"");
  check_bool "newline escaped" true (contains "\\n")

let test_fmt_float () =
  check_string "integral" "3" (Exposition.fmt_float 3.0);
  check_string "fractional" "0.25" (Exposition.fmt_float 0.25);
  check_string "zero" "0" (Exposition.fmt_float 0.0)

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_sampler_watch_sim () =
  (* The event-loop probes poll Sim.pending / Sim.dispatched without
     scheduling anything themselves (beyond the sampler tick). *)
  let sim = Sim.create () in
  let reg = Registry.create () in
  let s = Sampler.create ~period:0.5 reg in
  Sampler.watch_sim s sim;
  Sampler.attach s sim;
  (* 10 work events spread over [0, 1]; one long-range timer keeps a
     constant floor of pending work. *)
  for i = 1 to 10 do
    ignore (Sim.at sim (0.1 *. float_of_int i) (fun () -> ()))
  done;
  ignore (Sim.at sim 100.0 (fun () -> ()));
  Sim.run sim ~until:2.0;
  (match Sampler.column_index s ~name:"massbft_sim_pending_events" ~labels:[] with
  | None -> Alcotest.fail "pending column missing"
  | Some i ->
      List.iter
        (fun (_, row) ->
          check_bool "pending >= long-range timer" true (row.(i) >= 1.0))
        (Sampler.rows s));
  match Sampler.column_mean s ~name:"massbft_sim_dispatch_rate" ~labels:[] with
  | None -> Alcotest.fail "dispatch rate column missing"
  | Some m -> check_bool (Printf.sprintf "rate positive (%f)" m) true (m > 0.0)

let test_sampler_ticks_and_csv () =
  let sim = Sim.create () in
  let reg = Registry.create () in
  let s = Sampler.create ~period:0.5 reg in
  Sampler.add_probe s ~name:"probe_now" ~labels:[ ("k", "v") ]
    (fun ~now ~dt:_ -> now);
  Sampler.add_probe s ~name:"probe_busy" ~labels:[] ~resource:"fake res"
    (fun ~now:_ ~dt:_ -> 1.0);
  Sampler.attach s sim;
  check_bool "add after attach rejected" true
    (raises_invalid (fun () ->
         Sampler.add_probe s ~name:"late" ~labels:[] (fun ~now:_ ~dt:_ -> 0.0)));
  Sim.run sim ~until:2.0;
  check_bool
    (Printf.sprintf "ticked (%d)" (Sampler.tick_count s))
    true
    (Sampler.tick_count s >= 3);
  let times = List.map fst (Sampler.rows s) in
  check_bool "rows chronological" true (List.sort compare times = times);
  (match
     Sampler.column_mean s ~name:"probe_busy" ~labels:[]
   with
  | Some m -> check_float "constant probe mean" 1.0 m
  | None -> Alcotest.fail "probe_busy column missing");
  check_bool "label order irrelevant in lookup" true
    (Sampler.column_index s ~name:"probe_now" ~labels:[ ("k", "v") ] <> None);
  check_bool "unknown column" true
    (Sampler.column_mean s ~name:"nope" ~labels:[] = None);
  (* CSV shape: one header plus one line per tick, all with the same
     number of cells. *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Sampler.csv s))
  in
  check_int "csv line count" (1 + Sampler.tick_count s) (List.length lines);
  let cells l = List.length (String.split_on_char ',' l) in
  let header = List.hd lines in
  check_int "header cells" (1 + List.length (Sampler.columns s)) (cells header);
  List.iter
    (fun l -> check_int "row cells match header" (cells header) (cells l))
    (List.tl lines);
  (* Saturation sees the resource-tagged column. *)
  match Saturation.binding s with
  | Some v ->
      check_string "binding resource" "fake res" v.Saturation.resource;
      check_float "saturated all windows" 1.0 v.Saturation.saturated_share
  | None -> Alcotest.fail "expected a binding verdict"

(* ------------------------------------------------------------------ *)
(* Runner integration: no perturbation, then the paper's verdicts      *)
(* ------------------------------------------------------------------ *)

let quick_cfg ?(scale = 0.001) system =
  { (Config.default ~system ()) with Config.workload_scale = scale }

let fresh_sampler () = Sampler.create (Registry.create ())

let test_observed_run_bit_identical () =
  let spec = Clusters.nationwide ~nodes_per_group:4 () in
  let cfg =
    { (quick_cfg Config.Massbft) with Config.max_batch = 40; pipeline = 4 }
  in
  let plain = Runner.run ~warmup:1.0 ~duration:2.0 ~spec ~cfg () in
  let obs = fresh_sampler () in
  let observed = Runner.run ~warmup:1.0 ~duration:2.0 ~obs ~spec ~cfg () in
  check_float "throughput identical" plain.Runner.throughput_ktps
    observed.Runner.throughput_ktps;
  check_int "entries identical" plain.Runner.entries_executed
    observed.Runner.entries_executed;
  check_float "wan identical" plain.Runner.wan_mb observed.Runner.wan_mb;
  check_float "lan identical" plain.Runner.lan_mb observed.Runner.lan_mb;
  check_float "latency identical" plain.Runner.mean_latency_ms
    observed.Runner.mean_latency_ms;
  check_bool "plain run carries no verdict" true
    (plain.Runner.binding_resource = None);
  check_bool "observed run carries a verdict" true
    (observed.Runner.binding_resource <> None);
  check_bool "sampler ticked" true (Sampler.tick_count obs > 0)

let ends_with sfx s =
  let ls = String.length sfx and ln = String.length s in
  ln >= ls && String.sub s (ln - ls) ls = sfx

let test_saturation_baseline_wan () =
  (* Figure 1b/13a: the Baseline funnels every group's entries through
     one leader, whose WAN uplink is the binding resource. *)
  let obs = fresh_sampler () in
  let r =
    Runner.run ~warmup:1.5 ~duration:3.0 ~obs
      ~spec:(Clusters.nationwide ())
      ~cfg:(quick_cfg ~scale:0.01 Config.Baseline)
      ()
  in
  match r.Runner.binding_resource with
  | None -> Alcotest.fail "expected a binding resource"
  | Some res ->
      check_bool
        (Printf.sprintf "binding is a WAN uplink (%s)" res)
        true (ends_with " wan_up" res);
      check_bool
        (Printf.sprintf "binding is a leader (%s)" res)
        true
        (ends_with "/n0 wan_up" res);
      check_bool "leader uplink hot in result" true
        (List.exists (fun b -> b > 0.5) r.Runner.leader_wan_busy)

let test_saturation_massbft_cpu () =
  (* Figure 13a: with 16 nodes per group, MassBFT's signature
     verification makes the CPU the binding resource. (With much larger
     batches the bijective bulk transfer shifts the bottleneck back to
     follower WAN uplinks — the default batch size matches the paper's
     operating point.) *)
  let obs = fresh_sampler () in
  let r =
    Runner.run ~warmup:1.5 ~duration:3.0 ~obs
      ~spec:(Clusters.nationwide ~nodes_per_group:16 ())
      ~cfg:(quick_cfg ~scale:0.05 Config.Massbft)
      ()
  in
  match r.Runner.binding_resource with
  | None -> Alcotest.fail "expected a binding resource"
  | Some res ->
      check_bool
        (Printf.sprintf "binding is a CPU (%s)" res)
        true (ends_with " cpu" res);
      check_bool "some leader CPU hot in result" true
        (List.exists (fun u -> u > 0.5) r.Runner.leader_cpu_util)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "massbft_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "polled instruments" `Quick test_polled_instruments;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "registration rules" `Quick test_registration_rules;
          Alcotest.test_case "collect sorted" `Quick test_collect_sorted;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus round-trip" `Quick
            test_prometheus_round_trip;
          Alcotest.test_case "prometheus deterministic" `Quick
            test_prometheus_deterministic;
          Alcotest.test_case "json well-formed" `Quick test_json_well_formed;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "ticks and csv" `Quick test_sampler_ticks_and_csv;
          Alcotest.test_case "watch_sim probes" `Quick test_sampler_watch_sim;
        ] );
      ( "runner",
        [
          Alcotest.test_case "observed run bit-identical" `Slow
            test_observed_run_bit_identical;
          Alcotest.test_case "baseline binds on leader wan_up" `Slow
            test_saturation_baseline_wan;
          Alcotest.test_case "massbft 16/group binds on cpu" `Slow
            test_saturation_massbft_cpu;
        ] );
    ]
