(* Tests for the discrete-event simulator: event ordering, timers, NIC
   serialization, CPU queueing, and the geo topology's latency and
   bandwidth arithmetic. *)

open Massbft_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Sim core                                                            *)
(* ------------------------------------------------------------------ *)

let test_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim 3.0 (fun () -> log := 3 :: !log));
  ignore (Sim.at sim 1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.at sim 2.0 (fun () -> log := 2 :: !log));
  Sim.run_until_idle sim ();
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log)

let test_fifo_at_equal_times () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 10 do
    ignore (Sim.at sim 1.0 (fun () -> log := i :: !log))
  done;
  Sim.run_until_idle sim ();
  Alcotest.(check (list int))
    "insertion order at equal time"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  ignore (Sim.after sim 2.5 (fun () -> seen := Sim.now sim));
  Sim.run_until_idle sim ();
  check_float "clock at event time" 2.5 !seen;
  check_float "clock stays" 2.5 (Sim.now sim)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.after sim 1.0 (fun () ->
         log := "a" :: !log;
         ignore (Sim.after sim 1.0 (fun () -> log := "c" :: !log))));
  ignore (Sim.after sim 1.5 (fun () -> log := "b" :: !log));
  Sim.run_until_idle sim ();
  Alcotest.(check (list string)) "nested order" [ "a"; "b"; "c" ] (List.rev !log)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.after sim 1.0 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run_until_idle sim ();
  check_bool "cancelled timer silent" false !fired;
  (* Double-cancel is a no-op. *)
  Sim.cancel h

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 5 do
    ignore (Sim.at sim (float_of_int i) (fun () -> incr count))
  done;
  Sim.run sim ~until:3.0;
  check_int "only events <= until" 3 !count;
  check_float "clock moved to until" 3.0 (Sim.now sim);
  Sim.run sim ~until:10.0;
  check_int "remaining events" 5 !count

let test_past_scheduling_rejected () =
  let sim = Sim.create () in
  ignore (Sim.after sim 5.0 (fun () -> ()));
  Sim.run sim ~until:6.0;
  check_bool "at in the past raises" true
    (try
       ignore (Sim.at sim 1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  check_bool "negative delay raises" true
    (try
       ignore (Sim.after sim (-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_pending () =
  let sim = Sim.create () in
  let a = Sim.after sim 1.0 (fun () -> ()) in
  ignore (Sim.after sim 2.0 (fun () -> ()));
  check_int "two pending" 2 (Sim.pending sim);
  Sim.cancel a;
  check_int "one after cancel" 1 (Sim.pending sim);
  (* Double-cancel must not decrement twice. *)
  Sim.cancel a;
  check_int "idempotent cancel" 1 (Sim.pending sim);
  Sim.run_until_idle sim ();
  check_int "drained" 0 (Sim.pending sim)

let test_pending_excludes_fired () =
  let sim = Sim.create () in
  let h = Sim.after sim 1.0 (fun () -> ()) in
  ignore (Sim.after sim 2.0 (fun () -> ()));
  Sim.run sim ~until:1.5;
  check_int "fired event no longer pending" 1 (Sim.pending sim);
  (* Cancelling an already-fired timer is a no-op on the counter. *)
  Sim.cancel h;
  check_int "cancel after fire is a no-op" 1 (Sim.pending sim)

let test_cancel_compaction_bounds_heap () =
  (* Regression for the lazy-deletion leak: schedule+cancel 100k timers
     (the batch-timer / heartbeat / retry-lane pattern) and assert the
     heap evicts the garbage instead of accumulating every cancelled
     event until its deadline. *)
  let sim = Sim.create () in
  let fired = ref 0 in
  let keepers = ref 0 in
  for i = 0 to 99_999 do
    let h =
      Sim.after sim (1.0 +. (float_of_int i *. 1e-5)) (fun () -> incr fired)
    in
    (* Keep 1 in 100, cancel the rest — heartbeats that actually fire
       are the rare case. *)
    if i mod 100 <> 0 then Sim.cancel h else incr keepers
  done;
  check_int "live count exact" !keepers (Sim.pending sim);
  check_bool
    (Printf.sprintf "heap stays bounded (%d entries for %d live)"
       (Sim.heap_size sim) (Sim.pending sim))
    true
    (Sim.heap_size sim <= (2 * Sim.pending sim) + 64);
  Sim.run_until_idle sim ();
  check_int "only keepers fired" !keepers !fired;
  check_int "empty after run" 0 (Sim.heap_size sim)

let test_churn_dispatch_order_unchanged () =
  (* Compaction must not reorder or drop survivors: a run with heavy
     cancellation churn dispatches exactly the uncancelled timers, in
     (time, insertion) order — i.e. the observed schedule is
     bit-identical to what an uncompacted queue would produce. *)
  let sim = Sim.create () in
  let rng = Massbft_util.Rng.create 42L in
  let fired = ref [] in
  let expected = ref [] in
  for i = 0 to 9_999 do
    let time = 1.0 +. Massbft_util.Rng.float rng 10.0 in
    let h = Sim.at sim time (fun () -> fired := i :: !fired) in
    if i mod 3 = 0 then Sim.cancel h else expected := (time, i) :: !expected
  done;
  Sim.run_until_idle sim ();
  let expected_order =
    List.map snd
      (List.sort
         (fun (ta, ia) (tb, ib) ->
           let c = compare ta tb in
           if c <> 0 then c else compare ia ib)
         !expected)
  in
  Alcotest.(check (list int))
    "survivors fire in (time, seq) order" expected_order (List.rev !fired)

(* ------------------------------------------------------------------ *)
(* Nic                                                                 *)
(* ------------------------------------------------------------------ *)

let test_nic_serialization_time () =
  let sim = Sim.create () in
  (* 20 Mbps: 1 MB takes 0.4 s. *)
  let nic = Nic.create sim ~bandwidth_bps:20e6 in
  let done_at = ref 0.0 in
  Nic.transmit nic ~bytes:1_000_000 (fun () -> done_at := Sim.now sim);
  Sim.run_until_idle sim ();
  check_float "1MB at 20Mbps" 0.4 !done_at

let test_nic_fifo_queueing () =
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:8e6 in
  (* 1 Mbit frames at 8 Mbps: 0.125 s each, queued back-to-back. *)
  let times = ref [] in
  for _ = 1 to 3 do
    Nic.transmit nic ~bytes:125_000 (fun () -> times := Sim.now sim :: !times)
  done;
  Sim.run_until_idle sim ();
  (match List.rev !times with
  | [ t1; t2; t3 ] ->
      check_float "first" 0.125 t1;
      check_float "second queued" 0.25 t2;
      check_float "third queued" 0.375 t3
  | _ -> Alcotest.fail "expected three completions");
  check_int "bytes accounted" 375_000 (Nic.bytes_sent nic)

let test_nic_idle_gap () =
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:8e6 in
  let t2 = ref 0.0 in
  Nic.transmit nic ~bytes:125_000 (fun () -> ());
  (* Second frame arrives after the queue drained: starts fresh. *)
  ignore
    (Sim.after sim 1.0 (fun () ->
         Nic.transmit nic ~bytes:125_000 (fun () -> t2 := Sim.now sim)));
  Sim.run_until_idle sim ();
  check_float "starts at arrival" 1.125 !t2

let test_nic_control_bypasses_bulk () =
  (* Two-class queueing: a control frame must not wait behind a deep
     bulk backlog (it models a separate TCP stream). *)
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:8e6 in
  (* 10 x 1 Mbit bulk frames: 1.25 s of queue. *)
  for _ = 1 to 10 do
    Nic.transmit ~bulk:true nic ~bytes:125_000 (fun () -> ())
  done;
  let ctrl_done = ref 0.0 in
  Nic.transmit nic ~bytes:125 (fun () -> ctrl_done := Sim.now sim);
  Sim.run_until_idle sim ();
  check_bool
    (Printf.sprintf "control frame fast (%.4f s)" !ctrl_done)
    true (!ctrl_done < 0.01);
  check_int "all bytes accounted" (1_250_000 + 125) (Nic.bytes_sent nic)

let test_nic_bulk_classes_independent () =
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:8e6 in
  let bulk_done = ref 0.0 and ctrl_done = ref 0.0 in
  Nic.transmit ~bulk:true nic ~bytes:125_000 (fun () -> bulk_done := Sim.now sim);
  Nic.transmit nic ~bytes:125_000 (fun () -> ctrl_done := Sim.now sim);
  Sim.run_until_idle sim ();
  (* Each class serializes independently at the full rate. *)
  check_float "bulk" 0.125 !bulk_done;
  check_float "control" 0.125 !ctrl_done

let test_nic_class_counters () =
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:8e6 in
  Nic.transmit ~bulk:true nic ~bytes:125_000 (fun () -> ());
  Nic.transmit nic ~bytes:125 (fun () -> ());
  Nic.transmit nic ~bytes:125 (fun () -> ());
  Sim.run_until_idle sim ();
  check_int "bulk bytes" 125_000 (Nic.class_bytes_sent nic Nic.Bulk);
  check_int "ctrl bytes" 250 (Nic.class_bytes_sent nic Nic.Ctrl);
  check_int "combined keeps old semantics" 125_250 (Nic.bytes_sent nic);
  check_float "bulk busy-seconds" 0.125 (Nic.class_busy_seconds nic Nic.Bulk);
  check_float "ctrl busy-seconds" 0.00025 (Nic.class_busy_seconds nic Nic.Ctrl)

let test_nic_backlog_covers_both_classes () =
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:8e6 in
  Nic.transmit ~bulk:true nic ~bytes:125_000 (fun () -> ());
  Nic.transmit nic ~bytes:250_000 (fun () -> ());
  check_float "bulk backlog" 0.125 (Nic.class_backlog_s nic Nic.Bulk);
  check_float "ctrl backlog" 0.25 (Nic.class_backlog_s nic Nic.Ctrl);
  (* The combined backlog is the max over the class queues: here the
     control queue is the deeper one. *)
  check_float "combined is the max" 0.25 (Nic.backlog_s nic);
  check_float "ctrl_busy_until" 0.25 (Nic.ctrl_busy_until nic);
  Sim.run_until_idle sim ();
  check_float "drained" 0.0 (Nic.backlog_s nic)

let test_nic_zero_bytes () =
  let sim = Sim.create () in
  let nic = Nic.create sim ~bandwidth_bps:1e6 in
  let fired = ref false in
  Nic.transmit nic ~bytes:0 (fun () -> fired := true);
  Sim.run_until_idle sim ();
  check_bool "zero-size completes immediately" true !fired

(* ------------------------------------------------------------------ *)
(* Cpu                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cpu_parallel_cores () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  let finishes = ref [] in
  for _ = 1 to 4 do
    Cpu.submit cpu ~seconds:1.0 (fun () -> finishes := Sim.now sim :: !finishes)
  done;
  Sim.run_until_idle sim ();
  (* 4 one-second tasks on 2 cores: pairs at t=1 and t=2. *)
  Alcotest.(check (list (float 1e-9)))
    "two waves" [ 1.0; 1.0; 2.0; 2.0 ]
    (List.sort compare !finishes)

let test_cpu_single_core_fifo () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let order = ref [] in
  Cpu.submit cpu ~seconds:0.5 (fun () -> order := (1, Sim.now sim) :: !order);
  Cpu.submit cpu ~seconds:0.25 (fun () -> order := (2, Sim.now sim) :: !order);
  Sim.run_until_idle sim ();
  (match List.rev !order with
  | [ (1, t1); (2, t2) ] ->
      check_float "first task" 0.5 t1;
      check_float "second task serialized" 0.75 t2
  | _ -> Alcotest.fail "unexpected order");
  check_float "busy accounting" 0.75 (Cpu.busy_seconds cpu)

let test_cpu_utilization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  Cpu.submit cpu ~seconds:1.0 (fun () -> ());
  Sim.run_until_idle sim ();
  (* 1 core-second over 4 cores for 1 second = 25%. *)
  check_float "utilization" 0.25 (Cpu.utilization cpu ~since:0.0)

let test_cpu_utilization_empty_window () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  check_float "empty window" 0.0 (Cpu.utilization cpu ~since:0.0);
  check_float "inverted window" 0.0 (Cpu.utilization cpu ~since:5.0)

let test_cpu_utilization_mid_task_window () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  (* Work is accounted at submit time: a 2 s task shows in full from
     the moment it is accepted, so a 1 s window caps at 1.0. *)
  Cpu.submit cpu ~seconds:2.0 (fun () -> ());
  ignore
    (Sim.at sim 1.0 (fun () ->
         check_float "mid-task, capped" 1.0 (Cpu.utilization cpu ~since:0.0)));
  Sim.run_until_idle sim ();
  check_float "exactly busy over its own span" 1.0
    (Cpu.utilization cpu ~since:0.0)

let test_cpu_utilization_multi_core_partial () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:4 in
  Cpu.submit cpu ~seconds:1.0 (fun () -> ());
  Cpu.submit cpu ~seconds:1.0 (fun () -> ());
  ignore (Sim.at sim 2.0 (fun () -> ()));
  Sim.run_until_idle sim ();
  (* 2 core-seconds over 2 s x 4 cores = 25%. *)
  check_float "partial busy" 0.25 (Cpu.utilization cpu ~since:0.0);
  (* The busy total is cumulative since creation, so a late window sees
     all of it over half the capacity. *)
  check_float "late window" 0.5 (Cpu.utilization cpu ~since:1.0)

let test_cpu_queue_depth () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  check_int "idle" 0 (Cpu.queue_depth cpu);
  Cpu.submit cpu ~seconds:1.0 (fun () -> ());
  Cpu.submit cpu ~seconds:1.0 (fun () -> ());
  check_int "running + queued" 2 (Cpu.queue_depth cpu);
  ignore
    (Sim.at sim 1.5 (fun () -> check_int "one completed" 1 (Cpu.queue_depth cpu)));
  Sim.run_until_idle sim ();
  check_int "drained" 0 (Cpu.queue_depth cpu)

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let spec ?(wan_bps = 20e6) ?(groups = [| 3; 3 |]) () =
  {
    Topology.group_sizes = groups;
    wan_bps;
    lan_bps = 2.5e9;
    rtt = (fun _ _ -> 0.030);
    lan_rtt = 0.0005;
    cores = 8;
  }

let test_topology_shape () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ~groups:[| 4; 7; 2 |] ()) in
  check_int "groups" 3 (Topology.n_groups topo);
  check_int "g0 size" 4 (Topology.group_size topo 0);
  check_int "g1 size" 7 (Topology.group_size topo 1);
  check_int "total nodes" 13 (List.length (Topology.nodes topo));
  check_int "group nodes" 7 (List.length (Topology.group_nodes topo 1));
  check_bool "valid addr" true (Topology.valid_addr topo { g = 1; n = 6 });
  check_bool "invalid addr" false (Topology.valid_addr topo { g = 1; n = 7 })

let test_wan_latency_and_bandwidth () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let arrived = ref 0.0 in
  (* 100 KB over 20 Mbps uplink + 15 ms propagation + 20 Mbps downlink:
     0.04 + 0.015 + 0.04 = 0.095 s. *)
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:100_000
    (fun () -> arrived := Sim.now sim);
  Sim.run_until_idle sim ();
  check_float "store-and-forward WAN" 0.095 !arrived;
  check_int "wan bytes counted" 100_000 (Topology.wan_bytes_sent topo)

let test_lan_fast_path () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let arrived = ref 0.0 in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 0; n = 1 } ~bytes:100_000
    (fun () -> arrived := Sim.now sim);
  Sim.run_until_idle sim ();
  (* 2 * (100KB at 2.5Gbps = 0.32ms) + 0.25ms = ~0.89 ms: well under WAN. *)
  check_bool "LAN much faster than WAN" true (!arrived < 0.002);
  check_int "no wan traffic" 0 (Topology.wan_bytes_sent topo);
  check_bool "lan traffic counted" true (Topology.lan_bytes_sent topo = 100_000)

let test_leader_uplink_bottleneck () =
  (* The motivating experiment of the paper in miniature: one sender
     fanning N copies out serializes on its single uplink, so total time
     grows linearly with N. *)
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ~groups:[| 1; 8 |] ()) in
  let last = ref 0.0 in
  for n = 0 to 7 do
    Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n } ~bytes:250_000
      (fun () -> last := Float.max !last (Sim.now sim))
  done;
  Sim.run_until_idle sim ();
  (* Each copy is 0.1 s of uplink; 8 copies ~ 0.8 s + prop + downlink. *)
  check_bool
    (Printf.sprintf "fan-out serializes (%.3f s)" !last)
    true
    (!last > 0.8 && !last < 1.1)

let test_crash_drops_messages () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.crash topo { g = 1; n = 0 };
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:10
    (fun () -> incr delivered);
  (* Crash of the source also suppresses sends. *)
  Topology.crash topo { g = 0; n = 1 };
  Topology.send topo ~src:{ g = 0; n = 1 } ~dst:{ g = 1; n = 1 } ~bytes:10
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "both dropped" 0 !delivered;
  Topology.recover topo { g = 1; n = 0 };
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:10
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "delivered after recovery" 1 !delivered

let test_crash_mid_flight () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:100_000
    (fun () -> incr delivered);
  (* Receiver dies while the message is in flight. *)
  ignore (Sim.after sim 0.01 (fun () -> Topology.crash topo { g = 1; n = 0 }));
  Sim.run_until_idle sim ();
  check_int "in-flight message dropped" 0 !delivered

let test_crash_group () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  Topology.crash_group topo 1;
  List.iter
    (fun a -> check_bool "down" false (Topology.alive topo a))
    (Topology.group_nodes topo 1);
  check_bool "other group fine" true (Topology.alive topo { g = 0; n = 0 });
  Topology.recover_group topo 1;
  check_bool "recovered" true (Topology.alive topo { g = 1; n = 2 })

(* In-flight delivery semantics at crash/recover boundaries: liveness
   is gated on the receiver's state at *delivery* time (a restart-then-
   arrive packet reaches the recovered process), while the sender only
   gates egress — bytes already serialized stay in flight. The fault
   injector and the engine's recovery logic both rely on exactly these
   semantics. *)

let test_crash_then_recover_before_arrival_delivers () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  (* 100 KB at 20 Mbps: 0.04 s uplink + propagation + 0.04 s downlink,
     so delivery lands well after 0.08 s. *)
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:100_000
    (fun () -> incr delivered);
  ignore (Sim.after sim 0.010 (fun () -> Topology.crash topo { g = 1; n = 0 }));
  ignore (Sim.after sim 0.050 (fun () -> Topology.recover topo { g = 1; n = 0 }));
  Sim.run_until_idle sim ();
  check_int "recovered receiver gets the in-flight message" 1 !delivered

let test_sender_crash_keeps_egressed_bytes_in_flight () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:100_000
    (fun () -> incr delivered);
  ignore (Sim.after sim 0.010 (fun () -> Topology.crash topo { g = 0; n = 0 }));
  Sim.run_until_idle sim ();
  check_int "already-egressed message still delivers" 1 !delivered;
  (* But new sends from the crashed node are suppressed at the source. *)
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:10
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "post-crash send suppressed" 1 !delivered

(* ---- injected link faults through the fault hook ---- *)

let test_fault_hook_drop () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.set_fault_hook topo
    (Some (fun ~src:_ ~dst:_ ~bulk ~bytes:_ ~now:_ ->
         if bulk then Some Topology.Net_drop else None));
  Topology.send ~bulk:true topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 }
    ~bytes:50_000
    (fun () -> incr delivered);
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:50_000
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "bulk dropped, control through" 1 !delivered;
  check_int "drop counted" 1 (Topology.faults_dropped topo);
  (* A dropped message vanishes at the sender's egress: no bandwidth. *)
  check_int "dropped message consumes no bandwidth" 50_000
    (Topology.wan_bytes_sent topo)

let test_fault_hook_delay () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let plain = ref 0.0 and delayed = ref 0.0 in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:10
    (fun () -> plain := Sim.now sim);
  Sim.run_until_idle sim ();
  let t0 = Sim.now sim in
  Topology.set_fault_hook topo
    (Some (fun ~src:_ ~dst:_ ~bulk:_ ~bytes:_ ~now:_ -> Some (Topology.Net_delay 0.5)));
  Topology.send topo ~src:{ g = 0; n = 1 } ~dst:{ g = 1; n = 1 } ~bytes:10
    (fun () -> delayed := Sim.now sim -. t0);
  Sim.run_until_idle sim ();
  check_int "delay counted" 1 (Topology.faults_delayed topo);
  (* Identical message, +0.5 s of injected propagation. *)
  check_float "delayed by 0.5 s" (!plain +. 0.5) !delayed

let test_fault_hook_dup () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.set_fault_hook topo
    (Some (fun ~src:_ ~dst:_ ~bulk:_ ~bytes:_ ~now:_ ->
         Some (Topology.Net_dup { copies = 2; spacing_s = 0.001 })));
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:10
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "original + 2 copies" 3 !delivered;
  check_int "one duplication event" 1 (Topology.faults_duplicated topo);
  (* Receive-side duplication: the NIC serialized the payload once. *)
  check_int "duplicate copies are free on the wire" 10
    (Topology.wan_bytes_sent topo)

let test_fault_hook_skips_loopback () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.set_fault_hook topo
    (Some (fun ~src:_ ~dst:_ ~bulk:_ ~bytes:_ ~now:_ -> Some Topology.Net_drop));
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 0; n = 0 } ~bytes:10
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "loopback is not a link" 1 !delivered;
  check_int "no drop counted" 0 (Topology.faults_dropped topo)

let test_fault_hook_uninstall () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref 0 in
  Topology.set_fault_hook topo
    (Some (fun ~src:_ ~dst:_ ~bulk:_ ~bytes:_ ~now:_ -> Some Topology.Net_drop));
  Topology.set_fault_hook topo None;
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:10
    (fun () -> incr delivered);
  Sim.run_until_idle sim ();
  check_int "healed link delivers" 1 !delivered

let test_cpu_speed_factor () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let done1 = ref 0.0 and done2 = ref 0.0 in
  Cpu.set_speed_factor cpu 2.0;
  Cpu.submit cpu ~seconds:1.0 (fun () -> done1 := Sim.now sim);
  (* Restoring 1.0 must not rewrite the already-queued task's cost. *)
  Cpu.set_speed_factor cpu 1.0;
  Cpu.submit cpu ~seconds:1.0 (fun () -> done2 := Sim.now sim);
  Sim.run_until_idle sim ();
  check_float "stretched task" 2.0 !done1;
  check_float "nominal task queues behind it" 3.0 !done2;
  Alcotest.check_raises "factor below 1 rejected"
    (Invalid_argument "Cpu.set_speed_factor: factor must be finite and >= 1")
    (fun () -> Cpu.set_speed_factor cpu 0.5)

let test_topology_backlog_includes_control () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let a = { Topology.g = 0; n = 0 } in
  (* A control-class (non-bulk) message must register on the uplink
     backlog diagnostic: 250 KB at 20 Mbps = 0.1 s of queue. *)
  Topology.send topo ~src:a ~dst:{ Topology.g = 1; n = 0 } ~bytes:250_000
    (fun () -> ());
  check_float "control traffic counts" 0.1
    (Topology.wan_uplink_backlog_s topo a);
  Sim.run_until_idle sim ()

let test_self_send () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  let delivered = ref false in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 0; n = 0 } ~bytes:999
    (fun () -> delivered := true);
  Sim.run_until_idle sim ();
  check_bool "loopback delivers" true !delivered;
  check_int "loopback costs no bandwidth" 0
    (Topology.lan_bytes_sent topo + Topology.wan_bytes_sent topo)

let test_bandwidth_override () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  (* Degrade one node to 10 Mbps: its 100 KB send takes 0.08 s uplink. *)
  Topology.set_wan_bandwidth topo { g = 0; n = 0 } 10e6;
  let slow = ref 0.0 and fast = ref 0.0 in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:100_000
    (fun () -> slow := Sim.now sim);
  Topology.send topo ~src:{ g = 0; n = 1 } ~dst:{ g = 1; n = 1 } ~bytes:100_000
    (fun () -> fast := Sim.now sim);
  Sim.run_until_idle sim ();
  check_bool
    (Printf.sprintf "slow node slower (%.3f vs %.3f)" !slow !fast)
    true (!slow > !fast)

let test_traffic_baseline_reset () =
  let sim = Sim.create () in
  let topo = Topology.create sim (spec ()) in
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:5_000
    (fun () -> ());
  Sim.run_until_idle sim ();
  check_int "warmup counted" 5_000 (Topology.wan_bytes_sent topo);
  Topology.reset_traffic_baseline topo;
  check_int "baseline zeroed" 0 (Topology.wan_bytes_sent topo);
  Topology.send topo ~src:{ g = 0; n = 0 } ~dst:{ g = 1; n = 0 } ~bytes:7_000
    (fun () -> ());
  Sim.run_until_idle sim ();
  check_int "only post-reset traffic" 7_000 (Topology.wan_bytes_sent topo)

(* ------------------------------------------------------------------ *)
(* Sharded scheduler                                                   *)
(* ------------------------------------------------------------------ *)

(* A random scheduling workload, interpretable against any shard count:
   every command arms something at a quantized time (forcing plenty of
   equal-timestamp ties), and a fired command's children re-arm through
   [Sim.after] (executing-shard routing) or [Sim.post] (targeted
   cross-shard delivery). The sharded sequential merge driver must
   dispatch any such program in exactly the single-heap order. *)
type shard_cmd = {
  c_shard : int;  (* arming shard (mod the sim's shard count) *)
  c_time : float;
  c_kind : int;  (* 0 = at; 1 = at then cancel; 2 = post *)
  c_dst : int;  (* post target (mod shard count) *)
  c_children : (int * float * int) list;  (* (0=after|1=post, delta, dst) *)
}

let run_shard_program ~shards cmds =
  let sim = Sim.create ~shards ~lookahead:0.5 () in
  let shard i = Sim.shard sim (i mod Sim.n_shards sim) in
  let log = ref [] in
  let emit id = log := id :: !log in
  List.iteri
    (fun i c ->
      let fire () =
        emit i;
        List.iteri
          (fun j (kind, delta, dst) ->
            let cid = ((i + 1) * 1000) + j in
            if kind = 0 then
              ignore (Sim.after (shard c.c_shard) delta (fun () -> emit cid))
            else
              Sim.post (shard dst)
                (Sim.now sim +. delta)
                (fun () -> emit cid))
          c.c_children
      in
      match c.c_kind with
      | 0 -> ignore (Sim.at (shard c.c_shard) c.c_time fire)
      | 1 ->
          let h = Sim.at (shard c.c_shard) c.c_time fire in
          Sim.cancel h
      | _ -> Sim.post (shard c.c_dst) c.c_time fire)
    cmds;
  Sim.run_until_idle sim ();
  List.rev !log

let gen_shard_cmds =
  let open QCheck.Gen in
  let time = map (fun k -> float_of_int k *. 0.125) (int_range 0 32) in
  let delta = map (fun k -> float_of_int (k + 1) *. 0.125) (int_range 0 8) in
  let child = triple (int_range 0 1) delta (int_range 0 3) in
  let cmd =
    int_range 0 3 >>= fun c_shard ->
    time >>= fun c_time ->
    int_range 0 2 >>= fun c_kind ->
    int_range 0 3 >>= fun c_dst ->
    list_size (int_range 0 3) child >>= fun c_children ->
    return { c_shard; c_time; c_kind; c_dst; c_children }
  in
  list_size (int_range 1 40) cmd

let prop_shard_merge_equivalence =
  QCheck.Test.make ~count:300
    ~name:"sharded merge driver = single-heap dispatch order"
    (QCheck.make gen_shard_cmds)
    (fun cmds ->
      let reference = run_shard_program ~shards:1 cmds in
      run_shard_program ~shards:2 cmds = reference
      && run_shard_program ~shards:3 cmds = reference
      && run_shard_program ~shards:4 cmds = reference)

let test_parallel_window_edge () =
  (* Lookahead 1.0, two shards. A cross-shard post landing exactly on
     the window's end is legal (the conservative contract is half-open);
     one landing inside the window is a violation the driver must
     surface, not silently misorder. *)
  let sim = Sim.create ~shards:2 ~lookahead:1.0 () in
  let s1 = Sim.shard sim 1 in
  let fired_at = ref (-1.0) in
  ignore
    (Sim.at sim 0.0 (fun () ->
         Sim.post s1 1.0 (fun () -> fired_at := Sim.now s1)));
  Sim.run_parallel sim ~domains:2 ~until:4.0 ();
  check_float "edge post fires at the window boundary" 1.0 !fired_at;
  let sim = Sim.create ~shards:2 ~lookahead:1.0 () in
  let s1 = Sim.shard sim 1 in
  ignore (Sim.at sim 0.0 (fun () -> Sim.post s1 0.1 (fun () -> ())));
  check_bool "sub-lookahead cross-shard post raises" true
    (try
       Sim.run_parallel sim ~domains:2 ~until:4.0 ();
       false
     with Invalid_argument _ -> true)

let test_parallel_matches_sequential () =
  (* A ping-pong across two shards with exactly-lookahead latency: the
     parallel driver must deliver the same fire count and times as the
     sequential merge driver. *)
  let run_pingpong ~drive =
    let sim = Sim.create ~shards:2 ~lookahead:0.5 () in
    let s0 = Sim.shard sim 0 and s1 = Sim.shard sim 1 in
    let log = ref [] in
    let rec ping src dst tag () =
      log := (tag, Sim.now src) :: !log;
      Sim.post dst (Sim.now src +. 0.5) (ping dst src (1 - tag))
    in
    Sim.post s0 0.0 (ping s0 s1 0);
    drive sim;
    List.rev !log
  in
  let seq = run_pingpong ~drive:(fun sim -> Sim.run sim ~until:6.0) in
  let par =
    run_pingpong ~drive:(fun sim -> Sim.run_parallel sim ~domains:2 ~until:6.0 ())
  in
  check_int "same ping count" (List.length seq) (List.length par);
  check_bool "same ping sequence" true (seq = par)

let test_parallel_on_window_barriers () =
  let sim = Sim.create ~shards:2 ~lookahead:0.5 () in
  let s1 = Sim.shard sim 1 in
  ignore (Sim.at sim 0.0 (fun () -> ()));
  ignore (Sim.at s1 2.4 (fun () -> ()));
  let edges = ref [] in
  Sim.run_parallel sim ~domains:2 ~until:3.0
    ~on_window:(fun w -> edges := w :: !edges)
    ();
  let edges = List.rev !edges in
  check_bool "at least one barrier" true (edges <> []);
  check_bool "edges strictly increase" true
    (List.for_all2
       (fun a b -> a < b)
       (List.filteri (fun i _ -> i < List.length edges - 1) edges)
       (List.tl edges));
  check_float "clock lands on until" 3.0 (Sim.now sim)

let test_parallel_guards () =
  let sim = Sim.create ~shards:2 ~lookahead:0.5 () in
  check_bool "domains < 1 rejected" true
    (try
       Sim.run_parallel sim ~domains:0 ~until:1.0 ();
       false
     with Invalid_argument _ -> true);
  let flat = Sim.create ~shards:2 () in
  check_bool "zero lookahead rejected" true
    (try
       Sim.run_parallel flat ~domains:2 ~until:1.0 ();
       false
     with Invalid_argument _ -> true);
  let traced = Sim.create ~shards:2 ~lookahead:0.5 () in
  Sim.set_trace traced (Massbft_trace.Trace.create ());
  check_bool "trace sink rejected" true
    (try
       Sim.run_parallel traced ~domains:2 ~until:1.0 ();
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "massbft_sim"
    [
      ( "sim",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "FIFO at equal times" `Quick test_fifo_at_equal_times;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
          Alcotest.test_case "pending count" `Quick test_pending;
          Alcotest.test_case "pending excludes fired" `Quick
            test_pending_excludes_fired;
          Alcotest.test_case "100k cancels stay bounded" `Quick
            test_cancel_compaction_bounds_heap;
          Alcotest.test_case "churn keeps dispatch order" `Quick
            test_churn_dispatch_order_unchanged;
        ] );
      ( "shard",
        [
          QCheck_alcotest.to_alcotest prop_shard_merge_equivalence;
          Alcotest.test_case "lookahead window edge" `Quick
            test_parallel_window_edge;
          Alcotest.test_case "parallel = sequential ping-pong" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "on_window barriers" `Quick
            test_parallel_on_window_barriers;
          Alcotest.test_case "parallel guards" `Quick test_parallel_guards;
        ] );
      ( "nic",
        [
          Alcotest.test_case "serialization time" `Quick test_nic_serialization_time;
          Alcotest.test_case "FIFO queueing" `Quick test_nic_fifo_queueing;
          Alcotest.test_case "idle gap" `Quick test_nic_idle_gap;
          Alcotest.test_case "control bypasses bulk" `Quick test_nic_control_bypasses_bulk;
          Alcotest.test_case "classes independent" `Quick test_nic_bulk_classes_independent;
          Alcotest.test_case "per-class counters" `Quick test_nic_class_counters;
          Alcotest.test_case "backlog covers both classes" `Quick
            test_nic_backlog_covers_both_classes;
          Alcotest.test_case "zero bytes" `Quick test_nic_zero_bytes;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "parallel cores" `Quick test_cpu_parallel_cores;
          Alcotest.test_case "single core FIFO" `Quick test_cpu_single_core_fifo;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
          Alcotest.test_case "utilization empty window" `Quick
            test_cpu_utilization_empty_window;
          Alcotest.test_case "utilization mid-task window" `Quick
            test_cpu_utilization_mid_task_window;
          Alcotest.test_case "utilization multi-core partial" `Quick
            test_cpu_utilization_multi_core_partial;
          Alcotest.test_case "queue depth" `Quick test_cpu_queue_depth;
        ] );
      ( "topology",
        [
          Alcotest.test_case "shape" `Quick test_topology_shape;
          Alcotest.test_case "WAN latency+bandwidth" `Quick test_wan_latency_and_bandwidth;
          Alcotest.test_case "LAN fast path" `Quick test_lan_fast_path;
          Alcotest.test_case "leader uplink bottleneck" `Quick test_leader_uplink_bottleneck;
          Alcotest.test_case "crash drops messages" `Quick test_crash_drops_messages;
          Alcotest.test_case "backlog includes control class" `Quick
            test_topology_backlog_includes_control;
          Alcotest.test_case "crash mid-flight" `Quick test_crash_mid_flight;
          Alcotest.test_case "crash group" `Quick test_crash_group;
          Alcotest.test_case "recover before arrival delivers" `Quick
            test_crash_then_recover_before_arrival_delivers;
          Alcotest.test_case "sender crash keeps egressed bytes" `Quick
            test_sender_crash_keeps_egressed_bytes_in_flight;
          Alcotest.test_case "fault hook drop" `Quick test_fault_hook_drop;
          Alcotest.test_case "fault hook delay" `Quick test_fault_hook_delay;
          Alcotest.test_case "fault hook dup" `Quick test_fault_hook_dup;
          Alcotest.test_case "fault hook skips loopback" `Quick
            test_fault_hook_skips_loopback;
          Alcotest.test_case "fault hook uninstall" `Quick
            test_fault_hook_uninstall;
          Alcotest.test_case "cpu speed factor" `Quick test_cpu_speed_factor;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "bandwidth override" `Quick test_bandwidth_override;
          Alcotest.test_case "traffic baseline reset" `Quick test_traffic_baseline_reset;
        ] );
    ]
