(* Tests for the massbft_trace subsystem: ring-buffer semantics,
   span discipline of the instrumented engine, determinism of the
   Chrome export, and well-formedness of the emitted JSON. *)

module Trace = Massbft_trace.Trace
module Trace_export = Massbft_trace.Trace_export
module Config = Massbft.Config
module W = Massbft_workload.Workload
module Runner = Massbft_harness.Runner
module Clusters = Massbft_harness.Clusters

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_drops_oldest () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 5 do
    Trace.instant tr ~ts:(float_of_int i) (Printf.sprintf "e%d" i)
  done;
  check_int "capacity" 4 (Trace.capacity tr);
  check_int "length" 4 (Trace.length tr);
  check_int "dropped" 2 (Trace.dropped tr);
  check_int "emitted" 6 (Trace.emitted tr);
  let names = List.map (fun e -> e.Trace.name) (Trace.events tr) in
  Alcotest.(check (list string))
    "oldest two overwritten" [ "e2"; "e3"; "e4"; "e5" ] names;
  Trace.clear tr;
  check_int "clear empties" 0 (Trace.length tr);
  check_int "clear resets drops" 0 (Trace.dropped tr)

let test_null_sink_noop () =
  check_bool "null disabled" false (Trace.enabled Trace.null);
  Trace.instant Trace.null "ignored";
  Trace.counter Trace.null "ignored" 1.0;
  Trace.span Trace.null ~b:0.0 ~e:1.0 "ignored";
  Trace.span_end Trace.null (Trace.span_begin Trace.null "ignored");
  check_int "null stays empty" 0 (Trace.length Trace.null);
  check_int "null counts nothing" 0 (Trace.emitted Trace.null)

(* ------------------------------------------------------------------ *)
(* Traced engine runs                                                  *)
(* ------------------------------------------------------------------ *)

let traced_run ?(capacity = 262144) ?(seed = 7) () =
  let tr = Trace.create ~capacity () in
  let cfg =
    {
      (Config.default ~system:Config.Massbft ~workload:W.Ycsb_a ()) with
      Config.workload_scale = 0.01;
      seed = Int64.of_int seed;
    }
  in
  let spec = Clusters.nationwide ~nodes_per_group:4 ~groups:3 () in
  ignore (Runner.run ~duration:0.4 ~warmup:0.2 ~trace:tr ~spec ~cfg ());
  tr

let test_span_balance () =
  let tr = traced_run () in
  check_bool "dropped nothing at default capacity" true (Trace.dropped tr = 0);
  check_bool "recorded something" true (Trace.length tr > 0);
  let begins = Hashtbl.create 256 in
  let n_begin = ref 0 and n_end = ref 0 in
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Span_begin ->
          incr n_begin;
          check_bool "span id not reused as begin" false
            (Hashtbl.mem begins e.Trace.span);
          Hashtbl.replace begins e.Trace.span e
      | Trace.Span_end -> (
          incr n_end;
          match Hashtbl.find_opt begins e.Trace.span with
          | None -> Alcotest.failf "end without begin for span %d" e.Trace.span
          | Some b ->
              Alcotest.(check string) "end name matches" b.Trace.name e.Trace.name;
              check_bool "end not before begin" true (e.Trace.ts >= b.Trace.ts);
              Hashtbl.remove begins e.Trace.span)
      | Trace.Instant | Trace.Counter _ -> ())
    (Trace.events tr);
  check_bool "saw spans" true (!n_begin > 0);
  check_int "begin/end balance" !n_begin !n_end;
  check_int "no dangling begins" 0 (Hashtbl.length begins)

let test_export_deterministic () =
  let a = Trace_export.to_chrome_json (traced_run ()) in
  let b = Trace_export.to_chrome_json (traced_run ()) in
  check_bool "same seed, byte-identical export" true (String.equal a b);
  let c = Trace_export.to_chrome_json (traced_run ~seed:8 ()) in
  check_bool "different seed, different trace" false (String.equal a c)

(* ------------------------------------------------------------------ *)
(* JSON well-formedness                                                *)
(* ------------------------------------------------------------------ *)

(* A minimal recursive-descent JSON validator: enough to prove the
   export is parseable, with no dependency on a JSON library. *)
let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at byte %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_chrome_json_well_formed () =
  let tr = traced_run () in
  let json = Trace_export.to_chrome_json tr in
  parse_json json;
  check_bool "has traceEvents" true (contains ~needle:"\"traceEvents\"" json);
  check_bool "has process metadata" true
    (contains ~needle:"\"process_name\"" json)

let test_json_escaping () =
  let tr = Trace.create ~capacity:8 () in
  Trace.instant tr ~ts:0.0
    ~args:[ ("why", Trace.Str "quote\" back\\slash \n tab\t") ]
    "weird\"name";
  let json = Trace_export.to_chrome_json tr in
  parse_json json

let test_critical_path_report () =
  let tr = traced_run () in
  let report = Trace_export.critical_path_report ~limit:3 tr in
  check_bool "mentions an entry" true (contains ~needle:"entry e(" report);
  check_bool "reports phases" true (contains ~needle:"local" report)

let () =
  Alcotest.run "massbft_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "drops oldest" `Quick test_ring_drops_oldest;
          Alcotest.test_case "null sink" `Quick test_null_sink_noop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "span balance" `Quick test_span_balance;
          Alcotest.test_case "deterministic export" `Quick
            test_export_deterministic;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json well-formed" `Quick
            test_chrome_json_well_formed;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "critical path report" `Quick
            test_critical_path_report;
        ] );
    ]
