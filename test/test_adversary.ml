(* Tests for the Byzantine adversary engine: the strategy DSL
   (round-trip, validation, heal times), accountability evidence
   (signing, tamper detection, conflict pairs, the log), the strict
   no-op contract (an armed empty plan reproduces every system's golden
   fingerprint byte-for-byte), tolerable-vs-intolerable equivocation
   (one compromised leader is survived; leader + colluding follower —
   more than f Byzantine — splits the honest replicas and must be
   detected with a verified conflicting-signed-message pair), ddmin
   shrinking of adversary plans, and the shared injection-counter
   family's strategy label. *)

module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Registry = Massbft_obs.Registry
module Clusters = Massbft_harness.Clusters
module A = Massbft_adversary.Adv_spec
module Evidence = Massbft_adversary.Evidence
module Invariants = Massbft_faults.Invariants
module Chaos = Massbft_faults.Chaos
module Golden = Golden_fixture

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let small_cfg ?(system = Config.Massbft) () =
  {
    (Config.default ~system ()) with
    Config.max_batch = 40;
    pipeline = 4;
    workload_scale = 0.001;
  }

let small_spec () = Clusters.nationwide ~nodes_per_group:4 ()

(* ------------------------------------------------------------------ *)
(* DSL                                                                 *)
(* ------------------------------------------------------------------ *)

(* One event of every variant, with representative field values. *)
let kitchen_sink : A.plan =
  [
    {
      A.at = 2.0;
      strategy = A.Equivocate { target = A.Leader 0; for_s = 3.0 };
    };
    {
      A.at = 2.5;
      strategy = A.Equivocate_raft { target = A.Leader 1; for_s = 2.0 };
    };
    {
      A.at = 1.0;
      strategy =
        A.Withhold { target = A.Node { Topology.g = 0; n = 1 }; for_s = 2.5 };
    };
    {
      A.at = 4.0;
      strategy =
        A.Split_votes { target = A.Node { Topology.g = 1; n = 2 }; for_s = 2.0 };
    };
    {
      A.at = 1.5;
      strategy =
        A.Replay { target = A.Leader 2; copies = 2; gap_s = 0.25; for_s = 2.0 };
    };
    {
      A.at = 2.25;
      strategy =
        A.Delay_valid
          { target = A.Node { Topology.g = 1; n = 3 }; add_s = 0.3; for_s = 1.5 };
    };
    {
      A.at = 6.0;
      strategy =
        A.Tamper { target = A.Node { Topology.g = 2; n = 3 }; for_s = 10.0 };
    };
  ]

let test_round_trip () =
  let text = A.to_string kitchen_sink in
  let back = A.of_string text in
  check_bool "of_string (to_string p) = p" true (back = kitchen_sink);
  check_string "second round-trip is byte-identical" text (A.to_string back)

let test_parse_comments_and_errors () =
  let plan =
    A.of_string
      "# a comment\n\n@2 equivocate leader:g0 for 3\n  \n@1 tamper node:g0/n3 \
       for 2\n"
  in
  check_int "comments and blanks skipped" 2 (List.length plan);
  let raises text =
    match A.of_string text with
    | _ -> false
    | exception A.Parse_error _ -> true
  in
  check_bool "unknown strategy rejected" true (raises "@1 bribe leader:g0 for 1");
  check_bool "missing @time rejected" true (raises "equivocate leader:g0 for 1");
  check_bool "bad target rejected" true (raises "@1 equivocate g0/n1 for 1");
  check_bool "missing keyword arg rejected" true
    (raises "@1 replay leader:g0 copies 2 for 1");
  check_bool "bad number rejected" true (raises "@1 equivocate leader:g0 for x")

let test_validate () =
  let gs = [| 4; 4; 4 |] in
  let ok p = A.validate ~group_sizes:gs p = Ok () in
  check_bool "kitchen sink validates" true (ok kitchen_sink);
  let bad strategy = not (ok [ { A.at = 1.0; strategy } ]) in
  check_bool "leader group out of range" true
    (bad (A.Equivocate { target = A.Leader 7; for_s = 1.0 }));
  check_bool "node out of range" true
    (bad (A.Withhold { target = A.Node { Topology.g = 0; n = 9 }; for_s = 1.0 }));
  check_bool "non-positive window rejected" true
    (bad (A.Tamper { target = A.Leader 0; for_s = 0.0 }));
  check_bool "replay copies < 1 rejected" true
    (bad (A.Replay { target = A.Leader 0; copies = 0; gap_s = 0.1; for_s = 1.0 }));
  check_bool "replay gap <= 0 rejected" true
    (bad (A.Replay { target = A.Leader 0; copies = 1; gap_s = 0.0; for_s = 1.0 }));
  check_bool "delay add <= 0 rejected" true
    (bad (A.Delay_valid { target = A.Leader 0; add_s = 0.0; for_s = 1.0 }));
  check_bool "negative time rejected" true
    (A.validate ~group_sizes:gs
       [
         {
           A.at = -1.0;
           strategy = A.Equivocate { target = A.Leader 0; for_s = 1.0 };
         };
       ]
    <> Ok ())

let test_heal_time_and_sorted () =
  let feq = Alcotest.(check (float 1e-9)) in
  feq "empty plan heals at 0" 0.0 (A.heal_time []);
  feq "heal time is the last closing window" 16.0 (A.heal_time kitchen_sink);
  let s = A.sorted kitchen_sink in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a.A.at <= b.A.at && nondecreasing rest
    | _ -> true
  in
  check_bool "sorted by time" true (nondecreasing s);
  check_int "same events" (List.length kitchen_sink) (List.length s)

(* ------------------------------------------------------------------ *)
(* Evidence                                                            *)
(* ------------------------------------------------------------------ *)

let master = Evidence.default_master

let sample_signed ?(claim = "digest-one\x00raw") () =
  Evidence.sign ~master ~signer:"g0/n1" ~kind:"pbft-commit" ~gid:0 ~seq:7
    ~slot:"v2" ~claim

let test_evidence_sign_verify () =
  let s = sample_signed () in
  check_bool "fresh signature verifies" true (Evidence.verify_signed ~master s);
  check_bool "tampered claim fails" false
    (Evidence.verify_signed ~master { s with Evidence.e_claim = "other" });
  check_bool "tampered seq fails" false
    (Evidence.verify_signed ~master { s with Evidence.e_seq = 8 });
  check_bool "wrong signer fails" false
    (Evidence.verify_signed ~master { s with Evidence.e_signer = "g0/n2" });
  check_bool "wrong master fails" false
    (Evidence.verify_signed ~master:"other-master" s)

let test_evidence_pair () =
  let a = sample_signed () in
  let b = sample_signed ~claim:"digest-two" () in
  check_bool "conflicting claims verify as a pair" true
    (Evidence.verify_pair ~master { Evidence.first = a; second = b });
  check_bool "same claim is not a conflict" false
    (Evidence.verify_pair ~master { Evidence.first = a; second = a });
  let other_slot = { b with Evidence.e_slot = "v3" } in
  check_bool "different slots are not a conflict" false
    (Evidence.verify_pair ~master { Evidence.first = a; second = other_slot });
  let forged = { b with Evidence.e_tag = String.make 32 '\x00' } in
  check_bool "a bad signature invalidates the pair" false
    (Evidence.verify_pair ~master { Evidence.first = a; second = forged })

let test_evidence_text_round_trip () =
  let a = sample_signed () in
  let b = sample_signed ~claim:"digest two with spaces? \xff" () in
  let line = Evidence.signed_to_string a in
  check_bool "signed round-trips" true (Evidence.signed_of_string line = a);
  let p = { Evidence.first = a; second = b } in
  let text = Evidence.pair_to_string p in
  check_bool "pair round-trips" true (Evidence.pair_of_string text = p);
  check_bool "round-tripped pair still verifies" true
    (Evidence.verify_pair ~master (Evidence.pair_of_string text));
  let raises t =
    match Evidence.pair_of_string t with
    | _ -> false
    | exception Evidence.Parse_error _ -> true
  in
  check_bool "garbage rejected" true (raises "signed what\n");
  check_bool "bad hex rejected" true
    (raises "signed g0/n1 pbft-commit 0 7 v2 zz zz\nsigned g0/n1 pbft-commit 0 7 v2 aa aa\n")

let test_evidence_log () =
  let log = Evidence.create_log () in
  let obs claim =
    Evidence.observe log ~signer:"g0/n0" ~kind:"pbft-pre-prepare" ~gid:0 ~seq:3
      ~slot:"v0" ~claim
  in
  obs "alpha";
  obs "alpha";
  check_int "duplicate claims dedup" 1 (Evidence.recorded log);
  check_bool "no conflict yet" true (Evidence.conflicts log = []);
  obs "beta";
  check_int "second distinct claim recorded" 2 (Evidence.recorded log);
  (match Evidence.conflicts log with
  | [ p ] ->
      check_bool "conflict pair verifies" true (Evidence.verify log p);
      check_bool "claims differ" true
        (p.Evidence.first.Evidence.e_claim <> p.Evidence.second.Evidence.e_claim)
  | l -> Alcotest.failf "expected exactly one conflict, got %d" (List.length l));
  obs "gamma";
  check_int "at most one pair per slot" 1 (List.length (Evidence.conflicts log));
  check_bool "conflict_for finds the slot" true
    (Evidence.conflict_for log ~gid:0 ~seq:3 <> None);
  check_bool "conflict_for misses other slots" true
    (Evidence.conflict_for log ~gid:0 ~seq:4 = None);
  (* A different signer claiming a different value is not a conflict:
     accountability only ever blames a single equivocating node. *)
  Evidence.observe log ~signer:"g0/n1" ~kind:"pbft-pre-prepare" ~gid:1 ~seq:3
    ~slot:"v0" ~claim:"alpha";
  Evidence.observe log ~signer:"g0/n2" ~kind:"pbft-pre-prepare" ~gid:1 ~seq:3
    ~slot:"v0" ~claim:"beta";
  check_bool "cross-signer disagreement is no conflict" true
    (Evidence.conflict_for log ~gid:1 ~seq:3 = None)

(* ------------------------------------------------------------------ *)
(* Strict no-op                                                        *)
(* ------------------------------------------------------------------ *)

(* An armed empty-plan adversary must not schedule a single event or
   perturb one message: every system's run stays byte-identical to its
   recorded golden fingerprint. *)
let test_noop_golden () =
  List.iter
    (fun system ->
      let name = Config.system_name system in
      let recorded =
        Golden.load (Filename.concat "golden" (Golden.file_of_system system))
      in
      let fresh =
        Golden.capture
          ~attach:(fun engine sim _topo ->
            let adv =
              Massbft_adversary.Adversary.create
                ~spec:(Clusters.nationwide ~nodes_per_group:4 ())
                ~plan:[] engine sim
            in
            Massbft_adversary.Adversary.arm adv)
          ~system ()
      in
      check_string
        (name ^ " fingerprint unchanged under an empty adversary")
        (Golden.to_string recorded)
        (Golden.to_string fresh))
    Config.all_systems

(* ------------------------------------------------------------------ *)
(* Tolerable vs intolerable equivocation                               *)
(* ------------------------------------------------------------------ *)

let run_plan ?(system = Config.Massbft) ?(registry : Registry.t option) plan =
  Chaos.run_schedule ~duration:6.0 ~liveness_bound_s:3.0 ?registry
    ~adversary:plan ~spec:(small_spec ()) ~cfg:(small_cfg ~system ()) []

let safety_violations (o : Chaos.outcome) =
  List.filter
    (fun (v : Invariants.violation) -> v.Invariants.check <> "liveness")
    o.Chaos.violations

(* One equivocating leader in a 4-node group is within f = 1: honest
   replicas never disagree (the protocol may burn a slot's votes and
   recover through a view change, but safety holds) and the run settles
   after the window closes. *)
let test_single_equivocator_tolerated () =
  let plan =
    [
      { A.at = 1.0; strategy = A.Equivocate { target = A.Leader 0; for_s = 2.0 } };
    ]
  in
  let o = run_plan plan in
  check_bool "no safety violation" true (safety_violations o = []);
  check_bool "adversary actually interfered" true (o.Chaos.adv_injected > 0);
  check_bool "evidence caught the equivocation" true (o.Chaos.evidence <> []);
  List.iter
    (fun p ->
      check_bool "every logged conflict pair verifies" true
        (Evidence.verify_pair ~master:Evidence.default_master p))
    o.Chaos.evidence

(* Leader plus colluding follower is 2 Byzantine in a 4-node group —
   beyond f = 1, and the parity fork is engineered so the two honest
   replicas land on opposite halves: a genuine safety violation, which
   the checkers must detect and pin on the equivocators with a
   verified conflicting-signed-message pair. *)
let intolerable_plan =
  [
    {
      A.at = 0.5;
      strategy =
        A.Equivocate { target = A.Node { Topology.g = 0; n = 0 }; for_s = 4.0 };
    };
    {
      A.at = 0.5;
      strategy =
        A.Equivocate { target = A.Node { Topology.g = 0; n = 1 }; for_s = 4.0 };
    };
  ]

let test_intolerable_detected_with_evidence () =
  let o = run_plan intolerable_plan in
  let safety = safety_violations o in
  check_bool "more than f equivocators break safety" true (safety <> []);
  check_bool "an honest-disagreement violation is reported" true
    (List.exists
       (fun (v : Invariants.violation) ->
         v.Invariants.check = "replica_prefix")
       safety);
  List.iter
    (fun (v : Invariants.violation) ->
      match v.Invariants.evidence with
      | None ->
          Alcotest.failf "violation lacks evidence: %s"
            (Invariants.violation_to_string v)
      | Some p ->
          check_bool "attached pair verifies" true
            (Evidence.verify_pair ~master:Evidence.default_master p);
          check_bool "pair blames a compromised node" true
            (List.mem p.Evidence.first.Evidence.e_signer [ "g0/n0"; "g0/n1" ]))
    safety;
  check_bool "the run is accountable" true (Chaos.accountable o)

let test_intolerable_shrinks_to_pair () =
  (* ddmin over the adversary plan: noise strategies fall away, both
     colluding equivocators survive (dropping either makes the run
     tolerable — the reproducer is 1-minimal). *)
  let noise =
    [
      {
        A.at = 1.0;
        strategy =
          A.Delay_valid
            { target = A.Node { Topology.g = 1; n = 2 }; add_s = 0.1; for_s = 1.0 };
      };
      {
        A.at = 1.5;
        strategy =
          A.Replay { target = A.Leader 2; copies = 1; gap_s = 0.2; for_s = 1.0 };
      };
      {
        A.at = 2.0;
        strategy =
          A.Tamper { target = A.Node { Topology.g = 2; n = 3 }; for_s = 1.0 };
      };
    ]
  in
  let plan = A.sorted (intolerable_plan @ noise) in
  let fails p = safety_violations (run_plan p) <> [] in
  let shrunk = Chaos.shrink ~fails plan in
  check_string "shrinks to the two colluding equivocators"
    (A.to_string (A.sorted intolerable_plan))
    (A.to_string shrunk)

(* ------------------------------------------------------------------ *)
(* Metrics: the shared injection-counter family                        *)
(* ------------------------------------------------------------------ *)

let test_injection_counter_strategy_label () =
  let registry = Registry.create () in
  let o =
    run_plan ~registry
      [
        {
          A.at = 1.0;
          strategy = A.Equivocate { target = A.Leader 0; for_s = 2.0 };
        };
      ]
  in
  check_bool "interference happened" true (o.Chaos.adv_injected > 0);
  let series =
    List.filter
      (fun (s : Registry.sample) ->
        s.Registry.name = "massbft_faults_injected_total")
      (Registry.collect registry)
  in
  match
    List.find_opt
      (fun (s : Registry.sample) ->
        List.mem ("strategy", "equivocate") s.Registry.labels
        && List.mem ("kind", "adversary") s.Registry.labels)
      series
  with
  | Some { Registry.point = Registry.P_counter n; _ } ->
      check_int "counter matches the adversary's own count"
        o.Chaos.adv_injected n
  | Some _ -> Alcotest.fail "wrong instrument kind"
  | None ->
      Alcotest.fail
        "no massbft_faults_injected_total{kind=adversary,strategy=equivocate} \
         series"

(* ------------------------------------------------------------------ *)
(* Determinism of the adversary axis                                   *)
(* ------------------------------------------------------------------ *)

let test_adversary_drill_deterministic () =
  let cfg = small_cfg () and spec = small_spec () in
  let go () =
    Chaos.drill ~duration:4.0 ~shrink_failures:false ~adversary:"equivocate"
      ~spec ~cfg ~seed:11L ()
  in
  let a = go () and b = go () in
  check_string "byte-identical generated plan"
    (A.to_string a.Chaos.outcome.Chaos.adversary)
    (A.to_string b.Chaos.outcome.Chaos.adversary);
  check_int "identical executed count" a.Chaos.outcome.Chaos.executed
    b.Chaos.outcome.Chaos.executed;
  check_int "identical interference count" a.Chaos.outcome.Chaos.adv_injected
    b.Chaos.outcome.Chaos.adv_injected;
  check_bool "identical verdict" true
    (Chaos.failed a.Chaos.outcome = Chaos.failed b.Chaos.outcome)

let () =
  Alcotest.run "adversary"
    [
      ( "dsl",
        [
          Alcotest.test_case "round-trip" `Quick test_round_trip;
          Alcotest.test_case "comments and parse errors" `Quick
            test_parse_comments_and_errors;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "heal-time and sorted" `Quick
            test_heal_time_and_sorted;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "sign and verify" `Quick test_evidence_sign_verify;
          Alcotest.test_case "conflict pairs" `Quick test_evidence_pair;
          Alcotest.test_case "text round-trip" `Quick
            test_evidence_text_round_trip;
          Alcotest.test_case "log" `Quick test_evidence_log;
        ] );
      ( "noop",
        [ Alcotest.test_case "golden fingerprints" `Slow test_noop_golden ] );
      ( "equivocation",
        [
          Alcotest.test_case "single equivocator tolerated" `Slow
            test_single_equivocator_tolerated;
          Alcotest.test_case "intolerable: detected with evidence" `Slow
            test_intolerable_detected_with_evidence;
          Alcotest.test_case "intolerable: shrinks to the pair" `Slow
            test_intolerable_shrinks_to_pair;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "strategy label" `Slow
            test_injection_counter_strategy_label;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same adversary run" `Slow
            test_adversary_drill_deterministic;
        ] );
    ]
