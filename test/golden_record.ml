(* Records the golden determinism fixtures under test/golden/: one file
   per Config.system with the seed-0 fingerprints of a fixed small
   cluster run (executed orders, store fingerprint, WAN/LAN bytes,
   committed transactions). test_engine.ml asserts that the engine
   reproduces these files exactly, locking the refactored engine to the
   recorded behaviour.

   Usage: dune exec test/golden_record.exe -- <output-dir> *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Types = Massbft.Types
module Stats = Massbft_util.Stats
module Clusters = Massbft_harness.Clusters
module Golden = Golden_fixture

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  List.iter
    (fun system ->
      let g = Golden.capture ~system () in
      let file = Filename.concat dir (Golden.file_of_system system) in
      let oc = open_out file in
      output_string oc (Golden.to_string g);
      close_out oc;
      Printf.printf "wrote %s (%d entries, %d committed)\n%!" file g.Golden.entries
        g.Golden.committed)
    Config.all_systems
