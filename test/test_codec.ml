(* Tests for the erasure-coding substrate: field axioms in GF(2^8) and
   GF(2^16), matrix algebra, Reed-Solomon round-trips under erasure
   patterns, and the high-level Erasure entry codec. *)

open Massbft_codec
module Rng = Massbft_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Field laws                                                          *)
(* ------------------------------------------------------------------ *)

module type FIELD_OPS = sig
  val order : int
  val add : int -> int -> int
  val mul : int -> int -> int
  val div : int -> int -> int
  val inv : int -> int
end

let field_law_tests (module F : FIELD_OPS) name sample_count =
  let rng = Rng.create 77L in
  let rand () = Rng.int rng F.order in
  let rand_nz () = 1 + Rng.int rng (F.order - 1) in
  for _ = 1 to sample_count do
    let a = rand () and b = rand () and c = rand () in
    check_int (name ^ ": add commutes") (F.add a b) (F.add b a);
    check_int (name ^ ": mul commutes") (F.mul a b) (F.mul b a);
    check_int (name ^ ": mul associates")
      (F.mul a (F.mul b c))
      (F.mul (F.mul a b) c);
    check_int
      (name ^ ": distributivity")
      (F.mul a (F.add b c))
      (F.add (F.mul a b) (F.mul a c));
    check_int (name ^ ": add identity") a (F.add a 0);
    check_int (name ^ ": mul identity") a (F.mul a 1);
    check_int (name ^ ": additive self-inverse") 0 (F.add a a);
    let nz = rand_nz () in
    check_int (name ^ ": mul inverse") 1 (F.mul nz (F.inv nz));
    check_int (name ^ ": div inverts mul") a (F.div (F.mul a nz) nz)
  done

let test_gf256_laws () = field_law_tests (module Gf256) "gf256" 500
let test_gf65536_laws () = field_law_tests (module Gf65536) "gf65536" 200

let test_gf256_exhaustive_inverse () =
  (* Small enough to check every element. *)
  for a = 1 to 255 do
    check_int "a * inv a = 1" 1 (Gf256.mul a (Gf256.inv a))
  done

let test_gf_zero_division () =
  Alcotest.check_raises "gf256 div by zero" Division_by_zero (fun () ->
      ignore (Gf256.div 3 0));
  Alcotest.check_raises "gf65536 div by zero" Division_by_zero (fun () ->
      ignore (Gf65536.div 3 0));
  check_int "0 / x = 0" 0 (Gf256.div 0 7)

let test_gf256_generator_order () =
  (* exp must cycle with period exactly 255 (primitive generator). *)
  check_int "g^255 = g^0 = 1" 1 (Gf256.exp 255);
  check_int "g^0 = 1" 1 (Gf256.exp 0);
  let seen = Array.make 256 false in
  for i = 0 to 254 do
    seen.(Gf256.exp i) <- true
  done;
  let covered = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen in
  check_int "generator covers all 255 nonzero elements" 255 covered

let test_gf_log_exp_inverse () =
  for a = 1 to 255 do
    check_int "exp(log a) = a in gf256" a (Gf256.exp (Gf256.log a))
  done;
  let rng = Rng.create 3L in
  for _ = 1 to 200 do
    let a = 1 + Rng.int rng 65535 in
    check_int "exp(log a) = a in gf65536" a (Gf65536.exp (Gf65536.log a))
  done

let test_exp_negative_exponents () =
  (* Regression: OCaml's [mod] keeps the dividend's sign, so a negative
     exponent used to index exp_table out of bounds. Negative exponents
     are legitimate under g^(order-1) = 1. *)
  check_int "gf256 exp(-1) = exp 254" (Gf256.exp 254) (Gf256.exp (-1));
  check_int "gf256 exp(-255) = exp 0 = 1" 1 (Gf256.exp (-255));
  check_int "gf256 exp(-1) is inv g" 1
    (Gf256.mul (Gf256.exp (-1)) (Gf256.exp 1));
  check_int "gf65536 exp(-1) = exp 65534" (Gf65536.exp 65534)
    (Gf65536.exp (-1));
  check_int "gf65536 exp(-65535) = exp 0 = 1" 1 (Gf65536.exp (-65535));
  check_int "gf65536 exp(-1) is inv g" 1
    (Gf65536.mul (Gf65536.exp (-1)) (Gf65536.exp 1));
  (* Large magnitudes on both sides of zero stay in range. *)
  check_int "gf256 exp(-1000000) indexable" (Gf256.exp (-1000000))
    (Gf256.exp (-1000000 mod 255 + 255));
  check_int "gf65536 wraps forward too" (Gf65536.exp 2) (Gf65536.exp (2 + (3 * 65535)))

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_slice_coefficient_validation () =
  (* Regression: coefficients outside the field used to reach
     Array.unsafe_get — undefined behavior, not an exception. Every
     slice entry point must reject them loudly. *)
  let src = Bytes.make 8 'a' and dst = Bytes.make 8 'b' in
  List.iter
    (fun c ->
      expect_invalid "gf256 mul_slice" (fun () -> Gf256.mul_slice c src dst);
      expect_invalid "gf256 mul_slice_set" (fun () ->
          Gf256.mul_slice_set c src dst);
      expect_invalid "gf256 mul_row" (fun () ->
          Gf256.mul_row ~coeffs:[| c |] [| src |] dst))
    [ -1; 256; 65536 ];
  List.iter
    (fun c ->
      expect_invalid "gf65536 mul_slice" (fun () -> Gf65536.mul_slice c src dst);
      expect_invalid "gf65536 mul_slice_set" (fun () ->
          Gf65536.mul_slice_set c src dst);
      expect_invalid "gf65536 mul_row" (fun () ->
          Gf65536.mul_row ~coeffs:[| c |] [| src |] dst))
    [ -1; 65536 ]

let test_slice_fast_paths () =
  let rng = Rng.create 21L in
  let src = Rng.bytes rng 16 in
  (* c = 0: mul_slice leaves dst untouched; mul_slice_set zeroes it. *)
  let dst = Rng.bytes rng 16 in
  let before = Bytes.copy dst in
  Gf256.mul_slice 0 src dst;
  check_bool "gf8 c=0 acc is identity" true (Bytes.equal dst before);
  Gf65536.mul_slice 0 src dst;
  check_bool "gf16 c=0 acc is identity" true (Bytes.equal dst before);
  Gf256.mul_slice_set 0 src dst;
  check_bool "gf8 c=0 set zeroes" true (Bytes.equal dst (Bytes.make 16 '\x00'));
  Gf65536.mul_slice_set 1 src dst;
  check_bool "gf16 c=1 set copies" true (Bytes.equal dst src);
  (* c = 1: acc is XOR; src xor src = 0. *)
  Gf256.mul_slice 1 src dst;
  check_bool "gf8 c=1 acc is xor" true (Bytes.equal dst (Bytes.make 16 '\x00'))

let test_gf16_odd_length_rejected () =
  let b7 = Bytes.make 7 'x' and b7' = Bytes.make 7 'y' in
  expect_invalid "odd mul_slice" (fun () -> Gf65536.mul_slice 3 b7 b7');
  expect_invalid "odd mul_slice_set" (fun () ->
      Gf65536.mul_slice_set 3 b7 b7');
  expect_invalid "odd mul_row" (fun () ->
      Gf65536.mul_row ~coeffs:[| 3 |] [| b7 |] b7');
  let b8 = Bytes.make 8 'x' in
  expect_invalid "mismatched mul_slice" (fun () -> Gf65536.mul_slice 3 b8 b7);
  expect_invalid "mismatched gf8 mul_slice" (fun () ->
      Gf256.mul_slice 3 b8 b7);
  expect_invalid "mismatched xor fast path" (fun () ->
      Gf65536.mul_slice 1 b8 b7)

let get16_le b i =
  Char.code (Bytes.get b (2 * i)) lor (Char.code (Bytes.get b ((2 * i) + 1)) lsl 8)

(* Split-table kernel vs the scalar log/exp product, over lengths that
   exercise both the 64-bit quad loop and the scalar tail, including
   c = 0 and c = 1 fast paths. *)
let prop_gf16_mul_slice_matches_scalar =
  QCheck.Test.make ~name:"gf16 split-table slice = scalar product" ~count:300
    QCheck.(triple (int_range 0 65535) (int_range 0 21) small_int)
    (fun (c, half_len, seed) ->
      let n = 2 * half_len in
      let rng = Rng.create (Int64.of_int ((seed * 65536) + c)) in
      let src = Rng.bytes rng n in
      let dst = Rng.bytes rng n in
      let orig = Bytes.copy dst in
      Gf65536.mul_slice c src dst;
      let ok = ref true in
      for i = 0 to half_len - 1 do
        let expect = get16_le orig i lxor Gf65536.mul c (get16_le src i) in
        if get16_le dst i <> expect then ok := false
      done;
      !ok)

let prop_gf16_mul_slice_set_matches_scalar =
  QCheck.Test.make ~name:"gf16 split-table set = scalar product" ~count:300
    QCheck.(triple (int_range 0 65535) (int_range 0 21) small_int)
    (fun (c, half_len, seed) ->
      let n = 2 * half_len in
      let rng = Rng.create (Int64.of_int ((seed * 65536) + c + 1)) in
      let src = Rng.bytes rng n in
      let dst = Rng.bytes rng n in
      Gf65536.mul_slice_set c src dst;
      let ok = ref true in
      for i = 0 to half_len - 1 do
        if get16_le dst i <> Gf65536.mul c (get16_le src i) then ok := false
      done;
      !ok)

let prop_gf8_mul_slice_matches_scalar =
  QCheck.Test.make ~name:"gf8 table slice = scalar product" ~count:300
    QCheck.(triple (int_range 0 255) (int_range 0 43) small_int)
    (fun (c, n, seed) ->
      let rng = Rng.create (Int64.of_int ((seed * 256) + c)) in
      let src = Rng.bytes rng n in
      let dst = Rng.bytes rng n in
      let orig = Bytes.copy dst in
      Gf256.mul_slice c src dst;
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect =
          Char.code (Bytes.get orig i)
          lxor Gf256.mul c (Char.code (Bytes.get src i))
        in
        if Char.code (Bytes.get dst i) <> expect then ok := false
      done;
      !ok)

let test_mul_slice_aliasing () =
  (* src == dst: each symbol is read before its write, so the result is
     s xor c*s symbol-wise. Guards against a future kernel rewrite
     (e.g. wider blocking) silently changing aliasing behavior. *)
  let rng = Rng.create 22L in
  let b = Rng.bytes rng 20 in
  let orig = Bytes.copy b in
  Gf65536.mul_slice 0x2f19 b b;
  for i = 0 to 9 do
    let s = get16_le orig i in
    check_int
      (Printf.sprintf "gf16 aliased symbol %d" i)
      (s lxor Gf65536.mul 0x2f19 s)
      (get16_le b i)
  done;
  let a = Rng.bytes rng 13 in
  let orig = Bytes.copy a in
  Gf256.mul_slice 0x8e a a;
  for i = 0 to 12 do
    let s = Char.code (Bytes.get orig i) in
    check_int
      (Printf.sprintf "gf8 aliased byte %d" i)
      (s lxor Gf256.mul 0x8e s)
      (Char.code (Bytes.get a i))
  done

(* mul_row vs a scalar reference sum, with coefficients drawn to hit
   the 0-skip, 1-XOR and table paths, including all-zero rows and a
   zero leading run (the first-nonzero-writes-dst optimization). *)
let prop_gf16_mul_row_matches_scalar =
  QCheck.Test.make ~name:"gf16 mul_row = scalar row sum" ~count:150
    QCheck.(triple (int_range 1 6) (int_range 0 9) small_int)
    (fun (k, half_len, seed) ->
      let n = 2 * half_len in
      let rng = Rng.create (Int64.of_int ((seed * 7) + k)) in
      let coeffs =
        Array.init k (fun _ ->
            match Rng.int rng 4 with
            | 0 -> 0
            | 1 -> 1
            | _ -> Rng.int rng 65536)
      in
      let srcs = Array.init k (fun _ -> Rng.bytes rng n) in
      let dst = Rng.bytes rng n in
      Gf65536.mul_row ~coeffs srcs dst;
      let ok = ref true in
      for i = 0 to half_len - 1 do
        let expect = ref 0 in
        for j = 0 to k - 1 do
          expect := !expect lxor Gf65536.mul coeffs.(j) (get16_le srcs.(j) i)
        done;
        if get16_le dst i <> !expect then ok := false
      done;
      !ok)

let prop_gf8_mul_row_matches_scalar =
  QCheck.Test.make ~name:"gf8 mul_row = scalar row sum" ~count:150
    QCheck.(triple (int_range 1 6) (int_range 0 19) small_int)
    (fun (k, n, seed) ->
      let rng = Rng.create (Int64.of_int ((seed * 11) + k)) in
      let coeffs =
        Array.init k (fun _ ->
            match Rng.int rng 4 with
            | 0 -> 0
            | 1 -> 1
            | _ -> Rng.int rng 256)
      in
      let srcs = Array.init k (fun _ -> Rng.bytes rng n) in
      let dst = Rng.bytes rng n in
      Gf256.mul_row ~coeffs srcs dst;
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = ref 0 in
        for j = 0 to k - 1 do
          expect :=
            !expect lxor Gf256.mul coeffs.(j) (Char.code (Bytes.get srcs.(j) i))
        done;
        if Char.code (Bytes.get dst i) <> !expect then ok := false
      done;
      !ok)

let test_mul_slice_matches_scalar () =
  let rng = Rng.create 4L in
  let src = Rng.bytes rng 64 in
  let dst = Rng.bytes rng 64 in
  let dst_copy = Bytes.copy dst in
  let c = 0x57 in
  Gf256.mul_slice c src dst;
  for i = 0 to 63 do
    let expected =
      Gf256.add (Char.code (Bytes.get dst_copy i))
        (Gf256.mul c (Char.code (Bytes.get src i)))
    in
    check_int (Printf.sprintf "slice byte %d" i) expected
      (Char.code (Bytes.get dst i))
  done

let test_mul_slice_set_gf16_matches_scalar () =
  let rng = Rng.create 5L in
  let src = Rng.bytes rng 32 in
  let dst = Bytes.create 32 in
  let c = 0x1234 in
  Gf65536.mul_slice_set c src dst;
  for i = 0 to 15 do
    let s =
      Char.code (Bytes.get src (2 * i))
      lor (Char.code (Bytes.get src ((2 * i) + 1)) lsl 8)
    in
    let d =
      Char.code (Bytes.get dst (2 * i))
      lor (Char.code (Bytes.get dst ((2 * i) + 1)) lsl 8)
    in
    check_int (Printf.sprintf "symbol %d" i) (Gf65536.mul c s) d
  done

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

module M8 = Matrix.Make (Field.Gf8)

let test_matrix_identity_mul () =
  let id = M8.identity 4 in
  let m = M8.create 4 4 in
  let rng = Rng.create 6L in
  for r = 0 to 3 do
    for c = 0 to 3 do
      M8.set m r c (Rng.int rng 256)
    done
  done;
  check_bool "I * m = m" true (M8.equal (M8.mul id m) m);
  check_bool "m * I = m" true (M8.equal (M8.mul m id) m)

let test_matrix_inverse () =
  let rng = Rng.create 7L in
  let tried = ref 0 and inverted = ref 0 in
  while !inverted < 20 && !tried < 200 do
    incr tried;
    let n = 1 + Rng.int rng 8 in
    let m = M8.create n n in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        M8.set m r c (Rng.int rng 256)
      done
    done;
    match M8.invert m with
    | None -> () (* singular draw; skip *)
    | Some mi ->
        incr inverted;
        check_bool "m * m^-1 = I" true (M8.equal (M8.mul m mi) (M8.identity n))
  done;
  check_bool "inverted a reasonable sample" true (!inverted >= 20)

let test_matrix_singular () =
  let m = M8.create 2 2 in
  (* Two identical rows. *)
  M8.set m 0 0 3;
  M8.set m 0 1 5;
  M8.set m 1 0 3;
  M8.set m 1 1 5;
  check_bool "singular detected" true (M8.invert m = None);
  let z = M8.create 3 3 in
  check_bool "zero matrix singular" true (M8.invert z = None)

let test_vandermonde_submatrix_invertible () =
  (* The RS guarantee: any k rows of a Vandermonde matrix are
     independent. *)
  let vm = M8.vandermonde 12 5 in
  let rng = Rng.create 8L in
  for _ = 1 to 30 do
    let rows = Array.init 12 Fun.id in
    Rng.shuffle rng rows;
    let sub = M8.select_rows vm (Array.sub rows 0 5) in
    check_bool "5 random vandermonde rows invertible" true (M8.invert sub <> None)
  done

let test_matrix_bounds () =
  let m = M8.create 2 3 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Matrix: index out of bounds") (fun () ->
      ignore (M8.get m 2 0));
  Alcotest.check_raises "set non-element"
    (Invalid_argument "Matrix.set: not a field element") (fun () ->
      M8.set m 0 0 256);
  Alcotest.check_raises "mul mismatch"
    (Invalid_argument "Matrix.mul: dimension mismatch") (fun () ->
      ignore (M8.mul m m))

(* ------------------------------------------------------------------ *)
(* Reed-Solomon                                                        *)
(* ------------------------------------------------------------------ *)

module Rs8 = Reed_solomon.Make (Field.Gf8)
module Rs16 = Reed_solomon.Make (Field.Gf16)

let random_shards rng ~n ~size = Array.init n (fun _ -> Rng.bytes rng size)

let test_rs_systematic () =
  let rs = Rs8.create ~data:4 ~parity:3 in
  check_int "data" 4 (Rs8.data rs);
  check_int "parity" 3 (Rs8.parity rs);
  check_int "total" 7 (Rs8.total rs);
  (* Systematic code: encoding rows 0..data-1 are the identity. *)
  for i = 0 to 3 do
    let row = Rs8.encoding_row rs i in
    Array.iteri
      (fun j v -> check_int (Printf.sprintf "row %d col %d" i j) (if i = j then 1 else 0) v)
      row
  done

let test_rs_roundtrip_no_loss () =
  let rng = Rng.create 10L in
  let rs = Rs8.create ~data:5 ~parity:3 in
  let data = random_shards rng ~n:5 ~size:128 in
  let parity = Rs8.encode rs data in
  check_int "parity count" 3 (Array.length parity);
  let slots =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  match Rs8.reconstruct rs slots with
  | Error e -> Alcotest.fail e
  | Ok out ->
      Array.iteri
        (fun i shard ->
          check_bool (Printf.sprintf "shard %d" i) true (Bytes.equal shard data.(i)))
        out

let erase_pattern rng total ~keep slots =
  (* Keep exactly [keep] random shards present. *)
  let idx = Array.init total Fun.id in
  Rng.shuffle rng idx;
  let kept = Array.sub idx 0 keep in
  let present = Array.make total false in
  Array.iter (fun i -> present.(i) <- true) kept;
  Array.mapi (fun i s -> if present.(i) then s else None) slots

let test_rs_reconstruct_under_erasures () =
  let rng = Rng.create 11L in
  List.iter
    (fun (d, p) ->
      let rs = Rs8.create ~data:d ~parity:p in
      let data = random_shards rng ~n:d ~size:64 in
      let parity = Rs8.encode rs data in
      let slots =
        Array.append (Array.map Option.some data) (Array.map Option.some parity)
      in
      for _ = 1 to 10 do
        let erased = erase_pattern rng (d + p) ~keep:d slots in
        match Rs8.reconstruct rs erased with
        | Error e -> Alcotest.fail e
        | Ok out ->
            Array.iteri
              (fun i shard ->
                check_bool
                  (Printf.sprintf "(%d,%d) shard %d" d p i)
                  true (Bytes.equal shard data.(i)))
              out
      done)
    [ (1, 1); (2, 2); (4, 3); (13, 15); (10, 10); (20, 5) ]

let test_rs_paper_case_study () =
  (* Section IV-B: n_total = 28, n_parity = 15, n_data = 13. Any 13 of
     the 28 chunks rebuild the entry. *)
  let rng = Rng.create 12L in
  let rs = Rs8.create ~data:13 ~parity:15 in
  let data = random_shards rng ~n:13 ~size:100 in
  let parity = Rs8.encode rs data in
  let slots =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  for _ = 1 to 20 do
    let erased = erase_pattern rng 28 ~keep:13 slots in
    match Rs8.reconstruct rs erased with
    | Error e -> Alcotest.fail e
    | Ok out ->
        Array.iteri
          (fun i shard -> check_bool "rebuilt" true (Bytes.equal shard data.(i)))
          out
  done

let test_rs_insufficient_shards () =
  let rng = Rng.create 13L in
  let rs = Rs8.create ~data:4 ~parity:2 in
  let data = random_shards rng ~n:4 ~size:32 in
  let parity = Rs8.encode rs data in
  let slots =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  let erased = erase_pattern rng 6 ~keep:3 slots in
  (match Rs8.reconstruct rs erased with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reconstruct should fail with only 3 of 4");
  Alcotest.check_raises "too many shards for gf8"
    (Invalid_argument "Reed_solomon.create: too many shards for the field")
    (fun () -> ignore (Rs8.create ~data:200 ~parity:60))

let test_rs_corrupt_shard_gives_wrong_result () =
  (* The documented hazard of RS: corrupted inputs decode to garbage,
     motivating the Merkle bucket layer above (paper IV-C). *)
  let rng = Rng.create 14L in
  let rs = Rs8.create ~data:4 ~parity:2 in
  let data = random_shards rng ~n:4 ~size:32 in
  let parity = Rs8.encode rs data in
  let corrupted = Bytes.copy parity.(0) in
  Bytes.set corrupted 0
    (Char.chr (Char.code (Bytes.get corrupted 0) lxor 0xff));
  (* Drop data shard 0 and hand in the corrupted parity instead. *)
  let slots =
    [|
      None;
      Some data.(1);
      Some data.(2);
      Some data.(3);
      Some corrupted;
      Some parity.(1);
    |]
  in
  match Rs8.reconstruct rs slots with
  | Error _ -> Alcotest.fail "decode should succeed (but be wrong)"
  | Ok out ->
      check_bool "corrupted input yields wrong shard" false
        (Bytes.equal out.(0) data.(0))

let test_rs_gf16_large_shard_count () =
  (* Beyond GF(2^8): 300 data + 100 parity shards. This is the regime
     that forced the paper off liberasurecode. *)
  let rng = Rng.create 15L in
  let rs = Rs16.create ~data:300 ~parity:100 in
  let data = random_shards rng ~n:300 ~size:16 in
  let parity = Rs16.encode rs data in
  check_int "parity count" 100 (Array.length parity);
  let slots =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  let erased = erase_pattern rng 400 ~keep:300 slots in
  match Rs16.reconstruct rs erased with
  | Error e -> Alcotest.fail e
  | Ok out ->
      let ok = ref true in
      Array.iteri (fun i s -> if not (Bytes.equal s data.(i)) then ok := false) out;
      check_bool "all 300 shards recovered" true !ok

let prop_rs_roundtrip =
  QCheck.Test.make ~name:"rs reconstructs from any data-sized subset" ~count:40
    QCheck.(
      triple (int_range 1 10) (int_range 0 10) (int_range 1 64))
    (fun (d, p, size) ->
      let rng = Rng.create (Int64.of_int ((d * 1000) + (p * 10) + size)) in
      let rs = Rs8.create ~data:d ~parity:p in
      let data = random_shards rng ~n:d ~size in
      let parity = Rs8.encode rs data in
      let slots =
        Array.append (Array.map Option.some data) (Array.map Option.some parity)
      in
      let erased = erase_pattern rng (d + p) ~keep:d slots in
      match Rs8.reconstruct rs erased with
      | Error _ -> false
      | Ok out ->
          Array.for_all2 (fun a b -> Bytes.equal a b) out data)

let prop_cross_field_reconstruct =
  (* For geometries valid in both fields, GF(2^8) and GF(2^16) codecs
     must both rebuild the original data after every data shard is
     dropped and only parity survives — a differential check that the
     split-table gf16 kernels agree with the byte-table gf8 ones at the
     codec level, not just per slice. *)
  QCheck.Test.make ~name:"gf8 and gf16 both rebuild from parity alone" ~count:25
    QCheck.(pair (int_range 1 8) small_int)
    (fun (d, seed) ->
      let p = d in
      let rng = Rng.create (Int64.of_int ((seed * 17) + d)) in
      let data = random_shards rng ~n:d ~size:32 in
      let parity_slots parity =
        Array.append (Array.make d None) (Array.map Option.some parity)
      in
      let ok8 =
        let rs = Rs8.create ~data:d ~parity:p in
        match Rs8.reconstruct rs (parity_slots (Rs8.encode rs data)) with
        | Error _ -> false
        | Ok out -> Array.for_all2 Bytes.equal out data
      in
      let ok16 =
        let rs = Rs16.create ~data:d ~parity:p in
        match Rs16.reconstruct rs (parity_slots (Rs16.encode rs data)) with
        | Error _ -> false
        | Ok out -> Array.for_all2 Bytes.equal out data
      in
      ok8 && ok16)

(* ------------------------------------------------------------------ *)
(* Erasure (entry-level codec)                                         *)
(* ------------------------------------------------------------------ *)

let test_erasure_field_selection () =
  check_bool "small uses gf8" true (Erasure.field_for ~total:255 = Erasure.Gf8);
  check_bool "large uses gf16" true (Erasure.field_for ~total:256 = Erasure.Gf16);
  check_bool "280 chunks (40x7 LCM) uses gf16" true
    (Erasure.field_for ~total:280 = Erasure.Gf16);
  Alcotest.check_raises "too many"
    (Invalid_argument "Erasure.field_for: more than 65535 shards") (fun () ->
      ignore (Erasure.field_for ~total:70000))

let test_erasure_roundtrip_exact () =
  let entry = "the quick brown fox jumps over the lazy dog" in
  let chunks = Erasure.encode ~data:13 ~parity:15 entry in
  check_int "28 chunks" 28 (Array.length chunks);
  let all = Array.to_list (Array.mapi (fun i c -> (i, c)) chunks) in
  (match Erasure.decode ~data:13 ~parity:15 all with
  | Ok e -> Alcotest.(check string) "identity" entry e
  | Error e -> Alcotest.fail e);
  (* Now from a minimal subset: the last 13 chunks only. *)
  let subset = List.filteri (fun i _ -> i >= 15) all in
  match Erasure.decode ~data:13 ~parity:15 subset with
  | Ok e -> Alcotest.(check string) "from any 13" entry e
  | Error e -> Alcotest.fail e

let test_erasure_empty_entry () =
  let chunks = Erasure.encode ~data:3 ~parity:2 "" in
  let all = Array.to_list (Array.mapi (fun i c -> (i, c)) chunks) in
  match Erasure.decode ~data:3 ~parity:2 all with
  | Ok e -> Alcotest.(check string) "empty survives" "" e
  | Error e -> Alcotest.fail e

let test_erasure_duplicate_rejected () =
  let chunks = Erasure.encode ~data:2 ~parity:1 "abc" in
  match
    Erasure.decode ~data:2 ~parity:1 [ (0, chunks.(0)); (0, chunks.(0)) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate index must be rejected"

let test_erasure_chunk_size_uniform () =
  let entry = String.make 1000 'z' in
  let chunks = Erasure.encode ~data:7 ~parity:6 entry in
  let size = String.length chunks.(0) in
  check_int "declared size" size (Erasure.chunk_size ~data:7 ~parity:6 ~entry_len:1000);
  Array.iter (fun c -> check_int "uniform" size (String.length c)) chunks;
  (* Total transferred = 13 * chunk; redundancy factor near 13/7. *)
  check_bool "chunks smaller than entry" true (size < 1000)

let test_erasure_gf16_roundtrip () =
  (* data+parity > 255 forces the GF(2^16) path end-to-end. *)
  let entry = String.init 5000 (fun i -> Char.chr (i mod 251)) in
  let data = 140 and parity = 140 in
  let chunks = Erasure.encode ~data ~parity entry in
  check_int "280 chunks" 280 (Array.length chunks);
  let subset =
    Array.to_list (Array.mapi (fun i c -> (i, c)) chunks)
    |> List.filteri (fun i _ -> i mod 2 = 0)
  in
  check_int "half the chunks" 140 (List.length subset);
  match Erasure.decode ~data ~parity subset with
  | Ok e -> Alcotest.(check string) "gf16 roundtrip" entry e
  | Error e -> Alcotest.fail e

let prop_erasure_corruption_changes_output =
  (* Feeding one flipped chunk either fails decoding or yields a
     different entry — never silently the right one. This is the hazard
     that motivates certificate validation above the codec. *)
  QCheck.Test.make ~name:"corrupted chunk never yields the entry silently" ~count:60
    QCheck.(triple (int_range 2 10) (int_range 1 8) small_printable_string)
    (fun (data, parity, entry) ->
      QCheck.assume (String.length entry > 0);
      let chunks = Erasure.encode ~data ~parity entry in
      (* Corrupt chunk 0 and decode from a set that includes it. *)
      let corrupted =
        String.mapi
          (fun i c -> if i = 0 then Char.chr (Char.code c lxor 0x01) else c)
          chunks.(0)
      in
      let subset =
        (0, corrupted)
        :: List.init (data - 1) (fun k -> (k + 1, chunks.(k + 1)))
      in
      match Erasure.decode ~data ~parity subset with
      | Error _ -> true
      | Ok e -> not (String.equal e entry))

let prop_erasure_roundtrip =
  QCheck.Test.make ~name:"erasure roundtrips any entry from any quorum" ~count:40
    QCheck.(triple string (int_range 1 12) (int_range 0 12))
    (fun (entry, data, parity) ->
      let chunks = Erasure.encode ~data ~parity entry in
      let rng = Rng.create (Int64.of_int (String.length entry + data + parity)) in
      let idx = Array.init (data + parity) Fun.id in
      Rng.shuffle rng idx;
      let subset =
        Array.to_list (Array.sub idx 0 data)
        |> List.map (fun i -> (i, chunks.(i)))
      in
      match Erasure.decode ~data ~parity subset with
      | Ok e -> String.equal e entry
      | Error _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "massbft_codec"
    [
      ( "fields",
        [
          Alcotest.test_case "gf256 laws" `Quick test_gf256_laws;
          Alcotest.test_case "gf65536 laws" `Quick test_gf65536_laws;
          Alcotest.test_case "gf256 exhaustive inverses" `Quick test_gf256_exhaustive_inverse;
          Alcotest.test_case "division by zero" `Quick test_gf_zero_division;
          Alcotest.test_case "generator order" `Quick test_gf256_generator_order;
          Alcotest.test_case "log/exp inverse" `Quick test_gf_log_exp_inverse;
          Alcotest.test_case "exp of negative exponents" `Quick test_exp_negative_exponents;
          Alcotest.test_case "out-of-field coefficients rejected" `Quick test_slice_coefficient_validation;
          Alcotest.test_case "c=0 / c=1 fast paths" `Quick test_slice_fast_paths;
          Alcotest.test_case "odd gf16 lengths rejected" `Quick test_gf16_odd_length_rejected;
          Alcotest.test_case "aliased src=dst slices" `Quick test_mul_slice_aliasing;
          Alcotest.test_case "mul_slice scalar-equivalence" `Quick test_mul_slice_matches_scalar;
          Alcotest.test_case "gf16 mul_slice_set" `Quick test_mul_slice_set_gf16_matches_scalar;
          qt prop_gf16_mul_slice_matches_scalar;
          qt prop_gf16_mul_slice_set_matches_scalar;
          qt prop_gf8_mul_slice_matches_scalar;
          qt prop_gf16_mul_row_matches_scalar;
          qt prop_gf8_mul_row_matches_scalar;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity_mul;
          Alcotest.test_case "inverse" `Quick test_matrix_inverse;
          Alcotest.test_case "singular detection" `Quick test_matrix_singular;
          Alcotest.test_case "vandermonde rows independent" `Quick test_vandermonde_submatrix_invertible;
          Alcotest.test_case "bounds and errors" `Quick test_matrix_bounds;
        ] );
      ( "reed_solomon",
        [
          Alcotest.test_case "systematic layout" `Quick test_rs_systematic;
          Alcotest.test_case "roundtrip, no loss" `Quick test_rs_roundtrip_no_loss;
          Alcotest.test_case "roundtrip under erasures" `Quick test_rs_reconstruct_under_erasures;
          Alcotest.test_case "paper IV-B case study (13+15)" `Quick test_rs_paper_case_study;
          Alcotest.test_case "insufficient shards" `Quick test_rs_insufficient_shards;
          Alcotest.test_case "corruption yields wrong data" `Quick test_rs_corrupt_shard_gives_wrong_result;
          Alcotest.test_case "gf16 at 400 shards" `Slow test_rs_gf16_large_shard_count;
          qt prop_rs_roundtrip;
          qt prop_cross_field_reconstruct;
        ] );
      ( "erasure",
        [
          Alcotest.test_case "field selection" `Quick test_erasure_field_selection;
          Alcotest.test_case "roundtrip exact" `Quick test_erasure_roundtrip_exact;
          Alcotest.test_case "empty entry" `Quick test_erasure_empty_entry;
          Alcotest.test_case "duplicate index rejected" `Quick test_erasure_duplicate_rejected;
          Alcotest.test_case "uniform chunk size" `Quick test_erasure_chunk_size_uniform;
          Alcotest.test_case "gf16 roundtrip (280 chunks)" `Slow test_erasure_gf16_roundtrip;
          qt prop_erasure_roundtrip;
          qt prop_erasure_corruption_changes_output;
        ] );
    ]
