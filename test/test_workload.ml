(* Tests for the workload generators: determinism, mixes, wire sizes,
   key-space bounds, and the semantic content of the transaction
   bodies (exercised against a scratch store). *)

open Massbft_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Minimal executor for a single txn body: reads/writes go straight to a
   hash table; logic aborts discard writes. *)
let run_body store (txn : Txn.t) =
  let buf = Hashtbl.create 8 in
  let reads = ref [] and aborted = ref false in
  let ctx =
    {
      Txn.read =
        (fun k ->
          reads := k :: !reads;
          match Hashtbl.find_opt buf k with
          | Some v -> Some v
          | None -> Hashtbl.find_opt store k);
      write = (fun k v -> Hashtbl.replace buf k v);
      abort = (fun () -> raise Txn.Logic_abort);
    }
  in
  (try txn.Txn.body ctx with Txn.Logic_abort -> aborted := true);
  if not !aborted then Hashtbl.iter (fun k v -> Hashtbl.replace store k v) buf;
  (List.rev !reads, buf, !aborted)

(* ------------------------------------------------------------------ *)
(* Generic generator properties                                        *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  List.iter
    (fun kind ->
      let a = Workload.create ~scale:0.001 kind ~seed:9L in
      let b = Workload.create ~scale:0.001 kind ~seed:9L in
      for _ = 1 to 50 do
        let ta = Workload.next a and tb = Workload.next b in
        Alcotest.(check string)
          (Workload.kind_name kind ^ " labels equal")
          ta.Txn.label tb.Txn.label;
        check_int "ids equal" ta.Txn.id tb.Txn.id;
        check_int "sizes equal" ta.Txn.wire_size tb.Txn.wire_size
      done)
    Workload.all_kinds

let test_ids_unique_and_increasing () =
  let w = Workload.create ~scale:0.01 Workload.Smallbank ~seed:3L in
  for i = 0 to 99 do
    check_int "sequential ids" i (Workload.next w).Txn.id
  done

let test_avg_wire_sizes_match_paper () =
  check_int "YCSB-A 201B" 201 (Workload.avg_wire_size Workload.Ycsb_a);
  check_int "YCSB-B 150B" 150 (Workload.avg_wire_size Workload.Ycsb_b);
  check_int "SmallBank 108B" 108 (Workload.avg_wire_size Workload.Smallbank);
  check_int "TPC-C 232B" 232 (Workload.avg_wire_size Workload.Tpcc)

let test_generated_sizes_track_averages () =
  (* Empirical average wire size of generated YCSB-A txns should be near
     the declared 201 B (50 % at 100 B reads, 50 % at 200 B updates). *)
  let w = Workload.create ~scale:0.001 Workload.Ycsb_a ~seed:4L in
  let n = 4000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + (Workload.next w).Txn.wire_size
  done;
  let avg = float_of_int !total /. float_of_int n in
  check_bool (Printf.sprintf "avg %.1f close to 150..200" avg) true
    (avg > 140.0 && avg < 170.0)

(* ------------------------------------------------------------------ *)
(* YCSB                                                                *)
(* ------------------------------------------------------------------ *)

let test_ycsb_mix_fractions () =
  let count_writes kind n =
    let w = Workload.create ~scale:0.001 kind ~seed:5L in
    let writes = ref 0 in
    for _ = 1 to n do
      if (Workload.next w).Txn.label = "ycsb.update" then incr writes
    done;
    !writes
  in
  let wa = count_writes Workload.Ycsb_a 2000 in
  check_bool (Printf.sprintf "YCSB-A ~50%% writes (%d/2000)" wa) true
    (wa > 850 && wa < 1150);
  let wb = count_writes Workload.Ycsb_b 2000 in
  check_bool (Printf.sprintf "YCSB-B ~5%% writes (%d/2000)" wb) true
    (wb > 40 && wb < 180)

let test_ycsb_zipf_hotspot () =
  (* With theta 0.99 the most popular row must dominate; track write
     keys. *)
  let w = Workload.create ~scale:0.001 Workload.Ycsb_a ~seed:6L in
  let store = Hashtbl.create 64 in
  let key_counts = Hashtbl.create 64 in
  for _ = 1 to 3000 do
    let t = Workload.next w in
    let reads, writes, _ = run_body store t in
    List.iter
      (fun k ->
        Hashtbl.replace key_counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt key_counts k)))
      reads;
    Hashtbl.iter
      (fun k _ ->
        Hashtbl.replace key_counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt key_counts k)))
      writes
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) key_counts 0 in
  check_bool
    (Printf.sprintf "hottest key touched often (%d)" max_count)
    true (max_count > 20)

let test_ycsb_update_writes_100b () =
  let w = Workload.create ~scale:0.001 Workload.Ycsb_a ~seed:7L in
  let store = Hashtbl.create 16 in
  let rec find_update () =
    let t = Workload.next w in
    if t.Txn.label = "ycsb.update" then t else find_update ()
  in
  let t = find_update () in
  let _, writes, _ = run_body store t in
  check_int "one write" 1 (Hashtbl.length writes);
  Hashtbl.iter
    (fun _ v -> check_int "100-byte value" 100 (String.length v))
    writes

(* ------------------------------------------------------------------ *)
(* SmallBank                                                           *)
(* ------------------------------------------------------------------ *)

let test_smallbank_conservation () =
  (* Total money is conserved by transfers (deposits add, writechecks
     subtract; run only sendpayment/amalgamate/balance by filtering). *)
  let sb = Smallbank.create { Smallbank.default with Smallbank.accounts = 10 } ~seed:8L in
  let store = Hashtbl.create 64 in
  (* Preload all 10 accounts with 1000 in each row. *)
  for a = 0 to 9 do
    Hashtbl.replace store (Smallbank.checking_key a) "1000";
    Hashtbl.replace store (Smallbank.savings_key a) "1000"
  done;
  let total () =
    Hashtbl.fold (fun _ v acc -> acc + Txn.int_value v) store 0
  in
  let before = total () in
  let moved = ref 0 in
  for _ = 1 to 500 do
    let t = Smallbank.next sb in
    match t.Txn.label with
    | "sb.sendpayment" | "sb.amalgamate" | "sb.balance" ->
        ignore (run_body store t);
        incr moved
    | _ -> ()
  done;
  check_bool "exercised transfers" true (!moved > 50);
  check_int "money conserved" before (total ())

let test_smallbank_overdraft_aborts () =
  (* SendPayment from an empty account must logic-abort, leaving state
     untouched. *)
  let sb = Smallbank.create { Smallbank.default with Smallbank.accounts = 2 } ~seed:9L in
  let store = Hashtbl.create 8 in
  Hashtbl.replace store (Smallbank.checking_key 0) "0";
  Hashtbl.replace store (Smallbank.checking_key 1) "0";
  let aborts = ref 0 and runs = ref 0 in
  for _ = 1 to 400 do
    let t = Smallbank.next sb in
    if t.Txn.label = "sb.sendpayment" then begin
      incr runs;
      let _, _, aborted = run_body store t in
      if aborted then incr aborts
    end
  done;
  check_bool "saw sendpayments" true (!runs > 20);
  check_int "all overdrafts aborted" !runs !aborts

let test_smallbank_deposit_effect () =
  let sb = Smallbank.create { Smallbank.default with Smallbank.accounts = 2 } ~seed:10L in
  let store = Hashtbl.create 8 in
  let rec find_deposit () =
    let t = Smallbank.next sb in
    if t.Txn.label = "sb.deposit" then t else find_deposit ()
  in
  let t = find_deposit () in
  ignore (run_body store t);
  let sum =
    Txn.int_value (Option.value ~default:"0" (Hashtbl.find_opt store (Smallbank.checking_key 0)))
    + Txn.int_value (Option.value ~default:"0" (Hashtbl.find_opt store (Smallbank.checking_key 1)))
  in
  check_bool "deposit credited some account" true (sum > 0)

let test_smallbank_preload () =
  let init = Smallbank.preload Smallbank.default in
  check_bool "checking row initialized" true
    (init (Smallbank.checking_key 42) = Some "10000");
  check_bool "savings row initialized" true
    (init (Smallbank.savings_key 0) = Some "10000");
  check_bool "foreign key untouched" true (init "ycsb/u1/f1" = None)

(* ------------------------------------------------------------------ *)
(* TPC-C                                                               *)
(* ------------------------------------------------------------------ *)

let small_tpcc =
  {
    Tpcc.default with
    Tpcc.warehouses = 4;
    customers_per_district = 30;
    items = 100;
  }

let preloaded_store () =
  let store = Hashtbl.create 256 in
  (store, fun k ->
    match Hashtbl.find_opt store k with
    | Some v -> Some v
    | None -> Tpcc.preload small_tpcc k)

let run_tpcc store_pair t =
  let store, lookup = store_pair in
  let buf = Hashtbl.create 8 in
  let aborted = ref false in
  let ctx =
    {
      Txn.read =
        (fun k ->
          match Hashtbl.find_opt buf k with Some v -> Some v | None -> lookup k);
      write = (fun k v -> Hashtbl.replace buf k v);
      abort = (fun () -> raise Txn.Logic_abort);
    }
  in
  (try t.Txn.body ctx with Txn.Logic_abort -> aborted := true);
  if not !aborted then Hashtbl.iter (fun k v -> Hashtbl.replace store k v) buf;
  !aborted

let test_tpcc_neworder_advances_oid () =
  let g = Tpcc.create small_tpcc ~seed:11L in
  let sp = preloaded_store () in
  let store, lookup = sp in
  ignore store;
  (* Run 40 NewOrders; the sum of district next_oids must have advanced
     by the number of *committed* orders. *)
  let committed = ref 0 in
  for _ = 1 to 40 do
    let t = Tpcc.next_of g `New_order in
    if not (run_tpcc sp t) then incr committed
  done;
  let advanced = ref 0 in
  for w = 1 to small_tpcc.Tpcc.warehouses do
    for d = 1 to small_tpcc.Tpcc.districts_per_warehouse do
      let v = Txn.int_value (Option.get (lookup (Tpcc.district_next_oid_key ~w ~d))) in
      advanced := !advanced + (v - 1)
    done
  done;
  check_int "next_oid advanced once per committed order" !committed !advanced

let test_tpcc_payment_updates_ytd () =
  let g = Tpcc.create small_tpcc ~seed:12L in
  let sp = preloaded_store () in
  let _, lookup = sp in
  for _ = 1 to 30 do
    ignore (run_tpcc sp (Tpcc.next_of g `Payment))
  done;
  let total_ytd = ref 0 in
  for w = 1 to small_tpcc.Tpcc.warehouses do
    total_ytd :=
      !total_ytd + Txn.int_value (Option.get (lookup (Tpcc.warehouse_ytd_key w)))
  done;
  check_bool "warehouse YTD accumulated" true (!total_ytd > 0)

let test_tpcc_mix_is_half_half () =
  let g = Tpcc.create small_tpcc ~seed:13L in
  let no = ref 0 and pay = ref 0 in
  for _ = 1 to 100 do
    match (Tpcc.next g).Txn.label with
    | "tpcc.neworder" -> incr no
    | "tpcc.payment" -> incr pay
    | other -> Alcotest.failf "unexpected label %s" other
  done;
  check_int "exact 50/50" 50 !no;
  check_int "exact 50/50" 50 !pay

let test_tpcc_rollback_rate () =
  (* ~1% of NewOrders roll back by spec. *)
  let g =
    Tpcc.create { small_tpcc with Tpcc.invalid_item_pct = 20 } ~seed:14L
  in
  let sp = preloaded_store () in
  let aborts = ref 0 in
  for _ = 1 to 300 do
    if run_tpcc sp (Tpcc.next_of g `New_order) then incr aborts
  done;
  check_bool
    (Printf.sprintf "rollbacks near 20%% (%d/300)" !aborts)
    true
    (!aborts > 30 && !aborts < 90)

let test_tpcc_preload_defaults () =
  let init k = Tpcc.preload Tpcc.default k in
  check_bool "district oid starts at 1" true
    (init (Tpcc.district_next_oid_key ~w:1 ~d:1) = Some "1");
  check_bool "stock starts at 100" true
    (init (Tpcc.stock_qty_key ~w:1 ~i:5) = Some "100");
  check_bool "warehouse ytd starts at 0" true
    (init (Tpcc.warehouse_ytd_key 1) = Some "0");
  check_bool "non-tpcc key absent" true (init "sb/c/1" = None)

let () =
  Alcotest.run "massbft_workload"
    [
      ( "generic",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "sequential ids" `Quick test_ids_unique_and_increasing;
          Alcotest.test_case "paper wire sizes" `Quick test_avg_wire_sizes_match_paper;
          Alcotest.test_case "generated sizes sane" `Quick test_generated_sizes_track_averages;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "mix fractions" `Quick test_ycsb_mix_fractions;
          Alcotest.test_case "zipf hotspot" `Quick test_ycsb_zipf_hotspot;
          Alcotest.test_case "update payload" `Quick test_ycsb_update_writes_100b;
        ] );
      ( "smallbank",
        [
          Alcotest.test_case "money conservation" `Quick test_smallbank_conservation;
          Alcotest.test_case "overdraft aborts" `Quick test_smallbank_overdraft_aborts;
          Alcotest.test_case "deposit effect" `Quick test_smallbank_deposit_effect;
          Alcotest.test_case "preload" `Quick test_smallbank_preload;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "neworder advances oid" `Quick test_tpcc_neworder_advances_oid;
          Alcotest.test_case "payment updates ytd" `Quick test_tpcc_payment_updates_ytd;
          Alcotest.test_case "50/50 mix" `Quick test_tpcc_mix_is_half_half;
          Alcotest.test_case "rollback rate" `Quick test_tpcc_rollback_rate;
          Alcotest.test_case "preload defaults" `Quick test_tpcc_preload_defaults;
        ] );
    ]
