(* The golden determinism fixture: a fixed seed-0 run of every
   Config.system on a small nationwide cluster, fingerprinted. The
   recorded files (test/golden/*.golden) were captured against the
   pre-refactor engine; test_engine.ml replays the same runs and
   asserts byte-identical fingerprints, so any behaviour change in the
   engine — message counts, scheduling order, execution order, store
   contents — fails the differential test. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Types = Massbft.Types
module Stats = Massbft_util.Stats
module Clusters = Massbft_harness.Clusters

type t = {
  system : Config.system;
  committed : int;
  entries : int;
  wan : int;
  lan : int;
  store : string;
  executed : (int * int) list array;  (* per group: (gid, seq) order *)
}

(* Fixed capture parameters: 3 groups x 4 nodes, small batches, seed 0,
   6 simulated seconds. Changing any of these invalidates the recorded
   fixtures — re-run `dune exec test/golden_record.exe`. *)
let groups = 3
let until = 6.0

let cfg_of system =
  {
    (Config.default ~system ()) with
    Config.max_batch = 40;
    pipeline = 4;
    workload_scale = 0.001;
    seed = 0L;
  }

(* [attach] runs between Engine.start and the clock moving — the seam
   no-op tests use to hang an (empty) adversary or injector on the run
   and assert the fingerprint still matches the recorded golden. *)
let capture ?attach ~system () =
  (* One shard per group, like the runner: the fixtures exercise the
     sharded sequential merge driver, whose dispatch order is provably
     identical to the historical single-heap scheduler. *)
  let spec = Clusters.nationwide ~groups ~nodes_per_group:4 () in
  let sim =
    Sim.create ~shards:groups ~lookahead:(Topology.min_wan_one_way spec) ()
  in
  let topo = Topology.create sim spec in
  let eng = Engine.create sim topo (cfg_of system) in
  Engine.start eng;
  (match attach with Some f -> f eng sim topo | None -> ());
  Sim.run sim ~until;
  {
    system;
    committed =
      Stats.Counter.get (Engine.metrics eng).Metrics.committed_txns;
    entries = Engine.entries_executed_total eng;
    wan = Engine.wan_bytes eng;
    lan = Engine.lan_bytes eng;
    store = Massbft_util.Hexdump.encode (Engine.store_fingerprint eng);
    executed =
      Array.init groups (fun g ->
          List.map
            (fun (e : Types.entry_id) -> (e.Types.gid, e.Types.seq))
            (Engine.executed_ids eng ~gid:g));
  }

let file_of_system system =
  String.lowercase_ascii (Config.system_name system) ^ ".golden"

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "system %s\n" (Config.system_name g.system));
  Buffer.add_string buf (Printf.sprintf "committed %d\n" g.committed);
  Buffer.add_string buf (Printf.sprintf "entries %d\n" g.entries);
  Buffer.add_string buf (Printf.sprintf "wan %d\n" g.wan);
  Buffer.add_string buf (Printf.sprintf "lan %d\n" g.lan);
  Buffer.add_string buf (Printf.sprintf "store %s\n" g.store);
  Array.iteri
    (fun gid ids ->
      Buffer.add_string buf (Printf.sprintf "executed%d" gid);
      List.iter
        (fun (g, s) -> Buffer.add_string buf (Printf.sprintf " %d:%d" g s))
        ids;
      Buffer.add_char buf '\n')
    g.executed;
  Buffer.contents buf

let of_string text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let field prefix =
    match
      List.find_opt
        (fun l -> String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix + 1) = prefix ^ " ")
        lines
    with
    | Some l ->
        String.sub l
          (String.length prefix + 1)
          (String.length l - String.length prefix - 1)
    | None -> invalid_arg ("golden fixture: missing field " ^ prefix)
  in
  let ids_of s =
    if s = "" then []
    else
      List.map
        (fun pair ->
          match String.split_on_char ':' pair with
          | [ g; q ] -> (int_of_string g, int_of_string q)
          | _ -> invalid_arg "golden fixture: bad entry id")
        (String.split_on_char ' ' (String.trim s))
  in
  let system =
    let name = field "system" in
    match
      List.find_opt (fun s -> Config.system_name s = name) Config.all_systems
    with
    | Some s -> s
    | None -> invalid_arg ("golden fixture: unknown system " ^ name)
  in
  {
    system;
    committed = int_of_string (field "committed");
    entries = int_of_string (field "entries");
    wan = int_of_string (field "wan");
    lan = int_of_string (field "lan");
    store = field "store";
    executed =
      Array.init groups (fun g -> ids_of (field (Printf.sprintf "executed%d" g)));
  }

let load file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
