(* Tests for the execution substrate: the lazy KV store, Aria
   deterministic concurrency control (conflict rules, determinism,
   reordering), and the hash-chained ledger. *)

module Kvstore = Massbft_exec.Kvstore
module Aria = Massbft_exec.Aria
module Ledger = Massbft_exec.Ledger
module Txn = Massbft_workload.Txn
module Workload = Massbft_workload.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Txn builders for precise conflict scenarios. *)
let mk_id = ref 0

let mk ?(label = "t") body =
  incr mk_id;
  Txn.make ~id:!mk_id ~label ~wire_size:100 body

let write_txn k v = mk (fun ctx -> ctx.Txn.write k v)
let read_txn k = mk (fun ctx -> ignore (ctx.Txn.read k))

let rmw_txn k delta =
  mk (fun ctx ->
      let v = Txn.int_value (Option.value ~default:"0" (ctx.Txn.read k)) in
      ctx.Txn.write k (Txn.of_int (v + delta)))

(* ------------------------------------------------------------------ *)
(* Kvstore                                                             *)
(* ------------------------------------------------------------------ *)

let test_store_basics () =
  let s = Kvstore.create () in
  check_bool "absent" true (Kvstore.get s "a" = None);
  Kvstore.put s "a" "1";
  check_bool "present" true (Kvstore.get s "a" = Some "1");
  Kvstore.put s "a" "2";
  check_bool "overwrite" true (Kvstore.get s "a" = Some "2");
  check_int "size" 1 (Kvstore.size s)

let test_store_lazy_init () =
  let s = Kvstore.create ~init:(fun k -> if k = "cold" then Some "42" else None) () in
  check_bool "cold row faulted in" true (Kvstore.get s "cold" = Some "42");
  check_bool "unknown still absent" true (Kvstore.get s "other" = None);
  check_int "only cold materialized" 1 (Kvstore.size s);
  Kvstore.put s "cold" "43";
  check_bool "write wins over init" true (Kvstore.get s "cold" = Some "43")

let test_store_fingerprint () =
  let a = Kvstore.create () and b = Kvstore.create () in
  Kvstore.put a "x" "1";
  Kvstore.put a "y" "2";
  (* Same contents, different insertion order. *)
  Kvstore.put b "y" "2";
  Kvstore.put b "x" "1";
  Alcotest.(check string)
    "order-insensitive" (Kvstore.fingerprint a) (Kvstore.fingerprint b);
  Kvstore.put b "x" "999";
  check_bool "content-sensitive" false
    (String.equal (Kvstore.fingerprint a) (Kvstore.fingerprint b))

(* ------------------------------------------------------------------ *)
(* Aria                                                                *)
(* ------------------------------------------------------------------ *)

let test_aria_no_conflicts_all_commit () =
  let s = Kvstore.create () in
  let batch = [ write_txn "a" "1"; write_txn "b" "2"; read_txn "c" ] in
  let o = Aria.execute_batch s batch in
  check_int "all commit" 3 (List.length o.Aria.committed);
  check_int "none conflicted" 0 (List.length o.Aria.conflicted);
  check_bool "writes applied" true (Kvstore.get s "a" = Some "1");
  check_bool "writes applied" true (Kvstore.get s "b" = Some "2")

let test_aria_waw_first_writer_wins () =
  let s = Kvstore.create () in
  let t1 = write_txn "k" "first" and t2 = write_txn "k" "second" in
  let o = Aria.execute_batch s [ t1; t2 ] in
  check_int "one commits" 1 (List.length o.Aria.committed);
  check_int "one conflicted" 1 (List.length o.Aria.conflicted);
  check_bool "first writer won" true (Kvstore.get s "k" = Some "first");
  check_bool "loser is t2" true
    ((List.hd o.Aria.conflicted).Txn.id = t2.Txn.id)

let test_aria_snapshot_reads () =
  (* Reads observe the pre-batch snapshot, not in-batch writes of other
     txns. *)
  let s = Kvstore.create () in
  Kvstore.put s "k" "old";
  let seen = ref None in
  let t1 = write_txn "k" "new" in
  let t2 = mk (fun ctx -> seen := ctx.Txn.read "k") in
  (* t2 is ordered after t1 but with reordering commits as a
     before-writer read. *)
  let o = Aria.execute_batch ~reorder:true s [ t1; t2 ] in
  check_int "both commit under reordering" 2 (List.length o.Aria.committed);
  check_bool "t2 saw the snapshot value" true (!seen = Some "old");
  check_bool "store has the new value" true (Kvstore.get s "k" = Some "new")

let test_aria_standard_rule_aborts_raw () =
  let s = Kvstore.create () in
  Kvstore.put s "k" "old";
  let t1 = write_txn "k" "new" in
  let t2 = read_txn "k" in
  let o = Aria.execute_batch ~reorder:false s [ t1; t2 ] in
  check_int "reader aborted without reordering" 1
    (List.length o.Aria.conflicted);
  check_bool "aborted one is the reader" true
    ((List.hd o.Aria.conflicted).Txn.id = t2.Txn.id)

let test_aria_reordering_saves_raw_only () =
  (* raw-only (read vs earlier write) commits under reordering; but a
     txn with both raw and war still aborts. *)
  let s = Kvstore.create () in
  Kvstore.put s "x" "0";
  Kvstore.put s "y" "0";
  let t1 = mk (fun ctx ->
      ignore (ctx.Txn.read "y");
      ctx.Txn.write "x" "1")
  in
  let t2 = mk (fun ctx ->
      ignore (ctx.Txn.read "x");
      ctx.Txn.write "y" "2")
  in
  (* t2: raw on x (t1 writes x earlier), war on y (t1 reads y). Cannot be
     serialized either way: abort. *)
  let o = Aria.execute_batch ~reorder:true s [ t1; t2 ] in
  check_int "cycle aborts t2" 1 (List.length o.Aria.conflicted);
  check_bool "t2 is the victim" true
    ((List.hd o.Aria.conflicted).Txn.id = t2.Txn.id)

let test_aria_rmw_contention () =
  (* Ten counter increments on one key in a single batch: exactly one
     commits (the rest are WAW/RAW conflicts) — the Aria behaviour that
     produces TPC-C hotspot aborts. *)
  let s = Kvstore.create () in
  let batch = List.init 10 (fun _ -> rmw_txn "counter" 1) in
  let o = Aria.execute_batch s batch in
  check_int "one increment commits" 1 (List.length o.Aria.committed);
  check_int "nine retry" 9 (List.length o.Aria.conflicted);
  check_bool "counter = 1" true (Kvstore.get s "counter" = Some "1");
  (* Retrying the conflicted batch drains one more per round. *)
  let o2 = Aria.execute_batch s o.Aria.conflicted in
  check_int "second round commits one more" 1 (List.length o2.Aria.committed);
  check_bool "counter = 2" true (Kvstore.get s "counter" = Some "2")

let test_aria_logic_abort_discards_writes () =
  let s = Kvstore.create () in
  let t = mk (fun ctx ->
      ctx.Txn.write "k" "poison";
      ctx.Txn.abort ())
  in
  let o = Aria.execute_batch s [ t ] in
  check_int "logic aborted" 1 (List.length o.Aria.logic_aborted);
  check_int "not conflicted" 0 (List.length o.Aria.conflicted);
  check_bool "write discarded" true (Kvstore.get s "k" = None)

let test_aria_logic_abort_holds_no_reservation () =
  let s = Kvstore.create () in
  let t1 = mk (fun ctx ->
      ctx.Txn.write "k" "poison";
      ctx.Txn.abort ())
  in
  let t2 = write_txn "k" "good" in
  let o = Aria.execute_batch s [ t1; t2 ] in
  check_int "t2 commits despite t1's write" 1 (List.length o.Aria.committed);
  check_bool "good value stored" true (Kvstore.get s "k" = Some "good")

let test_aria_determinism () =
  (* Same batch against same state on two stores -> identical outcomes
     and states. *)
  let mk_store () =
    let s = Kvstore.create () in
    Kvstore.put s "a" "5";
    s
  in
  let mk_batch () =
    [ rmw_txn "a" 1; rmw_txn "a" 10; write_txn "b" "x"; read_txn "a" ]
  in
  let s1 = mk_store () and s2 = mk_store () in
  let o1 = Aria.execute_batch s1 (mk_batch ()) in
  let o2 = Aria.execute_batch s2 (mk_batch ()) in
  check_int "same commits"
    (List.length o1.Aria.committed)
    (List.length o2.Aria.committed);
  Alcotest.(check string)
    "same final state" (Kvstore.fingerprint s1) (Kvstore.fingerprint s2)

let test_aria_commit_rate () =
  let s = Kvstore.create () in
  let o = Aria.execute_batch s (List.init 4 (fun _ -> rmw_txn "k" 1)) in
  Alcotest.(check (float 1e-9)) "rate 0.25" 0.25 (Aria.commit_rate o);
  let o_empty = Aria.execute_batch s [] in
  Alcotest.(check (float 1e-9)) "empty rate 1.0" 1.0 (Aria.commit_rate o_empty)

let test_aria_smallbank_convergence () =
  (* End-to-end: two replicas executing the same entry stream of real
     SmallBank txns converge to identical stores. *)
  let scale = 0.0001 in
  let run () =
    let store =
      Kvstore.create ~init:(Workload.preload ~scale Workload.Smallbank) ()
    in
    let w = Workload.create ~scale Workload.Smallbank ~seed:77L in
    let pending = ref [] in
    for _ = 1 to 20 do
      let batch = !pending @ List.init 50 (fun _ -> Workload.next w) in
      let o = Aria.execute_batch store batch in
      pending := o.Aria.conflicted
    done;
    Kvstore.fingerprint store
  in
  Alcotest.(check string) "replicas converge" (run ()) (run ())

let test_aria_tpcc_hotspot_aborts () =
  (* A one-warehouse TPC-C batch is Payment-heavy on a single YTD row:
     the conflict rate must be visibly non-zero. *)
  let cfg = { Massbft_workload.Tpcc.default with Massbft_workload.Tpcc.warehouses = 1 } in
  let g = Massbft_workload.Tpcc.create cfg ~seed:15L in
  let store =
    Kvstore.create ~init:(Massbft_workload.Tpcc.preload cfg) ()
  in
  let batch = List.init 60 (fun _ -> Massbft_workload.Tpcc.next g) in
  let o = Aria.execute_batch store batch in
  check_bool
    (Printf.sprintf "hotspot causes conflicts (%d)" (List.length o.Aria.conflicted))
    true
    (List.length o.Aria.conflicted > 10)

let prop_aria_deterministic_partition =
  QCheck.Test.make ~name:"every txn lands in exactly one outcome bucket" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_range 0 5) (int_range 0 3)))
    (fun spec ->
      let s = Kvstore.create () in
      let batch =
        List.mapi
          (fun i (key, kind) ->
            let k = "k" ^ string_of_int key in
            match kind with
            | 0 -> Txn.make ~id:i ~label:"w" ~wire_size:1 (fun ctx -> ctx.Txn.write k "v")
            | 1 -> Txn.make ~id:i ~label:"r" ~wire_size:1 (fun ctx -> ignore (ctx.Txn.read k))
            | 2 ->
                Txn.make ~id:i ~label:"rmw" ~wire_size:1 (fun ctx ->
                    let v = Txn.int_value (Option.value ~default:"0" (ctx.Txn.read k)) in
                    ctx.Txn.write k (Txn.of_int (v + 1)))
            | _ -> Txn.make ~id:i ~label:"a" ~wire_size:1 (fun ctx -> ctx.Txn.abort ()))
          spec
      in
      let o = Aria.execute_batch s batch in
      List.length o.Aria.committed
      + List.length o.Aria.conflicted
      + List.length o.Aria.logic_aborted
      = List.length batch)

(* ------------------------------------------------------------------ *)
(* Aria fallback lane                                                  *)
(* ------------------------------------------------------------------ *)

let test_fallback_always_commits () =
  (* Ten hot-key increments through the fallback lane all commit in one
     round (unlike the parallel lane, where only one would). *)
  let s = Kvstore.create () in
  let batch = List.init 10 (fun _ -> rmw_txn "hot" 1) in
  let o = Aria.execute_batch ~fallback:batch s [] in
  check_int "all ten commit" 10 (List.length o.Aria.committed);
  check_int "none conflicted" 0 (List.length o.Aria.conflicted);
  check_bool "serial visibility: counter = 10" true
    (Kvstore.get s "hot" = Some "10")

let test_fallback_sees_parallel_writes () =
  (* The fallback lane runs after the parallel lane and observes its
     committed writes. *)
  let s = Kvstore.create () in
  let parallel = [ write_txn "k" "5" ] in
  let fb = [ rmw_txn "k" 1 ] in
  let o = Aria.execute_batch ~fallback:fb s parallel in
  check_int "both commit" 2 (List.length o.Aria.committed);
  check_bool "fallback read the parallel write" true
    (Kvstore.get s "k" = Some "6")

let test_fallback_logic_abort_final () =
  let s = Kvstore.create () in
  let fb = [ mk (fun ctx -> ctx.Txn.write "k" "x"; ctx.Txn.abort ()) ] in
  let o = Aria.execute_batch ~fallback:fb s [] in
  check_int "logic abort recorded" 1 (List.length o.Aria.logic_aborted);
  check_bool "write discarded" true (Kvstore.get s "k" = None)

let test_fallback_deterministic_order () =
  (* Fallback effects depend only on list order. *)
  let run () =
    let s = Kvstore.create () in
    let fb = [ write_txn "k" "first"; write_txn "k" "second" ] in
    ignore (Aria.execute_batch ~fallback:fb s []);
    Kvstore.get s "k"
  in
  check_bool "last writer wins, deterministically" true
    (run () = Some "second" && run () = Some "second")

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let test_ledger_chain () =
  let l = Ledger.create () in
  check_int "empty" 0 (Ledger.height l);
  Alcotest.(check string) "genesis head" Ledger.genesis_hash (Ledger.head_hash l);
  let b1 = Ledger.append l ~gid:0 ~seq:1 ~txn_count:10 ~payload_digest:"d1" in
  let b2 = Ledger.append l ~gid:1 ~seq:1 ~txn_count:20 ~payload_digest:"d2" in
  check_int "height" 2 (Ledger.height l);
  Alcotest.(check string) "linked" b1.Ledger.block_hash b2.Ledger.prev_hash;
  Alcotest.(check string) "head" b2.Ledger.block_hash (Ledger.head_hash l);
  check_bool "verifies" true (Ledger.verify l)

let test_ledger_equal_prefix () =
  let build upto =
    let l = Ledger.create () in
    for i = 1 to upto do
      ignore (Ledger.append l ~gid:0 ~seq:i ~txn_count:1 ~payload_digest:"d")
    done;
    l
  in
  let a = build 5 and b = build 3 in
  check_int "prefix of 3" 3 (Ledger.equal_prefix a b);
  let c = Ledger.create () in
  ignore (Ledger.append c ~gid:9 ~seq:1 ~txn_count:1 ~payload_digest:"other");
  check_int "divergent chains share nothing" 0 (Ledger.equal_prefix a c)

let test_ledger_determinism () =
  let build () =
    let l = Ledger.create () in
    ignore (Ledger.append l ~gid:0 ~seq:1 ~txn_count:5 ~payload_digest:"p");
    ignore (Ledger.append l ~gid:1 ~seq:1 ~txn_count:7 ~payload_digest:"q");
    Ledger.head_hash l
  in
  Alcotest.(check string) "same blocks, same head" (build ()) (build ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "massbft_exec"
    [
      ( "kvstore",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "lazy init" `Quick test_store_lazy_init;
          Alcotest.test_case "fingerprint" `Quick test_store_fingerprint;
        ] );
      ( "aria",
        [
          Alcotest.test_case "no conflicts" `Quick test_aria_no_conflicts_all_commit;
          Alcotest.test_case "WAW first writer wins" `Quick test_aria_waw_first_writer_wins;
          Alcotest.test_case "snapshot reads" `Quick test_aria_snapshot_reads;
          Alcotest.test_case "standard rule aborts RAW" `Quick test_aria_standard_rule_aborts_raw;
          Alcotest.test_case "reordering limits" `Quick test_aria_reordering_saves_raw_only;
          Alcotest.test_case "RMW contention" `Quick test_aria_rmw_contention;
          Alcotest.test_case "logic abort discards" `Quick test_aria_logic_abort_discards_writes;
          Alcotest.test_case "logic abort unreserved" `Quick test_aria_logic_abort_holds_no_reservation;
          Alcotest.test_case "determinism" `Quick test_aria_determinism;
          Alcotest.test_case "commit rate" `Quick test_aria_commit_rate;
          Alcotest.test_case "smallbank convergence" `Quick test_aria_smallbank_convergence;
          Alcotest.test_case "tpcc hotspot aborts" `Quick test_aria_tpcc_hotspot_aborts;
          qt prop_aria_deterministic_partition;
          Alcotest.test_case "fallback always commits" `Quick test_fallback_always_commits;
          Alcotest.test_case "fallback sees parallel writes" `Quick test_fallback_sees_parallel_writes;
          Alcotest.test_case "fallback logic abort" `Quick test_fallback_logic_abort_final;
          Alcotest.test_case "fallback deterministic" `Quick test_fallback_deterministic_order;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "chain" `Quick test_ledger_chain;
          Alcotest.test_case "equal prefix" `Quick test_ledger_equal_prefix;
          Alcotest.test_case "determinism" `Quick test_ledger_determinism;
        ] );
    ]
