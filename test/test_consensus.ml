(* Tests for the consensus substrate: PBFT (normal case, skip-prepare
   variant, faulty replicas, view change) and group-level Raft
   (replication, ordering, guards, elections), each driven over a
   deterministic in-memory bus. *)

open Massbft_consensus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A synchronous FIFO bus connecting n state machines. Messages are
   queued on send and drained by [run]; crashed endpoints drop
   traffic. *)
module Bus = struct
  type 'm t = {
    queue : (int * int * 'm) Queue.t;
    mutable down : bool array;
    mutable handler : (int -> from:int -> 'm -> unit) option;
    mutable log : (int * int) list;  (* (src, dst) trace for assertions *)
  }

  let create n =
    {
      queue = Queue.create ();
      down = Array.make n false;
      handler = None;
      log = [];
    }

  let send t ~src ~dst msg =
    if not t.down.(src) then Queue.push (src, dst, msg) t.queue

  let crash t i = t.down.(i) <- true
  let recover t i = t.down.(i) <- false

  let run t =
    let handler = Option.get t.handler in
    while not (Queue.is_empty t.queue) do
      let src, dst, msg = Queue.pop t.queue in
      t.log <- (src, dst) :: t.log;
      if not t.down.(dst) then handler dst ~from:src msg
    done
end

(* ------------------------------------------------------------------ *)
(* PBFT                                                                *)
(* ------------------------------------------------------------------ *)

let make_pbft_cluster ?(skip_prepare = false) n =
  let bus = Bus.create n in
  let decisions = Array.make n [] in
  let replicas =
    Array.init n (fun me ->
        Pbft.create
          { Pbft.n; me; skip_prepare }
          {
            Pbft.send = (fun dst msg -> Bus.send bus ~src:me ~dst msg);
            decide =
              (fun cert ->
                decisions.(me) <-
                  (cert.Pbft.cert_seq, cert.cert_digest) :: decisions.(me));
          })
  in
  bus.Bus.handler <- Some (fun dst ~from msg -> Pbft.handle replicas.(dst) ~from msg);
  (bus, replicas, decisions)

let test_pbft_normal_case () =
  let bus, replicas, decisions = make_pbft_cluster 4 in
  Pbft.propose replicas.(0) ~seq:1 ~digest:"d1";
  Bus.run bus;
  Array.iteri
    (fun i d ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "replica %d decided" i)
        [ (1, "d1") ] d)
    decisions;
  check_bool "decided lookup" true (Pbft.decided replicas.(3) 1 = Some "d1")

let test_pbft_multiple_sequences () =
  let bus, replicas, decisions = make_pbft_cluster 4 in
  Pbft.propose replicas.(0) ~seq:1 ~digest:"a";
  Pbft.propose replicas.(0) ~seq:2 ~digest:"b";
  Pbft.propose replicas.(0) ~seq:3 ~digest:"c";
  Bus.run bus;
  Array.iteri
    (fun i d ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "replica %d all three" i)
        [ (1, "a"); (2, "b"); (3, "c") ]
        (List.sort compare d))
    decisions

let test_pbft_larger_group () =
  let bus, _, decisions = make_pbft_cluster 7 in
  let bus7, replicas7, _ = (bus, (), decisions) in
  ignore bus7;
  ignore replicas7;
  let bus, replicas, decisions = make_pbft_cluster 7 in
  Pbft.propose replicas.(0) ~seq:1 ~digest:"x";
  Bus.run bus;
  Array.iter
    (fun d -> Alcotest.(check (list (pair int string))) "decided" [ (1, "x") ] d)
    decisions

let test_pbft_tolerates_silent_f () =
  (* n = 7, f = 2: two crashed replicas must not block decisions. *)
  let bus, replicas, decisions = make_pbft_cluster 7 in
  Bus.crash bus 5;
  Bus.crash bus 6;
  Pbft.propose replicas.(0) ~seq:1 ~digest:"d";
  Bus.run bus;
  for i = 0 to 4 do
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "correct replica %d" i)
      [ (1, "d") ] decisions.(i)
  done

let test_pbft_f_plus_one_silent_blocks () =
  (* n = 4 tolerates f = 1; with two silent replicas no quorum forms —
     safety over liveness. *)
  let bus, replicas, decisions = make_pbft_cluster 4 in
  Bus.crash bus 2;
  Bus.crash bus 3;
  Pbft.propose replicas.(0) ~seq:1 ~digest:"d";
  Bus.run bus;
  Array.iter
    (fun d -> check_int "no decision" 0 (List.length d))
    decisions

let test_pbft_skip_prepare_decides () =
  let bus, replicas, decisions = make_pbft_cluster ~skip_prepare:true 4 in
  Pbft.propose replicas.(0) ~seq:1 ~digest:"acc";
  Bus.run bus;
  Array.iter
    (fun d ->
      Alcotest.(check (list (pair int string))) "decided" [ (1, "acc") ] d)
    decisions

let test_pbft_skip_prepare_sends_no_prepares () =
  let n = 4 in
  let bus = Bus.create n in
  let prepare_seen = ref false in
  let replicas =
    Array.init n (fun me ->
        Pbft.create
          { Pbft.n; me; skip_prepare = true }
          {
            Pbft.send =
              (fun dst msg ->
                (match msg with Pbft.Prepare _ -> prepare_seen := true | _ -> ());
                Bus.send bus ~src:me ~dst msg);
            decide = (fun _ -> ());
          })
  in
  bus.Bus.handler <-
    Some (fun dst ~from msg -> Pbft.handle replicas.(dst) ~from msg);
  Pbft.propose replicas.(0) ~seq:1 ~digest:"z";
  Bus.run bus;
  check_bool "no prepare phase" false !prepare_seen

let test_pbft_equivocation_masked () =
  (* A Byzantine replica votes for a different digest; the correct
     quorum still decides the leader's digest and nothing else. *)
  let bus, replicas, decisions = make_pbft_cluster 4 in
  Pbft.propose replicas.(0) ~seq:1 ~digest:"good";
  (* Replica 3 floods conflicting votes before honest traffic drains. *)
  for dst = 0 to 2 do
    Bus.send bus ~src:3 ~dst (Pbft.Prepare { view = 0; seq = 1; digest = "evil" });
    Bus.send bus ~src:3 ~dst (Pbft.Commit { view = 0; seq = 1; digest = "evil" })
  done;
  Bus.run bus;
  for i = 0 to 2 do
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "replica %d decides good" i)
      [ (1, "good") ] decisions.(i)
  done

let test_pbft_duplicate_messages_harmless () =
  let n = 4 in
  let bus = Bus.create n in
  let decisions = Array.make n 0 in
  let replicas =
    Array.init n (fun me ->
        Pbft.create
          { Pbft.n; me; skip_prepare = false }
          {
            Pbft.send =
              (fun dst msg ->
                (* Send everything twice. *)
                Bus.send bus ~src:me ~dst msg;
                Bus.send bus ~src:me ~dst msg);
            decide = (fun _ -> decisions.(me) <- decisions.(me) + 1);
          })
  in
  bus.Bus.handler <-
    Some (fun dst ~from msg -> Pbft.handle replicas.(dst) ~from msg);
  Pbft.propose replicas.(0) ~seq:1 ~digest:"d";
  Bus.run bus;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "replica %d decides once" i) 1 c)
    decisions

let test_pbft_propose_errors () =
  let _, replicas, _ = make_pbft_cluster 4 in
  check_bool "non-leader rejected" true
    (try
       Pbft.propose replicas.(1) ~seq:1 ~digest:"d";
       false
     with Invalid_argument _ -> true);
  Pbft.propose replicas.(0) ~seq:1 ~digest:"d";
  check_bool "duplicate seq rejected" true
    (try
       Pbft.propose replicas.(0) ~seq:1 ~digest:"d2";
       false
     with Invalid_argument _ -> true)

let test_pbft_view_change_elects_new_leader () =
  let bus, replicas, decisions = make_pbft_cluster 4 in
  Bus.crash bus 0;
  (* Replicas 1-3 time out and start a view change. *)
  Pbft.start_view_change replicas.(1);
  Pbft.start_view_change replicas.(2);
  Pbft.start_view_change replicas.(3);
  Bus.run bus;
  check_int "new view" 1 (Pbft.view replicas.(1));
  check_bool "replica 1 leads view 1" true (Pbft.is_leader replicas.(1));
  (* The new leader can decide new entries without replica 0. *)
  Pbft.propose replicas.(1) ~seq:5 ~digest:"nv";
  Bus.run bus;
  for i = 1 to 3 do
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "replica %d decides in view 1" i)
      [ (5, "nv") ] decisions.(i)
  done

let test_pbft_view_change_join_rule () =
  (* Only f+1 = 2 replicas time out; the third joins via the f+1 rule
     so the view change still completes. *)
  let bus, replicas, _ = make_pbft_cluster 4 in
  Bus.crash bus 0;
  Pbft.start_view_change replicas.(2);
  Pbft.start_view_change replicas.(3);
  Bus.run bus;
  check_int "replica 1 dragged into view 1" 1 (Pbft.view replicas.(1));
  check_bool "replica 1 is leader" true (Pbft.is_leader replicas.(1))

let test_pbft_view_change_preserves_prepared () =
  (* An entry that reached the prepared stage before the view change
     must be re-decided with the same digest in the new view. *)
  let bus, replicas, decisions = make_pbft_cluster 4 in
  Pbft.propose replicas.(0) ~seq:1 ~digest:"keep";
  (* Let prepare traffic flow, then silence the leader before commits
     can finish anywhere by crashing it mid-protocol: run the bus fully
     first to get replicas prepared, then force a view change anyway —
     re-deciding an already-decided slot must be idempotent, and
     undecided prepared slots must carry over. *)
  Bus.run bus;
  Bus.crash bus 0;
  Pbft.start_view_change replicas.(1);
  Pbft.start_view_change replicas.(2);
  Pbft.start_view_change replicas.(3);
  Bus.run bus;
  (* Every surviving replica still has exactly one decision for seq 1,
     digest "keep" (no duplicate decide from the re-proposal). *)
  for i = 1 to 3 do
    let decided_keep =
      List.filter (fun (s, d) -> s = 1 && d = "keep") decisions.(i)
    in
    check_int (Printf.sprintf "replica %d decided keep once" i) 1
      (List.length decided_keep);
    check_bool "no conflicting decision" true
      (List.for_all (fun (_, d) -> d = "keep") decisions.(i))
  done

(* ------------------------------------------------------------------ *)
(* Raft                                                                *)
(* ------------------------------------------------------------------ *)

type raft_events = {
  mutable committed : (int * string) list;  (* (index, entry), in order *)
  mutable delivered : (int * string) list;
  mutable roles : Raft.role list;
}

let make_raft_cluster ?(ack_guard = fun ~index:_ _ k -> k ()) ?initial_leader ng =
  let bus = Bus.create ng in
  let events =
    Array.init ng (fun _ -> { committed = []; delivered = []; roles = [] })
  in
  let replicas =
    Array.init ng (fun me ->
        Raft.create ?initial_leader ~ng ~me
          {
            Raft.send = (fun dst msg -> Bus.send bus ~src:me ~dst msg);
            on_deliver =
              (fun ~index e ->
                events.(me).delivered <- (index, e) :: events.(me).delivered);
            on_commit =
              (fun ~index e ->
                events.(me).committed <- events.(me).committed @ [ (index, e) ]);
            on_role = (fun r ~term:_ -> events.(me).roles <- r :: events.(me).roles);
            ack_guard;
          })
  in
  bus.Bus.handler <-
    Some (fun dst ~from msg -> Raft.handle replicas.(dst) ~from msg);
  (bus, replicas, events)

let test_raft_replicate_and_commit () =
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  let i1 = Raft.propose replicas.(0) "e1" in
  let i2 = Raft.propose replicas.(0) "e2" in
  check_int "indices sequential" 1 i1;
  check_int "indices sequential" 2 i2;
  Bus.run bus;
  Array.iteri
    (fun g ev ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "group %d commits in order" g)
        [ (1, "e1"); (2, "e2") ]
        ev.committed)
    events;
  check_int "leader commit index" 2 (Raft.commit_index replicas.(0));
  check_int "follower commit index" 2 (Raft.commit_index replicas.(2));
  check_bool "entry readable" true (Raft.entry_at replicas.(1) 1 = Some "e1")

let test_raft_deliver_before_commit () =
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  ignore (Raft.propose replicas.(0) "e");
  Bus.run bus;
  (* Followers saw the entry via on_deliver and committed it after. *)
  Alcotest.(check (list (pair int string)))
    "follower delivered" [ (1, "e") ]
    events.(1).delivered;
  Alcotest.(check (list (pair int string)))
    "follower committed" [ (1, "e") ]
    events.(1).committed

let test_raft_single_group_universe () =
  let _, replicas, events = make_raft_cluster ~initial_leader:0 1 in
  ignore (Raft.propose replicas.(0) "solo");
  Alcotest.(check (list (pair int string)))
    "instant commit" [ (1, "solo") ]
    events.(0).committed

let test_raft_out_of_order_appends () =
  (* Feed a follower index 2 before index 1; both must end up committed
     in order. *)
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  Raft.handle replicas.(1) ~from:0 (Raft.Append { term = 1; index = 2; entry = "b" });
  check_int "gap buffered, nothing delivered" 0
    (List.length events.(1).delivered);
  Raft.handle replicas.(1) ~from:0 (Raft.Append { term = 1; index = 1; entry = "a" });
  Alcotest.(check (list (pair int string)))
    "delivered in order"
    [ (1, "a"); (2, "b") ]
    (List.rev events.(1).delivered);
  Bus.run bus

let test_raft_ack_guard_blocks_commit () =
  (* Withhold all guard releases: nothing can commit even though appends
     flow (this is how the engine enforces has-the-entry before accept,
     Lemma V.1). *)
  let released = ref [] in
  let bus, replicas, events =
    make_raft_cluster 3 ~initial_leader:0 ~ack_guard:(fun ~index _ k ->
        released := (index, k) :: !released)
  in
  ignore (Raft.propose replicas.(0) "guarded");
  Bus.run bus;
  check_int "no commits while guard held" 0 (List.length events.(0).committed);
  (* Release the guards: acks flow, entry commits everywhere. *)
  List.iter (fun (_, k) -> k ()) !released;
  Bus.run bus;
  Alcotest.(check (list (pair int string)))
    "leader commits after release" [ (1, "guarded") ]
    events.(0).committed;
  Alcotest.(check (list (pair int string)))
    "followers commit after release" [ (1, "guarded") ]
    events.(2).committed

let test_raft_majority_without_straggler () =
  (* 3 groups tolerate 1 crash: the leader plus one follower commit. *)
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  Bus.crash bus 2;
  ignore (Raft.propose replicas.(0) "maj");
  Bus.run bus;
  Alcotest.(check (list (pair int string)))
    "leader committed" [ (1, "maj") ]
    events.(0).committed;
  Alcotest.(check (list (pair int string)))
    "live follower committed" [ (1, "maj") ]
    events.(1).committed;
  check_int "crashed group saw nothing" 0 (List.length events.(2).committed)

let test_raft_election_after_leader_crash () =
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  ignore (Raft.propose replicas.(0) "pre-crash");
  Bus.run bus;
  Bus.crash bus 0;
  (* Group 1 times out and takes over. *)
  Raft.start_election replicas.(1);
  Bus.run bus;
  check_bool "group 1 leads" true (Raft.role replicas.(1) = Raft.Leader);
  check_int "term advanced" 2 (Raft.term replicas.(1));
  (* The new leader extends the same log. *)
  let idx = Raft.propose replicas.(1) "post-crash" in
  check_int "continues log" 2 idx;
  Bus.run bus;
  Alcotest.(check (list (pair int string)))
    "survivor g2 has both entries"
    [ (1, "pre-crash"); (2, "post-crash") ]
    events.(2).committed

let test_raft_stale_candidate_loses () =
  (* A candidate missing a majority-replicated entry must not win. *)
  let bus, replicas, _ = make_raft_cluster ~initial_leader:0 3 in
  (* Group 2 misses the replication of entry 1. *)
  Bus.crash bus 2;
  ignore (Raft.propose replicas.(0) "committed-entry");
  Bus.run bus;
  Bus.recover bus 2;
  (* The lagging group campaigns; groups 0 and 1 both hold index 1 and
     must refuse their votes. *)
  Raft.start_election replicas.(2);
  Bus.run bus;
  check_bool "lagging candidate lost" true (Raft.role replicas.(2) <> Raft.Leader)

let test_raft_new_leader_resends_tail () =
  (* Leader replicates to one follower only, then dies; that follower
     wins the election and must push the entry to the third group. *)
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  Bus.crash bus 2;
  ignore (Raft.propose replicas.(0) "tail");
  Bus.run bus;
  Bus.crash bus 0;
  Bus.recover bus 2;
  Raft.start_election replicas.(1);
  Bus.run bus;
  check_bool "group 1 leads" true (Raft.role replicas.(1) = Raft.Leader);
  Alcotest.(check (list (pair int string)))
    "recovered group received the tail entry" [ (1, "tail") ]
    events.(2).committed

let test_raft_term_supersedes_leader () =
  let bus, replicas, _ = make_raft_cluster ~initial_leader:0 3 in
  Bus.run bus;
  Raft.start_election replicas.(1);
  (* Deliver only the campaign: the old leader must step down on the
     newer term. *)
  Bus.run bus;
  check_bool "exactly one leader" true
    (List.length
       (List.filter
          (fun r -> Raft.role r = Raft.Leader)
          (Array.to_list replicas))
    = 1);
  check_bool "terms advanced" true (Raft.term replicas.(0) >= 2)

let test_raft_preferred_leader_transfer_back () =
  (* A usurper wins an election; its anti-entropy probes then discover
     the preferred leader is alive and caught up, and hand leadership
     home via Timeout_now. *)
  let bus, replicas, _ = make_raft_cluster ~initial_leader:0 3 in
  Raft.start_election replicas.(1);
  Bus.run bus;
  (* After the probe cycle, the preferred group ends up leading again in
     a later term. *)
  check_bool "preferred leader restored" true
    (Raft.role replicas.(0) = Raft.Leader);
  check_bool "usurper stepped aside" true (Raft.role replicas.(1) <> Raft.Leader);
  check_bool "term advanced past the usurper's" true (Raft.term replicas.(0) >= 3)

let test_raft_rogue_timeout_now_ignored () =
  (* Timeout_now is only a valid prompt from the node currently believed
     to be the leader. A Byzantine follower spraying it must not be able
     to force spurious elections (term inflation + vote churn). *)
  let bus, replicas, _ = make_raft_cluster ~initial_leader:0 3 in
  ignore (Raft.propose replicas.(0) "e1");
  Bus.run bus;
  let term_before = Raft.term replicas.(1) in
  (* Replica 2 is a follower; its prompt must be ignored outright. *)
  Raft.handle replicas.(1) ~from:2 (Raft.Timeout_now { term = term_before });
  Bus.run bus;
  check_int "term unchanged after rogue prompt" term_before
    (Raft.term replicas.(1));
  check_bool "no campaign started" true (Raft.role replicas.(1) = Raft.Follower);
  check_bool "leader undisturbed" true (Raft.role replicas.(0) = Raft.Leader);
  (* A higher-term rogue prompt may advance the term (any higher-term
     message does) but still must not trigger a campaign. *)
  Raft.handle replicas.(1) ~from:2 (Raft.Timeout_now { term = term_before + 5 });
  Bus.run bus;
  check_bool "no campaign at inflated term" true
    (Raft.role replicas.(1) = Raft.Follower);
  (* The legitimate path still works: the prompt from the believed
     leader itself starts the campaign. *)
  Raft.handle replicas.(2) ~from:0 (Raft.Timeout_now { term = term_before });
  check_bool "prompt from the leader campaigns" true
    (Raft.role replicas.(2) <> Raft.Follower
    || Raft.term replicas.(2) > term_before)

let test_raft_replace_uncommitted () =
  (* The unwedge primitive: a leader overwrites an uncommitted index and
     followers apply the replacement even when their copy has the same
     term. *)
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  (* Hold all guards so nothing commits. *)
  let held = ref [] in
  let bus2, replicas2, events2 =
    make_raft_cluster ~initial_leader:0 3 ~ack_guard:(fun ~index:_ _ k ->
        held := k :: !held)
  in
  ignore (bus, replicas, events);
  ignore (Raft.propose replicas2.(0) "wedged");
  Bus.run bus2;
  check_int "nothing committed while held" 0 (List.length events2.(0).committed);
  (* Replace the wedged entry; the fresh ack_guard run also holds, then
     releasing commits the REPLACEMENT, not the original. *)
  Raft.replace_uncommitted replicas2.(0) ~index:1 "noop";
  Bus.run bus2;
  List.iter (fun k -> k ()) !held;
  Bus.run bus2;
  Alcotest.(check (list (pair int string)))
    "replacement committed everywhere" [ (1, "noop") ]
    events2.(1).committed;
  Alcotest.(check (list (pair int string)))
    "leader too" [ (1, "noop") ]
    events2.(0).committed

let test_raft_replace_errors () =
  let bus, replicas, _ = make_raft_cluster ~initial_leader:0 3 in
  ignore (Raft.propose replicas.(0) "e1");
  Bus.run bus;
  (* Index 1 is committed now. *)
  check_bool "committed index rejected" true
    (try
       Raft.replace_uncommitted replicas.(0) ~index:1 "x";
       false
     with Invalid_argument _ -> true);
  check_bool "beyond last rejected" true
    (try
       Raft.replace_uncommitted replicas.(0) ~index:9 "x";
       false
     with Invalid_argument _ -> true);
  check_bool "non-leader rejected" true
    (try
       Raft.replace_uncommitted replicas.(1) ~index:1 "x";
       false
     with Invalid_argument _ -> true)

let test_raft_heartbeat_catches_up_lagging_follower () =
  (* A follower that missed entries (not a leadership change — just
     drops) is repaired by the periodic probe. *)
  let bus, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  Bus.crash bus 2;
  ignore (Raft.propose replicas.(0) "a");
  ignore (Raft.propose replicas.(0) "b");
  Bus.run bus;
  Bus.recover bus 2;
  Raft.heartbeat replicas.(0);
  Bus.run bus;
  Alcotest.(check (list (pair int string)))
    "lagging follower repaired"
    [ (1, "a"); (2, "b") ]
    events.(2).committed

let test_raft_heartbeat_noop_on_follower () =
  let bus, replicas, _ = make_raft_cluster ~initial_leader:0 3 in
  (* heartbeat on a follower must not send anything. *)
  Raft.heartbeat replicas.(1);
  check_bool "no traffic" true (Queue.is_empty bus.Bus.queue)

let test_raft_commit_watermark_semantics () =
  (* A commit note for index N commits everything <= N that the follower
     holds, even if earlier notes were lost. *)
  let _, replicas, events = make_raft_cluster ~initial_leader:0 3 in
  Raft.handle replicas.(1) ~from:0 (Raft.Append { term = 1; index = 1; entry = "a" });
  Raft.handle replicas.(1) ~from:0 (Raft.Append { term = 1; index = 2; entry = "b" });
  Raft.handle replicas.(1) ~from:0 (Raft.Commit_note { term = 1; index = 2 });
  Alcotest.(check (list (pair int string)))
    "watermark commits the prefix"
    [ (1, "a"); (2, "b") ]
    events.(1).committed

let test_raft_propose_errors () =
  let _, replicas, _ = make_raft_cluster 3 in
  check_bool "follower cannot propose" true
    (try
       ignore (Raft.propose replicas.(1) "nope");
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "massbft_consensus"
    [
      ( "pbft",
        [
          Alcotest.test_case "normal case n=4" `Quick test_pbft_normal_case;
          Alcotest.test_case "multiple sequences" `Quick test_pbft_multiple_sequences;
          Alcotest.test_case "larger group n=7" `Quick test_pbft_larger_group;
          Alcotest.test_case "tolerates f silent" `Quick test_pbft_tolerates_silent_f;
          Alcotest.test_case "f+1 silent blocks (safety)" `Quick test_pbft_f_plus_one_silent_blocks;
          Alcotest.test_case "skip-prepare decides" `Quick test_pbft_skip_prepare_decides;
          Alcotest.test_case "skip-prepare omits prepares" `Quick test_pbft_skip_prepare_sends_no_prepares;
          Alcotest.test_case "equivocation masked" `Quick test_pbft_equivocation_masked;
          Alcotest.test_case "duplicates harmless" `Quick test_pbft_duplicate_messages_harmless;
          Alcotest.test_case "propose errors" `Quick test_pbft_propose_errors;
          Alcotest.test_case "view change elects leader" `Quick test_pbft_view_change_elects_new_leader;
          Alcotest.test_case "view change join rule" `Quick test_pbft_view_change_join_rule;
          Alcotest.test_case "view change preserves prepared" `Quick test_pbft_view_change_preserves_prepared;
        ] );
      ( "raft",
        [
          Alcotest.test_case "replicate and commit" `Quick test_raft_replicate_and_commit;
          Alcotest.test_case "deliver before commit" `Quick test_raft_deliver_before_commit;
          Alcotest.test_case "single-group universe" `Quick test_raft_single_group_universe;
          Alcotest.test_case "out-of-order appends" `Quick test_raft_out_of_order_appends;
          Alcotest.test_case "ack guard blocks commit" `Quick test_raft_ack_guard_blocks_commit;
          Alcotest.test_case "majority without straggler" `Quick test_raft_majority_without_straggler;
          Alcotest.test_case "election after crash" `Quick test_raft_election_after_leader_crash;
          Alcotest.test_case "stale candidate loses" `Quick test_raft_stale_candidate_loses;
          Alcotest.test_case "new leader resends tail" `Quick test_raft_new_leader_resends_tail;
          Alcotest.test_case "term supersedes leader" `Quick test_raft_term_supersedes_leader;
          Alcotest.test_case "preferred transfer-back" `Quick test_raft_preferred_leader_transfer_back;
          Alcotest.test_case "rogue Timeout_now ignored" `Quick
            test_raft_rogue_timeout_now_ignored;
          Alcotest.test_case "propose errors" `Quick test_raft_propose_errors;
          Alcotest.test_case "replace uncommitted" `Quick test_raft_replace_uncommitted;
          Alcotest.test_case "replace errors" `Quick test_raft_replace_errors;
          Alcotest.test_case "heartbeat repairs lag" `Quick test_raft_heartbeat_catches_up_lagging_follower;
          Alcotest.test_case "heartbeat follower no-op" `Quick test_raft_heartbeat_noop_on_follower;
          Alcotest.test_case "commit watermark" `Quick test_raft_commit_watermark_semantics;
        ] );
    ]
