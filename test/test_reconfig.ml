(* Tests for live membership reconfiguration: the plan DSL (round-trip
   as a qcheck property, parse errors, the validation floors), seeded
   determinism of the scenario generator, the no-op guarantee (an empty
   plan perturbs nothing, byte-identically, for every system), a join's
   state-transfer receipt, the mid-transfer-crash drill (a deliberately
   intolerable schedule is detected and ddmin-shrinks to its culprit
   while the plan — the scenario's identity — stays fixed), and the
   CLI's exit-2 one-line diagnostics for malformed plan files. *)

module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Rng = Massbft_util.Rng
module Clusters = Massbft_harness.Clusters
module Runner = Massbft_harness.Runner
module R = Massbft_reconfig.Reconfig_spec
module Reconfig = Massbft_reconfig.Reconfig
module F = Massbft_faults.Fault_spec
module Chaos = Massbft_faults.Chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let small_cfg ?(system = Config.Massbft) () =
  {
    (Config.default ~system ()) with
    Config.max_batch = 40;
    pipeline = 4;
    workload_scale = 0.001;
  }

let small_spec () = Clusters.nationwide ~nodes_per_group:4 ()

(* ------------------------------------------------------------------ *)
(* DSL                                                                 *)
(* ------------------------------------------------------------------ *)

(* One event of every variant. *)
let kitchen_sink : R.plan =
  [
    { R.at = 1.0; cmd = R.Add_node 1 };
    { R.at = 2.5; cmd = R.Remove_node 2 };
    { R.at = 3.125; cmd = R.Move_leader { Topology.g = 0; n = 2 } };
    { R.at = 4.0; cmd = R.Add_group { size = 4 } };
    { R.at = 5.75; cmd = R.Remove_group 1 };
  ]

let test_round_trip () =
  let text = R.to_string kitchen_sink in
  let back = R.of_string text in
  check_bool "of_string (to_string p) = p" true (back = kitchen_sink);
  check_string "second round-trip is byte-identical" text (R.to_string back)

(* The qcheck property behind the unit case: any plan of generated
   commands survives a text round-trip exactly. Times are millisecond-
   quantized below 100 s, which the DSL's %g form prints losslessly. *)
let gen_plan =
  let open QCheck.Gen in
  let cmd =
    oneof
      [
        map (fun g -> R.Add_node g) (int_range 0 5);
        map (fun g -> R.Remove_node g) (int_range 0 5);
        map2
          (fun g n -> R.Move_leader { Topology.g; n })
          (int_range 0 5) (int_range 0 8);
        map (fun size -> R.Add_group { size }) (int_range 4 9);
        map (fun g -> R.Remove_group g) (int_range 0 5);
      ]
  in
  let event =
    map2
      (fun ms cmd -> { R.at = float_of_int ms /. 1000.0; cmd })
      (int_range 0 99_999) cmd
  in
  list_size (int_range 0 10) event

let prop_round_trip =
  QCheck.Test.make ~name:"reconfig DSL round-trips any generated plan"
    ~count:500 (QCheck.make gen_plan) (fun plan ->
      let text = R.to_string plan in
      R.of_string text = plan && R.to_string (R.of_string text) = text)

let test_parse_comments_and_errors () =
  let plan =
    R.of_string
      "# a comment\n\n@1 add-node g1\n   \n# another\n@2.5 move-leader g0/n2\n"
  in
  check_int "comments and blanks skipped" 2 (List.length plan);
  let raises text =
    match R.of_string text with
    | _ -> false
    | exception R.Parse_error _ -> true
  in
  check_bool "unknown command rejected" true (raises "@1 frobnicate g0");
  check_bool "missing @time rejected" true (raises "add-node g0");
  check_bool "bad group rejected" true (raises "@1 add-node n0");
  check_bool "bad address rejected" true (raises "@1 move-leader n0/g0");
  check_bool "missing keyword rejected" true (raises "@1 add-group g0");
  check_bool "the diagnostic names the first bad token" true
    (match R.of_string "@1 frobnicate g0" with
    | _ -> false
    | exception R.Parse_error msg ->
        (* substring check without Str *)
        let has s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has msg "frobnicate")

let test_validate () =
  let gs = [| 4; 4; 4 |] in
  let ok p = R.validate ~group_sizes:gs p = Ok () in
  check_bool "a staged add/remove sequence validates" true
    (ok
       [
         { R.at = 1.0; cmd = R.Add_node 1 };
         { R.at = 3.0; cmd = R.Remove_node 1 };
         { R.at = 5.0; cmd = R.Add_group { size = 4 } };
         { R.at = 7.0; cmd = R.Remove_group 1 };
       ]);
  let bad cmd = not (ok [ { R.at = 1.0; cmd } ]) in
  check_bool "remove below 4 nodes rejected" true (bad (R.Remove_node 1));
  check_bool "group out of range rejected" true (bad (R.Add_node 7));
  check_bool "coordinator group irremovable" true (bad (R.Remove_group 0));
  check_bool "undersized group rejected" true (bad (R.Add_group { size = 3 }));
  check_bool "leader move to a dark slot rejected" true
    (bad (R.Move_leader { Topology.g = 0; n = 9 }));
  check_bool "negative time rejected" true
    (R.validate ~group_sizes:gs [ { R.at = -1.0; cmd = R.Add_node 0 } ]
    <> Ok ());
  check_bool "validation walks in time order" true
    (* the remove at 2.0 is legal only because the add at 1.0 executed *)
    (ok
       [
         { R.at = 2.0; cmd = R.Remove_node 1 };
         { R.at = 1.0; cmd = R.Add_node 1 };
       ])

(* ------------------------------------------------------------------ *)
(* Seeded determinism of the scenario generator                        *)
(* ------------------------------------------------------------------ *)

let test_gen_reconfig_deterministic () =
  let cfg = small_cfg () in
  let spec = Clusters.nationwide ~nodes_per_group:5 () in
  List.iter
    (fun kind ->
      let gen seed =
        let rng = Rng.create seed in
        let plan, faults =
          Chaos.gen_reconfig rng ~cfg ~spec ~duration:8.0 ~kind
        in
        (R.to_string plan, F.to_string faults)
      in
      let p1, f1 = gen 42L and p2, f2 = gen 42L in
      check_string (kind ^ ": same seed, same plan") p1 p2;
      check_string (kind ^ ": same seed, same paired chaos") f1 f2;
      check_bool (kind ^ ": generated plan validates") true
        (R.validate
           ~group_sizes:spec.Topology.group_sizes
           (R.of_string p1)
        = Ok ()))
    Chaos.reconfig_kinds

(* ------------------------------------------------------------------ *)
(* The no-op guarantee                                                 *)
(* ------------------------------------------------------------------ *)

let test_empty_plan_is_byte_identical () =
  (* An empty plan must provision nothing, arm nothing and perturb
     nothing: the full result record (throughput, latency series,
     phase breakdown...) is equal for all seven systems. *)
  let spec = small_spec () in
  List.iter
    (fun system ->
      let cfg = small_cfg ~system () in
      let go reconfig =
        Runner.run ~duration:2.0 ~warmup:1.0 ?reconfig ~spec ~cfg ()
      in
      check_bool
        (Config.system_name system ^ ": empty plan perturbs nothing")
        true
        (go None = go (Some [])))
    Config.all_systems

(* ------------------------------------------------------------------ *)
(* Join state transfer                                                 *)
(* ------------------------------------------------------------------ *)

let test_join_receipt () =
  (* A node join must activate with the donor's exact store fingerprint
     and committed prefix, and every epoch-aware end-of-run check must
     come back clean. *)
  let cfg = small_cfg () in
  let spec = small_spec () in
  let plan = [ { R.at = 2.0; cmd = R.Add_node 1 } ] in
  let ctl = ref None in
  let _ =
    Runner.run ~duration:8.0 ~warmup:2.0 ~reconfig:plan
      ~on_reconfig:(fun c -> ctl := Some c)
      ~spec ~cfg ()
  in
  let c = match !ctl with Some c -> c | None -> Alcotest.fail "no controller" in
  List.iter
    (fun (check, detail) -> Alcotest.fail (check ^ ": " ^ detail))
    (Reconfig.final_violations c);
  check_int "one epoch boundary executed" 1 (Reconfig.epochs c);
  match Reconfig.joins c with
  | [ j ] ->
      check_int "joined g1" 1 j.Reconfig.j_gid;
      check_bool "transfer moved bytes" true (j.Reconfig.j_bytes > 0);
      check_string "store fingerprint matches the donor's"
        j.Reconfig.j_src_fingerprint j.Reconfig.j_fingerprint;
      check_int "ledger height matches the donor's" j.Reconfig.j_src_height
        j.Reconfig.j_height;
      check_string "head hash matches the donor's" j.Reconfig.j_src_head
        j.Reconfig.j_head;
      check_bool "activated after the transfer started" true
        (j.Reconfig.j_activated > j.Reconfig.j_started)
  | js -> Alcotest.fail (Printf.sprintf "expected 1 join, got %d" (List.length js))

(* ------------------------------------------------------------------ *)
(* Mid-transfer-crash drill: detect and shrink                         *)
(* ------------------------------------------------------------------ *)

(* GeoBFT has no global retransmission, so a whole-group outage landing
   while a join's state transfer is in flight loses that group's one-way
   copies for good: the liveness watchdog must flag the stall. The
   reconfiguration plan is the scenario's identity — every shrink rerun
   carries it unchanged — and ddmin must isolate the crash/recover pair
   from the benign noise around it. *)
let geobft_join_fails schedule =
  let cfg = small_cfg ~system:Config.Geobft () in
  let spec = small_spec () in
  let plan = [ { R.at = 2.0; cmd = R.Add_node 1 } ] in
  let o = Chaos.run_schedule ~duration:8.0 ~reconfig:plan ~spec ~cfg schedule in
  Chaos.failed o

let test_mid_transfer_crash_shrinks () =
  let noise =
    [
      {
        F.at = 1.0;
        fault =
          F.Link_delay
            { src_g = 0; dst_g = 1; add_s = 0.02; cls = F.Any; for_s = 0.5 };
      };
      { F.at = 1.5; fault = F.Wan_degrade { g = 2; factor = 0.5; for_s = 0.5 } };
      {
        F.at = 2.1;
        fault =
          F.Slow_cpu
            { addr = { Topology.g = 0; n = 1 }; factor = 3.0; for_s = 0.5 };
      };
    ]
  in
  let culprit =
    [
      { F.at = 2.3; fault = F.Crash_group 2 };
      { F.at = 3.3; fault = F.Recover_group 2 };
    ]
  in
  let schedule = F.sorted (culprit @ noise) in
  check_bool "the mid-transfer outage is detected" true
    (geobft_join_fails schedule);
  check_bool "the benign noise alone passes" false (geobft_join_fails noise);
  let shrunk = Chaos.shrink ~fails:geobft_join_fails schedule in
  check_string "shrinks to the bare crash/recover pair"
    (F.to_string culprit)
    (F.to_string shrunk)

(* ------------------------------------------------------------------ *)
(* CLI diagnostics                                                     *)
(* ------------------------------------------------------------------ *)

(* Malformed plan files and unknown system names must die with ONE line
   on stderr naming the file and the first bad token, and exit 2 —
   distinct from a run failure's exit 1 and cmdliner's 124. Runs from
   _build/default/test, next to the built CLI. *)
let cli = Filename.concat (Filename.concat ".." "bin") "massbft_cli.exe"

let run_cli args =
  let err = Filename.temp_file "massbft_cli" ".err" in
  let code =
    Sys.command (Printf.sprintf "%s %s >/dev/null 2>%s" cli args err)
  in
  let ic = open_in err in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove err;
  (code, List.rev !lines)

let test_cli_exit2_diagnostics () =
  if not (Sys.file_exists cli) then
    Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "massbft_plan" "" in
    Sys.remove dir;
    let write name text =
      let f = dir ^ name in
      let oc = open_out f in
      output_string oc text;
      close_out oc;
      f
    in
    let check_die what args ~mentions =
      let code, lines = run_cli args in
      check_int (what ^ ": exit 2") 2 code;
      check_int (what ^ ": one-line diagnostic") 1 (List.length lines);
      let line = List.hd lines in
      List.iter
        (fun tok ->
          let has s sub =
            let n = String.length s and m = String.length sub in
            let rec go i =
              i + m <= n && (String.sub s i m = sub || go (i + 1))
            in
            go 0
          in
          check_bool
            (Printf.sprintf "%s: diagnostic %S names %S" what line tok)
            true (has line tok))
        mentions
    in
    let bad_reconfig = write ".reconfig" "@1 frobnicate g0\n" in
    check_die "malformed --reconfig" ("run --reconfig " ^ bad_reconfig)
      ~mentions:[ bad_reconfig; "frobnicate" ];
    let bad_faults = write ".faults" "@1 explode g0\n" in
    check_die "malformed --faults" ("run --faults " ^ bad_faults)
      ~mentions:[ bad_faults; "explode" ];
    let bad_adv = write ".adversary" "@1 gaslight g0/n0\n" in
    check_die "malformed --adversary" ("run --adversary " ^ bad_adv)
      ~mentions:[ bad_adv; "gaslight" ];
    check_die "unreadable file" "run --reconfig /nonexistent/x.reconfig"
      ~mentions:[ "/nonexistent/x.reconfig" ];
    check_die "unknown system" "run -s frobnix" ~mentions:[ "frobnix" ];
    (* An invalid plan (vs unparsable) gets the same treatment. *)
    let invalid = write "2.reconfig" "@1 remove-group g0\n" in
    check_die "invalid --reconfig" ("run --reconfig " ^ invalid)
      ~mentions:[ invalid ];
    List.iter Sys.remove [ bad_reconfig; bad_faults; bad_adv; invalid ]
  end

let () =
  Alcotest.run "reconfig"
    [
      ( "dsl",
        [
          Alcotest.test_case "round-trip" `Quick test_round_trip;
          QCheck_alcotest.to_alcotest prop_round_trip;
          Alcotest.test_case "comments and parse errors" `Quick
            test_parse_comments_and_errors;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "generator",
        [
          Alcotest.test_case "seeded determinism over every kind" `Quick
            test_gen_reconfig_deterministic;
        ] );
      ( "no-op",
        [
          Alcotest.test_case "empty plan is byte-identical (7 systems)" `Slow
            test_empty_plan_is_byte_identical;
        ] );
      ( "join",
        [
          Alcotest.test_case "state-transfer receipt" `Slow test_join_receipt;
        ] );
      ( "drill",
        [
          Alcotest.test_case "mid-transfer crash: detect and shrink" `Slow
            test_mid_transfer_crash_shrinks;
        ] );
      ( "cli",
        [
          Alcotest.test_case "exit-2 one-line diagnostics" `Quick
            test_cli_exit2_diagnostics;
        ] );
    ]
