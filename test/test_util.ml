(* Unit and property tests for the massbft_util substrate. *)

open Massbft_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Intmath                                                             *)
(* ------------------------------------------------------------------ *)

let test_gcd_lcm () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 7 13" 1 (Intmath.gcd 7 13);
  check_int "gcd 0 5" 5 (Intmath.gcd 0 5);
  check_int "gcd 5 0" 5 (Intmath.gcd 5 0);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "lcm 4 7 (paper case study)" 28 (Intmath.lcm 4 7);
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 7 7" 7 (Intmath.lcm 7 7);
  check_int "lcm 0 9" 0 (Intmath.lcm 0 9)

let test_cdiv () =
  check_int "cdiv exact" 3 (Intmath.cdiv 9 3);
  check_int "cdiv round up" 4 (Intmath.cdiv 10 3);
  check_int "cdiv zero" 0 (Intmath.cdiv 0 5);
  Alcotest.check_raises "cdiv by zero" (Invalid_argument "Intmath.cdiv: non-positive divisor")
    (fun () -> ignore (Intmath.cdiv 1 0))

let test_quorums () =
  (* n >= 3f + 1: the PBFT bound from the paper's threat model. *)
  check_int "f(4)" 1 (Intmath.pbft_f 4);
  check_int "f(7)" 2 (Intmath.pbft_f 7);
  check_int "f(40)" 13 (Intmath.pbft_f 40);
  check_int "quorum(4)" 3 (Intmath.pbft_quorum 4);
  check_int "quorum(7)" 5 (Intmath.pbft_quorum 7);
  (* n_g >= 2f_g + 1: the group-level crash bound. *)
  check_int "fg(3)" 1 (Intmath.raft_f 3);
  check_int "fg(7)" 3 (Intmath.raft_f 7);
  check_int "raft quorum(3)" 2 (Intmath.raft_quorum 3)

let test_pow_log2 () =
  check_int "pow 2 10" 1024 (Intmath.pow 2 10);
  check_int "pow 3 0" 1 (Intmath.pow 3 0);
  check_int "log2_ceil 1" 0 (Intmath.log2_ceil 1);
  check_int "log2_ceil 2" 1 (Intmath.log2_ceil 2);
  check_int "log2_ceil 3" 2 (Intmath.log2_ceil 3);
  check_int "log2_ceil 1024" 10 (Intmath.log2_ceil 1024);
  check_bool "pot 64" true (Intmath.is_power_of_two 64);
  check_bool "pot 0" false (Intmath.is_power_of_two 0);
  check_bool "pot 12" false (Intmath.is_power_of_two 12);
  check_int "clamp below" 3 (Intmath.clamp ~lo:3 ~hi:9 1);
  check_int "clamp inside" 5 (Intmath.clamp ~lo:3 ~hi:9 5);
  check_int "clamp above" 9 (Intmath.clamp ~lo:3 ~hi:9 42)

let prop_lcm_divisible =
  QCheck.Test.make ~name:"lcm is a common multiple"
    QCheck.(pair (int_range 1 500) (int_range 1 500))
    (fun (a, b) ->
      let l = Intmath.lcm a b in
      l mod a = 0 && l mod b = 0 && l <= a * b)

let prop_gcd_lcm_product =
  QCheck.Test.make ~name:"gcd * lcm = a * b"
    QCheck.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (a, b) -> Intmath.gcd a b * Intmath.lcm a b = a * b)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let child = Rng.split parent in
  (* The child stream should not equal the parent's continuation. *)
  let same = ref true in
  for _ = 1 to 8 do
    if Rng.next_int64 parent <> Rng.next_int64 child then same := false
  done;
  check_bool "split streams diverge" false !same

let test_rng_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "int in bounds" true (v >= 0 && v < 10);
    let f = Rng.float rng 2.5 in
    check_bool "float in bounds" true (f >= 0.0 && f < 2.5);
    let r = Rng.int_in rng ~lo:5 ~hi:7 in
    check_bool "int_in in bounds" true (r >= 5 && r <= 7)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: all 10 cells populated within 3x of mean. *)
  let rng = Rng.create 99L in
  let cells = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    cells.(v) <- cells.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "cell %d populated sanely (%d)" i c)
        true
        (c > n / 30 && c < n / 3))
    cells

let test_rng_exponential_mean () =
  let rng = Rng.create 11L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "exponential mean ~4 (got %f)" mean)
    true
    (mean > 3.8 && mean < 4.2)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle permutes" (Array.init 50 Fun.id) sorted

let test_rng_bytes () =
  let rng = Rng.create 13L in
  let b = Rng.bytes rng 100 in
  check_int "length" 100 (Bytes.length b);
  let b2 = Rng.bytes rng 100 in
  check_bool "two draws differ" false (Bytes.equal b b2)

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create 21L in
  for _ = 1 to 10_000 do
    let v = Zipf.next z rng in
    check_bool "zipf in range" true (v >= 0 && v < 1000)
  done

let test_zipf_skew () =
  (* With theta = 0.99, item 0 must be drawn far more than the median
     item. *)
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create 22L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let v = Zipf.next z rng in
    counts.(v) <- counts.(v) + 1
  done;
  check_bool
    (Printf.sprintf "head is hot (%d draws)" counts.(0))
    true
    (counts.(0) > 5_000);
  check_bool "tail is cold" true (counts.(900) < counts.(0) / 10)

let test_zipf_scrambled_spread () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create 23L in
  let seen_high = ref false in
  for _ = 1 to 1000 do
    let v = Zipf.scrambled z rng ~hash_seed:77L in
    check_bool "scrambled in range" true (v >= 0 && v < 1000);
    if v > 500 then seen_high := true
  done;
  check_bool "scrambling spreads hot keys" true !seen_high

let test_zipf_invalid () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "theta = 1"
    (Invalid_argument "Zipf.create: theta must be in [0, 1)") (fun () ->
      ignore (Zipf.create ~n:10 ~theta:1.0))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  check_int "length" 7 (Heap.length h);
  Alcotest.(check (list int))
    "drain sorted"
    [ 1; 2; 3; 5; 7; 8; 9 ]
    (List.init 7 (fun _ -> Heap.pop_exn h))

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "pop empty" true (Heap.pop h = None);
  check_bool "peek empty" true (Heap.peek h = None);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_peek_stable () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  check_bool "peek min" true (Heap.peek h = Some 2);
  check_int "peek does not remove" 3 (Heap.length h)

let test_heap_to_sorted_list () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted view" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  check_int "non-destructive" 3 (Heap.length h)

let test_heap_filter_in_place () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 9; 4; 7; 2; 8; 1; 6; 3; 5; 0 ];
  Heap.filter_in_place h (fun x -> x land 1 = 0);
  check_int "evens kept" 5 (Heap.length h);
  Alcotest.(check (list int))
    "drain order preserved"
    [ 0; 2; 4; 6; 8 ]
    (List.init 5 (fun _ -> Heap.pop_exn h));
  (* Filtering everything away leaves a usable empty heap. *)
  List.iter (Heap.push h) [ 1; 2 ];
  Heap.filter_in_place h (fun _ -> false);
  check_bool "emptied" true (Heap.is_empty h);
  Heap.push h 42;
  check_bool "usable after emptying" true (Heap.pop h = Some 42)

let prop_heap_filter =
  QCheck.Test.make ~name:"filter_in_place = sort of filtered list"
    QCheck.(pair (list small_int) small_int)
    (fun (xs, k) ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.filter_in_place h (fun x -> x mod 3 <> k mod 3);
      let expected =
        List.sort compare (List.filter (fun x -> x mod 3 <> k mod 3) xs)
      in
      List.init (Heap.length h) (fun _ -> Heap.pop_exn h) = expected)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list in sorted order"
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      drained = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop maintains heap property"
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := List.sort compare (v :: !model);
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
                model := rest;
                x = m
            | _ -> false)
        ops)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count" 5 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.Summary.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.Summary.percentile s 100.0)

let test_summary_empty () =
  (* An empty summary has no extremes or percentiles: the accessors
     raise instead of fabricating a 0.0 sample, and the _opt variants
     return None. Only [mean] keeps its documented 0-on-empty. *)
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.Summary.mean s);
  Alcotest.check_raises "min of empty raises"
    (Invalid_argument "Stats.Summary.min: empty summary") (fun () ->
      ignore (Stats.Summary.min s));
  Alcotest.check_raises "max of empty raises"
    (Invalid_argument "Stats.Summary.max: empty summary") (fun () ->
      ignore (Stats.Summary.max s));
  Alcotest.check_raises "p99 of empty raises"
    (Invalid_argument "Stats.Summary.percentile: empty summary") (fun () ->
      ignore (Stats.Summary.percentile s 99.0));
  check_bool "min_opt None" true (Stats.Summary.min_opt s = None);
  check_bool "max_opt None" true (Stats.Summary.max_opt s = None);
  check_bool "percentile_opt None" true
    (Stats.Summary.percentile_opt s 99.0 = None);
  (* Bad p still raises even on an empty summary. *)
  Alcotest.check_raises "percentile_opt domain"
    (Invalid_argument "Stats.Summary.percentile_opt: p outside [0, 100]")
    (fun () -> ignore (Stats.Summary.percentile_opt s 101.0));
  (* After one add, everything reports that sample. *)
  Stats.Summary.add s 7.0;
  Alcotest.(check (float 1e-9)) "min after add" 7.0 (Stats.Summary.min s);
  check_bool "max_opt after add" true (Stats.Summary.max_opt s = Some 7.0)

let test_summary_percentile_after_add () =
  (* percentile sorts lazily; adding after a percentile call must not
     corrupt the ordering. *)
  let s = Stats.Summary.create () in
  Stats.Summary.add s 10.0;
  Stats.Summary.add s 20.0;
  ignore (Stats.Summary.percentile s 50.0);
  Stats.Summary.add s 1.0;
  Alcotest.(check (float 1e-9)) "new min seen" 1.0 (Stats.Summary.percentile s 1.0)

let test_summary_single_sample () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 7.0;
  Alcotest.(check (float 1e-9)) "mean" 7.0 (Stats.Summary.mean s);
  (* Every percentile of a one-sample population is that sample. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f" p)
        7.0
        (Stats.Summary.percentile s p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ]

let test_summary_percentile_domain () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 1.0;
  let raises p =
    match Stats.Summary.percentile s p with
    | _ -> Alcotest.failf "p=%.1f accepted" p
    | exception Invalid_argument _ -> ()
  in
  raises (-0.1);
  raises 100.1

let test_summary_stddev () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "known stddev" 2.0 (Stats.Summary.stddev s)

let test_timeseries () =
  let ts = Stats.Timeseries.create ~bucket:1.0 in
  Stats.Timeseries.add ts ~time:0.1 1.0;
  Stats.Timeseries.add ts ~time:0.9 1.0;
  Stats.Timeseries.add ts ~time:1.5 1.0;
  (match Stats.Timeseries.rate_series ts with
  | [ (t0, r0); (t1, r1) ] ->
      Alcotest.(check (float 1e-9)) "bucket 0 start" 0.0 t0;
      Alcotest.(check (float 1e-9)) "bucket 0 rate" 2.0 r0;
      Alcotest.(check (float 1e-9)) "bucket 1 start" 1.0 t1;
      Alcotest.(check (float 1e-9)) "bucket 1 rate" 1.0 r1
  | other -> Alcotest.failf "expected 2 buckets, got %d" (List.length other));
  match Stats.Timeseries.mean_series ts with
  | [ (_, m0); (_, m1) ] ->
      Alcotest.(check (float 1e-9)) "bucket 0 mean" 1.0 m0;
      Alcotest.(check (float 1e-9)) "bucket 1 mean" 1.0 m1
  | _ -> Alcotest.fail "expected 2 buckets"

let test_timeseries_zero_fill () =
  (* Observation-free buckets inside the observed span must appear
     explicitly as 0.0 (a stall looks like a stall, not a gap). *)
  let ts = Stats.Timeseries.create ~bucket:1.0 in
  Stats.Timeseries.add ts ~time:0.5 3.0;
  Stats.Timeseries.add ts ~time:3.5 1.0;
  (match Stats.Timeseries.rate_series ts with
  | [ (t0, r0); (t1, r1); (t2, r2); (t3, r3) ] ->
      Alcotest.(check (float 1e-9)) "bucket 0 start" 0.0 t0;
      Alcotest.(check (float 1e-9)) "bucket 0 rate" 3.0 r0;
      Alcotest.(check (float 1e-9)) "gap bucket 1 start" 1.0 t1;
      Alcotest.(check (float 1e-9)) "gap bucket 1 rate" 0.0 r1;
      Alcotest.(check (float 1e-9)) "gap bucket 2 start" 2.0 t2;
      Alcotest.(check (float 1e-9)) "gap bucket 2 rate" 0.0 r2;
      Alcotest.(check (float 1e-9)) "bucket 3 start" 3.0 t3;
      Alcotest.(check (float 1e-9)) "bucket 3 rate" 1.0 r3
  | other -> Alcotest.failf "expected 4 buckets, got %d" (List.length other));
  (match Stats.Timeseries.mean_series ts with
  | [ (_, m0); (_, m1); (_, m2); (_, m3) ] ->
      Alcotest.(check (float 1e-9)) "bucket 0 mean" 3.0 m0;
      Alcotest.(check (float 1e-9)) "gap means" 0.0 (m1 +. m2);
      Alcotest.(check (float 1e-9)) "bucket 3 mean" 1.0 m3
  | other -> Alcotest.failf "expected 4 buckets, got %d" (List.length other));
  let empty = Stats.Timeseries.create ~bucket:1.0 in
  check_int "empty stays empty" 0
    (List.length (Stats.Timeseries.rate_series empty))

let test_timeseries_empty () =
  let ts = Stats.Timeseries.create ~bucket:1.0 in
  Alcotest.(check int) "rate of empty" 0
    (List.length (Stats.Timeseries.rate_series ts));
  Alcotest.(check int) "mean of empty" 0
    (List.length (Stats.Timeseries.mean_series ts))

let test_timeseries_single_sample () =
  let ts = Stats.Timeseries.create ~bucket:2.0 in
  Stats.Timeseries.add ts ~time:3.0 4.0;
  (match Stats.Timeseries.rate_series ts with
  | [ (t0, r0) ] ->
      Alcotest.(check (float 1e-9)) "bucket start" 2.0 t0;
      Alcotest.(check (float 1e-9)) "rate = sum / bucket" 2.0 r0
  | other -> Alcotest.failf "expected 1 bucket, got %d" (List.length other));
  match Stats.Timeseries.mean_series ts with
  | [ (_, m0) ] -> Alcotest.(check (float 1e-9)) "mean" 4.0 m0
  | other -> Alcotest.failf "expected 1 bucket, got %d" (List.length other)

let test_timeseries_out_of_order () =
  (* Bucketing is by timestamp, not arrival order: adding a late sample
     first must produce the same series. *)
  let ts = Stats.Timeseries.create ~bucket:1.0 in
  Stats.Timeseries.add ts ~time:2.5 1.0;
  Stats.Timeseries.add ts ~time:0.5 3.0;
  match Stats.Timeseries.rate_series ts with
  | [ (t0, r0); (_, r1); (t2, r2) ] ->
      Alcotest.(check (float 1e-9)) "first bucket" 0.0 t0;
      Alcotest.(check (float 1e-9)) "first rate" 3.0 r0;
      Alcotest.(check (float 1e-9)) "gap zero-filled" 0.0 r1;
      Alcotest.(check (float 1e-9)) "last bucket" 2.0 t2;
      Alcotest.(check (float 1e-9)) "last rate" 1.0 r2
  | other -> Alcotest.failf "expected 3 buckets, got %d" (List.length other)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.add c 10;
  Stats.Counter.add c 32;
  check_int "sum" 42 (Stats.Counter.get c);
  Stats.Counter.reset c;
  check_int "reset" 0 (Stats.Counter.get c)

(* ------------------------------------------------------------------ *)
(* Hexdump                                                             *)
(* ------------------------------------------------------------------ *)

let test_hex_roundtrip () =
  Alcotest.(check string) "encode" "00ff10" (Hexdump.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hexdump.decode "00ff10");
  Alcotest.(check string) "decode uppercase" "\xab" (Hexdump.decode "AB");
  Alcotest.(check string) "short" "0102" (Hexdump.short ~len:4 "\x01\x02\x03")

let test_hex_invalid () =
  Alcotest.check_raises "odd length"
    (Invalid_argument "Hexdump.decode: odd-length input") (fun () ->
      ignore (Hexdump.decode "abc"));
  Alcotest.check_raises "non-hex"
    (Invalid_argument "Hexdump.decode: non-hex character") (fun () ->
      ignore (Hexdump.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex decode inverts encode" QCheck.string (fun s ->
      Hexdump.decode (Hexdump.encode s) = s)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "massbft_util"
    [
      ( "intmath",
        [
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "cdiv" `Quick test_cdiv;
          Alcotest.test_case "quorums" `Quick test_quorums;
          Alcotest.test_case "pow/log2/clamp" `Quick test_pow_log2;
          qt prop_lcm_divisible;
          qt prop_gcd_lcm_product;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bytes" `Quick test_rng_bytes;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "scrambled spread" `Quick test_zipf_scrambled_spread;
          Alcotest.test_case "invalid params" `Quick test_zipf_invalid;
        ] );
      ( "heap",
        [
          Alcotest.test_case "drain order" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek stable" `Quick test_heap_peek_stable;
          Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_list;
          Alcotest.test_case "filter_in_place" `Quick test_heap_filter_in_place;
          qt prop_heap_sorts;
          qt prop_heap_interleaved;
          qt prop_heap_filter;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary basics" `Quick test_summary_basic;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "percentile then add" `Quick test_summary_percentile_after_add;
          Alcotest.test_case "single sample" `Quick test_summary_single_sample;
          Alcotest.test_case "percentile domain" `Quick
            test_summary_percentile_domain;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
          Alcotest.test_case "timeseries buckets" `Quick test_timeseries;
          Alcotest.test_case "timeseries zero fill" `Quick
            test_timeseries_zero_fill;
          Alcotest.test_case "timeseries empty" `Quick test_timeseries_empty;
          Alcotest.test_case "timeseries single sample" `Quick
            test_timeseries_single_sample;
          Alcotest.test_case "timeseries out-of-order add" `Quick
            test_timeseries_out_of_order;
          Alcotest.test_case "counter" `Quick test_counter;
        ] );
      ( "hexdump",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "invalid input" `Quick test_hex_invalid;
          qt prop_hex_roundtrip;
        ] );
    ]
