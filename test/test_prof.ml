(* Tests for massbft_prof: the no-perturbation contract (profiled runs
   stay byte-identical to the recorded goldens), the accounting
   identities of the phase breakdown, the report/export shapes, and
   the overhead budget on the parallel macro row. *)

module Sim = Massbft_sim.Sim
module Prof = Massbft_prof.Prof
module Prof_export = Massbft_prof.Prof_export
module Trace = Massbft_trace.Trace
module Trace_export = Massbft_trace.Trace_export
module Json = Massbft_harness.Bench_check.Json
module Bench_report = Massbft_harness.Bench_report
module Config = Massbft.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* No perturbation: goldens stay byte-identical with profiling on      *)
(* ------------------------------------------------------------------ *)

let golden_path system = "golden/" ^ Golden_fixture.file_of_system system

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let test_goldens_unperturbed () =
  List.iter
    (fun system ->
      let p = Prof.create () in
      let g =
        Golden_fixture.capture
          ~attach:(fun _ sim _ -> Prof.attach p sim)
          ~system ()
      in
      Prof.finish p;
      let recorded = read_file (golden_path system) in
      check_string
        (Config.system_name system ^ " profiled run matches golden")
        recorded
        (Golden_fixture.to_string g);
      (* The committed count equals the recorded (unprofiled) one. *)
      let unprofiled = Golden_fixture.load (golden_path system) in
      check_int
        (Config.system_name system ^ " committed count unperturbed")
        unprofiled.Golden_fixture.committed g.Golden_fixture.committed;
      (* ... and the profiler actually collected: the sequential driver
         slices at lookahead width, so a 6 s run has many slices. *)
      let r = Prof.report p in
      check_bool
        (Config.system_name system ^ " profiler collected slices")
        true
        (r.Prof.rp_seq_slices > 1);
      check_bool
        (Config.system_name system ^ " profiler counted events")
        true (r.Prof.rp_events > 0))
    Config.all_systems

(* ------------------------------------------------------------------ *)
(* Sequential-driver slicing: dispatch order identical under prof      *)
(* ------------------------------------------------------------------ *)

let test_seq_slicing_preserves_order () =
  (* The same event program, with and without a profiler attached: the
     dispatch log (event id, virtual now at fire) must be identical. *)
  let program sim log =
    for i = 0 to 99 do
      ignore
        (Sim.at sim
           (0.001 *. float_of_int (i mod 10))
           (fun () -> log := (i, Sim.now sim) :: !log))
    done;
    (* A cross-window chain: each event schedules the next beyond the
       lookahead so slicing boundaries are actually crossed. *)
    let rec chain n () =
      log := (1000 + n, Sim.now sim) :: !log;
      if n < 20 then ignore (Sim.after sim 0.015 (chain (n + 1)))
    in
    ignore (Sim.at sim 0.0 (chain 0))
  in
  let run_once ~prof () =
    let sim = Sim.create ~shards:2 ~lookahead:0.01 () in
    let log = ref [] in
    let p = Prof.create () in
    if prof then Prof.attach p sim;
    program sim log;
    Sim.run sim ~until:0.5;
    (List.rev !log, p)
  in
  let plain, _ = run_once ~prof:false () in
  let profiled, p = run_once ~prof:true () in
  check_bool "dispatch logs identical" true (plain = profiled);
  check_int "all events fired" (100 + 21) (List.length plain);
  let r = Prof.report p in
  check_bool "sliced at lookahead width" true (r.Prof.rp_seq_slices >= 30)

let test_seq_run_infinite_until () =
  (* until = infinity must profile as a single slice, not loop. *)
  let sim = Sim.create () in
  let p = Prof.create () in
  Prof.attach p sim;
  let fired = ref 0 in
  ignore (Sim.at sim 1.0 (fun () -> incr fired));
  ignore (Sim.at sim 2.0 (fun () -> incr fired));
  Sim.run sim ~until:infinity;
  check_int "events fired" 2 !fired;
  Prof.finish p;
  let r = Prof.report p in
  check_int "single slice" 1 r.Prof.rp_seq_slices;
  check_int "events attributed" 2 r.Prof.rp_events

(* ------------------------------------------------------------------ *)
(* Accounting identities on a 2-shard parallel run                     *)
(* ------------------------------------------------------------------ *)

let run_two_shard_profiled () =
  let sim = Sim.create ~shards:2 ~lookahead:0.01 () in
  let s0 = Sim.shard sim 0 and s1 = Sim.shard sim 1 in
  let p = Prof.create () in
  Prof.attach p sim;
  let count = ref 0 in
  let spin = Array.make 64 0 in
  let rec ping me peer () =
    incr count;
    (* Real work per event: windows must be long relative to the few
       microseconds of scheduler noise between them, or the wall-
       coverage identity drowns on a loaded (or single-core) host. *)
    for i = 0 to 400_000 do
      spin.(i land 63) <- spin.(i land 63) + i
    done;
    Sim.post peer (Sim.now me +. 0.012) (ping peer me)
  in
  ignore (Sim.at s0 0.0 (ping s0 s1));
  ignore (Sim.at s1 0.0 (ping s1 s0));
  Sim.run_parallel sim ~domains:2 ~until:1.0 ();
  Prof.finish p;
  (p, !count)

let test_phase_accounting_two_shards () =
  (* Wall coverage is an end-to-end property of the host, not only of
     the profiler: on a loaded or single-core machine the coordinator
     can lose the CPU between windows, and that gap is honestly
     unattributed. The accounting identities must hold on every run;
     the >= 95% coverage bound gets best-of-3 attempts. *)
  let p, count = run_two_shard_profiled () in
  let p, count =
    let best = ref (p, count) in
    let attempts = ref 1 in
    while
      !attempts < 3
      && (Prof.report (fst !best)).Prof.rp_attributed_share < 0.95
    do
      incr attempts;
      let cand = run_two_shard_profiled () in
      let share p = (Prof.report p).Prof.rp_attributed_share in
      if share (fst cand) > share (fst !best) then best := cand
    done;
    !best
  in
  check_bool "events ran" true (count >= 150);
  let r = Prof.report p in
  check_int "two shards" 2 r.Prof.rp_shards;
  check_int "two domains" 2 r.Prof.rp_domains;
  check_bool "many windows" true (r.Prof.rp_windows >= 50);
  (* Every per-window component is non-negative. *)
  List.iter
    (fun (w : Prof.window) ->
      check_bool "wall >= 0" true (w.Prof.w_wall >= 0.0);
      check_bool "span >= 0" true (w.Prof.w_span >= 0.0);
      check_bool "span <= wall (clock resolution slack)" true
        (w.Prof.w_span <= w.Prof.w_wall +. 1e-6);
      check_bool "events >= 0" true (w.Prof.w_events >= 0);
      check_bool "gc minor >= 0" true (w.Prof.w_gc_minor >= 0);
      check_bool "gc major >= 0" true (w.Prof.w_gc_major >= 0);
      Array.iter
        (fun v -> check_bool "shard exec >= 0" true (v >= 0.0))
        w.Prof.w_exec;
      Array.iter
        (fun v -> check_bool "worker stall >= 0" true (v >= 0.0))
        w.Prof.w_stall)
    (Prof.windows p);
  (* The driver-timeline identity: coordinator + execute-span + merge
     account for the summed window walls to within 5%. *)
  let accounted = r.Prof.rp_coord_s +. r.Prof.rp_execute_span_s +. r.Prof.rp_merge_s in
  let diff = Float.abs (accounted -. r.Prof.rp_attributed_s) in
  check_bool
    (Printf.sprintf "phases sum to window walls (%.4f vs %.4f)" accounted
       r.Prof.rp_attributed_s)
    true
    (diff <= 0.05 *. r.Prof.rp_attributed_s +. 1e-4);
  (* ... and the window walls account for the measured total wall. *)
  check_bool
    (Printf.sprintf "windows cover wall (share %.3f)" r.Prof.rp_attributed_share)
    true
    (r.Prof.rp_attributed_share >= 0.95 && r.Prof.rp_attributed_share <= 1.01);
  (* Ranked attribution covers the same ground and shares sum to ~1. *)
  let share_sum =
    List.fold_left (fun acc ph -> acc +. ph.Prof.p_share) 0.0
      r.Prof.rp_wall_attribution
  in
  check_bool "attribution shares sum to ~1" true
    (Float.abs (share_sum -. 1.0) <= 0.05);
  (* Per-domain busy fractions are well-formed. *)
  List.iter
    (fun (d : Prof.domain_stat) ->
      check_bool "busy in [0,1]" true
        (d.Prof.ds_busy >= 0.0 && d.Prof.ds_busy <= 1.0))
    r.Prof.rp_per_domain;
  (* Shard event counts add up to the total. *)
  let shard_events =
    List.fold_left (fun acc s -> acc + s.Prof.ss_events) 0 r.Prof.rp_per_shard
  in
  check_int "per-shard events sum to total" r.Prof.rp_events shard_events

let test_report_text_and_json_shape () =
  let p, _ = run_two_shard_profiled () in
  let r = Prof.report p in
  let text = Prof_export.text r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  check_bool "text mentions phases" true
    (contains text "execute"
    && contains text "mailbox-merge"
    && contains text "coordinator");
  (* The JSON export parses with the repo's own reader and carries the
     documented keys — the same shape validation CI performs. *)
  let doc = Json.parse (Prof_export.json ~windows:true p) in
  let mem k =
    match Json.member k doc with
    | Some _ -> true
    | None -> false
  in
  List.iter
    (fun k -> check_bool ("prof json has " ^ k) true (mem k))
    [
      "schema_version"; "shards"; "domains"; "windows"; "seq_slices";
      "lookahead_s"; "wall_s"; "sim_end_s"; "events"; "events_per_window";
      "attributed_s"; "attributed_share"; "phases"; "attribution";
      "per_shard"; "per_domain"; "gc"; "window_log";
    ];
  (match Option.bind (Json.member "phases" doc) (Json.member "execute") with
  | Some (Json.Num v) -> check_bool "execute phase positive" true (v > 0.0)
  | _ -> Alcotest.fail "phases.execute missing");
  match Option.bind (Json.member "window_log" doc) Json.to_list with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "window_log empty"

let test_host_trace_export () =
  let p, _ = run_two_shard_profiled () in
  let host = Prof_export.to_trace p in
  check_bool "host trace has events" true (Trace.length host > 0);
  check_int "host trace drops nothing" 0 (Trace.dropped host);
  (* Dual-timeline export: host pids live in the >= 1000 namespace,
     sim pids below it; both present in one parseable document. *)
  let sim_tr = Trace.create () in
  Trace.span sim_tr ~cat:"sim" ~gid:0 ~b:0.0 ~e:1.0 "marker";
  let doc = Json.parse (Trace_export.to_chrome_json ~host sim_tr) in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let pids =
    List.filter_map
      (fun e -> Option.bind (Json.member "pid" e) Json.to_float)
      events
  in
  check_bool "has host pids" true (List.exists (fun pid -> pid >= 1000.0) pids);
  check_bool "has sim pids" true (List.exists (fun pid -> pid < 1000.0) pids);
  (* Host span timestamps are non-negative host-seconds. *)
  List.iter
    (fun (ev : Trace.event) ->
      check_bool "host ts >= 0" true (ev.Trace.ts >= 0.0))
    (Trace.events host)

(* ------------------------------------------------------------------ *)
(* Registry reuse                                                      *)
(* ------------------------------------------------------------------ *)

let test_registry_series () =
  let p, _ = run_two_shard_profiled () in
  let reg = Massbft_obs.Registry.create () in
  Prof.register p reg;
  let samples = Massbft_obs.Registry.collect reg in
  let find name label =
    List.find_opt
      (fun (s : Massbft_obs.Registry.sample) ->
        s.Massbft_obs.Registry.name = name
        && (label = [] || s.Massbft_obs.Registry.labels = label))
      samples
  in
  (match find "massbft_prof_phase_seconds" [ ("phase", "execute") ] with
  | Some { Massbft_obs.Registry.point = Massbft_obs.Registry.P_gauge v; _ } ->
      check_bool "execute seconds positive" true (v > 0.0)
  | _ -> Alcotest.fail "massbft_prof_phase_seconds{phase=execute} missing");
  match find "massbft_prof_windows_total" [] with
  | Some { Massbft_obs.Registry.point = Massbft_obs.Registry.P_counter n; _ }
    ->
      check_bool "windows counted" true (n > 0)
  | _ -> Alcotest.fail "massbft_prof_windows_total missing"

(* ------------------------------------------------------------------ *)
(* Misuse guards                                                       *)
(* ------------------------------------------------------------------ *)

let test_double_attach_rejected () =
  let sim = Sim.create () in
  let p = Prof.create () in
  Prof.attach p sim;
  Alcotest.check_raises "second attach rejected"
    (Invalid_argument "Prof.attach: already attached") (fun () ->
      Prof.attach p (Sim.create ()))

(* ------------------------------------------------------------------ *)
(* Macro row: attribution and overhead budget                          *)
(* ------------------------------------------------------------------ *)

(* The acceptance numbers for the MassBFT macro row under the parallel
   driver: >= 95% of wall attributed to named phases, and profiling
   overhead within budget. Wall-clock comparisons on shared CI hosts
   are noisy, so the default overhead bound is lenient (15%, min-of-2
   runs); MASSBFT_STRICT_PERF=1 asserts the real 2% budget (min-of-4),
   which holds on an idle host. *)
let test_macro_attribution_and_overhead () =
  let strict =
    match Sys.getenv_opt "MASSBFT_STRICT_PERF" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let runs = if strict then 4 else 2 in
  let min_wall ~profiled =
    let best = ref infinity in
    let last_prof = ref None in
    for _ = 1 to runs do
      let prof = if profiled then Some (Prof.create ()) else None in
      let m = Bench_report.run_macro ~quick:true ?prof ~domains:4 ~system:Config.Massbft () in
      if m.Bench_report.wall_s < !best then best := m.Bench_report.wall_s;
      last_prof := prof
    done;
    (!best, !last_prof)
  in
  let wall_plain, _ = min_wall ~profiled:false in
  let wall_profiled, prof = min_wall ~profiled:true in
  (match prof with
  | None -> Alcotest.fail "profiler missing"
  | Some p ->
      let r = Prof.report p in
      check_bool
        (Printf.sprintf "attribution >= 95%% (got %.1f%%)"
           (100.0 *. r.Prof.rp_attributed_share))
        true
        (r.Prof.rp_attributed_share >= 0.95);
      check_bool "parallel windows profiled" true (r.Prof.rp_windows > 0));
  let budget = if strict then 0.02 else 0.15 in
  let overhead = (wall_profiled -. wall_plain) /. wall_plain in
  check_bool
    (Printf.sprintf "profiling overhead %.1f%% within %.0f%% budget"
       (100.0 *. overhead) (100.0 *. budget))
    true
    (overhead <= budget)

let () =
  Alcotest.run "massbft_prof"
    [
      ( "no-perturbation",
        [
          Alcotest.test_case "goldens byte-identical with prof" `Slow
            test_goldens_unperturbed;
          Alcotest.test_case "seq slicing preserves dispatch order" `Quick
            test_seq_slicing_preserves_order;
          Alcotest.test_case "run ~until:infinity single slice" `Quick
            test_seq_run_infinite_until;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "phase sums on 2-shard run" `Quick
            test_phase_accounting_two_shards;
          Alcotest.test_case "report text and json shape" `Quick
            test_report_text_and_json_shape;
          Alcotest.test_case "host-timeline trace export" `Quick
            test_host_trace_export;
          Alcotest.test_case "registry series" `Quick test_registry_series;
          Alcotest.test_case "double attach rejected" `Quick
            test_double_attach_rejected;
        ] );
      ( "macro",
        [
          Alcotest.test_case "attribution and overhead budget" `Slow
            test_macro_attribution_and_overhead;
        ] );
    ]
