(* Tests for the chaos layer: the fault-schedule DSL (round-trip,
   validation, heal times), seeded determinism of the fuzzer (same seed
   => byte-identical schedule and result-identical run), a miniature
   campaign, detection + ddmin-shrinking of a deliberately intolerable
   schedule, and the fault-drill regression (throughput recovers after
   a healed group crash; tampered chunks never reach a ledger). *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Stats = Massbft_util.Stats
module Rng = Massbft_util.Rng
module Clusters = Massbft_harness.Clusters
module F = Massbft_faults.Fault_spec
module Injector = Massbft_faults.Injector
module Invariants = Massbft_faults.Invariants
module Chaos = Massbft_faults.Chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Same small cluster the engine tests use: 3 groups x 4 nodes. *)
let small_cfg ?(system = Config.Massbft) () =
  {
    (Config.default ~system ()) with
    Config.max_batch = 40;
    pipeline = 4;
    workload_scale = 0.001;
  }

let small_spec () = Clusters.nationwide ~nodes_per_group:4 ()

(* ------------------------------------------------------------------ *)
(* DSL                                                                 *)
(* ------------------------------------------------------------------ *)

(* One event of every variant, with representative field values. *)
let kitchen_sink : F.schedule =
  [
    { F.at = 1.0; fault = F.Crash_node { Topology.g = 0; n = 1 } };
    { F.at = 2.5; fault = F.Recover_node { Topology.g = 0; n = 1 } };
    { F.at = 3.0; fault = F.Crash_group 1 };
    { F.at = 4.25; fault = F.Recover_group 1 };
    { F.at = 0.5; fault = F.Partition { groups = [ 0; 2 ]; for_s = 1.5 } };
    {
      F.at = 1.125;
      fault =
        F.Link_drop { src_g = 0; dst_g = 1; every = 3; cls = F.Bulk; for_s = 2.0 };
    };
    {
      F.at = 2.0;
      fault =
        F.Link_delay
          { src_g = 1; dst_g = 2; add_s = 0.04; cls = F.Control; for_s = 1.0 };
    };
    {
      F.at = 2.75;
      fault =
        F.Link_dup
          { src_g = 2; dst_g = 0; copies = 2; every = 2; cls = F.Any; for_s = 1.0 };
    };
    { F.at = 5.0; fault = F.Wan_degrade { g = 2; factor = 0.25; for_s = 2.0 } };
    { F.at = 5.5; fault = F.Lan_degrade { g = 0; factor = 0.5; for_s = 1.0 } };
    {
      F.at = 6.0;
      fault = F.Slow_cpu { addr = { Topology.g = 1; n = 3 }; factor = 4.0; for_s = 2.0 };
    };
  ]

let test_round_trip () =
  let text = F.to_string kitchen_sink in
  let back = F.of_string text in
  check_bool "of_string (to_string s) = s" true (back = kitchen_sink);
  check_string "second round-trip is byte-identical" text (F.to_string back)

let test_parse_comments_and_errors () =
  let sched =
    F.of_string
      "# a comment\n\n@1 crash-node g0/n2\n   \n# another\n@2 recover-node g0/n2\n"
  in
  check_int "comments and blanks skipped" 2 (List.length sched);
  let raises text =
    match F.of_string text with
    | _ -> false
    | exception F.Parse_error _ -> true
  in
  check_bool "unknown fault rejected" true (raises "@1 explode g0");
  check_bool "missing @time rejected" true (raises "crash-node g0/n0");
  check_bool "bad address rejected" true (raises "@1 crash-node n0/g0");
  check_bool "missing keyword rejected" true (raises "@1 partition g0")

let test_validate () =
  let gs = [| 4; 4; 4 |] in
  let ok s = F.validate ~group_sizes:gs s = Ok () in
  check_bool "kitchen sink validates" true (ok kitchen_sink);
  let bad fault = not (ok [ { F.at = 1.0; fault } ]) in
  check_bool "node out of range" true
    (bad (F.Crash_node { Topology.g = 0; n = 9 }));
  check_bool "group out of range" true (bad (F.Crash_group 7));
  check_bool "LAN link fault rejected" true
    (bad (F.Link_drop { src_g = 1; dst_g = 1; every = 1; cls = F.Any; for_s = 1.0 }));
  check_bool "degrade factor > 1 rejected" true
    (bad (F.Wan_degrade { g = 0; factor = 1.5; for_s = 1.0 }));
  check_bool "slow-cpu factor < 1 rejected" true
    (bad (F.Slow_cpu { addr = { Topology.g = 0; n = 0 }; factor = 0.5; for_s = 1.0 }));
  check_bool "negative time rejected" true
    (F.validate ~group_sizes:gs
       [ { F.at = -1.0; fault = F.Crash_group 0 } ]
    <> Ok ())

let test_heal_time () =
  let feq = Alcotest.(check (float 1e-9)) in
  feq "empty schedule heals at 0" 0.0 (F.heal_time []);
  feq "window fault heals when its window closes" 3.5
    (F.heal_time
       [ { F.at = 1.5; fault = F.Wan_degrade { g = 0; factor = 0.5; for_s = 2.0 } } ]);
  feq "crash heals at its recover event" 4.25
    (F.heal_time
       [
         { F.at = 3.0; fault = F.Crash_group 1 };
         { F.at = 4.25; fault = F.Recover_group 1 };
       ]);
  check_bool "unrecovered crash never heals" true
    (F.heal_time [ { F.at = 1.0; fault = F.Crash_node { Topology.g = 0; n = 1 } } ]
    = infinity);
  feq "recovery of the wrong node does not heal the crash" infinity
    (F.heal_time
       [
         { F.at = 1.0; fault = F.Crash_node { Topology.g = 0; n = 1 } };
         { F.at = 2.0; fault = F.Recover_node { Topology.g = 0; n = 2 } };
       ])

let test_sorted () =
  let s = F.sorted kitchen_sink in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a.F.at <= b.F.at && nondecreasing rest
    | _ -> true
  in
  check_bool "sorted by time" true (nondecreasing s);
  check_int "same events" (List.length kitchen_sink) (List.length s)

(* ------------------------------------------------------------------ *)
(* Seeded determinism                                                  *)
(* ------------------------------------------------------------------ *)

let test_same_seed_same_schedule () =
  let cfg = small_cfg () and spec = small_spec () in
  let gen () =
    let rng = Rng.create 42L in
    F.to_string (Chaos.gen_schedule rng ~cfg ~spec ~duration:8.0)
  in
  check_string "same seed generates a byte-identical schedule" (gen ()) (gen ());
  let other =
    let rng = Rng.create 43L in
    F.to_string (Chaos.gen_schedule rng ~cfg ~spec ~duration:8.0)
  in
  check_bool "a different seed generates a different schedule" true
    (not (String.equal (gen ()) other))

let test_same_seed_same_run () =
  (* The acceptance bar for reproducibility: drilling the same seed
     twice yields a byte-identical schedule and an identical result. *)
  let cfg = small_cfg () and spec = small_spec () in
  let go () =
    Chaos.drill ~duration:3.0 ~shrink_failures:false ~spec ~cfg ~seed:7L ()
  in
  let a = go () and b = go () in
  check_string "byte-identical schedule"
    (F.to_string a.Chaos.outcome.Chaos.schedule)
    (F.to_string b.Chaos.outcome.Chaos.schedule);
  check_int "identical executed count" a.Chaos.outcome.Chaos.executed
    b.Chaos.outcome.Chaos.executed;
  check_int "identical injection count" a.Chaos.outcome.Chaos.injected
    b.Chaos.outcome.Chaos.injected;
  check_bool "identical verdict" true
    (Chaos.failed a.Chaos.outcome = Chaos.failed b.Chaos.outcome)

(* ------------------------------------------------------------------ *)
(* Campaign and shrinking                                              *)
(* ------------------------------------------------------------------ *)

let test_mini_campaign () =
  let cfg = small_cfg () and spec = small_spec () in
  let r =
    Chaos.campaign ~duration:3.0
      ~systems:[ Config.Massbft; Config.Baseline ]
      ~spec ~cfg ~seeds:[ 1L; 2L ] ()
  in
  check_int "2 systems x 2 seeds" 4 r.Chaos.total;
  List.iter
    (fun (d : Chaos.drill_result) ->
      check_bool
        (Format.asprintf "%a" Chaos.pp_drill d)
        false
        (Chaos.failed d.Chaos.outcome);
      check_bool "made progress under faults" true
        (d.Chaos.outcome.Chaos.executed > 0);
      check_bool "faults were injected" true (d.Chaos.outcome.Chaos.injected > 0))
    r.Chaos.results

let test_shrink_minimal () =
  (* ddmin against a synthetic oracle: failure iff the schedule still
     contains the g1 crash. The other ten events must all be dropped. *)
  let is_crash e = e.F.fault = F.Crash_group 1 in
  let fails s = List.exists is_crash s in
  let shrunk = Chaos.shrink ~fails (F.sorted kitchen_sink) in
  check_int "shrunk to the single culprit event" 1 (List.length shrunk);
  check_bool "and it is the crash" true (List.for_all is_crash shrunk);
  let healthy = List.filter (fun e -> not (is_crash e)) kitchen_sink in
  check_bool "a passing schedule is returned unchanged" true
    (Chaos.shrink ~fails healthy == healthy)

(* GeoBFT has no global retransmission: an (unhealed) group crash stalls
   the round barrier forever, which the liveness watchdog must flag.
   This is the "deliberately broken" case — the chaos generator never
   draws it, but the checkers must catch it when it happens. *)
let geobft_stalls schedule =
  let cfg = small_cfg ~system:Config.Geobft () and spec = small_spec () in
  let sim = Sim.create () in
  let topo = Topology.create sim spec in
  let engine = Engine.create sim topo cfg in
  let inj = Injector.create ~spec ~schedule engine sim topo in
  (* heal_by is forced: the schedule deliberately never recovers, and
     the point is to assert the stall. *)
  let inv = Invariants.create ~liveness_bound_s:1.0 ~heal_by:2.0 engine sim in
  Engine.start engine;
  Injector.arm inj;
  Invariants.attach inv;
  Sim.run sim ~until:6.0;
  Invariants.finalize inv;
  List.exists
    (fun (v : Invariants.violation) -> v.Invariants.check = "liveness")
    (Invariants.violations inv)

let test_broken_invariant_detected_and_shrunk () =
  let noise =
    [
      {
        F.at = 0.8;
        fault =
          F.Link_delay
            { src_g = 0; dst_g = 1; add_s = 0.02; cls = F.Any; for_s = 0.5 };
      };
      {
        F.at = 1.0;
        fault =
          F.Slow_cpu { addr = { Topology.g = 2; n = 1 }; factor = 3.0; for_s = 0.5 };
      };
      { F.at = 1.2; fault = F.Wan_degrade { g = 1; factor = 0.5; for_s = 0.5 } };
    ]
  in
  let culprit = { F.at = 1.5; fault = F.Crash_group 0 } in
  let schedule = F.sorted (culprit :: noise) in
  check_bool "the intolerable schedule is detected" true (geobft_stalls schedule);
  check_bool "the benign noise alone passes" false (geobft_stalls noise);
  let shrunk = Chaos.shrink ~fails:geobft_stalls schedule in
  check_string "shrinks to the bare group crash"
    (F.to_string [ culprit ])
    (F.to_string shrunk)

(* ------------------------------------------------------------------ *)
(* Fault-drill regression                                              *)
(* ------------------------------------------------------------------ *)

let test_drill_recovery_and_tamper_safety () =
  (* The §VI-E drill at test scale: Byzantine chunk tampering from 1 s,
     a whole data center down at 4 s, restored at 6 s. Invariants stay
     green throughout (a tampered chunk reaching a ledger would break
     replica_prefix / cross_chain / exec_determinism), and throughput
     well after the restore recovers to >= 80% of the pre-crash rate. *)
  let crash_at = 4.0 and recover_at = 6.0 and until = 18.0 in
  let cfg =
    {
      (small_cfg ())
      with
      Config.byzantine_per_group = 1;
      byzantine_from_s = 1.0;
    }
  in
  let spec = small_spec () in
  let schedule =
    F.of_string
      (Printf.sprintf "@%g crash-group g0\n@%g recover-group g0\n" crash_at
         recover_at)
  in
  let sim = Sim.create () in
  let topo = Topology.create sim spec in
  let engine = Engine.create sim topo cfg in
  let inj = Injector.create ~spec ~schedule engine sim topo in
  let inv =
    Invariants.create ~heal_by:(F.heal_time schedule) engine sim
  in
  Engine.start engine;
  Injector.arm inj;
  Invariants.attach inv;
  Sim.run sim ~until;
  Invariants.finalize inv;
  List.iter
    (fun v -> Alcotest.fail (Invariants.violation_to_string v))
    (Invariants.violations inv);
  check_int "both events injected" 2 (Injector.injected_total inj);
  let series =
    Stats.Timeseries.rate_series (Engine.metrics engine).Metrics.txn_rate
  in
  let window lo hi =
    let rates =
      List.filter_map
        (fun (t, r) -> if t >= lo && t < hi then Some r else None)
        series
    in
    match rates with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 rates /. float_of_int (List.length rates)
  in
  let before = window 1.0 crash_at in
  let after = window (until -. 4.0) (until -. 1.0) in
  check_bool "committing before the crash" true (before > 0.0);
  check_bool
    (Printf.sprintf "throughput recovered to >= 80%% (%.0f -> %.0f tps)" before
       after)
    true
    (after >= 0.8 *. before)

let () =
  Alcotest.run "faults"
    [
      ( "dsl",
        [
          Alcotest.test_case "round-trip" `Quick test_round_trip;
          Alcotest.test_case "comments and parse errors" `Quick
            test_parse_comments_and_errors;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "heal-time" `Quick test_heal_time;
          Alcotest.test_case "sorted" `Quick test_sorted;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same schedule" `Quick
            test_same_seed_same_schedule;
          Alcotest.test_case "same seed, same run" `Quick
            test_same_seed_same_run;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "mini campaign" `Slow test_mini_campaign;
          Alcotest.test_case "ddmin is 1-minimal" `Quick test_shrink_minimal;
          Alcotest.test_case "broken invariant: detect and shrink" `Slow
            test_broken_invariant_detected_and_shrunk;
        ] );
      ( "drill",
        [
          Alcotest.test_case "recovery and tamper safety" `Slow
            test_drill_recovery_and_tamper_safety;
        ] );
    ]
