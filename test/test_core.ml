(* Tests for the MassBFT core modules: Algorithm 1 (transfer plans),
   vector timestamps and Prec, Algorithm 2 (deterministic ordering,
   including agreement over randomized stream interleavings), the
   chunker, and the optimistic rebuild with DoS blacklisting. *)

open Massbft
module Rng = Massbft_util.Rng
module Merkle = Massbft_crypto.Merkle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Transfer plan (Algorithm 1)                                         *)
(* ------------------------------------------------------------------ *)

let test_plan_paper_case_study () =
  (* §IV-B: 4-node group sends to 7-node group. *)
  let p = Transfer_plan.generate ~n1:4 ~n2:7 in
  check_int "n_total = lcm(4,7)" 28 p.Transfer_plan.n_total;
  check_int "each sender ships 7" 7 p.Transfer_plan.nc_send;
  check_int "each receiver takes 4" 4 p.Transfer_plan.nc_recv;
  check_int "n_parity = 7*1 + 4*2" 15 p.Transfer_plan.n_parity;
  check_int "n_data = 13" 13 p.Transfer_plan.n_data;
  Alcotest.(check (float 0.01)) "2.15 entry copies" 2.15 (Transfer_plan.redundancy p)

let test_plan_equal_groups () =
  let p = Transfer_plan.generate ~n1:7 ~n2:7 in
  check_int "n_total" 7 p.Transfer_plan.n_total;
  check_int "nc_send" 1 p.Transfer_plan.nc_send;
  check_int "parity = 2 + 2" 4 p.Transfer_plan.n_parity;
  check_int "data = 3" 3 p.Transfer_plan.n_data

let test_plan_bijectivity () =
  (* Every chunk is sent exactly once and received exactly once. *)
  List.iter
    (fun (n1, n2) ->
      let p = Transfer_plan.generate ~n1 ~n2 in
      let sent = Array.make p.Transfer_plan.n_total 0 in
      let received = Array.make p.Transfer_plan.n_total 0 in
      for s = 0 to n1 - 1 do
        List.iter
          (fun (c, r) ->
            sent.(c) <- sent.(c) + 1;
            check_bool "receiver in range" true (r >= 0 && r < n2))
          (Transfer_plan.sends_of p ~sender:s)
      done;
      for r = 0 to n2 - 1 do
        List.iter
          (fun (c, s) ->
            received.(c) <- received.(c) + 1;
            check_bool "sender in range" true (s >= 0 && s < n1))
          (Transfer_plan.receives_of p ~receiver:r)
      done;
      Array.iter (fun k -> check_int "sent once" 1 k) sent;
      Array.iter (fun k -> check_int "received once" 1 k) received)
    [ (4, 7); (7, 4); (7, 7); (3, 5); (10, 10); (4, 40); (13, 9) ]

let test_plan_views_agree () =
  (* The sender-side and receiver-side plan constructions (lines 7-10 vs
     11-14 of Algorithm 1) describe the same set of tuples. *)
  let p = Transfer_plan.generate ~n1:5 ~n2:8 in
  let from_senders =
    List.concat
      (List.init 5 (fun s ->
           List.map (fun (c, r) -> (c, s, r)) (Transfer_plan.sends_of p ~sender:s)))
    |> List.sort compare
  in
  let from_receivers =
    List.concat
      (List.init 8 (fun r ->
           List.map
             (fun (c, s) -> (c, s, r))
             (Transfer_plan.receives_of p ~receiver:r)))
    |> List.sort compare
  in
  Alcotest.(check (list (triple int int int)))
    "same plan" from_senders from_receivers

let test_plan_worst_case_recoverable () =
  (* Even when the f1 faulty senders' and f2 faulty receivers' chunks
     are disjoint, at least n_data correct chunks survive. *)
  List.iter
    (fun (n1, n2) ->
      let p = Transfer_plan.generate ~n1 ~n2 in
      let f1 = (n1 - 1) / 3 and f2 = (n2 - 1) / 3 in
      (* Lose the chunks of the last f1 senders and, disjointly, the
         first f2 receivers' chunks. *)
      let lost = Hashtbl.create 16 in
      for s = n1 - f1 to n1 - 1 do
        List.iter (fun (c, _) -> Hashtbl.replace lost c ()) (Transfer_plan.sends_of p ~sender:s)
      done;
      for r = 0 to f2 - 1 do
        List.iter (fun (c, _) -> Hashtbl.replace lost c ()) (Transfer_plan.receives_of p ~receiver:r)
      done;
      let surviving = p.Transfer_plan.n_total - Hashtbl.length lost in
      check_bool
        (Printf.sprintf "(%d,%d): %d survive >= %d" n1 n2 surviving p.Transfer_plan.n_data)
        true
        (surviving >= p.Transfer_plan.n_data))
    [ (4, 7); (7, 7); (10, 13); (4, 4); (19, 19); (16, 12) ]

let test_plan_invalid () =
  Alcotest.check_raises "empty group"
    (Invalid_argument "Transfer_plan.generate: empty group") (fun () ->
      ignore (Transfer_plan.generate ~n1:0 ~n2:4))

let prop_plan_balance =
  QCheck.Test.make ~name:"plan load is perfectly balanced" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (n1, n2) ->
      let p = Transfer_plan.generate ~n1 ~n2 in
      List.for_all
        (fun s ->
          List.length (Transfer_plan.sends_of p ~sender:s)
          = p.Transfer_plan.nc_send)
        (List.init n1 Fun.id)
      && List.for_all
           (fun r ->
             List.length (Transfer_plan.receives_of p ~receiver:r)
             = p.Transfer_plan.nc_recv)
           (List.init n2 Fun.id))

(* ------------------------------------------------------------------ *)
(* Bijective (non-coded) sending plan — §IV-A                          *)
(* ------------------------------------------------------------------ *)

let test_bijective_equal_groups_matches_paper () =
  (* §IV-A's Figure 5a: 4-node sender, 7-node receiver, f1+f2+1 = 4
     full copies (vs 28/13 ~ 2.15 for the encoded plan). *)
  let p = Bijective_plan.generate ~n1:4 ~n2:7 in
  check_int "4 transfers" 4 (Bijective_plan.transfer_count p);
  let p44 = Bijective_plan.generate ~n1:4 ~n2:4 in
  check_int "f1+f2+1 = 3 for 4/4" 3 (Bijective_plan.transfer_count p44);
  let p77 = Bijective_plan.generate ~n1:7 ~n2:7 in
  check_int "f1+f2+1 = 5 for 7/7" 5 (Bijective_plan.transfer_count p77)

let test_bijective_survives_all_fault_patterns () =
  (* Exhaustive adversary over every f1-subset of senders and f2-subset
     of receivers: some transfer must survive. *)
  let rec subsets k lst =
    if k = 0 then [ [] ]
    else
      match lst with
      | [] -> []
      | x :: rest ->
          List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  List.iter
    (fun (n1, n2) ->
      let p = Bijective_plan.generate ~n1 ~n2 in
      let f1 = (n1 - 1) / 3 and f2 = (n2 - 1) / 3 in
      List.iter
        (fun fs ->
          List.iter
            (fun fr ->
              check_bool
                (Printf.sprintf "(%d,%d) survives" n1 n2)
                true
                (Bijective_plan.survives p ~faulty_senders:fs
                   ~faulty_receivers:fr))
            (subsets f2 (List.init n2 Fun.id)))
        (subsets f1 (List.init n1 Fun.id)))
    [ (4, 4); (4, 7); (7, 4); (7, 7); (2, 10); (1, 7) ]

let test_bijective_loads_balanced () =
  let p = Bijective_plan.generate ~n1:3 ~n2:13 in
  let loads = List.init 3 (fun s -> List.length (Bijective_plan.sends_of p ~sender:s)) in
  let mx = List.fold_left max 0 loads and mn = List.fold_left min 99 loads in
  check_bool "sender loads within 1" true (mx - mn <= 1)

let prop_bijective_guarantee =
  (* Randomized adversaries over a wide range of group-size pairs. *)
  QCheck.Test.make ~name:"bijective plan survives random adversaries" ~count:200
    QCheck.(triple (int_range 1 20) (int_range 1 20) (int_range 0 1000))
    (fun (n1, n2, seed) ->
      let p = Bijective_plan.generate ~n1 ~n2 in
      let rng = Rng.create (Int64.of_int seed) in
      let f1 = (n1 - 1) / 3 and f2 = (n2 - 1) / 3 in
      let pick n k =
        let arr = Array.init n Fun.id in
        Rng.shuffle rng arr;
        Array.to_list (Array.sub arr 0 k)
      in
      Bijective_plan.survives p ~faulty_senders:(pick n1 f1)
        ~faulty_receivers:(pick n2 f2))

(* ------------------------------------------------------------------ *)
(* Vts                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vts_create () =
  let e = Vts.create ~ng:3 ~gid:1 ~seq:5 in
  check_int "own element is seq" 5 e.Vts.vts.(1);
  check_bool "own element set" true e.Vts.set.(1);
  check_bool "others inferred" false (e.Vts.set.(0) || e.Vts.set.(2))

let test_vts_set_and_infer () =
  let e = Vts.create ~ng:3 ~gid:0 ~seq:1 in
  Vts.infer_element e 1 4;
  check_int "inferred bound" 4 e.Vts.vts.(1);
  Vts.infer_element e 1 2;
  check_int "inference only raises" 4 e.Vts.vts.(1);
  Vts.set_element e 1 7;
  check_bool "now set" true e.Vts.set.(1);
  Vts.infer_element e 1 100;
  check_int "set element immune to inference" 7 e.Vts.vts.(1);
  (* Idempotent equal re-set; conflicting re-set raises. *)
  Vts.set_element e 1 7;
  check_bool "conflicting set raises" true
    (try
       Vts.set_element e 1 8;
       false
     with Invalid_argument _ -> true);
  check_bool "set below inferred bound raises" true
    (try
       let e2 = Vts.create ~ng:3 ~gid:0 ~seq:1 in
       Vts.infer_element e2 1 9;
       Vts.set_element e2 1 3;
       false
     with Invalid_argument _ -> true)

let mk_vts ~ng ~gid ~seq assignments =
  let e = Vts.create ~ng ~gid ~seq in
  List.iter (fun (j, v) -> Vts.set_element e j v) assignments;
  e

let test_vts_paper_example () =
  (* Figure 6: e_{2,6} with VTS <6,6,4> precedes e_{3,5} with <6,6,5>
     (groups are 1-indexed in the paper; 0-indexed here). *)
  let e26 = mk_vts ~ng:3 ~gid:1 ~seq:6 [ (0, 6); (2, 4) ] in
  let e35 = mk_vts ~ng:3 ~gid:2 ~seq:5 [ (0, 6); (1, 6) ] in
  (* e26: <6,6,4>, e35: <6,6,5> *)
  check_bool "e26 precedes e35" true (Vts.prec e26 e35);
  check_bool "e35 does not precede e26" false (Vts.prec e35 e26)

let test_vts_tie_break () =
  (* Identical complete VTSs order by seq then gid (Lemma V.4). *)
  let a = mk_vts ~ng:2 ~gid:0 ~seq:3 [ (1, 3) ] in
  let b = mk_vts ~ng:2 ~gid:1 ~seq:3 [ (0, 3) ] in
  (* Both <3,3>: a.seq = b.seq = 3, tie to gid. *)
  check_bool "gid breaks tie" true (Vts.prec a b);
  check_bool "reverse false" false (Vts.prec b a);
  check_int "compare_complete consistent" (-1) (Vts.compare_complete a b)

let test_vts_inferred_blocks_decision () =
  (* An inferred element on e1 means e1 cannot be proven first; an
     inferred element on e2 at an equal value blocks too. *)
  let e1 = Vts.create ~ng:2 ~gid:0 ~seq:1 in
  (* e1 = <1, 0?>, e2 = <0?, 1> *)
  let e2 = Vts.create ~ng:2 ~gid:1 ~seq:1 in
  check_bool "cannot order yet (e1 first elem vs inferred equal)" false
    (Vts.prec e1 e2 && Vts.prec e2 e1);
  (* Set e2's element 0 above e1's: decision becomes possible. *)
  Vts.set_element e2 0 5;
  check_bool "now e1 provably first" true (Vts.prec e1 e2)

let test_vts_strictly_less_beats_inferred () =
  (* e1.vts[j] set and strictly below e2's inferred bound: e2's true
     value can only grow, so the decision is safe. *)
  let e1 = mk_vts ~ng:2 ~gid:0 ~seq:2 [ (1, 3) ] in
  let e2 = Vts.create ~ng:2 ~gid:1 ~seq:9 in
  Vts.infer_element e2 0 7;
  (* e1 = <2,3> complete; e2 = <7?,9>. 2 < 7 at element 0. *)
  check_bool "set-less-than-inferred decides" true (Vts.prec e1 e2)

let prop_vts_total_order =
  (* Over complete VTSs, prec must agree with compare_complete. *)
  QCheck.Test.make ~name:"prec = compare over complete VTSs" ~count:200
    QCheck.(
      pair
        (pair (int_range 0 2) (int_range 1 20))
        (pair (int_range 0 2) (int_range 1 20)))
    (fun ((g1, s1), (g2, s2)) ->
      QCheck.assume (g1 <> g2 || s1 <> s2);
      let rng = Rng.create (Int64.of_int ((g1 * 100) + s1 + (g2 * 10) + s2)) in
      let fill e =
        for j = 0 to 2 do
          if not e.Vts.set.(j) then Vts.set_element e j (Rng.int rng 20)
        done;
        e
      in
      let e1 = fill (Vts.create ~ng:3 ~gid:g1 ~seq:s1) in
      let e2 = fill (Vts.create ~ng:3 ~gid:g2 ~seq:s2) in
      let c = Vts.compare_complete e1 e2 in
      Vts.prec e1 e2 = (c < 0) && Vts.prec e2 e1 = (c > 0))

(* ------------------------------------------------------------------ *)
(* Orderer (Algorithm 2)                                               *)
(* ------------------------------------------------------------------ *)

(* A reference world: ng groups, each proposing a fixed number of
   entries; group j assigns its clock to every foreign entry in a global
   "assignment schedule". We then feed the per-group timestamp streams
   to orderers in different interleavings and demand identical
   execution sequences. *)

type world = {
  ng : int;
  streams : (Types.entry_id * int) list array;
      (* per source group: (entry, ts) in stream order *)
  total_entries : int;
}

(* Build a world from a random permutation: entries become globally
   visible in some order; when entry e appears, every group j <> e.gid
   assigns clk_j = number of group j's own entries already visible. *)
let make_world rng ~ng ~per_group =
  let eids =
    Array.of_list
      (List.concat
         (List.init ng (fun g ->
              List.init per_group (fun k -> { Types.gid = g; seq = k + 1 }))))
  in
  (* Visibility order must respect per-group seq order: shuffle then
     stable-sort lightly by seq within groups. *)
  Rng.shuffle rng eids;
  let seen = Array.make ng 0 in
  let order = ref [] in
  (* Greedily emit entries whose predecessor has been emitted. *)
  let remaining = Array.to_list eids in
  let rec emit remaining =
    match remaining with
    | [] -> ()
    | _ ->
        let ready, blocked =
          List.partition
            (fun (e : Types.entry_id) -> e.Types.seq = seen.(e.Types.gid) + 1)
            remaining
        in
        (match ready with
        | [] -> failwith "world construction stuck"
        | e :: rest ->
            seen.(e.Types.gid) <- e.Types.seq;
            order := e :: !order;
            emit (rest @ blocked))
  in
  emit remaining;
  let visible = List.rev !order in
  let clocks = Array.make ng 0 in
  let streams = Array.make ng [] in
  List.iter
    (fun (e : Types.entry_id) ->
      clocks.(e.Types.gid) <- e.Types.seq;
      for j = 0 to ng - 1 do
        if j <> e.Types.gid then streams.(j) <- (e, clocks.(j)) :: streams.(j)
      done)
    visible;
  {
    ng;
    streams = Array.map List.rev streams;
    total_entries = ng * per_group;
  }

(* Feed the world's streams to an orderer, interleaving them according
   to [rng]; returns the execution sequence. *)
let run_orderer world rng =
  let executed = ref [] in
  let o =
    Orderer.create ~ng:world.ng ~on_execute:(fun eid -> executed := eid :: !executed)
  in
  let cursors = Array.map (fun l -> ref l) world.streams in
  let pending () =
    List.filter (fun j -> !(cursors.(j)) <> []) (List.init world.ng Fun.id)
  in
  let rec loop () =
    match pending () with
    | [] -> ()
    | js ->
        let j = List.nth js (Rng.int rng (List.length js)) in
        (match !(cursors.(j)) with
        | [] -> ()
        | (eid, ts) :: rest ->
            cursors.(j) := rest;
            Orderer.on_timestamp o ~from_gid:j ~eid ~ts);
        loop ()
  in
  loop ();
  (List.rev !executed, o)

let test_orderer_single_group () =
  let executed = ref [] in
  let o = Orderer.create ~ng:1 ~on_execute:(fun e -> executed := e :: !executed) in
  (* With one group there are no foreign timestamps; nothing can ever be
     fed, and nothing executes through on_timestamp — the engine orders
     single-group worlds trivially elsewhere. Heads exist though. *)
  check_bool "head is (0,1)" true
    (Types.entry_id_equal (Orderer.head_of o 0) { Types.gid = 0; seq = 1 })

let test_orderer_executes_all () =
  let rng = Rng.create 31L in
  let world = make_world rng ~ng:3 ~per_group:10 in
  let executed, o = run_orderer world (Rng.create 32L) in
  (* All but possibly the final tail (whose successors never get
     timestamps) execute; at least 80% must flow. *)
  check_bool
    (Printf.sprintf "most entries executed (%d/%d)" (List.length executed)
       world.total_entries)
    true
    (List.length executed >= world.total_entries * 8 / 10);
  check_int "count matches" (List.length executed) (Orderer.executed_count o)

let test_orderer_per_group_fifo () =
  (* Entries of the same group execute in seq order (Lemma V.5). *)
  let rng = Rng.create 33L in
  let world = make_world rng ~ng:3 ~per_group:12 in
  let executed, _ = run_orderer world (Rng.create 34L) in
  let last = Array.make 3 0 in
  List.iter
    (fun (e : Types.entry_id) ->
      check_int
        (Printf.sprintf "group %d FIFO" e.Types.gid)
        (last.(e.Types.gid) + 1)
        e.Types.seq;
      last.(e.Types.gid) <- e.Types.seq)
    executed

let test_orderer_agreement_across_interleavings () =
  (* The heart of Theorem V.6: different nodes receive the same per-
     group streams in different interleavings and must execute the same
     prefix in the same order. *)
  for trial = 1 to 10 do
    let rng = Rng.create (Int64.of_int (100 + trial)) in
    let world = make_world rng ~ng:3 ~per_group:8 in
    let runs =
      List.init 6 (fun k ->
          fst (run_orderer world (Rng.create (Int64.of_int ((trial * 31) + k)))))
    in
    match runs with
    | first :: rest ->
        List.iteri
          (fun k other ->
            let common = min (List.length first) (List.length other) in
            let take n l = List.filteri (fun i _ -> i < n) l in
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "trial %d run %d agrees" trial k)
              (List.map (fun (e : Types.entry_id) -> (e.Types.gid, e.Types.seq)) (take common first))
              (List.map (fun (e : Types.entry_id) -> (e.Types.gid, e.Types.seq)) (take common other)))
          rest
    | [] -> ()
  done

let test_orderer_fast_group_not_blocked () =
  (* A fast group's entries must not wait for a slow group's future
     entries: with group 1 far ahead, its entries flow as soon as the
     slow groups' clocks pass them. *)
  let executed = ref [] in
  let o = Orderer.create ~ng:2 ~on_execute:(fun e -> executed := e :: !executed) in
  (* Group 0 proposes e(0,1), e(0,2)...; group 1 assigns clocks 0,0,..
     since it proposed nothing. Group 1's stream: ts=0 for each of group
     0's entries. *)
  Orderer.on_timestamp o ~from_gid:1 ~eid:{ Types.gid = 0; seq = 1 } ~ts:0;
  (* e(0,1) = <1, 0>; head(1) = (1,1) = <bound 1?, 1>. element 0: e01 has
     1 vs inferred 1: cannot decide yet... group 0's stream must bound
     it: when group 0 assigns ts >= 1 to something, or here: group 1's
     head has vts[0] inferred at 1 (stream bound). Feed one more. *)
  Orderer.on_timestamp o ~from_gid:1 ~eid:{ Types.gid = 0; seq = 2 } ~ts:0;
  check_bool "needs group-0 stream movement" true (List.length !executed <= 2);
  (* Group 0 assigns its clock (= 2, it proposed twice) to a phantom
     group-1 entry... in reality to group 1's first entry when it
     arrives. *)
  Orderer.on_timestamp o ~from_gid:0 ~eid:{ Types.gid = 1; seq = 1 } ~ts:2;
  (* Now head(1)=(1,1) has vts <2, 1>; e(0,1)=<1,0...> executes first,
     then e(0,2)=<2,0?>.. element 0: 2 = 2 blocked? e(1,1) vts[0]=2 set;
     e(0,2).vts[0]=2 set; equal -> compare element 1: e02 has inferred
     0 -> blocked until group 1 stream moves past. *)
  check_bool "first fast entry executed" true
    (List.exists
       (fun (e : Types.entry_id) -> e.Types.gid = 0 && e.Types.seq = 1)
       !executed)

let test_orderer_stream_monotonicity_enforced () =
  let o = Orderer.create ~ng:2 ~on_execute:(fun _ -> ()) in
  Orderer.on_timestamp o ~from_gid:1 ~eid:{ Types.gid = 0; seq = 1 } ~ts:5;
  check_bool "backwards stream rejected" true
    (try
       Orderer.on_timestamp o ~from_gid:1 ~eid:{ Types.gid = 0; seq = 2 } ~ts:3;
       false
     with Invalid_argument _ -> true);
  check_bool "self timestamp rejected" true
    (try
       Orderer.on_timestamp o ~from_gid:0 ~eid:{ Types.gid = 0; seq = 3 } ~ts:1;
       false
     with Invalid_argument _ -> true)

let prop_orderer_agreement_random_worlds =
  (* Randomized worlds x randomized interleavings: all replays of the
     same streams must agree on the executed prefix — Theorem V.6 as a
     property test. *)
  QCheck.Test.make ~name:"orderer agreement over random worlds" ~count:30
    QCheck.(pair (int_range 1 500) (int_range 2 4))
    (fun (seed, ng) ->
      let rng = Rng.create (Int64.of_int seed) in
      let world = make_world rng ~ng ~per_group:6 in
      let runs =
        List.init 4 (fun k ->
            fst (run_orderer world (Rng.create (Int64.of_int ((seed * 7) + k)))))
      in
      match runs with
      | first :: rest ->
          List.for_all
            (fun other ->
              let common = min (List.length first) (List.length other) in
              let take n l = List.filteri (fun i _ -> i < n) l in
              take common first = take common other)
            rest
      | [] -> true)

let test_orderer_crashed_group_tail () =
  (* Group 2 stops proposing (crash); a takeover keeps assigning its
     frozen clock to others' entries, and ordering keeps flowing. *)
  let executed = ref [] in
  let o = Orderer.create ~ng:3 ~on_execute:(fun e -> executed := e :: !executed) in
  (* Group 2 proposed nothing: its clock is frozen at 0. Groups 0,1
     propose; each foreign group assigns. Feed entries e(0,1..3),
     e(1,1..3) with all three streams (instance 2's stream carries the
     frozen 0s, proposed by the takeover leader). *)
  let clock0 = ref 0 and clock1 = ref 0 in
  for s = 1 to 3 do
    clock0 := s;
    (* e(0,s): group 1 assigns clk1, group 2 assigns frozen 0 *)
    Orderer.on_timestamp o ~from_gid:1 ~eid:{ Types.gid = 0; seq = s } ~ts:!clock1;
    Orderer.on_timestamp o ~from_gid:2 ~eid:{ Types.gid = 0; seq = s } ~ts:0;
    clock1 := s;
    Orderer.on_timestamp o ~from_gid:0 ~eid:{ Types.gid = 1; seq = s } ~ts:!clock0;
    Orderer.on_timestamp o ~from_gid:2 ~eid:{ Types.gid = 1; seq = s } ~ts:0
  done;
  check_bool
    (Printf.sprintf "progress despite dead group (%d executed)"
       (List.length !executed))
    true
    (List.length !executed >= 4)

(* ------------------------------------------------------------------ *)
(* Chunker + Rebuild (real bytes end-to-end)                           *)
(* ------------------------------------------------------------------ *)

let test_chunker_roundtrip_via_rebuild () =
  let plan = Transfer_plan.generate ~n1:4 ~n2:7 in
  let entry = String.init 5000 (fun i -> Char.chr ((i * 7) mod 256)) in
  let chunks = Chunker.encode ~plan ~entry in
  check_int "28 chunks" 28 (Array.length chunks);
  Array.iter (fun c -> check_bool "chunk verifies" true (Chunker.verify_chunk c)) chunks;
  let rb = Rebuild.create ~plan ~validate:(fun e -> String.equal e entry) () in
  (* Feed only the first n_data chunks. *)
  let rebuilt = ref None in
  Array.iteri
    (fun i c ->
      if i < plan.Transfer_plan.n_data then
        match Rebuild.add rb c with
        | Rebuild.Rebuilt e -> rebuilt := Some e
        | Rebuild.Accepted -> ()
        | v ->
            Alcotest.failf "unexpected verdict at %d: %s" i
              (match v with
              | Rebuild.Rejected_proof -> "proof"
              | Rejected_blacklisted -> "blacklisted"
              | Rejected_duplicate -> "dup"
              | Rejected_fake_bucket _ -> "fake"
              | Already_done -> "done"
              | _ -> "?"))
    chunks;
  check_bool "rebuilt" true (!rebuilt = Some entry);
  check_bool "result stored" true (Rebuild.result rb = Some entry)

let test_chunker_deterministic () =
  let plan = Transfer_plan.generate ~n1:7 ~n2:7 in
  let entry = String.make 999 'q' in
  let a = Chunker.encode ~plan ~entry and b = Chunker.encode ~plan ~entry in
  Array.iteri
    (fun i c ->
      check_bool "same payloads" true (String.equal c.Chunker.payload b.(i).Chunker.payload);
      check_bool "same root" true (String.equal c.Chunker.root b.(i).Chunker.root))
    a

let test_chunk_wire_size_consistent () =
  let plan = Transfer_plan.generate ~n1:4 ~n2:7 in
  let entry = String.make 4096 'x' in
  let chunks = Chunker.encode ~plan ~entry in
  let declared = Chunker.chunk_wire_size ~plan ~entry_len:(String.length entry) in
  Array.iter
    (fun c ->
      let actual =
        String.length c.Chunker.payload
        + Types.digest_bytes
        + Merkle.proof_size c.Chunker.proof
        + Types.header_bytes
        - 4 (* proof_size already counts its index field *)
      in
      check_bool
        (Printf.sprintf "declared %d >= actual %d" declared actual)
        true (declared >= actual && declared - actual < 64))
    chunks

let test_rebuild_rejects_bad_proof () =
  let plan = Transfer_plan.generate ~n1:4 ~n2:4 in
  let entry = "payload-payload-payload" in
  let chunks = Chunker.encode ~plan ~entry in
  let rb = Rebuild.create ~plan ~validate:(fun e -> String.equal e entry) () in
  let evil = { chunks.(0) with Chunker.payload = "evil" ^ chunks.(0).Chunker.payload } in
  check_bool "bad proof rejected" true (Rebuild.add rb evil = Rebuild.Rejected_proof);
  check_bool "duplicate detected" true
    (Rebuild.add rb chunks.(1) = Rebuild.Accepted
    && Rebuild.add rb chunks.(1) = Rebuild.Rejected_duplicate)

let test_rebuild_fake_bucket_blacklists () =
  (* A colluding sender set produces a consistent but wrong entry: the
     whole fake bucket must be burned, and the true chunks must still
     rebuild. *)
  let plan = Transfer_plan.generate ~n1:4 ~n2:7 in
  let entry = String.init 2000 (fun i -> Char.chr (i mod 251)) in
  let fake_entry = String.init 2000 (fun i -> Char.chr ((i + 1) mod 251)) in
  let good = Chunker.encode ~plan ~entry in
  let fake = Chunker.encode ~plan ~entry:fake_entry in
  let rb = Rebuild.create ~plan ~validate:(fun e -> String.equal e entry) () in
  (* Feed n_data fake chunks: a full fake bucket. *)
  let fake_ids = ref [] in
  for i = 0 to plan.Transfer_plan.n_data - 1 do
    match Rebuild.add rb fake.(i) with
    | Rebuild.Accepted -> ()
    | Rebuild.Rejected_fake_bucket ids -> fake_ids := ids
    | _ -> Alcotest.fail "unexpected verdict while feeding fakes"
  done;
  check_int "fake bucket burned n_data ids" plan.Transfer_plan.n_data
    (List.length !fake_ids);
  Alcotest.(check (list int)) "blacklist recorded" !fake_ids (Rebuild.blacklisted rb);
  (* Burned ids are refused even with valid proofs from the good set. *)
  check_bool "burned id refused" true
    (Rebuild.add rb good.(0) = Rebuild.Rejected_blacklisted);
  (* The surviving ids (beyond the burned prefix) still rebuild. *)
  let rebuilt = ref false in
  for i = plan.Transfer_plan.n_data to plan.Transfer_plan.n_total - 1 do
    match Rebuild.add rb good.(i) with
    | Rebuild.Rebuilt e ->
        rebuilt := true;
        Alcotest.(check string) "correct entry" entry e
    | Rebuild.Accepted | Rebuild.Already_done -> ()
    | _ -> Alcotest.fail "unexpected verdict while recovering"
  done;
  check_bool "recovered despite a full fake bucket" true !rebuilt

let test_chunker_gf16_path () =
  (* lcm(16,17) = 272 chunks: beyond GF(2^8), exercising the GF(2^16)
     fallback end-to-end through the chunker (the paper's reason for
     abandoning liberasurecode). *)
  let plan = Transfer_plan.generate ~n1:16 ~n2:17 in
  check_bool "past the 255-shard limit" true (plan.Transfer_plan.n_total > 255);
  let entry = String.init 3000 (fun i -> Char.chr ((i * 13) mod 256)) in
  let chunks = Chunker.encode ~plan ~entry in
  check_int "272 chunks" 272 (Array.length chunks);
  let rb = Rebuild.create ~plan ~validate:(fun e -> String.equal e entry) () in
  let rebuilt = ref false in
  (try
     Array.iter
       (fun c ->
         match Rebuild.add rb c with
         | Rebuild.Rebuilt e ->
             rebuilt := true;
             Alcotest.(check string) "gf16 roundtrip" entry e;
             raise Exit
         | _ -> ())
       chunks
   with Exit -> ());
  check_bool "rebuilt through gf16" true !rebuilt

let test_rebuild_mixed_interleaving () =
  (* Fake and good chunks interleaved arbitrarily: the good bucket wins
     as soon as it holds n_data chunks. *)
  let plan = Transfer_plan.generate ~n1:7 ~n2:7 in
  let entry = String.make 700 'g' in
  let fake_entry = String.make 700 'b' in
  let good = Chunker.encode ~plan ~entry in
  let fake = Chunker.encode ~plan ~entry:fake_entry in
  let rb = Rebuild.create ~plan ~validate:(fun e -> String.equal e entry) () in
  let rng = Rng.create 55L in
  let feed = ref [] in
  Array.iteri (fun i c -> if i < 2 then feed := `F fake.(i) :: !feed else feed := `G c :: !feed) good |> ignore;
  Array.iteri (fun i c -> if i < 2 then feed := `F c :: !feed) fake |> ignore;
  let items = Array.of_list !feed in
  Rng.shuffle rng items;
  let rebuilt = ref false in
  Array.iter
    (fun item ->
      let c = match item with `F c | `G c -> c in
      match Rebuild.add rb c with
      | Rebuild.Rebuilt e ->
          rebuilt := true;
          Alcotest.(check string) "good entry" entry e
      | _ -> ())
    items;
  check_bool "rebuilt through the noise" true !rebuilt

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_commit_ratio_semantics () =
  (* Pins the documented denominator: conflicted transactions count
     against the ratio, application-level (logic) aborts do not — they
     executed correctly to their specified outcome and are never
     retried. *)
  let open Massbft_util.Stats in
  let m = Metrics.create () in
  Alcotest.(check (float 1e-9)) "empty run" 1.0 (Metrics.commit_ratio m);
  Counter.add m.Metrics.committed_txns 90;
  Counter.add m.Metrics.conflicted_txns 10;
  Alcotest.(check (float 1e-9)) "conflicts count" 0.9 (Metrics.commit_ratio m);
  Counter.add m.Metrics.logic_aborted_txns 1000;
  Alcotest.(check (float 1e-9))
    "logic aborts excluded" 0.9 (Metrics.commit_ratio m)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "massbft_core"
    [
      ( "metrics",
        [
          Alcotest.test_case "commit ratio semantics" `Quick
            test_commit_ratio_semantics;
        ] );
      ( "transfer_plan",
        [
          Alcotest.test_case "paper case study" `Quick test_plan_paper_case_study;
          Alcotest.test_case "equal groups" `Quick test_plan_equal_groups;
          Alcotest.test_case "bijectivity" `Quick test_plan_bijectivity;
          Alcotest.test_case "sender/receiver views agree" `Quick test_plan_views_agree;
          Alcotest.test_case "worst-case recoverable" `Quick test_plan_worst_case_recoverable;
          Alcotest.test_case "invalid input" `Quick test_plan_invalid;
          qt prop_plan_balance;
          Alcotest.test_case "bijective: paper counts" `Quick test_bijective_equal_groups_matches_paper;
          Alcotest.test_case "bijective: exhaustive adversary" `Quick test_bijective_survives_all_fault_patterns;
          Alcotest.test_case "bijective: balanced loads" `Quick test_bijective_loads_balanced;
          qt prop_bijective_guarantee;
        ] );
      ( "vts",
        [
          Alcotest.test_case "create" `Quick test_vts_create;
          Alcotest.test_case "set and infer" `Quick test_vts_set_and_infer;
          Alcotest.test_case "paper Figure 6 example" `Quick test_vts_paper_example;
          Alcotest.test_case "tie break" `Quick test_vts_tie_break;
          Alcotest.test_case "inferred blocks decision" `Quick test_vts_inferred_blocks_decision;
          Alcotest.test_case "strict-less beats inferred" `Quick test_vts_strictly_less_beats_inferred;
          qt prop_vts_total_order;
        ] );
      ( "orderer",
        [
          Alcotest.test_case "single group" `Quick test_orderer_single_group;
          Alcotest.test_case "executes all" `Quick test_orderer_executes_all;
          Alcotest.test_case "per-group FIFO" `Quick test_orderer_per_group_fifo;
          Alcotest.test_case "agreement across interleavings" `Quick test_orderer_agreement_across_interleavings;
          Alcotest.test_case "fast group not blocked" `Quick test_orderer_fast_group_not_blocked;
          Alcotest.test_case "stream monotonicity" `Quick test_orderer_stream_monotonicity_enforced;
          Alcotest.test_case "crashed group tail" `Quick test_orderer_crashed_group_tail;
          QCheck_alcotest.to_alcotest prop_orderer_agreement_random_worlds;
        ] );
      ( "chunker_rebuild",
        [
          Alcotest.test_case "roundtrip" `Quick test_chunker_roundtrip_via_rebuild;
          Alcotest.test_case "deterministic encoding" `Quick test_chunker_deterministic;
          Alcotest.test_case "wire size consistent" `Quick test_chunk_wire_size_consistent;
          Alcotest.test_case "bad proof rejected" `Quick test_rebuild_rejects_bad_proof;
          Alcotest.test_case "fake bucket blacklists" `Quick test_rebuild_fake_bucket_blacklists;
          Alcotest.test_case "mixed interleaving" `Quick test_rebuild_mixed_interleaving;
          Alcotest.test_case "gf16 chunk path (272 chunks)" `Quick test_chunker_gf16_path;
        ] );
    ]
