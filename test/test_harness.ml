(* Tests for the experiment harness: cluster topologies, the runner's
   accounting, and the cheap figures (the expensive sweeps are covered
   by bench/main.ml and spot-checked here in quick mode). *)

module Clusters = Massbft_harness.Clusters
module Runner = Massbft_harness.Runner
module Figures = Massbft_harness.Figures
module Config = Massbft.Config
module W = Massbft_workload.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Clusters                                                            *)
(* ------------------------------------------------------------------ *)

let test_nationwide_defaults () =
  let spec = Clusters.nationwide () in
  check_int "3 groups" 3 (Array.length spec.Massbft_sim.Topology.group_sizes);
  Array.iter (fun s -> check_int "7 nodes" 7 s) spec.Massbft_sim.Topology.group_sizes;
  check_float "20 Mbps WAN" 20e6 spec.Massbft_sim.Topology.wan_bps;
  check_float "2.5 Gbps LAN" 2.5e9 spec.Massbft_sim.Topology.lan_bps;
  check_int "8 cores" 8 spec.Massbft_sim.Topology.cores

let test_nationwide_rtts_in_paper_range () =
  (* Paper: 26.7 - 43.4 ms between any two of the three primary sites. *)
  for g1 = 0 to 2 do
    for g2 = 0 to 2 do
      if g1 <> g2 then begin
        let rtt = Clusters.nationwide_rtt g1 g2 in
        check_bool
          (Printf.sprintf "rtt %d-%d in range (%.4f)" g1 g2 rtt)
          true
          (rtt >= 0.0267 -. 1e-9 && rtt <= 0.0434 +. 1e-9);
        check_float "symmetric" rtt (Clusters.nationwide_rtt g2 g1)
      end
    done
  done

let test_worldwide_rtts () =
  (* Paper: 156 - 206 ms. *)
  for g1 = 0 to 2 do
    for g2 = 0 to 2 do
      if g1 <> g2 then begin
        let rtt = Clusters.worldwide_rtt g1 g2 in
        check_bool "range" true (rtt >= 0.156 -. 1e-9 && rtt <= 0.206 +. 1e-9)
      end
    done
  done

let test_cluster_overrides () =
  let spec = Clusters.nationwide ~group_sizes:[| 4; 7; 7 |] () in
  check_int "g0 override" 4 spec.Massbft_sim.Topology.group_sizes.(0);
  let spec7 = Clusters.nationwide ~groups:7 () in
  check_int "7 groups" 7 (Array.length spec7.Massbft_sim.Topology.group_sizes);
  check_bool "bad group count rejected" true
    (try
       ignore (Clusters.nationwide ~groups:9 ());
       false
     with Invalid_argument _ -> true);
  check_bool "mismatched sizes rejected" true
    (try
       ignore (Clusters.nationwide ~group_sizes:[| 4 |] ~groups:3 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let small_cfg system =
  {
    (Config.default ~system ()) with
    Config.max_batch = 40;
    pipeline = 4;
    workload_scale = 0.001;
  }

let test_runner_result_sanity () =
  let r =
    Runner.run ~warmup:1.0 ~duration:3.0
      ~spec:(Clusters.nationwide ~nodes_per_group:4 ())
      ~cfg:(small_cfg Config.Massbft) ()
  in
  check_bool "positive throughput" true (r.Runner.throughput_ktps > 0.1);
  check_bool "latency positive" true (r.Runner.mean_latency_ms > 10.0);
  check_bool "p99 >= mean" true (r.Runner.p99_latency_ms >= r.Runner.mean_latency_ms);
  check_bool "commit ratio in (0,1]" true
    (r.Runner.commit_ratio > 0.0 && r.Runner.commit_ratio <= 1.0);
  check_bool "wan accounted" true (r.Runner.wan_mb > 0.1);
  check_int "3 per-group entries" 3 (List.length r.Runner.per_group_ktps);
  let sum = List.fold_left ( +. ) 0.0 r.Runner.per_group_ktps in
  check_bool
    (Printf.sprintf "per-group sums to total (%.2f ~ %.2f)" sum r.Runner.throughput_ktps)
    true
    (Float.abs (sum -. r.Runner.throughput_ktps) < 0.01 *. Float.max 1.0 r.Runner.throughput_ktps);
  check_int "6 phases" 6 (List.length r.Runner.phases_ms);
  check_bool "rate series non-empty" true (r.Runner.rate_series <> [])

let test_runner_probe_lighter_latency () =
  let spec = Clusters.nationwide ~nodes_per_group:4 () in
  let cfg = { (small_cfg Config.Massbft) with Config.max_batch = 500 } in
  let sat = Runner.run ~warmup:2.0 ~duration:4.0 ~spec ~cfg () in
  let probe = Runner.run_latency_probe ~warmup:2.0 ~duration:4.0 ~spec ~cfg () in
  check_bool
    (Printf.sprintf "probe latency below saturated (%.0f < %.0f ms)"
       probe.Runner.mean_latency_ms sat.Runner.mean_latency_ms)
    true
    (probe.Runner.mean_latency_ms <= sat.Runner.mean_latency_ms)

let test_runner_deterministic () =
  let go () =
    (Runner.run ~warmup:1.0 ~duration:2.0
       ~spec:(Clusters.nationwide ~nodes_per_group:4 ())
       ~cfg:(small_cfg Config.Baseline) ())
      .Runner.throughput_ktps
  in
  check_float "same seed, same number" (go ()) (go ())

(* ------------------------------------------------------------------ *)
(* Bench report                                                        *)
(* ------------------------------------------------------------------ *)

module Bench_report = Massbft_harness.Bench_report

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_bench_json_schema () =
  let micro = { Bench_report.m_name = "sha256/4KiB"; ns_per_run = 1234.5 } in
  let macro = Bench_report.run_macro ~quick:true ~system:Config.Baseline () in
  let scaling =
    {
      Bench_report.sc_groups = 3;
      sc_domains = 2;
      sc_wall_s = 1.5;
      sc_sim_s = 4.0;
      sc_sim_s_per_wall_s = 4.0 /. 1.5;
      sc_committed_txns = 42;
    }
  in
  let doc =
    Bench_report.to_json ~date:"2026-08-07" ~mode:"quick" ~scaling:[ scaling ]
      ~micros:[ micro ] ~macros:[ macro ] ()
  in
  List.iter
    (fun key ->
      check_bool (key ^ " key present") true
        (contains ~needle:("\"" ^ key ^ "\"") doc))
    [
      "schema_version"; "date"; "mode"; "host_domains"; "micro"; "macro";
      "name"; "ns_per_run"; "system"; "workload"; "wall_s"; "sim_s";
      "sim_s_per_wall_s"; "committed_txns"; "committed_txns_per_wall_s";
      "throughput_ktps"; "mean_latency_ms"; "p99_latency_ms"; "commit_ratio";
      "wan_mb"; "scaling"; "groups"; "domains";
    ];
  check_bool "workload is YCSB-A" true
    (contains ~needle:(W.kind_name W.Ycsb_a) doc);
  (* Every macro value the report carries must be finite; the renderer
     is the last line of defense against committing a NaN baseline. *)
  List.iter
    (fun (what, v) -> check_bool (what ^ " finite") true (Float.is_finite v))
    [
      ("wall_s", macro.Bench_report.wall_s);
      ("sim_s", macro.Bench_report.sim_s);
      ("sim_s_per_wall_s", macro.Bench_report.sim_s_per_wall_s);
      ("committed_txns_per_wall_s", macro.Bench_report.committed_txns_per_wall_s);
      ("throughput_ktps", macro.Bench_report.throughput_ktps);
      ("mean_latency_ms", macro.Bench_report.mean_latency_ms);
      ("p99_latency_ms", macro.Bench_report.p99_latency_ms);
      ("commit_ratio", macro.Bench_report.commit_ratio);
      ("wan_mb", macro.Bench_report.wan_mb);
    ];
  check_bool "non-finite rejected" true
    (try
       ignore
         (Bench_report.to_json ~date:"2026-08-07" ~mode:"quick"
            ~micros:[ { Bench_report.m_name = "bad"; ns_per_run = Float.nan } ]
            ~macros:[] ());
       false
     with Invalid_argument _ -> true)

let test_bench_scaling_quick () =
  (* One tiny 2-shard scaling row end-to-end through the public entry
     point: the committed count must match the sequential row's (the
     cross-driver determinism contract the table encodes). *)
  let rows =
    Bench_report.run_scaling ~quick:true ~groups_list:[ 3 ]
      ~domains_list:[ 1; 2 ] ()
  in
  match rows with
  | [ a; b ] ->
      check_int "groups" 3 a.Bench_report.sc_groups;
      check_int "domains row 1" 1 a.Bench_report.sc_domains;
      check_int "domains row 2" 2 b.Bench_report.sc_domains;
      check_int "committed agree across drivers" a.Bench_report.sc_committed_txns
        b.Bench_report.sc_committed_txns;
      check_bool "committed positive" true (a.Bench_report.sc_committed_txns > 0);
      List.iter
        (fun (r : Bench_report.scaling) ->
          check_bool "wall finite" true (Float.is_finite r.sc_wall_s);
          check_bool "rate finite" true (Float.is_finite r.sc_sim_s_per_wall_s))
        rows
  | _ -> Alcotest.fail "expected exactly two scaling rows"

let test_bench_macro_deterministic () =
  (* The simulated side of a macro entry is a pure function of the
     seed: only the wall-clock fields may differ between two runs. *)
  let a = Bench_report.run_macro ~quick:true ~system:Config.Baseline () in
  let b = Bench_report.run_macro ~quick:true ~system:Config.Baseline () in
  check_int "committed_txns" a.Bench_report.committed_txns
    b.Bench_report.committed_txns;
  check_float "sim_s" a.Bench_report.sim_s b.Bench_report.sim_s;
  check_float "throughput_ktps" a.Bench_report.throughput_ktps
    b.Bench_report.throughput_ktps;
  check_float "mean_latency_ms" a.Bench_report.mean_latency_ms
    b.Bench_report.mean_latency_ms;
  check_float "p99_latency_ms" a.Bench_report.p99_latency_ms
    b.Bench_report.p99_latency_ms;
  check_float "commit_ratio" a.Bench_report.commit_ratio
    b.Bench_report.commit_ratio;
  check_float "wan_mb" a.Bench_report.wan_mb b.Bench_report.wan_mb

(* ------------------------------------------------------------------ *)
(* Figures (cheap ones; quick mode)                                    *)
(* ------------------------------------------------------------------ *)

let test_fig10_shape () =
  let fig = Figures.fig10 () in
  check_int "5 batch sizes" 5 (List.length fig.Figures.rows);
  List.iter
    (fun row ->
      match row.Figures.cells with
      | [ m; b; ratio ] ->
          check_bool "massbft cheaper" true (m.Figures.value < b.Figures.value);
          check_bool
            (Printf.sprintf "ratio near 3/2.33 (%.3f)" ratio.Figures.value)
            true
            (ratio.Figures.value > 1.1 && ratio.Figures.value < 1.35)
      | _ -> Alcotest.fail "expected 3 cells")
    fig.Figures.rows

let test_tables_cover_all_systems () =
  let fig = Figures.tables () in
  check_int "7 systems" 7 (List.length fig.Figures.rows);
  List.iter
    (fun sys ->
      check_bool
        (Config.system_name sys ^ " present")
        true
        (List.exists
           (fun r ->
             (* labels start with the system name *)
             String.length r.Figures.label >= String.length (Config.system_name sys)
             && String.sub r.Figures.label 0 (String.length (Config.system_name sys))
                = Config.system_name sys)
           fig.Figures.rows))
    Config.all_systems

let test_fig1b_quick_decreasing () =
  let fig = Figures.fig1b ~quick:true () in
  let tputs =
    List.map
      (fun r -> (List.hd r.Figures.cells).Figures.value)
      fig.Figures.rows
  in
  match tputs with
  | a :: rest ->
      check_bool "monotone decreasing" true
        (fst
           (List.fold_left
              (fun (ok, prev) v -> (ok && v < prev, v))
              (true, a +. 1.0) (a :: rest)))
  | [] -> Alcotest.fail "no rows"

let test_all_figures_registered () =
  let ids = List.map (fun (id, _, _) -> id) Figures.all in
  List.iter
    (fun expected ->
      check_bool (expected ^ " registered") true (List.mem expected ids))
    [
      "fig1b"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13a"; "fig13b";
      "fig14"; "fig15"; "ablations"; "tables";
    ]

(* ------------------------------------------------------------------ *)
(* Parallel driver (--domains) equivalence                             *)
(* ------------------------------------------------------------------ *)

module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Stats = Massbft_util.Stats
module Ledger = Massbft_exec.Ledger
module Hexdump = Massbft_util.Hexdump
module Chaos = Massbft_faults.Chaos
module Rng = Massbft_util.Rng

let check_string = Alcotest.(check string)

(* The results the issue pins across drivers: committed transactions,
   entries executed, per-group ledger head hashes and leader store
   fingerprints. independent_stores is set for the sequential run too,
   so both drivers execute the exact same mode. *)
let domains_capture ~domains =
  let spec = Clusters.nationwide ~nodes_per_group:4 () in
  let cfg =
    {
      (small_cfg Config.Massbft) with
      Config.workload_scale = 0.01;
      independent_stores = true;
    }
  in
  let captured = ref None in
  let r =
    Runner.run ~warmup:2.0 ~duration:4.0 ~domains
      ~on_engine:(fun e _ _ -> captured := Some e)
      ~spec ~cfg ()
  in
  match !captured with
  | None -> Alcotest.fail "runner never exposed the engine"
  | Some e ->
      let committed =
        Stats.Counter.get (Engine.metrics e).Metrics.committed_txns
      in
      let heads =
        List.init 3 (fun g ->
            Hexdump.encode (Ledger.head_hash (Engine.ledger_of e ~gid:g)))
      in
      let fingerprints =
        List.init 3 (fun g ->
            Hexdump.encode (Engine.leader_store_fingerprint e ~gid:g))
      in
      (committed, Engine.entries_executed_total e, heads, fingerprints,
       r.Runner.entries_executed)

let test_domains_equivalence () =
  let c1, e1, h1, f1, re1 = domains_capture ~domains:1 in
  let c4, e4, h4, f4, re4 = domains_capture ~domains:4 in
  check_bool "sequential run commits" true (c1 > 0);
  check_int "committed txns" c1 c4;
  check_int "entries executed" e1 e4;
  check_int "result entries" re1 re4;
  List.iteri
    (fun g (a, b) -> check_string (Printf.sprintf "g%d ledger head" g) a b)
    (List.combine h1 h4);
  List.iteri
    (fun g (a, b) ->
      check_string (Printf.sprintf "g%d leader store" g) a b)
    (List.combine f1 f4)

let test_domains_chaos_equivalence () =
  let spec = Clusters.nationwide ~nodes_per_group:4 () in
  let cfg =
    { (small_cfg Config.Massbft) with Config.independent_stores = true }
  in
  let schedule =
    Chaos.gen_schedule (Rng.create 11L) ~cfg ~spec ~duration:8.0
  in
  let go domains =
    Chaos.run_schedule ~duration:8.0 ~domains ~spec ~cfg schedule
  in
  let a = go 1 and b = go 2 in
  check_bool "sequential run executes" true (a.Chaos.executed > 0);
  check_int "entries executed" a.Chaos.executed b.Chaos.executed;
  check_int "faults injected" a.Chaos.injected b.Chaos.injected;
  check_bool "same failure verdict" (Chaos.failed a) (Chaos.failed b);
  check_int "same violation count"
    (List.length a.Chaos.violations)
    (List.length b.Chaos.violations)

let test_domains_guards () =
  let spec = Clusters.nationwide ~nodes_per_group:4 () in
  let cfg = small_cfg Config.Massbft in
  let rejects what f =
    check_bool what true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "trace requires domains = 1" (fun () ->
      Runner.run ~warmup:0.5 ~duration:0.5 ~domains:2
        ~trace:(Massbft_trace.Trace.create ()) ~spec ~cfg ());
  rejects "sampler requires domains = 1" (fun () ->
      let obs = Massbft_obs.Sampler.create (Massbft_obs.Registry.create ()) in
      Runner.run ~warmup:0.5 ~duration:0.5 ~domains:2 ~obs ~spec ~cfg ());
  rejects "adversary requires domains = 1" (fun () ->
      let plan =
        [
          {
            Massbft_adversary.Adv_spec.at = 1.0;
            strategy =
              Massbft_adversary.Adv_spec.Equivocate
                { target = Massbft_adversary.Adv_spec.Leader 0; for_s = 1.0 };
          };
        ]
      in
      Runner.run ~warmup:0.5 ~duration:0.5 ~domains:2 ~adversary:plan ~spec
        ~cfg ())

let () =
  Alcotest.run "massbft_harness"
    [
      ( "domains",
        [
          Alcotest.test_case "parallel = sequential results" `Slow
            test_domains_equivalence;
          Alcotest.test_case "chaos verdicts across drivers" `Slow
            test_domains_chaos_equivalence;
          Alcotest.test_case "parallel mode guards" `Quick
            test_domains_guards;
        ] );
      ( "clusters",
        [
          Alcotest.test_case "nationwide defaults" `Quick test_nationwide_defaults;
          Alcotest.test_case "nationwide RTT range" `Quick test_nationwide_rtts_in_paper_range;
          Alcotest.test_case "worldwide RTT range" `Quick test_worldwide_rtts;
          Alcotest.test_case "overrides" `Quick test_cluster_overrides;
        ] );
      ( "runner",
        [
          Alcotest.test_case "result sanity" `Quick test_runner_result_sanity;
          Alcotest.test_case "probe lighter" `Slow test_runner_probe_lighter_latency;
          Alcotest.test_case "determinism" `Quick test_runner_deterministic;
        ] );
      ( "bench_report",
        [
          Alcotest.test_case "json schema" `Quick test_bench_json_schema;
          Alcotest.test_case "macro determinism" `Quick test_bench_macro_deterministic;
          Alcotest.test_case "scaling table quick" `Slow test_bench_scaling_quick;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig10 shape" `Quick test_fig10_shape;
          Alcotest.test_case "tables coverage" `Quick test_tables_cover_all_systems;
          Alcotest.test_case "fig1b decreasing" `Slow test_fig1b_quick_decreasing;
          Alcotest.test_case "registry complete" `Quick test_all_figures_registered;
        ] );
    ]
