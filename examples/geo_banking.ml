(* Geo-distributed banking: the paper's cross-border-cooperation
   scenario. Three bank data centers (the nationwide sites) each accept
   SmallBank transfers from local customers; MassBFT orders everything
   into one global ledger, and Aria executes it deterministically, so
   all three sites end with byte-identical databases — with no site
   trusting any single node of another site.

   Run with:  dune exec examples/geo_banking.exe *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Stats = Massbft_util.Stats

let () =
  let sim = Sim.create () in
  let topo = Topology.create sim (Massbft_harness.Clusters.nationwide ()) in
  let cfg =
    {
      (Config.default ~system:Config.Massbft
         ~workload:Massbft_workload.Workload.Smallbank ())
      with
      Config.workload_scale = 0.001 (* 1,000 accounts for the demo *);
      (* Each site runs its own replica of the full database. *)
      independent_stores = true;
    }
  in
  let engine = Engine.create sim topo cfg in
  Engine.start engine;
  Sim.run sim ~until:6.0;

  let m = Engine.metrics engine in
  Printf.printf "banking throughput: %.1f k transfers/s\n"
    (Massbft.Metrics.throughput_tps m ~duration:6.0 /. 1000.0);
  Printf.printf "overdrafts refused (logic aborts): %d\n"
    (Stats.Counter.get m.Massbft.Metrics.logic_aborted_txns);
  Printf.printf "conflicting transfers retried:      %d\n"
    (Stats.Counter.get m.Massbft.Metrics.conflicted_txns);

  (* The sites independently executed the global order; when they have
     processed the same prefix, their databases are identical. *)
  let counts =
    List.map
      (fun g -> List.length (Engine.executed_ids engine ~gid:g))
      [ 0; 1; 2 ]
  in
  (match counts with
  | [ a; b; c ] ->
      Printf.printf "entries executed per site: %d / %d / %d\n" a b c;
      if a = b && b = c then begin
        let f g = Massbft_util.Hexdump.short ~len:16
            (Engine.leader_store_fingerprint engine ~gid:g)
        in
        Printf.printf "database fingerprints: %s %s %s\n" (f 0) (f 1) (f 2);
        Printf.printf "all sites hold the identical database: %b\n"
          (f 0 = f 1 && f 1 = f 2)
      end
      else
        print_endline
          "sites are at different prefixes of the same order (still consistent)"
  | _ -> ());

  (* Hash-chained audit trail. *)
  let ledger = Engine.ledger_of engine ~gid:0 in
  Printf.printf "audit ledger: %d blocks, tamper-evident chain verifies: %b\n"
    (Massbft_exec.Ledger.height ledger)
    (Massbft_exec.Ledger.verify ledger)
