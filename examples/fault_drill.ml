(* Fault drill: the paper's §VI-E scenario as a narrative. An
   edge-computing deployment runs normally, then (1) two Byzantine
   nodes per data center start colluding — encoding tampered entries
   into chunks and flooding the exchange with them; then (2) an entire
   data center loses power; later (3) it comes back.

   The crash and the recovery are ordinary fault-schedule lines (the
   same DSL `massbft drill` shrinks failures into and `massbft run
   --faults FILE` replays), applied by the injector. The tampering is
   an adversary plan in the strategy DSL (`massbft run --adversary
   FILE` replays these too): a message-level interposer on each
   compromised node rewrites the chunks it sends, exactly what the
   node *says* rather than what the fabric does. The invariant
   checkers ride along, aware of which nodes are compromised: if a
   tampered chunk ever reached a ledger, or the honest survivors
   diverged, the drill would end with a violation report instead of a
   timeline.

   Run with:  dune exec examples/fault_drill.exe *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Stats = Massbft_util.Stats
module Fault_spec = Massbft_faults.Fault_spec
module Injector = Massbft_faults.Injector
module Invariants = Massbft_faults.Invariants
module Adv_spec = Massbft_adversary.Adv_spec
module Adversary = Massbft_adversary.Adversary

let byz_at = 6.0
let crash_at = 12.0
let recover_at = 20.0
let until = 45.0

let schedule =
  Fault_spec.of_string
    (Printf.sprintf
       "# data center 0 loses power, later comes back\n\
        @%g crash-group g0\n\
        @%g recover-group g0\n"
       crash_at recover_at)

(* Two colluders per data center (f = 2 with seven nodes per group)
   start rewriting the chunks they disseminate at [byz_at] and never
   stop: `for 39` keeps the windows open to the end of the run. *)
let adversary =
  Adv_spec.of_string
    (Printf.sprintf
       "# two tampering colluders per data center\n\
        @%g tamper node:g0/n5 for 39\n\
        @%g tamper node:g0/n6 for 39\n\
        @%g tamper node:g1/n5 for 39\n\
        @%g tamper node:g1/n6 for 39\n\
        @%g tamper node:g2/n5 for 39\n\
        @%g tamper node:g2/n6 for 39\n"
       byz_at byz_at byz_at byz_at byz_at byz_at)

let () =
  let sim = Sim.create () in
  let spec = Massbft_harness.Clusters.nationwide () in
  let topo = Topology.create sim spec in
  let cfg =
    {
      (Config.default ~system:Config.Massbft
         ~workload:Massbft_workload.Workload.Ycsb_a ())
      with
      Config.workload_scale = 0.01;
      (* Modest batches: smaller entries let the recovered data center
         re-stream its crash gap within this demo's window. *)
      max_batch = 100;
      election_timeout_s = 1.0;
    }
  in
  let engine = Engine.create sim topo cfg in
  let inj = Injector.create ~spec ~schedule engine sim topo in
  let adv = Adversary.create ~spec ~plan:adversary engine sim in
  (* heal_by stays at the fault schedule's horizon: the tampering never
     heals, and the point of the drill is that liveness returns anyway
     once the crashed data center is restored. *)
  let inv =
    Invariants.create
      ~heal_by:(Fault_spec.heal_time schedule)
      ~compromised:(Adversary.is_compromised adv)
      engine sim
  in
  Engine.start engine;
  Injector.arm inj;
  Adversary.arm adv;
  Invariants.attach inv;
  Sim.run sim ~until;
  Invariants.finalize inv;

  let m = Engine.metrics engine in
  (* Annotate rows by bucket index, not by float equality on the bucket
     start: the series reports txn_rate's 1 s buckets, and an injection
     time belongs to the bucket containing it. *)
  let bucket = 1.0 in
  let bucket_of tm = int_of_float (floor (tm /. bucket)) in
  print_endline "time    throughput   event";
  List.iter
    (fun (t, rate) ->
      let idx = bucket_of t in
      let event =
        if idx = bucket_of byz_at then
          "<- 2 Byzantine nodes/group start tampering with chunks"
        else if idx = bucket_of crash_at then "<- data center 0 loses power"
        else if idx = bucket_of recover_at then
          "<- data center 0 restored; leadership transfers back"
        else ""
      in
      Printf.printf "%5.0fs  %7.1f ktps  %s\n" t (rate /. 1000.0) event)
    (Stats.Timeseries.rate_series m.Massbft.Metrics.txn_rate);

  Printf.printf "\ntampered sends rewritten by the adversary: %d\n"
    (Adversary.injected_total adv);

  (* The checkers watched the whole run: cross-group chain agreement,
     honest-replica prefix agreement, monotone commit indexes,
     post-heal liveness, ledger integrity, execution determinism. *)
  Printf.printf "invariant checks: %d polls, %s\n"
    (Invariants.checks_run inv)
    (if Invariants.ok inv then "all green" else "VIOLATIONS:");
  List.iter
    (fun v -> print_endline ("  " ^ Invariants.violation_to_string v))
    (Invariants.violations inv);
  print_endline
    "(after the restore, data center 0 first streams back the entries it\n\
    \ missed -- bounded by its 20 Mbps downlinks -- and only then contributes\n\
    \ its own proposals again, so full throughput returns gradually)"
