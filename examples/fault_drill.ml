(* Fault drill: the paper's §VI-E scenario as a narrative. An
   edge-computing deployment runs normally, then (1) two Byzantine
   nodes per data center start colluding — encoding tampered entries
   into chunks and flooding the exchange with them; then (2) an entire
   data center loses power; later (3) it comes back.

   The crash and the recovery are ordinary fault-schedule lines (the
   same DSL `massbft drill` shrinks failures into and `massbft run
   --faults FILE` replays), applied by the injector; Byzantine content
   tampering is a config knob because tampering is what nodes *say*,
   not what the fabric does. The invariant checkers ride along: if a
   tampered chunk ever reached a ledger, or the survivors diverged,
   the drill would end with a violation report instead of a timeline.

   Run with:  dune exec examples/fault_drill.exe *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Stats = Massbft_util.Stats
module Fault_spec = Massbft_faults.Fault_spec
module Injector = Massbft_faults.Injector
module Invariants = Massbft_faults.Invariants

let byz_at = 6.0
let crash_at = 12.0
let recover_at = 20.0
let until = 45.0

let schedule =
  Fault_spec.of_string
    (Printf.sprintf
       "# data center 0 loses power, later comes back\n\
        @%g crash-group g0\n\
        @%g recover-group g0\n"
       crash_at recover_at)

let () =
  let sim = Sim.create () in
  let spec = Massbft_harness.Clusters.nationwide () in
  let topo = Topology.create sim spec in
  let cfg =
    {
      (Config.default ~system:Config.Massbft
         ~workload:Massbft_workload.Workload.Ycsb_a ())
      with
      Config.workload_scale = 0.01;
      (* Modest batches: smaller entries let the recovered data center
         re-stream its crash gap within this demo's window. *)
      max_batch = 100;
      byzantine_per_group = 2;
      byzantine_from_s = byz_at;
      election_timeout_s = 1.0;
    }
  in
  let engine = Engine.create sim topo cfg in
  let inj = Injector.create ~spec ~schedule engine sim topo in
  let inv =
    Invariants.create ~heal_by:(Fault_spec.heal_time schedule) engine sim
  in
  Engine.start engine;
  Injector.arm inj;
  Invariants.attach inv;
  Sim.run sim ~until;
  Invariants.finalize inv;

  let m = Engine.metrics engine in
  (* Annotate rows by bucket index, not by float equality on the bucket
     start: the series reports txn_rate's 1 s buckets, and an injection
     time belongs to the bucket containing it. *)
  let bucket = 1.0 in
  let bucket_of tm = int_of_float (floor (tm /. bucket)) in
  print_endline "time    throughput   event";
  List.iter
    (fun (t, rate) ->
      let idx = bucket_of t in
      let event =
        if idx = bucket_of byz_at then
          "<- 2 Byzantine nodes/group start tampering with chunks"
        else if idx = bucket_of crash_at then "<- data center 0 loses power"
        else if idx = bucket_of recover_at then
          "<- data center 0 restored; leadership transfers back"
        else ""
      in
      Printf.printf "%5.0fs  %7.1f ktps  %s\n" t (rate /. 1000.0) event)
    (Stats.Timeseries.rate_series m.Massbft.Metrics.txn_rate);

  (* The checkers watched the whole run: cross-group chain agreement,
     replica prefix agreement, monotone commit indexes, post-heal
     liveness, ledger integrity, execution determinism. *)
  Printf.printf "\ninvariant checks: %d polls, %s\n"
    (Invariants.checks_run inv)
    (if Invariants.ok inv then "all green" else "VIOLATIONS:");
  List.iter
    (fun v -> print_endline ("  " ^ Invariants.violation_to_string v))
    (Invariants.violations inv);
  print_endline
    "(after the restore, data center 0 first streams back the entries it\n\
    \ missed -- bounded by its 20 Mbps downlinks -- and only then contributes\n\
    \ its own proposals again, so full throughput returns gradually)"
