(* Fault drill: the paper's §VI-E scenario as a narrative. An
   edge-computing deployment runs normally, then (1) two Byzantine
   nodes per data center start colluding — encoding tampered entries
   into chunks and flooding the exchange with them; then (2) an entire
   data center loses power; later (3) it comes back.

   Watch the throughput timeline: tampering is absorbed (Merkle-root
   buckets + blacklisting), the crash stalls ordering only until
   another group takes over the dead group's Raft instance and assigns
   its frozen clock, and recovery hands leadership back.

   Run with:  dune exec examples/fault_drill.exe *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Stats = Massbft_util.Stats

let byz_at = 6.0
let crash_at = 12.0
let recover_at = 20.0

let until = 45.0

let () =
  let sim = Sim.create () in
  let topo = Topology.create sim (Massbft_harness.Clusters.nationwide ()) in
  let cfg =
    {
      (Config.default ~system:Config.Massbft
         ~workload:Massbft_workload.Workload.Ycsb_a ())
      with
      Config.workload_scale = 0.01;
      (* Modest batches: smaller entries let the recovered data center
         re-stream its crash gap within this demo's window. *)
      max_batch = 100;
      byzantine_per_group = 2;
      byzantine_from_s = byz_at;
      crash_group_at = Some (0, crash_at);
      election_timeout_s = 1.0;
    }
  in
  let engine = Engine.create sim topo cfg in
  Engine.start engine;
  ignore (Sim.at sim recover_at (fun () -> Engine.recover_group engine 0));
  Sim.run sim ~until;

  let m = Engine.metrics engine in
  (* Annotate rows by bucket index, not by float equality on the bucket
     start: the series reports txn_rate's 1 s buckets, and an injection
     time belongs to the bucket containing it. *)
  let bucket = 1.0 in
  let bucket_of tm = int_of_float (floor (tm /. bucket)) in
  print_endline "time    throughput   event";
  List.iter
    (fun (t, rate) ->
      let idx = bucket_of t in
      let event =
        if idx = bucket_of byz_at then
          "<- 2 Byzantine nodes/group start tampering with chunks"
        else if idx = bucket_of crash_at then "<- data center 0 loses power"
        else if idx = bucket_of recover_at then
          "<- data center 0 restored; leadership transfers back"
        else ""
      in
      Printf.printf "%5.0fs  %7.1f ktps  %s\n" t (rate /. 1000.0) event)
    (Stats.Timeseries.rate_series m.Massbft.Metrics.txn_rate);

  (* The survivors stayed consistent throughout. *)
  let l1 = Engine.executed_ids engine ~gid:1 in
  let l2 = Engine.executed_ids engine ~gid:2 in
  let common = min (List.length l1) (List.length l2) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  Printf.printf "\nsurvivors executed %d entries; orders agree: %b\n" common
    (List.for_all2 Massbft.Types.entry_id_equal (take common l1) (take common l2));
  print_endline
    "(after the restore, data center 0 first streams back the entries it\n\
    \ missed -- bounded by its 20 Mbps downlinks -- and only then contributes\n\
    \ its own proposals again, so full throughput returns gradually)"
