(* Algorithm 2, by hand: the paper's Figure 6 scenario.

   Three groups propose entries concurrently; each group's committed
   timestamp stream arrives at a node in some interleaving, and the
   deterministic orderer releases entries in the unique global order —
   the same order at every node, whatever the interleaving. This demo
   replays the exact entries and vector timestamps of the paper's
   Figure 6 and shows (a) the inference at work, (b) the paper's
   worked comparison e_{2,6} < e_{3,5}, and (c) agreement across two
   differently-interleaved replays.

   Run with:  dune exec examples/ordering_demo.exe *)

module Orderer = Massbft.Orderer
module Vts = Massbft.Vts
module Types = Massbft.Types

(* Figure 6 shows a mid-execution snapshot (sequence numbers 3-7);
   since a group's logical clock counts its own committed entries, the
   demo renumbers the same scenario to start from 1 — every VTS
   relation of the figure is preserved. Entries and their final vector
   timestamps:

     e(0,1)<1,1,1>  e(0,2)<2,2,2>  e(0,3)<3,3,2>
     e(1,1)<1,1,1>  e(1,2)<2,2,2>  e(1,3)<2,3,2>   (e_{2,6} in the paper)
     e(2,1)<1,1,1>  e(2,2)<2,2,2>  e(2,3)<2,3,3>   (e_{3,5} in the paper)

   Group j's stream carries its element of every foreign entry, in that
   group's commit order; the proposer's own element is implicit. *)

let streams =
  (* (from_gid, eid, ts) in each stream's order. *)
  [|
    (* group 0 assigns clk_0 to entries of groups 1 and 2 *)
    [ ((1, 1), 1); ((2, 1), 1); ((1, 2), 2); ((2, 2), 2); ((1, 3), 2); ((2, 3), 2) ];
    (* group 1 assigns clk_1 *)
    [ ((0, 1), 1); ((2, 1), 1); ((0, 2), 2); ((2, 2), 2); ((0, 3), 3); ((2, 3), 3) ];
    (* group 2 assigns clk_2 *)
    [ ((0, 1), 1); ((1, 1), 1); ((0, 2), 2); ((1, 2), 2); ((0, 3), 2); ((1, 3), 2) ];
  |]

let replay ~label interleaving =
  let executed = ref [] in
  let o = Orderer.create ~ng:3 ~on_execute:(fun e -> executed := e :: !executed) in
  let cursors = Array.map (fun l -> ref l) streams in
  List.iter
    (fun j ->
      match !(cursors.(j)) with
      | [] -> ()
      | ((gid, seq), ts) :: rest ->
          cursors.(j) := rest;
          Orderer.on_timestamp o ~from_gid:j ~eid:{ Types.gid = gid; seq } ~ts)
    interleaving;
  let order = List.rev !executed in
  Printf.printf "%-28s" label;
  List.iter
    (fun (e : Types.entry_id) -> Printf.printf " e(%d,%d)" e.Types.gid e.Types.seq)
    order;
  print_newline ();
  order

let () =
  print_endline "The paper's Figure 6 comparison, via Vts.prec:";
  let e26 = Vts.create ~ng:3 ~gid:1 ~seq:6 in
  Vts.set_element e26 0 6;
  Vts.set_element e26 2 4;
  let e35 = Vts.create ~ng:3 ~gid:2 ~seq:5 in
  Vts.set_element e35 0 6;
  Vts.set_element e35 1 6;
  Format.printf "  %a  vs  %a:  prec = %b (the paper: e_{2,6} before e_{3,5})@."
    Vts.pp e26 Vts.pp e35 (Vts.prec e26 e35);

  print_endline "\nReplaying the three timestamp streams in different interleavings:";
  (* Round-robin delivery. *)
  let rr = List.concat (List.init 6 (fun _ -> [ 0; 1; 2 ])) in
  let o1 = replay ~label:"  round-robin delivery:" rr in
  (* Stream 2 lags badly, then catches up. *)
  let skewed = [ 0; 0; 1; 0; 1; 0; 1; 1; 0; 1; 0; 1; 2; 2; 2; 2; 2; 2 ] in
  let o2 = replay ~label:"  group-2 stream lags:" skewed in
  (* Reverse-ish order. *)
  let rev = [ 2; 1; 0; 2; 1; 0; 2; 1; 0; 2; 1; 0; 2; 1; 0; 2; 1; 0 ] in
  let o3 = replay ~label:"  reverse round-robin:" rev in

  let shortest = min (List.length o1) (min (List.length o2) (List.length o3)) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let agree =
    take shortest o1 = take shortest o2 && take shortest o2 = take shortest o3
  in
  Printf.printf
    "\nall interleavings agree on the executed prefix (%d entries): %b\n"
    shortest agree;
  print_endline
    "(this is Theorem V.6's agreement: the orderer only releases an entry\n\
    \ once its precedence is certain under ANY values the still-missing\n\
    \ timestamps could take, so delivery order cannot change the result)"
