(* Quickstart: deploy MassBFT on a simulated 3-data-center cluster,
   push a key-value workload through it for a few (simulated) seconds,
   and read the results.

   Run with:  dune exec examples/quickstart.exe *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module Engine = Massbft.Engine
module Ledger = Massbft_exec.Ledger

let () =
  (* 1. A cluster: three 7-node groups with the paper's nationwide RTTs
        (26.7-43.4 ms), 20 Mbps WAN per node, 2.5 Gbps LAN. *)
  let sim = Sim.create () in
  let topo = Topology.create sim (Massbft_harness.Clusters.nationwide ()) in

  (* 2. A MassBFT deployment running YCSB-A. Swap [system] for
        [Config.Baseline] (or Geobft / Steward / Iss / Br / Ebr) to run
        any competitor on the identical cluster. *)
  let cfg =
    {
      (Config.default ~system:Config.Massbft
         ~workload:Massbft_workload.Workload.Ycsb_a ())
      with
      Config.workload_scale = 0.01 (* small keyspace so this demo is instant *);
    }
  in
  let engine = Engine.create sim topo cfg in
  Engine.start engine;

  (* 3. Run five simulated seconds. *)
  Sim.run sim ~until:5.0;

  (* 4. Results: throughput, the globally ordered ledger, agreement. *)
  let m = Engine.metrics engine in
  let committed =
    Massbft_util.Stats.Counter.get m.Massbft.Metrics.committed_txns
  in
  Printf.printf "committed %d transactions in 5 simulated seconds (%.1f ktps)\n"
    committed
    (float_of_int committed /. 5.0 /. 1000.0);
  Printf.printf "mean entry latency: %.1f ms\n"
    (Massbft.Metrics.mean_latency_ms m);

  let ledger = Engine.ledger_of engine ~gid:0 in
  Printf.printf "group 0's ledger: %d blocks, chain verifies: %b\n"
    (Ledger.height ledger) (Ledger.verify ledger);

  (* Every group executed the same entries in the same order. *)
  let l0 = Engine.executed_ids engine ~gid:0 in
  let l1 = Engine.executed_ids engine ~gid:1 in
  let agree =
    List.for_all2 Massbft.Types.entry_id_equal
      (List.filteri (fun i _ -> i < min (List.length l0) (List.length l1)) l0)
      (List.filteri (fun i _ -> i < min (List.length l0) (List.length l1)) l1)
  in
  Printf.printf "groups 0 and 1 agree on the execution order: %b\n" agree;
  Printf.printf "WAN traffic: %.1f MB, LAN traffic: %.1f MB\n"
    (float_of_int (Engine.wan_bytes engine) /. 1e6)
    (float_of_int (Engine.lan_bytes engine) /. 1e6)
