(* The encoded bijective replication pipeline on real bytes, without
   the simulator: Algorithm 1's transfer plan, deterministic erasure
   coding with Merkle authentication, a colluding-tamper attack, bucket
   classification, DoS blacklisting, and the optimistic rebuild —
   exactly the paper's §IV walked through step by step.

   Run with:  dune exec examples/erasure_pipeline.exe *)

module Transfer_plan = Massbft.Transfer_plan
module Chunker = Massbft.Chunker
module Rebuild = Massbft.Rebuild
module Hexdump = Massbft_util.Hexdump

let () =
  (* The paper's §IV-B case study: a 4-node group ships an entry to a
     7-node group. *)
  let plan = Transfer_plan.generate ~n1:4 ~n2:7 in
  Printf.printf
    "plan 4->7: %d chunks total (%d data + %d parity), each sender ships %d, \
     each receiver takes %d; %.2f entry copies cross the WAN (vs %d for \
     bijective full copies)\n\n"
    plan.Transfer_plan.n_total plan.Transfer_plan.n_data
    plan.Transfer_plan.n_parity plan.Transfer_plan.nc_send
    plan.Transfer_plan.nc_recv
    (Transfer_plan.redundancy plan)
    4;

  (* An entry: pretend it is a 20 KB batch of certified transactions. *)
  let entry = String.init 20_000 (fun i -> Char.chr ((i * 131) land 0xff)) in
  let entry_digest = Massbft_crypto.Sha256.digest entry in

  (* Every correct sender derives the identical chunk set. *)
  let chunks = Chunker.encode ~plan ~entry in
  Printf.printf "encoded %d chunks of %d B each, Merkle root %s\n"
    (Array.length chunks)
    (String.length chunks.(0).Chunker.payload)
    (Hexdump.short chunks.(0).Chunker.root);

  (* The adversary: sender node 3 is Byzantine and ships chunks encoded
     from a TAMPERED entry; receivers cannot tell them apart by sight —
     the payloads carry valid Merkle proofs under a different root. *)
  let tampered = String.map (fun c -> Char.chr (Char.code c lxor 1)) entry in
  let fake_chunks = Chunker.encode ~plan ~entry:tampered in
  Printf.printf "adversary encoded a tampered entry under root %s\n\n"
    (Hexdump.short fake_chunks.(0).Chunker.root);

  (* A receiver's view: it gets node 3's chunk ids in the fake version
     and everything else genuine; feed them interleaved. *)
  let rb =
    Rebuild.create ~plan
      ~validate:(fun candidate ->
        String.equal (Massbft_crypto.Sha256.digest candidate) entry_digest)
      ()
  in
  let byz_sender = 3 in
  let byz_ids = List.map fst (Transfer_plan.sends_of plan ~sender:byz_sender) in
  Printf.printf "byzantine sender %d controls chunk ids: %s\n" byz_sender
    (String.concat "," (List.map string_of_int byz_ids));
  let rebuilt = ref None in
  Array.iteri
    (fun i _ ->
      let c = if List.mem i byz_ids then fake_chunks.(i) else chunks.(i) in
      match Rebuild.add rb c with
      | Rebuild.Rebuilt e ->
          if !rebuilt = None then begin
            rebuilt := Some e;
            Printf.printf "chunk %2d completed a valid bucket -> entry rebuilt!\n" i
          end
      | Rebuild.Rejected_fake_bucket ids ->
          Printf.printf
            "chunk %2d filled a bucket that FAILED certificate validation; \
             blacklisted ids: %s\n"
            i
            (String.concat "," (List.map string_of_int ids))
      | Rebuild.Rejected_blacklisted ->
          Printf.printf "chunk %2d refused: its id is blacklisted (DoS guard)\n" i
      | Rebuild.Accepted | Rebuild.Already_done -> ()
      | Rebuild.Rejected_proof -> Printf.printf "chunk %2d: bad Merkle proof\n" i
      | Rebuild.Rejected_duplicate -> ())
    chunks;

  match !rebuilt with
  | Some e ->
      Printf.printf
        "\nrebuilt entry matches the original: %b (%d bytes, digest %s)\n"
        (String.equal e entry) (String.length e)
        (Hexdump.short (Massbft_crypto.Sha256.digest e))
  | None -> print_endline "\nrebuild failed (should not happen!)"
