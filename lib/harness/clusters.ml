module Topology = Massbft_sim.Topology

let wan_bps = 20e6
let lan_bps = 2.5e9
let cores = 8
let lan_rtt = 0.0005

let nationwide_sites =
  [|
    "Zhangjiakou"; "Chengdu"; "Hangzhou"; "Shenzhen"; "Beijing"; "Shanghai";
    "Guangzhou";
  |]

let worldwide_sites = [| "HongKong"; "London"; "SiliconValley" |]

(* Symmetric RTT matrices in seconds. The three primary nationwide sites
   use the paper's reported extremes (26.7 and 43.4 ms); the rest are
   plausible intra-China distances in the same band. *)
let nationwide_matrix_ms =
  [|
    [| 0.0; 43.4; 26.7; 41.0; 8.0; 28.0; 40.0 |];
    [| 43.4; 0.0; 35.0; 30.0; 40.0; 36.0; 31.0 |];
    [| 26.7; 35.0; 0.0; 27.0; 28.0; 6.0; 26.0 |];
    [| 41.0; 30.0; 27.0; 0.0; 42.0; 29.0; 3.0 |];
    [| 8.0; 40.0; 28.0; 42.0; 0.0; 26.0; 41.0 |];
    [| 28.0; 36.0; 6.0; 29.0; 26.0; 0.0; 27.0 |];
    [| 40.0; 31.0; 26.0; 3.0; 41.0; 27.0; 0.0 |];
  |]

let worldwide_matrix_ms =
  [| [| 0.0; 206.0; 156.0 |]; [| 206.0; 0.0; 181.0 |]; [| 156.0; 181.0; 0.0 |] |]

let rtt_of matrix g1 g2 =
  let n = Array.length matrix in
  if g1 < 0 || g2 < 0 || g1 >= n || g2 >= n then
    invalid_arg "Clusters: group out of range for this cluster";
  matrix.(g1).(g2) /. 1000.0

let nationwide_rtt = rtt_of nationwide_matrix_ms
let worldwide_rtt = rtt_of worldwide_matrix_ms

let spec_of ~rtt ~group_sizes =
  {
    Topology.group_sizes;
    wan_bps;
    lan_bps;
    rtt;
    lan_rtt;
    cores;
  }

let sizes ?group_sizes ?(nodes_per_group = 7) ~groups () =
  match group_sizes with
  | Some s ->
      if Array.length s <> groups then
        invalid_arg "Clusters: group_sizes length mismatch";
      s
  | None -> Array.make groups nodes_per_group

let nationwide ?group_sizes ?nodes_per_group ?(groups = 3) () =
  if groups < 1 || groups > Array.length nationwide_sites then
    invalid_arg "Clusters.nationwide: 1..7 groups";
  spec_of ~rtt:nationwide_rtt
    ~group_sizes:(sizes ?group_sizes ?nodes_per_group ~groups ())

let worldwide ?group_sizes ?nodes_per_group () =
  spec_of ~rtt:worldwide_rtt
    ~group_sizes:(sizes ?group_sizes ?nodes_per_group ~groups:3 ())
