module Config = Massbft.Config
module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Stats = Massbft_util.Stats
module W = Massbft_workload.Workload

type micro = { m_name : string; ns_per_run : float }

type macro = {
  system : string;
  workload : string;
  wall_s : float;
  sim_s : float;
  sim_s_per_wall_s : float;
  committed_txns : int;
  committed_txns_per_wall_s : float;
  throughput_ktps : float;
  mean_latency_ms : float;
  p99_latency_ms : float;
  commit_ratio : float;
  wan_mb : float;
}

let schema_version = 1

(* Quick mode mirrors the CI figure smoke (short windows, 1% workload
   scale); full mode the figure harness proper. *)
let windows ~quick = if quick then (1.0, 3.0) else (4.0, 12.0)

let run_macro ?(quick = false) ~system () =
  let warmup, duration = windows ~quick in
  let cfg =
    {
      (Config.default ~system ~workload:W.Ycsb_a ()) with
      Config.workload_scale = (if quick then 0.01 else 1.0);
    }
  in
  let spec = Clusters.nationwide () in
  let engine = ref None in
  let t0 = Unix.gettimeofday () in
  let r =
    Runner.run ~warmup ~duration
      ~on_engine:(fun e _ _ -> engine := Some e)
      ~spec ~cfg ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let committed =
    match !engine with
    | None -> 0
    | Some e -> Stats.Counter.get (Engine.metrics e).Metrics.committed_txns
  in
  let sim_s = warmup +. duration in
  {
    system = Config.system_name system;
    workload = W.kind_name cfg.Config.workload;
    wall_s;
    sim_s;
    sim_s_per_wall_s = (if wall_s > 0.0 then sim_s /. wall_s else 0.0);
    committed_txns = committed;
    committed_txns_per_wall_s =
      (if wall_s > 0.0 then float_of_int committed /. wall_s else 0.0);
    throughput_ktps = r.Runner.throughput_ktps;
    mean_latency_ms = r.Runner.mean_latency_ms;
    p99_latency_ms = r.Runner.p99_latency_ms;
    commit_ratio = r.Runner.commit_ratio;
    wan_mb = r.Runner.wan_mb;
  }

(* ---- JSON rendering ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let num ~ctx v =
  if not (Float.is_finite v) then
    invalid_arg
      (Printf.sprintf "Bench_report.to_json: non-finite value for %s" ctx)
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ",\n    " items ^ "]"

let micro_json m =
  obj
    [
      ("name", str m.m_name);
      ("ns_per_run", num ~ctx:(m.m_name ^ ".ns_per_run") m.ns_per_run);
    ]

let macro_json m =
  let n ctx v = num ~ctx:(m.system ^ "." ^ ctx) v in
  obj
    [
      ("system", str m.system);
      ("workload", str m.workload);
      ("wall_s", n "wall_s" m.wall_s);
      ("sim_s", n "sim_s" m.sim_s);
      ("sim_s_per_wall_s", n "sim_s_per_wall_s" m.sim_s_per_wall_s);
      ("committed_txns", string_of_int m.committed_txns);
      ( "committed_txns_per_wall_s",
        n "committed_txns_per_wall_s" m.committed_txns_per_wall_s );
      ("throughput_ktps", n "throughput_ktps" m.throughput_ktps);
      ("mean_latency_ms", n "mean_latency_ms" m.mean_latency_ms);
      ("p99_latency_ms", n "p99_latency_ms" m.p99_latency_ms);
      ("commit_ratio", n "commit_ratio" m.commit_ratio);
      ("wan_mb", n "wan_mb" m.wan_mb);
    ]

let to_json ~date ~mode ~micros ~macros =
  Printf.sprintf
    "{\n\
    \  \"schema_version\": %d,\n\
    \  \"date\": %s,\n\
    \  \"mode\": %s,\n\
    \  \"micro\": %s,\n\
    \  \"macro\": %s\n\
     }\n"
    schema_version (str date) (str mode)
    (arr (List.map micro_json micros))
    (arr (List.map macro_json macros))
