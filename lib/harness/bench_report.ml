module Config = Massbft.Config
module Engine = Massbft.Engine
module Metrics = Massbft.Metrics
module Stats = Massbft_util.Stats
module W = Massbft_workload.Workload

type micro = { m_name : string; ns_per_run : float }

type macro = {
  system : string;
  workload : string;
  wall_s : float;
  sim_s : float;
  sim_s_per_wall_s : float;
  committed_txns : int;
  committed_txns_per_wall_s : float;
  throughput_ktps : float;
  mean_latency_ms : float;
  p99_latency_ms : float;
  commit_ratio : float;
  wan_mb : float;
  host_phases : (string * float) list;
      (* per-phase host wall breakdown from the self-profiler; [] when
         the row ran unprofiled (the baseline-comparable default) *)
}

type scaling = {
  sc_groups : int;
  sc_domains : int;
  sc_wall_s : float;
  sc_sim_s : float;
  sc_sim_s_per_wall_s : float;
  sc_committed_txns : int;
}

(* v2 added the "scaling" and "host_domains" fields; v3 the optional
   per-macro "host_phases" wall breakdown from the self-profiler. *)
let schema_version = 3

(* Quick mode mirrors the CI figure smoke (short windows, 1% workload
   scale); full mode the figure harness proper. *)
let windows ~quick = if quick then (1.0, 3.0) else (4.0, 12.0)

let run_macro ?(quick = false) ?prof ?domains ~system () =
  let warmup, duration = windows ~quick in
  let cfg =
    {
      (Config.default ~system ~workload:W.Ycsb_a ()) with
      Config.workload_scale = (if quick then 0.01 else 1.0);
    }
  in
  let spec = Clusters.nationwide () in
  let engine = ref None in
  let t0 = Unix.gettimeofday () in
  let r =
    Runner.run ~warmup ~duration ?prof ?domains
      ~on_engine:(fun e _ _ -> engine := Some e)
      ~spec ~cfg ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let committed =
    match !engine with
    | None -> 0
    | Some e -> Stats.Counter.get (Engine.metrics e).Metrics.committed_txns
  in
  let sim_s = warmup +. duration in
  {
    system = Config.system_name system;
    workload = W.kind_name cfg.Config.workload;
    wall_s;
    sim_s;
    sim_s_per_wall_s = (if wall_s > 0.0 then sim_s /. wall_s else 0.0);
    committed_txns = committed;
    committed_txns_per_wall_s =
      (if wall_s > 0.0 then float_of_int committed /. wall_s else 0.0);
    throughput_ktps = r.Runner.throughput_ktps;
    mean_latency_ms = r.Runner.mean_latency_ms;
    p99_latency_ms = r.Runner.p99_latency_ms;
    commit_ratio = r.Runner.commit_ratio;
    wan_mb = r.Runner.wan_mb;
    host_phases =
      (match prof with
      | None -> []
      | Some p ->
          let rp = Massbft_prof.Prof.report p in
          [
            ("execute", rp.Massbft_prof.Prof.rp_execute_span_s);
            ("barrier_stall", rp.Massbft_prof.Prof.rp_stall_s);
            ("mailbox_merge", rp.Massbft_prof.Prof.rp_merge_s);
            ("coordinator", rp.Massbft_prof.Prof.rp_coord_s);
          ]);
  }

let run_scaling_row ~quick ~groups ~domains =
  (* Each row starts from a compacted major heap: the macro section
     abandons hundreds of MB of stores and ledgers per system, and the
     resulting fragmentation bleeds 20%+ into whichever rows run later
     in the same process — the rows must measure the driver, not the
     report's section order. *)
  Gc.compact ();
  let warmup, duration = windows ~quick in
  let cfg =
    {
      (Config.default ~system:Config.Massbft ~workload:W.Ycsb_a ()) with
      Config.workload_scale = (if quick then 0.01 else 1.0);
      (* Forced on for every row, not just the parallel ones: the
         parallel driver requires per-group stores, so pinning the
         sequential rows to the same setting keeps the semantic work
         identical across the table — only the driver varies. *)
      independent_stores = true;
    }
  in
  let spec = Clusters.nationwide ~groups () in
  let engine = ref None in
  let t0 = Unix.gettimeofday () in
  ignore
    (Runner.run ~warmup ~duration ~domains
       ~on_engine:(fun e _ _ -> engine := Some e)
       ~spec ~cfg ());
  let wall_s = Unix.gettimeofday () -. t0 in
  let committed =
    match !engine with
    | None -> 0
    | Some e -> Stats.Counter.get (Engine.metrics e).Metrics.committed_txns
  in
  let sim_s = warmup +. duration in
  {
    sc_groups = groups;
    sc_domains = domains;
    sc_wall_s = wall_s;
    sc_sim_s = sim_s;
    sc_sim_s_per_wall_s = (if wall_s > 0.0 then sim_s /. wall_s else 0.0);
    sc_committed_txns = committed;
  }

let run_scaling ?(quick = false) ?(groups_list = [ 3; 5 ])
    ?(domains_list = [ 1; 2; 4 ]) ?(on_row = fun _ -> ()) () =
  (* An enlarged minor heap for the scaling runs only (restored after):
     every minor collection is a stop-the-world rendezvous across the
     parallel driver's domains, and the runtime default collects so
     often that the barrier cost swamps the row differences. The same
     setting applies to every row, sequential included, so the table
     stays internally comparable; the separate "macro" section keeps
     the untuned runtime for comparability with older baselines. *)
  let prev = Gc.get () in
  Gc.set { prev with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Fun.protect
    ~finally:(fun () -> Gc.set prev)
    (fun () ->
      List.concat_map
        (fun groups ->
          List.map
            (fun domains ->
              let row = run_scaling_row ~quick ~groups ~domains in
              on_row row;
              row)
            domains_list)
        groups_list)

(* ---- JSON rendering ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let num ~ctx v =
  if not (Float.is_finite v) then
    invalid_arg
      (Printf.sprintf "Bench_report.to_json: non-finite value for %s" ctx)
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ",\n    " items ^ "]"

let micro_json m =
  obj
    [
      ("name", str m.m_name);
      ("ns_per_run", num ~ctx:(m.m_name ^ ".ns_per_run") m.ns_per_run);
    ]

let macro_json m =
  let n ctx v = num ~ctx:(m.system ^ "." ^ ctx) v in
  obj
    ([
      ("system", str m.system);
      ("workload", str m.workload);
      ("wall_s", n "wall_s" m.wall_s);
      ("sim_s", n "sim_s" m.sim_s);
      ("sim_s_per_wall_s", n "sim_s_per_wall_s" m.sim_s_per_wall_s);
      ("committed_txns", string_of_int m.committed_txns);
      ( "committed_txns_per_wall_s",
        n "committed_txns_per_wall_s" m.committed_txns_per_wall_s );
      ("throughput_ktps", n "throughput_ktps" m.throughput_ktps);
      ("mean_latency_ms", n "mean_latency_ms" m.mean_latency_ms);
      ("p99_latency_ms", n "p99_latency_ms" m.p99_latency_ms);
      ("commit_ratio", n "commit_ratio" m.commit_ratio);
      ("wan_mb", n "wan_mb" m.wan_mb);
    ]
    @
    (* Optional in v3: only profiled rows carry the breakdown, so
       unprofiled reports stay byte-comparable with v2 consumers that
       ignore unknown keys. *)
    (if m.host_phases = [] then []
     else
       [
         ( "host_phases",
           obj
             (List.map
                (fun (k, v) -> (k, n ("host_phases." ^ k) v))
                m.host_phases) );
       ]))

let scaling_json s =
  let ctx = Printf.sprintf "scaling[g=%d,d=%d]" s.sc_groups s.sc_domains in
  let n c v = num ~ctx:(ctx ^ "." ^ c) v in
  obj
    [
      ("groups", string_of_int s.sc_groups);
      ("domains", string_of_int s.sc_domains);
      ("wall_s", n "wall_s" s.sc_wall_s);
      ("sim_s", n "sim_s" s.sc_sim_s);
      ("sim_s_per_wall_s", n "sim_s_per_wall_s" s.sc_sim_s_per_wall_s);
      ("committed_txns", string_of_int s.sc_committed_txns);
    ]

let to_json ~date ~mode ?(scaling = []) ~micros ~macros () =
  (* host_domains records the parallelism actually available where the
     numbers were taken: a scaling table measured on a single-CPU host
     shows windowed-driver overhead, not speedup, and must say so. *)
  Printf.sprintf
    "{\n\
    \  \"schema_version\": %d,\n\
    \  \"date\": %s,\n\
    \  \"mode\": %s,\n\
    \  \"host_domains\": %d,\n\
    \  \"micro\": %s,\n\
    \  \"macro\": %s,\n\
    \  \"scaling\": %s\n\
     }\n"
    schema_version (str date) (str mode)
    (Domain.recommended_domain_count ())
    (arr (List.map micro_json micros))
    (arr (List.map macro_json macros))
    (arr (List.map scaling_json scaling))
