(** One-experiment runner: builds a simulator + topology + engine from a
    config, runs warm-up and measurement windows, and extracts the
    numbers the figures report. *)

type result = {
  system : Massbft.Config.system;
  workload : Massbft_workload.Workload.kind;
  throughput_ktps : float;  (** committed transactions per second / 1000 *)
  mean_latency_ms : float;
  p99_latency_ms : float;
  commit_ratio : float;  (** Aria committed / (committed + conflicted) *)
  entries_executed : int;
  wan_mb : float;  (** during the measurement window *)
  lan_mb : float;
  wan_mb_per_entry : float;
  rate_series : (float * float) list;  (** (second, committed tps) *)
  latency_series : (float * float) list;  (** (second, mean latency s) *)
  phases_ms : (string * float) list;  (** Figure 11 breakdown *)
  per_group_ktps : float list;  (** throughput split by proposing group *)
}

val run :
  ?duration:float ->
  ?warmup:float ->
  ?trace:Massbft_trace.Trace.t ->
  ?on_engine:(Massbft.Engine.t -> Massbft_sim.Sim.t -> Massbft_sim.Topology.t -> unit) ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  unit ->
  result
(** Defaults: 4 s warm-up, 12 s measurement. [trace] is attached via
    {!Massbft.Engine.set_trace} before [Engine.start], so the sink
    observes the whole run including warm-up. [on_engine] runs after
    [Engine.start] and before the clock moves — the hook for experiment-
    specific setup (bandwidth degradation, recovery schedules...). *)

val run_latency_probe :
  ?duration:float ->
  ?warmup:float ->
  ?trace:Massbft_trace.Trace.t ->
  ?on_engine:(Massbft.Engine.t -> Massbft_sim.Sim.t -> Massbft_sim.Topology.t -> unit) ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  unit ->
  result
(** Same cluster and system, but small batches (40 txns) and a shallow
    pipeline: the near-unloaded operating point whose mean latency
    corresponds to the latencies the paper reports next to peak
    throughput. *)

val pp_result : Format.formatter -> result -> unit
