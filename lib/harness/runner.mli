(** One-experiment runner: builds a simulator + topology + engine from a
    config, runs warm-up and measurement windows, and extracts the
    numbers the figures report. *)

type result = {
  system : Massbft.Config.system;
  workload : Massbft_workload.Workload.kind;
  throughput_ktps : float;  (** committed transactions per second / 1000 *)
  mean_latency_ms : float;
  p99_latency_ms : float;
  commit_ratio : float;  (** Aria committed / (committed + conflicted) *)
  entries_executed : int;
  wan_mb : float;  (** during the measurement window *)
  lan_mb : float;
  wan_mb_per_entry : float;
  rate_series : (float * float) list;  (** (second, committed tps) *)
  latency_series : (float * float) list;  (** (second, mean latency s) *)
  phases_ms : (string * float) list;  (** Figure 11 breakdown *)
  per_group_ktps : float list;  (** throughput split by proposing group *)
  leader_wan_busy : float list;
      (** per-group leader WAN-uplink bulk busy fraction, averaged over
          the measurement window; [[]] when no sampler was passed *)
  leader_cpu_util : float list;
      (** per-group leader CPU utilization, same window; [[]] without a
          sampler *)
  binding_resource : string option;
      (** {!Massbft_obs.Saturation.binding}'s verdict (e.g.
          ["g0/n0 wan_up"]); [None] without a sampler *)
}

val run :
  ?duration:float ->
  ?warmup:float ->
  ?trace:Massbft_trace.Trace.t ->
  ?obs:Massbft_obs.Sampler.t ->
  ?prof:Massbft_prof.Prof.t ->
  ?on_engine:(Massbft.Engine.t -> Massbft_sim.Sim.t -> Massbft_sim.Topology.t -> unit) ->
  ?faults:Massbft_faults.Fault_spec.schedule ->
  ?adversary:Massbft_adversary.Adv_spec.plan ->
  ?reconfig:Massbft_reconfig.Reconfig_spec.plan ->
  ?on_reconfig:(Massbft_reconfig.Reconfig.t -> unit) ->
  ?domains:int ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  unit ->
  result
(** Defaults: 4 s warm-up, 12 s measurement. [trace] is attached via
    {!Massbft.Engine.set_trace} before [Engine.start], so the sink
    observes the whole run including warm-up. [obs] must be a fresh,
    unattached sampler: the runner registers the fabric probes
    ({!Massbft_obs.Sampler.watch_topology}) and the engine's stage
    instruments ({!Massbft.Engine.set_obs}), attaches it, and resets
    its rows at the warm-up cutoff so saturation analysis covers only
    the measurement window; the utilization result fields are filled
    from it. Without [obs] nothing is scheduled and results are
    bit-identical to a build without observability. Tracing and
    metrics are independent — pass either, both, or neither.
    [on_engine] runs after [Engine.start] and before the clock moves —
    the hook for experiment-specific setup (bandwidth degradation,
    recovery schedules...). [faults] arms a
    {!Massbft_faults.Injector} over the schedule (times are absolute
    simulated seconds, so faults meant for the measurement window must
    land after [warmup]); omitting it — or passing [[]] — arms nothing
    and the run is bit-identical to a fault-free one. [adversary] arms
    a {!Massbft_adversary.Adversary} over the plan (same absolute-time
    and no-op contract as [faults]).

    [reconfig] validates and arms a live-membership plan
    ({!Massbft_reconfig.Reconfig}): the topology is expanded by
    {!Massbft_reconfig.Reconfig_spec.provision} before the cluster is
    built, the controller is armed before [Engine.start], and
    [on_reconfig] receives it (for epoch-aware checks and join
    receipts). An empty or omitted plan provisions and arms nothing —
    byte-identical to a build without the subsystem. Plans require
    [domains = 1].

    The scheduler always runs one shard per group behind the scenes;
    [domains] (default 1, clamped to the group count) selects how many
    OCaml domains pump them. [domains = 1] is the sequential merge
    driver — byte-identical to the historical single-heap runs.
    [domains > 1] drives the shards in WAN-lookahead windows
    ({!Massbft_sim.Sim.run_parallel}): committed transactions, ledgers
    and invariant verdicts match the sequential run, but event
    interleaving (hence traces, samplers and adversary interposers,
    which are rejected) and the exact traffic baseline cut may differ.
    Parallel runs force [independent_stores]. Requesting more domains
    than the host has cores prints a once-per-process warning: the
    parallel rows then time-share and measure overhead, not speedup.

    [prof] is a fresh, unattached {!Massbft_prof.Prof.t}: the runner
    attaches it before the clock moves and freezes its wall endpoint
    the moment the drive loop returns, so {!Massbft_prof.Prof.report}
    covers exactly the scheduler's own execution. Profiling hooks only
    window boundaries — no events are scheduled and no simulation
    state is read — so results (and golden fixtures) are byte-identical
    with or without it, in every run mode including [domains > 1]. *)

val run_latency_probe :
  ?duration:float ->
  ?warmup:float ->
  ?trace:Massbft_trace.Trace.t ->
  ?obs:Massbft_obs.Sampler.t ->
  ?prof:Massbft_prof.Prof.t ->
  ?on_engine:(Massbft.Engine.t -> Massbft_sim.Sim.t -> Massbft_sim.Topology.t -> unit) ->
  ?faults:Massbft_faults.Fault_spec.schedule ->
  ?adversary:Massbft_adversary.Adv_spec.plan ->
  ?reconfig:Massbft_reconfig.Reconfig_spec.plan ->
  ?on_reconfig:(Massbft_reconfig.Reconfig.t -> unit) ->
  ?domains:int ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  unit ->
  result
(** Same cluster and system, but small batches (40 txns) and a shallow
    pipeline: the near-unloaded operating point whose mean latency
    corresponds to the latencies the paper reports next to peak
    throughput. *)

val pp_result : Format.formatter -> result -> unit
