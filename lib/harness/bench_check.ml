(* The bench-regression gate: compare a fresh quick-mode micro run
   against a committed BENCH_<date>.json baseline.

   Micro rows are the right gate unit: bechamel's OLS ns/run estimates
   are stable within a host (the committed baseline and CI use the same
   runner class), whereas macro wall times swing with workload scale
   and host load. The tolerance is per-benchmark and deliberately wide
   (default ±25%) — the gate exists to catch step-change regressions
   from a bad refactor, not 3% noise. *)

(* ---- A minimal JSON reader ----

   The repo renders all its JSON by hand (see Bench_report) and has no
   parser dependency; the gate needs to read back only what we
   ourselves wrote, so a small recursive-descent parser over the full
   JSON grammar is enough and keeps the no-new-deps rule intact. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

  type state = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.s
      &&
      match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    match peek st with
    | Some d when d = c -> st.pos <- st.pos + 1
    | Some d -> fail "expected '%c' at offset %d, found '%c'" c st.pos d
    | None -> fail "expected '%c' at offset %d, found end of input" c st.pos

  let literal st word v =
    let n = String.length word in
    if
      st.pos + n <= String.length st.s
      && String.sub st.s st.pos n = word
    then begin
      st.pos <- st.pos + n;
      v
    end
    else fail "invalid literal at offset %d" st.pos

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if st.pos >= String.length st.s then fail "unterminated string";
      let c = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if st.pos >= String.length st.s then fail "unterminated escape";
          let e = st.s.[st.pos] in
          st.pos <- st.pos + 1;
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if st.pos + 4 > String.length st.s then fail "bad \\u escape";
              let hex = String.sub st.s st.pos 4 in
              st.pos <- st.pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape \"%s\"" hex
              in
              (* The repo's own writers only escape control characters,
                 so plain Latin-1 coverage is sufficient here. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | _ -> fail "bad escape '\\%c'" e)
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      st.pos < String.length st.s && is_num_char st.s.[st.pos]
    do
      st.pos <- st.pos + 1
    done;
    let text = String.sub st.s start (st.pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number %S at offset %d" text start

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        expect st '{';
        skip_ws st;
        if peek st = Some '}' then begin
          expect st '}';
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws st;
            let k = parse_string st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                expect st ',';
                members ((k, v) :: acc)
            | Some '}' ->
                expect st '}';
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}' at offset %d" st.pos
          in
          members []
        end
    | Some '[' ->
        expect st '[';
        skip_ws st;
        if peek st = Some ']' then begin
          expect st ']';
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                expect st ',';
                items (v :: acc)
            | Some ']' ->
                expect st ']';
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']' at offset %d" st.pos
          in
          items []
        end
    | Some '"' -> Str (parse_string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> parse_number st

  let parse s =
    let st = { s; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then
      fail "trailing bytes at offset %d" st.pos;
    v

  let of_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> parse (really_input_string ic (in_channel_length ic)))

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

  let to_float = function Num f -> Some f | _ -> None
  let to_string = function Str s -> Some s | _ -> None
  let to_list = function Arr l -> Some l | _ -> None
end

(* ---- Baseline extraction ---- *)

type baseline = {
  b_path : string;
  b_date : string;
  b_mode : string;
  b_schema : int;
  b_micros : (string * float) list;  (* name -> ns_per_run *)
}

let load_baseline path =
  let doc =
    try Json.of_file path with
    | Json.Parse_error m -> failwith (path ^ ": " ^ m)
    | Sys_error m -> failwith m
  in
  let schema =
    match Json.member "schema_version" doc with
    | Some (Json.Num f) -> int_of_float f
    | _ -> failwith (path ^ ": missing schema_version")
  in
  let str_field k =
    Option.value ~default:""
      (Option.bind (Json.member k doc) Json.to_string)
  in
  let micros =
    match Option.bind (Json.member "micro" doc) Json.to_list with
    | None -> failwith (path ^ ": missing micro array")
    | Some rows ->
        List.filter_map
          (fun row ->
            match
              ( Option.bind (Json.member "name" row) Json.to_string,
                Option.bind (Json.member "ns_per_run" row) Json.to_float )
            with
            | Some name, Some ns -> Some (name, ns)
            | _ -> None)
          rows
  in
  if micros = [] then failwith (path ^ ": baseline has no micro rows");
  {
    b_path = path;
    b_date = str_field "date";
    b_mode = str_field "mode";
    b_schema = schema;
    b_micros = micros;
  }

(* ---- Comparison ---- *)

type status = Ok | Regression | Improvement | New | Missing

type verdict = {
  v_name : string;
  v_baseline_ns : float;  (* nan for New *)
  v_current_ns : float;  (* nan for Missing *)
  v_ratio : float;  (* current / baseline; nan when either side absent *)
  v_status : status;
}

type result = {
  r_tolerance : float;
  r_verdicts : verdict list;  (* baseline order, then new benchmarks *)
  r_regressions : int;
  r_missing : int;
}

let default_tolerance = 0.25

let compare_micros ?(tolerance = default_tolerance) ~baseline ~current () =
  if tolerance <= 0.0 then invalid_arg "Bench_check: tolerance must be > 0";
  let verdicts_base =
    List.map
      (fun (name, base_ns) ->
        match List.assoc_opt name current with
        | None ->
            {
              v_name = name;
              v_baseline_ns = base_ns;
              v_current_ns = Float.nan;
              v_ratio = Float.nan;
              v_status = Missing;
            }
        | Some cur_ns ->
            let ratio = if base_ns > 0.0 then cur_ns /. base_ns else 1.0 in
            let status =
              if ratio > 1.0 +. tolerance then Regression
              else if ratio < 1.0 -. tolerance then Improvement
              else Ok
            in
            {
              v_name = name;
              v_baseline_ns = base_ns;
              v_current_ns = cur_ns;
              v_ratio = ratio;
              v_status = status;
            })
      baseline.b_micros
  in
  let verdicts_new =
    List.filter_map
      (fun (name, cur_ns) ->
        if List.mem_assoc name baseline.b_micros then None
        else
          Some
            {
              v_name = name;
              v_baseline_ns = Float.nan;
              v_current_ns = cur_ns;
              v_ratio = Float.nan;
              v_status = New;
            })
      current
  in
  let verdicts = verdicts_base @ verdicts_new in
  let count s =
    List.length (List.filter (fun v -> v.v_status = s) verdicts)
  in
  {
    r_tolerance = tolerance;
    r_verdicts = verdicts;
    r_regressions = count Regression;
    r_missing = count Missing;
  }

(* A missing benchmark fails the gate too: silently dropping a hot-path
   benchmark is exactly how a regression would dodge the comparison. *)
let passed r = r.r_regressions = 0 && r.r_missing = 0

let status_name = function
  | Ok -> "ok"
  | Regression -> "REGRESSION"
  | Improvement -> "improved"
  | New -> "new"
  | Missing -> "MISSING"

let render ~baseline r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "bench check vs %s (%s, %s mode, schema v%d), tolerance +-%.0f%%\n"
    baseline.b_path baseline.b_date baseline.b_mode baseline.b_schema
    (100.0 *. r.r_tolerance);
  List.iter
    (fun v ->
      match v.v_status with
      | Missing ->
          add "  %-32s %10.1f ns ->      (absent)  MISSING\n" v.v_name
            v.v_baseline_ns
      | New ->
          add "  %-32s      (absent) -> %10.1f ns  new\n" v.v_name
            v.v_current_ns
      | s ->
          add "  %-32s %10.1f ns -> %10.1f ns  %+6.1f%%  %s\n" v.v_name
            v.v_baseline_ns v.v_current_ns
            (100.0 *. (v.v_ratio -. 1.0))
            (status_name s))
    r.r_verdicts;
  let improvements =
    List.length
      (List.filter (fun v -> v.v_status = Improvement) r.r_verdicts)
  in
  add "%d benchmarks: %d regression%s, %d missing, %d improved\n"
    (List.length r.r_verdicts) r.r_regressions
    (if r.r_regressions = 1 then "" else "s")
    r.r_missing improvements;
  if passed r then add "bench check: PASS\n"
  else add "bench check: FAIL\n";
  Buffer.contents buf
