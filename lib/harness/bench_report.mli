(** Benchmark baseline reports ([BENCH_<date>.json]).

    The bench executable records two kinds of entries:

    - {e micro}: bechamel OLS estimates (nanoseconds per run) for the
      named substrate hot paths;
    - {e macro}: one full engine run per system on YCSB-A over the
      nationwide cluster, pairing the simulated-side results (which are
      deterministic for a fixed seed) with the wall-clock cost of
      producing them.

    The JSON is rendered here, by hand, so the schema lives in one
    place and tests can validate it without a JSON parser dependency.
    Rendering raises [Invalid_argument] on any non-finite float — a
    NaN in a committed baseline would poison every later comparison. *)

type micro = { m_name : string; ns_per_run : float }

type macro = {
  system : string;  (** e.g. ["MassBFT"] *)
  workload : string;  (** e.g. ["YCSB-A"] *)
  wall_s : float;  (** wall-clock seconds for the whole run *)
  sim_s : float;  (** simulated seconds driven (warmup + measurement) *)
  sim_s_per_wall_s : float;  (** simulator speed: [sim_s /. wall_s] *)
  committed_txns : int;  (** Aria-committed, cluster-wide, whole run *)
  committed_txns_per_wall_s : float;
  throughput_ktps : float;  (** simulated-side, measurement window *)
  mean_latency_ms : float;
  p99_latency_ms : float;
  commit_ratio : float;
  wan_mb : float;
  host_phases : (string * float) list;
      (** per-phase host wall breakdown (seconds) from the
          self-profiler: [execute] / [barrier_stall] / [mailbox_merge]
          / [coordinator]. [[]] when the row ran unprofiled — the
          default, which keeps rows comparable with pre-v3 baselines.
          Serialized (schema v3) as the optional ["host_phases"]
          object. *)
}

val run_macro :
  ?quick:bool ->
  ?prof:Massbft_prof.Prof.t ->
  ?domains:int ->
  system:Massbft.Config.system ->
  unit ->
  macro
(** One engine run on YCSB-A over the 3×7 nationwide cluster. Quick
    mode (1 s warmup + 3 s measurement at 1% workload scale) is the CI
    smoke setting; full mode uses the figure-harness windows (4 s +
    12 s at full scale). Simulated-side fields are deterministic:
    two calls with the same parameters agree on everything except
    [wall_s] and the two [*_per_wall_s] rates derived from it.
    [prof] (a fresh profiler, passed through to {!Runner.run}) fills
    [host_phases] and stays queryable afterwards for the full report;
    [domains] selects the parallel driver as in {!Runner.run}. *)

type scaling = {
  sc_groups : int;  (** cluster group count (= shard count) *)
  sc_domains : int;  (** requested driver domains (clamped to groups) *)
  sc_wall_s : float;
  sc_sim_s : float;
  sc_sim_s_per_wall_s : float;
  sc_committed_txns : int;  (** identical across domain counts — the
      cross-driver determinism check built into the table *)
}

val run_scaling :
  ?quick:bool ->
  ?groups_list:int list ->
  ?domains_list:int list ->
  ?on_row:(scaling -> unit) ->
  unit ->
  scaling list
(** The sharded-scheduler scaling table: one MassBFT/YCSB-A run per
    (groups × domains) pair over the nationwide cluster, all rows with
    [independent_stores] forced on (the parallel driver's requirement)
    so the semantic work is identical across the table and only the
    driver varies. Every row runs with an enlarged minor heap (restored
    afterwards) because minor collections are stop-the-world rendezvous
    across the parallel driver's domains; the "macro" section keeps the
    untuned runtime for baseline comparability. [on_row] fires after
    each row, for progress output. Defaults: groups 3 and 5, domains
    1/2/4. *)

val to_json :
  date:string ->
  mode:string ->
  ?scaling:scaling list ->
  micros:micro list ->
  macros:macro list ->
  unit ->
  string
(** The full report document. [date] is [YYYY-MM-DD]; [mode] is
    ["quick"] or ["full"]. Raises [Invalid_argument] if any float is
    not finite. *)

val schema_version : int
