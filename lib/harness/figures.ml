module Topology = Massbft_sim.Topology
module Config = Massbft.Config
module W = Massbft_workload.Workload
module Transfer_plan = Massbft.Transfer_plan
module Chunker = Massbft.Chunker
module Types = Massbft.Types

type cell = { name : string; value : float; paper : float option }
type row = { label : string; cells : cell list }

type figure = { id : string; title : string; expectation : string; rows : row list }

let c ?paper name value = { name; value; paper }

(* Utilization cells come from a per-run sampler (fig13a / fig14): the
   hottest leader's mean busy fraction makes the binding resource
   visible right in the table. *)
let fresh_sampler () =
  Massbft_obs.Sampler.create (Massbft_obs.Registry.create ())

let hottest = List.fold_left Float.max 0.0

(* Window lengths: every run needs the pipeline/NIC queues to fill
   before measuring; the slow systems (Steward) have multi-second time
   constants. *)
let windows ~quick = if quick then (2.0, 5.0) else (5.0, 12.0)

let base_cfg ?(quick = false) ~system ~workload () =
  {
    (Config.default ~system ~workload ()) with
    Config.workload_scale = (if quick then 0.01 else 1.0);
  }

let run ?(quick = false) ?obs ?on_engine ~spec ~cfg () =
  let warmup, duration = windows ~quick in
  Runner.run ~warmup ~duration ?obs ?on_engine ~spec ~cfg ()

let probe ?(quick = false) ?on_engine ~spec ~cfg () =
  let warmup, duration = windows ~quick in
  Runner.run_latency_probe ~warmup ~duration:(duration /. 2.0) ?on_engine ~spec
    ~cfg ()

(* ------------------------------------------------------------------ *)
(* Fig 1b: GeoBFT throughput vs group size                             *)
(* ------------------------------------------------------------------ *)

let fig1b ?(quick = false) () =
  let sizes = if quick then [ 4; 7; 10 ] else [ 4; 7; 10; 13; 16; 19 ] in
  let rows =
    List.map
      (fun n ->
        let cfg = base_cfg ~quick ~system:Config.Geobft ~workload:W.Ycsb_a () in
        let spec = Clusters.nationwide ~nodes_per_group:n () in
        let r = run ~quick ~spec ~cfg () in
        {
          label = Printf.sprintf "%d nodes/group" n;
          cells = [ c "throughput_ktps" r.Runner.throughput_ktps ];
        })
      sizes
  in
  {
    id = "fig1b";
    title = "GeoBFT throughput under growing group sizes (motivation)";
    expectation =
      "throughput decreases monotonically with group size: the leader must \
       ship f+1 copies per group and its uplink saturates";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Fig 8 / Fig 9: the main performance matrix                          *)
(* ------------------------------------------------------------------ *)

(* Approximate values read off the paper's bar charts (nationwide);
   exact anchors where the text states them. *)
let paper_tput_nationwide system workload =
  match (system, workload) with
  | Config.Massbft, W.Ycsb_a -> Some 35.0
  | Config.Baseline, W.Ycsb_a -> Some 6.4
  | Config.Geobft, W.Ycsb_a -> Some 7.0
  | Config.Steward, W.Ycsb_a -> Some 1.5
  | Config.Iss, W.Ycsb_a -> Some 5.0
  | Config.Massbft, W.Tpcc -> Some 14.0
  | Config.Baseline, W.Tpcc -> Some 2.5
  | _ -> None

let paper_latency_nationwide system workload =
  match (system, workload) with
  | Config.Massbft, W.Ycsb_a -> Some 128.0
  | Config.Baseline, W.Ycsb_a -> Some 119.0
  | Config.Geobft, W.Ycsb_a -> Some 68.0
  | _ -> None

let perf_matrix ?(quick = false) ~id ~title ~spec ~paper_tput ~paper_lat () =
  let systems =
    [ Config.Massbft; Config.Baseline; Config.Geobft; Config.Steward; Config.Iss ]
  in
  let workloads =
    if quick then [ W.Ycsb_a ] else [ W.Ycsb_a; W.Ycsb_b; W.Smallbank; W.Tpcc ]
  in
  let rows =
    List.concat_map
      (fun workload ->
        List.map
          (fun system ->
            let cfg = base_cfg ~quick ~system ~workload () in
            let r = run ~quick ~spec ~cfg () in
            let l = probe ~quick ~spec ~cfg () in
            {
              label =
                Printf.sprintf "%-9s %-9s" (Config.system_name system)
                  (W.kind_name workload);
              cells =
                [
                  c "throughput_ktps" ?paper:(paper_tput system workload)
                    r.Runner.throughput_ktps;
                  c "latency_ms" ?paper:(paper_lat system workload)
                    l.Runner.mean_latency_ms;
                  c "commit_ratio" r.Runner.commit_ratio;
                ];
            })
          systems)
      workloads
  in
  {
    id;
    title;
    expectation =
      "MassBFT leads every workload by 5x-30x over the one-way leader \
       systems; Steward is slowest (single proposer); GeoBFT has the lowest \
       latency (0.5 RTT broadcast), MassBFT's latency is slightly above \
       Baseline's (+0.5 RTT for overlapped VTS assignment)";
    rows;
  }

let fig8 ?(quick = false) () =
  perf_matrix ~quick ~id:"fig8"
    ~title:"Nationwide cluster: throughput and latency (5 systems x 4 workloads)"
    ~spec:(Clusters.nationwide ())
    ~paper_tput:paper_tput_nationwide ~paper_lat:paper_latency_nationwide ()

let fig9 ?(quick = false) () =
  perf_matrix ~quick ~id:"fig9"
    ~title:"Worldwide cluster: throughput and latency (5 systems x 4 workloads)"
    ~spec:(Clusters.worldwide ())
    ~paper_tput:(fun _ _ -> None)
    ~paper_lat:(fun _ _ -> None)
    ()

(* ------------------------------------------------------------------ *)
(* Fig 10: WAN bytes to replicate one entry                            *)
(* ------------------------------------------------------------------ *)

let fig10 ?(quick = false) () =
  ignore quick;
  (* Computed from the same modules the engine uses: chunk wire sizes
     from the transfer plan and Merkle proofs, versus Baseline's f+1
     full copies with certificate. 7-node groups as in the evaluation
     cluster. *)
  let n = 7 in
  let plan = Transfer_plan.generate ~n1:n ~n2:n in
  let f = Massbft_util.Intmath.pbft_f n in
  let rows =
    List.map
      (fun batch ->
        let entry_len = Types.header_bytes + (batch * W.avg_wire_size W.Ycsb_a) in
        let massbft =
          Chunker.total_wire_bytes ~plan ~entry_len
          + Types.raft_meta_bytes ~n
        in
        let baseline = (f + 1) * (entry_len + Types.certificate_bytes ~n) in
        {
          label = Printf.sprintf "%4d txns (%6d B entry)" batch entry_len;
          cells =
            [
              c "massbft_kb" (float_of_int massbft /. 1024.0);
              c "baseline_kb" (float_of_int baseline /. 1024.0);
              c "ratio"
                (float_of_int baseline /. float_of_int (max 1 massbft));
            ];
        })
      [ 50; 100; 200; 400; 800 ]
  in
  {
    id = "fig10";
    title = "WAN traffic to replicate one entry to a remote 7-node group";
    expectation =
      "MassBFT sends ~n_total/n_data = 2.33 entry-equivalents vs Baseline's \
       f+1 = 3 copies; the Merkle-proof and certificate overhead is \
       negligible for realistic batches, so the ratio approaches 3/2.33";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Fig 11: latency breakdown                                           *)
(* ------------------------------------------------------------------ *)

let fig11 ?(quick = false) () =
  (* Full-size batches (so coding costs are representative) at a shallow
     pipeline (so queueing does not drown the phase shares) — the
     operating point the paper's breakdown describes. *)
  let cfg =
    { (base_cfg ~quick ~system:Config.Massbft ~workload:W.Ycsb_a ()) with
      Config.pipeline = 2 }
  in
  let r = run ~quick ~spec:(Clusters.nationwide ()) ~cfg () in
  let rows =
    List.map
      (fun (name, ms) ->
        {
          label = name;
          cells =
            [ c "ms" ms ?paper:(if name = "coding" then Some 2.3 else None) ];
        })
      r.Runner.phases_ms
  in
  {
    id = "fig11";
    title = "MassBFT latency breakdown (YCSB-A, nationwide)";
    expectation =
      "global replication dominates (cross-datacenter RTTs); encoding plus \
       rebuild is ~2.3 ms; local consensus is visible because every node \
       verifies every transaction signature";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Fig 12: heterogeneous group sizes                                   *)
(* ------------------------------------------------------------------ *)

let fig12 ?(quick = false) () =
  let spec = Clusters.nationwide ~group_sizes:[| 4; 7; 7 |] () in
  let rows =
    List.concat_map
      (fun system ->
        let cfg = base_cfg ~quick ~system ~workload:W.Ycsb_a () in
        let r = run ~quick ~spec ~cfg () in
        let l = probe ~quick ~spec ~cfg () in
        [
          {
            label = Config.system_name system;
            cells =
              (List.mapi
                 (fun g t -> c (Printf.sprintf "g%d_ktps" g) t)
                 r.Runner.per_group_ktps
              @ [
                  c "total_ktps" r.Runner.throughput_ktps;
                  c "latency_ms" l.Runner.mean_latency_ms;
                ]);
          };
        ])
      [ Config.Baseline; Config.Br; Config.Ebr; Config.Massbft ]
  in
  {
    id = "fig12";
    title = "Different-sized groups (G1=4 nodes, G2=G3=7): ablation";
    expectation =
      "BR > Baseline (decentralized sending); EBR adds erasure coding but \
       the synchronous rounds cap every group at the slowest (G1's) rate; \
       MassBFT (EBR + async ordering) lets the 7-node groups outrun G1 and \
       wins overall";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Fig 13: scalability                                                 *)
(* ------------------------------------------------------------------ *)

let fig13a ?(quick = false) () =
  let sizes = if quick then [ 4; 10 ] else [ 4; 7; 10; 16; 25; 40 ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun system ->
            (* MassBFT gets large batches so the 20 ms batch cadence is
               never its ceiling (shorter windows keep the 40x3-node
               simulations tractable); Baseline's giant f+1 copies need
               longer windows to reach steady state at all. *)
            let cfg, (warmup, duration) =
              match system with
              | Config.Massbft ->
                  ( { (base_cfg ~quick ~system ~workload:W.Ycsb_a ()) with
                      Config.max_batch = 1000 },
                    if quick then (2.0, 4.0) else (3.0, 6.0) )
              | _ ->
                  ( base_cfg ~quick ~system ~workload:W.Ycsb_a (),
                    if quick then (2.0, 5.0) else (6.0, 14.0) )
            in
            let spec = Clusters.nationwide ~nodes_per_group:n () in
            let obs = fresh_sampler () in
            let r = Runner.run ~warmup ~duration ~obs ~spec ~cfg () in
            {
              label = Printf.sprintf "%-8s %2d nodes/group" (Config.system_name system) n;
              cells =
                [
                  c "throughput_ktps" r.Runner.throughput_ktps;
                  c "leader_wan_busy" (hottest r.Runner.leader_wan_busy);
                  c "leader_cpu_util" (hottest r.Runner.leader_cpu_util);
                ];
            })
          [ Config.Massbft; Config.Baseline ])
      sizes
  in
  {
    id = "fig13a";
    title = "Scaling nodes per group (YCSB-A, nationwide)";
    expectation =
      "Baseline decreases with group size (leader sends f+1 copies); \
       MassBFT grows with aggregate group bandwidth and then plateaus once \
       per-node transaction signature verification saturates the 8 cores";
    rows;
  }

let fig13b ?(quick = false) () =
  let group_counts = if quick then [ 3; 5 ] else [ 3; 4; 5; 6; 7 ] in
  let paper system groups =
    match (system, groups) with
    | Config.Massbft, 3 -> Some 57.20
    | Config.Massbft, 7 -> Some 42.30
    | Config.Baseline, 3 -> Some 6.36
    | Config.Baseline, 7 -> Some 3.97
    | _ -> None
  in
  let rows =
    List.concat_map
      (fun groups ->
        List.map
          (fun system ->
            let cfg = base_cfg ~quick ~system ~workload:W.Ycsb_a () in
            let spec = Clusters.nationwide ~groups () in
            let r = run ~quick ~spec ~cfg () in
            {
              label = Printf.sprintf "%-8s %d groups" (Config.system_name system) groups;
              cells =
                [
                  c "throughput_ktps" ?paper:(paper system groups)
                    r.Runner.throughput_ktps;
                ];
            })
          [ Config.Massbft; Config.Baseline ])
      group_counts
  in
  {
    id = "fig13b";
    title = "Scaling the number of groups (YCSB-A, 7 nodes per group)";
    expectation =
      "both systems lose throughput as groups are added (global Raft does \
       not scale), but MassBFT degrades more gently (paper: -26.0% vs \
       -37.6% from 3 to 7 groups)";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Fig 14: mixed node bandwidths                                       *)
(* ------------------------------------------------------------------ *)

let fig14 ?(quick = false) () =
  let slow_counts = if quick then [ 0; 4 ] else [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let rows =
    List.map
      (fun slow ->
        (* Large batches so that WAN bandwidth — not the 20 ms batch
           cadence — is the binding resource at 40 Mbps. *)
        let cfg =
          { (base_cfg ~quick ~system:Config.Massbft ~workload:W.Ycsb_a ()) with
            Config.max_batch = 1500 }
        in
        let spec =
          { (Clusters.nationwide ()) with Topology.wan_bps = 40e6 }
        in
        let degrade _ _ topo =
          for g = 0 to 2 do
            for k = 1 to slow do
              (* Degrade the highest-numbered nodes, keeping leaders fast. *)
              Topology.set_wan_bandwidth topo { Topology.g; n = 7 - k } 20e6
            done
          done
        in
        let obs = fresh_sampler () in
        let r = run ~quick ~obs ~on_engine:degrade ~spec ~cfg () in
        let l = probe ~quick ~on_engine:degrade ~spec ~cfg () in
        {
          label = Printf.sprintf "%d slow nodes/group" slow;
          cells =
            [
              c "throughput_ktps" r.Runner.throughput_ktps;
              c "latency_ms" l.Runner.mean_latency_ms;
              c "leader_wan_busy" (hottest r.Runner.leader_wan_busy);
              c "leader_cpu_util" (hottest r.Runner.leader_cpu_util);
            ];
        })
      slow_counts
  in
  {
    id = "fig14";
    title = "Nodes with mixed bandwidth (40 Mbps base, 20 Mbps slow nodes)";
    expectation =
      "throughput holds while slow nodes can be treated like the faulty \
       budget; past ~4 slow nodes of 7 the transfer plan must route through \
       them and throughput steps down (paper: -36.9%)";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Fig 15: fault-tolerance time series                                 *)
(* ------------------------------------------------------------------ *)

let fig15 ?(quick = false) () =
  let crash_at = if quick then 12.0 else 40.0 in
  let byz_at = if quick then 7.0 else 20.0 in
  let until = if quick then 20.0 else 60.0 in
  let cfg =
    {
      (base_cfg ~quick ~system:Config.Massbft ~workload:W.Ycsb_a ()) with
      Config.byzantine_per_group = 2;
      byzantine_from_s = byz_at;
      crash_group_at = Some (0, crash_at);
      election_timeout_s = 1.5;
    }
  in
  let sim = Massbft_sim.Sim.create () in
  let topo = Topology.create sim (Clusters.nationwide ()) in
  let eng = Massbft.Engine.create sim topo cfg in
  Massbft.Engine.start eng;
  Massbft.Engine.set_measure_from eng 0.0;
  Massbft_sim.Sim.run sim ~until;
  let m = Massbft.Engine.metrics eng in
  let rates = Massbft_util.Stats.Timeseries.rate_series m.Massbft.Metrics.txn_rate in
  let lats = Massbft_util.Stats.Timeseries.mean_series m.Massbft.Metrics.latency_ts in
  let lat_at t =
    match List.assoc_opt t lats with Some v -> v *. 1000.0 | None -> 0.0
  in
  let rows =
    List.map
      (fun (t, r) ->
        let marker =
          if t >= crash_at && t < crash_at +. 1.0 then " <- group 0 crashes"
          else if t >= byz_at && t < byz_at +. 1.0 then " <- byzantine nodes activate"
          else ""
        in
        {
          label = Printf.sprintf "t=%5.1fs%s" t marker;
          cells = [ c "ktps" (r /. 1000.0); c "latency_ms" (lat_at t) ];
        })
      rates
  in
  {
    id = "fig15";
    title =
      "Fault tolerance over time: 2 Byzantine nodes/group collude from t1; \
       group 0 crashes at t2";
    expectation =
      "tampered chunks are bucketed and blacklisted, so throughput is flat \
       through the Byzantine phase (small latency bump); the group crash \
       stalls ordering until the takeover election, after which throughput \
       settles at ~2/3 (the crashed group no longer proposes)";
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)
(* ------------------------------------------------------------------ *)

let ablations ?(quick = false) () =
  let spec = Clusters.nationwide () in
  let base = base_cfg ~quick ~system:Config.Massbft ~workload:W.Ycsb_a () in
  (* (a) Overlapped vs serial VTS assignment: the Figure 7a/7b choice;
     the serial variant costs one extra WAN round-trip of latency. *)
  let lat cfg = (probe ~quick ~spec ~cfg ()).Runner.mean_latency_ms in
  let lat_overlapped = lat base in
  let lat_serial = lat { base with Config.overlapped_vts = false } in
  (* (b) Aria deterministic reordering: rescues read-after-write-only
     conflicts; visible in the commit ratio under a skewed workload. *)
  let ratio cfg = (run ~quick ~spec ~cfg ()).Runner.commit_ratio in
  let contended =
    { base with Config.workload_scale = (if quick then 0.001 else 0.01) }
  in
  let ratio_reorder = ratio contended in
  let ratio_plain = ratio { contended with Config.reorder = false } in
  {
    id = "ablations";
    title = "Design-choice ablations (MassBFT, YCSB-A, nationwide)";
    expectation =
      "serial (two-phase) VTS assignment costs roughly one extra WAN RTT of \
       latency over the overlapped scheme (SV-B); disabling Aria's \
       deterministic reordering lowers the first-try commit ratio under \
       contention";
    rows =
      [
        {
          label = "vts assignment latency (ms)";
          cells =
            [ c "overlapped" lat_overlapped; c "serial_2phase" lat_serial ];
        };
        {
          label = "aria first-try commit ratio";
          cells = [ c "reordering_on" ratio_reorder; c "reordering_off" ratio_plain ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Tables I and II                                                     *)
(* ------------------------------------------------------------------ *)

let tables () =
  let feature sys repl glob order coding =
    {
      label = Printf.sprintf "%-9s  repl=%-18s global=%-15s order=%-12s coding=%s"
          sys repl glob order coding;
      cells = [];
    }
  in
  {
    id = "tables";
    title = "Tables I/II: systems implemented in this engine";
    expectation = "feature matrix as configured by Config.system";
    rows =
      [
        feature "Steward" "one-way (leader)" "single Raft" "global log" "entire block";
        feature "ISS" "one-way (leader)" "per-group Raft" "sync epochs" "entire block";
        feature "GeoBFT" "one-way (leader)" "broadcast" "sync rounds" "entire block";
        feature "Baseline" "one-way (leader)" "per-group Raft" "sync rounds" "entire block";
        feature "BR" "bijective (full)" "per-group Raft" "sync rounds" "entire block";
        feature "EBR" "encoded bijective" "per-group Raft" "sync rounds" "erasure-coded";
        feature "MassBFT" "encoded bijective" "per-group Raft" "async VTS" "erasure-coded";
      ];
  }

let all =
  [
    ("fig1b", "GeoBFT throughput vs group size (motivation)", fig1b);
    ("fig8", "nationwide cluster performance matrix", fig8);
    ("fig9", "worldwide cluster performance matrix", fig9);
    ("fig10", "WAN traffic per replicated entry", fig10);
    ("fig11", "MassBFT latency breakdown", fig11);
    ("fig12", "heterogeneous group sizes ablation", fig12);
    ("fig13a", "scaling nodes per group", fig13a);
    ("fig13b", "scaling the number of groups", fig13b);
    ("fig14", "mixed node bandwidths", fig14);
    ("fig15", "fault-tolerance time series", fig15);
    ("ablations", "overlapped-VTS and Aria-reordering ablations", ablations);
    ("tables", "Tables I/II feature matrix", fun ?quick () -> ignore quick; tables ());
  ]

let pp_figure fmt f =
  Format.fprintf fmt "=== %s: %s@." f.id f.title;
  Format.fprintf fmt "expectation: %s@." f.expectation;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-32s" r.label;
      List.iter
        (fun cell ->
          match cell.paper with
          | Some p ->
              Format.fprintf fmt "  %s=%.2f (paper ~%.2f)" cell.name cell.value p
          | None -> Format.fprintf fmt "  %s=%.2f" cell.name cell.value)
        r.cells;
      Format.fprintf fmt "@.")
    f.rows;
  Format.fprintf fmt "@."
