module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Engine = Massbft.Engine
module Config = Massbft.Config
module Metrics = Massbft.Metrics
module Stats = Massbft_util.Stats
module Sampler = Massbft_obs.Sampler
module Saturation = Massbft_obs.Saturation
module Injector = Massbft_faults.Injector
module Adversary = Massbft_adversary.Adversary
module Prof = Massbft_prof.Prof
module Reconfig = Massbft_reconfig.Reconfig
module Reconfig_spec = Massbft_reconfig.Reconfig_spec

type result = {
  system : Config.system;
  workload : Massbft_workload.Workload.kind;
  throughput_ktps : float;
  mean_latency_ms : float;
  p99_latency_ms : float;
  commit_ratio : float;
  entries_executed : int;
  wan_mb : float;
  lan_mb : float;
  wan_mb_per_entry : float;
  rate_series : (float * float) list;
  latency_series : (float * float) list;
  phases_ms : (string * float) list;
  per_group_ktps : float list;
  leader_wan_busy : float list;
  leader_cpu_util : float list;
  binding_resource : string option;
}

(* Once per process: a scaling table whose --domains exceeds the host's
   cores measures time-sharing overhead, not speedup — say so out loud
   instead of silently serializing (the BENCH host_domains field records
   the same fact in the committed artifact). *)
let warned_oversubscribed = ref false

let warn_if_oversubscribed requested =
  let host = Domain.recommended_domain_count () in
  if requested > host && not !warned_oversubscribed then begin
    warned_oversubscribed := true;
    Printf.eprintf
      "massbft: warning: %d domains requested but host reports %d core%s; \
       parallel rows will time-share, wall-clock numbers measure overhead \
       rather than speedup\n%!"
      requested host
      (if host = 1 then "" else "s")
  end

let run ?(duration = 12.0) ?(warmup = 4.0) ?trace ?obs ?prof ?on_engine ?faults
    ?adversary ?reconfig ?on_reconfig ?(domains = 1) ~spec ~cfg () =
  (* Sequential experiment sweeps allocate a full cluster per run;
     compact between them so long figure suites stay within memory. *)
  Gc.compact ();
  if domains > 1 then warn_if_oversubscribed domains;
  let ng = Array.length spec.Topology.group_sizes in
  let domains = Stdlib.min domains ng in
  let parallel = domains > 1 in
  if parallel then begin
    (* The trace sink, the sampler's registry and the adversary's
       interposer are single-writer structures the parallel driver
       cannot serialize; the run modes that need them stay sequential. *)
    if trace <> None then
      invalid_arg "Runner.run: tracing requires domains = 1";
    if obs <> None then
      invalid_arg "Runner.run: the sampler requires domains = 1";
    if adversary <> None && adversary <> Some [] then
      invalid_arg "Runner.run: adversary plans require domains = 1";
    if reconfig <> None && reconfig <> Some [] then
      invalid_arg "Runner.run: reconfiguration plans require domains = 1"
  end;
  (* A reconfiguration plan expands the topology up front: every slot
     the plan will ever activate is provisioned dark. An empty plan
     returns the spec unchanged, byte-identically. *)
  let plan = Option.value ~default:[] reconfig in
  (match Reconfig_spec.validate ~group_sizes:spec.Topology.group_sizes plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Runner.run: bad reconfiguration plan: " ^ e));
  let provisioned = Reconfig_spec.provision ~spec plan in
  let spec = provisioned.Reconfig_spec.p_spec in
  (* One shard per physical group, dark slots included. *)
  let ng = Array.length spec.Topology.group_sizes in
  (* Domains share nothing through the store: the memoized-outcome
     shortcut is a cross-shard write, so parallel runs force the
     independent-stores execution mode (semantically equivalent;
     see Config). *)
  let cfg =
    if parallel && not cfg.Config.independent_stores then
      { cfg with Config.independent_stores = true }
    else cfg
  in
  (* One shard per group even when running sequentially: the default
     driver is the sharded merge loop, and [domains] only selects how
     many OCaml domains pump the same shard structure. *)
  let sim =
    Sim.create ~shards:ng ~lookahead:(Topology.min_wan_one_way spec) ()
  in
  let topo = Topology.create sim spec in
  let engine = Engine.create sim topo cfg in
  (match trace with Some tr -> Engine.set_trace engine tr | None -> ());
  (* The host profiler hooks the driver loops only (no events, no sim
     state), so it composes with every run mode, parallel included. *)
  (match prof with Some p -> Prof.attach p sim | None -> ());
  (* Arm the reconfiguration controller before the engine starts: the
     dark slots must be crashed and the membership masks installed
     before the first batch timer fires. An empty plan arms nothing. *)
  let controller = Reconfig.arm engine ~provisioned plan in
  (match on_reconfig with Some f -> f controller | None -> ());
  (* With no sampler, nothing below schedules a single event: the run
     is bit-identical to one without observability. *)
  (match obs with
  | Some s ->
      Sampler.watch_sim s sim;
      Sampler.watch_topology s topo;
      Engine.set_obs engine s;
      Sampler.attach s sim
  | None -> ());
  Engine.start engine;
  Engine.set_measure_from engine warmup;
  (match on_engine with Some f -> f engine sim topo | None -> ());
  (* Fault schedules arm through the same injector as the chaos fuzzer;
     [?faults:None] (or an empty schedule) arms nothing and the run
     stays bit-identical to a fault-free build. *)
  (match faults with
  | Some schedule when schedule <> [] ->
      let registry = Option.map Sampler.registry obs in
      Injector.arm
        (Injector.create ?trace ?registry ~spec ~schedule engine sim topo)
  | Some _ | None -> ());
  (* Adversary plans arm the Byzantine interposer on the typed send
     path; same no-op contract as faults for [None] / []. *)
  (match adversary with
  | Some plan when plan <> [] ->
      let registry = Option.map Sampler.registry obs in
      Adversary.arm (Adversary.create ?trace ?registry ~spec ~plan engine sim)
  | Some _ | None -> ());
  if parallel then begin
    (* Two-phase drive: run to the warm-up cutoff, take the traffic
       baseline at the barrier (a single-threaded safe point), then run
       the measurement window. The sequential mode keeps its in-run
       event so existing byte-for-byte fixtures are untouched. *)
    Sim.run_parallel sim ~domains ~until:warmup ();
    Topology.reset_traffic_baseline topo;
    Sim.run_parallel sim ~domains ~until:(warmup +. duration) ()
  end
  else begin
    ignore
      (Sim.at sim warmup (fun () ->
           Topology.reset_traffic_baseline topo;
           (* Saturation shares cover only the measurement window. *)
           match obs with Some s -> Sampler.reset s | None -> ()));
    Sim.run sim ~until:(warmup +. duration)
  end;
  (* Freeze the profiler's wall endpoint at the moment the clock stops
     moving: metric extraction below is not scheduler time. *)
  (match prof with Some p -> Prof.finish p | None -> ());
  let m = Engine.metrics engine in
  let entries = Stats.Counter.get m.Metrics.entries_executed in
  let wan_mb = float_of_int (Engine.wan_bytes engine) /. 1e6 in
  let leader_wan_busy, leader_cpu_util, binding_resource =
    match obs with
    | None -> ([], [], None)
    | Some s ->
        let per_leader name extra =
          List.init (Topology.n_groups topo) (fun g ->
              let labels =
                [ ("group", string_of_int g); ("node", "0") ] @ extra
              in
              Option.value ~default:0.0 (Sampler.column_mean s ~name ~labels))
        in
        ( per_leader "massbft_nic_busy_fraction"
            [ ("link", "wan_up"); ("class", "bulk") ],
          per_leader "massbft_cpu_utilization" [],
          Option.map
            (fun (v : Saturation.verdict) -> v.Saturation.resource)
            (Saturation.binding s) )
  in
  {
    system = cfg.Config.system;
    workload = cfg.Config.workload;
    throughput_ktps = Metrics.throughput_tps m ~duration /. 1000.0;
    mean_latency_ms = Metrics.mean_latency_ms m;
    p99_latency_ms = Metrics.p99_latency_ms m;
    commit_ratio = Metrics.commit_ratio m;
    entries_executed = entries;
    wan_mb;
    lan_mb = float_of_int (Engine.lan_bytes engine) /. 1e6;
    wan_mb_per_entry = (if entries = 0 then 0.0 else wan_mb /. float_of_int entries);
    rate_series = Stats.Timeseries.rate_series m.Metrics.txn_rate;
    per_group_ktps =
      List.init (Topology.n_groups topo) (fun g ->
          float_of_int (Metrics.group_committed m g) /. duration /. 1000.0);
    latency_series = Stats.Timeseries.mean_series m.Metrics.latency_ts;
    phases_ms =
      [
        ("batching", 1000.0 *. Stats.Summary.mean m.Metrics.phase_batch_s);
        ("local_consensus", 1000.0 *. Stats.Summary.mean m.Metrics.phase_local_s);
        ("coding", 1000.0 *. Stats.Summary.mean m.Metrics.phase_coding_s);
        ("global_replication", 1000.0 *. Stats.Summary.mean m.Metrics.phase_global_s);
        ("ordering", 1000.0 *. Stats.Summary.mean m.Metrics.phase_order_s);
        ("execution", 1000.0 *. Stats.Summary.mean m.Metrics.phase_exec_s);
      ];
    leader_wan_busy;
    leader_cpu_util;
    binding_resource;
  }

(* A light-load run for latency reporting: small batches and a shallow
   pipeline, approximating the near-unloaded operating points at which
   the paper reports its latencies (e.g. GeoBFT's 68 ms is essentially
   the bare pipeline latency). Throughput numbers always come from a
   saturated [run]. *)
let run_latency_probe ?(duration = 6.0) ?(warmup = 2.0) ?trace ?obs ?prof
    ?on_engine ?faults ?adversary ?reconfig ?on_reconfig ?domains ~spec ~cfg ()
    =
  let probe_cfg = { cfg with Config.max_batch = 40; pipeline = 2 } in
  run ~duration ~warmup ?trace ?obs ?prof ?on_engine ?faults ?adversary
    ?reconfig ?on_reconfig ?domains ~spec ~cfg:probe_cfg ()

let pp_result fmt r =
  Format.fprintf fmt
    "%-9s %-9s  %8.2f ktps  lat %7.1f ms (p99 %7.1f)  commit %.3f  wan %8.2f MB  entries %d"
    (Config.system_name r.system)
    (Massbft_workload.Workload.kind_name r.workload)
    r.throughput_ktps r.mean_latency_ms r.p99_latency_ms r.commit_ratio r.wan_mb
    r.entries_executed
