(** The bench-regression gate: compares a fresh micro-benchmark run
    against a committed [BENCH_<date>.json] baseline and fails on
    step-change regressions.

    The gate compares {e micro} rows only (bechamel ns/run): macro wall
    times swing with workload scale and host load, while the micro
    estimates are stable enough for a wide per-benchmark tolerance
    (default ±25%) to separate refactor damage from noise. *)

module Json : sig
  (** A minimal recursive-descent JSON reader — the repo renders its
      JSON by hand and carries no parser dependency, so reading our own
      documents back needs only this. *)

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse : string -> t
  (** Raises {!Parse_error} on malformed input (including trailing
      bytes). *)

  val of_file : string -> t

  val member : string -> t -> t option
  (** Field lookup; [None] on non-objects and absent keys. *)

  val to_float : t -> float option
  val to_string : t -> string option
  val to_list : t -> t list option
end

type baseline = {
  b_path : string;
  b_date : string;
  b_mode : string;  (** ["quick"] or ["full"] *)
  b_schema : int;
  b_micros : (string * float) list;  (** name → ns_per_run *)
}

val load_baseline : string -> baseline
(** Raises [Failure] with a readable message on unreadable files,
    malformed JSON, or documents without micro rows. Any schema version
    with a [micro] array is accepted (v1–v3 all qualify). *)

type status =
  | Ok  (** within tolerance *)
  | Regression  (** current > baseline × (1 + tolerance) *)
  | Improvement  (** current < baseline × (1 − tolerance); informational *)
  | New  (** benchmark exists only in the current run; informational *)
  | Missing  (** benchmark exists only in the baseline; fails the gate *)

type verdict = {
  v_name : string;
  v_baseline_ns : float;  (** [nan] for [New] *)
  v_current_ns : float;  (** [nan] for [Missing] *)
  v_ratio : float;  (** current / baseline; [nan] when either absent *)
  v_status : status;
}

type result = {
  r_tolerance : float;
  r_verdicts : verdict list;  (** baseline order, then new benchmarks *)
  r_regressions : int;
  r_missing : int;
}

val default_tolerance : float
(** 0.25. *)

val compare_micros :
  ?tolerance:float ->
  baseline:baseline ->
  current:(string * float) list ->
  unit ->
  result
(** [current] pairs benchmark names with fresh ns/run estimates.
    Raises [Invalid_argument] on a non-positive tolerance. *)

val passed : result -> bool
(** No regressions and no missing benchmarks — a benchmark silently
    dropped from the suite would otherwise be the easiest way to dodge
    the gate. *)

val render : baseline:baseline -> result -> string
(** Per-benchmark table plus a PASS/FAIL summary line. *)
