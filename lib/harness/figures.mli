(** One reproduction per table and figure of the paper's evaluation
    (§VI), as enumerated in DESIGN.md's experiment index. Each function
    runs the experiment on the simulated substrate and returns a
    printable figure: labeled rows of named values, with the paper's
    reported value attached where the paper states one (figures that are
    only plots carry qualitative expectations instead).

    [quick] shortens the warm-up/measurement windows (used by tests);
    the default windows match EXPERIMENTS.md. *)

type cell = { name : string; value : float; paper : float option }

type row = { label : string; cells : cell list }

type figure = {
  id : string;
  title : string;
  expectation : string;
      (** the qualitative shape the paper reports and this run should
          show *)
  rows : row list;
}

val fig1b : ?quick:bool -> unit -> figure
(** GeoBFT throughput collapse as group size grows (motivation). *)

val fig8 : ?quick:bool -> unit -> figure
(** Nationwide cluster: throughput + latency, 5 systems x 4 workloads. *)

val fig9 : ?quick:bool -> unit -> figure
(** Worldwide cluster: same matrix. *)

val fig10 : ?quick:bool -> unit -> figure
(** WAN traffic for replicating one entry, MassBFT vs Baseline, by
    batch size. *)

val fig11 : ?quick:bool -> unit -> figure
(** MassBFT latency breakdown (batching, local consensus, coding,
    global replication, ordering, execution). *)

val fig12 : ?quick:bool -> unit -> figure
(** Heterogeneous group sizes (4/7/7): Baseline vs BR vs EBR vs MassBFT
    per-group throughput and latency. *)

val fig13a : ?quick:bool -> unit -> figure
(** Scaling nodes per group, MassBFT vs Baseline. *)

val fig13b : ?quick:bool -> unit -> figure
(** Scaling the number of groups 3..7, MassBFT vs Baseline. *)

val fig14 : ?quick:bool -> unit -> figure
(** Mixed node bandwidths: 0..7 slow nodes per group. *)

val fig15 : ?quick:bool -> unit -> figure
(** Fault-tolerance time series: Byzantine tampering, then a group
    crash with takeover. *)

val ablations : ?quick:bool -> unit -> figure
(** Ablations of the design choices DESIGN.md calls out: overlapped vs
    serial VTS assignment (Fig. 7a/7b) and Aria's deterministic
    reordering. *)

val tables : unit -> figure
(** Tables I and II: the qualitative feature matrix, printed for
    completeness. *)

val all : (string * string * (?quick:bool -> unit -> figure)) list
(** (id, one-line description, runner) for every figure above. *)

val pp_figure : Format.formatter -> figure -> unit
