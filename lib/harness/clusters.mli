(** The two physical deployments of the paper's evaluation (§VI),
    reproduced as topology specifications:

    - {e nationwide}: Zhangjiakou / Chengdu / Hangzhou, inter-group RTTs
      26.7–43.4 ms;
    - {e worldwide}: Hong Kong / London / Silicon Valley, RTTs
      156–206 ms;

    each node with an exclusive 20 Mbps WAN link, 2.5 Gbps LAN, and 8
    cores (ecs.c6.2xlarge). The nationwide cluster extends to seven
    groups (adding Shenzhen, Beijing, Shanghai, Guangzhou) for the
    group-scaling experiment (Figure 13b). *)

val wan_bps : float
(** 20 Mbps. *)

val lan_bps : float
(** 2.5 Gbps. *)

val cores : int
(** 8. *)

val nationwide_sites : string array
(** 7 data-center names, in the order groups are assigned. *)

val worldwide_sites : string array

val nationwide :
  ?group_sizes:int array -> ?nodes_per_group:int -> ?groups:int -> unit ->
  Massbft_sim.Topology.spec
(** Defaults: 3 groups of 7 nodes. [group_sizes] overrides individual
    sizes (Figure 12); [groups] may extend to 7 (Figure 13b). *)

val worldwide :
  ?group_sizes:int array -> ?nodes_per_group:int -> unit ->
  Massbft_sim.Topology.spec
(** 3 groups across Hong Kong / London / Silicon Valley. *)

val nationwide_rtt : int -> int -> float
(** Exposed for tests: symmetric, within the paper's 26.7–43.4 ms range
    for the first three sites. *)

val worldwide_rtt : int -> int -> float
