(** Message authentication for the simulated PKI.

    The paper signs messages with ED25519 under a public-key
    infrastructure. This container has no curve library, so — as
    documented in DESIGN.md — we substitute a keyed-MAC scheme backed by
    a registry (the [keyring]) standing in for the PKI: the registry
    maps a signer identity to its secret key, [sign] produces
    HMAC-SHA-256 tags, and [verify] consults the registry. Inside the
    simulation the adversary never learns a correct node's key, so
    unforgeability holds exactly where the protocol needs it; the CPU
    cost of real ED25519 is accounted separately by the simulator's cost
    model ({!Massbft_sim.Cpu}). *)

type keyring
(** The registry of signer identities, playing the role of the PKI. *)

type signature = private string
(** A 32-byte authentication tag. *)

val create_keyring : seed:int64 -> keyring
(** Deterministically derives per-identity keys from [seed]. *)

val register : keyring -> string -> unit
(** [register kr id] creates a key pair for identity [id] (e.g.
    ["g1/n3"]). Registering the same identity twice is idempotent. *)

val sign : keyring -> id:string -> string -> signature
(** [sign kr ~id msg] signs [msg] as identity [id]. Raises
    [Invalid_argument] if [id] was never registered. *)

val verify : keyring -> id:string -> msg:string -> signature -> bool
(** [verify kr ~id ~msg s] checks that [s] is [id]'s signature over
    [msg]. Unregistered identities never verify. *)

val forge : string -> signature
(** A syntactically valid but cryptographically bogus signature, used by
    the fault injector to model Byzantine senders. [verify] rejects it
    except with negligible probability. *)

val signature_size : int
(** Bytes on the wire (64, matching ED25519, so traffic accounting is
    faithful even though the tag itself is 32 bytes). *)
