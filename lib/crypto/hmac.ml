let block = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block then Sha256.digest key else key in
  if String.length key = block then key
  else key ^ String.make (block - String.length key) '\x00'

let xor_pad key byte =
  String.init block (fun i -> Char.chr (Char.code key.[i] lxor byte))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest (xor_pad key 0x36 ^ msg) in
  Sha256.digest (xor_pad key 0x5c ^ inner)

let verify ~key ~msg ~tag =
  let expected = mac ~key msg in
  String.length tag = String.length expected
  &&
  (* Fold over every byte so timing does not leak the mismatch index. *)
  let acc = ref 0 in
  String.iteri
    (fun i c -> acc := !acc lor (Char.code c lxor Char.code expected.[i]))
    tag;
  !acc = 0
