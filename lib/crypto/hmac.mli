(** HMAC-SHA-256 (RFC 2104), the MAC underneath the simulated signature
    scheme. Validated against the RFC 4231 test vectors. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag of [msg] under
    [key]. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of [tag] against [mac ~key msg]. *)
