type tree = { levels : string array array }
(* levels.(0) are the leaf hashes; the last level is the singleton root. *)

type proof = { leaf_index : int; path : string list }

(* Domain-separated hashing through one reused context per domain:
   feeding the tag and operands as separate updates avoids the per-hash
   concatenation copy ("\x01" ^ l ^ r), which the replication verify
   path paid on every tree node of every received chunk. The context is
   domain-local (the parallel scheduler driver hashes concurrently);
   neither hash re-enters the other within a domain, so one scratch per
   domain suffices. *)
let scratch = Domain.DLS.new_key Sha256.init

let leaf_hash data =
  let c = Domain.DLS.get scratch in
  Sha256.reset c;
  Sha256.update c "\x00";
  Sha256.update c data;
  Sha256.finalize c

let node_hash l r =
  let c = Domain.DLS.get scratch in
  Sha256.reset c;
  Sha256.update c "\x01";
  Sha256.update c l;
  Sha256.update c r;
  Sha256.finalize c

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: empty leaf list";
  let level0 = Array.of_list (List.map leaf_hash leaves) in
  let rec grow acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let next =
        Array.init ((n + 1) / 2) (fun i ->
            let l = level.(2 * i) in
            let r = if (2 * i) + 1 < n then level.((2 * i) + 1) else l in
            node_hash l r)
      in
      grow (level :: acc) next
    end
  in
  { levels = Array.of_list (grow [] level0) }

let root t = t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = Array.length t.levels.(0)

let prove t i =
  if i < 0 || i >= leaf_count t then invalid_arg "Merkle.prove: index out of range";
  let path = ref [] in
  let idx = ref i in
  for lvl = 0 to Array.length t.levels - 2 do
    let level = t.levels.(lvl) in
    let sibling =
      let j = !idx lxor 1 in
      if j < Array.length level then level.(j) else level.(!idx)
    in
    path := sibling :: !path;
    idx := !idx / 2
  done;
  { leaf_index = i; path = List.rev !path }

let verify ~root:expected ~leaf proof =
  let acc = ref (leaf_hash leaf) in
  let idx = ref proof.leaf_index in
  List.iter
    (fun sibling ->
      acc :=
        (if !idx land 1 = 0 then node_hash !acc sibling
         else node_hash sibling !acc);
      idx := !idx / 2)
    proof.path;
  String.equal !acc expected

let proof_size proof = (32 * List.length proof.path) + 4

type multiproof = { mp_indices : int list; mp_nodes : string list }

module ISet = Set.Make (Int)

(* Walk the tree level by level. At each level the verifier will know
   the hashes at [known] positions; every sibling of a known position
   that is not itself known must travel in the proof. *)
let multiproof_plan t indices =
  let rec go lvl known acc =
    if lvl >= Array.length t.levels - 1 then List.rev acc
    else begin
      let width = Array.length t.levels.(lvl) in
      let needed =
        ISet.fold
          (fun i need ->
            let sib = i lxor 1 in
            if sib < width && not (ISet.mem sib known) then ISet.add sib need
            else need)
          known ISet.empty
      in
      let parents =
        ISet.fold (fun i ps -> ISet.add (i / 2) ps) known ISet.empty
      in
      go (lvl + 1) parents ((lvl, ISet.elements needed) :: acc)
    end
  in
  go 0 (ISet.of_list indices) []

let check_indices t indices =
  if indices = [] then invalid_arg "Merkle.prove_many: empty index list";
  let set = ISet.of_list indices in
  if ISet.cardinal set <> List.length indices then
    invalid_arg "Merkle.prove_many: duplicate indices";
  if ISet.min_elt set < 0 || ISet.max_elt set >= leaf_count t then
    invalid_arg "Merkle.prove_many: index out of range";
  ISet.elements set

let prove_many t indices =
  let indices = check_indices t indices in
  let nodes =
    List.concat_map
      (fun (lvl, needs) -> List.map (fun i -> t.levels.(lvl).(i)) needs)
      (multiproof_plan t indices)
  in
  { mp_indices = indices; mp_nodes = nodes }

let verify_many ~root:expected ~leaf_count ~leaves mp =
  let module IMap = Map.Make (Int) in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) leaves in
  if leaf_count < 1 || List.map fst sorted <> mp.mp_indices then false
  else begin
    let known =
      List.fold_left
        (fun m (i, leaf) -> IMap.add i (leaf_hash leaf) m)
        IMap.empty sorted
    in
    (* Mirror the prover level by level, using the known tree widths to
       decide which siblings exist (odd tail nodes self-pair). *)
    let rec go known width nodes =
      if width = 1 then
        nodes = []
        &&
        (match IMap.find_opt 0 known with
        | Some h -> String.equal h expected
        | None -> false)
      else begin
        let needed =
          IMap.fold
            (fun i _ need ->
              let sib = i lxor 1 in
              if sib < width && not (IMap.mem sib known) then ISet.add sib need
              else need)
            known ISet.empty
        in
        let rec take set nodes acc =
          match (ISet.min_elt_opt set, nodes) with
          | None, rest -> Some (acc, rest)
          | Some i, h :: rest -> take (ISet.remove i set) rest ((i, h) :: acc)
          | Some _, [] -> None
        in
        match take needed nodes [] with
        | None -> false
        | Some (fills, rest_nodes) ->
            let level =
              List.fold_left (fun m (i, h) -> IMap.add i h m) known fills
            in
            let parents =
              IMap.fold
                (fun i h m ->
                  let sib = i lxor 1 in
                  let pair =
                    if sib >= width then node_hash h h
                    else
                      match IMap.find_opt sib level with
                      | Some sh ->
                          if i land 1 = 0 then node_hash h sh else node_hash sh h
                      | None ->
                          (* Cannot happen for a well-formed proof: the
                             sibling was either known or filled. Treat a
                             hole as a verification failure by producing
                             a hash that cannot match. *)
                          leaf_hash "massbft-multiproof-hole"
                  in
                  IMap.add (i / 2) pair m)
                level IMap.empty
            in
            go parents ((width + 1) / 2) rest_nodes
      end
    in
    go known leaf_count mp.mp_nodes
  end

let multiproof_size mp =
  (32 * List.length mp.mp_nodes) + (4 * List.length mp.mp_indices)
