(** SHA-256 (FIPS 180-4), implemented from the specification. The paper
    uses SHA-256 for data integrity (chunk hashes, Merkle trees, entry
    digests); no crypto library ships with this container, so the
    primitive is built here and validated against the NIST test
    vectors in the test suite. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Returns the context to its initial state, ready to hash a new
    message. Callers on hot paths keep one context and [reset] it
    between messages instead of allocating with {!init}. *)

val update : ctx -> string -> unit
val update_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest. After finalization the context holds no
    pending input; call {!reset} before hashing the next message. *)

val digest : string -> string
(** One-shot hash of a string; 32 raw bytes. *)

val digest_bytes : Bytes.t -> string

val hex : string -> string
(** [hex s] is the lowercase hex digest of [s] — convenience for tests
    and logging. *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64; exposed for HMAC. *)
