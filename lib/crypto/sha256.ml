(* FIPS 180-4 SHA-256 over 32-bit words. OCaml's native int is 63-bit
   here, so word arithmetic masks to 32 bits explicitly. *)

let digest_size = 32
let block_size = 64

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* bytes hashed so far *)
  w : int array; (* message schedule scratch *)
}

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
    0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
  |]

let init () =
  {
    h = Array.copy iv;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0

let mask = 0xffffffff
let ( &. ) a b = a land b
let ( |. ) a b = a lor b
let ( ^. ) a b = a lxor b
let ( +. ) a b = (a + b) land mask
let rotr x n = ((x lsr n) |. (x lsl (32 - n))) land mask
let shr x n = x lsr n

let compress ctx block pos =
  let w = ctx.w in
  for i = 0 to 15 do
    let o = pos + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.get block o) lsl 24)
      lor (Char.code (Bytes.get block (o + 1)) lsl 16)
      lor (Char.code (Bytes.get block (o + 2)) lsl 8)
      lor Char.code (Bytes.get block (o + 3))
  done;
  for i = 16 to 63 do
    let s0 =
      rotr w.(i - 15) 7 ^. rotr w.(i - 15) 18 ^. shr w.(i - 15) 3
    in
    let s1 =
      rotr w.(i - 2) 17 ^. rotr w.(i - 2) 19 ^. shr w.(i - 2) 10
    in
    w.(i) <- w.(i - 16) +. s0 +. w.(i - 7) +. s1
  done;
  let a = ref ctx.h.(0)
  and b = ref ctx.h.(1)
  and c = ref ctx.h.(2)
  and d = ref ctx.h.(3)
  and e = ref ctx.h.(4)
  and f = ref ctx.h.(5)
  and g = ref ctx.h.(6)
  and hh = ref ctx.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^. rotr !e 11 ^. rotr !e 25 in
    let ch = (!e &. !f) ^. (lnot !e &. !g) in
    let temp1 = !hh +. s1 +. ch +. k.(i) +. w.(i) in
    let s0 = rotr !a 2 ^. rotr !a 13 ^. rotr !a 22 in
    let maj = (!a &. !b) ^. (!a &. !c) ^. (!b &. !c) in
    let temp2 = s0 +. maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +. temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +. temp2
  done;
  ctx.h.(0) <- ctx.h.(0) +. !a;
  ctx.h.(1) <- ctx.h.(1) +. !b;
  ctx.h.(2) <- ctx.h.(2) +. !c;
  ctx.h.(3) <- ctx.h.(3) +. !d;
  ctx.h.(4) <- ctx.h.(4) +. !e;
  ctx.h.(5) <- ctx.h.(5) +. !f;
  ctx.h.(6) <- ctx.h.(6) +. !g;
  ctx.h.(7) <- ctx.h.(7) +. !hh

let update_bytes ctx data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Sha256.update_bytes: range out of bounds";
  ctx.total <- ctx.total + len;
  let pos = ref pos and len = ref len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (block_size - ctx.buf_len) in
    Bytes.blit data !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= block_size do
    compress ctx data !pos;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit data !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let update ctx s =
  update_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = ctx.total * 8 in
  (* Pad in the context's own block buffer — 0x80, zeros, then the
     64-bit big-endian bit length — so finalization allocates nothing
     beyond the returned digest. [buf_len] is always < 64 here. *)
  let buf = ctx.buf in
  let n = ctx.buf_len in
  Bytes.set buf n '\x80';
  if n + 1 + 8 > block_size then begin
    (* No room for the length: close this block and pad a fresh one. *)
    Bytes.fill buf (n + 1) (block_size - n - 1) '\x00';
    compress ctx buf 0;
    Bytes.fill buf 0 (block_size - 8) '\x00'
  end
  else Bytes.fill buf (n + 1) (block_size - 8 - (n + 1)) '\x00';
  for i = 0 to 7 do
    Bytes.set buf
      (block_size - 8 + i)
      (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx buf 0;
  ctx.buf_len <- 0;
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

(* One-shot digests reuse a scratch context: the replication verify
   path hashes every chunk of every entry, and a fresh context per call
   (8-word state + 64-byte block + 64-word schedule) was the dominant
   allocation there. The scratch is domain-local, not global — the
   parallel scheduler driver hashes from several domains at once, and a
   shared context would silently interleave their block streams into
   wrong digests. [digest] never re-enters itself within a domain, so
   per-domain reuse is safe. *)
let scratch = Domain.DLS.new_key init

let digest s =
  let c = Domain.DLS.get scratch in
  reset c;
  update c s;
  finalize c

let digest_bytes b =
  let c = Domain.DLS.get scratch in
  reset c;
  update_bytes c b ~pos:0 ~len:(Bytes.length b);
  finalize c

let hex s = Massbft_util.Hexdump.encode (digest s)
