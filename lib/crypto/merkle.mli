(** Merkle trees and inclusion proofs over chunk sets (paper §IV-C).

    After encoding an entry into chunks, each sender builds a Merkle
    tree over the chunks and ships each chunk with its proof. Receivers
    bucket incoming chunks by Merkle root: chunks under the same root
    are guaranteed to come from the same encoding, so a single failed
    rebuild condemns the whole bucket.

    Leaves are domain-separated from internal nodes (0x00 / 0x01
    prefixes) to rule out second-preimage tree-splicing attacks. An odd
    node at any level is paired with itself. *)

type tree

type proof = { leaf_index : int; path : string list }
(** Sibling hashes from the leaf up to (excluding) the root. *)

val build : string list -> tree
(** [build leaves] hashes each leaf and builds the tree. Raises
    [Invalid_argument] on an empty list. *)

val root : tree -> string
(** The 32-byte root hash. *)

val leaf_count : tree -> int

val prove : tree -> int -> proof
(** [prove t i] is the inclusion proof for the [i]-th leaf. *)

val verify : root:string -> leaf:string -> proof -> bool
(** [verify ~root ~leaf p] checks that [leaf] sits at [p.leaf_index]
    under [root]. *)

val proof_size : proof -> int
(** Serialized size in bytes (for WAN traffic accounting): 32 bytes per
    path element plus a 4-byte index. *)

(** {2 Compact multiproofs}

    When one sender ships several chunks to the same receiver (transfer
    plans with [nc_send > 1] per destination), the per-chunk proofs
    share most of their path hashes. A multiproof (Ramabaja &
    Avdullahu, the paper's reference for chunk authentication) carries
    each needed hash exactly once. *)

type multiproof = { mp_indices : int list; mp_nodes : string list }
(** [mp_indices] are the proven leaf positions (ascending);
    [mp_nodes] the sibling hashes, ordered level by level, ascending
    position within each level. *)

val prove_many : tree -> int list -> multiproof
(** [prove_many t indices] proves all [indices] together. Raises
    [Invalid_argument] on an empty list, duplicates, or out-of-range
    indices. *)

val verify_many :
  root:string -> leaf_count:int -> leaves:(int * string) list -> multiproof -> bool
(** [verify_many ~root ~leaf_count ~leaves mp] checks that every
    [(index, leaf)] sits in the [leaf_count]-leaf tree under [root]
    (receivers know the chunk count from the transfer plan). The leaves
    must be exactly the multiproof's index set. *)

val multiproof_size : multiproof -> int
(** Serialized bytes: 32 per node hash plus 4 per index. *)

val leaf_hash : string -> string
(** The domain-separated hash of a raw leaf (exposed for tests). *)
