type keyring = { master : string; keys : (string, string) Hashtbl.t }
type signature = string

let signature_size = 64

let create_keyring ~seed =
  let master = Sha256.digest (Printf.sprintf "massbft-keyring-%Ld" seed) in
  { master; keys = Hashtbl.create 64 }

let derive_key kr id = Hmac.mac ~key:kr.master id

let register kr id =
  if not (Hashtbl.mem kr.keys id) then
    Hashtbl.replace kr.keys id (derive_key kr id)

let sign kr ~id msg =
  match Hashtbl.find_opt kr.keys id with
  | None -> invalid_arg (Printf.sprintf "Signature.sign: unknown identity %s" id)
  | Some key -> Hmac.mac ~key msg

let verify kr ~id ~msg s =
  match Hashtbl.find_opt kr.keys id with
  | None -> false
  | Some key -> Hmac.verify ~key ~msg ~tag:s

let forge msg = Sha256.digest ("forged:" ^ msg)
