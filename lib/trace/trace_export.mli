(** Exporters for {!Trace} buffers.

    [to_chrome_json] renders the Chrome [trace_event] JSON array format
    understood by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: groups become processes, nodes become threads, spans
    become async begin/end pairs keyed by their span id, instants and
    counters map to their native phases. Output is a pure function of
    the buffer contents — same events in, same bytes out — so traces
    from a fixed seed are byte-identical across runs.

    [critical_path_report] renders a plain-text per-entry breakdown:
    for every traced entry (category ["entry.phase"] spans), each
    lifecycle phase is listed with its duration and the single
    longest-overlapping resource span (NIC queue/transmit, CPU
    wait/run, WAN propagation) — i.e. the resource the phase most
    plausibly waited on. *)

val to_chrome_json : ?host:Trace.t -> Trace.t -> string
(** [host] is a second sink whose timestamps are {e host} seconds (as
    produced by [Prof_export.to_trace]); its events are appended under
    a separate pid namespace ([>= 1000]: coordinator, per-shard, and
    per-domain tracks named ["host: ..."]) so one file shows the
    simulated and host timelines side by side. *)

val write_chrome_json : ?host:Trace.t -> Trace.t -> string -> unit
(** [write_chrome_json t path] writes {!to_chrome_json} to [path]. *)

val critical_path_report : ?limit:int -> Trace.t -> string
(** At most [limit] (default 10) entries, in first-traced order; a
    header line reports buffer totals and span balance. *)
