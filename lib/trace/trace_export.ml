(* Chrome trace_event JSON and the plain-text critical-path report.

   Both outputs are deterministic functions of the buffer contents:
   events are processed in a total order (timestamp, then emission
   sequence), floats are printed with fixed formats, and no wall-clock
   or hashtable-iteration order leaks in. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b (v : Trace.value) =
  match v with
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f -> Buffer.add_string b (Printf.sprintf "%.9g" f)
  | Trace.Str s -> buf_add_json_string b s

(* Microsecond timestamps with fixed precision: stable bytes and more
   than enough resolution for a simulator whose finest delay is 1 us. *)
let add_ts b ts = Buffer.add_string b (Printf.sprintf "%.3f" (ts *. 1e6))

(* pid 0 / tid 0 hold events with no node scope; group g is pid g+1 and
   node n within it is tid n+1. *)
let pid_of (ev : Trace.event) = ev.Trace.gid + 1
let tid_of (ev : Trace.event) = ev.Trace.node + 1

let eid_args (ev : Trace.event) =
  if ev.Trace.e_gid < 0 then []
  else
    [ ("eid", Trace.Str (Printf.sprintf "e(%d,%d)" ev.Trace.e_gid ev.Trace.e_seq)) ]

let add_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      add_value b v)
    args;
  Buffer.add_char b '}'

(* Host-timeline events (from [Prof_export.to_trace]) live in their own
   pid namespace at >= 1000, well clear of any plausible group count, so
   Perfetto shows the simulated and host timelines side by side in one
   file. The category selects the track family; gid indexes within it. *)
let host_pid_of (ev : Trace.event) =
  match ev.Trace.cat with
  | "host.shard" -> 1001 + ev.Trace.gid
  | "host.domain" -> 1901 + ev.Trace.gid
  | _ -> 1000 (* "host.coord" and anything uncategorized *)

let host_pid_name pid =
  if pid = 1000 then "host: coordinator"
  else if pid >= 1901 then Printf.sprintf "host: domain %d" (pid - 1901)
  else Printf.sprintf "host: shard %d" (pid - 1001)

let add_common b (ev : Trace.event) ~ph ~pid =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b ev.Trace.name;
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b (if ev.Trace.cat = "" then "default" else ev.Trace.cat);
  Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\",\"ts\":" ph);
  add_ts b ev.Trace.ts;
  Buffer.add_string b
    (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid (tid_of ev))

let sorted_events t =
  List.stable_sort
    (fun (a : Trace.event) (b : Trace.event) ->
      let c = compare a.Trace.ts b.Trace.ts in
      if c <> 0 then c else compare a.Trace.ev_seq b.Trace.ev_seq)
    (Trace.events t)

let add_event b sep pid (ev : Trace.event) =
  sep ();
  (match ev.Trace.kind with
  | Trace.Instant ->
      add_common b ev ~ph:"i" ~pid;
      Buffer.add_string b ",\"s\":\"t\",";
      add_args b (ev.Trace.args @ eid_args ev)
  | Trace.Counter v ->
      add_common b ev ~ph:"C" ~pid;
      Buffer.add_string b ",";
      add_args b [ ("value", Trace.Float v) ]
  | Trace.Span_begin ->
      add_common b ev ~ph:"b" ~pid;
      Buffer.add_string b (Printf.sprintf ",\"id\":\"0x%x\"," ev.Trace.span);
      add_args b (ev.Trace.args @ eid_args ev)
  | Trace.Span_end ->
      add_common b ev ~ph:"e" ~pid;
      Buffer.add_string b (Printf.sprintf ",\"id\":\"0x%x\"," ev.Trace.span);
      add_args b ev.Trace.args);
  Buffer.add_char b '}'

let to_chrome_json ?host t =
  let evs = sorted_events t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  (* Process-name metadata for every pid that appears, in pid order. *)
  let pids =
    List.sort_uniq compare (0 :: List.map pid_of evs)
  in
  List.iter
    (fun pid ->
      sep ();
      let name = if pid = 0 then "cluster" else Printf.sprintf "group %d" (pid - 1) in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid name))
    pids;
  List.iter (fun ev -> add_event b sep (pid_of ev) ev) evs;
  (* Host timeline: same document, separate pid namespace. Host spans
     share the id space of their own sink, disjoint pids keep the two
     timelines from colliding in viewers. *)
  (match host with
  | None -> ()
  | Some h ->
      let hevs = sorted_events h in
      let hpids = List.sort_uniq compare (List.map host_pid_of hevs) in
      List.iter
        (fun pid ->
          sep ();
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
               pid (host_pid_name pid)))
        hpids;
      List.iter (fun ev -> add_event b sep (host_pid_of ev) ev) hevs);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"";
  Buffer.add_string b
    (Printf.sprintf ",\"otherData\":{\"emitted\":%d,\"dropped\":%d}}\n"
       (Trace.emitted t) (Trace.dropped t));
  Buffer.contents b

let write_chrome_json ?host t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ?host t))

(* ------------------------------------------------------------------ *)
(* Critical-path report                                                *)
(* ------------------------------------------------------------------ *)

type cspan = {
  c_name : string;
  c_cat : string;
  c_gid : int;
  c_node : int;
  c_b : float;
  c_e : float;
  c_args : (string * Trace.value) list;
  c_seq : int;
}

(* Pair up Span_begin/Span_end events by span id, in emission order. *)
let closed_spans t =
  let open_tbl = Hashtbl.create 256 in
  let acc = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.kind with
      | Trace.Span_begin -> Hashtbl.replace open_tbl ev.Trace.span ev
      | Trace.Span_end -> (
          match Hashtbl.find_opt open_tbl ev.Trace.span with
          | None -> ()  (* begin fell off the ring buffer *)
          | Some bev ->
              Hashtbl.remove open_tbl ev.Trace.span;
              acc :=
                {
                  c_name = bev.Trace.name;
                  c_cat = bev.Trace.cat;
                  c_gid = bev.Trace.gid;
                  c_node = bev.Trace.node;
                  c_b = bev.Trace.ts;
                  c_e = ev.Trace.ts;
                  c_args = bev.Trace.args;
                  c_seq = bev.Trace.ev_seq;
                }
                :: !acc)
      | _ -> ())
    (Trace.events t);
  List.rev !acc

let span_label s =
  let link =
    match List.assoc_opt "link" s.c_args with
    | Some (Trace.Str l) -> " " ^ l
    | _ -> ""
  in
  let where =
    if s.c_gid >= 0 then Printf.sprintf " g%d/n%d" s.c_gid s.c_node else ""
  in
  Printf.sprintf "%s%s%s %s" s.c_cat where link s.c_name

let overlap a_b a_e b_b b_e = Float.min a_e b_e -. Float.max a_b b_b

let critical_path_report ?(limit = 10) t =
  let spans = closed_spans t in
  let resource =
    List.filter
      (fun s -> s.c_cat = "nic" || s.c_cat = "cpu" || s.c_cat = "net")
      spans
  in
  let phases = List.filter (fun s -> s.c_cat = "entry.phase") spans in
  (* Entries in first-traced order. *)
  let seen = Hashtbl.create 64 in
  let entries = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.e_gid >= 0 && ev.Trace.cat = "entry.phase" then begin
        let key = (ev.Trace.e_gid, ev.Trace.e_seq) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          entries := key :: !entries
        end
      end)
    (Trace.events t);
  let entries = List.rev !entries in
  let shown = List.filteri (fun i _ -> i < limit) entries in
  let b = Buffer.create 1024 in
  let n_begin =
    List.length
      (List.filter
         (fun (e : Trace.event) -> e.Trace.kind = Trace.Span_begin)
         (Trace.events t))
  in
  Buffer.add_string b
    (Printf.sprintf
       "trace: %d events retained (%d emitted, %d dropped), %d/%d spans closed\n"
       (Trace.length t) (Trace.emitted t) (Trace.dropped t) (List.length spans)
       n_begin);
  Buffer.add_string b
    (Printf.sprintf "critical path, %d of %d traced entries:\n"
       (List.length shown) (List.length entries));
  (* Phase spans carry their entry identity in e_gid/e_seq of the
     underlying events; closed_spans drops that, so re-derive it from
     the begin events (keyed by emission sequence). *)
  let phase_eid = Hashtbl.create 256 in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.kind = Trace.Span_begin && ev.Trace.cat = "entry.phase" then
        Hashtbl.replace phase_eid ev.Trace.ev_seq
          (ev.Trace.e_gid, ev.Trace.e_seq))
    (Trace.events t);
  List.iter
    (fun (eg, es) ->
      let my_phases =
        List.filter
          (fun s ->
            match Hashtbl.find_opt phase_eid s.c_seq with
            | Some (g, q) -> g = eg && q = es
            | None -> false)
          phases
      in
      let total =
        List.fold_left (fun acc s -> acc +. (s.c_e -. s.c_b)) 0.0 my_phases
      in
      Buffer.add_string b
        (Printf.sprintf "  entry e(%d,%d)  total %.2f ms\n" eg es
           (1000.0 *. total));
      List.iter
        (fun p ->
          let dur = p.c_e -. p.c_b in
          (* The resource span overlapping this phase window the
             longest is the best single explanation of its latency. *)
          let best =
            List.fold_left
              (fun best r ->
                let ov = overlap p.c_b p.c_e r.c_b r.c_e in
                match best with
                | Some (bov, _) when bov >= ov -> best
                | _ -> if ov > 0.0 then Some (ov, r) else best)
              None resource
          in
          let wait =
            match best with
            | None -> "(no traced resource wait)"
            | Some (ov, r) ->
                Printf.sprintf "longest wait: %s %.2f ms" (span_label r)
                  (1000.0 *. ov)
          in
          Buffer.add_string b
            (Printf.sprintf "    %-8s %9.2f ms  %s\n" p.c_name (1000.0 *. dur)
               wait))
        my_phases)
    shown;
  Buffer.contents b
