type value = Int of int | Float of float | Str of string

type kind =
  | Span_begin
  | Span_end
  | Instant
  | Counter of float

type event = {
  ev_seq : int;
  ts : float;
  kind : kind;
  name : string;
  cat : string;
  gid : int;
  node : int;
  span : int;
  e_gid : int;
  e_seq : int;
  args : (string * value) list;
}

type t = {
  live : bool;
  cap : int;
  mutable buf : event array;  (* circular; valid slots are start..start+len *)
  mutable start : int;
  mutable len : int;
  mutable n_dropped : int;
  mutable n_emitted : int;
  mutable next_span : int;
  mutable clock : unit -> float;
}

let dummy_event =
  {
    ev_seq = 0;
    ts = 0.0;
    kind = Instant;
    name = "";
    cat = "";
    gid = -1;
    node = -1;
    span = 0;
    e_gid = -1;
    e_seq = -1;
    args = [];
  }

let mk ~live ~cap =
  {
    live;
    cap;
    buf = (if live then Array.make cap dummy_event else [||]);
    start = 0;
    len = 0;
    n_dropped = 0;
    n_emitted = 0;
    next_span = 1;
    clock = (fun () -> 0.0);
  }

let null = mk ~live:false ~cap:0

let create ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  mk ~live:true ~cap:capacity

let set_clock t clock = if t.live then t.clock <- clock
let enabled t = t.live
let capacity t = t.cap
let length t = t.len
let dropped t = t.n_dropped
let emitted t = t.n_emitted

let clear t =
  if t.live then begin
    Array.fill t.buf 0 t.cap dummy_event;
    t.start <- 0;
    t.len <- 0;
    t.n_dropped <- 0
  end

let push t ev =
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- ev;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest slot. *)
    t.buf.(t.start) <- ev;
    t.start <- (t.start + 1) mod t.cap;
    t.n_dropped <- t.n_dropped + 1
  end;
  t.n_emitted <- t.n_emitted + 1

let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))

let emit t ~ts ~kind ~name ~cat ~gid ~node ~span ~eid ~args =
  let e_gid, e_seq = match eid with Some (g, s) -> (g, s) | None -> (-1, -1) in
  push t
    { ev_seq = t.n_emitted; ts; kind; name; cat; gid; node; span; e_gid; e_seq;
      args }

let instant t ?ts ?(cat = "") ?(gid = -1) ?(node = -1) ?eid ?(args = []) name =
  if t.live then
    let ts = match ts with Some x -> x | None -> t.clock () in
    emit t ~ts ~kind:Instant ~name ~cat ~gid ~node ~span:0 ~eid ~args

let counter t ?ts ?(cat = "") ?(gid = -1) ?(node = -1) name v =
  if t.live then
    let ts = match ts with Some x -> x | None -> t.clock () in
    emit t ~ts ~kind:(Counter v) ~name ~cat ~gid ~node ~span:0 ~eid:None
      ~args:[]

let fresh_span t =
  let id = t.next_span in
  t.next_span <- id + 1;
  id

let span t ?(cat = "") ?(gid = -1) ?(node = -1) ?eid ?(args = []) ~b ~e name =
  if t.live then begin
    if e < b then invalid_arg "Trace.span: end before begin";
    let id = fresh_span t in
    emit t ~ts:b ~kind:Span_begin ~name ~cat ~gid ~node ~span:id ~eid ~args;
    emit t ~ts:e ~kind:Span_end ~name ~cat ~gid ~node ~span:id ~eid ~args:[]
  end

type open_span = {
  os_id : int;
  os_name : string;
  os_cat : string;
  os_gid : int;
  os_node : int;
  os_eid : (int * int) option;
}

let null_span =
  { os_id = 0; os_name = ""; os_cat = ""; os_gid = -1; os_node = -1;
    os_eid = None }

let span_begin t ?ts ?(cat = "") ?(gid = -1) ?(node = -1) ?eid ?(args = []) name
    =
  if not t.live then null_span
  else begin
    let ts = match ts with Some x -> x | None -> t.clock () in
    let id = fresh_span t in
    emit t ~ts ~kind:Span_begin ~name ~cat ~gid ~node ~span:id ~eid ~args;
    { os_id = id; os_name = name; os_cat = cat; os_gid = gid; os_node = node;
      os_eid = eid }
  end

let span_end t ?ts ?(args = []) os =
  if t.live && os.os_id <> 0 then
    let ts = match ts with Some x -> x | None -> t.clock () in
    emit t ~ts ~kind:Span_end ~name:os.os_name ~cat:os.os_cat ~gid:os.os_gid
      ~node:os.os_node ~span:os.os_id ~eid:os.os_eid ~args
