(** Structured event tracing for simulated runs.

    A {!t} is a sink of typed events — span begin/end pairs, instants,
    and counters — each stamped with the *virtual* simulation time and
    optionally correlated to a node ([gid]/[node]) and to a log entry
    ([eid], the paper's (group, sequence) identity). Events land in a
    bounded ring buffer: when it fills, the oldest events are
    overwritten and {!dropped} counts them, so tracing never grows
    memory on long runs and never changes simulation behaviour (no
    events are scheduled, no I/O happens until export).

    The subsystem defaults to off: every instrumentation site holds
    {!null}, a permanently disabled sink whose emit functions return
    after a single branch. Attach a real sink (e.g. through
    [Engine.set_trace]) to record.

    Determinism: event payloads carry only virtual timestamps and
    deterministically allocated sequence/span ids, so two runs from the
    same seed produce byte-identical exports — a property the test
    suite uses as a determinism regression detector. *)

type value = Int of int | Float of float | Str of string

type kind =
  | Span_begin  (** opens the span whose id is in [span] *)
  | Span_end  (** closes it; carries the same [span] id and name *)
  | Instant
  | Counter of float

type event = {
  ev_seq : int;  (** emission order, globally unique per sink *)
  ts : float;  (** virtual time, seconds *)
  kind : kind;
  name : string;
  cat : string;  (** category: "sim", "nic", "cpu", "net", "entry", ... *)
  gid : int;  (** owning group, or -1 when not node-scoped *)
  node : int;  (** node within the group, or -1 *)
  span : int;  (** correlates Span_begin/Span_end; 0 otherwise *)
  e_gid : int;  (** entry correlation id (gid part), or -1 *)
  e_seq : int;  (** entry correlation id (seq part), or -1 *)
  args : (string * value) list;
}

type t

val null : t
(** The shared disabled sink; every emit on it is a no-op. *)

val create : ?capacity:int -> unit -> t
(** A live sink holding at most [capacity] (default 262144) events.
    Raises [Invalid_argument] on a non-positive capacity. *)

val set_clock : t -> (unit -> float) -> unit
(** Installs the virtual-clock source used when an emit omits [?ts]
    (typically [fun () -> Sim.now sim]). No-op on {!null}. *)

val enabled : t -> bool
(** [false] exactly for {!null}; instrumentation sites check this
    before building argument lists. *)

val capacity : t -> int
val length : t -> int
(** Events currently retained (at most [capacity]). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val emitted : t -> int
(** Total events ever emitted, retained or dropped. *)

val clear : t -> unit
(** Empties the buffer and resets the drop counter (span and sequence
    ids keep advancing so correlation stays unambiguous). *)

val events : t -> event list
(** Retained events, oldest first. *)

val instant :
  t ->
  ?ts:float ->
  ?cat:string ->
  ?gid:int ->
  ?node:int ->
  ?eid:int * int ->
  ?args:(string * value) list ->
  string ->
  unit

val counter :
  t ->
  ?ts:float ->
  ?cat:string ->
  ?gid:int ->
  ?node:int ->
  string ->
  float ->
  unit

val span :
  t ->
  ?cat:string ->
  ?gid:int ->
  ?node:int ->
  ?eid:int * int ->
  ?args:(string * value) list ->
  b:float ->
  e:float ->
  string ->
  unit
(** [span t ~b ~e name] records a closed span as a Span_begin/Span_end
    pair sharing a fresh span id — the common case in a discrete-event
    simulation, where both endpoints are known at emission time.
    Raises [Invalid_argument] if [e < b]. *)

type open_span
(** Handle for a span whose end is not yet known. *)

val null_span : open_span

val span_begin :
  t ->
  ?ts:float ->
  ?cat:string ->
  ?gid:int ->
  ?node:int ->
  ?eid:int * int ->
  ?args:(string * value) list ->
  string ->
  open_span
(** Emits a Span_begin and returns the handle to close it with.
    Returns {!null_span} on a disabled sink. *)

val span_end : t -> ?ts:float -> ?args:(string * value) list -> open_span -> unit
(** Emits the matching Span_end (same id, name and identity as the
    begin). No-op for {!null_span}. *)
