module Erasure = Massbft_codec.Erasure
module ISet = Set.Make (Int)

type verdict =
  | Accepted
  | Rebuilt of string
  | Rejected_proof
  | Rejected_blacklisted
  | Rejected_duplicate
  | Rejected_fake_bucket of int list
  | Already_done

type bucket = { mutable chunks : (int * string) list }

type t = {
  plan : Transfer_plan.t;
  validate : string -> bool;
  buckets : (string, bucket) Hashtbl.t;  (* keyed by Merkle root *)
  mutable blacklist : ISet.t;
  mutable rebuilt : string option;
}

let create ~plan ~validate () =
  { plan; validate; buckets = Hashtbl.create 4; blacklist = ISet.empty; rebuilt = None }

let bucket t root =
  match Hashtbl.find_opt t.buckets root with
  | Some b -> b
  | None ->
      let b = { chunks = [] } in
      Hashtbl.replace t.buckets root b;
      b

let try_rebuild t b =
  let data = t.plan.Transfer_plan.n_data in
  let parity = t.plan.Transfer_plan.n_parity in
  match Erasure.decode ~data ~parity b.chunks with
  | Error _ -> None
  | Ok entry -> if t.validate entry then Some entry else None

let add t (c : Chunker.chunk) =
  match t.rebuilt with
  | Some _ -> Already_done
  | None ->
      if c.Chunker.index < 0 || c.Chunker.index >= t.plan.Transfer_plan.n_total
      then Rejected_proof
      else if ISet.mem c.Chunker.index t.blacklist then Rejected_blacklisted
      else if not (Chunker.verify_chunk c) then Rejected_proof
      else begin
        let b = bucket t c.Chunker.root in
        if List.mem_assoc c.Chunker.index b.chunks then Rejected_duplicate
        else begin
          b.chunks <- (c.Chunker.index, c.Chunker.payload) :: b.chunks;
          if List.length b.chunks < t.plan.Transfer_plan.n_data then Accepted
          else
            match try_rebuild t b with
            | Some entry ->
                t.rebuilt <- Some entry;
                Rebuilt entry
            | None ->
                (* Every chunk under this root is fake: burn the ids and
                   drop the bucket. *)
                let ids = List.map fst b.chunks in
                t.blacklist <- List.fold_left (fun s i -> ISet.add i s) t.blacklist ids;
                Hashtbl.remove t.buckets c.Chunker.root;
                (* Ids burned here may appear in other (also fake)
                   buckets; those buckets can simply keep waiting — they
                   can never validate. *)
                Rejected_fake_bucket (List.sort compare ids)
        end
      end

let result t = t.rebuilt
let blacklisted t = ISet.elements t.blacklist

let chunks_held t =
  Hashtbl.fold (fun _ b acc -> acc + List.length b.chunks) t.buckets 0
