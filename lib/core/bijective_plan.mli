(** The general (non-coded) bijective group-sending plan of §IV-A —
    the cluster-sending construction of Hellings & Sadoghi that GeoBFT
    uses in its remote view-change and that the BR ablation evaluates.

    A sender group with [f1] faulty nodes ships complete entry copies to
    a receiver group with [f2] faulty nodes. The plan is a list of
    (sender, receiver) transfers, load-balanced on both sides, sized so
    that {e any} choice of [f1] faulty senders and [f2] faulty receivers
    still leaves at least one transfer with a correct sender and a
    correct receiver (who then broadcasts the entry locally).

    When both groups have at least [f1 + f2 + 1] nodes this is the
    paper's plain bijective sending with exactly [f1 + f2 + 1]
    transfers; for very lopsided sizes the partitioned construction
    reuses nodes with balanced loads and the transfer count grows
    according to the cluster-sending lower bound. *)

type t = private {
  n1 : int;
  n2 : int;
  f1 : int;
  f2 : int;
  transfers : (int * int) array;  (** (sender, receiver) pairs *)
}

val generate : n1:int -> n2:int -> t
(** Computes the minimal balanced plan. Raises [Invalid_argument] on
    non-positive sizes or when no plan can guarantee delivery (all-
    faulty corner cases cannot occur under n >= 3f + 1). *)

val transfer_count : t -> int
(** Number of full entry copies crossing the WAN — [f1 + f2 + 1]
    whenever both groups are large enough. *)

val sends_of : t -> sender:int -> int list
(** Receivers this sender ships a full copy to (possibly several for
    lopsided groups; empty for unused senders). *)

val survives : t -> faulty_senders:int list -> faulty_receivers:int list -> bool
(** [true] iff some transfer avoids both faulty sets — exposed so tests
    can check the guarantee exhaustively. *)
