(* Replication stage: batch dissemination strategies (Table II), the
   receiver-side rebuild, and the post-crash content fetch pump. *)

open Node_ctx

val leader_oneway : repl_strategy
(** The proposing leader ships f_j + 1 full copies per remote group
    during the global phase (GeoBFT optimization; also Steward / ISS /
    Baseline). *)

val bijective_full : repl_strategy
(** Every node ships full copies per the partitioned bijective
    cluster-sending plan of §IV-A (the BR configuration). *)

val encoded_bijective : repl_strategy
(** Every node erasure-codes the entry and ships chunks per the
    Algorithm 1 transfer plan (MassBFT / EBR). *)

val plan_between : t -> src:int -> dst:int -> Transfer_plan.t
(** The (memoized) Algorithm 1 transfer plan from group [src] to group
    [dst]. [Engine.create] precomputes every pair eagerly so the lazy
    fill never runs concurrently under the parallel driver. *)

val send_oneway_copies : t -> leader -> entry -> skip:int list -> unit
(** Ship f_j + 1 full copies to each remote group not in [skip]
    (invoked by the one-way global-consensus strategies). *)

val want_fetch : t -> leader -> Types.entry_id -> unit
(** Queue a missing entry's content for repair by full-copy fetch. *)

val on_content : t -> leader -> Types.entry_id -> unit
(** Content arrived at a leader: release the fetch slot, refill the
    pump. Part of the engine's on-leader-content composition. *)

val on_chunk_received :
  t -> node -> eid:Types.entry_id -> root_tag:string -> index:int -> unit

val handle_chunk :
  t -> node -> eid:Types.entry_id -> root_tag:string -> index:int -> unit

val handle_copy : t -> node -> Types.entry_id -> unit
val handle_fetch_req : t -> node -> src:Topology.addr -> Types.entry_id -> unit

val observe : Node_ctx.t -> Massbft_obs.Sampler.t -> unit
(** Register the dissemination gauges: per-leader fetch-lane depth and
    per-node chunks-outstanding rebuild count. Part of
    [Engine.set_obs]. *)
