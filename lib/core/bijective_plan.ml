module Intmath = Massbft_util.Intmath

type t = {
  n1 : int;
  n2 : int;
  f1 : int;
  f2 : int;
  transfers : (int * int) array;
}

(* With tau diagonal transfers (i mod n1, i mod n2), a sender carries at
   most ceil(tau/n1) of them and a receiver at most ceil(tau/n2); by the
   union bound the adversary voids at most f1*ceil(tau/n1) +
   f2*ceil(tau/n2), so we need one more than that. *)
let sufficient ~n1 ~n2 ~f1 ~f2 tau =
  tau - (f1 * Intmath.cdiv tau n1) - (f2 * Intmath.cdiv tau n2) >= 1

let generate ~n1 ~n2 =
  if n1 < 1 || n2 < 1 then invalid_arg "Bijective_plan.generate: empty group";
  let f1 = Intmath.pbft_f n1 and f2 = Intmath.pbft_f n2 in
  (* The transfer count never needs to exceed lcm(n1, n2) * something
     small; search upward from the ideal f1 + f2 + 1. *)
  let rec find tau =
    if tau > 4 * (n1 + n2) * (1 + f1 + f2) then
      invalid_arg "Bijective_plan.generate: no feasible plan"
    else if sufficient ~n1 ~n2 ~f1 ~f2 tau then tau
    else find (tau + 1)
  in
  let tau = find (f1 + f2 + 1) in
  (* Diagonal assignment: balanced per-sender and per-receiver loads,
     distinct pairs for tau <= lcm(n1, n2). *)
  let transfers = Array.init tau (fun i -> (i mod n1, i mod n2)) in
  { n1; n2; f1; f2; transfers }

let transfer_count t = Array.length t.transfers

let sends_of t ~sender =
  if sender < 0 || sender >= t.n1 then
    invalid_arg "Bijective_plan.sends_of: bad sender id";
  Array.to_list t.transfers
  |> List.filter_map (fun (s, r) -> if s = sender then Some r else None)

let survives t ~faulty_senders ~faulty_receivers =
  Array.exists
    (fun (s, r) ->
      (not (List.mem s faulty_senders)) && not (List.mem r faulty_receivers))
    t.transfers
