(** Algorithm 1 of the paper: the transfer plan for encoded bijective
    log replication between a sender group of [n1] nodes and a receiver
    group of [n2] nodes.

    The chunk space is sized by lcm(n1, n2) so that every sender ships
    exactly [n_total / n1] chunks and every receiver takes exactly
    [n_total / n2]; each chunk crosses the WAN exactly once. The parity
    budget covers the worst case in which the chunks handled by the f1
    faulty senders and the f2 faulty receivers are disjoint:
    n_parity = nc1*f1 + nc2*f2. Whatever survives — n_data chunks — is
    enough to rebuild the entry.

    The paper's §IV-B case study (n1 = 4, n2 = 7) gives n_total = 28,
    n_parity = 15, n_data = 13, and a redundancy factor of 28/13 ≈ 2.15
    entry copies, versus 4 for the bijective-only approach; both numbers
    are pinned by unit tests. *)

type t = private {
  n1 : int;  (** sender group size *)
  n2 : int;  (** receiver group size *)
  n_total : int;  (** lcm(n1, n2) *)
  n_data : int;
  n_parity : int;
  nc_send : int;  (** chunks each sender ships *)
  nc_recv : int;  (** chunks each receiver takes *)
}

val generate : n1:int -> n2:int -> t
(** Raises [Invalid_argument] on non-positive sizes, or when the group
    pair is too small to leave any data chunks (n_parity >= n_total —
    only possible for degenerate configurations). *)

val sender_of_chunk : t -> int -> int
(** [sender_of_chunk t c] is the sender node id shipping chunk [c]. *)

val receiver_of_chunk : t -> int -> int

val sends_of : t -> sender:int -> (int * int) list
(** [(chunk, receiver)] pairs for one sender node, ascending by chunk id
    — lines 7-10 of Algorithm 1. *)

val receives_of : t -> receiver:int -> (int * int) list
(** [(chunk, sender)] pairs for one receiver node — lines 11-14. *)

val redundancy : t -> float
(** n_total / n_data: how many entry-equivalents cross the WAN. *)
