(** Per-run measurement state collected by the engine and read by the
    harness; all the figures derive from these. *)

module Stats = Massbft_util.Stats

type t = {
  committed_txns : Stats.Counter.t;  (** Aria-committed, cluster-wide *)
  conflicted_txns : Stats.Counter.t;  (** Aria conflict aborts (retried) *)
  logic_aborted_txns : Stats.Counter.t;
  entries_executed : Stats.Counter.t;
  txn_rate : Stats.Timeseries.t;  (** committed txns per second bucket *)
  latency_s : Stats.Summary.t;  (** per-entry client-visible latency *)
  latency_ts : Stats.Timeseries.t;  (** latency over time (Figure 15) *)
  phase_batch_s : Stats.Summary.t;  (** Figure 11 breakdown: batching *)
  phase_local_s : Stats.Summary.t;  (** local consensus *)
  phase_coding_s : Stats.Summary.t;  (** erasure encode + rebuild *)
  phase_global_s : Stats.Summary.t;  (** global replication (commit) *)
  phase_order_s : Stats.Summary.t;  (** ordering wait *)
  phase_exec_s : Stats.Summary.t;  (** execution *)
  committed_per_group : (int, Stats.Counter.t) Hashtbl.t;
      (** per proposing group (Figure 12's breakdown) *)
  mutable measure_from : float;  (** warm-up cutoff; samples before are dropped *)
}

val create : unit -> t

val throughput_tps : t -> duration:float -> float
(** Committed transactions per second over the measurement window. *)

val mean_latency_ms : t -> float
val p99_latency_ms : t -> float
val commit_ratio : t -> float
(** [committed / (committed + conflicted)] — the fraction of executed
    transactions that survived Aria's concurrency control, the paper's
    abort-rate complement (Figure 8d's TPC-C degradation).

    [logic_aborted_txns] is deliberately {e excluded} from the
    denominator: an application-level abort (e.g. TPC-C's 1% intended
    NewOrder rollbacks) is a transaction the system executed correctly
    to its specified outcome, not a scheduling failure, and it is never
    retried — counting it would charge the consensus/execution stack
    for workload semantics and make the ratio incomparable across
    workloads with different intended-abort rates. In particular a
    conflict-free run reports 1.0 regardless of logic aborts. Pinned by
    the [commit ratio semantics] unit test. *)

val group_committed : t -> int -> int
(** Transactions committed from entries proposed by one group. *)
