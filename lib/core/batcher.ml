(* Batching stage: client load generation, the 20 ms batch timer and
   the pipeline window. A leader forms a batch when its timer has
   fired ([l_batch_pending]), fewer than [pipeline] own entries are in
   flight, and the ordering strategy's window admits the next sequence
   number (round-based systems cap how far a group may run ahead; ISS
   additionally gates on epoch boundaries). *)

open Node_ctx
module Sha256 = Massbft_crypto.Sha256

let form_batch t (l : leader) =
  let seq = l.l_next_seq in
  l.l_next_seq <- seq + 1;
  l.l_in_flight <- l.l_in_flight + 1;
  let rec take acc n lst =
    if n = 0 then (List.rev acc, lst)
    else
      match lst with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (x :: acc) (n - 1) rest
  in
  (* A pending reconfiguration command takes the batch slot alone: the
     epoch-boundary entry carries zero transactions so its position in
     the total order is the clean config cut. Otherwise, conflicted
     transactions re-enter through Aria's deterministic fallback lane:
     they execute serially next time and always commit, bounding
     retries to one round. *)
  let conf =
    if Queue.is_empty l.l_pending_conf then None
    else Some (Queue.pop l.l_pending_conf)
  in
  let retried, fresh =
    match conf with
    | Some _ -> ([], [])
    | None ->
        let retried, rest = take [] t.cfg.Config.max_batch l.l_retry in
        l.l_retry <- rest;
        let fresh =
          List.init
            (t.cfg.Config.max_batch - List.length retried)
            (fun _ -> W.next l.l_gen)
        in
        (retried, fresh)
  in
  let eid = { Types.gid = l.l_gid; seq } in
  let digest = Sha256.digest ("entry:" ^ Types.entry_id_to_string eid) in
  let wire l0 =
    List.fold_left (fun acc (x : Txn.t) -> acc + x.Txn.wire_size) 0 l0
  in
  let size = Types.header_bytes + wire fresh + wire retried in
  let e =
    {
      eid;
      digest;
      size;
      conf;
      txns = fresh;
      fb_txns = retried;
      txn_count = List.length fresh + List.length retried;
      created_at = now t;
      decided_at = 0.0;
      committed_at = 0.0;
      ordered_at = 0.0;
      outcome = Atomic.make None;
      exec_count = Atomic.make 0;
    }
  in
  register_entry t e;
  trace_entry t eid "batch_formed" ~node:0
    ~args:[ ("txns", Trace.Int e.txn_count); ("bytes", Trace.Int size) ];
  content_event t (node_of t l.l_addr) eid;
  (* The leader verifies the batch's client signatures, then starts
     local PBFT consensus. *)
  let verify_cost =
    float_of_int e.txn_count *. t.cfg.Config.cost.Config.sig_verify_s
  in
  charge_cpu_parallel t l.l_addr verify_cost (fun () ->
      if alive t l.l_addr then
        (* The acting leader may have crashed (or a view change started)
           between forming the batch and the CPU finishing: proposing
           would raise. A not-yet-proposed entry is re-proposed by the
           engine's leader-migration sweep instead. *)
        match (node_of t l.l_addr).n_pbft with
        | Some pbft
          when Pbft.is_leader pbft
               && (not (Pbft.in_view_change pbft))
               && not (Pbft.proposed pbft ~seq) ->
            Pbft.propose pbft ~seq ~digest
        | Some _ | None -> ())

let try_batch t (l : leader) =
  if
    t.started
    && member_now t l.l_gid
    && alive t l.l_addr
    && l.l_batch_pending
    && l.l_in_flight < t.cfg.Config.pipeline
    && t.strat.ord.o_allows t l l.l_next_seq
  then begin
    l.l_batch_pending <- false;
    form_batch t l
  end

(* Arm the per-leader batch timers (called once from Engine.start).
   Each leader's timer chain is scheduled through its group's shard
   handle so the parallel driver runs it on the owning domain. *)
let start t =
  Array.iter
    (fun l ->
      let lsim = sim_of t l.l_gid in
      let rec tick () =
        ignore
          (Sim.after lsim t.cfg.Config.batch_timeout_s (fun () ->
               if alive t l.l_addr then begin
                 l.l_batch_pending <- true;
                 try_batch t l
               end;
               tick ()))
      in
      l.l_batch_pending <- true;
      try_batch t l;
      tick ())
    t.leaders

let observe (t : Node_ctx.t) sampler =
  let open Node_ctx in
  Array.iter
    (fun l ->
      let labels = obs_group_labels l in
      Massbft_obs.Sampler.add_probe sampler ~name:"massbft_batcher_in_flight"
        ~help:
          "Batches admitted into the pipeline window and not yet globally \
           committed"
        ~labels
        (fun ~now:_ ~dt:_ -> float_of_int l.l_in_flight);
      Massbft_obs.Sampler.add_probe sampler ~name:"massbft_batcher_retry_queue"
        ~help:"Conflict-aborted transactions awaiting rebatching" ~labels
        (fun ~now:_ ~dt:_ -> float_of_int (List.length l.l_retry)))
    t.leaders
