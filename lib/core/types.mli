(** Shared identifiers and wire-size constants for the MassBFT core. *)

type entry_id = { gid : int; seq : int }
(** The entry proposed by group [gid] with local sequence number [seq]
    (1-based) — e_{i,m} in the paper. *)

val entry_id_to_string : entry_id -> string
val entry_id_compare : entry_id -> entry_id -> int
val entry_id_equal : entry_id -> entry_id -> bool

module Entry_map : Map.S with type key = entry_id
module Entry_tbl : Hashtbl.S with type key = entry_id

(** Wire-size constants (bytes), matching the implementation section of
    the paper: ED25519 signatures (64 B), SHA-256 digests (32 B), and
    small fixed message headers. *)

val signature_bytes : int
val digest_bytes : int
val header_bytes : int

val certificate_bytes : n:int -> int
(** A PBFT certificate carries 2f+1 signatures plus signer ids. *)

val vote_bytes : int
(** A prepare/commit/accept vote: digest + signature + header. *)

val raft_meta_bytes : n:int -> int
(** An [Append] carrying an entry digest + certificate + indices (the
    lightweight consensus message of MassBFT's propose phase). *)
