(* Local-consensus stage: the PBFT adapter. Wires one PBFT replica per
   node (the skip-prepare accept variant used for global-accept rounds
   lives in Global_consensus; the replicas here run full three-phase
   PBFT), charges the batch signature-verification cost on Pre_prepare
   receipt, and turns decide certificates into the dissemination +
   global phase via the resolved strategies. *)

open Node_ctx

let local_msg_bytes t m =
  match m with
  | Pbft.Pre_prepare { digest; _ } -> (
      match entry_by_digest t digest with
      | Some e -> e.size + Types.header_bytes + Types.signature_bytes
      | None -> Types.vote_bytes)
  | Pbft.Prepare _ | Pbft.Commit _ -> Types.vote_bytes
  | Pbft.View_change _ | Pbft.New_view _ -> 4 * Types.vote_bytes

let on_decide t (node : node) (cert : Pbft.certificate) =
  match entry_by_digest t cert.Pbft.cert_digest with
  | None -> ()
  | Some e ->
      let addr = node.n_addr in
      content_event t node e.eid;
      if is_acting_leader t addr && e.eid.Types.gid = addr.Topology.g then
        if e.decided_at = 0.0 then begin
          e.decided_at <- now t;
          trace_entry t e.eid "decided" ~node:addr.Topology.n
        end;
      (* Per-node dissemination (chunks / bijective copies). *)
      t.strat.repl.r_on_decide t node e;
      if is_acting_leader t addr && addr.Topology.g = e.eid.Types.gid then
        t.strat.glob.g_start t t.leaders.(addr.Topology.g) e

let handle t (node : node) ~(src : Topology.addr) pm =
  match node.n_pbft with
  | None -> ()
  | Some pbft -> (
      match pm with
      | Pbft.Pre_prepare { digest; _ } ->
          (* Receiving the batch: verify every client signature before
             voting (the paper's dominant local cost). *)
          let cost =
            match entry_by_digest t digest with
            | Some e ->
                float_of_int e.txn_count *. t.cfg.Config.cost.Config.sig_verify_s
            | None -> 0.0
          in
          charge_cpu_parallel t node.n_addr cost (fun () ->
              if alive t node.n_addr then Pbft.handle pbft ~from:src.Topology.n pm)
      | _ -> Pbft.handle pbft ~from:src.Topology.n pm)

(* ------------------------------------------------------------------ *)
(* Skip-prepare accept rounds                                          *)
(* ------------------------------------------------------------------ *)

(* The accept decision on a remote entry skips PBFT's prepare phase:
   the leader broadcasts the request and collects a quorum of direct
   votes (the skip-prepare variant of §V-B). Global_consensus drives
   this from its content-gated ack guards. *)

let accept_round t (l : leader) ~tag k =
  let quorum = Intmath.pbft_quorum (active_size t l.l_gid) in
  if quorum <= 1 then k ()
  else begin
    Hashtbl.replace l.l_accept_pending tag k;
    (* Votes are a set of voter node ids (the leader's own vote counts),
       so duplicated deliveries cannot inflate the tally. *)
    Hashtbl.replace l.l_accept_votes tag
      (ref (ISet.singleton l.l_addr.Topology.n));
    broadcast_group t ~src:l.l_addr ~bytes:Types.vote_bytes (Accept_req { tag })
  end

let handle_accept_req t ~(src : Topology.addr) ~(dst : Topology.addr) tag =
  (* Follower's vote in the skip-prepare accept round. *)
  send t ~src:dst ~dst:src ~bytes:Types.vote_bytes (Accept_vote { tag })

let handle_accept_vote t ~(src : Topology.addr) ~(dst : Topology.addr) tag =
  if is_acting_leader t dst then begin
    let l = t.leaders.(dst.Topology.g) in
    match Hashtbl.find_opt l.l_accept_votes tag with
    | None -> ()
    | Some votes ->
        votes := ISet.add src.Topology.n !votes;
        let quorum = Intmath.pbft_quorum (active_size t dst.Topology.g) in
        if ISet.cardinal !votes >= quorum then begin
          match Hashtbl.find_opt l.l_accept_pending tag with
          | Some k ->
              Hashtbl.remove l.l_accept_pending tag;
              Hashtbl.remove l.l_accept_votes tag;
              k ()
          | None -> ()
        end
  end

let handle_accept_note t ~(dst : Topology.addr) eid =
  if is_acting_leader t dst then begin
    let l = t.leaders.(dst.Topology.g) in
    let notes =
      match Entry_tbl.find_opt l.l_accept_notes eid with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Entry_tbl.replace l.l_accept_notes eid r;
          r
    in
    incr notes;
    (* f_g + 1 groups holding the entry imply it is replicated; the
       proposer counts implicitly, so f_g accept notes suffice for a
       slow receiver to stamp the entry without holding it (§V-C). *)
    if !notes >= max 1 (fg t) then Ordering.assign_ts t l eid
  end

(* Create the per-node PBFT replicas. Called once from [Engine.create]. *)
let install t =
  Array.iter
    (fun group ->
      Array.iter
        (fun node ->
          let g = node.n_addr.Topology.g in
          let n = Topology.group_size t.topo g in
          let pbft =
            Pbft.create
              { Pbft.n; me = node.n_addr.Topology.n; skip_prepare = false }
              {
                Pbft.send =
                  (fun dst_n pm ->
                    let bulk =
                      match pm with Pbft.Pre_prepare _ -> true | _ -> false
                    in
                    send ~bulk t ~src:node.n_addr
                      ~dst:{ Topology.g; n = dst_n }
                      ~bytes:(local_msg_bytes t pm) (Local pm));
                decide = (fun cert -> on_decide t node cert);
              }
          in
          node.n_pbft <- Some pbft)
        group)
    t.nodes

let observe (t : Node_ctx.t) sampler =
  Array.iter
    (fun group ->
      Array.iter
        (fun node ->
          match node.n_pbft with
          | None -> ()
          | Some p ->
              let labels = obs_node_labels node in
              Massbft_obs.Sampler.add_probe sampler
                ~name:"massbft_pbft_is_leader"
                ~help:"1 when this replica leads its group's PBFT view"
                ~labels
                (fun ~now:_ ~dt:_ -> if Pbft.is_leader p then 1.0 else 0.0);
              Massbft_obs.Sampler.add_probe sampler ~name:"massbft_pbft_view"
                ~help:"Current PBFT view number" ~labels
                (fun ~now:_ ~dt:_ -> float_of_int (Pbft.view p)))
        group)
    t.nodes
