(* Ordering stage: how globally-replicated entries reach a final
   execution order. Four strategies behind one interface (Table II):

   - [sync_rounds]: round-synchronous — round r executes when every
     group's entry r is ready; a group may run at most a pipeline's
     worth of rounds ahead (Baseline / GeoBFT / BR / EBR).
   - [epoch_rounds k]: rounds plus ISS's epoch-boundary gate — a
     proposal in epoch e waits for every round of the preceding epochs
     to have executed locally.
   - [global_log]: Steward — the single Raft log's commit order IS the
     execution order.
   - [async_vts]: MassBFT's asynchronous vector-timestamp ordering
     (Algorithm 2); the Orderer consumes Ts records from the
     global-consensus stage, so commits trigger nothing here. *)

open Node_ctx

let rec mark_round_ready t (l : leader) eid =
  if not (Entry_tbl.mem l.l_round_ready eid) then begin
    Entry_tbl.replace l.l_round_ready eid ();
    try_rounds t l
  end

and try_rounds t (l : leader) =
  (* Under a membership reconfiguration the barrier spans only the
     groups whose round-indexed window covers [r] — identical to "all
     groups" whenever no plan is armed. *)
  let round_complete r =
    let ok = ref true in
    for g = 0 to t.ng - 1 do
      if
        member_in_round t g r
        && not (Entry_tbl.mem l.l_round_ready { Types.gid = g; seq = r })
      then ok := false
    done;
    !ok
  in
  while round_complete l.l_next_round do
    let r = l.l_next_round in
    l.l_next_round <- r + 1;
    for g = 0 to t.ng - 1 do
      if member_in_round t g r then begin
        let eid = { Types.gid = g; seq = r } in
        (* An epoch-boundary entry in this round fixes the membership
           masks for later rounds — registered here, synchronously,
           because rounds close strictly in order but execute
           asynchronously. *)
        (if t.reconfig_on then
           match t.reconfig_round with
           | Some hook ->
               let e = entry_of t eid in
               if e.conf <> None then hook t e r
           | None -> ());
        Execution.enqueue t l eid
      end
    done;
    (* ISS: closing a round may unblock the next epoch's proposals. *)
    Batcher.try_batch t t.leaders.(l.l_gid)
  done

(* ------------------------------------------------------------------ *)
(* The VTS stamping lane (Async_vts / MassBFT)                         *)
(* ------------------------------------------------------------------ *)

(* Vector-timestamp records travel through the global Raft instances,
   but which entries get stamped, with what clock, and what a committed
   Ts record means are ordering questions — so the lane lives here and
   the Raft adapter (Global_consensus) calls in at its deliver/commit/
   role-change hooks. *)

let ts_key inst (eid : Types.entry_id) =
  Printf.sprintf "%d|%d|%d" inst eid.Types.gid eid.Types.seq

let assign_ts t (l : leader) eid =
  (* Overlapped VTS assignment: stamp the entry with our clock and
     replicate through our own instance (Fig. 7b). *)
  if
    t.strat.ord.o_vts
    && eid.Types.gid <> l.l_gid
    && (not (Hashtbl.mem l.l_ts_mark (ts_key l.l_gid eid)))
    && (not (Hashtbl.mem l.l_ts_seen (ts_key l.l_gid eid)))
    && Raft.role l.l_rafts.(l.l_gid) = Raft.Leader
  then begin
    Hashtbl.replace l.l_ts_mark (ts_key l.l_gid eid) ();
    ignore (Raft.propose l.l_rafts.(l.l_gid) (Ts { eid; ts = l.l_clk }))
  end

(* Catch-all timestamp assignment for every instance this leader
   currently leads: covers taken-over instances (frozen clocks on
   behalf of a crashed group, §V-C) and our own instance for entries
   whose deliver-time assignment was skipped during a leadership
   handover. *)
let stamp_led_instances (l : leader) eid =
  for j = 0 to Array.length l.l_rafts - 1 do
    if
      j <> eid.Types.gid
      && Raft.role l.l_rafts.(j) = Raft.Leader
      && (not (Hashtbl.mem l.l_ts_seen (ts_key j eid)))
      && not (Hashtbl.mem l.l_ts_mark (ts_key j eid))
    then begin
      Hashtbl.replace l.l_ts_mark (ts_key j eid) ();
      ignore (Raft.propose l.l_rafts.(j) (Ts { eid; ts = l.l_clk_of.(j) }))
    end
  done

(* Stamp every committed-but-unexecuted entry still lacking instance
   [inst]'s element: on a takeover this assigns the crashed group's
   frozen clock; on a transfer-back it repairs assignments skipped
   while we were not the leader. *)
let stamp_committed_unexec (l : leader) inst =
  Entry_tbl.iter
    (fun eid () ->
      if
        eid.Types.gid <> inst
        && (not (Hashtbl.mem l.l_ts_seen (ts_key inst eid)))
        && not (Hashtbl.mem l.l_ts_mark (ts_key inst eid))
      then begin
        Hashtbl.replace l.l_ts_mark (ts_key inst eid) ();
        ignore
          (Raft.propose l.l_rafts.(inst) (Ts { eid; ts = l.l_clk_of.(inst) }))
      end)
    l.l_committed_unexec

(* A Ts record committed in instance [inst]'s log: feed the Orderer
   (first commit wins). *)
let on_ts_commit (l : leader) inst ~eid ~ts =
  let key = ts_key inst eid in
  if not (Hashtbl.mem l.l_ts_seen key) then begin
    Hashtbl.replace l.l_ts_seen key ();
    match l.l_orderer with
    | Some o -> Orderer.on_timestamp o ~from_gid:inst ~eid ~ts
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Strategy values                                                     *)
(* ------------------------------------------------------------------ *)

let sync_rounds =
  {
    o_allows =
      (fun t l seq ->
        (* Round-based protocols propose exactly one entry per round: a
           group may run at most a pipeline's worth of rounds ahead of
           the slowest group (otherwise Figure 2's backlog grows
           without bound). *)
        seq - l.l_next_round < t.cfg.Config.pipeline);
    o_on_commit = mark_round_ready;
    o_vts = false;
    o_rounds = true;
  }

let epoch_rounds k =
  {
    o_allows =
      (fun _t l seq ->
        (* A proposal in epoch e requires every round of the preceding
           epochs (rounds 1 .. e*k) to have executed locally — the
           epoch-boundary synchronization that gives ISS its latency
           profile. *)
        let epoch = (seq - 1) / k in
        epoch = 0 || l.l_next_round > epoch * k);
    o_on_commit = mark_round_ready;
    o_vts = false;
    o_rounds = true;
  }

let global_log =
  {
    o_allows = (fun _ _ _ -> true);
    o_on_commit = Execution.enqueue;
    o_vts = false;
    o_rounds = false;
  }

let async_vts =
  {
    o_allows = (fun _ _ _ -> true);
    o_on_commit = (fun _ _ _ -> ());
    o_vts = true;
    o_rounds = false;
  }

let observe (t : Node_ctx.t) sampler =
  Array.iter
    (fun l ->
      let labels = obs_group_labels l in
      Massbft_obs.Sampler.add_probe sampler
        ~name:"massbft_ordering_round_ready"
        ~help:"Entries ready at the round barrier, waiting for the rest \
               of their round"
        ~labels
        (fun ~now:_ ~dt:_ -> float_of_int (Entry_tbl.length l.l_round_ready));
      Massbft_obs.Sampler.add_probe sampler ~name:"massbft_ordering_next_round"
        ~help:"Next round this leader will close" ~labels
        (fun ~now:_ ~dt:_ -> float_of_int l.l_next_round))
    t.leaders
