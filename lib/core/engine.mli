(** The protocol engine: a full deployment of MassBFT (or one of the
    competitor systems — same engine, different {!Config.system}) over a
    simulated geo-distributed cluster.

    Per group, the engine runs: saturated clients and 20 ms batching
    with a bounded pipeline; local PBFT consensus at node granularity
    (the real {!Massbft_consensus.Pbft} state machines exchanging
    messages through the simulated LAN, with per-transaction signature
    verification charged on each node's CPU); the configured global
    replication strategy (leader one-way copies, full bijective copies,
    or encoded bijective chunks following {!Transfer_plan}, with
    Merkle-root bucket classification of chunks); the configured global
    consensus ({!Massbft_consensus.Raft} instances between group
    leaders, with accept-phase local consensus and content-gated acks
    per Lemma V.1); the configured ordering (synchronous rounds, ISS
    epochs, Steward's global log, or Algorithm 2's asynchronous VTS
    ordering through {!Orderer}); and Aria execution over the real
    workloads, with conflicted transactions re-queued by their proposer.

    Faults: Byzantine chunk tampering (colluding nodes per §VI-E) and
    whole-group crashes with Raft leader takeover and frozen-clock
    timestamp assignment (§V-C).

    Fidelity notes (see DESIGN.md): entry payloads inside the simulator
    are virtual (sizes + digests; the byte-level chunker/rebuild pipeline
    is exercised by the test suite and shares its size arithmetic with
    the engine); ordering and execution state is maintained at each
    group's leader node, with execution and verification CPU charged on
    every node. *)

type t

val create : Massbft_sim.Sim.t -> Massbft_sim.Topology.t -> Config.t -> t
(** Wires a deployment over [topology]; nothing runs until {!start}. *)

val set_trace : t -> Massbft_trace.Trace.t -> unit
(** Attaches a trace sink to the whole deployment — the simulator core,
    every NIC and CPU in the topology, every local PBFT replica, every
    global Raft instance, and the engine's own entry-lifecycle
    instrumentation (batch → local decide → encode/transfer → rebuild →
    commit → order → execute, emitted as ["entry"]/["entry.phase"]
    events correlated by entry id). Also installs the simulator clock
    into the sink so event timestamps carry virtual time. Call before
    {!start}; tracing defaults to the disabled sink ({!
    Massbft_trace.Trace.null}), in which case every emission site is a
    single branch. *)

val set_obs : t -> Massbft_obs.Sampler.t -> unit
(** Registers every stage's instruments with the sampler: admission
    (pipeline in-flight, retry queue), PBFT role/view per replica,
    replication (fetch lane, rebuilds in progress), Raft role and
    commit index per instance, the ordering round barrier, the
    execution pump, and the deployment-wide transaction totals. All
    probes are read-only polls of existing state, so an observed run is
    result-identical to an unobserved one. Call after {!create} and
    before [Sampler.attach]; independent of {!set_trace} — either
    subsystem works without the other. *)

val start : t -> unit
(** Arms the batch timers, heartbeats and fault injectors. Run the
    simulation with {!Massbft_sim.Sim.run}. *)

val set_adversary : t -> Node_ctx.adv_hook option -> unit
(** Installs (or removes, with [None]) the Byzantine-adversary message
    interposer on the engine's typed send path. The hook sees every
    protocol message at its send site and may rewrite, fork, withhold,
    replay or delay it per destination (massbft_adversary compiles
    strategy plans into such hooks). With no hook installed the send
    path is exactly the fault-free one. *)

val arm_watchdogs : t -> unit
(** Arms the per-group liveness watchdogs the engine normally arms
    lazily on the first node-level crash. An active Byzantine strategy
    can stall PBFT slots without crashing anyone, so adversary drills
    arm them explicitly; idempotent, and fault-free runs that never call
    it schedule nothing. *)

val metrics : t -> Metrics.t

val set_measure_from : t -> float -> unit
(** Samples with creation time before this instant are discarded
    (warm-up exclusion). *)

val executed_ids : t -> gid:int -> Types.entry_id list
(** The execution order observed at group [gid]'s leader, oldest first
    — the object of the agreement tests. *)

val store_fingerprint : t -> string
(** Fingerprint of the executed database state (shared memoized store;
    with [independent_stores] semantics preserved per leader, see
    {!leader_store_fingerprint}). *)

val leader_store_fingerprint : t -> gid:int -> string
(** Per-leader store fingerprint; only distinct from
    {!store_fingerprint} when the config sets [independent_stores]. *)

val ledger_of : t -> gid:int -> Massbft_exec.Ledger.t
(** The globally ordered ledger as built by group [gid]'s leader. *)

val entries_executed_total : t -> int
val wan_bytes : t -> int
val lan_bytes : t -> int

val debug_dump : t -> string
(** Human-readable snapshot of per-leader protocol state (pipelines,
    Raft roles per instance, orderer heads) for diagnostics. *)

val recover_group : t -> int -> unit
(** Restore a crashed group's nodes (its Raft instances re-join on
    traffic; used by recovery experiments). *)

val crash_group : t -> int -> unit
(** Crash every node of the group now (the programmatic form of
    [Config.crash_group_at]; the takeover machinery is identical). *)

val crash_node : t -> Massbft_sim.Topology.addr -> unit
(** Crash a single node. Crashing a group's acting leader arms the
    engine's per-group liveness watchdogs (lazily, so fault-free runs
    schedule nothing): survivors drive a PBFT view change past dead
    view leaders, and the acting-leader role migrates to the new view's
    leader, re-proposing any entries stranded by the crash. *)

val recover_node : t -> Massbft_sim.Topology.addr -> unit
(** Restore a single node. The replica adopts the group's current PBFT
    view (post-recovery state transfer) so it can vote again. *)

(** {1 Invariant-checker accessors}

    Read-only views for {e external} safety checkers (massbft_faults):
    polling them never changes a run. *)

val now : t -> float
val n_groups : t -> int
val group_size : t -> int -> int
val config : t -> Config.t
val node_alive : t -> Massbft_sim.Topology.addr -> bool

val acting_leader : t -> gid:int -> Massbft_sim.Topology.addr
(** The node currently holding the group's acting-leader role. *)

val executed_count : t -> gid:int -> int
(** Entries executed at the group's leader so far (monotone). *)

val raft_instances : t -> int
(** Global Raft instances per leader (0 for GeoBFT). *)

val raft_commit_index : t -> gid:int -> inst:int -> int
(** Commit index of instance [inst] as seen by group [gid]'s leader. *)

val replica_decided : t -> g:int -> n:int -> seq:int -> string option
(** The digest node [(g,n)]'s PBFT replica decided at local sequence
    [seq], if any. *)

val entry_digest : t -> Types.entry_id -> string option

val proposed_seqs : t -> gid:int -> int
(** Highest local sequence number the group has formed a batch for. *)

(** {1 Reconfiguration seam (massbft_reconfig)} *)

val ctx : t -> Node_ctx.t
(** The full shared context. The reconfiguration controller spans every
    stage (topology provisioning, state transfer over the fetch lane,
    epoch-boundary membership flips), so it operates on the context
    directly instead of through per-field accessors. *)

val submit_conf : t -> string -> unit
(** Enqueue a reconfiguration command (the DSL's one-line text form) at
    the coordinator group. It is formed into a zero-txn epoch-boundary
    entry and ordered through global consensus like any batch; the
    controller's apply hook fires when leaders execute it. *)

val migrate_leader : t -> Node_ctx.leader -> Massbft_sim.Topology.addr -> unit
(** Hand the group's acting-leader role to [addr] (the move-leader
    reconfiguration command; also driven internally after view
    changes). *)
