module Stats = Massbft_util.Stats

type t = {
  committed_txns : Stats.Counter.t;
  conflicted_txns : Stats.Counter.t;
  logic_aborted_txns : Stats.Counter.t;
  entries_executed : Stats.Counter.t;
  txn_rate : Stats.Timeseries.t;
  latency_s : Stats.Summary.t;
  latency_ts : Stats.Timeseries.t;
  phase_batch_s : Stats.Summary.t;
  phase_local_s : Stats.Summary.t;
  phase_coding_s : Stats.Summary.t;
  phase_global_s : Stats.Summary.t;
  phase_order_s : Stats.Summary.t;
  phase_exec_s : Stats.Summary.t;
  committed_per_group : (int, Stats.Counter.t) Hashtbl.t;
  mutable measure_from : float;
}

let create () =
  {
    committed_txns = Stats.Counter.create ();
    conflicted_txns = Stats.Counter.create ();
    logic_aborted_txns = Stats.Counter.create ();
    entries_executed = Stats.Counter.create ();
    txn_rate = Stats.Timeseries.create ~bucket:1.0;
    latency_s = Stats.Summary.create ();
    latency_ts = Stats.Timeseries.create ~bucket:1.0;
    phase_batch_s = Stats.Summary.create ();
    phase_local_s = Stats.Summary.create ();
    phase_coding_s = Stats.Summary.create ();
    phase_global_s = Stats.Summary.create ();
    phase_order_s = Stats.Summary.create ();
    phase_exec_s = Stats.Summary.create ();
    committed_per_group = Hashtbl.create 8;
    measure_from = 0.0;
  }

let throughput_tps t ~duration =
  if duration <= 0.0 then 0.0
  else float_of_int (Stats.Counter.get t.committed_txns) /. duration

let mean_latency_ms t = 1000.0 *. Stats.Summary.mean t.latency_s

(* A run that commits nothing has no latency distribution; report 0 at
   this level (the result tables print the commit count alongside, so
   the zero cannot masquerade as a real measurement). *)
let p99_latency_ms t =
  match Stats.Summary.percentile_opt t.latency_s 99.0 with
  | Some p99 -> 1000.0 *. p99
  | None -> 0.0

let group_committed t gid =
  match Hashtbl.find_opt t.committed_per_group gid with
  | Some c -> Stats.Counter.get c
  | None -> 0

(* Deliberately excludes [logic_aborted_txns]: see the .mli. *)
let commit_ratio t =
  let c = Stats.Counter.get t.committed_txns in
  let a = Stats.Counter.get t.conflicted_txns in
  if c + a = 0 then 1.0 else float_of_int c /. float_of_int (c + a)
