(* Execution stage: the per-leader ordered execution queue, Aria batch
   execution + ledger append, and per-entry metrics/trace recording.
   Entries enter through [enqueue] (from the ordering or global
   strategies); the pump executes them in queue order, gated on holding
   the entry's content. *)

open Node_ctx
module Stats = Massbft_util.Stats

(* The entry's lifecycle as (summary, name, begin, duration) spans.
   Both the Metrics phase summaries (Figure 11) and the exported trace
   derive from this one list, so figure output and a trace of the same
   run always agree. *)
let phase_spans t e ~tnow =
  let m = t.metrics in
  let batch_wait = t.cfg.Config.batch_timeout_s /. 2.0 in
  let coding = t.strat.repl.r_coding_s t e in
  let always =
    [
      (m.Metrics.phase_batch_s, "batch", e.created_at -. batch_wait, batch_wait);
      ( m.Metrics.phase_local_s,
        "local",
        e.created_at,
        e.decided_at -. e.created_at );
      (m.Metrics.phase_coding_s, "coding", e.decided_at, coding);
    ]
  in
  let tail =
    if e.committed_at > 0.0 then
      ( m.Metrics.phase_global_s,
        "global",
        e.decided_at,
        e.committed_at -. e.decided_at )
      ::
      (if e.ordered_at > 0.0 then
         [
           ( m.Metrics.phase_order_s,
             "order",
             e.committed_at,
             e.ordered_at -. e.committed_at );
           (m.Metrics.phase_exec_s, "exec", e.ordered_at, tnow -. e.ordered_at);
         ]
       else [])
    else []
  in
  always @ tail

let record_metrics_unlocked t e outcome =
  let m = t.metrics in
  let tnow = now t in
  let n_committed = List.length outcome.Aria.committed in
  Stats.Counter.add m.Metrics.committed_txns n_committed;
  (let per_group =
     match Hashtbl.find_opt m.Metrics.committed_per_group e.eid.Types.gid with
     | Some c -> c
     | None ->
         let c = Stats.Counter.create () in
         Hashtbl.replace m.Metrics.committed_per_group e.eid.Types.gid c;
         c
   in
   Stats.Counter.add per_group n_committed);
  Stats.Counter.add m.Metrics.conflicted_txns
    (List.length outcome.Aria.conflicted);
  Stats.Counter.add m.Metrics.logic_aborted_txns
    (List.length outcome.Aria.logic_aborted);
  Stats.Counter.add m.Metrics.entries_executed 1;
  Stats.Timeseries.add m.Metrics.txn_rate ~time:tnow (float_of_int n_committed);
  let batch_wait = t.cfg.Config.batch_timeout_s /. 2.0 in
  let latency = tnow -. e.created_at +. batch_wait in
  Stats.Summary.add m.Metrics.latency_s latency;
  Stats.Timeseries.add m.Metrics.latency_ts ~time:tnow latency;
  (* Phase breakdown: the span list is the single source; each span's
     duration feeds its summary and, when tracing, the span itself is
     exported with the entry's correlation id. *)
  List.iter
    (fun (summary, name, b, dur) ->
      Stats.Summary.add summary dur;
      if Trace.enabled t.trace then begin
        let b = Float.max 0.0 b in
        Trace.span t.trace ~cat:"entry.phase" ~gid:e.eid.Types.gid ~node:0
          ~eid:(e.eid.Types.gid, e.eid.Types.seq)
          ~b ~e:(b +. dur) name
      end)
    (phase_spans t e ~tnow)

(* Summaries and timeseries are plain mutable structures shared by all
   leaders; proposer shards reaching here under the parallel driver
   serialize through [metrics_mu]. (Counters are atomic and would not
   need the lock, but one lock for the whole record is simpler.) *)
let record_metrics t e outcome =
  Mutex.lock t.metrics_mu;
  match record_metrics_unlocked t e outcome with
  | () -> Mutex.unlock t.metrics_mu
  | exception exn ->
      Mutex.unlock t.metrics_mu;
      raise exn

let do_execute t (l : leader) e =
  (* Execute-once, replay-elsewhere: the first leader to reach the entry
     runs the full Aria pass; every group's store is a deterministic
     replica applying the same entries in the same order, so later
     leaders reproduce the identical post-state from the memoized write
     effects. With a shared store ([independent_stores = false]) the
     effects are already applied, so later leaders touch nothing; with
     per-group stores each leader replays the effect list onto its own
     copy — a fraction of the cost of re-running the batch. The outcome
     cell is atomic for cross-domain publication; a racy double-execute
     is deterministic, idempotent on disjoint stores, and merely wasted
     work. *)
  let outcome =
    match Atomic.get e.outcome with
    | Some o ->
        if t.cfg.Config.independent_stores then Aria.apply_effects l.l_store o;
        o
    | None ->
        let o =
          Aria.execute_batch ~reorder:t.cfg.Config.reorder ~fallback:e.fb_txns
            l.l_store e.txns
        in
        Atomic.set e.outcome (Some o);
        o
  in
  ignore
    (Ledger.append l.l_ledger ~gid:e.eid.Types.gid ~seq:e.eid.Types.seq
       ~txn_count:e.txn_count ~payload_digest:e.digest);
  l.l_executed_rev <- e.eid :: l.l_executed_rev;
  l.l_executed_count <- l.l_executed_count + 1;
  Entry_tbl.remove l.l_committed_unexec e.eid;
  (* Once every leader has executed the entry its content (transaction
     closures, memoized outcome and effects) is dead weight; keep the
     metadata. *)
  Atomic.incr e.exec_count;
  (* Pruning is disabled under a reconfiguration plan: a dark group's
     leader executes the backlog only after its cutover, and a joiner's
     replay must still find the content. *)
  if (not t.reconfig_on) && Atomic.get e.exec_count >= t.ng then begin
    e.txns <- [];
    e.fb_txns <- [];
    Atomic.set e.outcome None
  end;
  if e.eid.Types.gid = l.l_gid then begin
    trace_entry t e.eid "executed" ~node:0
      ~args:[ ("committed", Trace.Int (List.length outcome.Aria.committed)) ];
    (* The proposer re-queues its conflict-aborted transactions. *)
    l.l_retry <- l.l_retry @ outcome.Aria.conflicted;
    if measuring t e.created_at then record_metrics t e outcome
  end;
  (* Epoch boundary: executing a config entry is the agreed cut — the
     ledger block just appended is the on-chain record of the change,
     and the controller applies this group's side of the flip now. *)
  (match e.conf with
  | Some _ -> (
      match t.reconfig_apply with Some hook -> hook t l e | None -> ())
  | None -> ());
  Batcher.try_batch t l

let rec pump t (l : leader) =
  if (not l.l_exec_busy) && not (Queue.is_empty l.l_exec_q) then begin
    let eid = Queue.peek l.l_exec_q in
    let node = node_of t l.l_addr in
    if has_content node eid then begin
      ignore (Queue.pop l.l_exec_q);
      l.l_exec_busy <- true;
      let e = entry_of t eid in
      let cost =
        float_of_int e.txn_count *. t.cfg.Config.cost.Config.txn_exec_s
      in
      (* Every node of the group replays execution; followers' CPUs are
         charged fire-and-forget. *)
      List.iter
        (fun a ->
          if (not (is_acting_leader t a)) && alive t a then
            charge_cpu_parallel t a cost (fun () -> ()))
        (Topology.group_nodes t.topo l.l_gid);
      charge_cpu_parallel t l.l_addr cost (fun () ->
          do_execute t l e;
          l.l_exec_busy <- false;
          pump t l)
    end
    else
      (* The head can only be repaired by a fetch after a crash gap;
         give the chunks one timeout to arrive on their own. *)
      ignore
        (Sim.after t.sim t.cfg.Config.fetch_timeout_s (fun () ->
             if
               alive t l.l_addr
               && not (has_content (node_of t l.l_addr) eid)
             then Replication.want_fetch t l eid))
  end

let enqueue t (l : leader) eid =
  (* A leader whose group is not (yet) a member buffers instead of
     executing: a joining group replays the donor's prefix by state
     transfer, then drains this buffer at its cutover so nothing
     commits twice and nothing is lost. *)
  if t.reconfig_on && not (member_now t l.l_gid) then Queue.push eid l.l_deferred
  else begin
  (match with_registry t (fun () -> Entry_tbl.find_opt t.entries eid) with
  | Some e when eid.Types.gid = l.l_gid && e.ordered_at = 0.0 ->
      e.ordered_at <- now t;
      trace_entry t eid "ordered" ~node:0
  | _ -> ());
    Queue.push eid l.l_exec_q;
    pump t l
  end

let observe (t : Node_ctx.t) sampler =
  Array.iter
    (fun l ->
      let labels = obs_group_labels l in
      Massbft_obs.Sampler.add_probe sampler
        ~name:"massbft_execution_queue_depth"
        ~help:"Finally-ordered entries queued behind the execution pump"
        ~labels
        (fun ~now:_ ~dt:_ -> float_of_int (Queue.length l.l_exec_q));
      Massbft_obs.Sampler.add_probe sampler ~name:"massbft_execution_busy"
        ~help:"1 while the pump has an Aria batch on the CPU" ~labels
        (fun ~now:_ ~dt:_ -> if l.l_exec_busy then 1.0 else 0.0);
      Massbft_obs.Sampler.add_probe sampler
        ~name:"massbft_execution_committed_unexec"
        ~help:"Globally committed entries not yet executed" ~labels
        (fun ~now:_ ~dt:_ ->
          float_of_int (Entry_tbl.length l.l_committed_unexec)))
    t.leaders
