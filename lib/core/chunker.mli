(** Entry → authenticated chunks, the sender half of encoded bijective
    log replication (§IV-B/C).

    Every node of the sender group deterministically erasure-codes the
    locally-agreed entry with the pair's {!Transfer_plan}, builds a
    Merkle tree over the chunks, and ships each chunk with its inclusion
    proof. Because the encoding is deterministic, all correct senders
    produce the identical chunk set and Merkle root — a receiver can
    therefore bucket chunks by root and know that chunks under one root
    come from one encoding. *)

type chunk = {
  index : int;  (** position in the chunk space of the plan *)
  payload : string;
  root : string;  (** Merkle root of the full chunk set *)
  proof : Massbft_crypto.Merkle.proof;
}

val encode : plan:Transfer_plan.t -> entry:string -> chunk array
(** All [plan.n_total] chunks, index-ordered. Deterministic. *)

val chunk_wire_size : plan:Transfer_plan.t -> entry_len:int -> int
(** Bytes one chunk occupies on the WAN: payload + Merkle root and proof
    + header. Used for traffic accounting and by the simulator's
    virtual-payload mode, so that both modes agree byte-for-byte. *)

val verify_chunk : chunk -> bool
(** Checks the Merkle proof binds [payload] to [index] under [root]. *)

val total_wire_bytes : plan:Transfer_plan.t -> entry_len:int -> int
(** WAN bytes for one full entry transfer under the plan — the Figure 10
    quantity (chunks only; the Raft metadata is accounted separately). *)
