type entry_id = { gid : int; seq : int }

let entry_id_to_string e = Printf.sprintf "e(%d,%d)" e.gid e.seq

let entry_id_compare a b =
  let c = compare a.gid b.gid in
  if c <> 0 then c else compare a.seq b.seq

let entry_id_equal a b = a.gid = b.gid && a.seq = b.seq

module Entry_ord = struct
  type t = entry_id

  let compare = entry_id_compare
end

module Entry_map = Map.Make (Entry_ord)

module Entry_hash = struct
  type t = entry_id

  let equal = entry_id_equal
  let hash e = (e.gid * 1_000_003) + e.seq
end

module Entry_tbl = Hashtbl.Make (Entry_hash)

let signature_bytes = 64
let digest_bytes = 32
let header_bytes = 48

let certificate_bytes ~n =
  let f = Massbft_util.Intmath.pbft_f n in
  let quorum = (2 * f) + 1 in
  (quorum * (signature_bytes + 4)) + digest_bytes + header_bytes

let vote_bytes = digest_bytes + signature_bytes + header_bytes

let raft_meta_bytes ~n = certificate_bytes ~n + digest_bytes + header_bytes + 16
