(* Ordering stage: round-synchronous vs. epoch vs. global-log vs.
   asynchronous VTS ordering behind one strategy interface. *)

open Node_ctx

val mark_round_ready : t -> leader -> Types.entry_id -> unit
(** Record that the entry is ready for its round and close every
    now-complete round in sequence (round-based strategies; also the
    commitment path of GeoBFT's direct broadcast). *)

val sync_rounds : ord_strategy
val epoch_rounds : int -> ord_strategy
val global_log : ord_strategy
val async_vts : ord_strategy

(* The VTS stamping lane (Async_vts only): which entries get stamped,
   with what clock, and what a committed Ts record means. The Raft
   adapter calls in at its deliver/commit/role-change hooks. *)

val assign_ts : t -> leader -> Types.entry_id -> unit
(** Stamp a remote entry with our clock through our own instance
    (overlapped assignment, Fig. 7b); no-op unless VTS ordering is
    active and we lead our instance. *)

val stamp_led_instances : leader -> Types.entry_id -> unit
(** Catch-all: stamp the entry in every instance this leader currently
    leads (takeovers run crashed groups' frozen clocks, §V-C). *)

val stamp_committed_unexec : leader -> int -> unit
(** On gaining an instance's leadership: stamp every
    committed-but-unexecuted entry still lacking its element. *)

val on_ts_commit : leader -> int -> eid:Types.entry_id -> ts:int -> unit
(** A Ts record committed: feed the Orderer (first commit wins). *)

val observe : Node_ctx.t -> Massbft_obs.Sampler.t -> unit
(** Register the round-barrier gauges. Part of [Engine.set_obs]. *)
