module Entry_tbl = Types.Entry_tbl

type t = {
  ng : int;
  on_execute : Types.entry_id -> unit;
  entries : Vts.t Entry_tbl.t;
  heads : Vts.t array;  (* heads.(i): next unexecuted entry of group i *)
  last_ts : int array;  (* last timestamp seen from each group's stream *)
  active : bool array;
      (* membership mask: an inactive group's head is neither a
         candidate minimum nor a constraint (all true without a
         reconfiguration) *)
  mutable executed : int;
  mutable executing : bool;  (* re-entrancy guard for the drain loop *)
}

let get_entry t (eid : Types.entry_id) =
  match Entry_tbl.find_opt t.entries eid with
  | Some e -> e
  | None ->
      let e = Vts.create ~ng:t.ng ~gid:eid.gid ~seq:eid.seq in
      Entry_tbl.replace t.entries eid e;
      e

let create ~ng ~on_execute =
  if ng < 1 then invalid_arg "Orderer.create: need at least one group";
  let t =
    {
      ng;
      on_execute;
      entries = Entry_tbl.create 256;
      heads = [||];
      last_ts = Array.make ng 0;
      active = Array.make ng true;
      executed = 0;
      executing = false;
    }
  in
  let t = { t with heads = Array.make ng (Vts.create ~ng ~gid:0 ~seq:1) } in
  for i = 0 to ng - 1 do
    t.heads.(i) <- get_entry t { Types.gid = i; seq = 1 }
  done;
  t

(* GlobalMinimum, lines 16-20: the head that provably precedes every
   other head. *)
let global_minimum t =
  let rec find i =
    if i >= t.ng then None
    else if not t.active.(i) then find (i + 1)
    else
      let e1 = t.heads.(i) in
      let wins = ref true in
      for j = 0 to t.ng - 1 do
        if j <> i && t.active.(j) && not (Vts.prec e1 t.heads.(j)) then
          wins := false
      done;
      if !wins then Some e1 else find (i + 1)
  in
  find 0

(* Lines 8-15: execute minima until none is decidable. *)
let drain t =
  if not t.executing then begin
    t.executing <- true;
    let continue = ref true in
    while !continue do
      match global_minimum t with
      | None -> continue := false
      | Some pre ->
          let pre_id = { Types.gid = pre.Vts.gid; seq = pre.Vts.seq } in
          t.executed <- t.executed + 1;
          (* Free the executed entry's record; its successor inherits
             the inferred bounds below. *)
          Entry_tbl.remove t.entries pre_id;
          let nxt = get_entry t { Types.gid = pre_id.gid; seq = pre_id.seq + 1 } in
          t.heads.(pre_id.gid) <- nxt;
          (* Lines 13-15: bound the successor's unknown elements by the
             predecessor's values (timestamps are non-decreasing). *)
          for j = 0 to t.ng - 1 do
            Vts.infer_element nxt j pre.Vts.vts.(j)
          done;
          t.on_execute pre_id
    done;
    t.executing <- false
  end

let on_timestamp t ~from_gid ~eid ~ts =
  if from_gid < 0 || from_gid >= t.ng then
    invalid_arg "Orderer.on_timestamp: bad group id";
  if eid.Types.gid = from_gid then
    invalid_arg "Orderer.on_timestamp: the proposer's element is implicit";
  if ts < t.last_ts.(from_gid) then
    invalid_arg
      (Printf.sprintf
         "Orderer.on_timestamp: stream from group %d went backwards (%d < %d)"
         from_gid ts t.last_ts.(from_gid));
  t.last_ts.(from_gid) <- ts;
  (* Executed entries may receive late (re-delivered) timestamps; their
     records are gone and the information is obsolete — but the stream
     bound must still advance the heads' inferred elements. *)
  let head_gid_seq = t.heads.(eid.Types.gid).Vts.seq in
  if eid.Types.seq >= head_gid_seq then begin
    let e = get_entry t eid in
    Vts.set_element e from_gid ts
  end;
  (* Lines 6-7: the stream bound applies to every head. *)
  for i = 0 to t.ng - 1 do
    Vts.infer_element t.heads.(i) from_gid ts
  done;
  drain t

let executed_count t = t.executed

let head_of t i =
  if i < 0 || i >= t.ng then invalid_arg "Orderer.head_of: bad group id";
  { Types.gid = t.heads.(i).Vts.gid; seq = t.heads.(i).Vts.seq }

let head_vts t i =
  if i < 0 || i >= t.ng then invalid_arg "Orderer.head_vts: bad group id";
  t.heads.(i)

let pending_timestamps t = Entry_tbl.length t.entries - t.ng

(* ------------------------------------------------------------------ *)
(* Membership reconfiguration support                                  *)
(* ------------------------------------------------------------------ *)

(* Flip a group's participation. Deactivation removes a constraint, so
   the drain loop re-runs (entries blocked only on the departed group's
   head become decidable); activation adds a candidate whose head must
   already sit at the right sequence (see [set_head]). Every orderer
   instance must flip at the same position in the execution order —
   the controller does so inside the epoch-boundary entry's on_execute,
   where the re-entrant [drain] call is absorbed by the guard and the
   outer loop re-evaluates the minimum with the new mask. *)
let set_active t i b =
  if i < 0 || i >= t.ng then invalid_arg "Orderer.set_active: bad group id";
  t.active.(i) <- b;
  drain t

let is_active t i =
  if i < 0 || i >= t.ng then invalid_arg "Orderer.is_active: bad group id";
  t.active.(i)

(* Position a (re)joining group's head at its first post-join sequence
   number. *)
let set_head t i ~seq =
  if i < 0 || i >= t.ng then invalid_arg "Orderer.set_head: bad group id";
  t.heads.(i) <- get_entry t { Types.gid = i; seq }

let copy_vts (v : Vts.t) =
  { v with Vts.vts = Array.copy v.Vts.vts; set = Array.copy v.Vts.set }

(* State transfer onto a joining leader's fresh orderer: adopt the
   donor's exact ordering state (pending VTSs, heads, stream bounds,
   mask) at the swap instant, so feeding both the same subsequent
   streams yields the same suffix — the agreement property extended
   across the join. *)
let copy_state ~src ~into =
  if src.ng <> into.ng then
    invalid_arg "Orderer.copy_state: group count mismatch";
  Entry_tbl.reset into.entries;
  Entry_tbl.iter
    (fun eid v -> Entry_tbl.replace into.entries eid (copy_vts v))
    src.entries;
  for i = 0 to src.ng - 1 do
    let h = src.heads.(i) in
    into.heads.(i) <-
      (match
         Entry_tbl.find_opt into.entries { Types.gid = h.Vts.gid; seq = h.Vts.seq }
       with
      | Some v -> v
      | None ->
          let v = copy_vts h in
          Entry_tbl.replace into.entries { Types.gid = h.Vts.gid; seq = h.Vts.seq } v;
          v);
    into.last_ts.(i) <- src.last_ts.(i);
    into.active.(i) <- src.active.(i)
  done;
  into.executed <- src.executed
