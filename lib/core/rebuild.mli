(** Optimistic entry rebuild with DoS protection — the receiver half of
    encoded bijective replication (§IV-C).

    Incoming chunks are first proof-checked, then grouped by Merkle root
    into buckets. When a bucket reaches [n_data] chunks the entry is
    tentatively rebuilt and validated against its PBFT certificate (the
    [validate] callback). A bucket that fails validation is entirely
    fake — all chunks under one root come from one encoding — so its
    chunk {e ids} are blacklisted: those ids were handled by faulty
    nodes, their correct versions will never appear, and accepting more
    candidates for them would re-open the denial-of-service vector the
    paper closes. *)

type verdict =
  | Accepted  (** queued into a bucket, no rebuild attempted yet *)
  | Rebuilt of string  (** the entry, certificate-validated *)
  | Rejected_proof  (** Merkle proof does not bind the chunk *)
  | Rejected_blacklisted  (** chunk id burned by a failed rebuild *)
  | Rejected_duplicate  (** this (root, id) was already accepted *)
  | Rejected_fake_bucket of int list
      (** bucket rebuilt but failed certificate validation; the listed
          chunk ids are now blacklisted *)
  | Already_done  (** the entry was rebuilt earlier *)

type t

val create :
  plan:Transfer_plan.t -> validate:(string -> bool) -> unit -> t
(** [validate candidate] checks a rebuilt candidate entry against its
    certificate (digest comparison in practice). *)

val add : t -> Chunker.chunk -> verdict

val result : t -> string option
(** The validated entry, once rebuilt. *)

val blacklisted : t -> int list
(** Currently burned chunk ids (ascending). *)

val chunks_held : t -> int
(** Total accepted chunks across buckets (diagnostic). *)
