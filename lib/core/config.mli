(** Experiment configuration: the system under test (MassBFT, the four
    competitors, and the two ablations — all expressed as settings of
    one engine, exactly as the paper implements them "under the same
    codebase"), the cost model, and client/batching parameters. *)

(** The systems of Table II plus the Figure 12 ablations. *)
type system =
  | Massbft  (** encoded bijective + per-group Raft + async VTS ordering *)
  | Baseline  (** leader one-way + per-group Raft + round ordering *)
  | Geobft  (** leader one-way + direct broadcast (no global consensus) *)
  | Steward  (** leader one-way + single Raft instance (one proposer) *)
  | Iss  (** Baseline + epoch-aligned round ordering *)
  | Br  (** bijective full copies + per-group Raft + round ordering *)
  | Ebr  (** encoded bijective + per-group Raft + round ordering *)

val system_name : system -> string
val all_systems : system list

(** The Table II axes, derived from the system. *)

type replication = Leader_oneway | Bijective_full | Encoded_bijective
type global_consensus = Per_group_raft | Single_raft | Direct_broadcast
type ordering = Sync_rounds | Epoch_rounds of int | Async_vts | Global_log

val replication_of : system -> replication
val global_of : system -> global_consensus

val ordering_of : epoch_rounds:int -> system -> ordering
(** [epoch_rounds] applies to [Iss] only (the paper's 0.1 s epoch over a
    20 ms batch timeout gives 5). *)

(** CPU cost model, per DESIGN.md: real crypto/codec run in tests and
    benches; inside the simulator their cost is charged on the node's
    CPU so that compute contention shapes throughput the way it does on
    the paper's 8-core machines. *)
type cost_model = {
  sig_verify_s : float;  (** one ED25519 verify (dominates local PBFT) *)
  txn_exec_s : float;  (** executing one transaction *)
  encode_per_byte_s : float;  (** RS encode, per entry byte *)
  decode_per_byte_s : float;  (** rebuild, per entry byte *)
}

val default_cost : cost_model

type t = {
  system : system;
  workload : Massbft_workload.Workload.kind;
  workload_scale : float;  (** keyspace scale for simulation speed *)
  batch_timeout_s : float;  (** 0.020 in every paper experiment *)
  max_batch : int;  (** transactions per entry *)
  pipeline : int;  (** entries in flight per group *)
  epoch_rounds : int;  (** ISS epoch length in rounds *)
  cost : cost_model;
  reorder : bool;  (** Aria deterministic reordering *)
  overlapped_vts : bool;
      (** Figure 7b's overlapped timestamp assignment (assign on the
          Raft propose, saving ~1 RTT) vs Figure 7a's serial two-phase
          variant — the ablation of §V-B *)
  election_timeout_s : float;
  fetch_timeout_s : float;  (** content-miss repair timer *)
  seed : int64;
  independent_stores : bool;
      (** each leader executes on its own store (slower; used by the
          convergence tests) instead of the shared memoized store *)
  byzantine_per_group : int;  (** tampering colluders (Figure 15) *)
  byzantine_from_s : float;  (** when they turn hostile *)
  crash_group_at : (int * float) option;  (** (gid, time) (Figure 15) *)
}

val default : ?system:system -> ?workload:Massbft_workload.Workload.kind -> unit -> t
(** Paper-default parameters: 20 ms batching, YCSB-A, deterministic
    seed, no faults. *)
