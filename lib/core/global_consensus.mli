(* Global-consensus stage: the Raft adapter with content-gated acks
   (Lemma V.1), VTS stamping, skip-prepare accept rounds, heartbeats
   and log unwedging. *)

open Node_ctx

val per_group_raft : glob_strategy
(** One Raft instance per group (MassBFT / Baseline / ISS / BR / EBR). *)

val single_raft : glob_strategy
(** Steward: one global Raft at group 0; remote entries are forwarded
    there as full copies. *)

val direct_broadcast : glob_strategy
(** GeoBFT: no global consensus — content arrival at every group is the
    commitment event, credited back to the proposer with Recv_notes. *)

val handle_raft_m :
  t -> src:Topology.addr -> dst:Topology.addr -> inst:int ->
  rpayload Raft.msg -> unit

val handle_recv_note : t -> dst:Topology.addr -> Types.entry_id -> unit

val install : t -> n_inst:int -> unit
(** Create the per-leader Raft instances (and the Orderer under VTS
    ordering). Called once from [Engine.create]. *)

val start_heartbeats : t -> unit
(** Arm the heartbeat / election / unwedge timers. Called once from
    [Engine.start]; a no-op without global Raft instances. *)

val observe : Node_ctx.t -> Massbft_obs.Sampler.t -> unit
(** Register the per-instance Raft role and commit-index gauges. Part
    of [Engine.set_obs]. *)
