(* Local-consensus stage: the per-group PBFT adapter. *)

open Node_ctx

val handle : t -> node -> src:Topology.addr -> Pbft.msg -> unit
(** Deliver a PBFT message to the node's replica, charging the batch
    signature-verification cost on Pre_prepare receipt. *)

val install : t -> unit
(** Create the per-node PBFT replicas. Called once from
    [Engine.create]. *)

val accept_round : t -> leader -> tag:string -> (unit -> unit) -> unit
(** Reach local consensus on an accept decision via the skip-prepare
    variant (§V-B): broadcast the request, run the continuation at a
    quorum of votes. *)

val handle_accept_req :
  t -> src:Topology.addr -> dst:Topology.addr -> string -> unit

val handle_accept_vote :
  t -> src:Topology.addr -> dst:Topology.addr -> string -> unit
val handle_accept_note : t -> dst:Topology.addr -> Types.entry_id -> unit

val observe : Node_ctx.t -> Massbft_obs.Sampler.t -> unit
(** Register the per-replica PBFT role and view gauges. Part of
    [Engine.set_obs]. *)
