(* Replication stage: how a locally-decided batch travels to the other
   groups. Three strategies (Table II):

   - [leader_oneway]: the proposing leader ships f_j + 1 full copies to
     each remote group during the global phase (GeoBFT's optimized
     cluster-sending; also Steward/ISS/Baseline). Nothing to do at
     decide time — the global-consensus strategy invokes
     [send_oneway_copies].
   - [bijective_full]: every node ships full copies per the partitioned
     bijective sending plan of §IV-A (f1 + f2 + 1 copies).
   - [encoded_bijective]: every node erasure-codes the entry and ships
     its chunks per the Algorithm 1 transfer plan; receivers rebuild
     (MassBFT / EBR).

   This module also owns the receiver side: symbolic chunk rebuild with
   the bucket classification of Rebuild (§IV-C's DoS defence), full-copy
   handling, and the post-crash content fetch pump. *)

open Node_ctx

(* Plans for *active* group sizes under a reconfiguration, keyed by the
   size pair (two group pairs with the same sizes share a plan). Only
   consulted when a plan is armed — reconfigured runs are sequential, so
   the table sees one domain. *)
let active_plans : (int * int, Transfer_plan.t) Hashtbl.t = Hashtbl.create 16

let plan_between t ~src ~dst =
  if t.reconfig_on then begin
    let key = (active_size t src, active_size t dst) in
    match Hashtbl.find_opt active_plans key with
    | Some p -> p
    | None ->
        let n1, n2 = key in
        let p = Transfer_plan.generate ~n1 ~n2 in
        Hashtbl.replace active_plans key p;
        p
  end
  else
    match t.plans.(src).(dst) with
    | Some p -> p
    | None ->
        let p =
          Transfer_plan.generate
            ~n1:(Topology.group_size t.topo src)
            ~n2:(Topology.group_size t.topo dst)
        in
        t.plans.(src).(dst) <- Some p;
        p

let chunk_bytes t ~src ~dst ~entry_len =
  Chunker.chunk_wire_size ~plan:(plan_between t ~src ~dst) ~entry_len

(* ------------------------------------------------------------------ *)
(* Senders                                                             *)
(* ------------------------------------------------------------------ *)

let send_chunks t (node : node) e =
  let g = node.n_addr.Topology.g in
  if node.n_addr.Topology.n = 0 then
    trace_entry t e.eid "chunks_sent" ~gid:g ~node:node.n_addr.Topology.n;
  let encode_cost =
    float_of_int e.size *. t.cfg.Config.cost.Config.encode_per_byte_s
  in
  charge_cpu t node.n_addr encode_cost (fun () ->
      (* Checked after the encode charge: a membership flip landing
         inside the charge window can retire this slot out of every
         active dissemination plan, and a retired slot must not ship
         chunks. *)
      if not (t.reconfig_on && node.n_addr.Topology.n >= active_size t g) then
      for j = 0 to t.ng - 1 do
        if j <> g && member_now t j then begin
          let plan = plan_between t ~src:g ~dst:j in
          let bytes = chunk_bytes t ~src:g ~dst:j ~entry_len:e.size in
          let root_tag =
            if node.n_byz then "tampered:" ^ e.digest else e.digest
          in
          List.iter
            (fun (c, r) ->
              send ~bulk:true t ~src:node.n_addr
                ~dst:{ Topology.g = j; n = r }
                ~bytes
                (Chunk { eid = e.eid; root_tag; index = c }))
            (Transfer_plan.sends_of plan ~sender:node.n_addr.Topology.n)
        end
      done)

let send_bijective_copies t (node : node) e =
  (* The general approach of §IV-A: the (partitioned) bijective
     cluster-sending plan, f1 + f2 + 1 full copies for similar group
     sizes. *)
  let g = node.n_addr.Topology.g in
  if t.reconfig_on && node.n_addr.Topology.n >= active_size t g then ()
  else
  for j = 0 to t.ng - 1 do
    if j <> g && member_now t j then begin
      let plan =
        Bijective_plan.generate ~n1:(active_size t g) ~n2:(active_size t j)
      in
      List.iter
        (fun r ->
          send ~bulk:true t ~src:node.n_addr
            ~dst:{ Topology.g = j; n = r }
            ~bytes:(copy_bytes t e.eid) (Copy { eid = e.eid }))
        (Bijective_plan.sends_of plan ~sender:node.n_addr.Topology.n)
    end
  done

let send_oneway_copies t (l : leader) e ~skip =
  (* Leader one-way with the GeoBFT optimization: f_j + 1 receivers per
     remote group, who then forward over their LAN. *)
  for j = 0 to t.ng - 1 do
    if j <> l.l_gid && member_now t j && not (List.mem j skip) then
      for r = 0 to group_f t j do
        send ~bulk:true t ~src:l.l_addr
          ~dst:{ Topology.g = j; n = r }
          ~bytes:(copy_bytes t e.eid) (Copy { eid = e.eid })
      done
  done

(* ------------------------------------------------------------------ *)
(* Content repair: a pipelined fetch pump                              *)
(* ------------------------------------------------------------------ *)

(* Entries whose chunks were lost (a crash gap) are pulled as full
   copies, up to 8 in flight so a recovered group catches up at link
   speed; each issued request is retried against rotating groups while
   the content is missing, and the pump refills a slot the moment
   content lands. Missed content under normal operation never reaches
   the pump: the first fetch timer fires only after [fetch_timeout_s]. *)
let rec want_fetch t (l : leader) eid =
  if
    (not (has_content (node_of t l.l_addr) eid))
    && not (Entry_tbl.mem l.l_fetching eid)
  then begin
    Entry_tbl.replace l.l_fetching eid (ref 0);
    Queue.push eid l.l_fetch_q
  end;
  pump_fetch t l

and pump_fetch t (l : leader) =
  while l.l_fetch_out < 8 && not (Queue.is_empty l.l_fetch_q) do
    let eid = Queue.pop l.l_fetch_q in
    if Entry_tbl.mem l.l_fetching eid then
      if has_content (node_of t l.l_addr) eid then
        Entry_tbl.remove l.l_fetching eid
      else begin
        l.l_fetch_out <- l.l_fetch_out + 1;
        fetch_issue t l eid
      end
  done

and fetch_issue t (l : leader) eid =
  match Entry_tbl.find_opt l.l_fetching eid with
  | None -> () (* satisfied in the meantime; slot freed on content *)
  | Some attempts ->
      incr attempts;
      let attempt = !attempts in
      if attempt > 1 then t.fetch_retries <- t.fetch_retries + 1;
      (* Ask the proposer first, then rotate through the member groups
         (a dark or departed group cannot serve content). *)
      let target =
        let rec pick k left =
          let c = k mod t.ng in
          if left = 0 || member_now t c then c else pick (k + 1) (left - 1)
        in
        pick (eid.Types.gid + attempt - 1) t.ng
      in
      if target <> l.l_gid then begin
        trace_entry t eid "fetch_req" ~gid:l.l_gid ~node:0
          ~args:[ ("target", Trace.Int target) ];
        send t ~src:l.l_addr ~dst:(leader_addr t target) ~bytes:Types.vote_bytes
          (Fetch_req { eid })
      end;
      (* Capped exponential backoff with deterministic jitter: the base
         equals the old fixed retry period, so the first retry fires on
         the familiar schedule while a persistent loss (crashed donor,
         long partition) stops hammering the same dead timer slot. *)
      let ft = t.cfg.Config.fetch_timeout_s in
      let delay =
        Backoff.delay ~seed:t.cfg.Config.seed
          ~salt:
            ((eid.Types.gid * 7919) + (eid.Types.seq * 31) + (l.l_gid * 131071))
          ~attempt ~base:(2.0 *. ft) ~cap:(8.0 *. ft)
      in
      ignore
        (Sim.after t.sim delay (fun () ->
             if Entry_tbl.mem l.l_fetching eid then fetch_issue t l eid))

(* A satisfied fetch frees its pump slot (part of the engine's
   on-leader-content composition). *)
let on_content t (l : leader) eid =
  if Entry_tbl.mem l.l_fetching eid then begin
    Entry_tbl.remove l.l_fetching eid;
    l.l_fetch_out <- max 0 (l.l_fetch_out - 1);
    pump_fetch t l
  end

(* ------------------------------------------------------------------ *)
(* Symbolic chunk rebuild                                              *)
(* ------------------------------------------------------------------ *)

let rebuild_state (node : node) eid =
  match Entry_tbl.find_opt node.n_rebuilds eid with
  | Some r -> r
  | None ->
      let r =
        { rb_buckets = Hashtbl.create 2; rb_black = ISet.empty; rb_done = false }
      in
      Entry_tbl.replace node.n_rebuilds eid r;
      r

let on_chunk_received t (node : node) ~eid ~root_tag ~index =
  let e = entry_of t eid in
  let r = rebuild_state node eid in
  if (not r.rb_done) && not (ISet.mem index r.rb_black) then begin
    let bucket =
      match Hashtbl.find_opt r.rb_buckets root_tag with
      | Some b -> b
      | None ->
          let b = ref ISet.empty in
          Hashtbl.replace r.rb_buckets root_tag b;
          b
    in
    if not (ISet.mem index !bucket) then begin
      bucket := ISet.add index !bucket;
      let g = node.n_addr.Topology.g in
      let plan = plan_between t ~src:eid.Types.gid ~dst:g in
      if ISet.cardinal !bucket >= plan.Transfer_plan.n_data then
        if String.equal root_tag e.digest then begin
          r.rb_done <- true;
          let cost =
            float_of_int e.size *. t.cfg.Config.cost.Config.decode_per_byte_s
          in
          if Trace.enabled t.trace then begin
            let tnow = now t in
            Trace.span t.trace ~cat:"entry" ~gid:g ~node:node.n_addr.Topology.n
              ~eid:(eid.Types.gid, eid.Types.seq) ~b:tnow ~e:(tnow +. cost)
              "rebuild"
          end;
          charge_cpu t node.n_addr cost (fun () ->
              if alive t node.n_addr then content_event t node eid)
        end
        else begin
          (* Fake bucket: certificate validation fails, ids are burned
             (the DoS defence of §IV-C). *)
          r.rb_black <- ISet.union r.rb_black !bucket;
          Hashtbl.remove r.rb_buckets root_tag
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Receiver-side message handlers                                      *)
(* ------------------------------------------------------------------ *)

let handle_chunk t (node : node) ~eid ~root_tag ~index =
  on_chunk_received t node ~eid ~root_tag ~index;
  (* Exchange with the rest of the group (a Byzantine receiver forwards
     a tampered version instead). *)
  let e = entry_of t eid in
  let fwd_tag = if node.n_byz then "tampered:" ^ e.digest else root_tag in
  let bytes =
    chunk_bytes t ~src:eid.Types.gid ~dst:node.n_addr.Topology.g
      ~entry_len:e.size
  in
  broadcast_group ~bulk:true t ~src:node.n_addr ~bytes
    (Chunk_fwd { eid; root_tag = fwd_tag; index })

let handle_copy t (node : node) eid =
  if not (has_content node eid) then begin
    content_event t node eid;
    broadcast_group ~bulk:true t ~src:node.n_addr ~bytes:(copy_bytes t eid)
      (Copy_fwd { eid });
    t.strat.glob.g_on_copy t node eid
  end

let handle_fetch_req t (node : node) ~src eid =
  if has_content node eid then
    send ~bulk:true t ~src:node.n_addr ~dst:src ~bytes:(copy_bytes t eid)
      (Copy { eid })

(* ------------------------------------------------------------------ *)
(* Strategy values                                                     *)
(* ------------------------------------------------------------------ *)

let leader_oneway =
  {
    r_on_decide = (fun _ _ _ -> ());
    r_oneway = true;
    r_coding_s = (fun _ _ -> 0.0);
  }

let bijective_full =
  {
    r_on_decide = send_bijective_copies;
    r_oneway = false;
    r_coding_s = (fun _ _ -> 0.0);
  }

let encoded_bijective =
  {
    r_on_decide = send_chunks;
    r_oneway = false;
    r_coding_s =
      (fun t e ->
        float_of_int e.size
        *. (t.cfg.Config.cost.Config.encode_per_byte_s
           +. t.cfg.Config.cost.Config.decode_per_byte_s));
  }

let observe (t : Node_ctx.t) sampler =
  Array.iter
    (fun l ->
      let labels = obs_group_labels l in
      Massbft_obs.Sampler.add_probe sampler
        ~name:"massbft_replication_fetch_outstanding"
        ~help:"Full-copy fetch requests in flight from this leader" ~labels
        (fun ~now:_ ~dt:_ -> float_of_int l.l_fetch_out);
      Massbft_obs.Sampler.add_probe sampler
        ~name:"massbft_replication_fetch_queued"
        ~help:"Missing entries waiting for a fetch slot" ~labels
        (fun ~now:_ ~dt:_ -> float_of_int (Queue.length l.l_fetch_q)))
    t.leaders;
  Array.iter
    (fun group ->
      Array.iter
        (fun node ->
          Massbft_obs.Sampler.add_probe sampler
            ~name:"massbft_replication_rebuilds_in_progress"
            ~help:
              "Entries with some chunks received but not yet rebuilt on \
               this node"
            ~labels:(obs_node_labels node)
            (fun ~now:_ ~dt:_ ->
              float_of_int
                (Entry_tbl.fold
                   (fun _ r acc -> if r.rb_done then acc else acc + 1)
                   node.n_rebuilds 0)))
        group)
    t.nodes
