(* Batching stage: client load + batch timer + pipeline window. *)

val try_batch : Node_ctx.t -> Node_ctx.leader -> unit
(** Form the next batch if the timer has fired, the pipeline window has
    room, and the ordering strategy admits the next sequence number.
    Stages call this whenever one of those conditions may have just
    become true (commit, round close, execution). *)

val start : Node_ctx.t -> unit
(** Arm the per-leader batch timers and form the first batches.
    Called once from [Engine.start]. *)

val observe : Node_ctx.t -> Massbft_obs.Sampler.t -> unit
(** Register the admission-side gauges (pipeline in-flight, retry
    queue) per leader. Part of [Engine.set_obs]. *)
