module Intmath = Massbft_util.Intmath

type t = {
  n1 : int;
  n2 : int;
  n_total : int;
  n_data : int;
  n_parity : int;
  nc_send : int;
  nc_recv : int;
}

let generate ~n1 ~n2 =
  if n1 < 1 || n2 < 1 then invalid_arg "Transfer_plan.generate: empty group";
  (* Lines 1-6 of Algorithm 1. *)
  let n_total = Intmath.lcm n1 n2 in
  let nc_send = n_total / n1 in
  let nc_recv = n_total / n2 in
  let f1 = (n1 - 1) / 3 and f2 = (n2 - 1) / 3 in
  let n_parity = (nc_send * f1) + (nc_recv * f2) in
  let n_data = n_total - n_parity in
  if n_data < 1 then
    invalid_arg
      (Printf.sprintf
         "Transfer_plan.generate: no data chunks left for groups %d/%d" n1 n2);
  { n1; n2; n_total; n_data; n_parity; nc_send; nc_recv }

let check_chunk t c =
  if c < 0 || c >= t.n_total then
    invalid_arg "Transfer_plan: chunk id out of range"

(* Chunks are assigned to nodes in ascending id order: sender i ships
   chunks [nc_send*i, nc_send*(i+1)), receiver j takes
   [nc_recv*j, nc_recv*(j+1)). *)
let sender_of_chunk t c =
  check_chunk t c;
  c / t.nc_send

let receiver_of_chunk t c =
  check_chunk t c;
  c / t.nc_recv

let sends_of t ~sender =
  if sender < 0 || sender >= t.n1 then
    invalid_arg "Transfer_plan.sends_of: bad sender id";
  List.init t.nc_send (fun k ->
      let c = (t.nc_send * sender) + k in
      (c, c / t.nc_recv))

let receives_of t ~receiver =
  if receiver < 0 || receiver >= t.n2 then
    invalid_arg "Transfer_plan.receives_of: bad receiver id";
  List.init t.nc_recv (fun k ->
      let c = (t.nc_recv * receiver) + k in
      (c, c / t.nc_send))

let redundancy t = float_of_int t.n_total /. float_of_int t.n_data
