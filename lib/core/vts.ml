type t = { gid : int; seq : int; vts : int array; set : bool array }

let create ~ng ~gid ~seq =
  if ng < 1 then invalid_arg "Vts.create: need at least one group";
  if gid < 0 || gid >= ng then invalid_arg "Vts.create: bad group id";
  if seq < 1 then invalid_arg "Vts.create: sequence numbers start at 1";
  let vts = Array.make ng 0 in
  let set = Array.make ng false in
  (* Overlapped assignment: the proposer's element is its local sequence
     number, known the moment the entry exists. *)
  vts.(gid) <- seq;
  set.(gid) <- true;
  { gid; seq; vts; set }

let check_elem e j =
  if j < 0 || j >= Array.length e.vts then
    invalid_arg "Vts: element index out of range"

let set_element e j ts =
  check_elem e j;
  if e.set.(j) then begin
    if e.vts.(j) <> ts then
      invalid_arg
        (Printf.sprintf "Vts.set_element: element %d already set to %d <> %d" j
           e.vts.(j) ts)
  end
  else begin
    if ts < e.vts.(j) then
      invalid_arg
        (Printf.sprintf
           "Vts.set_element: timestamp %d below inferred lower bound %d" ts
           e.vts.(j));
    e.vts.(j) <- ts;
    e.set.(j) <- true
  end

let infer_element e j ts =
  check_elem e j;
  if (not e.set.(j)) && ts > e.vts.(j) then e.vts.(j) <- ts

let complete e = Array.for_all Fun.id e.set

(* Lines 21-30 of Algorithm 2, verbatim. *)
let prec e1 e2 =
  let ng = Array.length e1.vts in
  if Array.length e2.vts <> ng then invalid_arg "Vts.prec: group count mismatch";
  let rec loop j =
    if j >= ng then
      (* Identical, fully compared VTSs: fall back to seq then gid. *)
      if e1.seq <> e2.seq then e1.seq < e2.seq else e1.gid < e2.gid
    else if e1.set.(j) then
      if e1.vts.(j) < e2.vts.(j) then
        (* e2.vts[j] can only grow; the relation is settled. *)
        true
      else if e2.set.(j) && e1.vts.(j) = e2.vts.(j) then loop (j + 1)
      else
        (* Either e2's element is greater, or it is inferred and could
           still exceed e1's: not provably before. *)
        false
    else
      (* e1's element is only a lower bound: it may grow past e2's. *)
      false
  in
  loop 0

let compare_complete e1 e2 =
  if not (complete e1 && complete e2) then
    invalid_arg "Vts.compare_complete: incomplete VTS";
  let ng = Array.length e1.vts in
  let rec loop j =
    if j >= ng then
      let c = compare e1.seq e2.seq in
      if c <> 0 then c else compare e1.gid e2.gid
    else
      let c = compare e1.vts.(j) e2.vts.(j) in
      if c <> 0 then c else loop (j + 1)
  in
  loop 0

let pp fmt e =
  Format.fprintf fmt "e(%d,%d)<" e.gid e.seq;
  Array.iteri
    (fun j v ->
      Format.fprintf fmt "%s%d%s"
        (if j > 0 then "," else "")
        v
        (if e.set.(j) then "" else "?"))
    e.vts;
  Format.fprintf fmt ">"
