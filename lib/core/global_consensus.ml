(* Global-consensus stage: the Raft adapter with content-gated acks
   (Lemma V.1), plus heartbeats/elections and log unwedging. The VTS
   stamping lane it drives lives in Ordering; the skip-prepare accept
   rounds it gates on live in Local_consensus. Three strategies
   (Table II):

   - [per_group_raft]: one Raft instance per group, led by that group's
     leader; followers of an instance are the other groups' leaders
     (MassBFT / Baseline / ISS / BR / EBR).
   - [single_raft]: Steward — one global Raft at group 0; remote
     entries are forwarded to G0 as full copies and proposed there.
   - [direct_broadcast]: GeoBFT — no global consensus; content arrival
     at every group is the commitment event, credited back to the
     proposer with Recv_notes. *)

open Node_ctx

let raft_msg_bytes t rmsg =
  match rmsg with
  | Raft.Append { entry = Entry_meta _; _ } ->
      Types.raft_meta_bytes ~n:(active_size t 0)
  | Raft.Append { entry = Ts _; _ } | Raft.Append { entry = Noop; _ }
  | Raft.Replace _ ->
      Types.vote_bytes
  | Raft.Append_ack _ | Raft.Commit_note _ | Raft.Request_vote _
  | Raft.Vote _ | Raft.Probe _ | Raft.Probe_reply _ | Raft.Timeout_now _ ->
      Types.vote_bytes

(* ------------------------------------------------------------------ *)
(* Raft callbacks                                                      *)
(* ------------------------------------------------------------------ *)

let on_raft_deliver t (l : leader) _inst payload =
  match payload with
  | Noop -> ()
  | Entry_meta { eid } ->
      (* Overlapped assignment (Fig. 7b): stamp on the propose message.
         The serial variant (Fig. 7a) waits for the entry's own commit
         (handled in on_raft_commit), costing one extra RTT. *)
      if t.cfg.Config.overlapped_vts then Ordering.assign_ts t l eid
  | Ts _ -> ()

(* Content-gated acks: a follower acknowledges an Entry_meta only after
   holding the entry's content and passing a local accept round, and a
   Ts only for an entry it holds (Lemma V.1). *)
let ack_guard t (l : leader) inst ~index payload release =
  match payload with
  | Noop -> release ()
  | Entry_meta { eid } ->
      if not (has_content (node_of t l.l_addr) eid) then
        ignore
          (Sim.after t.sim t.cfg.Config.fetch_timeout_s (fun () ->
               if
                 alive t l.l_addr
                 && not (has_content (node_of t l.l_addr) eid)
               then Replication.want_fetch t l eid));
      when_content t l eid (fun () ->
          (* Verify the sender group's certificate, then reach local
             consensus on the accept decision (skip-prepare PBFT). *)
          let cert_cost =
            float_of_int (Intmath.pbft_quorum (active_size t eid.Types.gid))
            *. t.cfg.Config.cost.Config.sig_verify_s
          in
          charge_cpu t l.l_addr cert_cost (fun () ->
              if alive t l.l_addr then
                Local_consensus.accept_round t l
                  ~tag:(Printf.sprintf "acc|%d|%d" inst index)
                  (fun () ->
                    release ();
                    (* Slow-receiver support (§V-C): advertise the
                       accept to every group directly. Only the
                       VTS-ordered system (MassBFT) runs this lane —
                       round-based systems synchronize through their
                       rounds instead. *)
                    if t.strat.ord.o_vts then
                      for j = 0 to t.ng - 1 do
                        if j <> l.l_gid && member_now t j then
                          send t ~src:l.l_addr ~dst:(leader_addr t j)
                            ~bytes:Types.vote_bytes (Accept_note { eid })
                      done)))
  | Ts { eid; _ } ->
      if not (has_content (node_of t l.l_addr) eid) then
        ignore
          (Sim.after t.sim t.cfg.Config.fetch_timeout_s (fun () ->
               if
                 alive t l.l_addr
                 && not (has_content (node_of t l.l_addr) eid)
               then Replication.want_fetch t l eid));
      when_content t l eid release

let on_raft_commit t (l : leader) inst payload =
  match payload with
  | Noop -> ()
  | Entry_meta { eid } ->
      let e = entry_of t eid in
      l.l_clk_of.(inst) <- eid.Types.seq;
      Entry_tbl.replace l.l_committed_unexec eid ();
      if not t.cfg.Config.overlapped_vts then Ordering.assign_ts t l eid;
      t.strat.ord.o_on_commit t l eid;
      if eid.Types.gid = l.l_gid then begin
        l.l_clk <- max l.l_clk eid.Types.seq;
        (* A recovered leader may re-propose an in-flight entry that in
           fact committed twice; account it once. *)
        if e.committed_at = 0.0 then begin
          e.committed_at <- now t;
          trace_entry t e.eid "committed" ~node:0;
          l.l_in_flight <- l.l_in_flight - 1;
          Batcher.try_batch t l
        end
      end;
      Ordering.stamp_led_instances l eid
  | Ts { eid; ts } -> Ordering.on_ts_commit l inst ~eid ~ts

let on_raft_role t (l : leader) inst role =
  if role = Raft.Leader then begin
    if inst = l.l_gid then
      (* Transfer-back after recovery: in-flight entries whose proposals
         died with the old term are re-proposed in sequence order. *)
      for seq = 1 to l.l_next_seq - 1 do
        let eid = { Types.gid = l.l_gid; seq } in
        match with_registry t (fun () -> Entry_tbl.find_opt t.entries eid) with
        | Some e when e.committed_at = 0.0 ->
            ignore (Raft.propose l.l_rafts.(inst) (Entry_meta { eid }))
        | _ -> ()
      done;
    Ordering.stamp_committed_unexec l inst
  end

(* A taken-over instance can inherit the dead leader's in-flight
   entries whose chunk dissemination never completed: no live group
   holds their content, so the content-gated accepts (Lemma V.1) can
   never arrive and the whole log wedges behind them. Such entries can
   never have committed anywhere (commitment needs a majority of
   content-holding groups), so after fetching from every group fails
   they are safely replaced with no-ops. *)
let unwedge_check t (l : leader) inst raft =
  let idx = Raft.commit_index raft + 1 in
  if idx <= Raft.last_index raft then begin
    let blocked_eid =
      match Raft.entry_at raft idx with
      | Some (Entry_meta { eid }) | Some (Ts { eid; _ }) ->
          if has_content (node_of t l.l_addr) eid then None else Some eid
      | Some Noop | None -> None
    in
    match blocked_eid with
    | None -> ()
    | Some eid ->
        let key = Printf.sprintf "%d|%d" inst idx in
        let ticks =
          match Hashtbl.find_opt l.l_stuck key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.replace l.l_stuck key r;
              r
        in
        incr ticks;
        if !ticks = 1 then Replication.want_fetch t l eid
        else if !ticks >= 4 then begin
          Hashtbl.remove l.l_stuck key;
          trace_entry t eid "unwedge_noop" ~gid:l.l_gid ~node:0
            ~args:[ ("inst", Trace.Int inst); ("index", Trace.Int idx) ];
          Raft.replace_uncommitted raft ~index:idx Noop
        end
  end

(* ------------------------------------------------------------------ *)
(* Steward's single-log proposal path                                  *)
(* ------------------------------------------------------------------ *)

let steward_propose t (l : leader) e =
  if not (Entry_tbl.mem l.l_steward_proposed e.eid) then begin
    Entry_tbl.replace l.l_steward_proposed e.eid ();
    Replication.send_oneway_copies t l e ~skip:[ e.eid.Types.gid ];
    if Raft.role l.l_rafts.(0) = Raft.Leader then
      ignore (Raft.propose l.l_rafts.(0) (Entry_meta { eid = e.eid }))
  end

(* ------------------------------------------------------------------ *)
(* Message handlers                                                    *)
(* ------------------------------------------------------------------ *)

let handle_raft_m t ~(src : Topology.addr) ~(dst : Topology.addr) ~inst rmsg =
  (* A leader outside the current membership (a joining group still in
     state transfer, a removed group draining away) must not feed its
     Raft logs: commits its instances processed before the cutover clone
     would be consumed exactly once and then wiped with the cloned
     state, silently losing them. After the epoch flip the anti-entropy
     probes backfill everything, gated by [l_skip_commits_below]. *)
  if
    is_acting_leader t dst
    && ((not t.reconfig_on) || member_now t dst.Topology.g)
  then begin
    let l = t.leaders.(dst.Topology.g) in
    if inst < Array.length l.l_last_heard then
      l.l_last_heard.(inst) <- now t;
    if inst < Array.length l.l_rafts then
      Raft.handle l.l_rafts.(inst) ~from:src.Topology.g rmsg
  end

(* Recv_notes are only ever emitted by the direct-broadcast strategy,
   so no configuration guard is needed here. *)
let handle_recv_note t ~(dst : Topology.addr) eid =
  if is_acting_leader t dst then begin
    let l = t.leaders.(dst.Topology.g) in
    if eid.Types.gid = l.l_gid then begin
      let notes =
        match Entry_tbl.find_opt l.l_recv_notes eid with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Entry_tbl.replace l.l_recv_notes eid r;
            r
      in
      incr notes;
      (* Exactly-once on equality: duplicated deliveries (an injectable
         fault) push the count past the threshold but can never make it
         *equal* again, so the pipeline slot is released once. The
         counter is kept (not removed) for the same reason. *)
      if !notes = t.ng - 1 then begin
        let e = entry_of t eid in
        if e.committed_at = 0.0 then begin
          e.committed_at <- now t;
          trace_entry t eid "committed" ~node:0
        end;
        (* The floor only matters after a leader migration reset the
           window (a straggler round completing against the new leader
           must not inflate it); fault-free runs never hit it. *)
        if l.l_in_flight > 0 then l.l_in_flight <- l.l_in_flight - 1;
        Batcher.try_batch t l
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Strategy values                                                     *)
(* ------------------------------------------------------------------ *)

let per_group_raft =
  {
    g_instances = (fun ng -> ng);
    g_start =
      (fun t l e ->
        if t.strat.repl.r_oneway then
          Replication.send_oneway_copies t l e ~skip:[];
        if Raft.role l.l_rafts.(l.l_gid) = Raft.Leader then
          ignore (Raft.propose l.l_rafts.(l.l_gid) (Entry_meta { eid = e.eid })));
    g_on_content = (fun _ _ _ -> ());
    g_on_copy = (fun _ _ _ -> ());
  }

let direct_broadcast =
  {
    g_instances = (fun _ -> 0);
    g_start =
      (fun t l e ->
        Replication.send_oneway_copies t l e ~skip:[];
        (* Under a reconfiguration some groups are dark: they receive no
           copy, yet the commit threshold stays [ng - 1] notes. Credit
           the missing notes up front so the exactly-once equality in
           [handle_recv_note] still fires — the counter walks through
           every value by +1 increments, so pre-crediting never skips
           the threshold. Reconfig-free runs never enter this branch. *)
        (if t.reconfig_on then begin
           let missing = ref 0 in
           for j = 0 to t.ng - 1 do
             if j <> l.l_gid && not (member_now t j) then incr missing
           done;
           if !missing > 0 then begin
             let notes =
               match Entry_tbl.find_opt l.l_recv_notes e.eid with
               | Some r -> r
               | None ->
                   let r = ref 0 in
                   Entry_tbl.replace l.l_recv_notes e.eid r;
                   r
             in
             notes := !notes + !missing
           end
         end);
        (* No global consensus: the entry is ready for ordering here. *)
        Ordering.mark_round_ready t l e.eid;
        if e.committed_at = 0.0 then begin
          e.committed_at <- now t;
          trace_entry t e.eid "committed" ~node:0
        end);
    g_on_content =
      (fun t l eid ->
        (* Content arrival is the commitment event: credit the proposer
           and mark the entry's round. *)
        if eid.Types.gid <> l.l_gid then
          send t ~src:l.l_addr
            ~dst:(leader_addr t eid.Types.gid)
            ~bytes:Types.vote_bytes (Recv_note { eid });
        Ordering.mark_round_ready t l eid);
    g_on_copy = (fun _ _ _ -> ());
  }

let single_raft =
  {
    g_instances = (fun _ -> 1);
    g_start =
      (fun t l e ->
        if l.l_gid = 0 then steward_propose t l e
        else
          (* Forward the certified entry to the global leader group. *)
          send ~bulk:true t ~src:l.l_addr ~dst:(leader_addr t 0)
            ~bytes:(copy_bytes t e.eid) (Copy { eid = e.eid }));
    g_on_content = (fun _ _ _ -> ());
    g_on_copy =
      (fun t node eid ->
        if
          is_acting_leader t node.n_addr
          && node.n_addr.Topology.g = 0
          && eid.Types.gid <> 0
        then steward_propose t t.leaders.(0) (entry_of t eid));
  }

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

(* Create the per-leader Raft instances (and, for VTS ordering, the
   Orderer). Called once from [Engine.create]. *)
let install t ~n_inst =
  Array.iter
    (fun l ->
      l.l_rafts <-
        Array.init n_inst (fun inst ->
            Raft.create ~initial_leader:inst ~ng:t.ng ~me:l.l_gid
              {
                Raft.send =
                  (fun dst_g rmsg ->
                    send t ~src:l.l_addr ~dst:(leader_addr t dst_g)
                      ~bytes:(raft_msg_bytes t rmsg)
                      (Raft_m { inst; rmsg }));
                on_deliver = (fun ~index:_ p -> on_raft_deliver t l inst p);
                on_commit =
                  (fun ~index p ->
                    (* Indices at or below the skip mark are history this
                       leader already received via reconfiguration state
                       transfer: the raft backfill replays them, but they
                       must not re-execute. *)
                    if index > l.l_skip_commits_below.(inst) then
                      on_raft_commit t l inst p);
                on_role = (fun role ~term:_ -> on_raft_role t l inst role);
                ack_guard = (fun ~index p k -> ack_guard t l inst ~index p k);
              });
      if t.strat.ord.o_vts then
        l.l_orderer <-
          Some
            (Orderer.create ~ng:t.ng ~on_execute:(fun eid ->
                 Execution.enqueue t l eid)))
    t.leaders

(* Heartbeats + crash detection (only meaningful with global Raft).
   Called once from [Engine.start]. *)
let start_heartbeats t =
  if Array.length t.leaders.(0).l_rafts > 0 then begin
    let period = t.cfg.Config.election_timeout_s /. 2.0 in
    Array.iter
      (fun l ->
        (* Arm each leader's heartbeat chain on its group's shard so the
           parallel driver runs it on the owning domain; the recursive
           re-arm inside the event stays on that shard automatically. *)
        let lsim = sim_of t l.l_gid in
        Array.iteri (fun i _ -> l.l_last_heard.(i) <- 0.0) l.l_last_heard;
        let rec tick () =
          ignore
            (Sim.after lsim period (fun () ->
                 (* A dark leader (provisioned but not yet a member, or
                    already recovered for its catch-up transfer) neither
                    probes nor campaigns: a stale-log election would only
                    inflate terms and depose working leaders. Its
                    [l_last_heard] is refreshed at the cutover clone. *)
                 if
                   alive t l.l_addr
                   && ((not t.reconfig_on) || member_now t l.l_gid)
                 then begin
                   Array.iteri
                     (fun inst raft ->
                       if Raft.role raft = Raft.Leader then begin
                         (* Anti-entropy probe: heartbeat + catch-up for
                            lagging or recovered followers. *)
                         Raft.heartbeat raft;
                         unwedge_check t l inst raft
                       end
                       else begin
                         let stagger =
                           float_of_int ((l.l_gid - inst + t.ng) mod t.ng)
                         in
                         let deadline =
                           t.cfg.Config.election_timeout_s
                           *. (1.0 +. (0.5 *. stagger))
                         in
                         if now t -. l.l_last_heard.(inst) > deadline then begin
                           l.l_last_heard.(inst) <- now t;
                           Raft.start_election raft
                         end
                       end)
                     l.l_rafts
                 end;
                 tick ()))
        in
        tick ())
      t.leaders
  end

let observe (t : Node_ctx.t) sampler =
  Array.iter
    (fun l ->
      Array.iteri
        (fun inst r ->
          let labels =
            obs_group_labels l @ [ ("inst", string_of_int inst) ]
          in
          Massbft_obs.Sampler.add_probe sampler ~name:"massbft_raft_is_leader"
            ~help:"1 when this group's leader leads the Raft instance"
            ~labels
            (fun ~now:_ ~dt:_ ->
              match Raft.role r with Raft.Leader -> 1.0 | _ -> 0.0);
          Massbft_obs.Sampler.add_probe sampler
            ~name:"massbft_raft_commit_index"
            ~help:"Commit index of the instance as seen by this leader"
            ~labels
            (fun ~now:_ ~dt:_ -> float_of_int (Raft.commit_index r)))
        l.l_rafts)
    t.leaders
