module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Cpu = Massbft_sim.Cpu
module Pbft = Massbft_consensus.Pbft
module Raft = Massbft_consensus.Raft
module W = Massbft_workload.Workload
module Txn = Massbft_workload.Txn
module Kvstore = Massbft_exec.Kvstore
module Aria = Massbft_exec.Aria
module Ledger = Massbft_exec.Ledger
module Sha256 = Massbft_crypto.Sha256
module Stats = Massbft_util.Stats
module Intmath = Massbft_util.Intmath
module Trace = Massbft_trace.Trace
module Entry_tbl = Types.Entry_tbl
module ISet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)
(* ------------------------------------------------------------------ *)

(* Payloads of the global Raft instances: entry metadata (digest +
   certificate; the content travels by the replication strategy) and
   vector-timestamp records. *)
type rpayload =
  | Entry_meta of { eid : Types.entry_id }
  | Ts of { eid : Types.entry_id; ts : int }
  | Noop
      (* replaces an unrecoverable dead-group entry in a taken-over log *)

type msg =
  | Local of Pbft.msg  (* intra-group batch consensus *)
  | Chunk of { eid : Types.entry_id; root_tag : string; index : int }
  | Chunk_fwd of { eid : Types.entry_id; root_tag : string; index : int }
  | Copy of { eid : Types.entry_id }  (* full entry copy *)
  | Copy_fwd of { eid : Types.entry_id }
  | Raft_m of { inst : int; rmsg : rpayload Raft.msg }
  | Accept_req of { tag : string }
  | Accept_vote of { tag : string }
  | Accept_note of { eid : Types.entry_id }
  | Recv_note of { eid : Types.entry_id }  (* GeoBFT delivery credit *)
  | Fetch_req of { eid : Types.entry_id }

(* ------------------------------------------------------------------ *)
(* Entry registry                                                      *)
(* ------------------------------------------------------------------ *)

type entry = {
  eid : Types.entry_id;
  digest : string;
  size : int;  (* wire bytes of the batch *)
  mutable txns : Txn.t list;
  mutable fb_txns : Txn.t list;  (* Aria fallback lane: retried conflicts *)
  txn_count : int;
  created_at : float;
  mutable decided_at : float;
  mutable committed_at : float;
  mutable ordered_at : float;
  mutable outcome : Aria.outcome option;  (* memoized execution *)
  mutable exec_count : int;  (* leaders that executed it, for pruning *)
}

(* Symbolic receiver-side rebuild state: the bucket-classification logic
   of Rebuild, over virtual chunk identities (root tags instead of real
   Merkle roots). Byte-level behaviour is covered by Rebuild's tests;
   sizes here match Chunker.chunk_wire_size exactly. *)
type rsym = {
  rb_buckets : (string, ISet.t ref) Hashtbl.t;
  mutable rb_black : ISet.t;
  mutable rb_done : bool;
}

type node = {
  n_addr : Topology.addr;
  mutable n_pbft : Pbft.t option;
  n_content : unit Entry_tbl.t;
  n_rebuilds : rsym Entry_tbl.t;
  mutable n_byz : bool;
}

type leader = {
  l_gid : int;
  l_addr : Topology.addr;
  mutable l_rafts : rpayload Raft.t array;  (* per instance; may be empty *)
  mutable l_orderer : Orderer.t option;
  l_store : Kvstore.t;
  l_ledger : Ledger.t;
  mutable l_clk : int;  (* own committed-entry count *)
  l_clk_of : int array;  (* last committed seq per instance *)
  mutable l_retry : Txn.t list;
  l_gen : W.t;
  mutable l_in_flight : int;
  mutable l_next_seq : int;
  mutable l_batch_pending : bool;
  l_exec_q : Types.entry_id Queue.t;
  mutable l_exec_busy : bool;
  mutable l_executed_rev : Types.entry_id list;
  mutable l_executed_count : int;
  l_accept_pending : (string, unit -> unit) Hashtbl.t;
  l_accept_votes : (string, int ref) Hashtbl.t;
  l_accept_notes : int ref Entry_tbl.t;
  l_ts_mark : (string, unit) Hashtbl.t;  (* Ts proposed, key inst|gid|seq *)
  l_ts_seen : (string, unit) Hashtbl.t;  (* Ts committed (first wins) *)
  l_last_heard : float array;  (* per instance *)
  l_waiting_content : (unit -> unit) list ref Entry_tbl.t;
  l_committed_unexec : unit Entry_tbl.t;
  l_round_ready : unit Entry_tbl.t;
  mutable l_next_round : int;
  l_recv_notes : int ref Entry_tbl.t;
  l_steward_proposed : unit Entry_tbl.t;
  l_fetching : int ref Entry_tbl.t;  (* wanted content, with attempt count *)
  l_fetch_q : Types.entry_id Queue.t;
  mutable l_fetch_out : int;  (* outstanding fetch requests *)
  l_stuck : (string, int ref) Hashtbl.t;
      (* ticks a led instance's head-of-line entry has been unackable *)
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  cfg : Config.t;
  ng : int;
  repl : Config.replication;
  glob : Config.global_consensus;
  ord : Config.ordering;
  nodes : node array array;
  leaders : leader array;
  entries : entry Entry_tbl.t;
  by_digest : (string, entry) Hashtbl.t;
  plans : Transfer_plan.t option array array;  (* [src_group][dst_group] *)
  metrics : Metrics.t;
  shared_store : Kvstore.t;
  mutable started : bool;
  mutable trace : Trace.t;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let now t = Sim.now t.sim
let node_of t (a : Topology.addr) = t.nodes.(a.Topology.g).(a.Topology.n)
let leader_addr gid = { Topology.g = gid; n = 0 }
let is_leader_node (a : Topology.addr) = a.Topology.n = 0
let alive t (a : Topology.addr) = Topology.alive t.topo a
let cpu_of t (a : Topology.addr) = Topology.cpu t.topo a

let entry_of t eid =
  match Entry_tbl.find_opt t.entries eid with
  | Some e -> e
  | None -> invalid_arg ("Engine: unknown entry " ^ Types.entry_id_to_string eid)

let ts_key inst (eid : Types.entry_id) =
  Printf.sprintf "%d|%d|%d" inst eid.Types.gid eid.Types.seq

let plan_between t ~src ~dst =
  match t.plans.(src).(dst) with
  | Some p -> p
  | None ->
      let p =
        Transfer_plan.generate
          ~n1:(Topology.group_size t.topo src)
          ~n2:(Topology.group_size t.topo dst)
      in
      t.plans.(src).(dst) <- Some p;
      p

let chunk_bytes t ~src ~dst ~entry_len =
  Chunker.chunk_wire_size ~plan:(plan_between t ~src ~dst) ~entry_len

let group_f t gid = Intmath.pbft_f (Topology.group_size t.topo gid)
let fg t = Intmath.raft_f t.ng

let local_msg_bytes t m =
  match m with
  | Pbft.Pre_prepare { digest; _ } -> (
      match Hashtbl.find_opt t.by_digest digest with
      | Some e -> e.size + Types.header_bytes + Types.signature_bytes
      | None -> Types.vote_bytes)
  | Pbft.Prepare _ | Pbft.Commit _ -> Types.vote_bytes
  | Pbft.View_change _ | Pbft.New_view _ -> 4 * Types.vote_bytes

let raft_msg_bytes t rmsg =
  match rmsg with
  | Raft.Append { entry = Entry_meta _; _ } ->
      Types.raft_meta_bytes ~n:(Topology.group_size t.topo 0)
  | Raft.Append { entry = Ts _; _ } | Raft.Append { entry = Noop; _ }
  | Raft.Replace _ ->
      Types.vote_bytes
  | Raft.Append_ack _ | Raft.Commit_note _ | Raft.Request_vote _
  | Raft.Vote _ | Raft.Probe _ | Raft.Probe_reply _ | Raft.Timeout_now _ ->
      Types.vote_bytes

let copy_bytes t eid =
  let e = entry_of t eid in
  e.size + Types.certificate_bytes ~n:(Topology.group_size t.topo eid.Types.gid)

(* Forward declaration of the dispatcher to untangle the send sites. *)
let handler : (t -> src:Topology.addr -> dst:Topology.addr -> msg -> unit) ref =
  ref (fun _ ~src:_ ~dst:_ _ -> ())

let send ?(bulk = false) t ~src ~dst ~bytes m =
  Topology.send ~bulk t.topo ~src ~dst ~bytes (fun () -> !handler t ~src ~dst m)

let broadcast_group ?(bulk = false) t ~src ~bytes m =
  List.iter
    (fun dst ->
      if not (Topology.addr_equal src dst) then send ~bulk t ~src ~dst ~bytes m)
    (Topology.group_nodes t.topo src.Topology.g)

let charge_cpu t (a : Topology.addr) seconds k = Cpu.submit (cpu_of t a) ~seconds k

(* Batch signature verification and Aria execution are embarrassingly
   parallel: spread the work over every core, continuing when the last
   slice finishes. *)
let charge_cpu_parallel t (a : Topology.addr) seconds k =
  let cores = Topology.cores t.topo in
  if seconds <= 0.0 then k ()
  else begin
    let slice = seconds /. float_of_int cores in
    let remaining = ref cores in
    for _ = 1 to cores do
      Cpu.submit (cpu_of t a) ~seconds:slice (fun () ->
          decr remaining;
          if !remaining = 0 then k ())
    done
  end

let measuring t created_at = created_at >= t.metrics.Metrics.measure_from

let trace_entry t ?(gid = -1) ?(node = -1) ?args (eid : Types.entry_id) name =
  if Trace.enabled t.trace then
    Trace.instant t.trace ~cat:"entry"
      ~gid:(if gid >= 0 then gid else eid.Types.gid)
      ~node ?args
      ~eid:(eid.Types.gid, eid.Types.seq)
      name

(* The entry's lifecycle as (summary, name, begin, duration) spans.
   Both the Metrics phase summaries (Figure 11) and the exported trace
   derive from this one list, so figure output and a trace of the same
   run always agree. *)
let phase_spans t e ~tnow =
  let m = t.metrics in
  let batch_wait = t.cfg.batch_timeout_s /. 2.0 in
  let coding =
    match t.repl with
    | Config.Encoded_bijective ->
        float_of_int e.size
        *. (t.cfg.cost.Config.encode_per_byte_s
           +. t.cfg.cost.Config.decode_per_byte_s)
    | _ -> 0.0
  in
  let always =
    [
      (m.Metrics.phase_batch_s, "batch", e.created_at -. batch_wait, batch_wait);
      ( m.Metrics.phase_local_s,
        "local",
        e.created_at,
        e.decided_at -. e.created_at );
      (m.Metrics.phase_coding_s, "coding", e.decided_at, coding);
    ]
  in
  let tail =
    if e.committed_at > 0.0 then
      ( m.Metrics.phase_global_s,
        "global",
        e.decided_at,
        e.committed_at -. e.decided_at )
      ::
      (if e.ordered_at > 0.0 then
         [
           ( m.Metrics.phase_order_s,
             "order",
             e.committed_at,
             e.ordered_at -. e.committed_at );
           (m.Metrics.phase_exec_s, "exec", e.ordered_at, tnow -. e.ordered_at);
         ]
       else [])
    else []
  in
  always @ tail

(* ------------------------------------------------------------------ *)
(* Content tracking                                                    *)
(* ------------------------------------------------------------------ *)

let has_content node eid = Entry_tbl.mem node.n_content eid

let rec content_event t (node : node) eid =
  if not (has_content node eid) then begin
    Entry_tbl.replace node.n_content eid ();
    if is_leader_node node.n_addr then begin
      let l = t.leaders.(node.n_addr.Topology.g) in
      (* A satisfied fetch frees its pump slot. *)
      if Entry_tbl.mem l.l_fetching eid then begin
        Entry_tbl.remove l.l_fetching eid;
        l.l_fetch_out <- max 0 (l.l_fetch_out - 1);
        pump_fetch t l
      end;
      (* Release any ack guards waiting for this entry (Lemma V.1). *)
      (match Entry_tbl.find_opt l.l_waiting_content eid with
      | Some cbs ->
          let run = !cbs in
          Entry_tbl.remove l.l_waiting_content eid;
          List.iter (fun k -> k ()) run
      | None -> ());
      (* GeoBFT: content arrival is the commitment event. *)
      if t.glob = Config.Direct_broadcast then begin
        if eid.Types.gid <> l.l_gid then
          send t ~src:l.l_addr
            ~dst:(leader_addr eid.Types.gid)
            ~bytes:Types.vote_bytes (Recv_note { eid });
        mark_round_ready t l eid
      end;
      pump_exec t l
    end
  end

and when_content t (l : leader) eid k =
  let node = node_of t l.l_addr in
  if has_content node eid then k ()
  else
    let cbs =
      match Entry_tbl.find_opt l.l_waiting_content eid with
      | Some r -> r
      | None ->
          let r = ref [] in
          Entry_tbl.replace l.l_waiting_content eid r;
          r
    in
    cbs := k :: !cbs

(* ------------------------------------------------------------------ *)
(* Round-based ordering (Baseline / GeoBFT / BR / EBR / ISS)           *)
(* ------------------------------------------------------------------ *)

and mark_round_ready t (l : leader) eid =
  if not (Entry_tbl.mem l.l_round_ready eid) then begin
    Entry_tbl.replace l.l_round_ready eid ();
    try_rounds t l
  end

and try_rounds t (l : leader) =
  let round_complete r =
    let ok = ref true in
    for g = 0 to t.ng - 1 do
      if not (Entry_tbl.mem l.l_round_ready { Types.gid = g; seq = r }) then
        ok := false
    done;
    !ok
  in
  while round_complete l.l_next_round do
    let r = l.l_next_round in
    l.l_next_round <- r + 1;
    for g = 0 to t.ng - 1 do
      enqueue_exec t l { Types.gid = g; seq = r }
    done;
    (* ISS: closing a round may unblock the next epoch's proposals. *)
    try_batch t t.leaders.(l.l_gid)
  done

(* ------------------------------------------------------------------ *)
(* Execution pipeline                                                  *)
(* ------------------------------------------------------------------ *)

and enqueue_exec t (l : leader) eid =
  (match Entry_tbl.find_opt t.entries eid with
  | Some e when eid.Types.gid = l.l_gid && e.ordered_at = 0.0 ->
      e.ordered_at <- now t;
      trace_entry t eid "ordered" ~node:0
  | _ -> ());
  Queue.push eid l.l_exec_q;
  pump_exec t l

and pump_exec t (l : leader) =
  if (not l.l_exec_busy) && not (Queue.is_empty l.l_exec_q) then begin
    let eid = Queue.peek l.l_exec_q in
    let node = node_of t l.l_addr in
    if has_content node eid then begin
      ignore (Queue.pop l.l_exec_q);
      l.l_exec_busy <- true;
      let e = entry_of t eid in
      let cost = float_of_int e.txn_count *. t.cfg.cost.Config.txn_exec_s in
      (* Every node of the group replays execution; followers' CPUs are
         charged fire-and-forget. *)
      List.iter
        (fun a ->
          if (not (is_leader_node a)) && alive t a then
            charge_cpu_parallel t a cost (fun () -> ()))
        (Topology.group_nodes t.topo l.l_gid);
      charge_cpu_parallel t l.l_addr cost (fun () ->
          do_execute t l e;
          l.l_exec_busy <- false;
          pump_exec t l)
    end
    else
      (* The head can only be repaired by a fetch after a crash gap;
         give the chunks one timeout to arrive on their own. *)
      ignore
        (Sim.after t.sim t.cfg.fetch_timeout_s (fun () ->
             if
               alive t l.l_addr
               && not (has_content (node_of t l.l_addr) eid)
             then want_fetch t l eid))
  end

(* Content repair: a pipelined fetch pump. Entries whose chunks were
   lost (a crash gap) are pulled as full copies, up to 8 in flight so
   a recovered group catches up at link speed; each issued request is
   retried against rotating groups while the content is missing, and
   the pump refills a slot the moment content lands. Missed content
   under normal operation never reaches the pump: the first fetch
   timer fires only after [fetch_timeout_s]. *)
and want_fetch t (l : leader) eid =
  if
    (not (has_content (node_of t l.l_addr) eid))
    && not (Entry_tbl.mem l.l_fetching eid)
  then begin
    Entry_tbl.replace l.l_fetching eid (ref 0);
    Queue.push eid l.l_fetch_q
  end;
  pump_fetch t l

and pump_fetch t (l : leader) =
  while l.l_fetch_out < 8 && not (Queue.is_empty l.l_fetch_q) do
    let eid = Queue.pop l.l_fetch_q in
    if Entry_tbl.mem l.l_fetching eid then
      if has_content (node_of t l.l_addr) eid then
        Entry_tbl.remove l.l_fetching eid
      else begin
        l.l_fetch_out <- l.l_fetch_out + 1;
        fetch_issue t l eid
      end
  done

and fetch_issue t (l : leader) eid =
  match Entry_tbl.find_opt l.l_fetching eid with
  | None -> () (* satisfied in the meantime; slot freed by content_event *)
  | Some attempts ->
      (* Ask the proposer first, then rotate through the groups. *)
      let target = (eid.Types.gid + !attempts) mod t.ng in
      incr attempts;
      if target <> l.l_gid then begin
        trace_entry t eid "fetch_req" ~gid:l.l_gid ~node:0
          ~args:[ ("target", Trace.Int target) ];
        send t ~src:l.l_addr ~dst:(leader_addr target) ~bytes:Types.vote_bytes
          (Fetch_req { eid })
      end;
      ignore
        (Sim.after t.sim (2.0 *. t.cfg.fetch_timeout_s) (fun () ->
             if Entry_tbl.mem l.l_fetching eid then fetch_issue t l eid))

and do_execute t (l : leader) e =
  let outcome =
    match e.outcome with
    | Some o when not t.cfg.independent_stores -> o
    | _ ->
        let o =
          Aria.execute_batch ~reorder:t.cfg.reorder ~fallback:e.fb_txns
            l.l_store e.txns
        in
        if not t.cfg.independent_stores then e.outcome <- Some o;
        o
  in
  ignore
    (Ledger.append l.l_ledger ~gid:e.eid.Types.gid ~seq:e.eid.Types.seq
       ~txn_count:e.txn_count ~payload_digest:e.digest);
  l.l_executed_rev <- e.eid :: l.l_executed_rev;
  l.l_executed_count <- l.l_executed_count + 1;
  Entry_tbl.remove l.l_committed_unexec e.eid;
  (* Once every leader has executed the entry its content (transaction
     closures, memoized outcome) is dead weight; keep the metadata. *)
  e.exec_count <- e.exec_count + 1;
  if e.exec_count >= t.ng && not t.cfg.independent_stores then begin
    e.txns <- [];
    e.fb_txns <- [];
    e.outcome <- None
  end;
  if e.eid.Types.gid = l.l_gid then begin
    trace_entry t e.eid "executed" ~node:0
      ~args:[ ("committed", Trace.Int (List.length outcome.Aria.committed)) ];
    (* The proposer re-queues its conflict-aborted transactions. *)
    l.l_retry <- l.l_retry @ outcome.Aria.conflicted;
    if measuring t e.created_at then record_metrics t e outcome
  end;
  try_batch t l

and record_metrics t e outcome =
  let m = t.metrics in
  let tnow = now t in
  let n_committed = List.length outcome.Aria.committed in
  Stats.Counter.add m.Metrics.committed_txns n_committed;
  (let per_group =
     match Hashtbl.find_opt m.Metrics.committed_per_group e.eid.Types.gid with
     | Some c -> c
     | None ->
         let c = Stats.Counter.create () in
         Hashtbl.replace m.Metrics.committed_per_group e.eid.Types.gid c;
         c
   in
   Stats.Counter.add per_group n_committed);
  Stats.Counter.add m.Metrics.conflicted_txns (List.length outcome.Aria.conflicted);
  Stats.Counter.add m.Metrics.logic_aborted_txns
    (List.length outcome.Aria.logic_aborted);
  Stats.Counter.add m.Metrics.entries_executed 1;
  Stats.Timeseries.add m.Metrics.txn_rate ~time:tnow (float_of_int n_committed);
  let batch_wait = t.cfg.batch_timeout_s /. 2.0 in
  let latency = tnow -. e.created_at +. batch_wait in
  Stats.Summary.add m.Metrics.latency_s latency;
  Stats.Timeseries.add m.Metrics.latency_ts ~time:tnow latency;
  (* Phase breakdown: the span list is the single source; each span's
     duration feeds its summary and, when tracing, the span itself is
     exported with the entry's correlation id. *)
  List.iter
    (fun (summary, name, b, dur) ->
      Stats.Summary.add summary dur;
      if Trace.enabled t.trace then begin
        let b = Float.max 0.0 b in
        Trace.span t.trace ~cat:"entry.phase" ~gid:e.eid.Types.gid ~node:0
          ~eid:(e.eid.Types.gid, e.eid.Types.seq)
          ~b ~e:(b +. dur) name
      end)
    (phase_spans t e ~tnow)

(* ------------------------------------------------------------------ *)
(* Batching                                                            *)
(* ------------------------------------------------------------------ *)

and epoch_allows t (l : leader) seq =
  match t.ord with
  | Config.Sync_rounds ->
      (* Round-based protocols propose exactly one entry per round: a
         group may run at most a pipeline's worth of rounds ahead of the
         slowest group (otherwise Figure 2's backlog grows without
         bound). *)
      seq - l.l_next_round < t.cfg.pipeline
  | Config.Epoch_rounds k ->
      (* A proposal in epoch e requires every round of the preceding
         epochs (rounds 1 .. e*k) to have executed locally — the
         epoch-boundary synchronization that gives ISS its latency
         profile. *)
      let epoch = (seq - 1) / k in
      epoch = 0 || l.l_next_round > epoch * k
  | _ -> true

and try_batch t (l : leader) =
  if
    t.started
    && alive t l.l_addr
    && l.l_batch_pending
    && l.l_in_flight < t.cfg.pipeline
    && epoch_allows t l l.l_next_seq
  then begin
    l.l_batch_pending <- false;
    form_batch t l
  end

and form_batch t (l : leader) =
  let seq = l.l_next_seq in
  l.l_next_seq <- seq + 1;
  l.l_in_flight <- l.l_in_flight + 1;
  let rec take acc n lst =
    if n = 0 then (List.rev acc, lst)
    else
      match lst with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (x :: acc) (n - 1) rest
  in
  (* Conflicted transactions re-enter through Aria's deterministic
     fallback lane: they execute serially next time and always commit,
     bounding retries to one round. *)
  let retried, rest = take [] t.cfg.max_batch l.l_retry in
  l.l_retry <- rest;
  let fresh =
    List.init (t.cfg.max_batch - List.length retried) (fun _ -> W.next l.l_gen)
  in
  let eid = { Types.gid = l.l_gid; seq } in
  let digest = Sha256.digest ("entry:" ^ Types.entry_id_to_string eid) in
  let wire l0 =
    List.fold_left (fun acc (x : Txn.t) -> acc + x.Txn.wire_size) 0 l0
  in
  let size = Types.header_bytes + wire fresh + wire retried in
  let e =
    {
      eid;
      digest;
      size;
      txns = fresh;
      fb_txns = retried;
      txn_count = List.length fresh + List.length retried;
      created_at = now t;
      decided_at = 0.0;
      committed_at = 0.0;
      ordered_at = 0.0;
      outcome = None;
      exec_count = 0;
    }
  in
  Entry_tbl.replace t.entries eid e;
  Hashtbl.replace t.by_digest digest e;
  trace_entry t eid "batch_formed" ~node:0
    ~args:[ ("txns", Trace.Int e.txn_count); ("bytes", Trace.Int size) ];
  content_event t (node_of t l.l_addr) eid;
  (* The leader verifies the batch's client signatures, then starts
     local PBFT consensus. *)
  let verify_cost =
    float_of_int e.txn_count *. t.cfg.cost.Config.sig_verify_s
  in
  charge_cpu_parallel t l.l_addr verify_cost (fun () ->
      if alive t l.l_addr then
        match (node_of t l.l_addr).n_pbft with
        | Some pbft -> Pbft.propose pbft ~seq ~digest
        | None -> ())

(* ------------------------------------------------------------------ *)
(* Local consensus decisions -> global phase                           *)
(* ------------------------------------------------------------------ *)

and on_local_decide t (node : node) (cert : Pbft.certificate) =
  match Hashtbl.find_opt t.by_digest cert.Pbft.cert_digest with
  | None -> ()
  | Some e ->
      let addr = node.n_addr in
      content_event t node e.eid;
      if is_leader_node addr && e.eid.Types.gid = addr.Topology.g then
        if e.decided_at = 0.0 then begin
          e.decided_at <- now t;
          trace_entry t e.eid "decided" ~node:0
        end;
      (* Encoded bijective: every node ships its chunks. *)
      (match t.repl with
      | Config.Encoded_bijective -> send_chunks t node e
      | Config.Bijective_full -> send_bijective_copies t node e
      | Config.Leader_oneway -> ());
      if is_leader_node addr && addr.Topology.g = e.eid.Types.gid then
        start_global t t.leaders.(addr.Topology.g) e

and send_chunks t (node : node) e =
  let g = node.n_addr.Topology.g in
  if node.n_addr.Topology.n = 0 then
    trace_entry t e.eid "chunks_sent" ~gid:g ~node:node.n_addr.Topology.n;
  let encode_cost = float_of_int e.size *. t.cfg.cost.Config.encode_per_byte_s in
  charge_cpu t node.n_addr encode_cost (fun () ->
      for j = 0 to t.ng - 1 do
        if j <> g then begin
          let plan = plan_between t ~src:g ~dst:j in
          let bytes = chunk_bytes t ~src:g ~dst:j ~entry_len:e.size in
          let root_tag =
            if node.n_byz then "tampered:" ^ e.digest else e.digest
          in
          List.iter
            (fun (c, r) ->
              send ~bulk:true t ~src:node.n_addr
                ~dst:{ Topology.g = j; n = r }
                ~bytes
                (Chunk { eid = e.eid; root_tag; index = c }))
            (Transfer_plan.sends_of plan ~sender:node.n_addr.Topology.n)
        end
      done)

and send_bijective_copies t (node : node) e =
  (* The general approach of §IV-A: the (partitioned) bijective
     cluster-sending plan, f1 + f2 + 1 full copies for similar group
     sizes. *)
  let g = node.n_addr.Topology.g in
  for j = 0 to t.ng - 1 do
    if j <> g then begin
      let plan =
        Bijective_plan.generate
          ~n1:(Topology.group_size t.topo g)
          ~n2:(Topology.group_size t.topo j)
      in
      List.iter
        (fun r ->
          send ~bulk:true t ~src:node.n_addr
            ~dst:{ Topology.g = j; n = r }
            ~bytes:(copy_bytes t e.eid) (Copy { eid = e.eid }))
        (Bijective_plan.sends_of plan ~sender:node.n_addr.Topology.n)
    end
  done

and send_oneway_copies t (l : leader) e ~skip =
  (* Leader one-way with the GeoBFT optimization: f_j + 1 receivers per
     remote group, who then forward over their LAN. *)
  for j = 0 to t.ng - 1 do
    if j <> l.l_gid && not (List.mem j skip) then
      for r = 0 to group_f t j do
        send ~bulk:true t ~src:l.l_addr
          ~dst:{ Topology.g = j; n = r }
          ~bytes:(copy_bytes t e.eid) (Copy { eid = e.eid })
      done
  done

and start_global t (l : leader) e =
  match t.glob with
  | Config.Per_group_raft ->
      if t.repl = Config.Leader_oneway then send_oneway_copies t l e ~skip:[];
      if Raft.role l.l_rafts.(l.l_gid) = Raft.Leader then
        ignore (Raft.propose l.l_rafts.(l.l_gid) (Entry_meta { eid = e.eid }))
  | Config.Direct_broadcast ->
      send_oneway_copies t l e ~skip:[];
      (* No global consensus: the entry is ready for ordering here. *)
      mark_round_ready t l e.eid;
      if e.committed_at = 0.0 then begin
        e.committed_at <- now t;
        trace_entry t e.eid "committed" ~node:0
      end
  | Config.Single_raft ->
      if l.l_gid = 0 then steward_propose t l e
      else
        (* Forward the certified entry to the global leader group. *)
        send ~bulk:true t ~src:l.l_addr ~dst:(leader_addr 0)
          ~bytes:(copy_bytes t e.eid) (Copy { eid = e.eid })

and steward_propose t (l : leader) e =
  if not (Entry_tbl.mem l.l_steward_proposed e.eid) then begin
    Entry_tbl.replace l.l_steward_proposed e.eid ();
    send_oneway_copies t l e ~skip:[ e.eid.Types.gid ];
    if Raft.role l.l_rafts.(0) = Raft.Leader then
      ignore (Raft.propose l.l_rafts.(0) (Entry_meta { eid = e.eid }))
  end

(* ------------------------------------------------------------------ *)
(* Symbolic chunk rebuild                                              *)
(* ------------------------------------------------------------------ *)

and rebuild_state (node : node) eid =
  match Entry_tbl.find_opt node.n_rebuilds eid with
  | Some r -> r
  | None ->
      let r =
        { rb_buckets = Hashtbl.create 2; rb_black = ISet.empty; rb_done = false }
      in
      Entry_tbl.replace node.n_rebuilds eid r;
      r

and on_chunk_received t (node : node) ~eid ~root_tag ~index =
  let e = entry_of t eid in
  let r = rebuild_state node eid in
  if (not r.rb_done) && not (ISet.mem index r.rb_black) then begin
    let bucket =
      match Hashtbl.find_opt r.rb_buckets root_tag with
      | Some b -> b
      | None ->
          let b = ref ISet.empty in
          Hashtbl.replace r.rb_buckets root_tag b;
          b
    in
    if not (ISet.mem index !bucket) then begin
      bucket := ISet.add index !bucket;
      let g = node.n_addr.Topology.g in
      let plan = plan_between t ~src:eid.Types.gid ~dst:g in
      if ISet.cardinal !bucket >= plan.Transfer_plan.n_data then
        if String.equal root_tag e.digest then begin
          r.rb_done <- true;
          let cost = float_of_int e.size *. t.cfg.cost.Config.decode_per_byte_s in
          if Trace.enabled t.trace then begin
            let tnow = now t in
            Trace.span t.trace ~cat:"entry" ~gid:g ~node:node.n_addr.Topology.n
              ~eid:(eid.Types.gid, eid.Types.seq) ~b:tnow ~e:(tnow +. cost)
              "rebuild"
          end;
          charge_cpu t node.n_addr cost (fun () ->
              if alive t node.n_addr then content_event t node eid)
        end
        else begin
          (* Fake bucket: certificate validation fails, ids are burned
             (the DoS defence of §IV-C). *)
          r.rb_black <- ISet.union r.rb_black !bucket;
          Hashtbl.remove r.rb_buckets root_tag
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Global Raft wiring                                                  *)
(* ------------------------------------------------------------------ *)

and assign_ts t (l : leader) eid =
  (* Overlapped VTS assignment: stamp the entry with our clock and
     replicate through our own instance (Fig. 7b). *)
  if
    t.ord = Config.Async_vts
    && eid.Types.gid <> l.l_gid
    && (not (Hashtbl.mem l.l_ts_mark (ts_key l.l_gid eid)))
    && (not (Hashtbl.mem l.l_ts_seen (ts_key l.l_gid eid)))
    && Raft.role l.l_rafts.(l.l_gid) = Raft.Leader
  then begin
    Hashtbl.replace l.l_ts_mark (ts_key l.l_gid eid) ();
    ignore (Raft.propose l.l_rafts.(l.l_gid) (Ts { eid; ts = l.l_clk }))
  end

and on_raft_deliver t (l : leader) _inst payload =
  match payload with
  | Noop -> ()
  | Entry_meta { eid } ->
      (* Overlapped assignment (Fig. 7b): stamp on the propose message.
         The serial variant (Fig. 7a) waits for the entry's own commit
         (handled in on_raft_commit), costing one extra RTT. *)
      if t.cfg.overlapped_vts then assign_ts t l eid
  | Ts _ -> ()

and accept_round t (l : leader) ~tag k =
  let quorum = Intmath.pbft_quorum (Topology.group_size t.topo l.l_gid) in
  if quorum <= 1 then k ()
  else begin
    Hashtbl.replace l.l_accept_pending tag k;
    Hashtbl.replace l.l_accept_votes tag (ref 1);
    broadcast_group t ~src:l.l_addr ~bytes:Types.vote_bytes (Accept_req { tag })
  end

and ack_guard t (l : leader) inst ~index payload release =
  match payload with
  | Noop -> release ()
  | Entry_meta { eid } ->
      if not (has_content (node_of t l.l_addr) eid) then
        ignore
          (Sim.after t.sim t.cfg.fetch_timeout_s (fun () ->
               if
                 alive t l.l_addr
                 && not (has_content (node_of t l.l_addr) eid)
               then want_fetch t l eid));
      when_content t l eid (fun () ->
          (* Verify the sender group's certificate, then reach local
             consensus on the accept decision (skip-prepare PBFT). *)
          let cert_cost =
            float_of_int
              (Intmath.pbft_quorum (Topology.group_size t.topo eid.Types.gid))
            *. t.cfg.cost.Config.sig_verify_s
          in
          charge_cpu t l.l_addr cert_cost (fun () ->
              if alive t l.l_addr then
                accept_round t l
                  ~tag:(Printf.sprintf "acc|%d|%d" inst index)
                  (fun () ->
                    release ();
                    (* Slow-receiver support (§V-C): advertise the accept
                       to every group directly. *)
                    if t.cfg.system = Config.Massbft then
                      for j = 0 to t.ng - 1 do
                        if j <> l.l_gid then
                          send t ~src:l.l_addr ~dst:(leader_addr j)
                            ~bytes:Types.vote_bytes (Accept_note { eid })
                      done)))
  | Ts { eid; _ } ->
      (* Lemma V.1: only accept a timestamp for an entry we hold. *)
      if not (has_content (node_of t l.l_addr) eid) then
        ignore
          (Sim.after t.sim t.cfg.fetch_timeout_s (fun () ->
               if
                 alive t l.l_addr
                 && not (has_content (node_of t l.l_addr) eid)
               then want_fetch t l eid));
      when_content t l eid release

and on_raft_commit t (l : leader) inst payload =
  match payload with
  | Noop -> ()
  | Entry_meta { eid } ->
      let e = entry_of t eid in
      l.l_clk_of.(inst) <- eid.Types.seq;
      Entry_tbl.replace l.l_committed_unexec eid ();
      if not t.cfg.overlapped_vts then assign_ts t l eid;
      (match t.ord with
      | Config.Sync_rounds | Config.Epoch_rounds _ -> mark_round_ready t l eid
      | Config.Global_log -> enqueue_exec t l eid
      | Config.Async_vts -> ());
      if eid.Types.gid = l.l_gid then begin
        l.l_clk <- max l.l_clk eid.Types.seq;
        (* A recovered leader may re-propose an in-flight entry that in
           fact committed twice; account it once. *)
        if e.committed_at = 0.0 then begin
          e.committed_at <- now t;
          trace_entry t e.eid "committed" ~node:0;
          l.l_in_flight <- l.l_in_flight - 1;
          try_batch t l
        end
      end;
      (* Catch-all timestamp assignment for every instance this leader
         currently leads: covers taken-over instances (frozen clocks on
         behalf of a crashed group, §V-C) and our own instance for
         entries whose deliver-time assignment was skipped during a
         leadership handover. *)
      for j = 0 to Array.length l.l_rafts - 1 do
        if
          j <> eid.Types.gid
          && Raft.role l.l_rafts.(j) = Raft.Leader
          && (not (Hashtbl.mem l.l_ts_seen (ts_key j eid)))
          && not (Hashtbl.mem l.l_ts_mark (ts_key j eid))
        then begin
          Hashtbl.replace l.l_ts_mark (ts_key j eid) ();
          ignore (Raft.propose l.l_rafts.(j) (Ts { eid; ts = l.l_clk_of.(j) }))
        end
      done
  | Ts { eid; ts } ->
      let key = ts_key inst eid in
      if not (Hashtbl.mem l.l_ts_seen key) then begin
        Hashtbl.replace l.l_ts_seen key ();
        match l.l_orderer with
        | Some o -> Orderer.on_timestamp o ~from_gid:inst ~eid ~ts
        | None -> ()
      end

and on_raft_role t (l : leader) inst role =
  if role = Raft.Leader then begin
    if inst = l.l_gid then
      (* Transfer-back after recovery: in-flight entries whose proposals
         died with the old term are re-proposed in sequence order. *)
      for seq = 1 to l.l_next_seq - 1 do
        let eid = { Types.gid = l.l_gid; seq } in
        match Entry_tbl.find_opt t.entries eid with
        | Some e when e.committed_at = 0.0 ->
            ignore (Raft.propose l.l_rafts.(inst) (Entry_meta { eid }))
        | _ -> ()
      done;
    (* Stamp every committed-but-unexecuted entry still lacking this
       instance's element: on a takeover this assigns the crashed
       group's frozen clock; on a transfer-back it repairs assignments
       skipped while we were not the leader. *)
    Entry_tbl.iter
      (fun eid () ->
        if
          eid.Types.gid <> inst
          && (not (Hashtbl.mem l.l_ts_seen (ts_key inst eid)))
          && not (Hashtbl.mem l.l_ts_mark (ts_key inst eid))
        then begin
          Hashtbl.replace l.l_ts_mark (ts_key inst eid) ();
          ignore (Raft.propose l.l_rafts.(inst) (Ts { eid; ts = l.l_clk_of.(inst) }))
        end)
      l.l_committed_unexec
  end

(* A taken-over instance can inherit the dead leader's in-flight
   entries whose chunk dissemination never completed: no live group
   holds their content, so the content-gated accepts (Lemma V.1) can
   never arrive and the whole log wedges behind them. Such entries can
   never have committed anywhere (commitment needs a majority of
   content-holding groups), so after fetching from every group fails
   they are safely replaced with no-ops. *)
and unwedge_check t (l : leader) inst raft =
  let idx = Raft.commit_index raft + 1 in
  if idx <= Raft.last_index raft then begin
    let blocked_eid =
      match Raft.entry_at raft idx with
      | Some (Entry_meta { eid }) | Some (Ts { eid; _ }) ->
          if has_content (node_of t l.l_addr) eid then None else Some eid
      | Some Noop | None -> None
    in
    match blocked_eid with
    | None -> ()
    | Some eid ->
        let key = Printf.sprintf "%d|%d" inst idx in
        let ticks =
          match Hashtbl.find_opt l.l_stuck key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.replace l.l_stuck key r;
              r
        in
        incr ticks;
        if !ticks = 1 then want_fetch t l eid
        else if !ticks >= 4 then begin
          Hashtbl.remove l.l_stuck key;
          trace_entry t eid "unwedge_noop" ~gid:l.l_gid ~node:0
            ~args:[ ("inst", Trace.Int inst); ("index", Trace.Int idx) ];
          Raft.replace_uncommitted raft ~index:idx Noop
        end
  end

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                    *)
(* ------------------------------------------------------------------ *)

and handle t ~(src : Topology.addr) ~(dst : Topology.addr) m =
  let node = node_of t dst in
  match m with
  | Local pm -> (
      match node.n_pbft with
      | None -> ()
      | Some pbft -> (
          match pm with
          | Pbft.Pre_prepare { digest; _ } ->
              (* Receiving the batch: verify every client signature
                 before voting (the paper's dominant local cost). *)
              let cost =
                match Hashtbl.find_opt t.by_digest digest with
                | Some e ->
                    float_of_int e.txn_count *. t.cfg.cost.Config.sig_verify_s
                | None -> 0.0
              in
              charge_cpu_parallel t dst cost (fun () ->
                  if alive t dst then Pbft.handle pbft ~from:src.Topology.n pm)
          | _ -> Pbft.handle pbft ~from:src.Topology.n pm))
  | Chunk { eid; root_tag; index } ->
      on_chunk_received t node ~eid ~root_tag ~index;
      (* Exchange with the rest of the group (a Byzantine receiver
         forwards a tampered version instead). *)
      let e = entry_of t eid in
      let fwd_tag = if node.n_byz then "tampered:" ^ e.digest else root_tag in
      let bytes = chunk_bytes t ~src:eid.Types.gid ~dst:dst.Topology.g ~entry_len:e.size in
      broadcast_group ~bulk:true t ~src:dst ~bytes
        (Chunk_fwd { eid; root_tag = fwd_tag; index })
  | Chunk_fwd { eid; root_tag; index } ->
      on_chunk_received t node ~eid ~root_tag ~index
  | Copy { eid } ->
      if not (has_content node eid) then begin
        content_event t node eid;
        broadcast_group ~bulk:true t ~src:dst ~bytes:(copy_bytes t eid)
          (Copy_fwd { eid });
        if
          t.glob = Config.Single_raft
          && is_leader_node dst && dst.Topology.g = 0
          && eid.Types.gid <> 0
        then steward_propose t t.leaders.(0) (entry_of t eid)
      end
  | Copy_fwd { eid } -> content_event t node eid
  | Raft_m { inst; rmsg } ->
      if is_leader_node dst then begin
        let l = t.leaders.(dst.Topology.g) in
        if inst < Array.length l.l_last_heard then
          l.l_last_heard.(inst) <- now t;
        if inst < Array.length l.l_rafts then
          Raft.handle l.l_rafts.(inst) ~from:src.Topology.g rmsg
      end
  | Accept_req { tag } ->
      (* Follower's vote in the skip-prepare accept round. *)
      send t ~src:dst ~dst:src ~bytes:Types.vote_bytes (Accept_vote { tag })
  | Accept_vote { tag } ->
      if is_leader_node dst then begin
        let l = t.leaders.(dst.Topology.g) in
        match Hashtbl.find_opt l.l_accept_votes tag with
        | None -> ()
        | Some votes ->
            incr votes;
            let quorum =
              Intmath.pbft_quorum (Topology.group_size t.topo dst.Topology.g)
            in
            if !votes >= quorum then begin
              match Hashtbl.find_opt l.l_accept_pending tag with
              | Some k ->
                  Hashtbl.remove l.l_accept_pending tag;
                  Hashtbl.remove l.l_accept_votes tag;
                  k ()
              | None -> ()
            end
      end
  | Accept_note { eid } ->
      if is_leader_node dst then begin
        let l = t.leaders.(dst.Topology.g) in
        let notes =
          match Entry_tbl.find_opt l.l_accept_notes eid with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Entry_tbl.replace l.l_accept_notes eid r;
              r
        in
        incr notes;
        (* f_g + 1 groups holding the entry imply it is replicated; the
           proposer counts implicitly, so f_g accept notes suffice for a
           slow receiver to stamp the entry without holding it (§V-C). *)
        if !notes >= max 1 (fg t) then assign_ts t l eid
      end
  | Recv_note { eid } ->
      if is_leader_node dst && t.glob = Config.Direct_broadcast then begin
        let l = t.leaders.(dst.Topology.g) in
        if eid.Types.gid = l.l_gid then begin
          let notes =
            match Entry_tbl.find_opt l.l_recv_notes eid with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Entry_tbl.replace l.l_recv_notes eid r;
                r
          in
          incr notes;
          if !notes >= t.ng - 1 then begin
            let e = entry_of t eid in
            if e.committed_at = 0.0 then begin
              e.committed_at <- now t;
              trace_entry t eid "committed" ~node:0
            end;
            l.l_in_flight <- l.l_in_flight - 1;
            Entry_tbl.remove l.l_recv_notes eid;
            try_batch t l
          end
        end
      end
  | Fetch_req { eid } ->
      if has_content node eid then
        send ~bulk:true t ~src:dst ~dst:src ~bytes:(copy_bytes t eid)
          (Copy { eid })

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let raft_instance_count glob ng =
  match glob with
  | Config.Per_group_raft -> ng
  | Config.Single_raft -> 1
  | Config.Direct_broadcast -> 0

let create sim topo cfg =
  let ng = Topology.n_groups topo in
  let repl = Config.replication_of cfg.Config.system in
  let glob = Config.global_of cfg.Config.system in
  let ord = Config.ordering_of ~epoch_rounds:cfg.Config.epoch_rounds cfg.Config.system in
  let shared_store =
    Kvstore.create
      ~init:(W.preload ~scale:cfg.Config.workload_scale cfg.Config.workload)
      ()
  in
  let mk_store () =
    if cfg.Config.independent_stores then
      Kvstore.create
        ~init:(W.preload ~scale:cfg.Config.workload_scale cfg.Config.workload)
        ()
    else shared_store
  in
  let nodes =
    Array.init ng (fun g ->
        Array.init (Topology.group_size topo g) (fun n ->
            {
              n_addr = { Topology.g; n };
              n_pbft = None;
              n_content = Entry_tbl.create 256;
              n_rebuilds = Entry_tbl.create 256;
              n_byz = false;
            }))
  in
  let n_inst = raft_instance_count glob ng in
  let leaders =
    Array.init ng (fun g ->
        {
          l_gid = g;
          l_addr = leader_addr g;
          l_rafts = [||];
          l_orderer = None;
          l_store = mk_store ();
          l_ledger = Ledger.create ();
          l_clk = 0;
          l_clk_of = Array.make (max n_inst 1) 0;
          l_retry = [];
          l_gen =
            W.create ~scale:cfg.Config.workload_scale cfg.Config.workload
              ~seed:(Int64.add cfg.Config.seed (Int64.of_int (g * 7919)));
          l_in_flight = 0;
          l_next_seq = 1;
          l_batch_pending = false;
          l_exec_q = Queue.create ();
          l_exec_busy = false;
          l_executed_rev = [];
          l_executed_count = 0;
          l_accept_pending = Hashtbl.create 32;
          l_accept_votes = Hashtbl.create 32;
          l_accept_notes = Entry_tbl.create 64;
          l_ts_mark = Hashtbl.create 256;
          l_ts_seen = Hashtbl.create 256;
          l_last_heard = Array.make (max n_inst 1) 0.0;
          l_waiting_content = Entry_tbl.create 64;
          l_committed_unexec = Entry_tbl.create 64;
          l_round_ready = Entry_tbl.create 64;
          l_next_round = 1;
          l_recv_notes = Entry_tbl.create 64;
          l_steward_proposed = Entry_tbl.create 64;
          l_fetching = Entry_tbl.create 16;
          l_fetch_q = Queue.create ();
          l_fetch_out = 0;
          l_stuck = Hashtbl.create 8;
        })
  in
  let t =
    {
      sim;
      topo;
      cfg;
      ng;
      repl;
      glob;
      ord;
      nodes;
      leaders;
      entries = Entry_tbl.create 1024;
      by_digest = Hashtbl.create 1024;
      plans = Array.make_matrix ng ng None;
      metrics = Metrics.create ();
      shared_store;
      started = false;
      trace = Trace.null;
    }
  in
  (* Local PBFT replicas. *)
  Array.iter
    (fun group ->
      Array.iter
        (fun node ->
          let g = node.n_addr.Topology.g in
          let n = Topology.group_size topo g in
          let pbft =
            Pbft.create
              { Pbft.n; me = node.n_addr.Topology.n; skip_prepare = false }
              {
                Pbft.send =
                  (fun dst_n pm ->
                    let bulk =
                      match pm with Pbft.Pre_prepare _ -> true | _ -> false
                    in
                    send ~bulk t ~src:node.n_addr
                      ~dst:{ Topology.g; n = dst_n }
                      ~bytes:(local_msg_bytes t pm) (Local pm));
                decide = (fun cert -> on_local_decide t node cert);
              }
          in
          node.n_pbft <- Some pbft)
        group)
    nodes;
  (* Global Raft instances at the leaders. *)
  Array.iter
    (fun l ->
      l.l_rafts <-
        Array.init n_inst (fun inst ->
            Raft.create ~initial_leader:inst ~ng ~me:l.l_gid
              {
                Raft.send =
                  (fun dst_g rmsg ->
                    send t ~src:l.l_addr ~dst:(leader_addr dst_g)
                      ~bytes:(raft_msg_bytes t rmsg)
                      (Raft_m { inst; rmsg }));
                on_deliver = (fun ~index:_ p -> on_raft_deliver t l inst p);
                on_commit = (fun ~index:_ p -> on_raft_commit t l inst p);
                on_role = (fun role ~term:_ -> on_raft_role t l inst role);
                ack_guard = (fun ~index p k -> ack_guard t l inst ~index p k);
              });
      if ord = Config.Async_vts then
        l.l_orderer <-
          Some (Orderer.create ~ng ~on_execute:(fun eid -> enqueue_exec t l eid)))
    leaders;
  t

let set_trace t tr =
  t.trace <- tr;
  Trace.set_clock tr (fun () -> Sim.now t.sim);
  Sim.set_trace t.sim tr;
  Topology.set_trace t.topo tr;
  Array.iter
    (fun group ->
      Array.iter
        (fun node ->
          match node.n_pbft with
          | Some p -> Pbft.set_trace p tr ~gid:node.n_addr.Topology.g
          | None -> ())
        group)
    t.nodes;
  Array.iter
    (fun l -> Array.iteri (fun inst r -> Raft.set_trace r tr ~inst) l.l_rafts)
    t.leaders

(* ------------------------------------------------------------------ *)
(* Start / fault injection                                             *)
(* ------------------------------------------------------------------ *)

let start t =
  if t.started then invalid_arg "Engine.start: already started";
  t.started <- true;
  handler := handle;
  (* Batch timers. *)
  Array.iter
    (fun l ->
      let rec tick () =
        ignore
          (Sim.after t.sim t.cfg.batch_timeout_s (fun () ->
               if alive t l.l_addr then begin
                 l.l_batch_pending <- true;
                 try_batch t l
               end;
               tick ()))
      in
      l.l_batch_pending <- true;
      try_batch t l;
      tick ())
    t.leaders;
  (* Heartbeats + crash detection (only meaningful with global Raft). *)
  if Array.length t.leaders.(0).l_rafts > 0 then begin
    let period = t.cfg.election_timeout_s /. 2.0 in
    Array.iter
      (fun l ->
        Array.iteri (fun i _ -> l.l_last_heard.(i) <- 0.0) l.l_last_heard;
        let rec tick () =
          ignore
            (Sim.after t.sim period (fun () ->
                 if alive t l.l_addr then begin
                   Array.iteri
                     (fun inst raft ->
                       if Raft.role raft = Raft.Leader then begin
                         (* Anti-entropy probe: heartbeat + catch-up for
                            lagging or recovered followers. *)
                         Raft.heartbeat raft;
                         unwedge_check t l inst raft
                       end
                       else begin
                         let stagger =
                           float_of_int ((l.l_gid - inst + t.ng) mod t.ng)
                         in
                         let deadline =
                           t.cfg.election_timeout_s *. (1.0 +. (0.5 *. stagger))
                         in
                         if now t -. l.l_last_heard.(inst) > deadline then begin
                           l.l_last_heard.(inst) <- now t;
                           Raft.start_election raft
                         end
                       end)
                     l.l_rafts
                 end;
                 tick ()))
        in
        tick ())
      t.leaders
  end;
  (* Byzantine activation. *)
  if t.cfg.byzantine_per_group > 0 then
    ignore
      (Sim.at t.sim (Float.max t.cfg.byzantine_from_s (now t)) (fun () ->
           Array.iter
             (fun group ->
               let n = Array.length group in
               let count = min t.cfg.byzantine_per_group (Intmath.pbft_f n) in
               for k = 1 to count do
                 group.(n - k).n_byz <- true
               done)
             t.nodes));
  (* Group crash. *)
  match t.cfg.crash_group_at with
  | Some (g, at) ->
      ignore (Sim.at t.sim (Float.max at (now t)) (fun () ->
          Topology.crash_group t.topo g))
  | None -> ()

let recover_group t g =
  (* Nodes come back up; the anti-entropy probes of the current
     instance-[g] leader catch the group's logs up, after which the
     leader hands instance [g] home via a Timeout_now (transfer-back,
     paper §V-C). No forced elections: a stale-log campaign could only
     depose the working takeover leader without being able to win. *)
  Topology.recover_group t.topo g

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let metrics t = t.metrics
let set_measure_from t at = t.metrics.Metrics.measure_from <- at
let executed_ids t ~gid = List.rev t.leaders.(gid).l_executed_rev
let store_fingerprint t = Kvstore.fingerprint t.shared_store
let leader_store_fingerprint t ~gid = Kvstore.fingerprint t.leaders.(gid).l_store
let ledger_of t ~gid = t.leaders.(gid).l_ledger

let entries_executed_total t =
  Array.fold_left (fun acc l -> acc + l.l_executed_count) 0 t.leaders

let wan_bytes t = Topology.wan_bytes_sent t.topo
let lan_bytes t = Topology.lan_bytes_sent t.topo

let debug_dump t =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf
           "leader g%d alive=%b in_flight=%d next_seq=%d clk=%d execq=%d executed=%d retry=%d waitc=%d acceptp=%d fetch=%d\n"
           l.l_gid (alive t l.l_addr) l.l_in_flight l.l_next_seq l.l_clk
           (Queue.length l.l_exec_q) l.l_executed_count (List.length l.l_retry)
           (Entry_tbl.length l.l_waiting_content)
           (Hashtbl.length l.l_accept_pending)
           (Entry_tbl.length l.l_fetching));
      Buffer.add_string buf
        (Printf.sprintf "  fetch: out=%d queued=%d\n" l.l_fetch_out
           (Queue.length l.l_fetch_q));
      Buffer.add_string buf
        (Printf.sprintf "  wan backlog: leader=%.2fs last-node=%.2fs\n"
           (Topology.wan_uplink_backlog_s t.topo l.l_addr)
           (Topology.wan_uplink_backlog_s t.topo
              { Topology.g = l.l_gid;
                n = Topology.group_size t.topo l.l_gid - 1 }));
      Array.iteri
        (fun inst raft ->
          let blocking =
            match Raft.entry_at raft (Raft.commit_index raft + 1) with
            | Some (Entry_meta { eid }) ->
                "EM " ^ Types.entry_id_to_string eid
            | Some (Ts { eid; ts }) ->
                Printf.sprintf "Ts %s=%d" (Types.entry_id_to_string eid) ts
            | Some Noop -> "noop"
            | None -> "-"
          in
          Buffer.add_string buf
            (Printf.sprintf "  next-uncommitted: %s acks=[%s]\n" blocking
               (String.concat ","
                  (List.map string_of_int
                     (Raft.acks_for raft (Raft.commit_index raft + 1)))));
          Buffer.add_string buf
            (Printf.sprintf
               "  inst %d: role=%s term=%d last=%d commit=%d clk_of=%d heard=%.2f\n"
               inst
               (match Raft.role raft with
               | Raft.Leader -> "L"
               | Raft.Follower -> "F"
               | Raft.Candidate -> "C")
               (Raft.term raft) (Raft.last_index raft) (Raft.commit_index raft)
               l.l_clk_of.(inst) l.l_last_heard.(inst)))
        l.l_rafts;
      match l.l_orderer with
      | Some o ->
          for g = 0 to t.ng - 1 do
            Buffer.add_string buf
              (Printf.sprintf "  head[%d] = %s %s\n" g
                 (Types.entry_id_to_string (Orderer.head_of o g))
                 (Format.asprintf "%a" Vts.pp (Orderer.head_vts o g)))
          done
      | None -> ())
    t.leaders;
  Buffer.contents buf

(* Tie the dispatcher knot at module load so messages sent before
   [start] (there are none, but belt-and-braces) still dispatch. *)
let () = handler := handle
