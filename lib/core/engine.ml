(* The engine: a thin conductor over the stage modules.

   Construction resolves [Config.system] exactly once into the
   [Node_ctx.strategies] record (one strategy value per Table II axis)
   and wires the stages: Local_consensus (per-group PBFT),
   Replication (dissemination + rebuild + fetch), Global_consensus
   (Raft with content-gated acks), Ordering (rounds / epochs / global
   log / VTS), Execution (Aria + ledger), Batcher (load + batching).
   The engine itself only owns message routing ([dispatch]), the
   cross-stage content-arrival composition ([leader_content]),
   lifecycle (create/start/fault injection) and the read-side
   accessors. *)

open Node_ctx

type t = Node_ctx.t

(* ------------------------------------------------------------------ *)
(* Message routing                                                     *)
(* ------------------------------------------------------------------ *)

let dispatch t ~(src : Topology.addr) ~(dst : Topology.addr) m =
  let node = node_of t dst in
  match m with
  | Local pm -> Local_consensus.handle t node ~src pm
  | Chunk { eid; root_tag; index } ->
      Replication.handle_chunk t node ~eid ~root_tag ~index
  | Chunk_fwd { eid; root_tag; index } ->
      Replication.on_chunk_received t node ~eid ~root_tag ~index
  | Copy { eid } -> Replication.handle_copy t node eid
  | Copy_fwd { eid } -> content_event t node eid
  | Raft_m { inst; rmsg } -> Global_consensus.handle_raft_m t ~src ~dst ~inst rmsg
  | Accept_req { tag } -> Local_consensus.handle_accept_req t ~src ~dst tag
  | Accept_vote { tag } -> Local_consensus.handle_accept_vote t ~src ~dst tag
  | Accept_note { eid } -> Local_consensus.handle_accept_note t ~dst eid
  | Recv_note { eid } -> Global_consensus.handle_recv_note t ~dst eid
  | Fetch_req { eid } -> Replication.handle_fetch_req t node ~src eid

(* Cross-stage reactions to content arriving at a leader, in a fixed
   order: release the fetch slot, run the content-gated ack guards
   (Lemma V.1), let the global strategy react (GeoBFT commits here),
   then pump the execution queue. *)
let leader_content t (l : leader) eid =
  Replication.on_content t l eid;
  run_content_waiters l eid;
  t.strat.glob.g_on_content t l eid;
  Execution.pump t l

(* ------------------------------------------------------------------ *)
(* Strategy resolution — the single place Config.system is consulted   *)
(* ------------------------------------------------------------------ *)

let resolve_strategies (cfg : Config.t) =
  let repl =
    match Config.replication_of cfg.Config.system with
    | Config.Leader_oneway -> Replication.leader_oneway
    | Config.Bijective_full -> Replication.bijective_full
    | Config.Encoded_bijective -> Replication.encoded_bijective
  in
  let glob =
    match Config.global_of cfg.Config.system with
    | Config.Per_group_raft -> Global_consensus.per_group_raft
    | Config.Single_raft -> Global_consensus.single_raft
    | Config.Direct_broadcast -> Global_consensus.direct_broadcast
  in
  let ord =
    match
      Config.ordering_of ~epoch_rounds:cfg.Config.epoch_rounds
        cfg.Config.system
    with
    | Config.Sync_rounds -> Ordering.sync_rounds
    | Config.Epoch_rounds k -> Ordering.epoch_rounds k
    | Config.Async_vts -> Ordering.async_vts
    | Config.Global_log -> Ordering.global_log
  in
  { repl; glob; ord }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create sim topo cfg =
  let ng = Topology.n_groups topo in
  let strat = resolve_strategies cfg in
  let shared_store =
    Kvstore.create
      ~init:(W.preload ~scale:cfg.Config.workload_scale cfg.Config.workload)
      ()
  in
  let mk_store () =
    if cfg.Config.independent_stores then
      Kvstore.create
        ~init:(W.preload ~scale:cfg.Config.workload_scale cfg.Config.workload)
        ()
    else shared_store
  in
  let nodes =
    Array.init ng (fun g ->
        Array.init (Topology.group_size topo g) (fun n ->
            {
              n_addr = { Topology.g; n };
              n_pbft = None;
              n_content = Entry_tbl.create 256;
              n_rebuilds = Entry_tbl.create 256;
              n_byz = false;
            }))
  in
  let n_inst = strat.glob.g_instances ng in
  let leaders =
    Array.init ng (fun g ->
        {
          l_gid = g;
          l_addr = { Topology.g; n = 0 };
          l_rafts = [||];
          l_orderer = None;
          l_store = mk_store ();
          l_ledger = Ledger.create ();
          l_clk = 0;
          l_clk_of = Array.make (max n_inst 1) 0;
          l_retry = [];
          l_gen =
            W.create ~scale:cfg.Config.workload_scale cfg.Config.workload
              ~seed:(Int64.add cfg.Config.seed (Int64.of_int (g * 7919)));
          l_in_flight = 0;
          l_next_seq = 1;
          l_batch_pending = false;
          l_exec_q = Queue.create ();
          l_exec_busy = false;
          l_executed_rev = [];
          l_executed_count = 0;
          l_accept_pending = Hashtbl.create 32;
          l_accept_votes = Hashtbl.create 32;
          l_accept_notes = Entry_tbl.create 64;
          l_ts_mark = Hashtbl.create 256;
          l_ts_seen = Hashtbl.create 256;
          l_last_heard = Array.make (max n_inst 1) 0.0;
          l_waiting_content = Entry_tbl.create 64;
          l_committed_unexec = Entry_tbl.create 64;
          l_round_ready = Entry_tbl.create 64;
          l_next_round = 1;
          l_recv_notes = Entry_tbl.create 64;
          l_steward_proposed = Entry_tbl.create 64;
          l_fetching = Entry_tbl.create 16;
          l_fetch_q = Queue.create ();
          l_fetch_out = 0;
          l_pending_conf = Queue.create ();
          l_deferred = Queue.create ();
          l_skip_commits_below = Array.make (max n_inst 1) 0;
          l_stuck = Hashtbl.create 8;
          l_vc_target = 0;
          l_stall_seq = 0;
          l_stall_ticks = 0;
        })
  in
  let t =
    {
      sim;
      topo;
      cfg;
      ng;
      nodes;
      leaders;
      entries = Entry_tbl.create 1024;
      by_digest = Hashtbl.create 1024;
      reg_mu = Mutex.create ();
      metrics_mu = Mutex.create ();
      plans = Array.make_matrix ng ng None;
      metrics = Metrics.create ();
      shared_store;
      strat;
      deliver = dispatch;
      on_leader_content = leader_content;
      started = false;
      node_watch = Atomic.make false;
      adv_hook = None;
      trace = Trace.null;
      active_n = Array.init ng (Topology.group_size topo);
      g_member = Array.make ng true;
      member_from = Array.make ng 0;
      member_until = Array.make ng max_int;
      reconfig_on = false;
      reconfig_apply = None;
      reconfig_round = None;
      fetch_retries = 0;
    }
  in
  Local_consensus.install t;
  Global_consensus.install t ~n_inst;
  (* Pre-compute every pairwise transfer plan now: the lazy memoization
     in [Replication.plan_between] would otherwise race when two shards
     first need the same plan concurrently under the parallel driver. *)
  for src = 0 to ng - 1 do
    for dst = 0 to ng - 1 do
      if src <> dst then ignore (Replication.plan_between t ~src ~dst)
    done
  done;
  t

let set_trace t tr =
  t.trace <- tr;
  Trace.set_clock tr (fun () -> Sim.now t.sim);
  Sim.set_trace t.sim tr;
  Topology.set_trace t.topo tr;
  Array.iter
    (fun group ->
      Array.iter
        (fun node ->
          match node.n_pbft with
          | Some p -> Pbft.set_trace p tr ~gid:node.n_addr.Topology.g
          | None -> ())
        group)
    t.nodes;
  Array.iter
    (fun l -> Array.iteri (fun inst r -> Raft.set_trace r tr ~inst) l.l_rafts)
    t.leaders

(* Register every stage's instruments in the sampler. Purely read-only:
   probes poll existing stage state, so an observed run commits the
   same entries as an unobserved one. Must run after [create] (replicas
   and Raft instances exist) and before [Sampler.attach] (columns
   freeze there). *)
let set_obs t sampler =
  Node_ctx.observe t sampler;
  Batcher.observe t sampler;
  Local_consensus.observe t sampler;
  Replication.observe t sampler;
  Global_consensus.observe t sampler;
  Ordering.observe t sampler;
  Execution.observe t sampler

(* ------------------------------------------------------------------ *)
(* Start / fault injection                                             *)
(* ------------------------------------------------------------------ *)

let start t =
  if t.started then invalid_arg "Engine.start: already started";
  t.started <- true;
  Batcher.start t;
  Global_consensus.start_heartbeats t;
  (* Byzantine activation: one event per group, on the group's shard,
     so the flag flips on the domain that reads it. *)
  if t.cfg.Config.byzantine_per_group > 0 then
    Array.iteri
      (fun g group ->
        ignore
          (Sim.at (sim_of t g)
             (Float.max t.cfg.Config.byzantine_from_s (now t))
             (fun () ->
               let n = Array.length group in
               let count =
                 min t.cfg.Config.byzantine_per_group (Intmath.pbft_f n)
               in
               for k = 1 to count do
                 group.(n - k).n_byz <- true
               done)))
      t.nodes;
  (* Group crash, on the crashing group's shard. *)
  match t.cfg.Config.crash_group_at with
  | Some (g, at) ->
      ignore
        (Sim.at (sim_of t g) (Float.max at (now t)) (fun () ->
             Topology.crash_group t.topo g))
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Node-level crash / recovery and acting-leader migration             *)
(* ------------------------------------------------------------------ *)

(* Hand the acting-leader role — and with it the leader record, the
   group's *replicated* leader-side state (store, ledger, orderer, Raft
   endpoints) — to the group's new PBFT view leader. Routing to the new
   holder models leader discovery/redirect, which settles well under one
   WAN RTT in a real deployment. The sweep below re-drives the proposer
   pipeline for entries stranded by the crash:

   - decided at this replica but never globally started (the old acting
     leader died before seeing the decide): stamp [decided_at] and run
     the global strategy now;
   - never prepared anywhere (so absent from the New_view reproposals):
     propose afresh in the new view. *)
let migrate_leader t (l : leader) (na : Topology.addr) =
  let old = l.l_addr in
  l.l_addr <- na;
  if Trace.enabled t.trace then
    Trace.instant t.trace ~cat:"engine" ~gid:l.l_gid ~node:na.Topology.n
      ~args:[ ("from", Trace.Int old.Topology.n) ]
      "leader_migrated";
  (* GeoBFT flow control: Recv_notes addressed to the dead leader are
     gone for good (no global retransmission in direct broadcast), so
     pending note rounds can never complete. Reset the proposer window
     rather than let stranded slots throttle the group forever —
     commitment itself was already stamped at send time. *)
  if Config.global_of t.cfg.Config.system = Config.Direct_broadcast then begin
    Entry_tbl.reset l.l_recv_notes;
    l.l_in_flight <- 0;
    (* Remote content that reached this node (via the group's LAN
       forwarding) while it was a mere follower never saw the leader's
       receive reaction: the round was never marked and the proposer was
       never credited, wedging the round barrier here and the proposer's
       window there. Run the reaction now for everything unprocessed —
       marking is idempotent and a duplicate Recv_note can overshoot but
       never re-hit the exactly-once equality threshold. *)
    Entry_tbl.iter
      (fun eid () ->
        if eid.Types.gid <> l.l_gid && not (Entry_tbl.mem l.l_round_ready eid)
        then t.strat.glob.g_on_content t l eid)
      (node_of t na).n_content
  end;
  (match (node_of t na).n_pbft with
  | None -> ()
  | Some pbft ->
      for seq = 1 to l.l_next_seq - 1 do
        let eid = { Types.gid = l.l_gid; seq } in
        match with_registry t (fun () -> Entry_tbl.find_opt t.entries eid) with
        | None -> ()
        | Some e ->
            if e.committed_at = 0.0 then begin
              match Pbft.decided pbft seq with
              | Some _ ->
                  if e.decided_at = 0.0 then begin
                    e.decided_at <- now t;
                    trace_entry t eid "decided" ~node:na.Topology.n;
                    t.strat.glob.g_start t l e
                  end
              | None ->
                  if
                    Pbft.is_leader pbft
                    && (not (Pbft.in_view_change pbft))
                    && not (Pbft.proposed pbft ~seq)
                  then Pbft.propose pbft ~seq ~digest:e.digest
            end
      done);
  Batcher.try_batch t l

(* One watchdog tick for one group: adopt a live replica that already
   leads its PBFT view, or — when the acting leader is down — push the
   survivors' view change toward the first view led by a live node
   (repeated ticks walk the target past dead view leaders). *)
let check_group_leadership t (l : leader) =
  let g = l.l_gid in
  (* Quorum and view math run over the *active* slots — identical to the
     physical group whenever no reconfiguration plan is armed. *)
  let n = active_size t g in
  let live =
    if n < 1 then []
    else List.filter (alive t) (List.init n (fun i -> { Topology.g; n = i }))
  in
  (* [n < 1]: a dark (pre-admission) or expelled group under an armed
     reconfiguration plan — nothing to lead. *)
  if n >= 1 && List.length live >= Intmath.pbft_quorum n then begin
    let live_leader =
      List.find_opt
        (fun a ->
          match (node_of t a).n_pbft with
          | Some p -> Pbft.is_leader p
          | None -> false)
        live
    in
    match live_leader with
    | Some a ->
        if not (Topology.addr_equal a l.l_addr) then migrate_leader t l a
        else begin
          (* Progress watchdog: the acting leader is alive, yet a
             proposal below the batching frontier is stuck undecided —
             the PBFT votes for it died in a crash window and nothing
             retransmits them. Two consecutive stalled ticks drive the
             group to its next live view; the New_view reproposals plus
             the migration sweep then re-drive the stranded pipeline.
             Decisions are final, so the last stall seq doubles as the
             scan cursor. *)
          match (node_of t a).n_pbft with
          | None -> ()
          | Some p ->
              let rec scan seq =
                if seq >= l.l_next_seq then 0
                else if Pbft.decided p seq = None then seq
                else scan (seq + 1)
              in
              let stuck = scan (max 1 l.l_stall_seq) in
              if stuck = 0 then begin
                l.l_stall_seq <- 0;
                l.l_stall_ticks <- 0
              end
              else if stuck = l.l_stall_seq then begin
                l.l_stall_ticks <- l.l_stall_ticks + 1;
                if l.l_stall_ticks >= 2 then begin
                  l.l_stall_ticks <- 0;
                  let rec first_live_view v =
                    let la = { Topology.g; n = Pbft.leader_of_view ~n ~view:v } in
                    if alive t la then v else first_live_view (v + 1)
                  in
                  let target = first_live_view (Pbft.view p + 1) in
                  List.iter
                    (fun b ->
                      match (node_of t b).n_pbft with
                      | Some q -> Pbft.start_view_change ~target q
                      | None -> ())
                    live
                end
              end
              else begin
                l.l_stall_seq <- stuck;
                l.l_stall_ticks <- 1
              end
        end
    | None ->
        if not (alive t l.l_addr) then begin
          let maxv =
            List.fold_left
              (fun acc a ->
                match (node_of t a).n_pbft with
                | Some p -> max acc (Pbft.view p)
                | None -> acc)
              0 live
          in
          let rec first_live_view v =
            let la = { Topology.g; n = Pbft.leader_of_view ~n ~view:v } in
            if alive t la then v else first_live_view (v + 1)
          in
          let target = first_live_view (max (maxv + 1) l.l_vc_target) in
          l.l_vc_target <- target;
          List.iter
            (fun a ->
              match (node_of t a).n_pbft with
              | Some p -> Pbft.start_view_change ~target p
              | None -> ())
            live
        end
  end

(* Armed lazily on the first node-level crash/recovery: fault-free runs
   schedule nothing, keeping their event streams bit-identical. Each
   group's tick chain lives on that group's shard — the arming event may
   itself be executing on another group's shard, so the first tick goes
   through [Sim.post] (the election period dwarfs any lookahead); the
   rescheduling [Sim.after] then stays on the right shard. *)
let arm_node_watchdogs t =
  if Atomic.compare_and_set t.node_watch false true then begin
    let period = t.cfg.Config.election_timeout_s in
    Array.iter
      (fun l ->
        let rec tick () =
          check_group_leadership t l;
          ignore (Sim.after (sim_of t l.l_gid) period tick)
        in
        Sim.post (sim_of t l.l_gid) (now t +. period) tick)
      t.leaders
  end

(* The Byzantine-adversary interposer (massbft_adversary) installs its
   message-rewriting hook here. [None] restores the exact fault-free
   send path. *)
let set_adversary t hook = t.adv_hook <- hook

(* Public arming for the adversary engine: an active Byzantine strategy
   (withheld pre-prepares, equivocation) can stall PBFT slots without
   any node ever crashing, so recovery needs the same per-group progress
   watchdogs a crash would have armed. *)
let arm_watchdogs t = arm_node_watchdogs t

let recover_group t g =
  (* Nodes come back up; the anti-entropy probes of the current
     instance-[g] leader catch the group's logs up, after which the
     leader hands instance [g] home via a Timeout_now (transfer-back,
     paper §V-C). No forced elections: a stale-log campaign could only
     depose the working takeover leader without being able to win. *)
  Topology.recover_group t.topo g;
  arm_node_watchdogs t

let crash_group t g =
  Topology.crash_group t.topo g;
  arm_node_watchdogs t

let crash_node t (a : Topology.addr) =
  if not (Topology.valid_addr t.topo a) then
    invalid_arg "Engine.crash_node: bad address";
  Topology.crash t.topo a;
  arm_node_watchdogs t

let recover_node t (a : Topology.addr) =
  if not (Topology.valid_addr t.topo a) then
    invalid_arg "Engine.recover_node: bad address";
  Topology.recover t.topo a;
  (* Post-recovery state transfer: adopt the group's current view so the
     replica votes in it rather than campaigning for a stale one. *)
  (match (node_of t a).n_pbft with
  | None -> ()
  | Some p ->
      let maxv =
        List.fold_left
          (fun acc b ->
            if alive t b && not (Topology.addr_equal a b) then
              match (node_of t b).n_pbft with
              | Some q -> max acc (Pbft.view q)
              | None -> acc
            else acc)
          0
          (Topology.group_nodes t.topo a.Topology.g)
      in
      Pbft.rejoin p ~view:maxv);
  arm_node_watchdogs t

(* ------------------------------------------------------------------ *)
(* Reconfiguration seam                                                *)
(* ------------------------------------------------------------------ *)

(* The reconfiguration controller (massbft_reconfig) spans every stage:
   it provisions topology slots, drives state transfer over the fetch
   lane, and applies membership flips at epoch boundaries. It gets the
   full shared context rather than a bespoke accessor per field. *)
let ctx (t : t) : Node_ctx.t = t

(* Enqueue a reconfiguration command at the coordinator (group 0). The
   batcher forms it into a zero-txn epoch-boundary entry that rides the
   ordinary pipeline, so its position in the total execution order — the
   epoch cut — is agreed by global consensus like any batch. *)
let submit_conf t cmd =
  let l = t.leaders.(0) in
  Queue.push cmd l.l_pending_conf;
  Batcher.try_batch t l

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let metrics t = t.metrics
let set_measure_from t at = t.metrics.Metrics.measure_from <- at
let executed_ids t ~gid = List.rev t.leaders.(gid).l_executed_rev
let now t = Node_ctx.now t
let n_groups t = t.ng
let group_size t g = Topology.group_size t.topo g
let config t = t.cfg
let acting_leader t ~gid = t.leaders.(gid).l_addr
let node_alive t a = alive t a
let executed_count t ~gid = t.leaders.(gid).l_executed_count
let raft_instances t = Array.length t.leaders.(0).l_rafts

let raft_commit_index t ~gid ~inst =
  Raft.commit_index t.leaders.(gid).l_rafts.(inst)

let replica_decided t ~g ~n ~seq =
  match t.nodes.(g).(n).n_pbft with
  | None -> None
  | Some p -> Pbft.decided p seq

let entry_digest t eid =
  match with_registry t (fun () -> Entry_tbl.find_opt t.entries eid) with
  | Some e -> Some e.digest
  | None -> None

let proposed_seqs t ~gid = t.leaders.(gid).l_next_seq - 1
let store_fingerprint t = Kvstore.fingerprint t.shared_store
let leader_store_fingerprint t ~gid = Kvstore.fingerprint t.leaders.(gid).l_store
let ledger_of t ~gid = t.leaders.(gid).l_ledger

let entries_executed_total t =
  Array.fold_left (fun acc l -> acc + l.l_executed_count) 0 t.leaders

let wan_bytes t = Topology.wan_bytes_sent t.topo
let lan_bytes t = Topology.lan_bytes_sent t.topo

let debug_dump t =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf
           "leader g%d alive=%b in_flight=%d next_seq=%d clk=%d execq=%d executed=%d retry=%d waitc=%d acceptp=%d fetch=%d\n"
           l.l_gid (alive t l.l_addr) l.l_in_flight l.l_next_seq l.l_clk
           (Queue.length l.l_exec_q) l.l_executed_count (List.length l.l_retry)
           (Entry_tbl.length l.l_waiting_content)
           (Hashtbl.length l.l_accept_pending)
           (Entry_tbl.length l.l_fetching));
      Buffer.add_string buf
        (Printf.sprintf "  fetch: out=%d queued=%d\n" l.l_fetch_out
           (Queue.length l.l_fetch_q));
      Buffer.add_string buf
        (Printf.sprintf "  wan backlog: leader=%.2fs last-node=%.2fs\n"
           (Topology.wan_uplink_backlog_s t.topo l.l_addr)
           (Topology.wan_uplink_backlog_s t.topo
              { Topology.g = l.l_gid;
                n = Topology.group_size t.topo l.l_gid - 1 }));
      Array.iteri
        (fun inst raft ->
          let blocking =
            match Raft.entry_at raft (Raft.commit_index raft + 1) with
            | Some (Entry_meta { eid }) ->
                "EM " ^ Types.entry_id_to_string eid
            | Some (Ts { eid; ts }) ->
                Printf.sprintf "Ts %s=%d" (Types.entry_id_to_string eid) ts
            | Some Noop -> "noop"
            | None -> "-"
          in
          Buffer.add_string buf
            (Printf.sprintf "  next-uncommitted: %s acks=[%s]\n" blocking
               (String.concat ","
                  (List.map string_of_int
                     (Raft.acks_for raft (Raft.commit_index raft + 1)))));
          Buffer.add_string buf
            (Printf.sprintf
               "  inst %d: role=%s term=%d last=%d commit=%d clk_of=%d heard=%.2f\n"
               inst
               (match Raft.role raft with
               | Raft.Leader -> "L"
               | Raft.Follower -> "F"
               | Raft.Candidate -> "C")
               (Raft.term raft) (Raft.last_index raft) (Raft.commit_index raft)
               l.l_clk_of.(inst) l.l_last_heard.(inst)))
        l.l_rafts;
      match l.l_orderer with
      | Some o ->
          for g = 0 to t.ng - 1 do
            Buffer.add_string buf
              (Printf.sprintf "  head[%d] = %s %s\n" g
                 (Types.entry_id_to_string (Orderer.head_of o g))
                 (Format.asprintf "%a" Vts.pp (Orderer.head_vts o g)))
          done
      | None -> ())
    t.leaders;
  Buffer.contents buf
