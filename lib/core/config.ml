type system = Massbft | Baseline | Geobft | Steward | Iss | Br | Ebr

let system_name = function
  | Massbft -> "MassBFT"
  | Baseline -> "Baseline"
  | Geobft -> "GeoBFT"
  | Steward -> "Steward"
  | Iss -> "ISS"
  | Br -> "BR"
  | Ebr -> "EBR"

let all_systems = [ Massbft; Baseline; Geobft; Steward; Iss; Br; Ebr ]

type replication = Leader_oneway | Bijective_full | Encoded_bijective
type global_consensus = Per_group_raft | Single_raft | Direct_broadcast
type ordering = Sync_rounds | Epoch_rounds of int | Async_vts | Global_log

let replication_of = function
  | Massbft | Ebr -> Encoded_bijective
  | Br -> Bijective_full
  | Baseline | Geobft | Steward | Iss -> Leader_oneway

let global_of = function
  | Massbft | Baseline | Iss | Br | Ebr -> Per_group_raft
  | Steward -> Single_raft
  | Geobft -> Direct_broadcast

let ordering_of ~epoch_rounds = function
  | Massbft -> Async_vts
  | Baseline | Geobft | Br | Ebr -> Sync_rounds
  | Iss -> Epoch_rounds epoch_rounds
  | Steward -> Global_log

type cost_model = {
  sig_verify_s : float;
  txn_exec_s : float;
  encode_per_byte_s : float;
  decode_per_byte_s : float;
}

let default_cost =
  {
    (* Calibrated effective per-transaction CPU budgets for the paper's
       8-core ecs.c6.2xlarge nodes. sig_verify covers the ED25519
       verify plus the hashing/deserialization that accompanies it in
       the real pipeline; together with execution it bounds a group's
       compute ceiling (the Figure 13a plateau / Figure 8d TPC-C
       bottleneck the paper attributes to signature verification;
       EXPERIMENTS.md discusses the calibration). Coding costs
       are sized so a ~100 KB entry's encode+rebuild lands near the
       reported 2.3 ms (Figure 11). *)
    sig_verify_s = 100e-6;
    txn_exec_s = 25e-6;
    encode_per_byte_s = 12e-9;
    decode_per_byte_s = 11e-9;
  }

type t = {
  system : system;
  workload : Massbft_workload.Workload.kind;
  workload_scale : float;
  batch_timeout_s : float;
  max_batch : int;
  pipeline : int;
  epoch_rounds : int;
  cost : cost_model;
  reorder : bool;
  overlapped_vts : bool;
  election_timeout_s : float;
  fetch_timeout_s : float;
  seed : int64;
  independent_stores : bool;
  byzantine_per_group : int;
  byzantine_from_s : float;
  crash_group_at : (int * float) option;
}

let default ?(system = Massbft) ?(workload = Massbft_workload.Workload.Ycsb_a) () =
  {
    system;
    workload;
    workload_scale = 0.01;
    batch_timeout_s = 0.020;
    max_batch = 500;
    pipeline = 8;
    epoch_rounds = 5;
    cost = default_cost;
    reorder = true;
    overlapped_vts = true;
    election_timeout_s = 1.5;
    fetch_timeout_s = 1.0;
    seed = 42L;
    independent_stores = false;
    byzantine_per_group = 0;
    byzantine_from_s = 0.0;
    crash_group_at = None;
  }
