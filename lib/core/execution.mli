(* Execution stage: ordered execution queue, Aria + ledger, metrics. *)

open Node_ctx

val enqueue : t -> leader -> Types.entry_id -> unit
(** Append an entry to the leader's execution queue in final order
    (stamping [ordered_at] for the group's own entries) and pump. *)

val pump : t -> leader -> unit
(** Execute queue-head entries whose content is held; arrange a fetch
    for a head that stays missing past the fetch timeout. *)

val observe : Node_ctx.t -> Massbft_obs.Sampler.t -> unit
(** Register the execution-pump gauges. Part of [Engine.set_obs]. *)
