(** Vector timestamps and the conservative precedence test of
    Algorithm 2.

    An entry's VTS has one element per group: element [j] is the value
    of group j's logical clock when it processed the entry. Elements are
    either {e set} (the real, replicated timestamp) or {e inferred} (a
    lower bound deduced from the stream — each group assigns
    non-decreasing timestamps, so the last value seen from group j
    bounds every later assignment).

    [prec e1 e2] returns [true] only when e1 is {e certain} to precede
    e2 under the eventual fully-set timestamps, whatever the inferred
    elements turn out to be — the property that makes the ordering
    decisions of different nodes consistent even though they learn
    timestamps in different interleavings. *)

type t = {
  gid : int;
  seq : int;
  vts : int array;  (** one element per group *)
  set : bool array;  (** [set.(j)] — is [vts.(j)] real (vs inferred)? *)
}

val create : ng:int -> gid:int -> seq:int -> t
(** All elements inferred at 0, except [vts.(gid) = seq] which is set —
    the deterministic self-assignment of the overlapped scheme
    (Fig. 7b). *)

val set_element : t -> int -> int -> unit
(** [set_element e j ts] records the real timestamp from group [j].
    Raises [Invalid_argument] if a *different* real value was already
    set (identical re-delivery is idempotent) or if [ts] is below the
    current inferred lower bound. *)

val infer_element : t -> int -> int -> unit
(** Raise the inferred lower bound of element [j] to [ts]; no-op if the
    element is set or already at least [ts]. *)

val complete : t -> bool
(** All elements set. *)

val prec : t -> t -> bool
(** The [Prec] function, lines 21-30 of Algorithm 2. *)

val compare_complete : t -> t -> int
(** Total order of Lemma V.4 over complete VTSs: lexicographic on vts,
    then seq, then gid. Raises [Invalid_argument] if either side is
    incomplete. *)

val pp : Format.formatter -> t -> unit
