(** Deterministic asynchronous log ordering — Algorithm 2 of the paper.

    The orderer consumes the per-group timestamp streams (each group's
    committed [Ts] records arrive in that group's Raft log order, hence
    with non-decreasing values) and emits entry ids in the unique global
    execution order of Lemma V.4. Inference over the not-yet-received
    elements (using each stream's last value as a lower bound) lets it
    release entries before their VTSs are complete, which is what frees
    fast groups from waiting for slow ones.

    All instances fed the same per-group streams emit the same sequence,
    regardless of how the streams interleave — the agreement half of
    Theorem V.6, which the property tests check over randomized
    interleavings. *)

type t

val create : ng:int -> on_execute:(Types.entry_id -> unit) -> t
(** [on_execute] fires in execution order; the embedder runs the actual
    state machine (and may have to await the entry's content first, but
    must preserve this order). *)

val on_timestamp : t -> from_gid:int -> eid:Types.entry_id -> ts:int -> unit
(** Group [from_gid] assigned clock value [ts] to entry [eid]
    ([eid.gid <> from_gid]; the proposer's own element is the implicit
    [seq]). Calls for a given [from_gid] must arrive with non-decreasing
    [ts] — the commit order of that group's Raft instance guarantees
    this. Raises [Invalid_argument] on a decreasing stream or on
    conflicting re-assignment. *)

val executed_count : t -> int

val head_of : t -> int -> Types.entry_id
(** The next-to-execute entry of group [i] ([heads] in Algorithm 2). *)

val head_vts : t -> int -> Vts.t
(** Its current (partially inferred) VTS — for diagnostics and tests. *)

val pending_timestamps : t -> int
(** Timestamps received for entries at or beyond the heads that have not
    yet been consumed by execution (diagnostic). *)

(** {1 Membership reconfiguration (massbft_reconfig)} *)

val set_active : t -> int -> bool -> unit
(** Flip group [i]'s participation in the order: inactive heads are
    neither candidates nor constraints. Re-runs the drain loop. Every
    orderer instance must flip at the same position in the execution
    order (the controller flips inside the epoch-boundary entry's
    execution). *)

val is_active : t -> int -> bool

val set_head : t -> int -> seq:int -> unit
(** Position a (re)joining group's head at its first post-join sequence
    number. *)

val copy_state : src:t -> into:t -> unit
(** State transfer onto a joining leader's fresh orderer: adopt [src]'s
    exact ordering state (pending VTSs, heads, stream bounds, executed
    count, mask), so identical subsequent streams yield the identical
    execution suffix. *)
