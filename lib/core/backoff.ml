(* Capped exponential backoff with deterministic jitter for retry
   paths (the replication fetch lane, reconfiguration state transfer).

   The jitter draw hashes (seed, salt, attempt) through a splitmix64
   finalizer instead of consuming a shared RNG stream: retry lanes on
   different shards cannot perturb each other's draws, and a rerun with
   the same seed reproduces every delay bit-exactly — which is what lets
   chaos drills that exercise retries shrink and replay. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

(* Delay before retry [attempt] (1-based): [base * 2^(attempt-1)] capped
   at [cap], stretched by a jitter factor in [1, 1.5) so concurrent
   retriers that failed together don't retry in lockstep. *)
let delay ~seed ~salt ~attempt ~base ~cap =
  let a = max 1 attempt in
  let exp = base *. Float.of_int (1 lsl min 16 (a - 1)) in
  let d = Float.min cap exp in
  let h =
    mix64
      Int64.(
        add
          (mul (add seed 1L) 0x9e3779b97f4a7c15L)
          (of_int ((salt * 0x01000193) lxor (a * 0x85ebca6b))))
  in
  let u = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53 in
  d *. (1.0 +. (0.5 *. u))
