(* Shared per-deployment context for the engine's stage modules.

   The engine is a thin conductor over explicit stages (Batcher,
   Local_consensus, Replication, Global_consensus, Ordering, Execution);
   this module owns everything they share: the wire-message vocabulary,
   the entry registry, per-node and per-leader state, CPU/NIC charging,
   the trace sink, and typed send/broadcast.

   Messages are delivered through the [deliver] field — the engine's
   dispatcher, installed once at construction (`let rec` ties the knot),
   replacing the old module-global `handler : (...) ref` forward
   declaration. Cross-stage reactions to content arrival go through
   [on_leader_content], a composition the engine also fixes at
   construction, so no stage needs a forward reference to another.

   [Config.system] is resolved exactly once, at [Engine.create], into
   the [strategies] record: one strategy value per Table II axis
   (replication / global consensus / ordering), each a record of
   closures the stages consult instead of re-matching configuration
   variants per message. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Cpu = Massbft_sim.Cpu
module Pbft = Massbft_consensus.Pbft
module Raft = Massbft_consensus.Raft
module W = Massbft_workload.Workload
module Txn = Massbft_workload.Txn
module Kvstore = Massbft_exec.Kvstore
module Aria = Massbft_exec.Aria
module Ledger = Massbft_exec.Ledger
module Trace = Massbft_trace.Trace
module Intmath = Massbft_util.Intmath
module Entry_tbl = Types.Entry_tbl
module ISet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)
(* ------------------------------------------------------------------ *)

(* Payloads of the global Raft instances: entry metadata (digest +
   certificate; the content travels by the replication strategy) and
   vector-timestamp records. *)
type rpayload =
  | Entry_meta of { eid : Types.entry_id }
  | Ts of { eid : Types.entry_id; ts : int }
  | Noop
      (* replaces an unrecoverable dead-group entry in a taken-over log *)

type msg =
  | Local of Pbft.msg  (* intra-group batch consensus *)
  | Chunk of { eid : Types.entry_id; root_tag : string; index : int }
  | Chunk_fwd of { eid : Types.entry_id; root_tag : string; index : int }
  | Copy of { eid : Types.entry_id }  (* full entry copy *)
  | Copy_fwd of { eid : Types.entry_id }
  | Raft_m of { inst : int; rmsg : rpayload Raft.msg }
  | Accept_req of { tag : string }
  | Accept_vote of { tag : string }
  | Accept_note of { eid : Types.entry_id }
  | Recv_note of { eid : Types.entry_id }  (* GeoBFT delivery credit *)
  | Fetch_req of { eid : Types.entry_id }

(* ------------------------------------------------------------------ *)
(* The adversary interposer seam                                       *)
(* ------------------------------------------------------------------ *)

(* Unlike the topology's fault hook — which sees only sizes and can
   merely drop, delay or duplicate — this hook (massbft_adversary) sees
   the typed message and may rewrite it per destination: forged digests,
   per-peer forks (equivocation), withheld or replayed protocol
   messages. [None] leaves the send on the exact fault-free path; the
   field itself is [None] outside adversary drills, so unconfigured runs
   are bit-identical to builds without the seam. *)
type adv_delivery = { adv_msg : msg; adv_delay_s : float }

type adv_hook =
  src:Topology.addr ->
  dst:Topology.addr ->
  bulk:bool ->
  bytes:int ->
  msg ->
  adv_delivery list option

(* ------------------------------------------------------------------ *)
(* Entry registry and per-node state                                   *)
(* ------------------------------------------------------------------ *)

type entry = {
  eid : Types.entry_id;
  digest : string;
  size : int;  (* wire bytes of the batch *)
  conf : string option;
      (* a reconfiguration command riding the pipeline as a zero-txn
         epoch-boundary entry: totally ordered like any batch, so every
         leader applies the membership flip at the same global position *)
  mutable txns : Txn.t list;
  mutable fb_txns : Txn.t list;  (* Aria fallback lane: retried conflicts *)
  txn_count : int;
  created_at : float;
  mutable decided_at : float;
  mutable committed_at : float;
  mutable ordered_at : float;
  outcome : Aria.outcome option Atomic.t;
      (* memoized execution; atomic so the parallel driver's domains
         publish/observe it safely (stale None only re-executes, which
         is deterministic and idempotent) *)
  exec_count : int Atomic.t;  (* leaders that executed it, for pruning *)
}

(* Symbolic receiver-side rebuild state: the bucket-classification logic
   of Rebuild, over virtual chunk identities (root tags instead of real
   Merkle roots). Byte-level behaviour is covered by Rebuild's tests;
   sizes here match Chunker.chunk_wire_size exactly. *)
type rsym = {
  rb_buckets : (string, ISet.t ref) Hashtbl.t;
  mutable rb_black : ISet.t;
  mutable rb_done : bool;
}

type node = {
  n_addr : Topology.addr;
  mutable n_pbft : Pbft.t option;
  n_content : unit Entry_tbl.t;
  n_rebuilds : rsym Entry_tbl.t;
  mutable n_byz : bool;
}

type leader = {
  l_gid : int;
  mutable l_addr : Topology.addr;
      (* the node currently acting as the group's leader. Fixed at node 0
         until a node-level crash of the acting leader drives a PBFT view
         change, after which the engine migrates the role (and this
         record — the group's replicated leader-side state) to the new
         view's live leader. *)
  mutable l_rafts : rpayload Raft.t array;  (* per instance; may be empty *)
  mutable l_orderer : Orderer.t option;
  l_store : Kvstore.t;
  l_ledger : Ledger.t;
  mutable l_clk : int;  (* own committed-entry count *)
  l_clk_of : int array;  (* last committed seq per instance *)
  mutable l_retry : Txn.t list;
  l_gen : W.t;
  mutable l_in_flight : int;
  mutable l_next_seq : int;
  mutable l_batch_pending : bool;
  l_exec_q : Types.entry_id Queue.t;
  mutable l_exec_busy : bool;
  mutable l_executed_rev : Types.entry_id list;
  mutable l_executed_count : int;
  l_accept_pending : (string, unit -> unit) Hashtbl.t;
  l_accept_votes : (string, ISet.t ref) Hashtbl.t;
      (* distinct voter node-ids per tag: duplicate deliveries (an
         injectable fault) must not fake a quorum *)
  l_accept_notes : int ref Entry_tbl.t;
  l_ts_mark : (string, unit) Hashtbl.t;  (* Ts proposed, key inst|gid|seq *)
  l_ts_seen : (string, unit) Hashtbl.t;  (* Ts committed (first wins) *)
  l_last_heard : float array;  (* per instance *)
  l_waiting_content : (unit -> unit) list ref Entry_tbl.t;
  l_committed_unexec : unit Entry_tbl.t;
  l_round_ready : unit Entry_tbl.t;
  mutable l_next_round : int;
  l_recv_notes : int ref Entry_tbl.t;
  l_steward_proposed : unit Entry_tbl.t;
  l_fetching : int ref Entry_tbl.t;  (* wanted content, with attempt count *)
  l_fetch_q : Types.entry_id Queue.t;
  mutable l_fetch_out : int;  (* outstanding fetch requests *)
  l_pending_conf : string Queue.t;
      (* reconfiguration commands awaiting an epoch-boundary entry; the
         batcher drains one per batch slot ahead of client txns *)
  l_deferred : Types.entry_id Queue.t;
      (* execution enqueues buffered while this group is not yet a
         member (a joining group catching up); replayed at cutover *)
  mutable l_skip_commits_below : int array;
      (* per global-consensus instance: commit indices at or below this
         are history a joining leader received via state transfer, not
         work to re-execute (raft backfill replays the whole log) *)
  l_stuck : (string, int ref) Hashtbl.t;
      (* ticks a led instance's head-of-line entry has been unackable *)
  mutable l_vc_target : int;
      (* highest local view-change target the engine's liveness watchdog
         has driven for this group (0 when never driven) *)
  mutable l_stall_seq : int;
      (* lowest proposed-but-undecided local sequence number at the last
         watchdog tick (0 when none); also the scan cursor — decisions
         below it are final *)
  mutable l_stall_ticks : int;
      (* consecutive watchdog ticks the same sequence number has been
         stuck; two ticks drive a view change to recover lost votes *)
}

(* ------------------------------------------------------------------ *)
(* The context and the strategy records                                *)
(* ------------------------------------------------------------------ *)

type t = {
  sim : Sim.t;
  topo : Topology.t;
  cfg : Config.t;
  ng : int;
  nodes : node array array;
  leaders : leader array;
  entries : entry Entry_tbl.t;
  by_digest : (string, entry) Hashtbl.t;
  reg_mu : Mutex.t;
      (* guards [entries]/[by_digest]: the only engine tables touched
         from more than one shard, hence more than one domain under the
         parallel driver. Uncontended in sequential runs. *)
  metrics_mu : Mutex.t;
      (* guards the non-atomic metrics aggregates (summaries,
         timeseries) for the same reason *)
  plans : Transfer_plan.t option array array;  (* [src_group][dst_group] *)
  metrics : Metrics.t;
  shared_store : Kvstore.t;
  strat : strategies;
  deliver : t -> src:Topology.addr -> dst:Topology.addr -> msg -> unit;
      (* the engine's message dispatcher, installed at create *)
  on_leader_content : t -> leader -> Types.entry_id -> unit;
      (* composed cross-stage reaction to content arriving at a leader *)
  mutable started : bool;
  node_watch : bool Atomic.t;
      (* per-group local-liveness watchdogs armed (lazily, on the first
         node-level crash/recover — fault-free runs schedule nothing).
         Atomic: concurrent fault events on two shards may race to be
         that first crash. *)
  mutable adv_hook : adv_hook option;
      (* the adversary interposer; [None] outside adversary drills *)
  mutable trace : Trace.t;
  (* -- live-membership state (massbft_reconfig). In reconfig-free runs
     every array below is the identity configuration and [reconfig_on]
     is false, so nothing off the static path is ever consulted. *)
  active_n : int array;
      (* active node slots per group: slots [0, active_n) participate in
         PBFT quorums; provisioned spares and retired slots do not *)
  g_member : bool array;
      (* instantaneous group membership: gates batching and replication
         sends (a dark group neither produces nor receives) *)
  member_from : int array;
  member_until : int array;
      (* round-indexed membership window [from, until) for the round-
         barrier ordering families; derived deterministically from the
         position of the epoch-boundary entry in the total order *)
  mutable reconfig_on : bool;  (* a reconfiguration plan is armed *)
  mutable reconfig_apply : (t -> leader -> entry -> unit) option;
      (* the reconfig controller's apply hook, invoked by the execution
         stage when a leader executes an epoch-boundary entry *)
  mutable reconfig_round : (t -> entry -> int -> unit) option;
      (* round-barrier seam: the first leader to close the round holding
         an epoch-boundary entry registers the round-indexed membership
         masks (idempotent, and deterministic because derived from the
         entry's position) before any leader evaluates the next round *)
  mutable fetch_retries : int;
      (* fetch-lane retries rescheduled by backoff, for the obs registry *)
}

(* The Table II axes as first-class strategy records, resolved from
   [Config.system] once at [Engine.create]. *)
and strategies = {
  repl : repl_strategy;
  glob : glob_strategy;
  ord : ord_strategy;
}

and repl_strategy = {
  r_on_decide : t -> node -> entry -> unit;
      (* per-node dissemination when local consensus decides a batch
         (chunks for encoded-bijective, full copies for bijective; the
         one-way strategy ships from the global-consensus stage instead) *)
  r_oneway : bool;
      (* leader ships f+1 one-way copies during the global phase *)
  r_coding_s : t -> entry -> float;  (* coding CPU charged per entry *)
}

and glob_strategy = {
  g_instances : int -> int;  (* Raft instances for [ng] groups *)
  g_start : t -> leader -> entry -> unit;
      (* the proposer's leader starts the global phase of its entry *)
  g_on_content : t -> leader -> Types.entry_id -> unit;
      (* content arrived at a leader (GeoBFT treats this as commitment) *)
  g_on_copy : t -> node -> Types.entry_id -> unit;
      (* a full copy landed (Steward forwards remote entries at G0) *)
}

and ord_strategy = {
  o_allows : t -> leader -> int -> bool;
      (* may the group propose sequence number [seq] yet? *)
  o_on_commit : t -> leader -> Types.entry_id -> unit;
      (* an entry committed globally (round systems mark the round,
         Steward's global log executes in commit order, VTS waits for
         timestamps instead) *)
  o_vts : bool;  (* asynchronous VTS ordering is active *)
  o_rounds : bool;  (* ordering advances by round barriers over groups *)
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let now t = Sim.now t.sim

(* The sim shard owning group [gid]'s events — the handle arm-time code
   (Engine.start, Batcher.start, heartbeats) must schedule per-group
   ticks on so the parallel driver runs them on the right domain.
   Events armed while *executing* land on the executing shard
   automatically (see {!Sim.at}). *)
let sim_of t gid = Topology.shard_of t.topo gid
let node_of t (a : Topology.addr) = t.nodes.(a.Topology.g).(a.Topology.n)

(* Leader addressing is dynamic: node 0 by deployment convention, until
   a crash of the acting leader migrates the role within the group.
   Routing to the *current* holder models leader discovery/redirect,
   which settles well under one WAN RTT in a real deployment. *)
let leader_addr t gid = t.leaders.(gid).l_addr

let is_acting_leader t (a : Topology.addr) =
  Topology.addr_equal t.leaders.(a.Topology.g).l_addr a
let alive t (a : Topology.addr) = Topology.alive t.topo a
let cpu_of t (a : Topology.addr) = Topology.cpu t.topo a

(* Registry access. The mutex is not reentrant: never call back into a
   [with_registry]-using helper from inside [f]. *)
let with_registry t f =
  Mutex.lock t.reg_mu;
  match f () with
  | v ->
      Mutex.unlock t.reg_mu;
      v
  | exception e ->
      Mutex.unlock t.reg_mu;
      raise e

let register_entry t (e : entry) =
  with_registry t (fun () ->
      Entry_tbl.replace t.entries e.eid e;
      Hashtbl.replace t.by_digest e.digest e)

let entry_by_digest t digest =
  with_registry t (fun () -> Hashtbl.find_opt t.by_digest digest)

let entries_snapshot t =
  with_registry t (fun () ->
      Entry_tbl.fold (fun _ e acc -> e :: acc) t.entries [])

let registered_entries t = with_registry t (fun () -> Entry_tbl.length t.entries)

let entry_of t eid =
  match with_registry t (fun () -> Entry_tbl.find_opt t.entries eid) with
  | Some e -> e
  | None -> invalid_arg ("Engine: unknown entry " ^ Types.entry_id_to_string eid)

(* Quorum math runs over *active* slots, not physical ones: provisioned
   spares and retired slots are outside every certificate. Identical to
   the physical size whenever no reconfiguration plan is armed. *)
let active_size t gid = t.active_n.(gid)
let group_f t gid = Intmath.pbft_f t.active_n.(gid)
let fg t = Intmath.raft_f t.ng
let member_now t gid = t.g_member.(gid)

let member_in_round t gid round =
  t.member_from.(gid) <= round && round < t.member_until.(gid)

let copy_bytes t eid =
  let e = entry_of t eid in
  e.size + Types.certificate_bytes ~n:t.active_n.(eid.Types.gid)

let send ?(bulk = false) t ~src ~dst ~bytes m =
  let ship m =
    Topology.send ~bulk t.topo ~src ~dst ~bytes (fun () ->
        t.deliver t ~src ~dst m)
  in
  match t.adv_hook with
  | None -> ship m
  | Some hook -> (
      match hook ~src ~dst ~bulk ~bytes m with
      | None -> ship m
      | Some ds ->
          (* An empty list withholds the message; a delayed delivery
             holds the rewritten message back before it even reaches the
             sender's NIC (the attacker chooses when to emit). *)
          List.iter
            (fun { adv_msg; adv_delay_s } ->
              if adv_delay_s <= 0.0 then ship adv_msg
              else
                ignore
                  (Sim.after t.sim adv_delay_s (fun () -> ship adv_msg)))
            ds)

(* Broadcasts cover the group's *active* slots only — a spare past the
   active prefix is dark until its activation epoch. *)
let broadcast_group ?(bulk = false) t ~src ~bytes m =
  let gid = src.Topology.g in
  for n = 0 to t.active_n.(gid) - 1 do
    let dst = { Topology.g = gid; n } in
    if not (Topology.addr_equal src dst) then send ~bulk t ~src ~dst ~bytes m
  done

let charge_cpu t (a : Topology.addr) seconds k = Cpu.submit (cpu_of t a) ~seconds k

(* Batch signature verification and Aria execution are embarrassingly
   parallel: spread the work over every core, continuing when the last
   slice finishes. *)
let charge_cpu_parallel t (a : Topology.addr) seconds k =
  let cores = Topology.cores t.topo in
  if seconds <= 0.0 then k ()
  else begin
    let slice = seconds /. float_of_int cores in
    let remaining = ref cores in
    for _ = 1 to cores do
      Cpu.submit (cpu_of t a) ~seconds:slice (fun () ->
          decr remaining;
          if !remaining = 0 then k ())
    done
  end

let measuring t created_at = created_at >= t.metrics.Metrics.measure_from

let trace_entry t ?(gid = -1) ?(node = -1) ?args (eid : Types.entry_id) name =
  if Trace.enabled t.trace then
    Trace.instant t.trace ~cat:"entry"
      ~gid:(if gid >= 0 then gid else eid.Types.gid)
      ~node ?args
      ~eid:(eid.Types.gid, eid.Types.seq)
      name

(* ------------------------------------------------------------------ *)
(* Content tracking                                                    *)
(* ------------------------------------------------------------------ *)

let has_content node eid = Entry_tbl.mem node.n_content eid

(* A node came to hold an entry's full content (formed it, rebuilt it
   from chunks, or received a copy). Stage reactions — fetch-slot
   release, ack guards, GeoBFT commitment, the execution pump — are
   composed into [on_leader_content] by the engine at create. *)
let content_event t (node : node) eid =
  if not (has_content node eid) then begin
    Entry_tbl.replace node.n_content eid ();
    if is_acting_leader t node.n_addr then
      t.on_leader_content t t.leaders.(node.n_addr.Topology.g) eid
  end

(* Release any callbacks parked on this entry's content (Lemma V.1's
   content-gated accepts park here). *)
let run_content_waiters (l : leader) eid =
  match Entry_tbl.find_opt l.l_waiting_content eid with
  | Some cbs ->
      let run = !cbs in
      Entry_tbl.remove l.l_waiting_content eid;
      List.iter (fun k -> k ()) run
  | None -> ()

let when_content t (l : leader) eid k =
  let node = node_of t l.l_addr in
  if has_content node eid then k ()
  else
    let cbs =
      match Entry_tbl.find_opt l.l_waiting_content eid with
      | Some r -> r
      | None ->
          let r = ref [] in
          Entry_tbl.replace l.l_waiting_content eid r;
          r
    in
    cbs := k :: !cbs

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let obs_group_labels (l : leader) = [ ("group", string_of_int l.l_gid) ]

let obs_node_labels (n : node) =
  [
    ("group", string_of_int n.n_addr.Topology.g);
    ("node", string_of_int n.n_addr.Topology.n);
  ]

let observe t sampler =
  let reg = Massbft_obs.Sampler.registry sampler in
  let get = Massbft_util.Stats.Counter.get in
  let cnt name help fn =
    Massbft_obs.Registry.counter_fn reg ~name ~help [] fn
  in
  cnt "massbft_txns_committed_total"
    "Aria-committed transactions inside the measurement window" (fun () ->
      get t.metrics.Metrics.committed_txns);
  cnt "massbft_txns_conflict_aborted_total"
    "Aria conflict aborts (retried through the fallback lane)" (fun () ->
      get t.metrics.Metrics.conflicted_txns);
  cnt "massbft_txns_logic_aborted_total"
    "Application-level aborts (executed, outcome abort)" (fun () ->
      get t.metrics.Metrics.logic_aborted_txns);
  cnt "massbft_entries_executed_total"
    "Entries fully executed inside the measurement window" (fun () ->
      get t.metrics.Metrics.entries_executed);
  cnt "massbft_fetch_retries_total"
    "Replication fetch-lane retries rescheduled with backoff" (fun () ->
      t.fetch_retries);
  Massbft_obs.Registry.gauge_fn reg ~name:"massbft_entries_registered"
    ~help:"Entries known to the registry (all states)" [] (fun () ->
      float_of_int (registered_entries t))
