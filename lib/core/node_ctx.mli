(* Shared per-deployment context for the engine's stage modules: wire
   messages, the entry registry, node/leader state, the strategy records
   resolved once from [Config.system], and the typed send/broadcast that
   replaces the old mutable dispatcher ref. See node_ctx.ml for the
   design notes. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Cpu = Massbft_sim.Cpu
module Pbft = Massbft_consensus.Pbft
module Raft = Massbft_consensus.Raft
module W = Massbft_workload.Workload
module Txn = Massbft_workload.Txn
module Kvstore = Massbft_exec.Kvstore
module Aria = Massbft_exec.Aria
module Ledger = Massbft_exec.Ledger
module Trace = Massbft_trace.Trace
module Intmath = Massbft_util.Intmath
module Entry_tbl = Types.Entry_tbl
module ISet : Set.S with type elt = int

type rpayload =
  | Entry_meta of { eid : Types.entry_id }
  | Ts of { eid : Types.entry_id; ts : int }
  | Noop

type msg =
  | Local of Pbft.msg
  | Chunk of { eid : Types.entry_id; root_tag : string; index : int }
  | Chunk_fwd of { eid : Types.entry_id; root_tag : string; index : int }
  | Copy of { eid : Types.entry_id }
  | Copy_fwd of { eid : Types.entry_id }
  | Raft_m of { inst : int; rmsg : rpayload Raft.msg }
  | Accept_req of { tag : string }
  | Accept_vote of { tag : string }
  | Accept_note of { eid : Types.entry_id }
  | Recv_note of { eid : Types.entry_id }
  | Fetch_req of { eid : Types.entry_id }

(** One delivery an adversary hook substitutes for an intercepted send:
    the (possibly rewritten) message, emitted after [adv_delay_s] extra
    seconds at the sender (0 = immediately). *)
type adv_delivery = { adv_msg : msg; adv_delay_s : float }

(** The adversary interposer seam (massbft_adversary): sees every typed
    message at the send site and may rewrite it per destination. [None]
    leaves the send on the exact fault-free path; [Some []] withholds
    the message; multiple deliveries replay it. *)
type adv_hook =
  src:Topology.addr ->
  dst:Topology.addr ->
  bulk:bool ->
  bytes:int ->
  msg ->
  adv_delivery list option

type entry = {
  eid : Types.entry_id;
  digest : string;
  size : int;
  conf : string option;
      (** a reconfiguration command riding the pipeline as a zero-txn
          epoch-boundary entry (see massbft_reconfig) *)
  mutable txns : Txn.t list;
  mutable fb_txns : Txn.t list;
  txn_count : int;
  created_at : float;
  mutable decided_at : float;
  mutable committed_at : float;
  mutable ordered_at : float;
  outcome : Aria.outcome option Atomic.t;
  exec_count : int Atomic.t;
}

type rsym = {
  rb_buckets : (string, ISet.t ref) Hashtbl.t;
  mutable rb_black : ISet.t;
  mutable rb_done : bool;
}

type node = {
  n_addr : Topology.addr;
  mutable n_pbft : Pbft.t option;
  n_content : unit Entry_tbl.t;
  n_rebuilds : rsym Entry_tbl.t;
  mutable n_byz : bool;
}

type leader = {
  l_gid : int;
  mutable l_addr : Topology.addr;
      (** the node currently acting as group leader; migrated by the
          engine after a PBFT view change deposes a crashed leader *)
  mutable l_rafts : rpayload Raft.t array;
  mutable l_orderer : Orderer.t option;
  l_store : Kvstore.t;
  l_ledger : Ledger.t;
  mutable l_clk : int;
  l_clk_of : int array;
  mutable l_retry : Txn.t list;
  l_gen : W.t;
  mutable l_in_flight : int;
  mutable l_next_seq : int;
  mutable l_batch_pending : bool;
  l_exec_q : Types.entry_id Queue.t;
  mutable l_exec_busy : bool;
  mutable l_executed_rev : Types.entry_id list;
  mutable l_executed_count : int;
  l_accept_pending : (string, unit -> unit) Hashtbl.t;
  l_accept_votes : (string, ISet.t ref) Hashtbl.t;
  l_accept_notes : int ref Entry_tbl.t;
  l_ts_mark : (string, unit) Hashtbl.t;
  l_ts_seen : (string, unit) Hashtbl.t;
  l_last_heard : float array;
  l_waiting_content : (unit -> unit) list ref Entry_tbl.t;
  l_committed_unexec : unit Entry_tbl.t;
  l_round_ready : unit Entry_tbl.t;
  mutable l_next_round : int;
  l_recv_notes : int ref Entry_tbl.t;
  l_steward_proposed : unit Entry_tbl.t;
  l_fetching : int ref Entry_tbl.t;
  l_fetch_q : Types.entry_id Queue.t;
  mutable l_fetch_out : int;
  l_pending_conf : string Queue.t;
  l_deferred : Types.entry_id Queue.t;
  mutable l_skip_commits_below : int array;
  l_stuck : (string, int ref) Hashtbl.t;
  mutable l_vc_target : int;
  mutable l_stall_seq : int;
  mutable l_stall_ticks : int;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  cfg : Config.t;
  ng : int;
  nodes : node array array;
  leaders : leader array;
  entries : entry Entry_tbl.t;
  by_digest : (string, entry) Hashtbl.t;
  reg_mu : Mutex.t;
      (** guards [entries] + [by_digest]; not reentrant — use the
          [with_registry]/[register_entry]/[entry_by_digest] helpers and
          never nest them *)
  metrics_mu : Mutex.t;
      (** guards the non-atomic metrics structures (summaries,
          timeseries) against concurrent proposer shards *)
  plans : Transfer_plan.t option array array;
  metrics : Metrics.t;
  shared_store : Kvstore.t;
  strat : strategies;
  deliver : t -> src:Topology.addr -> dst:Topology.addr -> msg -> unit;
  on_leader_content : t -> leader -> Types.entry_id -> unit;
  mutable started : bool;
  node_watch : bool Atomic.t;
  mutable adv_hook : adv_hook option;
  mutable trace : Trace.t;
  active_n : int array;
      (** active node slots per group — quorum math runs over these, not
          the physical sizes (identical without a reconfiguration) *)
  g_member : bool array;  (** instantaneous group membership *)
  member_from : int array;
  member_until : int array;
      (** round-indexed membership window for round-barrier ordering *)
  mutable reconfig_on : bool;
  mutable reconfig_apply : (t -> leader -> entry -> unit) option;
      (** the reconfig controller's apply hook, fired at execution of an
          epoch-boundary entry *)
  mutable reconfig_round : (t -> entry -> int -> unit) option;
      (** fired (idempotently) when a round barrier closes over an
          epoch-boundary entry, before the next round is evaluated *)
  mutable fetch_retries : int;
}

and strategies = {
  repl : repl_strategy;
  glob : glob_strategy;
  ord : ord_strategy;
}

and repl_strategy = {
  r_on_decide : t -> node -> entry -> unit;
  r_oneway : bool;
  r_coding_s : t -> entry -> float;
}

and glob_strategy = {
  g_instances : int -> int;
  g_start : t -> leader -> entry -> unit;
  g_on_content : t -> leader -> Types.entry_id -> unit;
  g_on_copy : t -> node -> Types.entry_id -> unit;
}

and ord_strategy = {
  o_allows : t -> leader -> int -> bool;
  o_on_commit : t -> leader -> Types.entry_id -> unit;
  o_vts : bool;
  o_rounds : bool;
}

val now : t -> float

val sim_of : t -> int -> Sim.t
(** The shard owning group [gid]'s events (see [Topology.shard_of]).
    Arm-time scheduling for a group's timer chains must go through this
    handle so the parallel driver runs them on the owning domain. *)

val with_registry : t -> (unit -> 'a) -> 'a
(** Run [f] holding [reg_mu]. Not reentrant: never call another
    registry helper (or [entry_of]) from inside [f]. *)

val register_entry : t -> entry -> unit
val entry_by_digest : t -> string -> entry option
val entries_snapshot : t -> entry list
val registered_entries : t -> int

val node_of : t -> Topology.addr -> node
val leader_addr : t -> int -> Topology.addr
(** The address currently acting as the group's leader (node 0 until a
    view-change migration moves it). *)

val is_acting_leader : t -> Topology.addr -> bool
val alive : t -> Topology.addr -> bool
val cpu_of : t -> Topology.addr -> Cpu.t
val entry_of : t -> Types.entry_id -> entry
val active_size : t -> int -> int
val group_f : t -> int -> int
val fg : t -> int

val member_now : t -> int -> bool
(** Is the group a member of the current configuration (instantaneous —
    gates batching and replication sends)? *)

val member_in_round : t -> int -> int -> bool
(** [member_in_round t gid round]: does the round-barrier ordering
    expect a contribution from [gid] at [round]? *)

val copy_bytes : t -> Types.entry_id -> int
(** Wire size of a full entry copy: batch bytes + the sender group's
    PBFT certificate. *)

val send :
  ?bulk:bool ->
  t ->
  src:Topology.addr ->
  dst:Topology.addr ->
  bytes:int ->
  msg ->
  unit
(** Typed send: charges the topology's NICs/links, then hands the
    message to the engine's dispatcher ([t.deliver]). *)

val broadcast_group :
  ?bulk:bool -> t -> src:Topology.addr -> bytes:int -> msg -> unit

val charge_cpu : t -> Topology.addr -> float -> (unit -> unit) -> unit

val charge_cpu_parallel : t -> Topology.addr -> float -> (unit -> unit) -> unit
(** Spread an embarrassingly parallel cost over every core of the
    node, continuing when the last slice finishes. *)

val measuring : t -> float -> bool
(** Did this entry originate inside the measurement window? *)

val trace_entry :
  t ->
  ?gid:int ->
  ?node:int ->
  ?args:(string * Trace.value) list ->
  Types.entry_id ->
  string ->
  unit

val has_content : node -> Types.entry_id -> bool

val content_event : t -> node -> Types.entry_id -> unit
(** The node came to hold the entry's full content. Leader-side
    reactions run through [t.on_leader_content]. *)

val run_content_waiters : leader -> Types.entry_id -> unit
(** Release the callbacks parked on the entry's content (content-gated
    Raft acks, Lemma V.1). *)

val when_content : t -> leader -> Types.entry_id -> (unit -> unit) -> unit

(** {1 Observability} *)

val obs_group_labels : leader -> Massbft_obs.Registry.labels
val obs_node_labels : node -> Massbft_obs.Registry.labels
(** The shared label conventions ([group], [node]) so every stage's
    instruments join on the same keys. *)

val observe : t -> Massbft_obs.Sampler.t -> unit
(** Register the deployment-wide instruments (transaction totals as
    polled counters, the entry-registry size) in the sampler's
    registry. Part of [Engine.set_obs]. *)
