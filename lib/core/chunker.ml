module Merkle = Massbft_crypto.Merkle
module Erasure = Massbft_codec.Erasure

type chunk = {
  index : int;
  payload : string;
  root : string;
  proof : Merkle.proof;
}

(* Per-entry cost is slice arithmetic plus the Merkle tree only:
   Erasure memoizes the Reed-Solomon codec per (data, parity), so the
   encoding-matrix construction is paid once per transfer-plan geometry,
   not once per entry. *)
let encode ~(plan : Transfer_plan.t) ~entry =
  let payloads =
    Erasure.encode ~data:plan.Transfer_plan.n_data
      ~parity:plan.Transfer_plan.n_parity entry
  in
  let tree = Merkle.build (Array.to_list payloads) in
  let root = Merkle.root tree in
  Array.mapi
    (fun index payload -> { index; payload; root; proof = Merkle.prove tree index })
    payloads

let chunk_wire_size ~(plan : Transfer_plan.t) ~entry_len =
  let payload =
    Erasure.chunk_size ~data:plan.Transfer_plan.n_data
      ~parity:plan.Transfer_plan.n_parity ~entry_len
  in
  let proof_len =
    (32 * Massbft_util.Intmath.log2_ceil plan.Transfer_plan.n_total) + 4
  in
  payload + Types.digest_bytes + proof_len + Types.header_bytes

let verify_chunk c =
  c.proof.Merkle.leaf_index = c.index
  && Merkle.verify ~root:c.root ~leaf:c.payload c.proof

let total_wire_bytes ~plan ~entry_len =
  plan.Transfer_plan.n_total * chunk_wire_size ~plan ~entry_len
