(** Bottleneck attribution: post-processes a {!Sampler}'s recorded rows
    to name the binding resource of a run — machine-checkable
    validation of the paper's saturation claims (leader WAN uplink for
    the Baseline, Figures 1b/13a; signature-verification CPU for large
    MassBFT groups, Figure 13a). *)

type verdict = {
  resource : string;  (** e.g. ["g0/n0 wan_up"] or ["g1/n3 cpu"] *)
  mean : float;  (** mean busy fraction over the recorded windows *)
  peak : float;  (** highest single-window busy fraction *)
  saturated_share : float;
      (** fraction of windows with busy fraction [>= threshold] *)
  windows : int;  (** number of recorded windows *)
}

val default_threshold : float
(** [0.95]. *)

val analyze : ?threshold:float -> Sampler.t -> verdict list
(** One verdict per resource-tagged column, sorted most-binding first:
    by saturated share, then mean, then name — deterministic. Empty
    when no rows were recorded. *)

val binding : ?threshold:float -> Sampler.t -> verdict option
(** The head of {!analyze}: the resource that saturated for the largest
    share of the run. *)

val report : ?threshold:float -> ?top:int -> Sampler.t -> string
(** Human-readable summary: the binding resource in the
    ["g0/n0 wan_up >=95% busy for 87% of the measurement window"]
    style, then a table of the [top] (default 10) resources. *)
