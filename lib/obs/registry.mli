(** A registry of labeled instruments, the aggregate counterpart to
    [massbft_trace]'s per-event view. Instruments are keyed by
    [(name, labels)]: one metric {e family} per name (with a single
    HELP/TYPE), one {e series} per distinct label set, mirroring the
    Prometheus data model every production consensus deployment
    exports.

    Registration happens once, at [Engine.create]/[Sampler] setup time;
    the returned handles are then updated with plain field writes, so
    the instrumented hot path costs one store per update and allocates
    nothing. *)

type t

val create : unit -> t

type labels = (string * string) list
(** Label pairs. Order is irrelevant: series identity uses the
    key-sorted form. Duplicate keys keep an arbitrary single entry. *)

type kind = Counter | Gauge | Histogram

val kind_to_string : kind -> string

(** {1 Instruments}

    Registering two series with the same name must use the same
    instrument kind, and the same [(name, labels)] pair may only be
    registered once; violations raise [Invalid_argument]. Metric names
    must match [[A-Za-z_][A-Za-z0-9_]*]. *)

type counter
(** A monotonically non-decreasing integer. *)

val counter : t -> name:string -> ?help:string -> labels -> counter
val inc : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be non-negative. *)

val counter_value : counter -> int

val counter_fn : t -> name:string -> ?help:string -> labels -> (unit -> int) -> unit
(** A polled counter, evaluated at {!collect} time: for monotonic
    totals that already live in protocol state (committed transactions,
    executed entries) — same read-only rationale as {!gauge_fn}. *)

type gauge
(** A settable float (last write wins). *)

val gauge : t -> name:string -> ?help:string -> labels -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_fn : t -> name:string -> ?help:string -> labels -> (unit -> float) -> unit
(** A polled gauge: the closure is evaluated at {!collect} time. Used
    for values that already live in protocol state (queue lengths,
    roles) so sampling stays read-only. *)

type histogram
(** Fixed-bucket distribution: observations land in the first bucket
    whose upper bound is [>=] the value, or the implicit [+inf]
    overflow bucket. *)

val histogram :
  t -> name:string -> ?help:string -> buckets:float array -> labels -> histogram
(** [buckets] are strictly increasing finite upper bounds; the [+inf]
    bucket is implicit. The array is copied. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots}

    Exporters consume an immutable snapshot; polled gauges are
    evaluated here. *)

type point =
  | P_counter of int
  | P_gauge of float
  | P_histogram of { cumulative : (float * int) list; sum : float; count : int }
      (** [cumulative] pairs each finite bound with the count of
          observations [<=] it (Prometheus [le] semantics); [count]
          includes the overflow bucket. *)

type sample = { name : string; help : string; kind : kind; labels : labels; point : point }

val collect : t -> sample list
(** All series, sorted by name then by label set — deterministic across
    runs, so exported text is byte-stable. *)
