type verdict = {
  resource : string;
  mean : float;
  peak : float;
  saturated_share : float;
  windows : int;
}

let default_threshold = 0.95

let analyze ?(threshold = default_threshold) sampler =
  let rows = Sampler.rows sampler in
  let n = List.length rows in
  if n = 0 then []
  else
    Sampler.resource_columns sampler
    |> List.map (fun (i, resource) ->
           let sum = ref 0.0 and peak = ref 0.0 and sat = ref 0 in
           List.iter
             (fun (_, row) ->
               let v = row.(i) in
               sum := !sum +. v;
               if v > !peak then peak := v;
               if v >= threshold then incr sat)
             rows;
           {
             resource;
             mean = !sum /. float_of_int n;
             peak = !peak;
             saturated_share = float_of_int !sat /. float_of_int n;
             windows = n;
           })
    |> List.sort (fun a b ->
           match compare b.saturated_share a.saturated_share with
           | 0 -> (
               match compare b.mean a.mean with
               | 0 -> compare a.resource b.resource
               | c -> c)
           | c -> c)

let binding ?threshold sampler =
  match analyze ?threshold sampler with [] -> None | v :: _ -> Some v

let pct v = 100.0 *. v

let describe ~threshold v =
  Printf.sprintf "%s >=%.0f%% busy for %.1f%% of the measurement window (mean %.2f, peak %.2f)"
    v.resource (pct threshold) (pct v.saturated_share) v.mean v.peak

let report ?(threshold = default_threshold) ?(top = 10) sampler =
  let buf = Buffer.create 1024 in
  match analyze ~threshold sampler with
  | [] ->
      Buffer.add_string buf "saturation: no samples recorded\n";
      Buffer.contents buf
  | best :: _ as verdicts ->
      Buffer.add_string buf
        (Printf.sprintf
           "Saturation report: %d windows of %.3f s, threshold %.0f%%\n"
           best.windows (Sampler.period sampler) (pct threshold));
      Buffer.add_string buf
        (Printf.sprintf "binding resource: %s\n" (describe ~threshold best));
      List.iteri
        (fun i v ->
          if i < top then
            Buffer.add_string buf
              (Printf.sprintf "  %-24s mean %5.2f  peak %5.2f  saturated %5.1f%%\n"
                 v.resource v.mean v.peak (pct v.saturated_share)))
        verdicts;
      let n = List.length verdicts in
      if n > top then
        Buffer.add_string buf
          (Printf.sprintf "  ... %d more resources below\n" (n - top));
      Buffer.contents buf
