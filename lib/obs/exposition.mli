(** Renders a {!Registry.t} snapshot in interchange formats. Both
    exporters are deterministic: series order comes from
    {!Registry.collect} and floats use fixed formats, so equal
    registries produce byte-identical text. *)

val prometheus : Registry.t -> string
(** Prometheus text exposition (version 0.0.4): one [# HELP] (when
    non-empty) and [# TYPE] line per family, then one line per series.
    Histograms expand to cumulative [_bucket] lines with [le] labels
    (plus [+Inf]), [_sum] and [_count]. Label values are escaped per
    the format (backslash, double quote, newline). *)

val json : Registry.t -> string
(** A JSON array of series objects with [name], [kind], [labels], and
    either [value] or [buckets]/[sum]/[count] fields. *)

val escape_label_value : string -> string
(** Exposed for the round-trip parser test. *)

val fmt_float : float -> string
(** Fixed float rendering shared by both exporters (integral values
    print without a fraction). *)
