let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Prometheus label-value escaping: backslash, double-quote, newline. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text escaping: backslash and newline only (quotes are legal). *)
let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_block labels =
  match labels with
  | [] -> ""
  | labels ->
      let pairs =
        List.map
          (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
          labels
      in
      "{" ^ String.concat "," pairs ^ "}"

(* le-labelled block for histogram bucket lines. *)
let bucket_label_block labels le =
  let pairs =
    List.map
      (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
      labels
    @ [ Printf.sprintf "le=\"%s\"" le ]
  in
  "{" ^ String.concat "," pairs ^ "}"

let prometheus registry =
  let buf = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun (s : Registry.sample) ->
      if s.name <> !last_header then begin
        last_header := s.name;
        if s.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.name (escape_help s.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name
             (Registry.kind_to_string s.kind))
      end;
      match s.point with
      | Registry.P_counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (label_block s.labels) c)
      | Registry.P_gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (label_block s.labels)
               (fmt_float g))
      | Registry.P_histogram { cumulative; sum; count } ->
          List.iter
            (fun (bound, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (bucket_label_block s.labels (fmt_float bound))
                   c))
            cumulative;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.name
               (bucket_label_block s.labels "+Inf")
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name (label_block s.labels)
               (fmt_float sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (label_block s.labels)
               count))
    (Registry.collect registry);
  Buffer.contents buf

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_json_labels buf labels =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_json_string buf v)
    labels;
  Buffer.add_char buf '}'

let json registry =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i (s : Registry.sample) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  {\"name\":";
      add_json_string buf s.name;
      Buffer.add_string buf ",\"kind\":";
      add_json_string buf (Registry.kind_to_string s.kind);
      Buffer.add_string buf ",\"labels\":";
      add_json_labels buf s.labels;
      (match s.point with
      | Registry.P_counter c ->
          Buffer.add_string buf (Printf.sprintf ",\"value\":%d" c)
      | Registry.P_gauge g ->
          Buffer.add_string buf
            (Printf.sprintf ",\"value\":%s" (fmt_float g))
      | Registry.P_histogram { cumulative; sum; count } ->
          Buffer.add_string buf ",\"buckets\":[";
          List.iteri
            (fun j (bound, c) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "{\"le\":%s,\"count\":%d}" (fmt_float bound) c))
            cumulative;
          Buffer.add_string buf
            (Printf.sprintf "],\"sum\":%s,\"count\":%d" (fmt_float sum) count));
      Buffer.add_string buf "}")
    (Registry.collect registry);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
