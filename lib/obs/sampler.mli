(** A periodic in-sim resource sampler. Every [period] of virtual time
    it evaluates a fixed set of read-only {e probes} — NIC busy
    fractions and backlogs, CPU utilization and queue depth, stage
    in-flight gauges — records one row per tick, and mirrors each value
    into a {!Registry.t} gauge so the exporters always show the last
    sample.

    Probes must never mutate simulation state: with a sampler attached,
    protocol results are identical to a run without one (asserted in
    the test suite). When no sampler is attached nothing is scheduled
    at all — observability off is genuinely zero-cost.

    An attached sampler reschedules itself forever, so drive the
    simulation with [Sim.run ~until] (as the harness does);
    [Sim.run_until_idle] would never return. *)

type t

val create : ?period:float -> Registry.t -> t
(** [period] is the virtual-time tick, default [0.1] s; must be
    positive. *)

val registry : t -> Registry.t
val period : t -> float

val add_probe :
  t ->
  name:string ->
  ?help:string ->
  labels:Registry.labels ->
  ?resource:string ->
  (now:float -> dt:float -> float) ->
  unit
(** Registers a probe and its backing registry gauge. The closure
    receives the tick's virtual time and the window length [dt] since
    the previous tick; windowed probes (busy fractions) keep their own
    previous-cumulative reference and return [delta /. dt] capped at 1.
    [resource] marks the column as a saturation signal in [0, 1] for
    {!Saturation} attribution (e.g. ["g0/n0 wan_up"]); leave it unset
    for gauges that are not busy fractions. Probes cannot be added
    after {!attach} (columns are frozen). *)

val watch_topology : t -> Massbft_sim.Topology.t -> unit
(** Registers the standard fabric probes for every node: per-link,
    per-service-class [massbft_nic_busy_fraction] (resource-tagged;
    control-class resources get a [".ctrl"] suffix) and
    [massbft_nic_backlog_seconds], plus [massbft_cpu_utilization]
    (resource-tagged) and [massbft_cpu_queue_depth]. *)

val watch_sim : t -> Massbft_sim.Sim.t -> unit
(** Registers the event-loop probes: [massbft_sim_pending_events] (the
    incrementally-maintained live-event count — O(1) per tick) and
    [massbft_sim_dispatch_rate] (events fired per simulated second over
    the window). Neither is resource-tagged: queue depth is a health
    signal, not a saturation fraction. *)

val attach : t -> Massbft_sim.Sim.t -> unit
(** Freezes the column set and schedules the recurring tick. May be
    called once; ticks with an empty window (e.g. a tick racing the
    run's end) record no row. *)

val attached : t -> bool

val reset : t -> unit
(** Drops the rows recorded so far (windowed probes keep their
    cumulative references, so the next row is still a clean window).
    The harness calls this at the end of warm-up so saturation shares
    cover only the measurement window. *)

val columns : t -> (string * Registry.labels) list
(** Column identities, in registration order. *)

val resource_columns : t -> (int * string) list
(** Indices (into row arrays) and resource names of the
    saturation-signal columns. *)

val rows : t -> (float * float array) list
(** Recorded ticks in chronological order; each array aligns with
    {!columns}. *)

val tick_count : t -> int

val column_index : t -> name:string -> labels:Registry.labels -> int option
(** Index of one column by identity (label order irrelevant). *)

val column_mean : t -> name:string -> labels:Registry.labels -> float option
(** Mean of one column over the recorded rows ([Some 0.] when no rows
    yet, [None] when the column doesn't exist). *)

val csv : t -> string
(** One header line ([time] then [name{k=v;...}] per column — label
    blocks use [';'] so cells contain no commas) and one line per
    recorded tick. *)
