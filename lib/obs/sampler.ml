module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Nic = Massbft_sim.Nic
module Cpu = Massbft_sim.Cpu

type probe = {
  p_name : string;
  p_labels : Registry.labels;
  p_resource : string option;
  p_gauge : Registry.gauge;
  p_fn : now:float -> dt:float -> float;
}

type t = {
  reg : Registry.t;
  tick_s : float;
  mutable probes : probe list;  (* newest first *)
  mutable frozen : probe array;  (* registration order; set at attach *)
  mutable rows : (float * float array) list;  (* newest first *)
  mutable attached : bool;
  mutable last_tick : float;
}

let default_period = 0.1

let create ?(period = default_period) reg =
  if period <= 0.0 then invalid_arg "Sampler.create: period must be positive";
  {
    reg;
    tick_s = period;
    probes = [];
    frozen = [||];
    rows = [];
    attached = false;
    last_tick = 0.0;
  }

let registry t = t.reg
let period t = t.tick_s
let attached t = t.attached

let add_probe t ~name ?help ~labels ?resource fn =
  if t.attached then
    invalid_arg "Sampler.add_probe: sampler already attached";
  let g = Registry.gauge t.reg ~name ?help labels in
  t.probes <-
    { p_name = name; p_labels = labels; p_resource = resource; p_gauge = g; p_fn = fn }
    :: t.probes

(* ---- standard fabric probes ---- *)

let class_tag = function Nic.Bulk -> "bulk" | Nic.Ctrl -> "ctrl"

let watch_topology t topo =
  List.iter
    (fun a ->
      let where = Topology.addr_to_string a in
      let base =
        [
          ("group", string_of_int a.Topology.g);
          ("node", string_of_int a.Topology.n);
        ]
      in
      List.iter
        (fun link ->
          let nic = Topology.nic topo a link in
          let lname = Topology.link_to_string link in
          List.iter
            (fun cls ->
              let labels =
                base @ [ ("link", lname); ("class", class_tag cls) ]
              in
              let resource =
                match cls with
                | Nic.Bulk -> where ^ " " ^ lname
                | Nic.Ctrl -> where ^ " " ^ lname ^ ".ctrl"
              in
              let prev = ref (Nic.class_busy_seconds nic cls) in
              add_probe t ~name:"massbft_nic_busy_fraction"
                ~help:
                  "Fraction of the sampling window the link spent serializing \
                   this service class (offered load, capped at 1)"
                ~labels ~resource
                (fun ~now:_ ~dt ->
                  let cur = Nic.class_busy_seconds nic cls in
                  let d = cur -. !prev in
                  prev := cur;
                  if dt <= 0.0 then 0.0 else Float.min 1.0 (d /. dt));
              add_probe t ~name:"massbft_nic_backlog_seconds"
                ~help:"Seconds of transmission queued in this service class"
                ~labels
                (fun ~now:_ ~dt:_ -> Nic.class_backlog_s nic cls))
            [ Nic.Bulk; Nic.Ctrl ])
        Topology.all_links;
      let cpu = Topology.cpu topo a in
      let cores = float_of_int (Topology.cores topo) in
      let prev = ref (Cpu.busy_seconds cpu) in
      add_probe t ~name:"massbft_cpu_utilization"
        ~help:
          "Fraction of core-time the node's CPU spent busy during the \
           sampling window (capped at 1)"
        ~labels:base ~resource:(where ^ " cpu")
        (fun ~now:_ ~dt ->
          let cur = Cpu.busy_seconds cpu in
          let d = cur -. !prev in
          prev := cur;
          if dt <= 0.0 then 0.0 else Float.min 1.0 (d /. (dt *. cores)));
      add_probe t ~name:"massbft_cpu_queue_depth"
        ~help:"Tasks submitted to the node's CPU but not yet completed"
        ~labels:base
        (fun ~now:_ ~dt:_ -> float_of_int (Cpu.queue_depth cpu)))
    (Topology.nodes topo)

let watch_sim t sim =
  (* O(shards) reads off the event loop itself: each shard's pending
     count is maintained incrementally, so polling costs nothing
     regardless of queue depth. The [_total] aggregates keep the metric
     names and meanings stable whether the scheduler runs one shard or
     one per group. *)
  add_probe t ~name:"massbft_sim_pending_events"
    ~help:"Scheduled (uncancelled, unfired) events across all shard queues"
    ~labels:[]
    (fun ~now:_ ~dt:_ -> float_of_int (Sim.pending_total sim));
  let prev = ref (Sim.dispatched_total sim) in
  add_probe t ~name:"massbft_sim_dispatch_rate"
    ~help:"Events fired per simulated second during the sampling window"
    ~labels:[]
    (fun ~now:_ ~dt ->
      let cur = Sim.dispatched_total sim in
      let d = cur - !prev in
      prev := cur;
      if dt <= 0.0 then 0.0 else float_of_int d /. dt)

(* ---- the tick loop ---- *)

let attach t sim =
  if t.attached then invalid_arg "Sampler.attach: already attached";
  t.attached <- true;
  t.frozen <- Array.of_list (List.rev t.probes);
  t.last_tick <- Sim.now sim;
  let rec tick () =
    let now = Sim.now sim in
    let dt = now -. t.last_tick in
    if dt > 0.0 then begin
      let row =
        Array.map
          (fun p ->
            let v = p.p_fn ~now ~dt in
            Registry.set p.p_gauge v;
            v)
          t.frozen
      in
      t.rows <- (now, row) :: t.rows;
      t.last_tick <- now
    end;
    ignore (Sim.after sim t.tick_s tick)
  in
  ignore (Sim.after sim t.tick_s tick)

let reset t = t.rows <- []

let columns t =
  let ps = if t.attached then Array.to_list t.frozen else List.rev t.probes in
  List.map (fun p -> (p.p_name, p.p_labels)) ps

let resource_columns t =
  let ps = if t.attached then Array.to_list t.frozen else List.rev t.probes in
  List.filter_map
    (function i, Some r -> Some (i, r) | _, None -> None)
    (List.mapi (fun i p -> (i, p.p_resource)) ps)

let rows t = List.rev t.rows
let tick_count t = List.length t.rows

let canon labels = List.sort compare labels

let column_index t ~name ~labels =
  let labels = canon labels in
  let rec find i = function
    | [] -> None
    | (n, ls) :: rest ->
        if n = name && canon ls = labels then Some i else find (i + 1) rest
  in
  find 0 (columns t)

let column_mean t ~name ~labels =
  match column_index t ~name ~labels with
  | None -> None
  | Some i ->
      let n = List.length t.rows in
      if n = 0 then Some 0.0
      else
        Some
          (List.fold_left (fun acc (_, row) -> acc +. row.(i)) 0.0 t.rows
          /. float_of_int n)

(* Label blocks in CSV headers use ';' as the pair separator so cells
   never contain commas and need no quoting. *)
let column_id name labels =
  match labels with
  | [] -> name
  | labels ->
      name ^ "{"
      ^ String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  List.iter
    (fun (name, labels) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (column_id name labels))
    (columns t);
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, row) ->
      Buffer.add_string buf (Printf.sprintf "%.6f" time);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (Exposition.fmt_float v))
        row;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf
