type labels = (string * string) list

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  h_bounds : float array;  (* ascending upper bounds, exclusive of +inf *)
  h_counts : int array;  (* length = bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
}

type value =
  | V_counter of counter
  | V_counter_fn of (unit -> int)
  | V_gauge of gauge
  | V_gauge_fn of (unit -> float)
  | V_histogram of histogram

type series = { s_labels : labels; s_value : value }

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  mutable f_series : series list;  (* newest first; collect re-sorts *)
}

type t = { mutable families : family list (* newest first *) }

let create () = { families = [] }

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let canonical_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let family t ~name ~help kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  match List.find_opt (fun f -> f.f_name = name) t.families with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Registry: %s already registered as a %s" name
             (kind_to_string f.f_kind));
      f
  | None ->
      let f = { f_name = name; f_help = help; f_kind = kind; f_series = [] } in
      t.families <- f :: t.families;
      f

let add_series f ~labels value =
  let labels = canonical_labels labels in
  if List.exists (fun s -> s.s_labels = labels) f.f_series then
    invalid_arg
      (Printf.sprintf "Registry: duplicate series for %s" f.f_name);
  f.f_series <- { s_labels = labels; s_value = value } :: f.f_series

let counter t ~name ?(help = "") labels =
  let f = family t ~name ~help Counter in
  let c = { c = 0 } in
  add_series f ~labels (V_counter c);
  c

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Registry.inc: negative increment";
  c.c <- c.c + by

let counter_value c = c.c

let counter_fn t ~name ?(help = "") labels fn =
  let f = family t ~name ~help Counter in
  add_series f ~labels (V_counter_fn fn)

let gauge t ~name ?(help = "") labels =
  let f = family t ~name ~help Gauge in
  let g = { g = 0.0 } in
  add_series f ~labels (V_gauge g);
  g

let set g v = g.g <- v
let gauge_value g = g.g

let gauge_fn t ~name ?(help = "") labels fn =
  let f = family t ~name ~help Gauge in
  add_series f ~labels (V_gauge_fn fn)

let histogram t ~name ?(help = "") ~buckets labels =
  if Array.length buckets = 0 then
    invalid_arg "Registry.histogram: need at least one bucket bound";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Registry.histogram: bucket bounds must be increasing")
    buckets;
  let f = family t ~name ~help Histogram in
  let h =
    {
      h_bounds = Array.copy buckets;
      h_counts = Array.make (Array.length buckets + 1) 0;
      h_sum = 0.0;
      h_count = 0;
    }
  in
  add_series f ~labels (V_histogram h);
  h

let observe h v =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* ---- snapshots for the exporters ---- *)

type point =
  | P_counter of int
  | P_gauge of float
  | P_histogram of { cumulative : (float * int) list; sum : float; count : int }

type sample = { name : string; help : string; kind : kind; labels : labels; point : point }

let sample_of_series f s =
  let point =
    match s.s_value with
    | V_counter c -> P_counter c.c
    | V_counter_fn fn -> P_counter (fn ())
    | V_gauge g -> P_gauge g.g
    | V_gauge_fn fn -> P_gauge (fn ())
    | V_histogram h ->
        let acc = ref 0 in
        let cumulative =
          List.init
            (Array.length h.h_bounds)
            (fun i ->
              acc := !acc + h.h_counts.(i);
              (h.h_bounds.(i), !acc))
        in
        P_histogram { cumulative; sum = h.h_sum; count = h.h_count }
  in
  { name = f.f_name; help = f.f_help; kind = f.f_kind; labels = s.s_labels; point }

let compare_labels a b = compare a b

let collect t =
  let families =
    List.sort (fun a b -> compare a.f_name b.f_name) t.families
  in
  List.concat_map
    (fun f ->
      f.f_series
      |> List.sort (fun a b -> compare_labels a.s_labels b.s_labels)
      |> List.map (sample_of_series f))
    families
