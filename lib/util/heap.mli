(** A mutable binary min-heap. The simulator's event queue sits on this,
    so operations are allocation-light and amortized O(log n). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** [filter_in_place t keep] drops every element for which [keep] is
    false and re-establishes the heap invariant, in O(n) time and
    without allocating. The relative pop order of surviving elements is
    unchanged (the comparator alone determines it). The simulator's
    event queue uses this to evict lazily-deleted (cancelled) timers. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructively lists the contents in ascending order; O(n log n),
    intended for tests and debugging. *)
