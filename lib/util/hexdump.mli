(** Hex encoding of byte strings, for digests in logs, tests and golden
    vectors. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s]. *)

val encode_bytes : Bytes.t -> string

val decode : string -> string
(** [decode hex] inverts {!encode}. Raises [Invalid_argument] on odd
    length or non-hex characters. *)

val short : ?len:int -> string -> string
(** [short digest] is a truncated hex prefix (default 8 hex chars) for
    human-readable identifiers. *)
