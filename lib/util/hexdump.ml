let hex_of_nibble n =
  if n < 10 then Char.chr (Char.code '0' + n) else Char.chr (Char.code 'a' + n - 10)

let encode s =
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      Bytes.set out (2 * i) (hex_of_nibble (b lsr 4));
      Bytes.set out ((2 * i) + 1) (hex_of_nibble (b land 0xf)))
    s;
  Bytes.unsafe_to_string out

let encode_bytes b = encode (Bytes.to_string b)

let nibble_of_hex c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hexdump.decode: non-hex character"

let decode hex =
  let n = String.length hex in
  if n mod 2 <> 0 then invalid_arg "Hexdump.decode: odd-length input";
  String.init (n / 2) (fun i ->
      Char.chr
        ((nibble_of_hex hex.[2 * i] lsl 4) lor nibble_of_hex hex.[(2 * i) + 1]))

let short ?(len = 8) s =
  let h = encode s in
  if String.length h <= len then h else String.sub h 0 len
