(** Zipfian key-popularity generator, matching the YCSB reference
    implementation (Gray et al., "Quickly generating billion-record
    synthetic databases"). The paper's YCSB runs use a skew factor of
    0.99 over 1,000,000 rows. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a generator over item ids [0, n) with
    skew [theta] (0 gives uniform-like behaviour; YCSB default 0.99).
    Raises [Invalid_argument] if [n <= 0] or [theta < 0. || theta >= 1.]. *)

val next : t -> Rng.t -> int
(** [next t rng] draws an item id in [0, n); id 0 is the most popular. *)

val scrambled : t -> Rng.t -> hash_seed:int64 -> int
(** [scrambled t rng ~hash_seed] draws a Zipf rank and scatters it over
    the key space with a multiplicative hash, as YCSB's scrambled
    Zipfian does, so hot keys are spread rather than clustered at the
    low ids. The result is still in [0, n). *)

val n : t -> int
(** The size of the item space. *)
