type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a 64-bit seed into the four xoshiro words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (next_int64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  (* 53 uniform mantissa bits in [0,1). *)
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t 1.0 in
  (* 1 - u is in (0, 1], keeping log finite. *)
  -.mean *. log (1.0 -. u)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let bytes t n =
  if n < 0 then invalid_arg "Rng.bytes: negative length";
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b
