type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

(* zeta(n, theta) = sum_{i=1..n} 1/i^theta. O(n) once at construction. *)
let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 = zeta 2 theta }

let next t rng =
  ignore t.zeta2;
  let u = Rng.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let k = int_of_float v in
    if k >= t.n then t.n - 1 else if k < 0 then 0 else k

(* Fibonacci-style multiplicative scatter; stays within [0, n). *)
let scramble ~hash_seed ~n rank =
  let h =
    Int64.mul
      (Int64.add (Int64.of_int rank) hash_seed)
      0x9E3779B97F4A7C15L
  in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  (* Mask to 62 bits so the Int64 -> int conversion stays non-negative. *)
  let positive = Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL) in
  positive mod n

let scrambled t rng ~hash_seed = scramble ~hash_seed ~n:t.n (next t rng)
let n t = t.n
