module Summary = struct
  type t = {
    mutable samples : float array;
    mutable size : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable lo : float;
    mutable hi : float;
    mutable sorted : bool;
  }

  let create () =
    {
      samples = [||];
      size = 0;
      sum = 0.0;
      sumsq = 0.0;
      lo = infinity;
      hi = neg_infinity;
      sorted = true;
    }

  let add t x =
    let cap = Array.length t.samples in
    if t.size = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let ndata = Array.make ncap 0.0 in
      Array.blit t.samples 0 ndata 0 t.size;
      t.samples <- ndata
    end;
    t.samples.(t.size) <- x;
    t.size <- t.size + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x;
    t.sorted <- false

  let count t = t.size
  let mean t = if t.size = 0 then 0.0 else t.sum /. float_of_int t.size
  let min t = if t.size = 0 then 0.0 else t.lo
  let max t = if t.size = 0 then 0.0 else t.hi

  let stddev t =
    if t.size < 2 then 0.0
    else
      let n = float_of_int t.size in
      let var = (t.sumsq /. n) -. ((t.sum /. n) ** 2.0) in
      if var < 0.0 then 0.0 else sqrt var

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.size in
      Array.sort compare live;
      Array.blit live 0 t.samples 0 t.size;
      t.sorted <- true
    end

  let percentile t p =
    if t.size = 0 then 0.0
    else begin
      if p < 0.0 || p > 100.0 then
        invalid_arg "Stats.Summary.percentile: p outside [0, 100]";
      ensure_sorted t;
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) - 1
      in
      let rank = Stdlib.max 0 (Stdlib.min (t.size - 1) rank) in
      t.samples.(rank)
    end

  let clear t =
    t.samples <- [||];
    t.size <- 0;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.lo <- infinity;
    t.hi <- neg_infinity;
    t.sorted <- true
end

module Timeseries = struct
  type t = {
    bucket : float;
    sums : (int, float) Hashtbl.t;
    counts : (int, int) Hashtbl.t;
  }

  let create ~bucket =
    if bucket <= 0.0 then
      invalid_arg "Stats.Timeseries.create: bucket must be positive";
    { bucket; sums = Hashtbl.create 64; counts = Hashtbl.create 64 }

  let add t ~time v =
    let idx = int_of_float (floor (time /. t.bucket)) in
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.sums idx) in
    Hashtbl.replace t.sums idx (prev +. v);
    let prevc = Option.value ~default:0 (Hashtbl.find_opt t.counts idx) in
    Hashtbl.replace t.counts idx (prevc + 1)

  let buckets t =
    Hashtbl.fold (fun idx _ acc -> idx :: acc) t.sums []
    |> List.sort compare

  let rate_series t =
    buckets t
    |> List.map (fun idx ->
           let sum = Hashtbl.find t.sums idx in
           (float_of_int idx *. t.bucket, sum /. t.bucket))

  let mean_series t =
    buckets t
    |> List.map (fun idx ->
           let sum = Hashtbl.find t.sums idx in
           let n = Hashtbl.find t.counts idx in
           (float_of_int idx *. t.bucket, sum /. float_of_int n))
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }

  let add t n =
    if n < 0 then invalid_arg "Stats.Counter.add: negative increment";
    t.v <- t.v + n

  let get t = t.v
  let reset t = t.v <- 0
end
