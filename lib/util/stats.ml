module Summary = struct
  type t = {
    mutable samples : float array;
    mutable size : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable lo : float;
    mutable hi : float;
    mutable sorted : bool;
  }

  let create () =
    {
      samples = [||];
      size = 0;
      sum = 0.0;
      sumsq = 0.0;
      lo = infinity;
      hi = neg_infinity;
      sorted = true;
    }

  let add t x =
    let cap = Array.length t.samples in
    if t.size = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let ndata = Array.make ncap 0.0 in
      Array.blit t.samples 0 ndata 0 t.size;
      t.samples <- ndata
    end;
    t.samples.(t.size) <- x;
    t.size <- t.size + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x;
    t.sorted <- false

  let count t = t.size
  let mean t = if t.size = 0 then 0.0 else t.sum /. float_of_int t.size

  (* Extremes of an empty summary used to report 0.0, which silently
     fabricated a plausible-looking row in figure output. The plain
     accessors now raise, and the [_opt] variants let callers opt into
     an explicit default. *)
  let min_opt t = if t.size = 0 then None else Some t.lo
  let max_opt t = if t.size = 0 then None else Some t.hi

  let min t =
    if t.size = 0 then invalid_arg "Stats.Summary.min: empty summary"
    else t.lo

  let max t =
    if t.size = 0 then invalid_arg "Stats.Summary.max: empty summary"
    else t.hi

  let stddev t =
    if t.size < 2 then 0.0
    else
      let n = float_of_int t.size in
      let var = (t.sumsq /. n) -. ((t.sum /. n) ** 2.0) in
      if var < 0.0 then 0.0 else sqrt var

  let swap (a : float array) i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp

  (* Quicksort of the prefix [lo, hi) directly in the sample buffer —
     [Array.sort] cannot sort a prefix, and the copy/sort/blit detour
     allocated a full scratch array per percentile query after every
     batch of adds. [Float.compare] is a total order, so NaN samples
     cannot break termination the way [<] would. *)
  let rec sort_prefix (a : float array) lo hi =
    if hi - lo <= 16 then
      for i = lo + 1 to hi - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && Float.compare a.(!j) x > 0 do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      (* Median-of-3 pivot guards against the sorted/reversed inputs
         that are common for monotone metrics. *)
      let mid = lo + ((hi - lo) / 2) in
      if Float.compare a.(mid) a.(lo) < 0 then swap a mid lo;
      if Float.compare a.(hi - 1) a.(lo) < 0 then swap a (hi - 1) lo;
      if Float.compare a.(hi - 1) a.(mid) < 0 then swap a (hi - 1) mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while Float.compare a.(!i) pivot < 0 do incr i done;
        while Float.compare a.(!j) pivot > 0 do decr j done;
        if !i <= !j then begin
          swap a !i !j;
          incr i;
          decr j
        end
      done;
      sort_prefix a lo (!j + 1);
      sort_prefix a !i hi
    end

  let ensure_sorted t =
    if not t.sorted then begin
      sort_prefix t.samples 0 t.size;
      t.sorted <- true
    end

  let percentile t p =
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Summary.percentile: p outside [0, 100]";
    if t.size = 0 then
      invalid_arg "Stats.Summary.percentile: empty summary";
    ensure_sorted t;
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) - 1
    in
    let rank = Stdlib.max 0 (Stdlib.min (t.size - 1) rank) in
    t.samples.(rank)

  let percentile_opt t p =
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Summary.percentile_opt: p outside [0, 100]";
    if t.size = 0 then None else Some (percentile t p)

  let clear t =
    t.samples <- [||];
    t.size <- 0;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.lo <- infinity;
    t.hi <- neg_infinity;
    t.sorted <- true
end

module Timeseries = struct
  type t = {
    bucket : float;
    sums : (int, float) Hashtbl.t;
    counts : (int, int) Hashtbl.t;
  }

  let create ~bucket =
    if bucket <= 0.0 then
      invalid_arg "Stats.Timeseries.create: bucket must be positive";
    { bucket; sums = Hashtbl.create 64; counts = Hashtbl.create 64 }

  let add t ~time v =
    let idx = int_of_float (floor (time /. t.bucket)) in
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.sums idx) in
    Hashtbl.replace t.sums idx (prev +. v);
    let prevc = Option.value ~default:0 (Hashtbl.find_opt t.counts idx) in
    Hashtbl.replace t.counts idx (prevc + 1)

  (* The inclusive index range with at least one observation. *)
  let index_span t =
    Hashtbl.fold
      (fun idx _ (lo, hi) -> (Stdlib.min lo idx, Stdlib.max hi idx))
      t.sums (max_int, min_int)

  (* Both series zero-fill the gaps between the first and last observed
     bucket: a stall (crashed group, wedged log) shows up as an explicit
     0.0 sample instead of silently vanishing from the series, which
     would make rate plots look continuous across the outage. *)
  let rate_series t =
    let lo, hi = index_span t in
    if lo > hi then []
    else
      List.init
        (hi - lo + 1)
        (fun k ->
          let idx = lo + k in
          let sum = Option.value ~default:0.0 (Hashtbl.find_opt t.sums idx) in
          (float_of_int idx *. t.bucket, sum /. t.bucket))

  let mean_series t =
    let lo, hi = index_span t in
    if lo > hi then []
    else
      List.init
        (hi - lo + 1)
        (fun k ->
          let idx = lo + k in
          match Hashtbl.find_opt t.counts idx with
          | None | Some 0 -> (float_of_int idx *. t.bucket, 0.0)
          | Some n ->
              let sum = Hashtbl.find t.sums idx in
              (float_of_int idx *. t.bucket, sum /. float_of_int n))
end

(* Atomic so the parallel simulation driver can increment protocol
   counters from several domains without losing counts; uncontended
   fetch-and-add costs the same as the plain mutable field did. *)
module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0

  let add t n =
    if n < 0 then invalid_arg "Stats.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add t n)

  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end
