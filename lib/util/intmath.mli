(** Small integer helpers used throughout the protocol (chunk counts,
    quorum sizes, transfer plans). All functions operate on non-negative
    native ints and raise [Invalid_argument] on bad input. *)

val gcd : int -> int -> int
(** [gcd a b] is the greatest common divisor of [a] and [b].
    [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple, as used by Algorithm 1 of the
    paper to size the chunk space between two groups. [lcm 0 _ = 0]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is [a / b] rounded towards positive infinity. *)

val pbft_f : int -> int
(** [pbft_f n] is the number of Byzantine nodes an [n]-node PBFT group
    tolerates: [(n - 1) / 3] (Algorithm 1, line 4). *)

val pbft_quorum : int -> int
(** [pbft_quorum n] is the certificate quorum [2f + 1] for an [n]-node
    group. *)

val raft_f : int -> int
(** [raft_f ng] is the number of crashed groups tolerated by the global
    Raft layer: [(ng - 1) / 2]. *)

val raft_quorum : int -> int
(** [raft_quorum ng] is the global majority quorum [f_g + 1]. *)

val pow : int -> int -> int
(** [pow b e] is [b] raised to the [e]-th power ([e >= 0]). *)

val log2_ceil : int -> int
(** [log2_ceil n] is the smallest [k] with [2^k >= n] ([n >= 1]). Used to
    size Merkle trees. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n] is a positive power of two. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] bounds [x] into the inclusive range [lo, hi]. *)
