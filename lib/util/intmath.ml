let rec gcd a b =
  if a < 0 || b < 0 then invalid_arg "Intmath.gcd: negative argument";
  if b = 0 then a else gcd b (a mod b)

let lcm a b =
  if a < 0 || b < 0 then invalid_arg "Intmath.lcm: negative argument";
  if a = 0 || b = 0 then 0 else a / gcd a b * b

let cdiv a b =
  if b <= 0 then invalid_arg "Intmath.cdiv: non-positive divisor";
  if a < 0 then invalid_arg "Intmath.cdiv: negative dividend";
  (a + b - 1) / b

let pbft_f n =
  if n < 1 then invalid_arg "Intmath.pbft_f: group must be non-empty";
  (n - 1) / 3

let pbft_quorum n = (2 * pbft_f n) + 1

let raft_f ng =
  if ng < 1 then invalid_arg "Intmath.raft_f: need at least one group";
  (ng - 1) / 2

let raft_quorum ng = raft_f ng + 1

let pow b e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let log2_ceil n =
  if n < 1 then invalid_arg "Intmath.log2_ceil: need n >= 1";
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Intmath.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x
