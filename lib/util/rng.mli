(** Deterministic pseudo-random number generation.

    The simulator must be reproducible bit-for-bit from a seed, so every
    randomized component (workload generators, network jitter, fault
    injection) draws from an explicit [Rng.t] rather than the global
    [Random] state. The generator is xoshiro256** seeded through
    splitmix64, the combination recommended by its authors. *)

type t

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed. Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated node its own stream so that adding a
    node does not perturb the draws of the others. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copies then evolve
    independently). *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from Exp(1/mean); used for Poisson
    arrival processes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] uniformly random bytes. *)
