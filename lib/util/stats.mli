(** Online metric accumulators for the experiment harness: means,
    percentiles, time-bucketed rates, and byte counters. *)

(** Streaming summary of a scalar sample set (latencies, sizes). Keeps
    every sample to give exact percentiles; simulations produce at most
    a few million samples per run. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val min : t -> float
  (** Smallest sample. Raises [Invalid_argument] when the summary is
      empty — an empty summary has no minimum, and returning 0 would
      fabricate a sample that was never observed. *)

  val max : t -> float
  (** Largest sample; raises [Invalid_argument] when empty. *)

  val min_opt : t -> float option
  val max_opt : t -> float option
  (** [None] when empty; for call sites that want an explicit default
      instead of an exception. *)

  val stddev : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0, 100], nearest-rank. Raises
      [Invalid_argument] when [p] is out of range or the summary is
      empty, consistently with {!min}/{!max}. *)

  val percentile_opt : t -> float -> float option
  (** [None] when empty; still raises on [p] outside [0, 100]. *)

  val clear : t -> unit
end

(** Events bucketed by time, for throughput-over-time series such as the
    paper's Figure 15. *)
module Timeseries : sig
  type t

  val create : bucket:float -> t
  (** [create ~bucket] groups events into [bucket]-second windows. *)

  val add : t -> time:float -> float -> unit
  (** [add t ~time v] accrues [v] (e.g. 1 per committed transaction, or
      a latency sample) into [time]'s bucket. *)

  val rate_series : t -> (float * float) list
  (** [(bucket_start, sum / bucket_width)] pairs in time order — i.e.
      a per-second rate when values are counts. Every bucket between
      the first and last observation is present: buckets with no
      observations report an explicit [0.0] (so outages appear as
      zero-rate samples, not as gaps). Empty series stay empty. *)

  val mean_series : t -> (float * float) list
  (** [(bucket_start, sum / samples)] pairs — per-bucket means, with
      the same zero-filling as {!rate_series} (an observation-free
      bucket reports mean [0.0]). *)
end

(** Monotonic counters, used for WAN/LAN byte accounting (Figure 10). *)
module Counter : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end
