(** Accountability evidence: HMAC-signed records of the attributable
    protocol messages compromised nodes emit, and the machine-checkable
    conflict pairs that prove equivocation (see DESIGN.md "Adversary
    model").

    Two signed records from the same signer claiming different values
    for the same consensus slot are a self-contained proof of
    misbehavior: {!verify_pair} checks it against nothing but the
    signer's key, the way accountable-BFT forensics verify conflicting
    signed votes. The simulator stands in the signature scheme with
    per-node HMAC keys derived from a master secret. *)

type signed = {
  e_signer : string;  (** "g0/n1" — the node the message is signed by *)
  e_kind : string;
      (** "pbft-pre-prepare" | "pbft-prepare" | "pbft-commit" |
          "raft-append" *)
  e_gid : int;  (** consensus scope: PBFT group id, or Raft instance *)
  e_seq : int;  (** PBFT local sequence number, or Raft log index *)
  e_slot : string;  (** slot discriminator: ["v<view>"] or ["t<term>"] *)
  e_claim : string;  (** the claimed value (digest or payload id) *)
  e_tag : string;  (** 32-byte HMAC over the canonical field encoding *)
}

type pair = { first : signed; second : signed }

val default_master : string

val sign :
  master:string ->
  signer:string ->
  kind:string ->
  gid:int ->
  seq:int ->
  slot:string ->
  claim:string ->
  signed

val verify_signed : master:string -> signed -> bool
(** Recomputes the signer's derived key and checks the tag (constant
    time, via {!Massbft_crypto.Hmac.verify}). *)

val verify_pair : master:string -> pair -> bool
(** A valid conflict: same signer, kind and slot; different claims; both
    signatures verify. *)

val signed_to_string : signed -> string
(** One line; claim and tag hex-encoded so raw digest bytes travel. *)

val pair_to_string : pair -> string
(** Two lines, newline-terminated — the artifact format. *)

exception Parse_error of string

val signed_of_string : string -> signed
val pair_of_string : string -> pair
(** Inverses of the printers; raise {!Parse_error} on malformed input. *)

(** {1 The evidence log}

    {!Adversary} records every attributable message a compromised node
    emits; the log deduplicates claims per slot and detects conflicts
    incrementally (at most one pair per slot, so the log stays bounded
    under sustained equivocation). *)

type log

val create_log : ?master:string -> unit -> log

val master_of : log -> string

val observe :
  log ->
  signer:string ->
  kind:string ->
  gid:int ->
  seq:int ->
  slot:string ->
  claim:string ->
  unit
(** Sign and record one emitted claim (idempotent per distinct claim). *)

val recorded : log -> int
(** Distinct signed records held. *)

val conflicts : log -> pair list
(** Oldest first. *)

val first_conflict : log -> pair option

val conflict_for : log -> gid:int -> seq:int -> pair option
(** The first conflict recorded for a consensus slot — what the
    invariant checkers attach to a safety violation at that slot. *)

val verify : log -> pair -> bool
(** {!verify_pair} under the log's master secret. *)
