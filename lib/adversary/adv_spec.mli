(** The adversary-strategy DSL (see DESIGN.md "Adversary model").

    A plan is a list of timed Byzantine strategies compiled by
    {!Adversary} into a message-level interposer on the engine's typed
    send path. Every strategy has a stable one-line text form so a plan
    travels as readable lines — a CI artifact, a
    [massbft run --adversary FILE] input, a shrunk reproducer — and
    parses back into exactly the same attack:

    {v
    @2 equivocate leader:g0 for 3
    @2 withhold node:g0/n1 for 2.5
    @4 split-votes node:g1/n2 for 2
    @1 replay leader:g2 copies 2 gap 0.25 for 2
    @2 delay-valid node:g1/n2 add 0.3 for 1.5
    @6 tamper node:g0/n3 for 10
    v} *)

module Topology = Massbft_sim.Topology

(** Who misbehaves. [Leader gid] is adaptive: resolved at every send to
    whichever node currently holds the group's acting-leader role, so
    the attack follows view changes and leader migrations. *)
type target = Node of Topology.addr | Leader of int

type strategy =
  | Equivocate of { target : target; for_s : float }
      (** send conflicting PBFT pre-prepares (and matching forged
          prepare/commit votes) to different halves of the group *)
  | Equivocate_raft of { target : target; for_s : float }
      (** send conflicting global Raft append payloads to different
          receiver groups (exceeds Raft's crash-only fault model) *)
  | Withhold of { target : target; for_s : float }
      (** serve each pre-prepare to a quorum-minus-one subset only, so
          no slot proposed in the window can gather a commit quorum *)
  | Split_votes of { target : target; for_s : float }
      (** fork outgoing view-change votes across two target views *)
  | Replay of { target : target; copies : int; gap_s : float; for_s : float }
      (** re-emit valid control messages [copies] extra times, spaced
          [gap_s] apart — tests vote-set and delivery idempotence *)
  | Delay_valid of { target : target; add_s : float; for_s : float }
      (** delay valid control messages by [add_s] before emitting *)
  | Tamper of { target : target; for_s : float }
      (** corrupt outgoing replication chunks (the paper's §VI-E
          colluding-encoder attack, previously a config knob) *)

type event = { at : float; strategy : strategy }
type plan = event list

val kind_name : strategy -> string
(** Stable snake_case kind labels ("equivocate", "split_votes", ...)
    used by metrics and trace spans. *)

val kind_names : string list
(** The dashed text-form strategy names — the vocabulary accepted by
    [massbft drill --adversary]. *)

val target_of : strategy -> target
val window_of : strategy -> float

val target_to_string : target -> string
val strategy_to_string : strategy -> string
val event_to_string : event -> string

val to_string : plan -> string
(** One event per line, each terminated by a newline. *)

exception Parse_error of string

val of_string : string -> plan
(** Parses the {!to_string} form. Blank lines and [#] comment lines are
    skipped. Raises {!Parse_error} on malformed input;
    [of_string (to_string p)] reproduces [p] exactly. *)

val validate : group_sizes:int array -> plan -> (unit, string) result
(** Structural checks against a deployment shape: targets in range,
    positive windows, replay copies >= 1 with positive gap, positive
    delay. *)

val heal_time : plan -> float
(** Time by which the adversary's last strategy window has closed (every
    strategy is windowed, so a plan always heals). 0 for the empty
    plan. *)

val sorted : plan -> plan
(** Stable sort by activation time. *)
