(* The Byzantine adversary engine: compiles an Adv_spec plan into a
   message-level interposer on the engine's typed send path
   (Node_ctx.adv_hook, installed via Engine.set_adversary).

   Where the fault injector's topology hook sees only message sizes —
   so it can drop, delay or duplicate but never lie — this hook sees
   the typed protocol message and rewrites it per destination: forged
   digests, per-peer forks (equivocation), withheld pre-prepares,
   split view-change votes, replayed and delayed-but-valid messages,
   tampered chunks. Targets may be adaptive ([Leader g] re-resolves at
   every send to the group's current acting leader, following view
   changes).

   Every attributable message a compromised node emits is recorded in
   an Evidence.log under that node's derived key, so an equivocation
   that later violates safety is provable by a conflicting signed pair
   — not just observable.

   With an empty plan, [arm] installs no hook and schedules nothing:
   the run is bit-identical to one without an adversary attached. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Engine = Massbft.Engine
module N = Massbft.Node_ctx
module Types = Massbft.Types
module Pbft = Massbft_consensus.Pbft
module Raft = Massbft_consensus.Raft
module Trace = Massbft_trace.Trace
module Registry = Massbft_obs.Registry
module Intmath = Massbft_util.Intmath
module A = Adv_spec

type t = {
  sim : Sim.t;
  engine : Engine.t;
  spec : Topology.spec;
  plan : A.plan;
  trace : Trace.t;
  registry : Registry.t option;
  evidence : Evidence.log;
  kind_counters : (string, Registry.counter) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
      (* every node that ever matched an active strategy's target: the
         run's compromised set, consulted by the invariant checkers *)
  mutable active : A.strategy list;  (* activation order *)
  mutable injected : int;
  mutable armed : bool;
}

let create ?(trace = Trace.null) ?registry ?evidence ~spec ~plan engine sim =
  (match A.validate ~group_sizes:spec.Topology.group_sizes plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Adversary.create: " ^ e));
  {
    sim;
    engine;
    spec;
    plan = A.sorted plan;
    trace;
    registry;
    evidence = (match evidence with Some l -> l | None -> Evidence.create_log ());
    kind_counters = Hashtbl.create 11;
    seen = Hashtbl.create 8;
    active = [];
    injected = 0;
    armed = false;
  }

let plan t = t.plan
let injected_total t = t.injected
let evidence t = t.evidence

let is_compromised t (a : Topology.addr) =
  Hashtbl.mem t.seen (Topology.addr_to_string a)

(* Adversary interferences land in the same counter family as fault
   injections, distinguished by the [strategy] label (fault events
   carry strategy="fault"). *)
let count_injection t strategy =
  t.injected <- t.injected + 1;
  match t.registry with
  | None -> ()
  | Some reg ->
      let kind = A.kind_name strategy in
      let c =
        match Hashtbl.find_opt t.kind_counters kind with
        | Some c -> c
        | None ->
            let c =
              Registry.counter reg ~name:"massbft_faults_injected_total"
                ~help:"Fault events applied by the chaos injector"
                [ ("kind", "adversary"); ("strategy", kind) ]
            in
            Hashtbl.replace t.kind_counters kind c;
            c
      in
      Registry.inc c

(* ------------------------------------------------------------------ *)
(* Strategy transforms                                                 *)
(* ------------------------------------------------------------------ *)

(* Equivocation forks the group on destination parity: odd-numbered
   receivers get the forged claim, even-numbered ones the canonical
   claim. Stripping any existing forge prefix first makes colluding
   compromised nodes consistent by construction — both halves each see
   one coherent value backed by every compromised voter. *)
let forge_prefix = "equiv!"

let canonical_digest d =
  let p = String.length forge_prefix in
  if String.length d >= p && String.sub d 0 p = forge_prefix then
    String.sub d p (String.length d - p)
  else d

let forked_digest ~(dst : Topology.addr) d =
  let d0 = canonical_digest d in
  if dst.Topology.n land 1 = 1 then forge_prefix ^ d0 else d0

let tamper_prefix = "tampered:"

let tampered_tag tag =
  let p = String.length tamper_prefix in
  if String.length tag >= p && String.sub tag 0 p = tamper_prefix then tag
  else tamper_prefix ^ tag

let one m = Some [ { N.adv_msg = m; adv_delay_s = 0.0 } ]

(* [Some ds] claims the message for this strategy (possibly unchanged);
   [None] lets the next active strategy, or the untouched path, take
   it. *)
let transform t strategy ~(src : Topology.addr) ~(dst : Topology.addr) ~bulk m
    =
  match strategy with
  | A.Equivocate _ -> (
      match m with
      | N.Local (Pbft.Pre_prepare { view; seq; digest }) ->
          let d' = forked_digest ~dst digest in
          if not (String.equal d' digest) then count_injection t strategy;
          one (N.Local (Pbft.Pre_prepare { view; seq; digest = d' }))
      | N.Local (Pbft.Prepare { view; seq; digest }) ->
          let d' = forked_digest ~dst digest in
          if not (String.equal d' digest) then count_injection t strategy;
          one (N.Local (Pbft.Prepare { view; seq; digest = d' }))
      | N.Local (Pbft.Commit { view; seq; digest }) ->
          let d' = forked_digest ~dst digest in
          if not (String.equal d' digest) then count_injection t strategy;
          one (N.Local (Pbft.Commit { view; seq; digest = d' }))
      | _ -> None)
  | A.Equivocate_raft _ -> (
      match m with
      | N.Raft_m { inst; rmsg = Raft.Append { term; index; entry = _ } }
        when dst.Topology.g land 1 = 1 ->
          (* The forged half of the receiver groups is told the slot
             holds a Noop — a payload fork Raft's crash-only model has
             no defense against. *)
          count_injection t strategy;
          one
            (N.Raft_m
               { inst; rmsg = Raft.Append { term; index; entry = N.Noop } })
      | _ -> None)
  | A.Withhold _ -> (
      match m with
      | N.Local (Pbft.Pre_prepare _) ->
          let n = t.spec.Topology.group_sizes.(src.Topology.g) in
          let quorum = Intmath.pbft_quorum n in
          (* Serve only the first quorum-2 peers: with the sender that
             makes quorum-1 holders, one short of a commit quorum. *)
          let rec served budget id =
            if budget <= 0 || id >= n then false
            else if id = src.Topology.n then served budget (id + 1)
            else if id = dst.Topology.n then true
            else served (budget - 1) (id + 1)
          in
          if served (max 0 (quorum - 2)) 0 then one m
          else begin
            count_injection t strategy;
            Some []
          end
      | _ -> None)
  | A.Split_votes _ -> (
      match m with
      | N.Local (Pbft.View_change { new_view; prepared })
        when dst.Topology.n land 1 = 1 ->
          count_injection t strategy;
          one (N.Local (Pbft.View_change { new_view = new_view + 1; prepared }))
      | _ -> None)
  | A.Replay { copies; gap_s; _ } ->
      if bulk then None
      else begin
        count_injection t strategy;
        Some
          ({ N.adv_msg = m; adv_delay_s = 0.0 }
          :: List.init copies (fun i ->
                 {
                   N.adv_msg = m;
                   adv_delay_s = gap_s *. float_of_int (i + 1);
                 }))
      end
  | A.Delay_valid { add_s; _ } ->
      if bulk then None
      else begin
        count_injection t strategy;
        Some [ { N.adv_msg = m; adv_delay_s = add_s } ]
      end
  | A.Tamper _ -> (
      match m with
      | N.Chunk { eid; root_tag; index } ->
          let tag = tampered_tag root_tag in
          if not (String.equal tag root_tag) then count_injection t strategy;
          one (N.Chunk { eid; root_tag = tag; index })
      | N.Chunk_fwd { eid; root_tag; index } ->
          let tag = tampered_tag root_tag in
          if not (String.equal tag root_tag) then count_injection t strategy;
          one (N.Chunk_fwd { eid; root_tag = tag; index })
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Evidence recording                                                  *)
(* ------------------------------------------------------------------ *)

let rpayload_claim = function
  | N.Entry_meta { eid } -> "meta:" ^ Types.entry_id_to_string eid
  | N.Ts { eid; ts } ->
      Printf.sprintf "ts:%s=%d" (Types.entry_id_to_string eid) ts
  | N.Noop -> "noop"

(* Record the attributable consensus claims a compromised node emits —
   the messages that, in a deployment, would carry its signature. Both
   halves of an equivocation pass through here (one hook call per
   destination), so a fork becomes a conflict pair in the log. *)
let record_evidence t ~(src : Topology.addr) m =
  let signer = Topology.addr_to_string src in
  let obs = Evidence.observe t.evidence ~signer in
  match m with
  | N.Local (Pbft.Pre_prepare { view; seq; digest }) ->
      obs ~kind:"pbft-pre-prepare" ~gid:src.Topology.g ~seq
        ~slot:("v" ^ string_of_int view) ~claim:digest
  | N.Local (Pbft.Prepare { view; seq; digest }) ->
      obs ~kind:"pbft-prepare" ~gid:src.Topology.g ~seq
        ~slot:("v" ^ string_of_int view) ~claim:digest
  | N.Local (Pbft.Commit { view; seq; digest }) ->
      obs ~kind:"pbft-commit" ~gid:src.Topology.g ~seq
        ~slot:("v" ^ string_of_int view) ~claim:digest
  | N.Raft_m { inst; rmsg = Raft.Append { term; index; entry } } ->
      obs ~kind:"raft-append" ~gid:inst ~seq:index
        ~slot:("t" ^ string_of_int term) ~claim:(rpayload_claim entry)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The hook                                                            *)
(* ------------------------------------------------------------------ *)

let resolves t target (src : Topology.addr) =
  match target with
  | A.Node a -> Topology.addr_equal a src
  | A.Leader g ->
      g = src.Topology.g
      && Topology.addr_equal (Engine.acting_leader t.engine ~gid:g) src

let hook t : N.adv_hook =
 fun ~src ~dst ~bulk ~bytes:_ m ->
  match List.filter (fun s -> resolves t (A.target_of s) src) t.active with
  | [] -> None
  | acts ->
      Hashtbl.replace t.seen (Topology.addr_to_string src) ();
      (* First active strategy that claims the message wins; the rest
         see nothing (strategies do not stack on one message). *)
      let rec apply = function
        | [] -> None
        | s :: rest -> (
            match transform t s ~src ~dst ~bulk m with
            | Some _ as r -> r
            | None -> apply rest)
      in
      let result = apply acts in
      (* Evidence covers what was actually emitted — the compromised
         node signs what it sends, including untouched messages. *)
      (match result with
      | None -> record_evidence t ~src m
      | Some ds -> List.iter (fun d -> record_evidence t ~src d.N.adv_msg) ds);
      result

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)
(* ------------------------------------------------------------------ *)

let remove_first_phys lst x =
  let rec go = function
    | [] -> []
    | y :: rest -> if y == x then rest else y :: go rest
  in
  go lst

let arm t =
  if t.armed then invalid_arg "Adversary.arm: already armed";
  t.armed <- true;
  if t.plan <> [] then begin
    Engine.set_adversary t.engine (Some (hook t));
    (* Active misbehavior can stall PBFT slots without any crash; the
       per-group progress watchdogs drive the recovery view changes. *)
    Engine.arm_watchdogs t.engine;
    List.iter
      (fun { A.at; strategy } ->
        ignore
          (Sim.at t.sim
             (Float.max at (Sim.now t.sim))
             (fun () ->
               let span =
                 Trace.span_begin t.trace ~cat:"adversary"
                   (A.kind_name strategy)
                   ~args:
                     [ ("spec", Trace.Str (A.strategy_to_string strategy)) ]
               in
               t.active <- t.active @ [ strategy ];
               ignore
                 (Sim.after t.sim (A.window_of strategy) (fun () ->
                      t.active <- remove_first_phys t.active strategy;
                      Trace.span_end t.trace span)))))
      t.plan
  end
