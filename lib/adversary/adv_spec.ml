(* The adversary-strategy DSL: typed Byzantine strategies with a stable
   one-line text form, mirroring Fault_spec. A plan travels as readable
   lines (a CI artifact, a `massbft run --adversary FILE` input, a
   shrunk reproducer) and parses back into exactly the same attack. *)

module Topology = Massbft_sim.Topology

(* Who misbehaves. [Leader gid] is adaptive: it resolves to whichever
   node currently holds the group's acting-leader role at each send, so
   the attack follows view changes and leader migrations. *)
type target = Node of Topology.addr | Leader of int

type strategy =
  | Equivocate of { target : target; for_s : float }
      (* conflicting PBFT pre-prepares/votes to different peers *)
  | Equivocate_raft of { target : target; for_s : float }
      (* conflicting global Raft append payloads to different groups *)
  | Withhold of { target : target; for_s : float }
      (* serve pre-prepares to a quorum-minus-one subset only *)
  | Split_votes of { target : target; for_s : float }
      (* fork view-change votes across two target views *)
  | Replay of { target : target; copies : int; gap_s : float; for_s : float }
      (* re-emit valid control messages [copies] extra times *)
  | Delay_valid of { target : target; add_s : float; for_s : float }
      (* hold valid control messages back before emitting them *)
  | Tamper of { target : target; for_s : float }
      (* corrupt outgoing replication chunks (the paper's §VI-E attack) *)

type event = { at : float; strategy : strategy }
type plan = event list

(* Stable snake_case labels for metrics and trace spans. *)
let kind_name = function
  | Equivocate _ -> "equivocate"
  | Equivocate_raft _ -> "equivocate_raft"
  | Withhold _ -> "withhold"
  | Split_votes _ -> "split_votes"
  | Replay _ -> "replay"
  | Delay_valid _ -> "delay_valid"
  | Tamper _ -> "tamper"

(* Dashed text-form tokens — the vocabulary of `drill --adversary`. *)
let kind_names =
  [
    "equivocate";
    "equivocate-raft";
    "withhold";
    "split-votes";
    "replay";
    "delay-valid";
    "tamper";
  ]

let target_of = function
  | Equivocate { target; _ }
  | Equivocate_raft { target; _ }
  | Withhold { target; _ }
  | Split_votes { target; _ }
  | Replay { target; _ }
  | Delay_valid { target; _ }
  | Tamper { target; _ } ->
      target

let window_of = function
  | Equivocate { for_s; _ }
  | Equivocate_raft { for_s; _ }
  | Withhold { for_s; _ }
  | Split_votes { for_s; _ }
  | Replay { for_s; _ }
  | Delay_valid { for_s; _ }
  | Tamper { for_s; _ } ->
      for_s

let fl = Printf.sprintf "%g"

let addr_str (a : Topology.addr) =
  Printf.sprintf "g%d/n%d" a.Topology.g a.Topology.n

let target_to_string = function
  | Node a -> "node:" ^ addr_str a
  | Leader g -> Printf.sprintf "leader:g%d" g

let strategy_to_string s =
  let tgt = target_to_string (target_of s) in
  match s with
  | Equivocate { for_s; _ } ->
      Printf.sprintf "equivocate %s for %s" tgt (fl for_s)
  | Equivocate_raft { for_s; _ } ->
      Printf.sprintf "equivocate-raft %s for %s" tgt (fl for_s)
  | Withhold { for_s; _ } ->
      Printf.sprintf "withhold %s for %s" tgt (fl for_s)
  | Split_votes { for_s; _ } ->
      Printf.sprintf "split-votes %s for %s" tgt (fl for_s)
  | Replay { copies; gap_s; for_s; _ } ->
      Printf.sprintf "replay %s copies %d gap %s for %s" tgt copies (fl gap_s)
        (fl for_s)
  | Delay_valid { add_s; for_s; _ } ->
      Printf.sprintf "delay-valid %s add %s for %s" tgt (fl add_s) (fl for_s)
  | Tamper { for_s; _ } -> Printf.sprintf "tamper %s for %s" tgt (fl for_s)

let event_to_string { at; strategy } =
  Printf.sprintf "@%s %s" (fl at) (strategy_to_string strategy)

let to_string plan =
  String.concat "" (List.map (fun e -> event_to_string e ^ "\n") plan)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad %s %S" what s

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "bad %s %S" what s

let parse_gid s =
  if String.length s >= 2 && s.[0] = 'g' then
    parse_int "group" (String.sub s 1 (String.length s - 1))
  else fail "bad group %S (expected gN)" s

let parse_addr s =
  match String.index_opt s '/' with
  | Some i
    when i >= 2
         && s.[0] = 'g'
         && String.length s > i + 2
         && s.[i + 1] = 'n' ->
      let g = parse_int "group" (String.sub s 1 (i - 1)) in
      let n =
        parse_int "node" (String.sub s (i + 2) (String.length s - i - 2))
      in
      { Topology.g; n }
  | _ -> fail "bad address %S (expected gG/nN)" s

let parse_target s =
  let prefixed p =
    if
      String.length s > String.length p
      && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match prefixed "leader:" with
  | Some rest -> Leader (parse_gid rest)
  | None -> (
      match prefixed "node:" with
      | Some rest -> Node (parse_addr rest)
      | None -> fail "bad target %S (expected leader:gN or node:gG/nN)" s)

let rec kw_args = function
  | [] -> []
  | [ k ] -> fail "missing value for %S" k
  | k :: v :: rest -> (k, v) :: kw_args rest

let kw what args k =
  match List.assoc_opt k args with
  | Some v -> v
  | None -> fail "%s: missing %S" what k

let strategy_of_tokens = function
  | [ "equivocate"; tgt; "for"; d ] ->
      Equivocate
        { target = parse_target tgt; for_s = parse_float "duration" d }
  | [ "equivocate-raft"; tgt; "for"; d ] ->
      Equivocate_raft
        { target = parse_target tgt; for_s = parse_float "duration" d }
  | [ "withhold"; tgt; "for"; d ] ->
      Withhold { target = parse_target tgt; for_s = parse_float "duration" d }
  | [ "split-votes"; tgt; "for"; d ] ->
      Split_votes
        { target = parse_target tgt; for_s = parse_float "duration" d }
  | "replay" :: tgt :: rest ->
      let args = kw_args rest in
      Replay
        {
          target = parse_target tgt;
          copies = parse_int "copies" (kw "replay" args "copies");
          gap_s = parse_float "gap" (kw "replay" args "gap");
          for_s = parse_float "duration" (kw "replay" args "for");
        }
  | "delay-valid" :: tgt :: rest ->
      let args = kw_args rest in
      Delay_valid
        {
          target = parse_target tgt;
          add_s = parse_float "delay" (kw "delay-valid" args "add");
          for_s = parse_float "duration" (kw "delay-valid" args "for");
        }
  | [ "tamper"; tgt; "for"; d ] ->
      Tamper { target = parse_target tgt; for_s = parse_float "duration" d }
  | tok :: _ -> fail "unknown strategy %S" tok
  | [] -> fail "empty strategy"

let event_of_string line =
  match
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ' ' (String.trim line))
  with
  | at :: rest when String.length at > 1 && at.[0] = '@' ->
      {
        at = parse_float "time" (String.sub at 1 (String.length at - 1));
        strategy = strategy_of_tokens rest;
      }
  | _ -> fail "bad event line %S (expected \"@TIME STRATEGY ...\")" line

let of_string text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> List.map event_of_string

(* ------------------------------------------------------------------ *)
(* Validation and plan queries                                         *)
(* ------------------------------------------------------------------ *)

let validate ~(group_sizes : int array) plan =
  let ng = Array.length group_sizes in
  let check_g what g =
    if g < 0 || g >= ng then
      Error (Printf.sprintf "%s: group %d out of range" what g)
    else Ok ()
  in
  let check_target what = function
    | Leader g -> check_g what g
    | Node a -> (
        match check_g what a.Topology.g with
        | Error _ as e -> e
        | Ok () ->
            if a.Topology.n < 0 || a.Topology.n >= group_sizes.(a.Topology.g)
            then
              Error (Printf.sprintf "%s: node %s out of range" what (addr_str a))
            else Ok ())
  in
  let check_pos what v =
    if v > 0.0 && Float.is_finite v then Ok ()
    else Error (Printf.sprintf "%s: duration must be positive" what)
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check_strategy s =
    let what = kind_name s in
    check_target what (target_of s) >>= fun () ->
    check_pos what (window_of s) >>= fun () ->
    match s with
    | Replay { copies; gap_s; _ } ->
        if copies < 1 then Error "replay: copies must be >= 1"
        else if gap_s <= 0.0 || not (Float.is_finite gap_s) then
          Error "replay: gap must be positive"
        else Ok ()
    | Delay_valid { add_s; _ } ->
        if add_s <= 0.0 || not (Float.is_finite add_s) then
          Error "delay-valid: add must be positive"
        else Ok ()
    | Equivocate _ | Equivocate_raft _ | Withhold _ | Split_votes _
    | Tamper _ ->
        Ok ()
  in
  List.fold_left
    (fun acc { at; strategy } ->
      acc >>= fun () ->
      if at < 0.0 || not (Float.is_finite at) then
        Error (Printf.sprintf "%s: negative time" (kind_name strategy))
      else check_strategy strategy)
    (Ok ()) plan

(* Every strategy is windowed, so a plan always heals: the adversary
   stops interfering when its last window closes. *)
let heal_time plan =
  List.fold_left
    (fun acc { at; strategy } -> Float.max acc (at +. window_of strategy))
    0.0 plan

let sorted plan =
  List.stable_sort (fun a b -> Float.compare a.at b.at) plan
