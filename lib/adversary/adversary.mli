(** The Byzantine adversary engine (see DESIGN.md "Adversary model").

    Compiles an {!Adv_spec} plan into a message-level interposer on the
    engine's typed send path ({!Massbft.Node_ctx.adv_hook}). Where the
    fault injector's topology hook sees only message sizes — so it can
    drop, delay or duplicate but never lie — this hook sees the typed
    protocol message and can forge, fork, withhold, replay, delay and
    tamper per destination. [Leader g] targets re-resolve at every send,
    so attacks adapt to view changes.

    Every attributable message a compromised node emits is recorded in
    an {!Evidence} log under that node's derived key; an equivocation
    that violates safety is then provable by a conflicting signed pair.

    With an empty plan, {!arm} installs no hook and schedules nothing:
    runs are bit-identical to runs without an adversary attached. *)

module Topology = Massbft_sim.Topology

type t

val create :
  ?trace:Massbft_trace.Trace.t ->
  ?registry:Massbft_obs.Registry.t ->
  ?evidence:Evidence.log ->
  spec:Topology.spec ->
  plan:Adv_spec.plan ->
  Massbft.Engine.t ->
  Massbft_sim.Sim.t ->
  t
(** Raises [Invalid_argument] if the plan fails
    {!Adv_spec.validate} against the deployment shape. *)

val arm : t -> unit
(** Installs the interposer and schedules the plan's activation windows.
    Also arms the engine's progress watchdogs (Byzantine misbehavior
    stalls slots without crashing anyone, so recovery needs the
    watchdog-driven view changes). Strict no-op for an empty plan. Call
    once, before [Sim.run]. *)

val plan : t -> Adv_spec.plan
(** The validated plan, sorted by activation time. *)

val injected_total : t -> int
(** Messages interfered with so far (forged, dropped, replayed, delayed
    or tampered — not messages passed through untouched). *)

val evidence : t -> Evidence.log
(** The accountability log (shared with the caller if one was passed to
    {!create}). *)

val is_compromised : t -> Topology.addr -> bool
(** True once [a] has ever matched an active strategy's target — the
    run's (sticky) compromised set. Invariant checkers use this to
    restrict safety comparisons to honest replicas. *)
