(* Accountability evidence: HMAC-signed records of the protocol
   messages a compromised node emits, and the machine-checkable
   conflict pairs that prove equivocation.

   The model follows accountable-BFT practice (PeerReview, BFT
   forensics): every attributable protocol message a node sends is
   signed by that node, so two signed messages from the same signer
   claiming different values for the same consensus slot are a
   self-contained, third-party-verifiable proof of misbehavior — no
   trust in the reporter needed, only the signer's key. The simulator
   stands in the signature scheme with per-node HMAC keys derived from
   a master secret ({!Massbft_crypto.Hmac}); [verify_signed] plays the
   role of public-key verification. *)

module Hmac = Massbft_crypto.Hmac
module Hexdump = Massbft_util.Hexdump

type signed = {
  e_signer : string;  (* "g0/n1" — the node the message is signed by *)
  e_kind : string;  (* "pbft-pre-prepare" | "pbft-prepare" | ... *)
  e_gid : int;  (* consensus scope: PBFT group, or Raft instance *)
  e_seq : int;  (* PBFT local sequence, or Raft log index *)
  e_slot : string;  (* slot discriminator: "v<view>" or "t<term>" *)
  e_claim : string;  (* the claimed value (digest / payload id) *)
  e_tag : string;  (* 32-byte HMAC over the canonical bytes *)
}

type pair = { first : signed; second : signed }

let default_master = "massbft-evidence-v1"

(* Per-signer keys derived from the master secret, standing in for each
   node's signing key. *)
let signer_key ~master signer = Hmac.mac ~key:master ("node:" ^ signer)

(* Length-prefixed canonical encoding: claims are raw digest bytes and
   may contain any character, so field concatenation must be
   unambiguous. *)
let canonical ~signer ~kind ~gid ~seq ~slot ~claim =
  let field s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat ""
    [
      field signer;
      field kind;
      field (string_of_int gid);
      field (string_of_int seq);
      field slot;
      field claim;
    ]

let sign ~master ~signer ~kind ~gid ~seq ~slot ~claim =
  let bytes = canonical ~signer ~kind ~gid ~seq ~slot ~claim in
  {
    e_signer = signer;
    e_kind = kind;
    e_gid = gid;
    e_seq = seq;
    e_slot = slot;
    e_claim = claim;
    e_tag = Hmac.mac ~key:(signer_key ~master signer) bytes;
  }

let verify_signed ~master s =
  let bytes =
    canonical ~signer:s.e_signer ~kind:s.e_kind ~gid:s.e_gid ~seq:s.e_seq
      ~slot:s.e_slot ~claim:s.e_claim
  in
  Hmac.verify ~key:(signer_key ~master s.e_signer) ~msg:bytes ~tag:s.e_tag

(* A valid conflict pair: same signer claiming two different values for
   the same consensus slot, both claims carrying valid signatures. *)
let verify_pair ~master { first = a; second = b } =
  String.equal a.e_signer b.e_signer
  && String.equal a.e_kind b.e_kind
  && a.e_gid = b.e_gid
  && a.e_seq = b.e_seq
  && String.equal a.e_slot b.e_slot
  && (not (String.equal a.e_claim b.e_claim))
  && verify_signed ~master a
  && verify_signed ~master b

(* ------------------------------------------------------------------ *)
(* Text form                                                           *)
(* ------------------------------------------------------------------ *)

(* One signed record per line; slots are space-free, claims and tags
   travel hex-encoded so raw digest bytes round-trip. *)
let signed_to_string s =
  Printf.sprintf "signed %s %s %d %d %s %s %s" s.e_signer s.e_kind s.e_gid
    s.e_seq s.e_slot
    (Hexdump.encode s.e_claim)
    (Hexdump.encode s.e_tag)

let pair_to_string p =
  signed_to_string p.first ^ "\n" ^ signed_to_string p.second ^ "\n"

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let signed_of_string line =
  match
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ' ' (String.trim line))
  with
  | [ "signed"; signer; kind; gid; seq; slot; claim; tag ] ->
      let int what s =
        match int_of_string_opt s with
        | Some i -> i
        | None -> fail "bad %s %S" what s
      in
      let hex what s =
        match Hexdump.decode s with
        | v -> v
        | exception Invalid_argument _ -> fail "bad %s hex %S" what s
      in
      {
        e_signer = signer;
        e_kind = kind;
        e_gid = int "gid" gid;
        e_seq = int "seq" seq;
        e_slot = slot;
        e_claim = hex "claim" claim;
        e_tag = hex "tag" tag;
      }
  | _ -> fail "bad evidence line %S" line

let pair_of_string text =
  match
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  with
  | [ a; b ] -> { first = signed_of_string a; second = signed_of_string b }
  | lines -> fail "evidence pair needs exactly 2 lines, got %d" (List.length lines)

(* ------------------------------------------------------------------ *)
(* The evidence log                                                    *)
(* ------------------------------------------------------------------ *)

(* Records are deduplicated per (signer, kind, gid, seq, slot, claim);
   the first time a second distinct claim appears for a slot key, the
   pair is appended to the conflict list (at most one pair per slot key
   keeps the log bounded under sustained equivocation). *)
type log = {
  master : string;
  by_slot : (string, (string, signed) Hashtbl.t) Hashtbl.t;
      (* slot key -> claim -> signed record *)
  conflicted : (string, unit) Hashtbl.t;
  mutable conflicts_rev : pair list;
  mutable recorded : int;
}

let create_log ?(master = default_master) () =
  {
    master;
    by_slot = Hashtbl.create 64;
    conflicted = Hashtbl.create 8;
    conflicts_rev = [];
    recorded = 0;
  }

let master_of log = log.master

let observe log ~signer ~kind ~gid ~seq ~slot ~claim =
  let key = canonical ~signer ~kind ~gid ~seq ~slot ~claim:"" in
  let claims =
    match Hashtbl.find_opt log.by_slot key with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 2 in
        Hashtbl.replace log.by_slot key tbl;
        tbl
  in
  if not (Hashtbl.mem claims claim) then begin
    let s = sign ~master:log.master ~signer ~kind ~gid ~seq ~slot ~claim in
    (* Conflict detection before insertion: the table holds exactly the
       other claims this signer made for the slot. *)
    (if (not (Hashtbl.mem log.conflicted key)) && Hashtbl.length claims > 0
     then
       let other =
         Hashtbl.fold (fun _ v acc -> Some (Option.value acc ~default:v)) claims
           None
       in
       match other with
       | Some first ->
           Hashtbl.replace log.conflicted key ();
           log.conflicts_rev <- { first; second = s } :: log.conflicts_rev
       | None -> ());
    Hashtbl.replace claims claim s;
    log.recorded <- log.recorded + 1
  end

let recorded log = log.recorded
let conflicts log = List.rev log.conflicts_rev

let first_conflict log =
  match List.rev log.conflicts_rev with [] -> None | p :: _ -> Some p

let conflict_for log ~gid ~seq =
  List.find_opt
    (fun p -> p.first.e_gid = gid && p.first.e_seq = seq)
    (List.rev log.conflicts_rev)

let verify log p = verify_pair ~master:log.master p
