(** The live-membership reconfiguration controller (DESIGN.md §15).

    A {!Reconfig_spec} plan is armed on an engine created from the
    plan's {!Reconfig_spec.provision}ed topology: future slots exist
    from the start but stay dark — crashed and masked out of every
    quorum — until their epoch. Each plan event powers the hardware up,
    catches it up by a rate-limited chunked state transfer (capped
    backoff, donor rotation), then orders the command through global
    consensus as a zero-transaction epoch-boundary entry, so every
    group applies the membership flip at the same position in the total
    order. An empty plan arms nothing: the run is byte-identical to one
    without the reconfiguration subsystem. *)

module Topology = Massbft_sim.Topology
module Engine = Massbft.Engine
module Types = Massbft.Types
module Spec = Reconfig_spec

(** One leader's application of one epoch boundary; [b_pos] is that
    leader's executed-entry count at the flip, so agreement on
    (cmd, pos) per boundary is "every group switched at the same
    sequence number". *)
type boundary = {
  b_eid : Types.entry_id;
  b_cmd : string;
  b_gid : int;
  b_pos : int;
  b_at : float;
}

(** The state-transfer receipt recorded when a join activates. *)
type join_report = {
  j_cmd : string;
  j_gid : int;
  j_donor : int;
  j_bytes : int;
  j_chunks : int;
  j_retries : int;
  j_started : float;
  j_activated : float;
  j_fingerprint : string;
  j_src_fingerprint : string;
  j_height : int;
  j_src_height : int;
  j_head : string;
  j_src_head : string;
}

type t

val arm : Engine.t -> provisioned:Spec.provisioned -> Spec.plan -> t
(** Arm the plan on a not-yet-started engine that was created from
    [provisioned.p_spec]. Installs the membership masks, crashes the
    dark slots, installs the engine's [reconfig_round]/[reconfig_apply]
    seams and schedules the plan's triggers. An empty plan changes
    nothing. *)

val boundaries : t -> boundary list
(** Every (leader, boundary) application, oldest first. *)

val joins : t -> join_report list
val transfer_retries : t -> int
val epochs : t -> int
(** Epoch boundaries executed so far. *)

val transfers_bytes : t -> int
val boundary_to_string : boundary -> string
val join_to_string : join_report -> string

val final_violations : t -> (string * string) list
(** End-of-run epoch-aware checks as (check, detail) pairs: boundary
    agreement across leaders, the on-chain config record, join-time
    state-transfer equality, and post-join chain/exec agreement between
    the joined group and the coordinator. Empty means clean. *)
