(* The live-membership reconfiguration controller.

   A plan (Reconfig_spec) is armed on a freshly created engine whose
   topology was expanded by [Reconfig_spec.provision]: every slot the
   plan will ever activate exists from the start but is dark — crashed
   and masked out of every quorum — until its epoch. At each plan
   event the controller powers the dark hardware up, catches it up by a
   rate-limited chunked state transfer (with capped-backoff retry and
   donor rotation), and then submits the command's one-line wire form
   to the coordinator group, where the batcher forms it into a zero-txn
   epoch-boundary entry. That entry rides global consensus like any
   batch, so its position in the total order is the agreed cut: the
   first leader to close its round registers the round-indexed
   membership masks (the [reconfig_round] seam), and each leader
   executing it applies the flip at the same logical position (the
   [reconfig_apply] seam). A joining group's leader is activated by
   cloning the first executor's replicated state at that exact cut, so
   it resumes with the incumbents' store fingerprint, ledger head and
   ordering state, then proposes its own entries from the next epoch. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Engine = Massbft.Engine
module N = Massbft.Node_ctx
module Types = Massbft.Types
module Config = Massbft.Config
module Backoff = Massbft.Backoff
module Orderer = Massbft.Orderer
module Batcher = Massbft.Batcher
module Execution = Massbft.Execution
module Replication = Massbft.Replication
module Global_consensus = Massbft.Global_consensus
module Pbft = Massbft_consensus.Pbft
module Kvstore = Massbft_exec.Kvstore
module Ledger = Massbft_exec.Ledger
module W = Massbft_workload.Workload
module Entry_tbl = Types.Entry_tbl
module Spec = Reconfig_spec

(* ------------------------------------------------------------------ *)
(* Records the epoch-aware invariants consume                          *)
(* ------------------------------------------------------------------ *)

(* One leader's application of one epoch boundary: [b_pos] is that
   leader's executed-entry count at the flip. All leaders execute the
   same total order, so agreement on (cmd, pos) per boundary is exactly
   "every group switched at the same sequence number". *)
type boundary = {
  b_eid : Types.entry_id;
  b_cmd : string;
  b_gid : int;
  b_pos : int;
  b_at : float;
}

type join_report = {
  j_cmd : string;
  j_gid : int;
  j_donor : int;  (* the group that served the state transfer *)
  j_bytes : int;
  j_chunks : int;
  j_retries : int;
  j_started : float;
  j_activated : float;
  j_fingerprint : string;  (* joiner store fingerprint at activation *)
  j_src_fingerprint : string;  (* clone source's, same instant *)
  j_height : int;
  j_src_height : int;
  j_head : string;
  j_src_head : string;
}

(* A chunked snapshot shipment over the bulk lane. One chunk is in
   flight at a time (the rate limit); a watchdog detects a stalled
   flow (crashed donor or joiner, partition) and resumes from the last
   delivered chunk after a capped-backoff delay, rotating to another
   member donor. *)
type transfer = {
  x_wire : string;  (* the command submitted when the transfer lands *)
  x_dst : Topology.addr;
  x_gid : int;  (* the joining group (add-group) / host group (add-node) *)
  x_lan : bool;  (* add-node: intra-group snapshot fetch *)
  x_bytes : int;
  x_chunks : int;
  x_started : float;
  mutable x_donor : int;
  mutable x_got : int;
  mutable x_last : int;
  mutable x_attempt : int;
  mutable x_retries : int;
  mutable x_done : bool;
}

type t = {
  eng : Engine.t;
  c : N.t;
  plan : Spec.plan;
  base_ng : int;
  mutable next_gid : int;  (* next unused gid for add-group *)
  next_slot : int array;  (* next dark slot to power up, per group *)
  flipped : unit Entry_tbl.t;  (* round-mask registration, once per eid *)
  applied : unit Entry_tbl.t;  (* executed-side flip, once per eid *)
  members_at : int list Entry_tbl.t;  (* membership after each boundary *)
  pending : (string, transfer) Hashtbl.t;  (* wire command -> transfer *)
  mutable transfers : transfer list;
  mutable boundaries : boundary list;  (* newest first *)
  mutable joins : join_report list;
  mutable retries : int;
}

let chunk_bytes = 256 * 1024

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let tokens s =
  List.filter (fun x -> x <> "") (String.split_on_char ' ' (String.trim s))

let kw_int toks key =
  let rec go = function
    | k :: v :: _ when k = key -> int_of_string_opt v
    | _ :: rest -> go rest
    | [] -> None
  in
  go toks

(* The joining gid rides the wire form ("add-group size 4 gid 3") so
   every leader admits the same physical group. *)
let wire_gid wire =
  match kw_int (tokens wire) "gid" with
  | Some g -> g
  | None -> invalid_arg ("Reconfig: add-group wire missing gid: " ^ wire)

let members (c : N.t) =
  let ms = ref [] in
  for g = c.N.ng - 1 downto 0 do
    if c.N.g_member.(g) then ms := g :: !ms
  done;
  !ms

let rank g ms =
  let rec go i = function
    | [] -> None
    | x :: r -> if x = g then Some i else go (i + 1) r
  in
  go 0 ms

let group_view (c : N.t) g =
  let v = ref 0 in
  for n = 0 to c.N.active_n.(g) - 1 do
    match c.N.nodes.(g).(n).N.n_pbft with
    | Some p -> if Pbft.view p > !v then v := Pbft.view p
    | None -> ()
  done;
  !v

(* Drive the group's PBFT to the smallest future view whose round-robin
   leader is [slot] (leader re-placement, and view re-alignment across
   a resize — [leader_of_view] depends on n). *)
let drive_leader_to t g slot =
  let c = t.c in
  let n = c.N.active_n.(g) in
  let v = ref (group_view c g + 1) in
  while !v mod n <> slot do
    incr v
  done;
  for i = 0 to n - 1 do
    let a = { Topology.g; n = i } in
    if Topology.alive c.N.topo a then
      match c.N.nodes.(g).(i).N.n_pbft with
      | Some p -> Pbft.start_view_change ~target:!v p
      | None -> ()
  done

(* After a resize, keep the acting leader in place: if the new view
   mapping deposed it, drive a view change back to its slot. *)
let realign t g =
  let c = t.c in
  let l = c.N.leaders.(g) in
  if l.N.l_addr.Topology.n < c.N.active_n.(g) then
    match (N.node_of c l.N.l_addr).N.n_pbft with
    | Some p when not (Pbft.is_leader p) ->
        drive_leader_to t g l.N.l_addr.Topology.n
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* State transfer                                                      *)
(* ------------------------------------------------------------------ *)

let live_donors t ~exclude =
  let c = t.c in
  let ds = ref [] in
  for g = c.N.ng - 1 downto 0 do
    if
      g <> exclude && c.N.g_member.(g)
      && Topology.alive c.N.topo c.N.leaders.(g).N.l_addr
    then ds := g :: !ds
  done;
  match !ds with [] -> [ 0 ] | l -> l

let finish t x =
  if not x.x_done then begin
    x.x_done <- true;
    Engine.submit_conf t.eng x.x_wire
  end

let rec ship t x =
  if not x.x_done then
    if x.x_got >= x.x_chunks then finish t x
    else begin
      let c = t.c in
      let src =
        if x.x_lan then c.N.leaders.(x.x_gid).N.l_addr
        else c.N.leaders.(x.x_donor).N.l_addr
      in
      let bytes = min chunk_bytes (x.x_bytes - (x.x_got * chunk_bytes)) in
      (* A send from or to a crashed node is silently dropped by the
         topology: the continuation never runs and the watchdog takes
         over. Duplicate chunks from a spurious retry only add traffic;
         progress counts deliveries. *)
      Topology.send ~bulk:true c.N.topo ~src ~dst:x.x_dst ~bytes:(max 1 bytes)
        (fun () ->
          x.x_got <- x.x_got + 1;
          ship t x)
    end

let rec watch t x =
  if not x.x_done then begin
    let c = t.c in
    let s = N.sim_of c x.x_dst.Topology.g in
    ignore
      (Sim.after s 0.75 (fun () ->
           if not x.x_done then begin
             if x.x_got = x.x_last then begin
               x.x_attempt <- x.x_attempt + 1;
               x.x_retries <- x.x_retries + 1;
               t.retries <- t.retries + 1;
               if not x.x_lan then begin
                 let ds = live_donors t ~exclude:x.x_gid in
                 x.x_donor <- List.nth ds (x.x_attempt mod List.length ds)
               end;
               let d =
                 Backoff.delay ~seed:c.N.cfg.Config.seed
                   ~salt:((x.x_gid * 131) + x.x_attempt)
                   ~attempt:x.x_attempt ~base:0.1 ~cap:1.5
               in
               ignore (Sim.after s d (fun () -> ship t x))
             end;
             x.x_last <- x.x_got;
             watch t x
           end))
  end

let start_transfer t ~wire ~gid ~dst ~lan =
  let c = t.c in
  let donor =
    if lan then gid
    else match live_donors t ~exclude:gid with d :: _ -> d | [] -> 0
  in
  let dl = c.N.leaders.(donor) in
  let bytes =
    (Kvstore.size dl.N.l_store * 96)
    + (Ledger.height dl.N.l_ledger * 160)
    + 4096
  in
  let x =
    {
      x_wire = wire;
      x_dst = dst;
      x_gid = gid;
      x_lan = lan;
      x_bytes = bytes;
      x_chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
      x_started = N.now c;
      x_donor = donor;
      x_got = 0;
      x_last = -1;
      x_attempt = 0;
      x_retries = 0;
      x_done = false;
    }
  in
  t.transfers <- x :: t.transfers;
  Hashtbl.replace t.pending wire x;
  ship t x;
  watch t x

(* ------------------------------------------------------------------ *)
(* Plan-event triggers                                                 *)
(* ------------------------------------------------------------------ *)

let trigger t (cmd : Spec.command) =
  let c = t.c in
  match cmd with
  | Spec.Add_node g ->
      let slot = t.next_slot.(g) in
      t.next_slot.(g) <- slot + 1;
      let a = { Topology.g; n = slot } in
      Engine.recover_node t.eng a;
      start_transfer t ~wire:(Spec.command_to_string cmd) ~gid:g ~dst:a
        ~lan:true
  | Spec.Remove_node _ | Spec.Move_leader _ | Spec.Remove_group _ ->
      Engine.submit_conf t.eng (Spec.command_to_string cmd)
  | Spec.Add_group { size } ->
      let gid = t.next_gid in
      t.next_gid <- gid + 1;
      Engine.recover_group t.eng gid;
      let wire = Printf.sprintf "add-group size %d gid %d" size gid in
      start_transfer t ~wire ~gid ~dst:c.N.leaders.(gid).N.l_addr ~lan:false

(* ------------------------------------------------------------------ *)
(* The epoch flip: per-command executed-side actions                   *)
(* ------------------------------------------------------------------ *)

let add_join t report = t.joins <- report :: t.joins

let activate_node t g wire =
  let c = t.c in
  let slot = c.N.active_n.(g) in
  c.N.active_n.(g) <- slot + 1;
  Array.iter
    (fun (nd : N.node) ->
      match nd.N.n_pbft with
      | Some p -> Pbft.resize p ~n:(slot + 1)
      | None -> ())
    c.N.nodes.(g);
  (* State transfer onto the joining replica: the group's decided
     history and current view, so it votes from the next slot on. *)
  let src = c.N.leaders.(g).N.l_addr in
  (match c.N.nodes.(g).(slot).N.n_pbft with
  | Some p ->
      for seq = 1 to Engine.proposed_seqs t.eng ~gid:g do
        match Engine.replica_decided t.eng ~g ~n:src.Topology.n ~seq with
        | Some d -> Pbft.install_decided p ~seq ~digest:d
        | None -> ()
      done;
      Pbft.rejoin p ~view:(group_view c g)
  | None -> ());
  realign t g;
  let x = Hashtbl.find_opt t.pending wire in
  let l = c.N.leaders.(g) in
  let fp = Kvstore.fingerprint l.N.l_store in
  let h = Ledger.height l.N.l_ledger and hh = Ledger.head_hash l.N.l_ledger in
  add_join t
    {
      j_cmd = wire;
      j_gid = g;
      j_donor = g;
      j_bytes = (match x with Some x -> x.x_bytes | None -> 0);
      j_chunks = (match x with Some x -> x.x_chunks | None -> 0);
      j_retries = (match x with Some x -> x.x_retries | None -> 0);
      j_started = (match x with Some x -> x.x_started | None -> N.now c);
      j_activated = N.now c;
      j_fingerprint = fp;
      j_src_fingerprint = fp;
      j_height = h;
      j_src_height = h;
      j_head = hh;
      j_src_head = hh;
    }

let retire_node t g =
  let c = t.c in
  let slot = c.N.active_n.(g) - 1 in
  c.N.active_n.(g) <- slot;
  Array.iter
    (fun (nd : N.node) ->
      match nd.N.n_pbft with Some p -> Pbft.resize p ~n:slot | None -> ())
    c.N.nodes.(g);
  Engine.crash_node t.eng { Topology.g; n = slot };
  realign t g

let place_leader t (a : Topology.addr) =
  let c = t.c in
  let l = c.N.leaders.(a.Topology.g) in
  if not (Topology.addr_equal l.N.l_addr a) then
    (* The engine's leadership watchdog adopts the new view's leader and
       migrates the leader record once the view change completes. *)
    drive_leader_to t a.Topology.g a.Topology.n

let expel_group t g =
  let c = t.c in
  c.N.g_member.(g) <- false;
  if not c.N.strat.N.ord.N.o_rounds then c.N.member_until.(g) <- 0;
  (* GeoBFT releases a proposer's pipeline slot when [ng - 1] delivery
     notes arrive; in-flight proposals whose copies reached the
     departing group before the crash are stranded one note short.
     Credit the missing note on every decided entry still below the
     threshold ([committed_at] is no marker here — direct broadcast
     stamps it at decide time). The counter advances one note per
     call, so a late real note from the departing group cannot skip
     the threshold equality. *)
  if Engine.raft_instances t.eng = 0 then begin
    let snap = N.entries_snapshot c in
    Array.iter
      (fun (pl : N.leader) ->
        if c.N.g_member.(pl.N.l_gid) then
          List.iter
            (fun (e : N.entry) ->
              let notes =
                match Entry_tbl.find_opt pl.N.l_recv_notes e.N.eid with
                | Some r -> !r
                | None -> 0
              in
              if
                e.N.eid.Types.gid = pl.N.l_gid
                && e.N.decided_at > 0.0
                && notes < c.N.ng - 1
              then Global_consensus.handle_recv_note c ~dst:pl.N.l_addr e.N.eid)
            snap)
      c.N.leaders
  end;
  Engine.crash_group t.eng g

(* The consistent-cut clone: the first member leader to execute the
   admission boundary has, at that instant, exactly the agreed pre-epoch
   state — store, ledger, ordering and commit bookkeeping. The joiner
   adopts all of it, marks every global-consensus commit index at or
   below the cut as transferred history (anti-entropy backfills the
   rest under [l_skip_commits_below]), and starts proposing in the next
   epoch. *)
let admit_group t ~(src : N.leader) ~gid ~size wire =
  let c = t.c in
  let dst = c.N.leaders.(gid) in
  c.N.active_n.(gid) <- size;
  c.N.g_member.(gid) <- true;
  if not c.N.strat.N.ord.N.o_rounds then c.N.member_from.(gid) <- 0;
  if dst.N.l_store != src.N.l_store then
    Kvstore.copy_into ~src:src.N.l_store ~dst:dst.N.l_store;
  List.iter
    (fun (b : Ledger.block) ->
      ignore
        (Ledger.append dst.N.l_ledger ~gid:b.Ledger.gid ~seq:b.Ledger.seq
           ~txn_count:b.Ledger.txn_count ~payload_digest:b.Ledger.payload_digest))
    (Ledger.blocks src.N.l_ledger);
  dst.N.l_executed_rev <- src.N.l_executed_rev;
  dst.N.l_executed_count <- src.N.l_executed_count;
  Array.blit src.N.l_clk_of 0 dst.N.l_clk_of 0 (Array.length src.N.l_clk_of);
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.N.l_ts_mark k v) src.N.l_ts_mark;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.N.l_ts_seen k v) src.N.l_ts_seen;
  Entry_tbl.iter
    (fun k v -> Entry_tbl.replace dst.N.l_committed_unexec k v)
    src.N.l_committed_unexec;
  Entry_tbl.iter
    (fun k v -> Entry_tbl.replace dst.N.l_round_ready k v)
    src.N.l_round_ready;
  dst.N.l_next_round <- src.N.l_next_round;
  (* Anything buffered while dark is part of the cloned history. *)
  Queue.clear dst.N.l_deferred;
  if c.N.strat.N.ord.N.o_rounds then begin
    (* The zero-transaction boundary executes synchronously inside its
       round's enqueue sweep (zero CPU cost short-circuits the charge),
       so the boundary's own round-mates may not have reached the
       source's queue yet when this clone runs. Rebuild the joiner's
       backlog from the round structure itself: every member entry of
       an already-closed round that is not in the cloned ledger, in
       execution order. *)
    let in_ledger = Hashtbl.create 64 in
    List.iter
      (fun (b : Ledger.block) ->
        Hashtbl.replace in_ledger (b.Ledger.gid, b.Ledger.seq) ())
      (Ledger.blocks src.N.l_ledger);
    for r = 1 to src.N.l_next_round - 1 do
      for g = 0 to c.N.ng - 1 do
        if N.member_in_round c g r && not (Hashtbl.mem in_ledger (g, r)) then
          Queue.push { Types.gid = g; seq = r } dst.N.l_exec_q
      done
    done
  end
  else Queue.iter (fun x -> Queue.push x dst.N.l_exec_q) src.N.l_exec_q;
  (* Content for the rebuilt backlog predates the flip, so no copy ever
     targeted the joiner; fetch it rather than waiting for the pump's
     head-repair timeout. *)
  Queue.iter
    (fun eid ->
      if
        Engine.entry_digest t.eng eid <> None
        && not (N.has_content (N.node_of c dst.N.l_addr) eid)
      then Replication.want_fetch c dst eid)
    dst.N.l_exec_q;
  (match (src.N.l_orderer, dst.N.l_orderer) with
  | Some s, Some d ->
      Orderer.copy_state ~src:s ~into:d;
      Orderer.set_active d gid true
  | _ -> ());
  let n_inst = Engine.raft_instances t.eng in
  dst.N.l_skip_commits_below <-
    Array.init n_inst (fun i ->
        Engine.raft_commit_index t.eng ~gid:src.N.l_gid ~inst:i);
  Array.fill dst.N.l_last_heard 0 (Array.length dst.N.l_last_heard) (N.now c);
  if c.N.strat.N.ord.N.o_rounds then
    dst.N.l_next_seq <- c.N.member_from.(gid);
  dst.N.l_in_flight <- 0;
  dst.N.l_batch_pending <- true;
  (* GeoBFT ships copies point-to-point at proposal time: entries of
     post-cut rounds proposed before this flip never targeted the
     joiner, and its round barrier would starve waiting for them. Fetch
     whatever is already registered; later proposals include it. *)
  if n_inst = 0 then begin
    let from_seq = max 1 c.N.member_from.(gid) in
    for j = 0 to c.N.ng - 1 do
      if j <> gid && c.N.g_member.(j) then
        for seq = from_seq to Engine.proposed_seqs t.eng ~gid:j do
          let eid = { Types.gid = j; seq } in
          if
            Engine.entry_digest t.eng eid <> None
            && not (N.has_content (N.node_of c dst.N.l_addr) eid)
          then Replication.want_fetch c dst eid
        done
    done
  end;
  let x = Hashtbl.find_opt t.pending wire in
  add_join t
    {
      j_cmd = wire;
      j_gid = gid;
      j_donor = (match x with Some x -> x.x_donor | None -> src.N.l_gid);
      j_bytes = (match x with Some x -> x.x_bytes | None -> 0);
      j_chunks = (match x with Some x -> x.x_chunks | None -> 0);
      j_retries = (match x with Some x -> x.x_retries | None -> 0);
      j_started = (match x with Some x -> x.x_started | None -> N.now c);
      j_activated = N.now c;
      j_fingerprint = Kvstore.fingerprint dst.N.l_store;
      j_src_fingerprint = Kvstore.fingerprint src.N.l_store;
      j_height = Ledger.height dst.N.l_ledger;
      j_src_height = Ledger.height src.N.l_ledger;
      j_head = Ledger.head_hash dst.N.l_ledger;
      j_src_head = Ledger.head_hash src.N.l_ledger;
    }

(* ------------------------------------------------------------------ *)
(* The two engine seams                                                *)
(* ------------------------------------------------------------------ *)

(* Round-barrier seam: the first leader to close the round holding the
   boundary registers the round-indexed membership window before any
   leader evaluates the next round's barrier. Only the window is
   registered here — the instantaneous flip waits for execution. *)
let on_round t (e : N.entry) r =
  if not (Entry_tbl.mem t.flipped e.N.eid) then begin
    Entry_tbl.replace t.flipped e.N.eid ();
    let c = t.c in
    let wire = Option.get e.N.conf in
    match Spec.command_of_string wire with
    | Spec.Add_group _ -> c.N.member_from.(wire_gid wire) <- r + 1
    | Spec.Remove_group g -> c.N.member_until.(g) <- r + 1
    | Spec.Add_node _ | Spec.Remove_node _ | Spec.Move_leader _ -> ()
  end

(* Executed-side flip, applied once globally (first executor) plus a
   per-executor part: each leader flips its own orderer mask and key
   range at its own execution of the boundary, which is the same
   position in every leader's order. *)
let apply_once t (l : N.leader) (e : N.entry) wire cmd =
  if not (Entry_tbl.mem t.applied e.N.eid) then begin
    Entry_tbl.replace t.applied e.N.eid ();
    let c = t.c in
    (match cmd with
    | Spec.Add_node g -> activate_node t g wire
    | Spec.Remove_node g -> retire_node t g
    | Spec.Move_leader a -> place_leader t a
    | Spec.Add_group { size } -> admit_group t ~src:l ~gid:(wire_gid wire) ~size wire
    | Spec.Remove_group g -> expel_group t g);
    let ms = members c in
    Entry_tbl.replace t.members_at e.N.eid ms;
    match cmd with
    | Spec.Add_group _ ->
        (* The joiner never executes its own admission entry — the clone
           is its execution. Give it its key range and a synthetic
           boundary record at the donor's position, then start it. *)
        let gid = wire_gid wire in
        let dst = c.N.leaders.(gid) in
        (match rank gid ms with
        | Some i -> W.set_shard dst.N.l_gen ~index:i ~count:(List.length ms)
        | None -> ());
        t.boundaries <-
          {
            b_eid = e.N.eid;
            b_cmd = wire;
            b_gid = gid;
            b_pos = dst.N.l_executed_count;
            b_at = N.now c;
          }
          :: t.boundaries;
        Execution.pump c dst;
        Batcher.try_batch c dst
    | _ -> ()
  end

let on_apply t (l : N.leader) (e : N.entry) =
  let c = t.c in
  let wire = match e.N.conf with Some w -> w | None -> assert false in
  let cmd = Spec.command_of_string wire in
  apply_once t l e wire cmd;
  t.boundaries <-
    {
      b_eid = e.N.eid;
      b_cmd = wire;
      b_gid = l.N.l_gid;
      b_pos = l.N.l_executed_count;
      b_at = N.now c;
    }
    :: t.boundaries;
  match cmd with
  | Spec.Add_group _ | Spec.Remove_group _ ->
      let g, joins =
        match cmd with
        | Spec.Add_group _ -> (wire_gid wire, true)
        | Spec.Remove_group g -> (g, false)
        | _ -> assert false
      in
      (match l.N.l_orderer with
      | Some o when l.N.l_gid <> g -> Orderer.set_active o g joins
      | _ -> ());
      (match Entry_tbl.find_opt t.members_at e.N.eid with
      | Some ms -> (
          match rank l.N.l_gid ms with
          | Some i -> W.set_shard l.N.l_gen ~index:i ~count:(List.length ms)
          | None -> ())
      | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)
(* ------------------------------------------------------------------ *)

let arm eng ~(provisioned : Spec.provisioned) plan =
  let c = Engine.ctx eng in
  let ng = c.N.ng in
  let base_ng =
    let b = ref ng in
    (try
       for g = 0 to ng - 1 do
         if not provisioned.Spec.p_member.(g) then begin
           b := g;
           raise Exit
         end
       done
     with Exit -> ());
    !b
  in
  let t =
    {
      eng;
      c;
      plan;
      base_ng;
      next_gid = base_ng;
      next_slot = Array.copy provisioned.Spec.p_active;
      flipped = Entry_tbl.create 8;
      applied = Entry_tbl.create 8;
      members_at = Entry_tbl.create 8;
      pending = Hashtbl.create 8;
      transfers = [];
      boundaries = [];
      joins = [];
      retries = 0;
    }
  in
  if plan <> [] then begin
    c.N.reconfig_on <- true;
    Array.blit provisioned.Spec.p_active 0 c.N.active_n 0 ng;
    Array.blit provisioned.Spec.p_member 0 c.N.g_member 0 ng;
    for g = 0 to ng - 1 do
      if not provisioned.Spec.p_member.(g) then begin
        (* dark until its admission epoch *)
        c.N.member_from.(g) <- max_int;
        Topology.crash_group c.N.topo g
      end
      else begin
        let phys = Topology.group_size c.N.topo g in
        let act = provisioned.Spec.p_active.(g) in
        for n = act to phys - 1 do
          Topology.crash c.N.topo { Topology.g; n }
        done;
        if act < phys then
          Array.iter
            (fun (nd : N.node) ->
              match nd.N.n_pbft with
              | Some p -> Pbft.resize p ~n:act
              | None -> ())
            c.N.nodes.(g)
      end
    done;
    c.N.reconfig_round <- Some (fun _c e r -> on_round t e r);
    c.N.reconfig_apply <- Some (fun _c l e -> on_apply t l e);
    (* Leader re-placement and post-resize re-alignment ride the
       engine's leadership watchdog; fault-free reconfig runs need it
       armed up front. *)
    Engine.arm_watchdogs eng;
    let s0 = N.sim_of c 0 in
    List.iter
      (fun (ev : Spec.event) ->
        ignore (Sim.at s0 ev.Spec.at (fun () -> trigger t ev.Spec.cmd)))
      (Spec.sorted plan)
  end;
  t

(* ------------------------------------------------------------------ *)
(* Accessors and the epoch-aware final checks                          *)
(* ------------------------------------------------------------------ *)

let boundaries t = List.rev t.boundaries
let joins t = List.rev t.joins
let transfer_retries t = t.retries
let epochs t = Entry_tbl.length t.applied
let transfers_bytes t = List.fold_left (fun a x -> a + x.x_bytes) 0 t.transfers

let boundary_to_string b =
  Printf.sprintf "@%.3f %s at %s pos %d (g%d)" b.b_at b.b_cmd
    (Types.entry_id_to_string b.b_eid)
    b.b_pos b.b_gid

let join_to_string j =
  Printf.sprintf
    "g%d joined via g%d: %d bytes / %d chunks / %d retries in %.3fs; \
     fingerprint %s height %d"
    j.j_gid j.j_donor j.j_bytes j.j_chunks j.j_retries
    (j.j_activated -. j.j_started)
    (if j.j_fingerprint = j.j_src_fingerprint then "matches donor"
     else "DIVERGES from donor")
    j.j_height

(* End-of-run epoch-aware checks, reported as (check, detail) pairs the
   chaos layer merges with the standard invariant violations:
   - epoch agreement: every leader applied each boundary with the same
     command at the same position in its executed stream;
   - on-chain record: each boundary is a zero-txn block in the
     coordinator's ledger;
   - join state transfer: at activation the joiner's store fingerprint,
     ledger height and head hash equalled the clone source's;
   - join chain agreement: a joined group's ledger stays a prefix-
     consistent replica of the coordinator's afterwards. *)
let final_violations t =
  let c = t.c in
  let vs = ref [] in
  let add check detail = vs := (check, detail) :: !vs in
  let by_eid = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let k = Types.entry_id_to_string b.b_eid in
      let prev = try Hashtbl.find by_eid k with Not_found -> [] in
      Hashtbl.replace by_eid k (b :: prev))
    t.boundaries;
  Hashtbl.iter
    (fun k bs ->
      match bs with
      | [] | [ _ ] -> ()
      | b0 :: rest ->
          List.iter
            (fun b ->
              if b.b_cmd <> b0.b_cmd then
                add "epoch_agreement"
                  (Printf.sprintf "boundary %s: g%d applied %S, g%d applied %S"
                     k b.b_gid b.b_cmd b0.b_gid b0.b_cmd);
              if b.b_pos <> b0.b_pos then
                add "epoch_agreement"
                  (Printf.sprintf
                     "boundary %s: g%d flipped at position %d, g%d at %d" k
                     b.b_gid b.b_pos b0.b_gid b0.b_pos))
            rest)
    by_eid;
  if t.boundaries <> [] then begin
    let on_chain = Hashtbl.create 64 in
    List.iter
      (fun (b : Ledger.block) ->
        Hashtbl.replace on_chain (b.Ledger.gid, b.Ledger.seq) b.Ledger.txn_count)
      (Ledger.blocks (Engine.ledger_of t.eng ~gid:0));
    Entry_tbl.iter
      (fun (eid : Types.entry_id) () ->
        match Hashtbl.find_opt on_chain (eid.Types.gid, eid.Types.seq) with
        | Some 0 -> ()
        | Some n ->
            add "epoch_on_chain"
              (Printf.sprintf "boundary %s recorded with %d txns (want 0)"
                 (Types.entry_id_to_string eid)
                 n)
        | None ->
            add "epoch_on_chain"
              (Printf.sprintf "boundary %s missing from the coordinator ledger"
                 (Types.entry_id_to_string eid)))
      t.applied
  end;
  List.iter
    (fun j ->
      if j.j_fingerprint <> j.j_src_fingerprint then
        add "join_state_transfer"
          (Printf.sprintf "g%d activated with a store diverging from g%d"
             j.j_gid j.j_donor);
      if j.j_height <> j.j_src_height || j.j_head <> j.j_src_head then
        add "join_state_transfer"
          (Printf.sprintf
             "g%d activated at ledger height %d/head %s; source %d/%s" j.j_gid
             j.j_height
             (String.sub (j.j_head ^ String.make 8 '0') 0 8)
             j.j_src_height
             (String.sub (j.j_src_head ^ String.make 8 '0') 0 8));
      if j.j_gid > 0 && j.j_gid < c.N.ng && c.N.g_member.(j.j_gid) then begin
        let lj = Engine.ledger_of t.eng ~gid:j.j_gid in
        let l0 = Engine.ledger_of t.eng ~gid:0 in
        let p = Ledger.equal_prefix lj l0 in
        let m = min (Ledger.height lj) (Ledger.height l0) in
        if p < m then
          add "join_chain_agreement"
            (Printf.sprintf "g%d diverges from g0 at height %d" j.j_gid p);
        if
          Ledger.height lj = Ledger.height l0
          && Engine.leader_store_fingerprint t.eng ~gid:j.j_gid
             <> Engine.leader_store_fingerprint t.eng ~gid:0
        then
          add "join_exec_determinism"
            (Printf.sprintf
               "g%d equal-height store fingerprint differs from g0" j.j_gid)
      end)
    t.joins;
  List.rev !vs
