(* The reconfiguration-plan DSL: typed membership-change commands with a
   stable one-line text form, so a plan travels exactly like a fault
   schedule (a CI artifact, a `massbft run --reconfig FILE`, a drill
   repro) and parses back into the same transition sequence. *)

module Topology = Massbft_sim.Topology

type command =
  | Add_node of int
      (* the group gains one node: provisioned spare slot, brought up,
         caught up by state transfer, activated in the next epoch *)
  | Remove_node of int
      (* the group retires its highest active slot (permanent crash) *)
  | Move_leader of Topology.addr
  | Add_group of { size : int }
      (* a whole new group joins (gid = next unused), with ledger state
         transfer and key-range resharding of the workload *)
  | Remove_group of int
      (* the group leaves the membership; its key range is reabsorbed *)

type event = { at : float; cmd : command }
type plan = event list

let kind_name = function
  | Add_node _ -> "add_node"
  | Remove_node _ -> "remove_node"
  | Move_leader _ -> "move_leader"
  | Add_group _ -> "add_group"
  | Remove_group _ -> "remove_group"

let kind_names = [ "add-node"; "remove-node"; "move-leader"; "add-group"; "remove-group" ]

(* %g keeps the text form compact and round-trips every value the
   generator emits (times quantized to 1 ms). *)
let fl = Printf.sprintf "%g"

let addr_str (a : Topology.addr) =
  Printf.sprintf "g%d/n%d" a.Topology.g a.Topology.n

let command_to_string = function
  | Add_node g -> Printf.sprintf "add-node g%d" g
  | Remove_node g -> Printf.sprintf "remove-node g%d" g
  | Move_leader a -> "move-leader " ^ addr_str a
  | Add_group { size } -> Printf.sprintf "add-group size %d" size
  | Remove_group g -> Printf.sprintf "remove-group g%d" g

let event_to_string { at; cmd } =
  Printf.sprintf "@%s %s" (fl at) (command_to_string cmd)

let to_string plan =
  String.concat "" (List.map (fun e -> event_to_string e ^ "\n") plan)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad %s %S" what s

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "bad %s %S" what s

let parse_gid s =
  if String.length s >= 2 && s.[0] = 'g' then
    parse_int "group" (String.sub s 1 (String.length s - 1))
  else fail "bad group %S (expected gN)" s

let parse_addr s =
  match String.index_opt s '/' with
  | Some i
    when i >= 2
         && s.[0] = 'g'
         && String.length s > i + 2
         && s.[i + 1] = 'n' ->
      let g = parse_int "group" (String.sub s 1 (i - 1)) in
      let n =
        parse_int "node" (String.sub s (i + 2) (String.length s - i - 2))
      in
      { Topology.g; n }
  | _ -> fail "bad address %S (expected gG/nN)" s

let rec kw_args = function
  | [] -> []
  | [ k ] -> fail "missing value for %S" k
  | k :: v :: rest -> (k, v) :: kw_args rest

let kw what args k =
  match List.assoc_opt k args with
  | Some v -> v
  | None -> fail "%s: missing %S" what k

let command_of_tokens = function
  | [ "add-node"; g ] -> Add_node (parse_gid g)
  | [ "remove-node"; g ] -> Remove_node (parse_gid g)
  | [ "move-leader"; a ] -> Move_leader (parse_addr a)
  | "add-group" :: rest ->
      let args = kw_args rest in
      Add_group { size = parse_int "size" (kw "add-group" args "size") }
  | [ "remove-group"; g ] -> Remove_group (parse_gid g)
  | tok :: _ -> fail "unknown command %S" tok
  | [] -> fail "empty command"

(* The wire form of a command (what rides inside an epoch-boundary
   entry's [conf] payload): a command line with no @TIME prefix. The
   tolerant keyword parser lets the controller append bookkeeping pairs
   — e.g. "add-group size 4 gid 3" pins the joining gid so every leader
   applies the same physical group. *)
let command_of_string s =
  command_of_tokens
    (List.filter
       (fun x -> x <> "")
       (String.split_on_char ' ' (String.trim s)))

let event_of_string line =
  match
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ' ' (String.trim line))
  with
  | at :: rest when String.length at > 1 && at.[0] = '@' ->
      {
        at = parse_float "time" (String.sub at 1 (String.length at - 1));
        cmd = command_of_tokens rest;
      }
  | _ -> fail "bad event line %S (expected \"@TIME COMMAND ...\")" line

let of_string text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> List.map event_of_string

let sorted plan =
  List.stable_sort (fun a b -> Float.compare a.at b.at) plan

let last_time plan =
  List.fold_left (fun acc e -> Float.max acc e.at) 0.0 plan

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(* Walk the plan in time order, tracking the evolving membership:
   whole-group adds extend the gid space, node removes must keep the
   group PBFT-viable (n >= 4, so f >= 1), and the coordinator group 0
   (which anchors the global layer) can never leave. *)
let validate ~(group_sizes : int array) plan =
  let base_ng = Array.length group_sizes in
  let adds =
    List.length
      (List.filter (fun e -> match e.cmd with Add_group _ -> true | _ -> false)
         plan)
  in
  let ngmax = base_ng + adds in
  let act = Array.make (max 1 ngmax) 0 in
  Array.blit group_sizes 0 act 0 base_ng;
  let is_member = Array.make (max 1 ngmax) false in
  Array.fill is_member 0 base_ng true;
  let ng = ref base_ng in
  let members () =
    let c = ref 0 in
    for g = 0 to !ng - 1 do
      if is_member.(g) then incr c
    done;
    !c
  in
  let check_member what g =
    if g < 0 || g >= !ng then
      Error (Printf.sprintf "%s: group %d out of range" what g)
    else if not is_member.(g) then
      Error (Printf.sprintf "%s: group %d is not a member" what g)
    else Ok ()
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check_cmd cmd =
    let what = kind_name cmd in
    match cmd with
    | Add_node g ->
        check_member what g >>= fun () ->
        act.(g) <- act.(g) + 1;
        Ok ()
    | Remove_node g ->
        check_member what g >>= fun () ->
        if act.(g) - 1 < 4 then
          Error
            (Printf.sprintf
               "remove_node: group %d would shrink below 4 nodes (f = 0)" g)
        else begin
          act.(g) <- act.(g) - 1;
          Ok ()
        end
    | Move_leader a ->
        check_member what a.Topology.g >>= fun () ->
        if a.Topology.n < 0 || a.Topology.n >= act.(a.Topology.g) then
          Error
            (Printf.sprintf "move_leader: node %s not an active slot"
               (addr_str a))
        else Ok ()
    | Add_group { size } ->
        if size < 4 then Error "add_group: size must be >= 4 (f >= 1)"
        else begin
          let g = !ng in
          incr ng;
          act.(g) <- size;
          is_member.(g) <- true;
          Ok ()
        end
    | Remove_group g ->
        check_member what g >>= fun () ->
        if g = 0 then Error "remove_group: group 0 is the global coordinator"
        else if members () - 1 < 2 then
          Error "remove_group: need at least 2 member groups"
        else begin
          is_member.(g) <- false;
          act.(g) <- 0;
          Ok ()
        end
  in
  List.fold_left
    (fun acc { at; cmd } ->
      acc >>= fun () ->
      if at < 0.0 || not (Float.is_finite at) then
        Error (Printf.sprintf "%s: negative time" (kind_name cmd))
      else check_cmd cmd)
    (Ok ()) (sorted plan)

(* ------------------------------------------------------------------ *)
(* Provisioning                                                        *)
(* ------------------------------------------------------------------ *)

type provisioned = {
  p_spec : Topology.spec;  (* expanded physical topology *)
  p_active : int array;  (* initial active node count per physical group *)
  p_member : bool array;  (* initial membership (false = provisioned ahead) *)
}

(* The simulated cluster is fixed at creation, so every slot a plan will
   ever activate is provisioned up front (and kept dark — crashed and
   masked out of every quorum — until its epoch). An empty plan returns
   the spec unchanged, byte-identically. *)
let provision ~(spec : Topology.spec) plan =
  let base_ng = Array.length spec.Topology.group_sizes in
  let adds =
    List.length
      (List.filter (fun e -> match e.cmd with Add_group _ -> true | _ -> false)
         plan)
  in
  let ngmax = base_ng + adds in
  let phys = Array.make (max 1 ngmax) 0 in
  let act = Array.make (max 1 ngmax) 0 in
  Array.blit spec.Topology.group_sizes 0 phys 0 base_ng;
  Array.blit spec.Topology.group_sizes 0 act 0 base_ng;
  let ng = ref base_ng in
  List.iter
    (fun { cmd; _ } ->
      match cmd with
      | Add_node g ->
          act.(g) <- act.(g) + 1;
          if act.(g) > phys.(g) then phys.(g) <- act.(g)
      | Remove_node g -> act.(g) <- act.(g) - 1
      | Move_leader _ -> ()
      | Add_group { size } ->
          let g = !ng in
          incr ng;
          act.(g) <- size;
          phys.(g) <- size
      | Remove_group g -> act.(g) <- 0)
    (sorted plan);
  if !ng = base_ng && Array.for_all2 ( = ) (Array.sub phys 0 base_ng) spec.Topology.group_sizes
  then
    {
      p_spec = spec;
      p_active = Array.copy spec.Topology.group_sizes;
      p_member = Array.make base_ng true;
    }
  else begin
    (* Appended groups need WAN RTTs: use the cluster's own matrix when
       it extends that far (e.g. nationwide has 7 sites), otherwise map
       the new gid onto an existing site, flooring same-site pairs at
       the cluster's minimum inter-group RTT so the parallel-scheduler
       lookahead stays positive. *)
    let base_rtt = spec.Topology.rtt in
    let floor_rtt =
      let m = ref infinity in
      for g = 0 to base_ng - 1 do
        for h = 0 to base_ng - 1 do
          if g <> h then m := Float.min !m (base_rtt g h)
        done
      done;
      if Float.is_finite !m then !m else 0.05
    in
    let rtt g h =
      if g = h then 0.0
      else
        match base_rtt g h with
        | r -> r
        | exception Invalid_argument _ ->
            let a = g mod base_ng and b = h mod base_ng in
            if a = b then floor_rtt else base_rtt a b
    in
    {
      p_spec = { spec with Topology.group_sizes = Array.sub phys 0 !ng; rtt };
      p_active = Array.init !ng (fun g -> if g < base_ng then spec.Topology.group_sizes.(g) else 0);
      p_member = Array.init !ng (fun g -> g < base_ng);
    }
  end
