module Rng = Massbft_util.Rng

type config = {
  accounts : int;
  initial_balance : int;
  hotspot_fraction : float;
}

let default =
  { accounts = 1_000_000; initial_balance = 10_000; hotspot_fraction = 0.0 }

type t = {
  cfg : config;
  rng : Rng.t;
  mutable next_id : int;
  mutable shard : (int * int) option;
      (* (index, count): post-reshard account range; None = all accounts *)
}

let create cfg ~seed =
  if cfg.accounts < 2 then invalid_arg "Smallbank.create: need >= 2 accounts";
  { cfg; rng = Rng.create seed; next_id = 0; shard = None }

let set_shard t ~index ~count =
  if count < 1 || index < 0 || index >= count then
    invalid_arg "Smallbank.set_shard: need 0 <= index < count";
  t.shard <- Some (index, count)

let shard_span t =
  match t.shard with
  | None -> t.cfg.accounts
  | Some (_, c) -> max 1 (t.cfg.accounts / c)

let shard_account t a =
  match t.shard with
  | None -> a
  | Some (i, c) ->
      let span = max 1 (t.cfg.accounts / c) in
      let lo = min (i * span) (max 0 (t.cfg.accounts - span)) in
      lo + (a mod span)

let checking_key a = Printf.sprintf "sb/c/%d" a
let savings_key a = Printf.sprintf "sb/s/%d" a

let preload cfg key =
  let prefix_c = "sb/c/" and prefix_s = "sb/s/" in
  if
    String.length key > 5
    && (String.sub key 0 5 = prefix_c || String.sub key 0 5 = prefix_s)
  then Some (Txn.of_int cfg.initial_balance)
  else None

let pick_account t =
  shard_account t
    (if
       t.cfg.hotspot_fraction > 0.0
       && Rng.float t.rng 1.0 < t.cfg.hotspot_fraction
     then Rng.int t.rng (min 100 t.cfg.accounts)
     else Rng.int t.rng t.cfg.accounts)

let pick_two t =
  let a = pick_account t in
  if shard_span t < 2 then (a, (a + 1) mod t.cfg.accounts)
  else
    let rec other () =
      let b = pick_account t in
      if b = a then other () else b
    in
    (a, other ())

let wire = 108

let read_int ctx k = Txn.int_value (Option.value ~default:"0" (ctx.Txn.read k))

let next t =
  let id = t.next_id in
  t.next_id <- id + 1;
  match Rng.int t.rng 6 with
  | 0 ->
      (* Balance: read both rows of one account. *)
      let a = pick_account t in
      Txn.make ~id ~label:"sb.balance" ~wire_size:wire (fun ctx ->
          ignore (read_int ctx (checking_key a));
          ignore (read_int ctx (savings_key a)))
  | 1 ->
      (* DepositChecking: checking += v. *)
      let a = pick_account t and v = 1 + Rng.int t.rng 100 in
      Txn.make ~id ~label:"sb.deposit" ~wire_size:wire (fun ctx ->
          let c = read_int ctx (checking_key a) in
          ctx.Txn.write (checking_key a) (Txn.of_int (c + v)))
  | 2 ->
      (* TransactSavings: savings += v, aborting on overdraft. *)
      let a = pick_account t and v = Rng.int t.rng 200 - 100 in
      Txn.make ~id ~label:"sb.transact" ~wire_size:wire (fun ctx ->
          let s = read_int ctx (savings_key a) in
          if s + v < 0 then ctx.Txn.abort ()
          else ctx.Txn.write (savings_key a) (Txn.of_int (s + v)))
  | 3 ->
      (* Amalgamate: move everything from a's savings+checking to b's
         checking. *)
      let a, b = pick_two t in
      Txn.make ~id ~label:"sb.amalgamate" ~wire_size:wire (fun ctx ->
          let sa = read_int ctx (savings_key a) in
          let ca = read_int ctx (checking_key a) in
          let cb = read_int ctx (checking_key b) in
          ctx.Txn.write (savings_key a) (Txn.of_int 0);
          ctx.Txn.write (checking_key a) (Txn.of_int 0);
          ctx.Txn.write (checking_key b) (Txn.of_int (cb + sa + ca)))
  | 4 ->
      (* WriteCheck: checking -= v, with a penalty when overdrawn. *)
      let a = pick_account t and v = 1 + Rng.int t.rng 100 in
      Txn.make ~id ~label:"sb.writecheck" ~wire_size:wire (fun ctx ->
          let s = read_int ctx (savings_key a) in
          let c = read_int ctx (checking_key a) in
          let total = s + c in
          let penalty = if total < v then 1 else 0 in
          ctx.Txn.write (checking_key a) (Txn.of_int (c - v - penalty)))
  | _ ->
      (* SendPayment: transfer between checking accounts, abort on
         insufficient funds. *)
      let a, b = pick_two t in
      let v = 1 + Rng.int t.rng 100 in
      Txn.make ~id ~label:"sb.sendpayment" ~wire_size:wire (fun ctx ->
          let ca = read_int ctx (checking_key a) in
          if ca < v then ctx.Txn.abort ()
          else begin
            let cb = read_int ctx (checking_key b) in
            ctx.Txn.write (checking_key a) (Txn.of_int (ca - v));
            ctx.Txn.write (checking_key b) (Txn.of_int (cb + v))
          end)
