module Rng = Massbft_util.Rng

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  remote_payment_pct : int;
  invalid_item_pct : int;
}

let default =
  {
    warehouses = 128;
    districts_per_warehouse = 10;
    customers_per_district = 3000;
    items = 100_000;
    remote_payment_pct = 15;
    invalid_item_pct = 1;
  }

type t = {
  cfg : config;
  rng : Rng.t;
  c_customer : int;  (* NURand constants, fixed per generator run *)
  c_item : int;
  mutable next_id : int;
  mutable flip : bool;  (* alternate NewOrder / Payment for an exact 50/50 *)
  mutable shard : (int * int) option;
      (* (index, count): post-reshard warehouse range; None = all *)
}

let create cfg ~seed =
  if cfg.warehouses < 1 then invalid_arg "Tpcc.create: need >= 1 warehouse";
  let rng = Rng.create seed in
  {
    cfg;
    rng;
    c_customer = Rng.int rng 1024;
    c_item = Rng.int rng 8192;
    next_id = 0;
    flip = false;
    shard = None;
  }

let set_shard t ~index ~count =
  if count < 1 || index < 0 || index >= count then
    invalid_arg "Tpcc.set_shard: need 0 <= index < count";
  t.shard <- Some (index, count)

let shard_span t =
  match t.shard with
  | None -> t.cfg.warehouses
  | Some (_, c) -> max 1 (t.cfg.warehouses / c)

(* Warehouse ids are 1-based; fold a whole-range draw into the shard's
   contiguous slice without consuming extra RNG draws. *)
let shard_warehouse t w =
  match t.shard with
  | None -> w
  | Some (i, c) ->
      let span = max 1 (t.cfg.warehouses / c) in
      let lo = min (i * span) (max 0 (t.cfg.warehouses - span)) in
      1 + lo + ((w - 1) mod span)

let pick_warehouse t =
  shard_warehouse t (Rng.int_in t.rng ~lo:1 ~hi:t.cfg.warehouses)

(* A warehouse distinct from [w], within the shard; degenerate
   single-warehouse shards fall back to [w] itself. *)
let pick_other_warehouse t ~w =
  if shard_span t < 2 then w
  else
    let rec pick () =
      let x = pick_warehouse t in
      if x = w then pick () else x
    in
    pick ()

(* TPC-C non-uniform random: hot values spread by a per-run constant. *)
let nurand rng ~a ~c ~lo ~hi =
  let x = Rng.int_in rng ~lo:0 ~hi:a in
  let y = Rng.int_in rng ~lo ~hi in
  (((x lor y) + c) mod (hi - lo + 1)) + lo

let warehouse_ytd_key w = Printf.sprintf "tpcc/w/%d/ytd" w
let warehouse_tax_key w = Printf.sprintf "tpcc/w/%d/tax" w
let district_next_oid_key ~w ~d = Printf.sprintf "tpcc/d/%d/%d/next_oid" w d
let district_ytd_key ~w ~d = Printf.sprintf "tpcc/d/%d/%d/ytd" w d
let district_tax_key ~w ~d = Printf.sprintf "tpcc/d/%d/%d/tax" w d

let customer_balance_key ~w ~d ~c = Printf.sprintf "tpcc/c/%d/%d/%d/bal" w d c

let customer_ytd_key ~w ~d ~c = Printf.sprintf "tpcc/c/%d/%d/%d/ytd" w d c

let customer_cnt_key ~w ~d ~c = Printf.sprintf "tpcc/c/%d/%d/%d/cnt" w d c
let stock_qty_key ~w ~i = Printf.sprintf "tpcc/s/%d/%d/qty" w i
let stock_ytd_key ~w ~i = Printf.sprintf "tpcc/s/%d/%d/ytd" w i
let order_key ~w ~d ~o = Printf.sprintf "tpcc/o/%d/%d/%d" w d o
let order_line_key ~w ~d ~o ~n = Printf.sprintf "tpcc/ol/%d/%d/%d/%d" w d o n

let preload _cfg key =
  (* Lazily materialized initial rows; only prefixes that exist in the
     schema get defaults. *)
  let has_prefix p = String.length key >= String.length p && String.sub key 0 (String.length p) = p in
  if has_prefix "tpcc/d/" && Filename.check_suffix key "next_oid" then Some "1"
  else if has_prefix "tpcc/s/" && Filename.check_suffix key "qty" then Some "100"
  else if Filename.check_suffix key "tax" then Some "10"
  else if has_prefix "tpcc/" then Some "0"
  else None

let read_int ctx k = Txn.int_value (Option.value ~default:"0" (ctx.Txn.read k))
let wire = 232

let new_order t ~id =
  let cfg = t.cfg in
  let w = pick_warehouse t in
  let d = Rng.int_in t.rng ~lo:1 ~hi:cfg.districts_per_warehouse in
  let c =
    nurand t.rng ~a:1023 ~c:t.c_customer ~lo:1 ~hi:cfg.customers_per_district
  in
  let ol_cnt = Rng.int_in t.rng ~lo:5 ~hi:15 in
  let invalid = Rng.int t.rng 100 < cfg.invalid_item_pct in
  let lines =
    List.init ol_cnt (fun n ->
        let i = nurand t.rng ~a:8191 ~c:t.c_item ~lo:1 ~hi:cfg.items in
        (* 1 % of lines come from a remote warehouse. *)
        let supply_w =
          if cfg.warehouses > 1 && Rng.int t.rng 100 = 0 then
            pick_other_warehouse t ~w
          else w
        in
        let qty = Rng.int_in t.rng ~lo:1 ~hi:10 in
        (n, i, supply_w, qty))
  in
  Txn.make ~id ~label:"tpcc.neworder" ~wire_size:wire (fun ctx ->
      ignore (read_int ctx (warehouse_tax_key w));
      ignore (read_int ctx (district_tax_key ~w ~d));
      ignore (read_int ctx (customer_balance_key ~w ~d ~c));
      (* The district's next order id is the per-district serialization
         point. *)
      let o = read_int ctx (district_next_oid_key ~w ~d) in
      ctx.Txn.write (district_next_oid_key ~w ~d) (Txn.of_int (o + 1));
      ctx.Txn.write (order_key ~w ~d ~o)
        (Printf.sprintf "c=%d;lines=%d" c (List.length lines));
      List.iter
        (fun (n, i, supply_w, qty) ->
          let sq = read_int ctx (stock_qty_key ~w:supply_w ~i) in
          let sq' = if sq - qty >= 10 then sq - qty else sq - qty + 91 in
          ctx.Txn.write (stock_qty_key ~w:supply_w ~i) (Txn.of_int sq');
          let ytd = read_int ctx (stock_ytd_key ~w:supply_w ~i) in
          ctx.Txn.write (stock_ytd_key ~w:supply_w ~i) (Txn.of_int (ytd + qty));
          ctx.Txn.write (order_line_key ~w ~d ~o ~n)
            (Printf.sprintf "i=%d;w=%d;q=%d" i supply_w qty))
        lines;
      (* Per spec, 1 % of NewOrders hit an unused item id and roll
         back. *)
      if invalid then ctx.Txn.abort ())

let payment t ~id =
  let cfg = t.cfg in
  let w = pick_warehouse t in
  let d = Rng.int_in t.rng ~lo:1 ~hi:cfg.districts_per_warehouse in
  (* 15 % of payments are made by a customer of a remote warehouse. *)
  let cw, cd =
    if cfg.warehouses > 1 && Rng.int t.rng 100 < cfg.remote_payment_pct then
      ( pick_other_warehouse t ~w,
        Rng.int_in t.rng ~lo:1 ~hi:cfg.districts_per_warehouse )
    else (w, d)
  in
  let c =
    nurand t.rng ~a:1023 ~c:t.c_customer ~lo:1 ~hi:cfg.customers_per_district
  in
  let amount = Rng.int_in t.rng ~lo:1 ~hi:5000 in
  Txn.make ~id ~label:"tpcc.payment" ~wire_size:wire (fun ctx ->
      (* Warehouse and district YTD rows: the hotspots. *)
      let wy = read_int ctx (warehouse_ytd_key w) in
      ctx.Txn.write (warehouse_ytd_key w) (Txn.of_int (wy + amount));
      let dy = read_int ctx (district_ytd_key ~w ~d) in
      ctx.Txn.write (district_ytd_key ~w ~d) (Txn.of_int (dy + amount));
      let bal = read_int ctx (customer_balance_key ~w:cw ~d:cd ~c) in
      ctx.Txn.write (customer_balance_key ~w:cw ~d:cd ~c)
        (Txn.of_int (bal - amount));
      let ytd = read_int ctx (customer_ytd_key ~w:cw ~d:cd ~c) in
      ctx.Txn.write (customer_ytd_key ~w:cw ~d:cd ~c) (Txn.of_int (ytd + amount));
      let cnt = read_int ctx (customer_cnt_key ~w:cw ~d:cd ~c) in
      ctx.Txn.write (customer_cnt_key ~w:cw ~d:cd ~c) (Txn.of_int (cnt + 1)))

let next_of t profile =
  let id = t.next_id in
  t.next_id <- id + 1;
  match profile with `New_order -> new_order t ~id | `Payment -> payment t ~id

let next t =
  t.flip <- not t.flip;
  next_of t (if t.flip then `New_order else `Payment)
