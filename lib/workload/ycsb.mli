(** YCSB key-value workload (Cooper et al.), as configured in the
    paper's evaluation: one table of 1,000,000 rows with 10 columns of
    100 bytes, Zipfian access with skew 0.99, and the two standard
    mixes A (50/50 read/update) and B (95/5). *)

type mix = A | B

type config = {
  rows : int;  (** table size; the paper uses 1,000,000 *)
  columns : int;  (** 10 *)
  value_size : int;  (** bytes per column; 100 *)
  theta : float;  (** Zipf skew; 0.99 *)
  mix : mix;
}

val default : mix -> config

val avg_wire_size : config -> int
(** The per-transaction wire size, matching the paper's reported
    averages: 201 B for YCSB-A, 150 B for YCSB-B. *)

type t

val create : config -> seed:int64 -> t

val next : t -> Txn.t
(** Draws the next transaction: a read or an update of one cell of a
    Zipf-popular row. *)

val set_shard : t -> index:int -> count:int -> unit
(** Restrict subsequent draws to shard [index] of [count] contiguous
    row ranges (deterministic resharding after a group add/remove). The
    RNG stream is consumed exactly as without a shard. *)

val key : row:int -> col:int -> string
(** The key encoding, exposed so stores can be preloaded. *)
