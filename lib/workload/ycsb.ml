module Rng = Massbft_util.Rng
module Zipf = Massbft_util.Zipf

type mix = A | B

type config = {
  rows : int;
  columns : int;
  value_size : int;
  theta : float;
  mix : mix;
}

let default mix = { rows = 1_000_000; columns = 10; value_size = 100; theta = 0.99; mix }

let avg_wire_size cfg =
  (* Key + opcode + signature overhead ~ 100 B; an update additionally
     carries one 100 B column value. The 50 % and 5 % write mixes land
     on the paper's 201 B / 150 B averages with value_size = 100. *)
  let base = 100 in
  let write_fraction = match cfg.mix with A -> 0.5 | B -> 0.05 in
  base + int_of_float (write_fraction *. 2.0 *. float_of_int cfg.value_size)

type t = {
  cfg : config;
  zipf : Zipf.t;
  rng : Rng.t;
  mutable next_id : int;
  mutable shard : (int * int) option;
      (* (index, count): post-reshard key range; None = whole table *)
  value : string;
      (* every update writes the same [value_size] filler; strings are
         immutable, so one shared instance serves every transaction
         instead of a fresh 100-byte allocation per write *)
}

let create cfg ~seed =
  if cfg.rows <= 0 || cfg.columns <= 0 then
    invalid_arg "Ycsb.create: empty table";
  {
    cfg;
    zipf = Zipf.create ~n:cfg.rows ~theta:cfg.theta;
    rng = Rng.create seed;
    next_id = 0;
    shard = None;
    value = String.make cfg.value_size 'v';
  }

let set_shard t ~index ~count =
  if count < 1 || index < 0 || index >= count then
    invalid_arg "Ycsb.set_shard: need 0 <= index < count";
  t.shard <- Some (index, count)

(* Fold a whole-table row draw into this shard's contiguous slice. The
   RNG consumption is unchanged, so the stream stays deterministic
   across a reshard. *)
let shard_row t row =
  match t.shard with
  | None -> row
  | Some (i, c) ->
      let span = max 1 (t.cfg.rows / c) in
      let lo = min (i * span) (max 0 (t.cfg.rows - span)) in
      lo + (row mod span)

(* Built by concatenation, not [Printf.sprintf]: one key is minted per
   generated transaction, and the format-string interpreter dominated
   the generator's cost at full scale. *)
let key ~row ~col =
  "ycsb/u" ^ string_of_int row ^ "/f" ^ string_of_int col

let next t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let row = shard_row t (Zipf.scrambled t.zipf t.rng ~hash_seed:0x5eedL) in
  let col = Rng.int t.rng t.cfg.columns in
  let write_pct = match t.cfg.mix with A -> 50 | B -> 5 in
  let is_write = Rng.int t.rng 100 < write_pct in
  let k = key ~row ~col in
  if is_write then begin
    let value = t.value in
    Txn.make ~id ~label:"ycsb.update"
      ~wire_size:(100 + t.cfg.value_size)
      (fun ctx -> ctx.Txn.write k value)
  end
  else
    Txn.make ~id ~label:"ycsb.read" ~wire_size:100 (fun ctx ->
        ignore (ctx.Txn.read k))
