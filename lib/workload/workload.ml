type kind = Ycsb_a | Ycsb_b | Smallbank | Tpcc

let kind_name = function
  | Ycsb_a -> "YCSB-A"
  | Ycsb_b -> "YCSB-B"
  | Smallbank -> "SmallBank"
  | Tpcc -> "TPC-C"

let all_kinds = [ Ycsb_a; Ycsb_b; Smallbank; Tpcc ]

let avg_wire_size = function
  | Ycsb_a -> 201
  | Ycsb_b -> 150
  | Smallbank -> 108
  | Tpcc -> 232

let scaled scale n = max 2 (int_of_float (float_of_int n *. scale))

let ycsb_config ~scale mix =
  let d = Ycsb.default mix in
  { d with Ycsb.rows = scaled scale d.Ycsb.rows }

let smallbank_config ~scale =
  { Smallbank.default with Smallbank.accounts = scaled scale Smallbank.default.Smallbank.accounts }

let tpcc_config ~scale =
  { Tpcc.default with Tpcc.warehouses = scaled scale Tpcc.default.Tpcc.warehouses }

type gen =
  | G_ycsb of Ycsb.t
  | G_smallbank of Smallbank.t
  | G_tpcc of Tpcc.t

type t = { kind : kind; gen : gen }

let create ?(scale = 1.0) kind ~seed =
  if scale <= 0.0 || scale > 1.0 then
    invalid_arg "Workload.create: scale must be in (0, 1]";
  let gen =
    match kind with
    | Ycsb_a -> G_ycsb (Ycsb.create (ycsb_config ~scale Ycsb.A) ~seed)
    | Ycsb_b -> G_ycsb (Ycsb.create (ycsb_config ~scale Ycsb.B) ~seed)
    | Smallbank -> G_smallbank (Smallbank.create (smallbank_config ~scale) ~seed)
    | Tpcc -> G_tpcc (Tpcc.create (tpcc_config ~scale) ~seed)
  in
  { kind; gen }

let next t =
  match t.gen with
  | G_ycsb g -> Ycsb.next g
  | G_smallbank g -> Smallbank.next g
  | G_tpcc g -> Tpcc.next g

let kind t = t.kind

let set_shard t ~index ~count =
  match t.gen with
  | G_ycsb g -> Ycsb.set_shard g ~index ~count
  | G_smallbank g -> Smallbank.set_shard g ~index ~count
  | G_tpcc g -> Tpcc.set_shard g ~index ~count

let preload ?(scale = 1.0) kind key =
  match kind with
  | Ycsb_a | Ycsb_b -> None (* YCSB cells default to absent *)
  | Smallbank -> Smallbank.preload (smallbank_config ~scale) key
  | Tpcc -> Tpcc.preload (tpcc_config ~scale) key
