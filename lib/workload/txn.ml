type ctx = {
  read : string -> string option;
  write : string -> string -> unit;
  abort : unit -> unit;
}

type t = { id : int; label : string; wire_size : int; body : ctx -> unit }

exception Logic_abort

let make ~id ~label ~wire_size body =
  if wire_size < 0 then invalid_arg "Txn.make: negative wire size";
  { id; label; wire_size; body }

let int_value s = match int_of_string_opt s with Some v -> v | None -> 0
let of_int = string_of_int
