(** TPC-C order-processing workload — the subset the paper evaluates:
    50 % NewOrder and 50 % Payment over 128 warehouses. Payment updates
    the warehouse and district year-to-date totals, which are hotspot
    rows; under Aria this is what drives the elevated abort rate the
    paper discusses for Figure 8d. *)

type config = {
  warehouses : int;  (** 128 in the paper *)
  districts_per_warehouse : int;  (** 10 per spec *)
  customers_per_district : int;  (** 3000 per spec *)
  items : int;  (** 100,000 per spec *)
  remote_payment_pct : int;  (** 15 per spec *)
  invalid_item_pct : int;  (** 1: NewOrder's rollback rate per spec *)
}

val default : config

type t

val create : config -> seed:int64 -> t

val next : t -> Txn.t
(** Alternating draw of NewOrder / Payment (50/50), wire size 232 B as
    reported by the paper. *)

val next_of : t -> [ `New_order | `Payment ] -> Txn.t
(** Draw a transaction of a specific profile (for targeted tests). *)

val set_shard : t -> index:int -> count:int -> unit
(** Restrict subsequent draws to shard [index] of [count] contiguous
    warehouse ranges (deterministic resharding after a group
    add/remove). Remote picks stay within the shard; a single-warehouse
    shard degrades to all-local. *)

val preload : config -> (string -> string option)
(** Store initializer: district next-order-ids start at 1, stock at 100,
    balances at 0, warehouse/district tax rates fixed. *)

(** Key encodings, exposed for tests and examples. *)

val warehouse_ytd_key : int -> string
val district_next_oid_key : w:int -> d:int -> string
val customer_balance_key : w:int -> d:int -> c:int -> string
val stock_qty_key : w:int -> i:int -> string
val order_key : w:int -> d:int -> o:int -> string
