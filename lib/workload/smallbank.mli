(** SmallBank banking workload (Cahill et al.), as configured in the
    paper: 1,000,000 accounts with uniform access. Each account has a
    checking and a savings row; the six standard transaction profiles
    are implemented. *)

type config = {
  accounts : int;  (** 1,000,000 in the paper *)
  initial_balance : int;  (** starting checking and savings balance *)
  hotspot_fraction : float;
      (** fraction of accesses directed at the first 100 accounts; 0 for
          the paper's uniform setting *)
}

val default : config

type t

val create : config -> seed:int64 -> t

val next : t -> Txn.t
(** Uniform mix over the six profiles: Balance, DepositChecking,
    TransactSavings, Amalgamate, WriteCheck, SendPayment. Wire size is
    the paper's 108 B average. *)

val set_shard : t -> index:int -> count:int -> unit
(** Restrict subsequent draws to shard [index] of [count] contiguous
    account ranges (deterministic resharding after a group add/remove). *)

val checking_key : int -> string
val savings_key : int -> string

val preload : config -> (string -> string option)
(** An initializer for {!Massbft_exec.Kvstore}: lazily materializes
    account rows at [initial_balance]. *)
