(** Uniform front-end over the three benchmark workloads, as consumed by
    the protocol engine and the experiment harness. *)

type kind = Ycsb_a | Ycsb_b | Smallbank | Tpcc

val kind_name : kind -> string
(** "YCSB-A", "YCSB-B", "SmallBank", "TPC-C" — the paper's labels. *)

val all_kinds : kind list

val avg_wire_size : kind -> int
(** Paper Table: 201 / 150 / 108 / 232 bytes. *)

type t

val create : ?scale:float -> kind -> seed:int64 -> t
(** A transaction stream. [scale] (default 1.0) shrinks the keyspace for
    fast tests — e.g. 0.001 turns YCSB's 1 M rows into 1 k. *)

val next : t -> Txn.t
val kind : t -> kind

val set_shard : t -> index:int -> count:int -> unit
(** Restrict this stream to shard [index] of [count] contiguous key
    ranges — the deterministic reshard applied to every group's
    generator when a group joins or leaves (rows for YCSB, accounts for
    SmallBank, warehouses for TPC-C). RNG consumption is unchanged, so
    a run without a reconfiguration is byte-identical. *)

val preload : ?scale:float -> kind -> string -> string option
(** The store initializer matching [create] with the same [scale]. *)
