(** The transaction representation shared by the workloads, the Aria
    executor and the protocol engine.

    A transaction is a deterministic program over a key-value interface:
    the body reads and writes string keys through the context handed to
    it, and the executor decides what those reads observe and where the
    writes land (snapshot + write-buffer under Aria). Running the same
    body against the same store state always produces the same read and
    write sets — the property deterministic databases rely on.

    [wire_size] is the transaction's size on the network in bytes; the
    paper reports average sizes of 201 B (YCSB-A), 150 B (YCSB-B),
    108 B (SmallBank) and 232 B (TPC-C), which the generators
    reproduce. *)

type ctx = {
  read : string -> string option;
  write : string -> string -> unit;
  abort : unit -> unit;
      (** logic-level abort (e.g. TPC-C 1% rollback); the txn's writes
          are discarded but it still counts as processed *)
}

type t = {
  id : int;  (** unique within its generating client stream *)
  label : string;  (** e.g. "ycsb.read", "tpcc.neworder" *)
  wire_size : int;  (** bytes on the wire, including signature *)
  body : ctx -> unit;
}

val make : id:int -> label:string -> wire_size:int -> (ctx -> unit) -> t

exception Logic_abort
(** Raised by [ctx.abort]; executors catch it. *)

val int_value : string -> int
(** Decodes an integer stored as a value; 0 for absent/garbage (store
    values in this codebase are decimal strings). *)

val of_int : int -> string
