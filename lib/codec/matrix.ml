module Make (F : Field.S) = struct
  type t = { rows : int; cols : int; data : int array }

  let create rows cols =
    if rows <= 0 || cols <= 0 then
      invalid_arg "Matrix.create: dimensions must be positive";
    { rows; cols; data = Array.make (rows * cols) 0 }

  let rows m = m.rows
  let cols m = m.cols

  let check m r c =
    if r < 0 || r >= m.rows || c < 0 || c >= m.cols then
      invalid_arg "Matrix: index out of bounds"

  let get m r c =
    check m r c;
    m.data.((r * m.cols) + c)

  let set m r c v =
    check m r c;
    if v < 0 || v >= F.order then invalid_arg "Matrix.set: not a field element";
    m.data.((r * m.cols) + c) <- v

  let identity n =
    let m = create n n in
    for i = 0 to n - 1 do
      m.data.((i * n) + i) <- 1
    done;
    m

  let copy m = { m with data = Array.copy m.data }

  let mul a b =
    if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
    let out = create a.rows b.cols in
    for r = 0 to a.rows - 1 do
      for c = 0 to b.cols - 1 do
        let acc = ref 0 in
        for k = 0 to a.cols - 1 do
          acc :=
            F.add !acc
              (F.mul a.data.((r * a.cols) + k) b.data.((k * b.cols) + c))
        done;
        out.data.((r * out.cols) + c) <- !acc
      done
    done;
    out

  let vandermonde rows cols =
    if rows >= F.order then
      invalid_arg "Matrix.vandermonde: too many rows for the field";
    let m = create rows cols in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        m.data.((r * cols) + c) <- F.exp (r * c)
      done
    done;
    m

  let invert m =
    if m.rows <> m.cols then invalid_arg "Matrix.invert: not square";
    let n = m.rows in
    let work = copy m in
    let inv = identity n in
    let wrow r c = work.data.((r * n) + c) in
    let irow r c = inv.data.((r * n) + c) in
    let swap_rows a r1 r2 =
      if r1 <> r2 then
        for c = 0 to n - 1 do
          let tmp = a.data.((r1 * n) + c) in
          a.data.((r1 * n) + c) <- a.data.((r2 * n) + c);
          a.data.((r2 * n) + c) <- tmp
        done
    in
    let singular = ref false in
    (try
       for col = 0 to n - 1 do
         (* Find a pivot at or below the diagonal. *)
         let pivot = ref (-1) in
         for r = col to n - 1 do
           if !pivot = -1 && wrow r col <> 0 then pivot := r
         done;
         if !pivot = -1 then begin
           singular := true;
           raise Exit
         end;
         swap_rows work col !pivot;
         swap_rows inv col !pivot;
         (* Scale the pivot row to 1. *)
         let d = wrow col col in
         if d <> 1 then begin
           let dinv = F.inv d in
           for c = 0 to n - 1 do
             work.data.((col * n) + c) <- F.mul dinv (wrow col c);
             inv.data.((col * n) + c) <- F.mul dinv (irow col c)
           done
         end;
         (* Eliminate the column everywhere else. *)
         for r = 0 to n - 1 do
           if r <> col then begin
             let factor = wrow r col in
             if factor <> 0 then
               for c = 0 to n - 1 do
                 work.data.((r * n) + c) <-
                   F.add (wrow r c) (F.mul factor (wrow col c));
                 inv.data.((r * n) + c) <-
                   F.add (irow r c) (F.mul factor (irow col c))
               done
           end
         done
       done
     with Exit -> ());
    if !singular then None else Some inv

  let select_rows m idx =
    let out = create (Array.length idx) m.cols in
    Array.iteri
      (fun i r ->
        if r < 0 || r >= m.rows then
          invalid_arg "Matrix.select_rows: row out of range";
        Array.blit m.data (r * m.cols) out.data (i * m.cols) m.cols)
      idx;
    out

  let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data

  let pp fmt m =
    for r = 0 to m.rows - 1 do
      Format.fprintf fmt "[";
      for c = 0 to m.cols - 1 do
        Format.fprintf fmt "%4d" m.data.((r * m.cols) + c)
      done;
      Format.fprintf fmt " ]@."
    done
end
