let order = 65536

(* x^16 + x^12 + x^3 + x + 1 (0x1100b), a standard primitive polynomial
   for GF(2^16); generator 2. *)
let poly = 0x1100b

let exp_table, log_table =
  let exp = Array.make 131072 0 in
  let log = Array.make 65536 0 in
  let x = ref 1 in
  for i = 0 to 65534 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x10000 <> 0 then x := !x lxor poly
  done;
  for i = 65535 to 131071 do
    exp.(i) <- exp.(i - 65535)
  done;
  (exp, log)

let add a b = a lxor b

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) - log_table.(b) + 65535)

let inv a = div 1 a
let exp i = exp_table.(i mod 65535)

let log a =
  if a = 0 then invalid_arg "Gf65536.log: log of zero" else log_table.(a)

let check_pair src dst op =
  let n = Bytes.length src in
  if Bytes.length dst <> n then invalid_arg (op ^ ": length mismatch");
  if n land 1 <> 0 then invalid_arg (op ^ ": odd byte length");
  n

let get16 b i = Char.code (Bytes.unsafe_get b i) lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)

let set16 b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

(* dst <- dst lxor src, 64 bits at a time (see Gf256.xor_into): in
   GF(2^16), multiplying by 1 is the identity, so the accumulate
   collapses to a plain XOR regardless of symbol width. *)
let xor_into src dst n =
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    let o = w lsl 3 in
    Bytes.set_int64_ne dst o
      (Int64.logxor (Bytes.get_int64_ne dst o) (Bytes.get_int64_ne src o))
  done;
  for i = words lsl 3 to n - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get src i)
         lxor Char.code (Bytes.unsafe_get dst i)))
  done

let mul_slice c src dst =
  let n = check_pair src dst "Gf65536.mul_slice" in
  if c = 1 then xor_into src dst n
  else if c <> 0 then begin
    let logc = log_table.(c) in
    let i = ref 0 in
    while !i < n do
      let s = get16 src !i in
      if s <> 0 then begin
        let p = exp_table.(logc + log_table.(s)) in
        set16 dst !i (get16 dst !i lxor p)
      end;
      i := !i + 2
    done
  end

let mul_slice_set c src dst =
  let n = check_pair src dst "Gf65536.mul_slice_set" in
  if c = 0 then Bytes.fill dst 0 n '\x00'
  else if c = 1 then Bytes.blit src 0 dst 0 n
  else begin
    let logc = log_table.(c) in
    let i = ref 0 in
    while !i < n do
      let s = get16 src !i in
      set16 dst !i (if s = 0 then 0 else exp_table.(logc + log_table.(s)));
      i := !i + 2
    done
  end
