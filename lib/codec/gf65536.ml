let order = 65536

(* x^16 + x^12 + x^3 + x + 1 (0x1100b), a standard primitive polynomial
   for GF(2^16); generator 2. *)
let poly = 0x1100b

let exp_table, log_table =
  let exp = Array.make 131072 0 in
  let log = Array.make 65536 0 in
  let x = ref 1 in
  for i = 0 to 65534 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x10000 <> 0 then x := !x lxor poly
  done;
  for i = 65535 to 131071 do
    exp.(i) <- exp.(i - 65535)
  done;
  (exp, log)

let add a b = a lxor b

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) - log_table.(b) + 65535)

let inv a = div 1 a

let exp i =
  (* OCaml's [mod] keeps the dividend's sign, so a negative exponent —
     legitimate under g^65535 = 1 — must be lifted back into
     [0, 65535) or it would index out of bounds. *)
  let r = i mod 65535 in
  exp_table.(if r < 0 then r + 65535 else r)

let log a =
  if a = 0 then invalid_arg "Gf65536.log: log of zero" else log_table.(a)

let check_pair src dst op =
  let n = Bytes.length src in
  if Bytes.length dst <> n then invalid_arg (op ^ ": length mismatch");
  if n land 1 <> 0 then invalid_arg (op ^ ": odd byte length");
  n

(* A coefficient outside the field would index the table arrays out of
   bounds — with unsafe reads that is undefined behavior, not an
   exception — so every slice entry point validates it up front. A
   corrupted encoding row must fail loudly, never read wild memory. *)
let check_coeff op c =
  if c < 0 || c >= order then invalid_arg (op ^ ": coefficient out of field")

(* ------------------------------------------------------------------ *)
(* Split product tables (the klauspost/reedsolomon technique, scaled   *)
(* from 8- to 16-bit symbols)                                          *)
(* ------------------------------------------------------------------ *)

(* The field product is GF(2)-linear in each bit of the symbol, so
   splitting s into nibbles s = s0 + (s1<<4) + (s2<<8) + (s3<<12) gives

     c*s = c*s0 xor c*(s1<<4) xor c*(s2<<8) xor c*(s3<<12).

   Four 16-entry sub-tables per coefficient — 64 ints, a few hundred
   bytes, L1-resident — replace the two dependent lookups per symbol
   into the 1.5 MB log/exp tables, whose cache misses are what made the
   naive gf16 kernel ~100x slower per byte than gf8. Sub-table k lives
   at offset 16k, so a product is 4 lookups + 3 XORs.

   The 64 entries are packed as 16-bit values in a 128-byte Bytes —
   two cache lines — rather than an int array's 512: a decode matrix
   at 180 data shards cycles through tens of thousands of distinct
   coefficients, so the aggregate table footprint, not the per-lookup
   arithmetic, is what the inner loop waits on. Sub-table k lives at
   byte offset 32k, entry v at 32k + 2v; entries are written and read
   with the same native-endian primitive, so the packing is
   self-consistent on any host.

   Memoized per coefficient in [Atomic] cells exactly as
   [Gf256.mul_rows]: every shard of an encode reuses its matrix row's
   coefficients, so a table is built once per process, and a row built
   by one domain of the parallel driver is published with its contents
   visible. A racing duplicate build writes the same deterministic
   entries, so last-writer-wins is harmless. *)
let split_rows = Array.init order (fun _ -> Atomic.make Bytes.empty)

let split_table c =
  let cell = Array.unsafe_get split_rows c in
  let t = Atomic.get cell in
  if Bytes.length t <> 0 then t
  else begin
    let t = Bytes.make 128 '\x00' in
    for v = 1 to 15 do
      Word.set16 t (v lsl 1) (mul c v);
      Word.set16 t (32 lor (v lsl 1)) (mul c (v lsl 4));
      Word.set16 t (64 lor (v lsl 1)) (mul c (v lsl 8));
      Word.set16 t (96 lor (v lsl 1)) (mul c (v lsl 12))
    done;
    Atomic.set cell t;
    t
  end

(* [prod t s]: c*s via the split table of c. [s] must be in [0, 65535],
   which every load below guarantees; the index arithmetic folds the
   entry-doubling shift into the nibble masks ((s lsr (4k-1)) land 0x1e
   is twice nibble k). *)
let[@inline] prod t s =
  Word.get16 t ((s lsl 1) land 0x1e)
  lxor Word.get16 t (32 lor ((s lsr 3) land 0x1e))
  lxor Word.get16 t (64 lor ((s lsr 7) land 0x1e))
  lxor Word.get16 t (96 lor ((s lsr 11) land 0x1e))

(* dst <- dst lxor src, 64 bits at a time: in GF(2^16), multiplying by
   1 is the identity, so the accumulate collapses to a plain XOR
   regardless of symbol width (and of endianness). The explicit range
   check up front is what licenses the unsafe int64 loads in the word
   loop and the unsafe byte ops in the tail. *)
let xor_into src dst n =
  Word.check_range ~op:"Gf65536.xor_into" src n;
  Word.check_range ~op:"Gf65536.xor_into" dst n;
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    let o = w lsl 3 in
    Word.set64 dst o (Int64.logxor (Word.get64 dst o) (Word.get64 src o))
  done;
  for i = words lsl 3 to n - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get src i)
         lxor Char.code (Bytes.unsafe_get dst i)))
  done

(* The unchecked kernels require: [n] even, [n] within both buffers
   (established once by the caller), [t] a split table. The symbol wire
   format is little-endian, so on the overwhelmingly common LE hosts
   the native-endian word primitives read symbols directly and the
   kernels run branch-free, four symbols — 64 bits of slice — per
   unrolled iteration; big-endian hosts take a byte-composing scalar
   variant selected once at module init. *)

(* [prod64 t w]: the four products of the four LE symbol lanes of [w],
   as an int64. The three low lanes pack into one tagged int (48 bits,
   within OCaml's 63); only the top lane needs 64-bit repacking. The
   int64 temporaries flow straight between the word primitives and the
   arithmetic, so cmmgen keeps them unboxed (same property the xor word
   loop relies on). *)
let[@inline] prod64 t w =
  let s0 = Int64.to_int w land 0xffff in
  let s1 = Int64.to_int (Int64.shift_right_logical w 16) land 0xffff in
  let s2 = Int64.to_int (Int64.shift_right_logical w 32) land 0xffff in
  let s3 = Int64.to_int (Int64.shift_right_logical w 48) land 0xffff in
  let lo = prod t s0 lor (prod t s1 lsl 16) lor (prod t s2 lsl 32) in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int (prod t s3)) 48)

let acc_slice_le t src dst n =
  let quads = n lsr 3 in
  for q = 0 to quads - 1 do
    let o = q lsl 3 in
    Word.set64 dst o
      (Int64.logxor (Word.get64 dst o) (prod64 t (Word.get64 src o)))
  done;
  let i = ref (quads lsl 3) in
  while !i < n do
    Word.set16 dst !i (Word.get16 dst !i lxor prod t (Word.get16 src !i));
    i := !i + 2
  done

let set_slice_le t src dst n =
  let quads = n lsr 3 in
  for q = 0 to quads - 1 do
    let o = q lsl 3 in
    Word.set64 dst o (prod64 t (Word.get64 src o))
  done;
  let i = ref (quads lsl 3) in
  while !i < n do
    Word.set16 dst !i (prod t (Word.get16 src !i));
    i := !i + 2
  done

(* Byte-composing little-endian symbol access for the big-endian
   fallback; unsafe but dominated by the caller's range check. *)
let get16_le b i =
  Char.code (Bytes.unsafe_get b i)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)

let set16_le b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let acc_slice_be t src dst n =
  let i = ref 0 in
  while !i < n do
    set16_le dst !i (get16_le dst !i lxor prod t (get16_le src !i));
    i := !i + 2
  done

let set_slice_be t src dst n =
  let i = ref 0 in
  while !i < n do
    set16_le dst !i (prod t (get16_le src !i));
    i := !i + 2
  done

let acc_slice = if Word.be then acc_slice_be else acc_slice_le
let set_slice = if Word.be then set_slice_be else set_slice_le

let mul_slice c src dst =
  let n = check_pair src dst "Gf65536.mul_slice" in
  check_coeff "Gf65536.mul_slice" c;
  if c = 1 then xor_into src dst n
  else if c <> 0 then acc_slice (split_table c) src dst n

let mul_slice_set c src dst =
  let n = check_pair src dst "Gf65536.mul_slice_set" in
  check_coeff "Gf65536.mul_slice_set" c;
  if c = 0 then Bytes.fill dst 0 n '\x00'
  else if c = 1 then Bytes.blit src 0 dst 0 n
  else set_slice (split_table c) src dst n

(* Row-fused matrix-row application: dst <- sum_j coeffs.(j)*srcs.(j),
   validating lengths and coefficients once and resolving each memoized
   split table once, so the per-source inner loops are pure kernels.
   The first non-zero term writes dst outright (no zero-fill, no read
   pass) and the rest accumulate in place; an all-zero row yields a
   zero slice. dst must not alias a source (Reed_solomon never does). *)
let mul_row ~coeffs srcs dst =
  let k = Array.length coeffs in
  if Array.length srcs <> k then
    invalid_arg "Gf65536.mul_row: coeffs/srcs arity mismatch";
  let n = Bytes.length dst in
  if n land 1 <> 0 then invalid_arg "Gf65536.mul_row: odd byte length";
  Array.iter
    (fun s ->
      if Bytes.length s <> n then invalid_arg "Gf65536.mul_row: length mismatch")
    srcs;
  Array.iter (fun c -> check_coeff "Gf65536.mul_row" c) coeffs;
  let j0 = ref 0 in
  while !j0 < k && Array.unsafe_get coeffs !j0 = 0 do
    incr j0
  done;
  if !j0 = k then Bytes.fill dst 0 n '\x00'
  else begin
    let c0 = Array.unsafe_get coeffs !j0 in
    (if c0 = 1 then Bytes.blit (Array.unsafe_get srcs !j0) 0 dst 0 n
     else set_slice (split_table c0) (Array.unsafe_get srcs !j0) dst n);
    for j = !j0 + 1 to k - 1 do
      let c = Array.unsafe_get coeffs j in
      if c = 1 then xor_into (Array.unsafe_get srcs j) dst n
      else if c <> 0 then
        acc_slice (split_table c) (Array.unsafe_get srcs j) dst n
    done
  end
