(** The field interface shared by {!Gf256} and {!Gf65536}, letting the
    matrix and Reed–Solomon machinery be written once and instantiated
    at either symbol size. *)

module type S = sig
  val order : int
  (** Number of field elements; a code supports at most [order - 1]
      total shards. *)

  val add : int -> int -> int
  val mul : int -> int -> int
  val div : int -> int -> int
  val inv : int -> int
  val exp : int -> int

  val mul_slice : int -> Bytes.t -> Bytes.t -> unit
  (** [mul_slice c src dst]: [dst <- dst + c*src], element-wise over the
      buffers. *)

  val mul_slice_set : int -> Bytes.t -> Bytes.t -> unit
  (** [mul_slice_set c src dst]: [dst <- c*src]. *)

  val mul_row : coeffs:int array -> Bytes.t array -> Bytes.t -> unit
  (** [mul_row ~coeffs srcs dst]: [dst <- sum_j coeffs.(j)*srcs.(j)],
      one fused encoding-row application — lengths and coefficients
      validated once, memoized product tables resolved once, [dst]
      written without aliasing a source. *)

  val symbol_bytes : int
  (** Bytes per symbol (1 or 2); shard lengths must be a multiple. *)
end

module Gf8 : S = struct
  include Gf256

  let symbol_bytes = 1
end

module Gf16 : S = struct
  include Gf65536

  let symbol_bytes = 2
end
