(** Arithmetic in GF(2^8) with the AES/Rijndael reduction polynomial
    x^8 + x^4 + x^3 + x + 1 (0x11d variant used by Reed–Solomon storage
    codes). Multiplication and division run on precomputed log/exp
    tables, the same approach as klauspost/reedsolomon which the paper's
    implementation uses. Elements are ints in [0, 255]. *)

val order : int
(** 256. *)

val add : int -> int -> int
(** XOR; also subtraction. *)

val mul : int -> int -> int
val div : int -> int -> int
(** Raises [Division_by_zero] when the divisor is 0. *)

val inv : int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val exp : int -> int
(** [exp i] is the generator raised to [i] (any non-negative [i],
    reduced mod 255). *)

val log : int -> int
(** Discrete log base the generator; raises [Invalid_argument] on 0. *)

val mul_slice : int -> Bytes.t -> Bytes.t -> unit
(** [mul_slice c src dst] computes [dst.(i) <- dst.(i) XOR c * src.(i)]
    for every byte — the inner loop of matrix-vector encoding. [src]
    and [dst] must have equal length. *)

val mul_slice_set : int -> Bytes.t -> Bytes.t -> unit
(** [mul_slice_set c src dst] computes [dst.(i) <- c * src.(i)]. *)
