(** Arithmetic in GF(2^8) with the AES/Rijndael reduction polynomial
    x^8 + x^4 + x^3 + x + 1 (0x11d variant used by Reed–Solomon storage
    codes). Multiplication and division run on precomputed log/exp
    tables, the same approach as klauspost/reedsolomon which the paper's
    implementation uses. Elements are ints in [0, 255]. *)

val order : int
(** 256. *)

val add : int -> int -> int
(** XOR; also subtraction. *)

val mul : int -> int -> int
val div : int -> int -> int
(** Raises [Division_by_zero] when the divisor is 0. *)

val inv : int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val exp : int -> int
(** [exp i] is the generator raised to [i], reduced with a Euclidean
    remainder so negative exponents (g^255 = 1) are valid. *)

val log : int -> int
(** Discrete log base the generator; raises [Invalid_argument] on 0. *)

val mul_slice : int -> Bytes.t -> Bytes.t -> unit
(** [mul_slice c src dst] computes [dst.(i) <- dst.(i) XOR c * src.(i)]
    for every byte — the inner loop of matrix-vector encoding. [src]
    and [dst] must have equal length. Raises [Invalid_argument] if the
    coefficient is outside [0, 255]. *)

val mul_slice_set : int -> Bytes.t -> Bytes.t -> unit
(** [mul_slice_set c src dst] computes [dst.(i) <- c * src.(i)]. Same
    validation as {!mul_slice}. *)

val mul_row : coeffs:int array -> Bytes.t array -> Bytes.t -> unit
(** [mul_row ~coeffs srcs dst] sets [dst] to the field linear
    combination [sum_j coeffs.(j) * srcs.(j)] — one fused encoding-row
    application, validating lengths/coefficients once and reusing the
    memoized per-coefficient product rows. [dst] must not alias a
    source. *)
