module Make (F : Field.S) = struct
  module M = Matrix.Make (F)

  type t = {
    data : int;
    parity : int;
    enc : M.t;
    (* Decode matrices keyed by the chosen row set (klauspost's
       inversion-tree idea in flat form): rebuilding the same erasure
       pattern — the common case, since Rebuild feeds shards in index
       order — costs a hash lookup instead of an O(data^3) inversion,
       which for GF(2^16) at 180 data shards dominates the decode.
       Guarded by a mutex for the parallel driver; bounded so a
       pathological erasure mix cannot grow it without limit. *)
    dec_cache : (string, M.t) Hashtbl.t;
    dec_lock : Mutex.t;
  }

  let dec_cache_max = 256

  let create ~data ~parity =
    if data < 1 then invalid_arg "Reed_solomon.create: need >= 1 data shard";
    if parity < 0 then invalid_arg "Reed_solomon.create: negative parity";
    if data + parity > F.order - 1 then
      invalid_arg "Reed_solomon.create: too many shards for the field";
    let total = data + parity in
    let vm = M.vandermonde total data in
    (* Normalize the top square to the identity so the code is
       systematic: enc = vm * inv(top(vm)). Any `data` rows of a
       Vandermonde matrix are independent, so the inverse exists. *)
    let top = M.select_rows vm (Array.init data (fun i -> i)) in
    let enc =
      match M.invert top with
      | Some ti -> M.mul vm ti
      | None -> assert false
    in
    {
      data;
      parity;
      enc;
      dec_cache = Hashtbl.create 16;
      dec_lock = Mutex.create ();
    }

  let data t = t.data
  let parity t = t.parity
  let total t = t.data + t.parity

  let shard_size_for t len =
    if len < 0 then invalid_arg "Reed_solomon.shard_size_for: negative length";
    let raw = Massbft_util.Intmath.cdiv (max len 1) t.data in
    let sym = F.symbol_bytes in
    Massbft_util.Intmath.cdiv raw sym * sym

  let check_shards t shards =
    if Array.length shards <> t.data then
      invalid_arg "Reed_solomon.encode: wrong number of data shards";
    let size = Bytes.length shards.(0) in
    if size = 0 || size mod F.symbol_bytes <> 0 then
      invalid_arg "Reed_solomon.encode: shard size not a symbol multiple";
    Array.iter
      (fun s ->
        if Bytes.length s <> size then
          invalid_arg "Reed_solomon.encode: unequal shard sizes")
      shards;
    size

  (* out.(r) <- sum_c rowsel(r, c) * inputs.(c), one fused row pass per
     output: the field validates the row once, resolves each memoized
     product table once, and touches every source slice exactly once
     per output row. *)
  let apply_rows rowsel ~nrows inputs size =
    Array.init nrows (fun r ->
        let dst = Bytes.create size in
        let coeffs = Array.init (Array.length inputs) (fun c -> rowsel r c) in
        F.mul_row ~coeffs inputs dst;
        dst)

  let encode t shards =
    let size = check_shards t shards in
    apply_rows
      (fun r c -> M.get t.enc (t.data + r) c)
      ~nrows:t.parity shards size

  (* Two bytes per row index (indices < total <= 65535). *)
  let dec_key row_idx =
    let b = Bytes.create (2 * Array.length row_idx) in
    Array.iteri (fun i r -> Bytes.set_uint16_le b (2 * i) r) row_idx;
    Bytes.unsafe_to_string b

  let decode_matrix t row_idx =
    let key = dec_key row_idx in
    let cached =
      Mutex.lock t.dec_lock;
      let v = Hashtbl.find_opt t.dec_cache key in
      Mutex.unlock t.dec_lock;
      v
    in
    match cached with
    | Some dec -> Some dec
    | None -> (
        let sub = M.select_rows t.enc row_idx in
        match M.invert sub with
        | None -> None
        | Some dec ->
            Mutex.lock t.dec_lock;
            (* A concurrent decode of the same pattern computed the same
               deterministic matrix; replacing it is harmless. *)
            if Hashtbl.length t.dec_cache >= dec_cache_max then
              Hashtbl.reset t.dec_cache;
            Hashtbl.replace t.dec_cache key dec;
            Mutex.unlock t.dec_lock;
            Some dec)

  let reconstruct t shards =
    let total = total t in
    if Array.length shards <> total then
      Error "reconstruct: expected one slot per shard"
    else begin
      let present =
        Array.to_list (Array.mapi (fun i s -> (i, s)) shards)
        |> List.filter_map (fun (i, s) ->
               match s with Some b -> Some (i, b) | None -> None)
      in
      if List.length present < t.data then
        Error
          (Printf.sprintf "reconstruct: only %d of %d required shards present"
             (List.length present) t.data)
      else begin
        let chosen = Array.of_list (List.filteri (fun i _ -> i < t.data) present) in
        let size = Bytes.length (snd chosen.(0)) in
        let ok_sizes =
          Array.for_all (fun (_, b) -> Bytes.length b = size) chosen
          && size > 0
          && size mod F.symbol_bytes = 0
        in
        if not ok_sizes then Error "reconstruct: inconsistent shard sizes"
        else begin
          let row_idx = Array.map fst chosen in
          let inputs = Array.map snd chosen in
          match decode_matrix t row_idx with
          | None -> Error "reconstruct: singular decode matrix"
          | Some dec ->
              Ok (apply_rows (fun r c -> M.get dec r c) ~nrows:t.data inputs size)
        end
      end
    end

  let encoding_row t i =
    if i < 0 || i >= total t then
      invalid_arg "Reed_solomon.encoding_row: out of range";
    Array.init t.data (fun c -> M.get t.enc i c)
end
