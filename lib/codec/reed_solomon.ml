module Make (F : Field.S) = struct
  module M = Matrix.Make (F)

  type t = { data : int; parity : int; enc : M.t }

  let create ~data ~parity =
    if data < 1 then invalid_arg "Reed_solomon.create: need >= 1 data shard";
    if parity < 0 then invalid_arg "Reed_solomon.create: negative parity";
    if data + parity > F.order - 1 then
      invalid_arg "Reed_solomon.create: too many shards for the field";
    let total = data + parity in
    let vm = M.vandermonde total data in
    (* Normalize the top square to the identity so the code is
       systematic: enc = vm * inv(top(vm)). Any `data` rows of a
       Vandermonde matrix are independent, so the inverse exists. *)
    let top = M.select_rows vm (Array.init data (fun i -> i)) in
    let enc =
      match M.invert top with
      | Some ti -> M.mul vm ti
      | None -> assert false
    in
    { data; parity; enc }

  let data t = t.data
  let parity t = t.parity
  let total t = t.data + t.parity

  let shard_size_for t len =
    if len < 0 then invalid_arg "Reed_solomon.shard_size_for: negative length";
    let raw = Massbft_util.Intmath.cdiv (max len 1) t.data in
    let sym = F.symbol_bytes in
    Massbft_util.Intmath.cdiv raw sym * sym

  let check_shards t shards =
    if Array.length shards <> t.data then
      invalid_arg "Reed_solomon.encode: wrong number of data shards";
    let size = Bytes.length shards.(0) in
    if size = 0 || size mod F.symbol_bytes <> 0 then
      invalid_arg "Reed_solomon.encode: shard size not a symbol multiple";
    Array.iter
      (fun s ->
        if Bytes.length s <> size then
          invalid_arg "Reed_solomon.encode: unequal shard sizes")
      shards;
    size

  (* out.(r) <- sum_c rowsel(r, c) * inputs.(c), streamed per slice. *)
  let apply_rows rowsel ~nrows inputs size =
    let out = Array.init nrows (fun _ -> Bytes.create size) in
    for r = 0 to nrows - 1 do
      let dst = out.(r) in
      let first = ref true in
      Array.iteri
        (fun c src ->
          let coeff = rowsel r c in
          if !first then begin
            F.mul_slice_set coeff src dst;
            first := false
          end
          else F.mul_slice coeff src dst)
        inputs
    done;
    out

  let encode t shards =
    let size = check_shards t shards in
    apply_rows
      (fun r c -> M.get t.enc (t.data + r) c)
      ~nrows:t.parity shards size

  let reconstruct t shards =
    let total = total t in
    if Array.length shards <> total then
      Error "reconstruct: expected one slot per shard"
    else begin
      let present =
        Array.to_list (Array.mapi (fun i s -> (i, s)) shards)
        |> List.filter_map (fun (i, s) ->
               match s with Some b -> Some (i, b) | None -> None)
      in
      if List.length present < t.data then
        Error
          (Printf.sprintf "reconstruct: only %d of %d required shards present"
             (List.length present) t.data)
      else begin
        let chosen = Array.of_list (List.filteri (fun i _ -> i < t.data) present) in
        let size = Bytes.length (snd chosen.(0)) in
        let ok_sizes =
          Array.for_all (fun (_, b) -> Bytes.length b = size) chosen
          && size > 0
          && size mod F.symbol_bytes = 0
        in
        if not ok_sizes then Error "reconstruct: inconsistent shard sizes"
        else begin
          let row_idx = Array.map fst chosen in
          let inputs = Array.map snd chosen in
          let sub = M.select_rows t.enc row_idx in
          match M.invert sub with
          | None -> Error "reconstruct: singular decode matrix"
          | Some dec ->
              Ok (apply_rows (fun r c -> M.get dec r c) ~nrows:t.data inputs size)
        end
      end
    end

  let encoding_row t i =
    if i < 0 || i >= total t then
      invalid_arg "Reed_solomon.encoding_row: out of range";
    Array.init t.data (fun c -> M.get t.enc i c)
end
