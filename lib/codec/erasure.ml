module Rs8 = Reed_solomon.Make (Field.Gf8)
module Rs16 = Reed_solomon.Make (Field.Gf16)

type field = Gf8 | Gf16

let header_len = 8

let field_for ~total =
  if total < 1 then invalid_arg "Erasure.field_for: need >= 1 shard"
  else if total <= 255 then Gf8
  else if total <= 65535 then Gf16
  else invalid_arg "Erasure.field_for: more than 65535 shards"

let frame entry =
  let len = String.length entry in
  let hdr = Bytes.create header_len in
  Bytes.set_int64_le hdr 0 (Int64.of_int len);
  Bytes.unsafe_to_string hdr ^ entry

let unframe framed =
  if String.length framed < header_len then Error "decode: truncated frame"
  else begin
    let len =
      Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string framed) 0)
    in
    if len < 0 || len > String.length framed - header_len then
      Error "decode: corrupt length header"
    else Ok (String.sub framed header_len len)
  end

let split_shards framed ~data ~shard_size =
  Array.init data (fun i ->
      let shard = Bytes.make shard_size '\x00' in
      let off = i * shard_size in
      let avail = String.length framed - off in
      if avail > 0 then
        Bytes.blit_string framed off shard 0 (min shard_size avail);
      shard)

(* Dispatch between the two field widths without duplicating logic. *)
type codec =
  | C8 of Rs8.t
  | C16 of Rs16.t

(* Codecs are memoized per (data, parity): constructing one builds and
   inverts the systematic encoding matrix — O(data^3) field ops, ~15M
   for the GF(2^16) 180+120 regime — while the dissemination path
   encodes thousands of entries against a handful of transfer-plan
   geometries. The lock is held across construction so concurrent
   domains of the parallel driver wait for one deterministic build
   instead of duplicating it; invalid parameters raise inside
   [field_for]/[create] before anything is cached, so error behavior
   is identical on every call. *)
let codec_cache : (int * int, codec) Hashtbl.t = Hashtbl.create 8
let codec_lock = Mutex.create ()
let codec_cache_max = 64

let make_codec ~data ~parity =
  Mutex.protect codec_lock (fun () ->
      match Hashtbl.find_opt codec_cache (data, parity) with
      | Some c -> c
      | None ->
          let c =
            match field_for ~total:(data + parity) with
            | Gf8 -> C8 (Rs8.create ~data ~parity)
            | Gf16 -> C16 (Rs16.create ~data ~parity)
          in
          if Hashtbl.length codec_cache >= codec_cache_max then
            Hashtbl.reset codec_cache;
          Hashtbl.replace codec_cache (data, parity) c;
          c)

let codec_shard_size c len =
  match c with
  | C8 rs -> Rs8.shard_size_for rs len
  | C16 rs -> Rs16.shard_size_for rs len

let codec_encode c shards =
  match c with C8 rs -> Rs8.encode rs shards | C16 rs -> Rs16.encode rs shards

let codec_reconstruct c slots =
  match c with
  | C8 rs -> Rs8.reconstruct rs slots
  | C16 rs -> Rs16.reconstruct rs slots

let chunk_size ~data ~parity ~entry_len =
  let c = make_codec ~data ~parity in
  codec_shard_size c (entry_len + header_len)

let encode ~data ~parity entry =
  let c = make_codec ~data ~parity in
  let framed = frame entry in
  let shard_size = codec_shard_size c (String.length framed) in
  let data_shards = split_shards framed ~data ~shard_size in
  let parity_shards = codec_encode c data_shards in
  Array.append
    (Array.map Bytes.unsafe_to_string data_shards)
    (Array.map Bytes.unsafe_to_string parity_shards)

let decode ~data ~parity chunks =
  let total = data + parity in
  let slots = Array.make total None in
  let dup = ref None in
  List.iter
    (fun (i, payload) ->
      if i < 0 || i >= total then dup := Some "decode: chunk index out of range"
      else
        match slots.(i) with
        | Some _ -> dup := Some "decode: duplicate chunk index"
        | None -> slots.(i) <- Some (Bytes.of_string payload))
    chunks;
  match !dup with
  | Some e -> Error e
  | None -> (
      let c = make_codec ~data ~parity in
      match codec_reconstruct c slots with
      | Error e -> Error e
      | Ok data_shards ->
          let framed =
            String.concat "" (Array.to_list (Array.map Bytes.to_string data_shards))
          in
          unframe framed)
