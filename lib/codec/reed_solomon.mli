(** Systematic Reed–Solomon erasure coding over a pluggable field.

    A code with [data] source shards and [parity] redundancy shards can
    reconstruct the sources from any [data] of the [data + parity]
    shards (paper §IV-B). The encoding matrix is built as in
    klauspost/reedsolomon: a Vandermonde matrix whose top square is
    normalized to the identity, making the code systematic (data shards
    pass through unchanged).

    Reconstruction requires every supplied shard to be genuine; feeding
    corrupted or misindexed shards yields a wrong result, which is
    exactly why MassBFT layers Merkle-root bucket classification and
    certificate validation on top ({!Massbft.Rebuild}). *)

module Make (F : Field.S) : sig
  type t

  val create : data:int -> parity:int -> t
  (** Raises [Invalid_argument] unless [data >= 1], [parity >= 0] and
      [data + parity <= F.order - 1]. *)

  val data : t -> int
  val parity : t -> int
  val total : t -> int

  val shard_size_for : t -> int -> int
  (** [shard_size_for t len] is the per-shard byte size used when
      encoding a [len]-byte message: ceil(len / data) rounded up to the
      field's symbol width. *)

  val encode : t -> Bytes.t array -> Bytes.t array
  (** [encode t shards] takes exactly [data] equal-length shards (length
      a multiple of the symbol width) and returns the [parity] parity
      shards. *)

  val reconstruct : t -> Bytes.t option array -> (Bytes.t array, string) result
  (** [reconstruct t shards] takes [total] slots, of which at least
      [data] are [Some], and returns all [data] source shards in order.
      Errors if too few shards are present or sizes are inconsistent. *)

  val encoding_row : t -> int -> int array
  (** Row [i] of the encoding matrix (for tests): rows [0, data) are the
      identity, rows [data, total) the parity combinations. *)
end
