(** High-level erasure codec: whole log entries in, indexed chunks out.

    Handles framing (an 8-byte length header so the exact entry is
    recovered after padding), shard sizing, and automatic field
    selection — GF(2^8) while [data + parity <= 255], GF(2^16) beyond
    (mirroring the paper's move off the 64-chunk liberasurecode). *)

type field = Gf8 | Gf16

val field_for : total:int -> field
(** The smallest field accommodating [total] shards. Raises
    [Invalid_argument] above 65535. *)

val encode : data:int -> parity:int -> string -> string array
(** [encode ~data ~parity entry] returns [data + parity] equal-size
    chunks; chunk [i] for [i < data] is a systematic slice of the framed
    entry. Any [data] of them reconstruct [entry]. *)

val decode :
  data:int -> parity:int -> (int * string) list -> (string, string) result
(** [decode ~data ~parity chunks] rebuilds the entry from an association
    list of (chunk index, chunk payload). Duplicate indices are an
    error; corrupted chunks yield either an error (bad framing) or a
    wrong entry — callers must validate the result against its
    certificate, as §IV-C prescribes. *)

val chunk_size : data:int -> parity:int -> entry_len:int -> int
(** The byte size of every chunk produced for an [entry_len]-byte
    entry. *)
