(* Unchecked word-level access into [Bytes.t] for the slice kernels.

   Both field modules process slices wider than a byte at a time: the
   GF(2^16) split-table kernel reads/writes 16-bit symbols and the XOR
   accumulate works in 64-bit words. The stdlib only exposes checked
   variants of the multi-byte accessors, and a bounds check per symbol
   costs as much as the table lookups it guards — so the kernels do ONE
   range check up front (see [check_range]) and then use these
   compiler-primitive externals, which compile to plain loads/stores.

   Contract: every call site must be dominated by a check that
   [pos + width <= Bytes.length b]. Keep these out of .mli interfaces —
   they are a codec-internal tool, not part of the field API. *)

external get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
(* Native-endian unsigned 16-bit load; [pos + 2 <= length] required. *)

external set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
(* Native-endian 16-bit store of the low 16 bits; same bound. *)

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
(* Native-endian 64-bit load; [pos + 8 <= length] required. *)

external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
(* Native-endian 64-bit store; same bound. *)

external swap16 : int -> int = "%bswap16"

(* The slice kernels define symbols as little-endian byte pairs (the
   wire format, see gf65536.mli). On the overwhelmingly common
   little-endian hosts the native loads above already are LE; this flag
   routes big-endian hosts through [swap16] at load/store. *)
let be = Sys.big_endian

let check_range ~op b n =
  if n < 0 || n > Bytes.length b then invalid_arg (op ^ ": slice out of bounds")
