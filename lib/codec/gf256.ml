let order = 256

(* 0x11d = x^8 + x^4 + x^3 + x^2 + 1, the polynomial used by
   klauspost/reedsolomon; generator 2 is primitive for it. *)
let poly = 0x11d

let exp_table, log_table =
  let exp = Array.make 512 0 in
  let log = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  (* Duplicate so mul can skip the mod-255 reduction. *)
  for i = 255 to 511 do
    exp.(i) <- exp.(i - 255)
  done;
  (exp, log)

let add a b = a lxor b

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) - log_table.(b) + 255)

let inv a = div 1 a

let exp i =
  (* OCaml's [mod] keeps the dividend's sign, so a negative exponent —
     legitimate under g^255 = 1 — must be lifted back into [0, 255) or
     it would index out of bounds. *)
  let r = i mod 255 in
  exp_table.(if r < 0 then r + 255 else r)

let log a =
  if a = 0 then invalid_arg "Gf256.log: log of zero" else log_table.(a)

(* See Gf65536.check_coeff: with unsafe table reads below, an
   out-of-range coefficient would be undefined behavior, not an
   exception, so every slice entry point validates it up front. *)
let check_coeff op c =
  if c < 0 || c >= order then invalid_arg (op ^ ": coefficient out of field")

(* Per-coefficient 256-entry product rows (klauspost-style), memoized
   so repeated use of a coefficient — every shard of an encode reuses
   its matrix row's coefficients — costs one table build total instead
   of one per slice. At most 64 KiB across all 255 non-zero rows. The
   cells are atomic so a row built by one domain is published to others
   with its contents visible; a duplicated build races to write the
   same deterministic bytes, so last-writer-wins is harmless. *)
let mul_rows = Array.init 256 (fun _ -> Atomic.make Bytes.empty)

(* Callers must have validated [c] (check_coeff). *)
let mul_table c =
  let cell = Array.unsafe_get mul_rows c in
  let row = Atomic.get cell in
  if Bytes.length row <> 0 then row
  else begin
    let t = Bytes.create 256 in
    for i = 0 to 255 do
      Bytes.unsafe_set t i (Char.unsafe_chr (mul c i))
    done;
    Atomic.set cell t;
    t
  end

(* dst <- dst lxor src, 64 bits at a time with a byte-wise tail. XOR is
   endianness-agnostic, so native-endian loads are safe. The explicit
   range check up front is what licenses the unsafe int64 loads in the
   word loop and the unsafe byte ops in the tail. *)
let xor_into src dst n =
  Word.check_range ~op:"Gf256.xor_into" src n;
  Word.check_range ~op:"Gf256.xor_into" dst n;
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    let o = w lsl 3 in
    Word.set64 dst o (Int64.logxor (Word.get64 dst o) (Word.get64 src o))
  done;
  for i = words lsl 3 to n - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get src i)
         lxor Char.code (Bytes.unsafe_get dst i)))
  done

(* The unchecked kernels require [n] within both buffers (established
   once by the caller) and [t] a product row. *)

let acc_slice t src dst n =
  for i = 0 to n - 1 do
    let p = Bytes.unsafe_get t (Char.code (Bytes.unsafe_get src i)) in
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (Char.code p lxor Char.code (Bytes.unsafe_get dst i)))
  done

let set_slice t src dst n =
  for i = 0 to n - 1 do
    Bytes.unsafe_set dst i
      (Bytes.unsafe_get t (Char.code (Bytes.unsafe_get src i)))
  done

let mul_slice c src dst =
  let n = Bytes.length src in
  if Bytes.length dst <> n then
    invalid_arg "Gf256.mul_slice: length mismatch";
  check_coeff "Gf256.mul_slice" c;
  if c = 1 then xor_into src dst n
  else if c <> 0 then acc_slice (mul_table c) src dst n

let mul_slice_set c src dst =
  let n = Bytes.length src in
  if Bytes.length dst <> n then
    invalid_arg "Gf256.mul_slice_set: length mismatch";
  check_coeff "Gf256.mul_slice_set" c;
  if c = 0 then Bytes.fill dst 0 n '\x00'
  else if c = 1 then Bytes.blit src 0 dst 0 n
  else set_slice (mul_table c) src dst n

(* Row-fused matrix-row application; see Gf65536.mul_row. The first
   non-zero term writes dst outright, the rest accumulate in place. *)
let mul_row ~coeffs srcs dst =
  let k = Array.length coeffs in
  if Array.length srcs <> k then
    invalid_arg "Gf256.mul_row: coeffs/srcs arity mismatch";
  let n = Bytes.length dst in
  Array.iter
    (fun s ->
      if Bytes.length s <> n then invalid_arg "Gf256.mul_row: length mismatch")
    srcs;
  Array.iter (fun c -> check_coeff "Gf256.mul_row" c) coeffs;
  let j0 = ref 0 in
  while !j0 < k && Array.unsafe_get coeffs !j0 = 0 do
    incr j0
  done;
  if !j0 = k then Bytes.fill dst 0 n '\x00'
  else begin
    let c0 = Array.unsafe_get coeffs !j0 in
    (if c0 = 1 then Bytes.blit (Array.unsafe_get srcs !j0) 0 dst 0 n
     else set_slice (mul_table c0) (Array.unsafe_get srcs !j0) dst n);
    for j = !j0 + 1 to k - 1 do
      let c = Array.unsafe_get coeffs j in
      if c = 1 then xor_into (Array.unsafe_get srcs j) dst n
      else if c <> 0 then
        acc_slice (mul_table c) (Array.unsafe_get srcs j) dst n
    done
  end
