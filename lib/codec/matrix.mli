(** Dense matrices over a finite field — the linear algebra behind
    systematic Reed–Solomon encoding (Vandermonde construction) and
    decoding (sub-matrix inversion). *)

module Make (F : Field.S) : sig
  type t

  val create : int -> int -> t
  (** [create rows cols] is the zero matrix. Dimensions must be
      positive. *)

  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> int
  val set : t -> int -> int -> int -> unit
  val identity : int -> t

  val copy : t -> t

  val mul : t -> t -> t
  (** Matrix product; raises [Invalid_argument] on dimension
      mismatch. *)

  val vandermonde : int -> int -> t
  (** [vandermonde rows cols] has entry (r, c) = g^(r*c) for the field
      generator g; any [cols] rows are linearly independent provided
      [rows <= order - 1]. *)

  val invert : t -> t option
  (** Gauss–Jordan inverse of a square matrix; [None] when singular. *)

  val select_rows : t -> int array -> t
  (** [select_rows m idx] stacks the rows [idx] of [m] in order. *)

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end
