(** Arithmetic in GF(2^16).

    Algorithm 1 sizes the chunk space as lcm(n1, n2) + parity, which can
    exceed the 256-symbol limit of a GF(2^8) Reed–Solomon code (e.g. a
    40-node group paired with a 39-node group). The paper hit the same
    wall with liberasurecode's 64-chunk cap and switched libraries; we
    instead provide a GF(2^16) code supporting up to 65535 total chunks.
    Elements are ints in [0, 65535].

    Slice multiplication uses per-coefficient split (nibble) product
    tables — the klauspost/reedsolomon technique scaled to 16-bit
    symbols — memoized per process and safe to share across the
    parallel driver's domains. *)

val order : int
(** 65536. *)

val add : int -> int -> int
val mul : int -> int -> int
val div : int -> int -> int
val inv : int -> int

val exp : int -> int
(** [exp i] is the generator raised to [i], reduced with a Euclidean
    remainder so negative exponents (g^65535 = 1) are valid. *)

val log : int -> int

val mul_slice : int -> Bytes.t -> Bytes.t -> unit
(** Slice op over byte buffers interpreted as little-endian 16-bit
    symbols; lengths must be equal and even. XOR-accumulates into
    [dst]. Raises [Invalid_argument] if the coefficient is outside
    [0, 65535]. *)

val mul_slice_set : int -> Bytes.t -> Bytes.t -> unit
(** Like {!mul_slice} but overwrites [dst] instead of accumulating. *)

val mul_row : coeffs:int array -> Bytes.t array -> Bytes.t -> unit
(** [mul_row ~coeffs srcs dst] sets [dst] to the field linear
    combination [sum_j coeffs.(j) * srcs.(j)] — one fused encoding-row
    application, validating lengths/coefficients once and reusing the
    memoized per-coefficient tables. [dst] must not alias a source. *)
