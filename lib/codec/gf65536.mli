(** Arithmetic in GF(2^16).

    Algorithm 1 sizes the chunk space as lcm(n1, n2) + parity, which can
    exceed the 256-symbol limit of a GF(2^8) Reed–Solomon code (e.g. a
    40-node group paired with a 39-node group). The paper hit the same
    wall with liberasurecode's 64-chunk cap and switched libraries; we
    instead provide a GF(2^16) code supporting up to 65535 total chunks.
    Elements are ints in [0, 65535]. *)

val order : int
(** 65536. *)

val add : int -> int -> int
val mul : int -> int -> int
val div : int -> int -> int
val inv : int -> int
val exp : int -> int
val log : int -> int

val mul_slice : int -> Bytes.t -> Bytes.t -> unit
(** Slice op over byte buffers interpreted as little-endian 16-bit
    symbols; lengths must be equal and even. XOR-accumulates into
    [dst]. *)

val mul_slice_set : int -> Bytes.t -> Bytes.t -> unit
