module ISet = Set.Make (Int)
module SMap = Map.Make (String)
module Trace = Massbft_trace.Trace

type msg =
  | Pre_prepare of { view : int; seq : int; digest : string }
  | Prepare of { view : int; seq : int; digest : string }
  | Commit of { view : int; seq : int; digest : string }
  | View_change of { new_view : int; prepared : (int * string) list }
  | New_view of { view : int; reproposals : (int * string) list }

type certificate = {
  cert_seq : int;
  cert_digest : string;
  cert_view : int;
  cert_signers : int list;
}

type config = { n : int; me : int; skip_prepare : bool }
type callbacks = { send : int -> msg -> unit; decide : certificate -> unit }

type slot = {
  mutable slot_view : int;  (* the view the vote sets below belong to *)
  mutable accepted : string option;  (* digest pre-prepared in slot_view *)
  mutable prepares : ISet.t SMap.t;  (* digest -> prepare voters *)
  mutable commits : ISet.t SMap.t;  (* digest -> commit voters *)
  mutable sent_commit : bool;
  mutable prepared : bool;
  mutable decided_digest : string option;
}

type vc_state = {
  mutable vc_voters : ISet.t;
  mutable vc_reproposals : string SMap.t;  (* keyed by string_of_int seq *)
}

type t = {
  cfg : config;
  cb : callbacks;
  mutable n : int;
      (* current group size; diverges from [cfg.n] only across a live
         membership reconfiguration (all replicas resize at the same
         epoch boundary, so quorum math stays consistent group-wide) *)
  mutable f : int;
  mutable quorum : int;
  mutable cur_view : int;
  mutable in_view_change : bool;
  slots : (int, slot) Hashtbl.t;
  vc : (int, vc_state) Hashtbl.t;  (* keyed by target view *)
  mutable proposed : ISet.t;  (* seqs this leader proposed in cur_view *)
  mutable trace : Trace.t;
  mutable tr_gid : int;
}

let leader_of_view ~n ~view = view mod n

let create (cfg : config) cb =
  if cfg.n < 1 then invalid_arg "Pbft.create: empty group";
  if cfg.me < 0 || cfg.me >= cfg.n then invalid_arg "Pbft.create: bad replica id";
  let f = Massbft_util.Intmath.pbft_f cfg.n in
  {
    cfg;
    cb;
    n = cfg.n;
    f;
    quorum = (2 * f) + 1;
    cur_view = 0;
    in_view_change = false;
    slots = Hashtbl.create 64;
    vc = Hashtbl.create 4;
    proposed = ISet.empty;
    trace = Trace.null;
    tr_gid = -1;
  }

let set_trace t tr ~gid =
  t.trace <- tr;
  t.tr_gid <- gid

let view t = t.cur_view
let is_leader t = leader_of_view ~n:t.n ~view:t.cur_view = t.cfg.me

let decided t seq =
  match Hashtbl.find_opt t.slots seq with
  | None -> None
  | Some s -> s.decided_digest

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s ->
      (* Vote sets from older views are void after a view change. *)
      if s.slot_view < t.cur_view then begin
        s.slot_view <- t.cur_view;
        s.accepted <- None;
        s.prepares <- SMap.empty;
        s.commits <- SMap.empty;
        s.sent_commit <- false;
        s.prepared <- false
      end;
      s
  | None ->
      let s =
        {
          slot_view = t.cur_view;
          accepted = None;
          prepares = SMap.empty;
          commits = SMap.empty;
          sent_commit = false;
          prepared = false;
          decided_digest = None;
        }
      in
      Hashtbl.replace t.slots seq s;
      s

let broadcast t msg =
  for i = 0 to t.n - 1 do
    if i <> t.cfg.me then t.cb.send i msg
  done

let add_vote votes digest id =
  let cur = Option.value ~default:ISet.empty (SMap.find_opt digest votes) in
  SMap.add digest (ISet.add id cur) votes

let votes_for votes digest =
  Option.value ~default:ISet.empty (SMap.find_opt digest votes)

(* Re-examine a slot after any state change and move it forward. *)
let rec advance t seq s =
  match (s.accepted, s.decided_digest) with
  | None, _ | _, Some _ -> ()
  | Some d, None ->
      (* Phase 2: become prepared (or skip straight past it). *)
      if not s.prepared then
        if t.cfg.skip_prepare then s.prepared <- true
        else if ISet.cardinal (votes_for s.prepares d) >= t.quorum then
          s.prepared <- true;
      (* Phase 3: first time prepared, cast our commit. *)
      if s.prepared && not s.sent_commit then begin
        s.sent_commit <- true;
        s.commits <- add_vote s.commits d t.cfg.me;
        broadcast t (Commit { view = s.slot_view; seq; digest = d });
        advance t seq s
      end
      else if s.prepared then begin
        let committers = votes_for s.commits d in
        if ISet.cardinal committers >= t.quorum then begin
          s.decided_digest <- Some d;
          t.cb.decide
            {
              cert_seq = seq;
              cert_digest = d;
              cert_view = s.slot_view;
              cert_signers = ISet.elements committers;
            }
        end
      end

let accept_pre_prepare t ~seq ~digest =
  let s = slot t seq in
  match s.accepted with
  | Some _ -> () (* only the first pre-prepare per view/seq is accepted *)
  | None ->
      if s.decided_digest = None then begin
        s.accepted <- Some digest;
        (* The leader's pre-prepare doubles as its prepare vote. *)
        s.prepares <-
          add_vote s.prepares digest (leader_of_view ~n:t.n ~view:t.cur_view);
        if (not t.cfg.skip_prepare) && not (is_leader t) then begin
          s.prepares <- add_vote s.prepares digest t.cfg.me;
          broadcast t (Prepare { view = t.cur_view; seq; digest })
        end;
        advance t seq s
      end

let propose t ~seq ~digest =
  if not (is_leader t) then invalid_arg "Pbft.propose: not the leader";
  if t.in_view_change then invalid_arg "Pbft.propose: view change in progress";
  if ISet.mem seq t.proposed then
    invalid_arg "Pbft.propose: sequence already proposed in this view";
  t.proposed <- ISet.add seq t.proposed;
  broadcast t (Pre_prepare { view = t.cur_view; seq; digest });
  accept_pre_prepare t ~seq ~digest

(* The (seq, digest) pairs this replica prepared but has not decided —
   what must survive into the next view. *)
let prepared_undecided t =
  Hashtbl.fold
    (fun seq s acc ->
      match (s.prepared, s.accepted, s.decided_digest) with
      | true, Some d, None -> (seq, d) :: acc
      | _ -> acc)
    t.slots []

let vc_state t nv =
  match Hashtbl.find_opt t.vc nv with
  | Some st -> st
  | None ->
      let st = { vc_voters = ISet.empty; vc_reproposals = SMap.empty } in
      Hashtbl.replace t.vc nv st;
      st

let enter_view t nv =
  t.cur_view <- nv;
  t.in_view_change <- false;
  t.proposed <- ISet.empty;
  Trace.instant t.trace ~cat:"pbft" ~gid:t.tr_gid ~node:t.cfg.me
    ~args:[ ("view", Trace.Int nv) ]
    "new_view"

let record_vc_vote t ~nv ~from ~prepared =
  let st = vc_state t nv in
  st.vc_voters <- ISet.add from st.vc_voters;
  List.iter
    (fun (seq, d) ->
      st.vc_reproposals <- SMap.add (string_of_int seq) d st.vc_reproposals)
    prepared;
  st

let broadcast_view_change t nv =
  Trace.instant t.trace ~cat:"pbft" ~gid:t.tr_gid ~node:t.cfg.me
    ~args:[ ("new_view", Trace.Int nv) ]
    "view_change";
  let prepared = prepared_undecided t in
  ignore (record_vc_vote t ~nv ~from:t.cfg.me ~prepared);
  broadcast t (View_change { new_view = nv; prepared })

let maybe_complete_view_change t nv =
  let st = vc_state t nv in
  if
    ISet.cardinal st.vc_voters >= t.quorum
    && leader_of_view ~n:t.n ~view:nv = t.cfg.me
    && t.cur_view < nv
  then begin
    let reproposals =
      SMap.fold
        (fun seq_s d acc -> (int_of_string seq_s, d) :: acc)
        st.vc_reproposals []
      |> List.sort compare
    in
    enter_view t nv;
    broadcast t (New_view { view = nv; reproposals });
    List.iter
      (fun (seq, d) ->
        t.proposed <- ISet.add seq t.proposed;
        accept_pre_prepare t ~seq ~digest:d)
      reproposals
  end

let start_view_change ?target t =
  let nv =
    match target with
    | None -> t.cur_view + 1
    | Some v -> max (t.cur_view + 1) v
  in
  t.in_view_change <- true;
  broadcast_view_change t nv;
  maybe_complete_view_change t nv

let in_view_change t = t.in_view_change
let proposed t ~seq = ISet.mem seq t.proposed

(* Post-recovery state transfer: a replica that was down while the
   group moved on adopts the current view so it can vote again. Slot
   vote state from the old view is voided lazily (see [slot]); decided
   slots keep their digests. *)
let rejoin t ~view = if view > t.cur_view then enter_view t view

(* Live membership reconfiguration: adopt the group's new active size.
   Every replica resizes at the same epoch boundary (the totally ordered
   position of the config entry), so quorum counting never mixes sizes.
   A retired replica ([me >= n]) simply stops being addressed. *)
let resize t ~n =
  if n < 1 then invalid_arg "Pbft.resize: empty group";
  t.n <- n;
  t.f <- Massbft_util.Intmath.pbft_f n;
  t.quorum <- (2 * t.f) + 1

let size t = t.n

(* State transfer: record a decided slot verbatim on a joining replica,
   without re-running consensus or firing [decide] — the embedder has
   already applied the transferred prefix. First decision wins, as
   everywhere else. *)
let install_decided t ~seq ~digest =
  let s = slot t seq in
  if s.decided_digest = None then begin
    s.accepted <- Some digest;
    s.decided_digest <- Some digest
  end

let handle t ~from msg =
  if from < 0 || from >= t.n || from = t.cfg.me then ()
  else
    match msg with
    | Pre_prepare { view; seq; digest } ->
        if
          view = t.cur_view
          && (not t.in_view_change)
          && from = leader_of_view ~n:t.n ~view
        then accept_pre_prepare t ~seq ~digest
    | Prepare { view; seq; digest } ->
        if view = t.cur_view && not t.in_view_change then begin
          let s = slot t seq in
          s.prepares <- add_vote s.prepares digest from;
          advance t seq s
        end
    | Commit { view; seq; digest } ->
        if view = t.cur_view && not t.in_view_change then begin
          let s = slot t seq in
          s.commits <- add_vote s.commits digest from;
          advance t seq s
        end
    | View_change { new_view; prepared } ->
        if new_view > t.cur_view then begin
          let st = record_vc_vote t ~nv:new_view ~from ~prepared in
          (* Liveness rule: join a view change once f+1 others are in it,
             even if our own timer has not fired. *)
          if
            ISet.cardinal st.vc_voters >= t.f + 1
            && not (ISet.mem t.cfg.me st.vc_voters)
          then begin
            t.in_view_change <- true;
            broadcast_view_change t new_view
          end;
          maybe_complete_view_change t new_view
        end
    | New_view { view; reproposals } ->
        if view > t.cur_view && from = leader_of_view ~n:t.n ~view then begin
          enter_view t view;
          List.iter
            (fun (seq, d) -> accept_pre_prepare t ~seq ~digest:d)
            reproposals
        end
